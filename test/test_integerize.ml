(* Tests for the conversion of real-valued solver output into integer
   design points (Section IV): divisor ladders, candidate filtering and
   model-ranked selection. *)

module F = Thistle.Formulate
module Perm = Thistle.Permutations
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Mapping = Mapspace.Mapping
module Nest = Workload.Nest

let tech = Archspec.Technology.table3

let small_conv () =
  Workload.Conv.to_nest (Workload.Conv.make ~name:"small" ~k:16 ~c:16 ~hw:16 ~rs:3 ())

let solve_first ?(objective = F.Energy) arch_mode nest =
  let plan = Perm.enumerate nest in
  let inst = F.build tech arch_mode objective plan (List.hd plan.Perm.choices) in
  let sol = Gp.Solver.solve inst.F.problem in
  (inst, sol)

let test_fixed_outcome_valid () =
  let nest = small_conv () in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst, sol = solve_first (F.Fixed arch) nest in
  match I.run tech inst sol with
  | Error msg -> Alcotest.failf "integerize failed: %s" msg
  | Ok o ->
    Alcotest.(check string) "same arch" "a" o.I.arch.Arch.arch_name;
    Alcotest.(check (result unit string))
      "mapping valid" (Ok ())
      (Mapping.validate nest o.I.mapping);
    Alcotest.(check bool) "tried some" true (o.I.candidates_tried > 0);
    Alcotest.(check bool) "some valid" true (o.I.candidates_valid > 0);
    (* The window dims sit fully at the register level. *)
    Alcotest.(check int) "r at register level" 3 (Mapping.factor o.I.mapping ~level:0 "r");
    Alcotest.(check int) "r nowhere else" 1 (Mapping.factor o.I.mapping ~level:3 "r");
    (* Metrics respect the architecture (evaluate would have failed
       otherwise), and the score is finite. *)
    Alcotest.(check bool)
      "finite energy" true
      (Float.is_finite o.I.metrics.Accmodel.Evaluate.energy_pj)

let test_integer_close_to_continuous () =
  let nest = small_conv () in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst, sol = solve_first (F.Fixed arch) nest in
  let o = Result.get_ok (I.run tech inst sol) in
  (* The integer design evaluated by the exact model should be within a
     modest factor of the continuous relaxation's objective. *)
  let ratio = o.I.metrics.Accmodel.Evaluate.energy_pj /. sol.Gp.Solver.objective in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f in [0.8, 2]" ratio)
    true
    (ratio > 0.8 && ratio < 2.0)

let test_codesign_area_respected () =
  let nest = small_conv () in
  let budget = Arch.eyeriss_area tech in
  let inst, sol = solve_first (F.Codesign { area_budget = budget }) nest in
  match I.run tech inst sol with
  | Error msg -> Alcotest.failf "integerize failed: %s" msg
  | Ok o ->
    let area = Arch.area tech o.I.arch in
    Alcotest.(check bool)
      (Printf.sprintf "area %.0f <= budget %.0f" area budget)
      true (area <= budget);
    (* Capacities are powers of two, as the paper rounds them. *)
    let is_pow2 n = n land (n - 1) = 0 in
    Alcotest.(check bool) "registers pow2" true (is_pow2 o.I.arch.Arch.registers_per_pe);
    Alcotest.(check bool) "sram pow2" true (is_pow2 o.I.arch.Arch.sram_words);
    (* The built architecture supplies exactly the PEs the mapping uses. *)
    Alcotest.(check int)
      "PEs = spatial size"
      (Mapping.spatial_size o.I.mapping)
      o.I.arch.Arch.pe_count

let test_delay_scoring () =
  let nest = small_conv () in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst, sol = solve_first ~objective:F.Delay (F.Fixed arch) nest in
  let o = Result.get_ok (I.run tech inst sol) in
  Alcotest.(check bool)
    "score is cycles" true
    (I.score F.Delay o.I.metrics = o.I.metrics.Accmodel.Evaluate.cycles);
  Alcotest.(check bool)
    "ipc <= pe count" true
    (o.I.metrics.Accmodel.Evaluate.ipc <= float_of_int arch.Arch.pe_count)

(* Widening the divisor ladder must not degrade the chosen design (the
   ladder is trimmed closest-first, so n = 3 explores a superset of the
   promising region that n = 2 does). *)
let test_ladder_width_monotone () =
  let module O = Thistle.Optimize in
  let nest =
    Workload.Conv.to_nest
      (Workload.Conv.make ~name:"gap" ~k:16 ~c:8 ~hw:16 ~rs:1 ~stride:2 ())
  in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let energy n =
    let config = { O.default_config with O.n_divisors = n; top_choices = 2 } in
    match O.dataflow ~config tech arch F.Energy nest with
    | Ok r -> r.O.outcome.I.metrics.Accmodel.Evaluate.energy_pj
    | Error msg -> Alcotest.failf "n=%d failed: %s" n msg
  in
  let e2 = energy 2 and e3 = energy 3 in
  Alcotest.(check bool)
    (Printf.sprintf "n=3 (%.4g) within 5%% of n=2 (%.4g)" e3 e2)
    true
    (e3 <= e2 *. 1.05)

let test_utilization_filter () =
  let nest = small_conv () in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst, sol = solve_first (F.Fixed arch) nest in
  (* An impossible threshold rejects every candidate. *)
  (match I.run ~min_pe_utilization:1.01 tech inst sol with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected the utilization filter to reject everything");
  (* A satisfiable threshold constrains the chosen point. *)
  match I.run ~min_pe_utilization:0.5 tech inst sol with
  | Error msg -> Alcotest.failf "filter too strict: %s" msg
  | Ok o ->
    let utilization =
      float_of_int (Mapping.spatial_size o.I.mapping)
      /. float_of_int o.I.arch.Arch.pe_count
    in
    Alcotest.(check bool)
      (Printf.sprintf "utilization %.2f >= 0.5" utilization)
      true (utilization >= 0.5)

(* Pinned trip counts arrive from the solver as floats a few ulps off
   the integer; truncation used to turn 3.9999999 into 3 and shift the
   whole divisor ladder.  Rounding must absorb tiny perturbations, and
   genuinely non-integer pinned values must be rejected up front. *)
let test_pinned_rounding () =
  let nest = small_conv () in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst, sol = solve_first (F.Fixed arch) nest in
  let perturb delta =
    { inst with F.pinned = List.map (fun (x, v) -> (x, v +. delta)) inst.F.pinned }
  in
  let baseline = Result.get_ok (I.run tech inst sol) in
  (match I.run tech (perturb (-1e-9)) sol with
  | Error msg -> Alcotest.failf "ulp-low pinned values rejected: %s" msg
  | Ok o ->
    Alcotest.(check string)
      "same mapping as exact pinned values"
      (Format.asprintf "%a" Mapping.pp baseline.I.mapping)
      (Format.asprintf "%a" Mapping.pp o.I.mapping));
  match I.run tech (perturb 0.3) sol with
  | Ok _ -> Alcotest.fail "non-integer pinned value should be rejected"
  | Error msg ->
    Alcotest.(check bool) "error names the pinned factor" true
      (String.length msg >= 25 && String.sub msg 0 25 = "integerize: pinned factor")

(* The per-dim candidate budget is the largest b with b^dims <= max;
   the old float pow round-trip undercounted exact roots (4096^(1/3)
   evaluating to 15.999... gave 15, quartering a 3-dim ladder). *)
let test_per_dim_budget () =
  List.iter
    (fun (max_candidates, dims, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "budget %d^(1/%d)" max_candidates dims)
        expected
        (I.per_dim_budget ~max_candidates ~dims))
    [
      (4096, 3, 16);
      (512, 3, 8);
      (49, 2, 7);
      (48, 2, 6);
      (65536, 2, 256);
      (65536, 1, 65536);
      (65536, 0, 65536);
      (1, 5, 1);
      (0, 3, 1);
    ];
  (* Defining property on a sweep: b^dims <= max < (b+1)^dims. *)
  for max_candidates = 1 to 500 do
    for dims = 2 to 5 do
      let b = I.per_dim_budget ~max_candidates ~dims in
      let pow base = List.fold_left (fun acc _ -> acc * base) 1 (List.init dims Fun.id) in
      Alcotest.(check bool)
        (Printf.sprintf "%d^%d <= %d" b dims max_candidates)
        true
        (b >= 1 && pow b <= max_candidates);
      Alcotest.(check bool)
        (Printf.sprintf "%d^%d > %d" (b + 1) dims max_candidates)
        true
        (pow (b + 1) > max_candidates)
    done
  done

let test_infeasible_arch_errors () =
  let nest = small_conv () in
  (* A 4-register PE cannot hold the pinned 3x3 window tiles. *)
  let arch = Arch.make ~name:"tiny" ~pes:4 ~registers:4 ~sram_words:256 in
  let inst, sol = solve_first (F.Fixed arch) nest in
  match I.run tech inst sol with
  | Error _ -> ()
  | Ok o ->
    Alcotest.failf "expected failure, got energy %g"
      o.I.metrics.Accmodel.Evaluate.energy_pj

let () =
  Alcotest.run "integerize"
    [
      ( "outcomes",
        [
          Alcotest.test_case "fixed-arch outcome valid" `Quick test_fixed_outcome_valid;
          Alcotest.test_case "integer close to continuous" `Quick
            test_integer_close_to_continuous;
          Alcotest.test_case "codesign area respected" `Quick test_codesign_area_respected;
          Alcotest.test_case "delay scoring" `Quick test_delay_scoring;
          Alcotest.test_case "ladder width monotone" `Quick test_ladder_width_monotone;
          Alcotest.test_case "utilization filter" `Quick test_utilization_filter;
          Alcotest.test_case "pinned rounding" `Quick test_pinned_rounding;
          Alcotest.test_case "per-dim budget" `Quick test_per_dim_budget;
          Alcotest.test_case "infeasible arch errors" `Quick test_infeasible_arch_errors;
        ] );
    ]
