(** Presolve: interval bound propagation over a geometric program, with
    static infeasibility proofs, monotonicity-based variable fixing and
    redundant-constraint elimination (DESIGN §13).

    The pass derives a per-variable box (an {!Interval.t} over the
    positive axis) by fixed-point propagation:

    - an inequality [sum_k m_k <= 1] bounds each variable of each term:
      with [L(m)] a term's interval lower bound, the slack
      [1 - sum_{j<>k} L(m_j)] caps [m_k], and dividing out the interval
      lower bound of the term's other factors caps [x ** e] — an upper
      bound on [x] for [e > 0], a lower bound for [e < 0];
    - a monomial equality [g = 1] pins each of its variables to the
      inverse of the interval of the remaining factors.

    Propagation is {e sound}: the box always contains every feasible
    point of the problem.  Three verdicts follow:

    - {b infeasibility}: a constraint whose interval lower bound over
      the box exceeds 1 (or an equality whose upper bound falls below
      1) has no feasible point.  The verdict carries a machine-checkable
      {!proof}: the bound-derivation steps that built the relevant part
      of the box (backward-sliced from the culprit constraint) plus the
      culprit's certified bound.  {!Certificate.check_prune} replays it
      independently;
    - {b variable fixing}: a variable outside every equality whose
      exponents across the objective and every non-simple-bound
      inequality are single-signed is monotone — pinning it to the
      corresponding box endpoint preserves at least one optimum;
    - {b redundancy}: an inequality whose interval {e upper} bound over
      the box stays below 1 can never be active.  Because that bound may
      itself rest on the candidate's own propagation, candidates are
      re-verified against a box re-propagated from the {e kept}
      constraints only before being dropped.

    All decisions carry margins ({!prune_margin}, {!drop_margin}) far
    wider than float rounding, so the non-directed endpoint arithmetic
    of {!Interval} cannot flip a verdict. *)

type mode =
  | Prune  (** act on the verdicts: skip solves, shrink problems *)
  | Check
      (** solve everything anyway and differentially validate the
          verdicts against the solver (a presolve-infeasible pair must
          not solve, an eliminated constraint must not be active) *)
  | Off  (** skip the pass *)

val modes : (string * mode) list
(** CLI enum, mirroring {!Lint.modes}. *)

val mode_name : mode -> string

type side = Lo | Hi

type step = {
  var : string;
  side : side;  (** which endpoint the step tightens *)
  bound : float;  (** the new endpoint value *)
  via : string;  (** name of the constraint that implies it *)
}
(** One bound derivation: "every feasible point has [var] on the [side]
    of [bound], because of constraint [via] over the box so far". *)

type culprit_kind =
  | Ineq_low  (** inequality interval lower bound over the box [> 1] *)
  | Eq_low  (** equality interval lower bound over the box [> 1] *)
  | Eq_high  (** equality interval upper bound over the box [< 1] *)

type proof = {
  steps : step list;  (** in application order, backward-sliced *)
  culprit : string;  (** the statically violated constraint *)
  kind : culprit_kind;
  bound : float;  (** the culprit's certified interval bound *)
}

type reduction = {
  reduced : Gp.Problem.t;
      (** the problem after fixing and elimination; physically the
          input problem when both lists below are empty, so the
          no-reduction path is bit-for-bit the no-presolve path *)
  fixed : (string * float) list;  (** pinned variables, sorted by name *)
  dropped : (string * float) list;
      (** eliminated inequalities with their certified interval upper
          bound over the box, in original constraint order *)
}

type verdict = Infeasible of proof | Feasible of reduction

type t = {
  box : (string * Interval.t) list;  (** propagated box, sorted by name *)
  verdict : verdict;
}

val prune_margin : float
(** Infeasibility requires the culprit bound beyond 1 by this relative
    margin (1e-6 — comfortably above the solver's feasibility
    tolerance, so a statically pruned pair can never be one the solver
    would have accepted as borderline-feasible). *)

val drop_margin : float
(** Elimination requires the inequality's upper bound below [1 -]
    this margin (1e-6), so a dropped constraint is strictly slack over
    the whole box — never one that could be active at an optimum. *)

val analyze : Gp.Problem.t -> t
(** Run propagation to a fixed point and classify.  Deterministic: a
    pure function of the problem (constraint and term order included),
    never of timing — the verdict enters journal fingerprinted state
    and the §9 counter contract. *)

val pp_proof : Format.formatter -> proof -> unit

val pp : Format.formatter -> t -> unit
