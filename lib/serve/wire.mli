(** Length-prefixed framing over a file descriptor (DESIGN §14).

    One frame = a 4-byte big-endian payload length followed by exactly
    that many payload bytes.  The framing layer knows nothing about the
    payload; {!Protocol} owns its JSON encoding.  Reads distinguish a
    clean close (EOF on a frame boundary) from a torn frame (EOF
    mid-frame) and from an oversized length prefix — the latter also
    covers garbage prefixes, which decode to absurd lengths — so a
    server can drop one bad connection without dying. *)

type read_error =
  | Closed  (** EOF on a frame boundary: the peer hung up cleanly. *)
  | Torn of int
      (** EOF after [n] bytes of an incomplete frame (header included):
          the peer died or was cut mid-write. *)
  | Oversized of int
      (** The length prefix announces [n] bytes, above the reader's
          [max_frame].  The stream cannot be re-synchronized after this;
          close the connection. *)

val describe : read_error -> string

val default_max_frame : int
(** 16 MiB — generous for rendered reports, small enough that a garbage
    prefix cannot make the reader allocate unbounded memory. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, looping over short writes.  Raises [Unix_error]
    (e.g. [EPIPE]) if the peer is gone; callers treat that as a closed
    connection. *)

val read_frame : ?max_frame:int -> Unix.file_descr -> (string, read_error) result
(** Read one complete frame, looping over short reads. *)
