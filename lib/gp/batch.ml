module Vec = Linalg.Vec
module Mat = Linalg.Mat
module M = Symexpr.Monomial
module P = Symexpr.Posynomial

(* --- structure key ----------------------------------------------------- *)

(* Coefficient-blind coarsening of [Optimize.problem_key]: identical
   framing (term '|', posynomial '#', section 'I'/'E' markers) and the
   same exponent bits, with the leading coefficient of each monomial
   dropped.  Because posynomial terms are sorted by exponent vector and
   like terms are merged, term order is purely structural: two problems
   with equal keys align term-for-term, variable-for-variable. *)
let structure_key problem =
  let buf = Buffer.create 1024 in
  let fl v = Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float v)) in
  let mono m =
    List.iter
      (fun (x, e) ->
        Buffer.add_string buf x;
        Buffer.add_char buf ':';
        fl e)
      (M.exponents m);
    Buffer.add_char buf '|'
  in
  let poly p =
    List.iter mono (P.terms p);
    Buffer.add_char buf '#'
  in
  poly (Problem.objective problem);
  Buffer.add_char buf 'I';
  List.iter (fun (_, p) -> poly p) (Problem.ineqs problem);
  Buffer.add_char buf 'E';
  List.iter
    (fun (_, m) ->
      mono m;
      Buffer.add_char buf '#')
    (Problem.eqs problem);
  Buffer.contents buf

(* --- compiled structure ------------------------------------------------ *)

type fn = {
  f_nterms : int;
  f_starts : int array;
  f_idx : int array;
  f_coef : float array;
  f_support : int array;
  f_lin_idx : int array;
  f_lin_coef : float array;
  f_lin_const : float;
  f_slot : int;
}

type gram = No_rows | Factored of Mat.lu | Gram_singular

type plan = {
  pl_key : string;
  pl_vars : string list;
  pl_n : int;
  pl_index : (string, int) Hashtbl.t;
  pl_objective : fn;
  pl_ineqs : fn array;
  pl_nterms : int array;
  pl_row_zero : bool array;
  pl_rows : Vec.t array;
  pl_rows1 : Vec.t array;
  pl_gram : gram;
  pl_zbasis : Vec.t array;
  pl_zbasis1 : Vec.t array;
  pl_objective1 : fn;
  pl_lower1 : fn;
  pl_ineqs1 : fn array;
  pl_max_terms : int;
}

type block = {
  bk_plan : plan;
  bk_members : Problem.t array;
  bk_nmembers : int;
  bk_b : float array array;
  bk_d : float array;
  bk_dz : float array;
  bk_nz : int;
}

(* Same support construction as [Compiled.merge_support]: distinct
   indices, ascending. *)
let merged_support lists =
  let tbl = Hashtbl.create 16 in
  List.iter (fun l -> Array.iter (fun i -> Hashtbl.replace tbl i ()) l) lists;
  let s = Array.of_seq (Seq.map fst (Hashtbl.to_seq tbl)) in
  Array.sort compare s;
  s

(* Mirror of [Compiled.of_sparse_terms] minus the [b] vector: terms are
   lists of (index, exponent) entries, strictly ascending by index. *)
let fn_of_sparse n ~slot sparse =
  if sparse = [] then invalid_arg "Gp.Batch: empty term list";
  let nterms = List.length sparse in
  let starts = Array.make (nterms + 1) 0 in
  let total = List.fold_left (fun acc entries -> acc + List.length entries) 0 sparse in
  let idx = Array.make total 0 in
  let coef = Array.make total 0.0 in
  List.iteri
    (fun k entries ->
      let pos = ref starts.(k) in
      List.iter
        (fun (i, c) ->
          if i < 0 || i >= n then invalid_arg "Gp.Batch: variable index out of range";
          idx.(!pos) <- i;
          coef.(!pos) <- c;
          incr pos)
        entries;
      starts.(k + 1) <- !pos)
    sparse;
  for k = 0 to nterms - 1 do
    for p = starts.(k) + 1 to starts.(k + 1) - 1 do
      if idx.(p - 1) >= idx.(p) then
        invalid_arg "Gp.Batch: indices not strictly ascending"
    done
  done;
  let row k = Array.init (starts.(k + 1) - starts.(k)) (fun p -> idx.(starts.(k) + p)) in
  {
    f_nterms = nterms;
    f_starts = starts;
    f_idx = idx;
    f_coef = coef;
    f_support = merged_support (List.init nterms row);
    f_lin_idx = [||];
    f_lin_coef = [||];
    f_lin_const = 0.0;
    f_slot = slot;
  }

let fn_of_posynomial n index ~slot p =
  let term m =
    List.sort
      (fun (i, _) (j, _) -> compare i j)
      (List.map (fun (x, e) -> (Hashtbl.find index x, e)) (M.exponents m))
  in
  fn_of_sparse n ~slot (List.map term (P.terms p))

(* Pure-affine function (no log-sum-exp terms), as [Compiled.affine]. *)
let fn_affine entries const =
  let entries = List.sort (fun (i, _) (j, _) -> compare i j) entries in
  let entries = List.filter (fun (_, c) -> c <> 0.0) entries in
  {
    f_nterms = 0;
    f_starts = [| 0 |];
    f_idx = [||];
    f_coef = [||];
    f_support = Array.of_list (List.map fst entries);
    f_lin_idx = Array.of_list (List.map fst entries);
    f_lin_coef = Array.of_list (List.map snd entries);
    f_lin_const = const;
    f_slot = -1;
  }

(* Phase-I image of an inequality: the same log-sum-exp structure (and
   the same coefficient slot) over n+1 variables, minus the slack s.
   Mirrors [Compiled.add_linear (Compiled.extend f 1) n (-1.0)]. *)
let fn_minus_slack n f =
  {
    f with
    f_lin_idx = Array.append f.f_lin_idx [| n |];
    f_lin_coef = Array.append f.f_lin_coef [| -1.0 |];
    f_support = merged_support [ f.f_support; [| n |] ];
  }

let compile problem =
  let key = structure_key problem in
  let vars = Problem.variables problem in
  let n = List.length vars in
  let index = Hashtbl.create (2 * n) in
  List.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let objective = fn_of_posynomial n index ~slot:0 (Problem.objective problem) in
  let ineqs =
    Array.of_list
      (List.mapi
         (fun j (_, p) -> fn_of_posynomial n index ~slot:(j + 1) p)
         (Problem.ineqs problem))
  in
  let nterms =
    Array.init
      (1 + Array.length ineqs)
      (fun s -> if s = 0 then objective.f_nterms else ineqs.(s - 1).f_nterms)
  in
  (* Equality rows [a . y = -log c], split into structurally nonzero
     rows (kept, in source order, as the scalar path does) and all-zero
     rows (only their right-hand sides matter, per member). *)
  let all_rows =
    List.map
      (fun (_, m) ->
        let a = Vec.create n in
        List.iter (fun (x, e) -> a.(Hashtbl.find index x) <- e) (M.exponents m);
        a)
      (Problem.eqs problem)
  in
  let row_zero =
    Array.of_list (List.map (fun a -> not (Vec.norm_inf a > 0.0)) all_rows)
  in
  let rows =
    Array.of_list (List.filter (fun a -> Vec.norm_inf a > 0.0) all_rows)
  in
  let rows1 = Array.map (fun a -> Vec.concat a [| 0.0 |]) rows in
  let p = Array.length rows in
  let gram =
    if p = 0 then No_rows
    else
      match
        Mat.lu_factor
          (Mat.init p p (fun i j ->
               Vec.dot rows.(i) rows.(j) +. if i = j then 1e-12 else 0.0))
      with
      | lu -> Factored lu
      | exception Mat.Singular -> Gram_singular
  in
  let max_terms =
    Array.fold_left (fun acc f -> max acc f.f_nterms) objective.f_nterms ineqs
  in
  {
    pl_key = key;
    pl_vars = vars;
    pl_n = n;
    pl_index = index;
    pl_objective = objective;
    pl_ineqs = ineqs;
    pl_nterms = nterms;
    pl_row_zero = row_zero;
    pl_rows = rows;
    pl_rows1 = rows1;
    pl_gram = gram;
    pl_zbasis = Mat.nullspace_basis n rows;
    pl_zbasis1 = Mat.nullspace_basis (n + 1) rows1;
    pl_objective1 = fn_affine [ (n, 1.0) ] 0.0;
    pl_lower1 = fn_affine [ (n, -1.0) ] (-20.0);
    pl_ineqs1 = Array.map (fn_minus_slack n) ineqs;
    pl_max_terms = max_terms;
  }

let pack plan problems =
  let nm = Array.length problems in
  if nm = 0 then invalid_arg "Gp.Batch.pack: empty batch";
  Array.iter
    (fun pr ->
      if not (String.equal (structure_key pr) plan.pl_key) then
        invalid_arg "Gp.Batch.pack: problem does not share the plan's structure")
    problems;
  let nslots = 1 + Array.length plan.pl_ineqs in
  let b = Array.init nslots (fun s -> Array.make (nm * plan.pl_nterms.(s)) 0.0) in
  let p = Array.length plan.pl_rows in
  let nz = Array.length plan.pl_row_zero - p in
  let d = Array.make (nm * p) 0.0 in
  let dz = Array.make (nm * nz) 0.0 in
  Array.iteri
    (fun m pr ->
      let fill_slot s poly =
        let nt = plan.pl_nterms.(s) in
        let dst = b.(s) in
        List.iteri (fun k mono -> dst.((m * nt) + k) <- log (M.coeff mono)) (P.terms poly)
      in
      fill_slot 0 (Problem.objective pr);
      List.iteri (fun j (_, poly) -> fill_slot (j + 1) poly) (Problem.ineqs pr);
      let r = ref 0 in
      let z = ref 0 in
      List.iteri
        (fun e (_, mono) ->
          let dv = -.log (M.coeff mono) in
          if plan.pl_row_zero.(e) then begin
            dz.((m * nz) + !z) <- dv;
            incr z
          end
          else begin
            d.((m * p) + !r) <- dv;
            incr r
          end)
        (Problem.eqs pr))
    problems;
  {
    bk_plan = plan;
    bk_members = Array.copy problems;
    bk_nmembers = nm;
    bk_b = b;
    bk_d = d;
    bk_dz = dz;
    bk_nz = nz;
  }

(* --- flat evaluation --------------------------------------------------- *)

(* These are transcriptions of [Compiled.row_dot] / [linear_part] /
   [lse_value] / [value] / [eval_into] with three mechanical changes:
   the per-term constant comes from [(b, boff)] instead of a field, the
   Hessian is a flat row-major buffer with stride [hn], and array
   accesses are unchecked.  Every float operation and its order is
   preserved, so results are bit-identical — the QCheck properties in
   test/test_compiled.ml enforce this. *)

let row_dot f k y =
  let acc = ref 0.0 in
  let last = Array.unsafe_get f.f_starts (k + 1) - 1 in
  for p = Array.unsafe_get f.f_starts k to last do
    acc :=
      !acc
      +. Array.unsafe_get f.f_coef p
         *. Array.unsafe_get y (Array.unsafe_get f.f_idx p)
  done;
  !acc

let linear_part f y =
  let acc = ref 0.0 in
  for p = 0 to Array.length f.f_lin_idx - 1 do
    acc :=
      !acc
      +. Array.unsafe_get f.f_lin_coef p
         *. Array.unsafe_get y (Array.unsafe_get f.f_lin_idx p)
  done;
  !acc

let lse_value f ~b ~boff ~es y =
  for k = 0 to f.f_nterms - 1 do
    Array.unsafe_set es k (row_dot f k y +. Array.unsafe_get b (boff + k))
  done;
  let m = ref neg_infinity in
  for k = 0 to f.f_nterms - 1 do
    m := Float.max !m (Array.unsafe_get es k)
  done;
  let z = ref 0.0 in
  for k = 0 to f.f_nterms - 1 do
    z := !z +. exp (Array.unsafe_get es k -. !m)
  done;
  !m +. log !z

let value f ~b ~boff ~es y =
  let v =
    if f.f_nterms = 0 then linear_part f y
    else if Array.length f.f_lin_idx = 0 then lse_value f ~b ~boff ~es y
    else lse_value f ~b ~boff ~es y +. linear_part f y
  in
  if f.f_lin_const <> 0.0 then v +. f.f_lin_const else v

let eval_into f ~b ~boff ~es ~grad ~hess ~hn y =
  let support = f.f_support in
  let ns = Array.length support in
  for a = 0 to ns - 1 do
    Array.unsafe_set grad (Array.unsafe_get support a) 0.0
  done;
  for a = 0 to ns - 1 do
    let base = Array.unsafe_get support a * hn in
    for bj = 0 to ns - 1 do
      Array.unsafe_set hess (base + Array.unsafe_get support bj) 0.0
    done
  done;
  let v_lse =
    if f.f_nterms = 0 then 0.0
    else begin
      for k = 0 to f.f_nterms - 1 do
        Array.unsafe_set es k (row_dot f k y +. Array.unsafe_get b (boff + k))
      done;
      let m = ref neg_infinity in
      for k = 0 to f.f_nterms - 1 do
        m := Float.max !m (Array.unsafe_get es k)
      done;
      let m = !m in
      for k = 0 to f.f_nterms - 1 do
        Array.unsafe_set es k (exp (Array.unsafe_get es k -. m))
      done;
      let z = ref 0.0 in
      for k = 0 to f.f_nterms - 1 do
        z := !z +. Array.unsafe_get es k
      done;
      let z = !z in
      let v = m +. log z in
      for k = 0 to f.f_nterms - 1 do
        Array.unsafe_set es k (Array.unsafe_get es k /. z)
      done;
      for k = 0 to f.f_nterms - 1 do
        let p = Array.unsafe_get es k in
        for q = Array.unsafe_get f.f_starts k to Array.unsafe_get f.f_starts (k + 1) - 1 do
          let i = Array.unsafe_get f.f_idx q in
          Array.unsafe_set grad i
            (Array.unsafe_get grad i +. (p *. Array.unsafe_get f.f_coef q))
        done
      done;
      for k = 0 to f.f_nterms - 1 do
        let p = Array.unsafe_get es k in
        let first = Array.unsafe_get f.f_starts k in
        let last = Array.unsafe_get f.f_starts (k + 1) - 1 in
        for q = first to last do
          let i = Array.unsafe_get f.f_idx q in
          let pai = p *. Array.unsafe_get f.f_coef q in
          if pai <> 0.0 then begin
            let base = i * hn in
            for r = first to last do
              let o = base + Array.unsafe_get f.f_idx r in
              Array.unsafe_set hess o
                (Array.unsafe_get hess o +. (pai *. Array.unsafe_get f.f_coef r))
            done
          end
        done
      done;
      for a = 0 to ns - 1 do
        let i = Array.unsafe_get support a in
        let gi = Array.unsafe_get grad i in
        let base = i * hn in
        for bj = 0 to ns - 1 do
          let j = Array.unsafe_get support bj in
          let o = base + j in
          Array.unsafe_set hess o
            (Array.unsafe_get hess o +. -.(gi *. Array.unsafe_get grad j))
        done
      done;
      v
    end
  in
  for p = 0 to Array.length f.f_lin_idx - 1 do
    let i = Array.unsafe_get f.f_lin_idx p in
    Array.unsafe_set grad i
      (Array.unsafe_get grad i +. Array.unsafe_get f.f_lin_coef p)
  done;
  let v =
    if f.f_nterms = 0 then linear_part f y
    else if Array.length f.f_lin_idx = 0 then v_lse
    else v_lse +. linear_part f y
  in
  if f.f_lin_const <> 0.0 then v +. f.f_lin_const else v

(* --- test conveniences ------------------------------------------------- *)

let slot_fn block slot =
  if slot = 0 then block.bk_plan.pl_objective
  else block.bk_plan.pl_ineqs.(slot - 1)

let member_value block ~member ~slot y =
  let f = slot_fn block slot in
  let es = Array.make (max 1 f.f_nterms) 0.0 in
  value f ~b:block.bk_b.(slot)
    ~boff:(member * block.bk_plan.pl_nterms.(slot))
    ~es y

let member_eval_into block ~member ~slot ~grad ~hess y =
  let f = slot_fn block slot in
  let n = block.bk_plan.pl_n in
  let es = Array.make (max 1 f.f_nterms) 0.0 in
  let hflat = Array.make (n * n) 0.0 in
  let v =
    eval_into f ~b:block.bk_b.(slot)
      ~boff:(member * block.bk_plan.pl_nterms.(slot))
      ~es ~grad ~hess:hflat ~hn:n y
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set hess i j hflat.((i * n) + j)
    done
  done;
  v
