(** Data footprint of a tensor tile: the product over data dimensions of
    their affine extents (see {!Affine_dim}).

    Keeping the factored form (rather than an expanded posynomial) lets
    Algorithm 1's [replace] step act dimension-locally and lets the
    concrete accelerator model evaluate footprints exactly, halo constants
    included. *)

type t

val make : Affine_dim.t list -> t

val dims : t -> Affine_dim.t list

val subst : string -> Monomial.t -> t -> t

val bind : string -> float -> t -> t

val mentions : t -> string -> bool

val eval_exact : (string -> float) -> t -> float
(** Product of exact dimension extents. *)

val to_posynomial : t -> Posynomial.t
(** Expanded product of relaxed dimension posynomials. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
