type t = { rows : int; cols : int; data : float array }

exception Singular

let singular_threshold = 1e-13

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let of_rows arr =
  let rows = Array.length arr in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length arr.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
      arr;
    init rows cols (fun i j -> arr.(i).(j))
  end

let rows m = m.rows

let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)

let set m i j v = m.data.((i * m.cols) + j) <- v

let add_to m i j v =
  let k = (i * m.cols) + j in
  m.data.(k) <- m.data.(k) +. v

let copy m = { m with data = Array.copy m.data }

let fill m v = Array.fill m.data 0 (Array.length m.data) v

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: dimension mismatch";
  { a with data = Array.mapi (fun k v -> v +. b.data.(k)) a.data }

let scale s m = { m with data = Array.map (fun v -> s *. v) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          add_to c i j (aik *. get b k j)
        done
    done
  done;
  c

let mul_vec m x =
  if m.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let mul_trans_vec m x =
  if m.rows <> Array.length x then invalid_arg "Mat.mul_trans_vec: dimension mismatch";
  let y = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (get m i j *. xi)
      done
  done;
  y

let lu_solve a b =
  if a.rows <> a.cols then invalid_arg "Mat.lu_solve: matrix not square";
  if a.rows <> Array.length b then invalid_arg "Mat.lu_solve: dimension mismatch";
  let n = a.rows in
  let m = copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry of column k to
       the diagonal. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !pivot_row k) then pivot_row := i
    done;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m !pivot_row j);
        set m !pivot_row j tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!pivot_row);
      x.(!pivot_row) <- tmp
    end;
    let pivot = get m k k in
    if Float.abs pivot < singular_threshold then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = get m i k /. pivot in
      if factor <> 0.0 then begin
        set m i k 0.0;
        for j = k + 1 to n - 1 do
          add_to m i j (-.factor *. get m k j)
        done;
        x.(i) <- x.(i) -. (factor *. x.(k))
      end
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get m i j *. x.(j))
    done;
    x.(i) <- !acc /. get m i i
  done;
  x

(* Factored form of the elimination above.  [lu_factor] runs the exact
   same pivot searches, row swaps, singularity checks and trailing
   updates as [lu_solve], but stores the multiplier of step k at (i, k)
   instead of zeroing it (a multiplier that rounds to 0.0 skips the
   trailing update in both paths).  Because every row swap moves whole
   rows — stored multipliers included — each logical row keeps its own
   multipliers, so [lu_solve_factored] (all swaps applied up front, then
   forward substitution with the stored multipliers, then the same back
   substitution) performs the identical float operations in the
   identical order as [lu_solve]: the two are bit-for-bit equal, which
   test/test_linalg.ml pins with a QCheck property. *)
type lu = { lu_fac : t; lu_piv : int array }

let lu_factor a =
  if a.rows <> a.cols then invalid_arg "Mat.lu_factor: matrix not square";
  let n = a.rows in
  let m = copy a in
  let piv = Array.init n (fun k -> k) in
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !pivot_row k) then pivot_row := i
    done;
    piv.(k) <- !pivot_row;
    if !pivot_row <> k then
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m !pivot_row j);
        set m !pivot_row j tmp
      done;
    let pivot = get m k k in
    if Float.abs pivot < singular_threshold then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = get m i k /. pivot in
      set m i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          add_to m i j (-.factor *. get m k j)
        done
    done
  done;
  { lu_fac = m; lu_piv = piv }

let lu_solve_factored { lu_fac = m; lu_piv = piv } b =
  let n = m.rows in
  if n <> Array.length b then invalid_arg "Mat.lu_solve_factored: dimension mismatch";
  let x = Array.copy b in
  for k = 0 to n - 1 do
    if piv.(k) <> k then begin
      let tmp = x.(k) in
      x.(k) <- x.(piv.(k));
      x.(piv.(k)) <- tmp
    end
  done;
  (* Forward substitution with the stored multipliers, skipping exact
     zeros like the interleaved elimination does. *)
  for k = 0 to n - 1 do
    for i = k + 1 to n - 1 do
      let factor = get m i k in
      if factor <> 0.0 then x.(i) <- x.(i) -. (factor *. x.(k))
    done
  done;
  (* Back substitution, identical to [lu_solve]. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get m i j *. x.(j))
    done;
    x.(i) <- !acc /. get m i i
  done;
  x

(* Orthonormal basis of null(A) by modified Gram-Schmidt: orthonormalize
   the rows of A, then complete the basis with coordinate vectors; the
   vectors accepted in the second stage span the nullspace.  Dependent
   rows are dropped by the norm threshold, so rank deficiency is
   handled.  Fully deterministic (threshold comparisons only). *)
let nullspace_basis n rows_arr =
  let basis = ref [] in
  let nbasis = ref 0 in
  let null_cols = ref [] in
  let orthogonalize v =
    (* Two MGS passes for numerical orthogonality. *)
    for _pass = 1 to 2 do
      List.iter
        (fun b ->
          let c = Vec.dot b v in
          if c <> 0.0 then
            for i = 0 to n - 1 do
              v.(i) <- v.(i) -. (c *. b.(i))
            done)
        (List.rev !basis)
    done;
    Vec.norm2 v
  in
  let accept v = basis := v :: !basis; incr nbasis in
  Array.iter
    (fun a ->
      let v = Vec.copy a in
      let nrm = orthogonalize v in
      if nrm > 1e-12 then begin
        for i = 0 to n - 1 do
          v.(i) <- v.(i) /. nrm
        done;
        accept v
      end)
    rows_arr;
  let i = ref 0 in
  while !nbasis < n && !i < n do
    let v = Vec.create n in
    v.(!i) <- 1.0;
    let nrm = orthogonalize v in
    if nrm > 1e-8 then begin
      for j = 0 to n - 1 do
        v.(j) <- v.(j) /. nrm
      done;
      accept v;
      null_cols := v :: !null_cols
    end;
    incr i
  done;
  Array.of_list (List.rev !null_cols)

(* In-place Cholesky over the lower triangle: entry (i, j <= i) is
   replaced by L(i, j); the strict upper triangle is left untouched, so a
   buffer can be refilled and refactored without clearing it. *)
let cholesky_in_place a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky_in_place: matrix not square";
  let n = a.rows in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (get a i k *. get a j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then raise Singular;
        set a i j (sqrt !acc)
      end
      else set a i j (!acc /. get a j j)
    done
  done

let cholesky a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: matrix not square";
  let l = create a.rows a.rows in
  for i = 0 to a.rows - 1 do
    for j = 0 to i do
      set l i j (get a i j)
    done
  done;
  cholesky_in_place l;
  l

(* Forward/back substitution reading only the lower triangle of [l],
   overwriting [y] with the solution of [l * transpose l * x = y]. *)
let cholesky_solve_in_place l y =
  let n = rows l in
  if n <> Array.length y then
    invalid_arg "Mat.cholesky_solve_in_place: dimension mismatch";
  (* Forward substitution with l. *)
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (get l i j *. y.(j))
    done;
    y.(i) <- !acc /. get l i i
  done;
  (* Back substitution with transpose l. *)
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get l j i *. y.(j))
    done;
    y.(i) <- !acc /. get l i i
  done

let cholesky_solve l b =
  let y = Array.copy b in
  cholesky_solve_in_place l y;
  y

let solve_spd a b = cholesky_solve (cholesky a) b

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[@[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%g" (get m i j)
    done;
    Format.fprintf ppf "@]]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
