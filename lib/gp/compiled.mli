(** Compiled evaluation kernels for the barrier solver.

    A {!Smooth.t} built by {!Smooth.log_sum_exp} walks a list of dense
    [(row, offset)] pairs on every evaluation, touching all [n] problem
    variables per term even though most monomial rows of a Thistle
    formulation mention no more than a handful of them.  This module
    compiles the same function once into contiguous exponent-row arrays
    with a per-row sparsity index, and evaluates it with tight loops
    that fill caller-provided gradient/Hessian buffers.

    {2 Bit-identity contract}

    For finite arguments, {!value} and {!eval_into} execute the same
    floating-point operations in the same order as
    {!Smooth.log_sum_exp} on the equivalent dense term list, skipping
    only operations whose operand is an exact zero and whose result is
    provably bit-identical to not performing them (adding [+0.0]/[-0.0]
    to partial sums that start at [+0.0] and can never become [-0.0]).
    Values, gradients and Hessians are therefore {e bit-for-bit equal}
    to the list path — locked in by a QCheck property in
    [test/test_compiled.ml].

    A compiled function owns scratch arrays mutated by evaluation: a
    single value must not be evaluated from two domains concurrently
    (the solver compiles per [solve] call, which guarantees this). *)

type t

val of_terms : int -> (Linalg.Vec.t * float) list -> t
(** [of_terms n terms] compiles the same function as
    [Smooth.log_sum_exp n terms].  Raises [Invalid_argument] on an empty
    list or a dimension mismatch. *)

val of_sparse_terms : int -> ((int * float) list * float) list -> t
(** [of_sparse_terms n terms] with terms [(entries, b_k)]; entries are
    [(variable index, exponent)] and must be strictly ascending by
    index.  Raises [Invalid_argument] otherwise. *)

val of_posynomial : int -> (string, int) Hashtbl.t -> Symexpr.Posynomial.t -> t
(** Log-space image of a posynomial under the given variable index —
    the compiled counterpart of the solver's posynomial lowering. *)

val affine : int -> (int * float) list -> float -> t
(** [affine n entries c] is [fun y -> sum (i, a) in entries. a * y_i + c]
    — the compiled counterpart of {!Smooth.linear} (zero Hessian). *)

val extend : t -> int -> t
(** [extend f extra] views [f] as a function of [dim + extra] variables
    ignoring the trailing coordinates, like {!Smooth.extend}. *)

val add_linear : t -> int -> float -> t
(** [add_linear f i c] is [fun y -> f y + c * y_i]; used to build the
    phase-I function [G(y, s) = f(y) - s].  Raises [Invalid_argument]
    if [i] already carries a linear term. *)

val dim : t -> int

val num_terms : t -> int

val support : t -> int array
(** Ascending indices of the variables the function depends on.
    {!eval_into} writes only these entries of the gradient and only
    their square in the Hessian. *)

val value : t -> Linalg.Vec.t -> float

val eval_into : t -> Linalg.Vec.t -> grad:Linalg.Vec.t -> hess:Linalg.Mat.t -> float
(** [eval_into f y ~grad ~hess] returns [f y] and fills the function's
    gradient and Hessian into the given buffers.  Only the {!support}
    entries of [grad] and the support-square block of [hess] are
    written (overwritten, not accumulated); everything else is left
    untouched, so one pair of buffers can be reused across functions
    whose supports differ.  Buffers must have the function's dimension;
    out-of-range accesses are unchecked beyond array bounds. *)
