type kind = Temporal | Spatial

let canonical = [ Temporal; Temporal; Spatial; Temporal ]

let canonical_names = [ "reg"; "pe"; "spatial"; "dram" ]

let register_level = 0

let pe_temporal_level = 1

let spatial_level = 2

let dram_temporal_level = 3

let name i =
  match List.nth_opt canonical_names i with
  | Some n -> n
  | None -> Printf.sprintf "level%d" i

let trip_var ~level ~dim = Printf.sprintf "t%d.%s" level dim

let parse_trip_var s =
  match String.index_opt s '.' with
  | Some dot when dot > 1 && s.[0] = 't' -> begin
    match int_of_string_opt (String.sub s 1 (dot - 1)) with
    | Some level -> Some (level, String.sub s (dot + 1) (String.length s - dot - 1))
    | None -> None
  end
  | _ -> None
