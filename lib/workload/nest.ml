type dim = { dim_name : string; extent : int }

type index = { stride : int; iter : string }

type projection = index list

type tensor = {
  tensor_name : string;
  projections : projection list;
  read_write : bool;
}

type t = { name : string; dims : dim list; tensors : tensor list }

let fail fmt = Printf.ksprintf invalid_arg fmt

let check_unique what names =
  let sorted = List.sort String.compare names in
  let rec dup = function
    | a :: b :: _ when String.equal a b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some d -> fail "Nest.make: duplicate %s %S" what d
  | None -> ()

let make ~name ~dims ~tensors =
  check_unique "dimension" (List.map (fun d -> d.dim_name) dims);
  check_unique "tensor" (List.map (fun t -> t.tensor_name) tensors);
  List.iter
    (fun d ->
      if d.extent < 1 then fail "Nest.make: dimension %S has extent %d" d.dim_name d.extent)
    dims;
  let declared it = List.exists (fun d -> String.equal d.dim_name it) dims in
  List.iter
    (fun t ->
      if t.projections = [] then fail "Nest.make: tensor %S has no projections" t.tensor_name;
      List.iter
        (fun proj ->
          if proj = [] then fail "Nest.make: tensor %S has an empty projection" t.tensor_name;
          List.iter
            (fun { stride; iter } ->
              if stride < 1 then
                fail "Nest.make: tensor %S uses stride %d on %S" t.tensor_name stride iter;
              if not (declared iter) then
                fail "Nest.make: tensor %S references undeclared iterator %S" t.tensor_name iter)
            proj)
        t.projections)
    tensors;
  { name; dims; tensors }

let name n = n.name

let dims n = n.dims

let dim_names n = List.map (fun d -> d.dim_name) n.dims

let extent n it =
  match List.find_opt (fun d -> String.equal d.dim_name it) n.dims with
  | Some d -> d.extent
  | None -> raise Not_found

let tensors n = n.tensors

let tensor n tname =
  match List.find_opt (fun t -> String.equal t.tensor_name tname) n.tensors with
  | Some t -> t
  | None -> raise Not_found

let iters_of_tensor t =
  List.sort_uniq String.compare
    (List.concat_map (List.map (fun i -> i.iter)) t.projections)

let tensor_mentions t it =
  List.exists (List.exists (fun i -> String.equal i.iter it)) t.projections

let ops n =
  List.fold_left (fun acc d -> acc *. float_of_int d.extent) 1.0 n.dims

(* Extent of one projection over the full iteration space:
   sum stride * extent - sum stride + 1. *)
let projection_words n proj =
  let weighted =
    List.fold_left (fun acc { stride; iter } -> acc + (stride * extent n iter)) 0 proj
  in
  let strides = List.fold_left (fun acc { stride; _ } -> acc + stride) 0 proj in
  float_of_int (weighted - strides + 1)

let tensor_words n t =
  List.fold_left (fun acc proj -> acc *. projection_words n proj) 1.0 t.projections

let total_words n =
  List.fold_left (fun acc t -> acc +. tensor_words n t) 0.0 n.tensors

let pp_projection ppf proj =
  List.iteri
    (fun i { stride; iter } ->
      if i > 0 then Format.fprintf ppf "+";
      if stride <> 1 then Format.fprintf ppf "%d*" stride;
      Format.fprintf ppf "%s" iter)
    proj

let pp ppf n =
  Format.fprintf ppf "@[<v>nest %s:@," n.name;
  Format.fprintf ppf "  dims:";
  List.iter (fun d -> Format.fprintf ppf " %s=%d" d.dim_name d.extent) n.dims;
  Format.fprintf ppf "@,";
  List.iter
    (fun t ->
      Format.fprintf ppf "  %s%s[" t.tensor_name (if t.read_write then "(rw)" else "");
      List.iteri
        (fun i proj ->
          if i > 0 then Format.fprintf ppf "][";
          pp_projection ppf proj)
        t.projections;
      Format.fprintf ppf "]@,")
    n.tensors;
  Format.fprintf ppf "@]"
