module Nest = Workload.Nest
module Mapping = Mapspace.Mapping
module Level = Mapspace.Level

type fill_report = { tensor : string; level : int; copies : int; words : float }

(* One loop of the flattened nest enclosing a copy point. *)
type loop = { loop_dim : string; trips : int; block : int (* origin step per iteration *) }

(* Loops enclosing the level-[l] copy of [tensor], outermost first:
   every loop of levels above [l] (spatial levels restricted to dims
   present in the tensor — multicast serves the rest), then the loops of
   level [l] outside the hoist point. *)
let enclosing_loops mapping tensor ~level ~hoist_index =
  let loops_of_level l ~keep =
    let lvl = Mapping.level mapping l in
    let dims =
      match lvl.Mapping.kind with
      | Level.Temporal -> lvl.Mapping.perm
      | Level.Spatial -> List.map fst lvl.Mapping.factors
    in
    List.filter_map
      (fun dim ->
        if not (keep dim) then None
        else
          Some
            {
              loop_dim = dim;
              trips = Mapping.factor mapping ~level:l dim;
              block = Mapping.extent_through mapping ~level:(l - 1) dim;
            })
      dims
  in
  let nlevels = Mapping.num_levels mapping in
  let upper =
    List.concat_map
      (fun l ->
        let lvl = Mapping.level mapping l in
        let keep dim =
          match lvl.Mapping.kind with
          | Level.Temporal -> true
          | Level.Spatial -> Nest.tensor_mentions tensor dim
        in
        loops_of_level l ~keep)
      (List.rev (List.init (nlevels - 1 - level) (fun i -> level + 1 + i)))
  in
  let this_level =
    let lvl = Mapping.level mapping level in
    let outer_dims =
      List.filteri (fun i _ -> i < hoist_index) lvl.Mapping.perm
    in
    loops_of_level level ~keep:(fun d -> List.mem d outer_dims)
  in
  upper @ this_level

(* Index of the innermost iterator of the level's permutation present in
   the tensor reference; [None] when no iterator is present (the copy
   hoists above the whole level). *)
let hoist_position mapping tensor ~level =
  let perm = (Mapping.level mapping level).Mapping.perm in
  let n = List.length perm in
  let rec scan i = function
    | [] -> None
    | dim :: outer ->
      (* Trip-count-1 loops are not emitted, so hoisting passes through
         them (same rule as Accmodel.Counts). *)
      if
        Nest.tensor_mentions tensor dim
        && Mapping.factor mapping ~level dim > 1
      then Some (n - 1 - i)
      else scan (i + 1) outer
  in
  scan 0 (List.rev perm)

(* Words of one copy at given per-dim origins: product over projections of
   the interval length [sum stride*(origin + ext - 1) - sum stride*origin
   + 1]; origins cancel, but computing both ends from the actual indices
   exercises the interval arithmetic. *)
let copy_words tensor ~origin ~ext =
  List.fold_left
    (fun acc proj ->
      let start =
        List.fold_left (fun a { Nest.stride; iter } -> a + (stride * origin iter)) 0 proj
      in
      let stop =
        List.fold_left
          (fun a { Nest.stride; iter } -> a + (stride * (origin iter + ext iter - 1)))
          0 proj
      in
      acc *. float_of_int (stop - start + 1))
    1.0 tensor.Nest.projections

(* Walk the copy schedule of one (tensor, level) pair: literally iterate
   the enclosing loops, and at each copy point record the copy's word
   count (interval arithmetic at the current indices) and the number of
   whole [burst_words]-sized bursts it needs ([ceil] per copy — a copy
   cannot share a burst with the next one). *)
let walk mapping tensor ~level ~burst_words =
  let ext_below dim = Mapping.extent_through mapping ~level:(level - 1) dim in
  let perm = (Mapping.level mapping level).Mapping.perm in
  let hoist_index, hoist_dim =
    match hoist_position mapping tensor ~level with
    | Some i -> (i, Some (List.nth perm i))
    | None -> (0, None)
  in
  let tile_ext dim =
    match hoist_dim with
    | Some h when String.equal h dim -> ext_below dim * Mapping.factor mapping ~level dim
    | Some _ | None -> ext_below dim
  in
  let loops = enclosing_loops mapping tensor ~level ~hoist_index in
  let origins = Hashtbl.create 8 in
  let origin dim = Option.value ~default:0 (Hashtbl.find_opt origins dim) in
  let copies = ref 0 in
  let words = ref 0.0 in
  let bursts = ref 0.0 in
  let rec run = function
    | [] ->
      incr copies;
      let cw = copy_words tensor ~origin ~ext:tile_ext in
      words := !words +. cw;
      bursts := !bursts +. Float.ceil (cw /. burst_words)
    | l :: inner ->
      let saved = origin l.loop_dim in
      for i = 0 to l.trips - 1 do
        Hashtbl.replace origins l.loop_dim (saved + (i * l.block));
        run inner
      done;
      Hashtbl.replace origins l.loop_dim saved
  in
  run loops;
  (!copies, !words, !bursts)

let fills_of_tensor mapping tensor ~level =
  let copies, words, _ = walk mapping tensor ~level ~burst_words:1.0 in
  { tensor = tensor.Nest.tensor_name; level; copies; words }

let fills nest mapping =
  match Mapping.validate nest mapping with
  | Error _ as e -> e
  | Ok () ->
    let nlevels = Mapping.num_levels mapping in
    let boundary_levels =
      List.filter
        (fun l -> (Mapping.level mapping l).Mapping.kind = Level.Temporal)
        (List.init (nlevels - 1) (fun i -> i + 1))
    in
    Ok
      (List.concat_map
         (fun tensor ->
           List.map (fun level -> fills_of_tensor mapping tensor ~level) boundary_levels)
         (Nest.tensors nest))

(* --- timed replay (DESIGN §16) --- *)

module Link = Archspec.Link
module Tech = Archspec.Technology

type timing = {
  compute : float;
  channels : Link.occupancy list;
  cycles : float;
  binding : string;
}

(* The timed replay charges each level's copies to its link, so it only
   makes sense on the canonical 4-level hierarchy where level 1 is the
   SRAM->register (NoC) boundary and level 3 the DRAM->SRAM boundary. *)
let canonical_levels mapping =
  Mapping.num_levels mapping = 4
  && (Mapping.level mapping Level.pe_temporal_level).Mapping.kind = Level.Temporal
  && (Mapping.level mapping Level.spatial_level).Mapping.kind = Level.Spatial
  && (Mapping.level mapping Level.dram_temporal_level).Mapping.kind
     = Level.Temporal

let timed ?(contention = false) tech nest mapping =
  match Mapping.validate nest mapping with
  | Error _ as e -> e
  | Ok () ->
    if not (canonical_levels mapping) then
      Error "refsim: timed replay requires the canonical 4-level mapping"
    else begin
      let links = tech.Tech.links in
      (* One walk per (tensor, level); the read direction sums every
         tensor, the write-back direction only read-write tensors —
         tensors in nest order, matching the analytical model's
         accumulation so the totals are the same exact integers. *)
      let totals ~level ~burst_words =
        List.fold_left
          (fun (rd_w, rd_b, wr_w, wr_b) tensor ->
            let _, w, b = walk mapping tensor ~level ~burst_words in
            if tensor.Nest.read_write then
              (rd_w +. w, rd_b +. b, wr_w +. w, wr_b +. b)
            else (rd_w +. w, rd_b +. b, wr_w, wr_b))
          (0.0, 0.0, 0.0, 0.0) (Nest.tensors nest)
      in
      let d_rd_w, d_rd_b, d_wr_w, d_wr_b =
        totals ~level:Level.dram_temporal_level
          ~burst_words:links.Link.dram.Link.burst_words
      in
      let n_rd_w, n_rd_b, n_wr_w, n_wr_b =
        totals ~level:Level.pe_temporal_level
          ~burst_words:links.Link.noc.Link.burst_words
      in
      let shared =
        [
          Link.occupancy "dram-rd" links.Link.dram ~words:d_rd_w ~bursts:d_rd_b;
          Link.occupancy "dram-wr" links.Link.dram ~words:d_wr_w ~bursts:d_wr_b;
          Link.occupancy "noc-rd" links.Link.noc ~words:n_rd_w ~bursts:n_rd_b;
          Link.occupancy "noc-wr" links.Link.noc ~words:n_wr_w ~bursts:n_wr_b;
        ]
      in
      let macs = Nest.ops nest in
      let pes = Mapping.spatial_size mapping in
      let compute = macs /. float_of_int pes in
      let reg =
        Link.stream_occupancy "reg" links.Link.reg
          ~words:(4.0 *. macs /. float_of_int pes)
      in
      let cycles, binding = Link.comm_cycles ~contention ~compute ~shared ~reg in
      Ok { compute; channels = shared @ [ reg ]; cycles; binding }
    end

(* --- footprint checks by enumeration --- *)

let enumerate_indices ~extents proj =
  let rec go acc = function
    | [] -> [ acc ]
    | { Nest.stride; iter } :: rest ->
      List.concat_map
        (fun i -> go (acc + (stride * i)) rest)
        (List.init (extents iter) (fun i -> i))
  in
  go 0 proj

let projection_span ~extents proj =
  let indices = enumerate_indices ~extents proj in
  let lo = List.fold_left Int.min max_int indices in
  let hi = List.fold_left Int.max min_int indices in
  hi - lo + 1

let projection_distinct ~extents proj =
  List.length (List.sort_uniq Int.compare (enumerate_indices ~extents proj))
