type entry = {
  nest : Workload.Nest.t;
  result : (Optimize.report, string) result;
}

let run_layers ?config tech arch_mode objective nests =
  (* One task per layer on the shared pool; the per-layer optimizer then
     runs its own sweep sequentially (nested parallel loops fall back, see
     Exec.Par), so the domain budget is spent on whole layers first.
     Exec.Par.map preserves the layer order. *)
  let jobs =
    match config with
    | Some c -> c.Optimize.jobs
    | None -> Optimize.default_config.Optimize.jobs
  in
  let inject =
    match config with
    | Some c -> c.Optimize.inject
    | None -> Optimize.default_config.Optimize.inject
  in
  Obs.Trace.span "pipeline"
    ~attrs:[ ("layers", string_of_int (List.length nests)) ]
    (fun () ->
      Exec.Par.map ~jobs
        (fun nest ->
          Obs.Trace.span "layer"
            ~attrs:[ ("name", Workload.Nest.name nest) ]
            (fun () ->
              (* Backstop guard: Optimize.run quarantines per-pair solve
                 and integerize faults itself, so what reaches this guard
                 is a crash outside those sites (formulation, ranking,
                 enumeration).  Exec.Par.map re-raises the lowest-index
                 exception, so without the guard one crashing layer would
                 kill its siblings' results. *)
              let result =
                match
                  Robust.guard ~inject ~site:"layer"
                    ~provenance:(Workload.Nest.name nest)
                    (fun () -> Optimize.run ?config tech arch_mode objective nest)
                with
                | Ok r -> r
                | Error f -> Error (Robust.describe f)
              in
              { nest; result }))
        nests)

let metrics entry =
  match entry.result with
  | Ok report -> Some report.Optimize.outcome.Integerize.metrics
  | Error _ -> None

(* "Dominant" follows the paper's Fig. 6/8 rule: the shared architecture
   is the one co-designed for the layer with the LARGEST objective score
   — worst-case-layer sizing under a minimization objective, not the best
   score.  Ties keep the earliest layer; non-finite scores never win. *)
let dominant_arch objective entries =
  let score m = Integerize.score objective m in
  let best =
    List.fold_left
      (fun acc entry ->
        match entry.result with
        | Error _ -> acc
        | Ok report ->
          let m = report.Optimize.outcome.Integerize.metrics in
          let s = score m in
          if not (Float.is_finite s) then acc
          else begin
            match acc with
            | Some (s', _) when s' >= s -> acc
            | Some _ | None -> Some (s, report.Optimize.outcome.Integerize.arch)
          end)
      None entries
  in
  match best with
  | Some (_, arch) -> Ok arch
  | None -> Error "dominant_arch: no layer optimized successfully"
