(** Technology parameters (paper Table III, 45 nm) and the analytical
    per-access energy / area models of Eq. 4 and Eq. 5.

    Units: areas in um^2, energies in pJ, capacities in 16-bit words. *)

type t = {
  area_mac : float;  (** um^2 per MAC unit *)
  area_register : float;  (** um^2 per register word *)
  area_sram_word : float;  (** um^2 per SRAM word *)
  energy_mac : float;  (** pJ per int16 MAC *)
  sigma_register : float;
      (** register energy constant: eps_R = sigma_R * R (pJ, R in words) *)
  sigma_sram : float;
      (** SRAM energy constant: eps_S = sigma_S * sqrt S (pJ, S in words).
          Stored here in pJ per sqrt-word; Table III lists the raw constant
          17.88 with a 10^-3 scale like the register constant. *)
  energy_dram : float;  (** pJ per DRAM word access *)
  dram_bandwidth : float;  (** words per cycle *)
  sram_bandwidth : float;  (** words per cycle *)
  links : Link.set;
      (** per-level link parameters for the communication-aware delay
          model (DESIGN §16); the aggregate bandwidths above remain the
          source of truth for the overlapped model *)
}

val make :
  area_mac:float ->
  area_register:float ->
  area_sram_word:float ->
  energy_mac:float ->
  sigma_register:float ->
  sigma_sram:float ->
  energy_dram:float ->
  dram_bandwidth:float ->
  sram_bandwidth:float ->
  links:Link.set ->
  t
(** Validating constructor, mirroring {!Arch.make}: every float field
    must be finite and positive, else [Invalid_argument] naming the
    offending field.  (Link fields are validated by {!Link.make}.)  A
    zero, negative or NaN bandwidth would otherwise flow into the DGP as
    [1.0 /. bw] and only die much later — or not at all, as a
    sign-flipped "posynomial". *)

val table3 : t
(** The paper's Table III values (45 nm, Accelergy/Cacti-derived), with the
    Fig. 3(a) example bandwidths and Eyeriss-calibrated link parameters. *)

val edge : t
(** A bandwidth-starved edge deployment point: Table III energies and
    areas with a single-channel DRAM interface (1 word/cycle, 8-cycle
    burst setup) and a narrow NoC (16 words/cycle).  Communication-limited
    by construction; used to exercise the communication-aware model where
    it disagrees with the overlapped one. *)

val reference_node_nm : float
(** The process node Table III describes: 45 nm. *)

val scale_to_node : t -> node_nm:float -> t
(** First-order technology scaling from the 45 nm reference: on-chip area
    and dynamic energy scale with the square of the feature-size ratio;
    off-chip DRAM access energy, the bandwidths and the link parameters
    are left unchanged.  Coarse by construction — intended for what-if
    exploration, not for sign-off numbers.  Raises [Invalid_argument] for
    non-positive nodes. *)

val register_access_energy : t -> registers:int -> float
(** [eps_R = sigma_R * R]: per-access register-file energy grows linearly
    with the file size (Eq. 4). *)

val sram_access_energy : t -> words:int -> float
(** [eps_S = sigma_S * sqrt S] (Eq. 4). *)

val register_access_energy_f : t -> float -> float
(** Real-valued variants used on pre-integerization solver output. *)

val sram_access_energy_f : t -> float -> float

val pe_area : t -> registers:int -> float
(** Area of one PE: [area_register * R + area_mac]. *)

val chip_area : t -> pes:int -> registers:int -> sram_words:int -> float
(** Left-hand side of the area constraint (Eq. 5):
    [(area_register * R + area_mac) * P + area_sram_word * S]. *)

val pp : Format.formatter -> t -> unit
