(* Differential test: the brute-force reference interpreter
   (Refsim.Simulate, which walks the loop nest and counts words with
   interval arithmetic) against the symbolic Algorithm 1 expressions
   (Thistle.Volume) evaluated at the same tile sizes, across the Table II
   zoo.

   The two sides share no code beyond the workload types, so exact
   agreement on copies, words and footprints is a meaningful check of
   both.  Agreement is exact when hoist points coincide: the simulator
   skips factor-1 loops, so the symbolic side is given per-level
   permutations restricted to the dims actually tiled (factor > 1) at
   that level — then syntactic and trip-count hoisting are the same
   rule. *)

module Nest = Workload.Nest
module Conv = Workload.Conv
module Sim = Refsim.Simulate
module V = Thistle.Volume
module Mapping = Mapspace.Mapping
module M = Symexpr.Monomial

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

(* Twelve layers spanning both networks. *)
let layers =
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  take 6 Workload.Zoo.yolo9000 @ take 6 Workload.Zoo.resnet18

let () = assert (List.length layers >= 10)

(* Largest divisor of [n] in [2 .. limit], or 1.  The budget argument
   caps the product of all non-register factors so the simulator's loop
   walk stays cheap on 544-wide zoo extents. *)
let divisor_of n ~limit =
  let rec go d = if d < 2 then 1 else if d <= limit && n mod d = 0 then d else go (d - 1) in
  go 4

type split = { reg : int; pe : int; spatial : int; dram : int }

(* Split every extent into (reg, pe, spatial, dram) factors, spending at
   most [budget] on the non-register levels overall.  [pick] chooses a
   divisor given (remaining extent, limit), letting the random variant
   inject choice. *)
let split_dims ?(budget = 4000) ~pick nest =
  let budget = ref budget in
  let take n =
    let d = pick n ~limit:(Int.min 4 !budget) in
    budget := !budget / d;
    d
  in
  List.map
    (fun d ->
      let e = Nest.extent nest d in
      let pe = take e in
      let dram = take (e / pe) in
      let spatial = take (e / pe / dram) in
      (d, { reg = e / pe / dram / spatial; pe; spatial; dram }))
    (Nest.dim_names nest)

(* The simulator needs full temporal permutations; the symbolic side
   needs the same order restricted to the tiled dims. *)
let full_perm restricted dims = restricted @ List.filter (fun d -> not (List.mem d restricted)) dims

let restrict order splits select =
  List.filter (fun d -> select (List.assoc d splits) > 1) order

(* Compare simulator fills/footprints against the symbolic boundaries
   for one (nest, splits, perm order) configuration; raises via Alcotest
   on any mismatch, labelled with the failing tensor/level. *)
let agree ~label nest splits ~pe_order ~dram_order =
  let dims = Nest.dim_names nest in
  let pe_perm = restrict pe_order splits (fun s -> s.pe) in
  let dram_perm = restrict dram_order splits (fun s -> s.dram) in
  let factors select = List.map (fun (d, s) -> (d, select s)) splits in
  let mapping =
    Mapping.canonical
      ~reg:(factors (fun s -> s.reg), full_perm [] dims)
      ~pe:(factors (fun s -> s.pe), full_perm pe_perm dims)
      ~spatial:(factors (fun s -> s.spatial))
      ~dram:(factors (fun s -> s.dram), full_perm dram_perm dims)
  in
  (match Mapping.validate nest mapping with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: invalid mapping: %s" label msg);
  let env = Mapping.env mapping in
  let analysis =
    V.analyze_general nest
      ~levels:[ V.Temporal []; V.Temporal pe_perm; V.Spatial; V.Temporal dram_perm ]
  in
  let reports =
    match Sim.fills nest mapping with
    | Ok r -> r
    | Error msg -> Alcotest.failf "%s: refsim failed: %s" label msg
  in
  List.iter
    (fun (name, _rw, boundaries) ->
      let tensor = Nest.tensor nest name in
      List.iter
        (fun b ->
          let r =
            List.find (fun r -> r.Sim.tensor = name && r.Sim.level = b.V.level) reports
          in
          let check what expected actual =
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s %s@%d: refsim %g vs symbolic %g" label name what
                 b.V.level expected actual)
              true (approx expected actual)
          in
          check "words" r.Sim.words (V.volume_eval_exact env b.V.fill);
          check "copies" (float_of_int r.Sim.copies) (M.eval env b.V.fill.V.prefix);
          let extents d = Mapping.extent_through mapping ~level:(b.V.level - 1) d in
          let counted_fp =
            List.fold_left
              (fun acc proj -> acc * Sim.projection_span ~extents proj)
              1 tensor.Nest.projections
          in
          check "footprint" (float_of_int counted_fp)
            (Symexpr.Footprint.eval_exact env b.V.footprint))
        boundaries)
    analysis.V.g_tensors

(* Deterministic sweep: one fixed small tiling per zoo layer, window dims
   preferentially tiled at the PE level so the sliding-window (halo)
   union is exercised in sram_to_reg. *)
let test_zoo_sweep () =
  List.iter
    (fun layer ->
      let nest = Conv.to_nest layer in
      let splits = split_dims ~pick:(fun n ~limit -> divisor_of n ~limit) nest in
      let dims = Nest.dim_names nest in
      agree ~label:layer.Conv.layer_name nest splits ~pe_order:dims
        ~dram_order:(List.rev dims))
    layers

(* Random tilings and permutation orders over random zoo layers. *)
let prop_random_tilings =
  let gen = QCheck2.Gen.int_range 0 100000 in
  QCheck2.Test.make ~name:"refsim = symbolic on random zoo tilings" ~count:60 gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let layer = List.nth layers (Random.State.int rng (List.length layers)) in
      let nest = Conv.to_nest layer in
      let pick n ~limit =
        (* A random divisor of n within the limit (1 always qualifies). *)
        let options =
          List.filter (fun d -> d <= limit && n mod d = 0) [ 1; 2; 3; 4 ]
        in
        List.nth options (Random.State.int rng (List.length options))
      in
      let splits = split_dims ~pick nest in
      let shuffle xs =
        List.map snd
          (List.sort compare (List.map (fun x -> (Random.State.bits rng, x)) xs))
      in
      let dims = Nest.dim_names nest in
      agree
        ~label:(Printf.sprintf "%s/seed=%d" layer.Conv.layer_name seed)
        nest splits ~pe_order:(shuffle dims) ~dram_order:(shuffle dims);
      true)

let () =
  Alcotest.run "differential"
    [
      ( "refsim vs symbolic",
        [
          Alcotest.test_case "zoo sweep" `Quick test_zoo_sweep;
          QCheck_alcotest.to_alcotest prop_random_tilings;
        ] );
    ]
