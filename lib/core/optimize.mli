(** Thistle's top-level, single-layer entry points: enumerate pruned
    permutation choices, solve one geometric program per choice, convert
    the best few real-valued solutions to integer design points, and rank
    them with the accelerator model (Fig. 2's flow).

    [dataflow] optimizes the mapping for a fixed architecture (the paper's
    baseline experiments, Figs. 4 and 7); [codesign] additionally frees
    the architectural parameters under an area budget (Figs. 5, 6 and 8). *)

type config = {
  n_divisors : int;  (** paper's [n], divisor candidates per tile variable *)
  n_pow2 : int;  (** paper's [N], power-of-two candidates per capacity *)
  top_choices : int;
      (** how many best-by-continuous-objective permutation choices are
          integerized and model-evaluated *)
  max_choices : int;  (** cap on enumerated permutation choices *)
  gp_tol : float;
  explore_placements : bool;
      (** when false, window dims stay at the register level instead of
          also trying spatial placement (ablation knob) *)
  min_pe_utilization : float;
      (** integer candidates using a smaller fraction of the PEs are
          rejected (paper Section IV's utilization filter); 0 disables *)
  jobs : int;
      (** parallelism of the GP-solve sweep and integerization shortlist,
          run on the shared {!Exec.Pool} (default
          [Domain.recommended_domain_count ()]).  [jobs = 1] takes the
          exact sequential path.  Results are bit-identical for any
          value: the sweep is order-preserving and candidate ranking
          totally orders solutions by objective. *)
  lint : Analysis.Lint.mode;
      (** static-analysis gate over every formulated GP
          ({!Formulate.lint}): [Enforce] (default) turns the whole run
          into an [Error] on any lint error — a malformed instance means
          the formulation code is wrong, not that one choice is unlucky;
          [Warn] logs and continues; [Off] skips the checks.  Solutions
          are additionally certified post-solve
          ({!Analysis.Certificate.check}); points with non-finite
          coordinates or constraint values are discarded in every mode. *)
}

val default_config : config

type report = {
  outcome : Integerize.outcome;
  choices_enumerated : int;
  choices_solved : int;  (** GPs that returned a usable point *)
  best_continuous : float;  (** best continuous objective across choices *)
  solve_totals : Gp.Solver.totals;
      (** solver telemetry summed over {e every} GP solve of the sweep,
          feasible or not, accumulated in deterministic enumeration
          order *)
}

val run :
  ?config:config ->
  Archspec.Technology.t ->
  Formulate.arch_mode ->
  Formulate.objective ->
  Workload.Nest.t ->
  (report, string) result

val dataflow :
  ?config:config ->
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  Formulate.objective ->
  Workload.Nest.t ->
  (report, string) result

val codesign :
  ?config:config ->
  Archspec.Technology.t ->
  area_budget:float ->
  Formulate.objective ->
  Workload.Nest.t ->
  (report, string) result
