(** Timeloop-style specification documents (Fig. 3): problem, mapping and
    architecture, emitted from — and parsed back into — this project's
    types.  This mirrors how Thistle drives the external Timeloop model in
    the paper's toolchain.

    Conventions: factors are written [dim=count]; permutations are written
    innermost-first (Timeloop's convention), while {!Mapspace.Mapping}
    stores them outer-to-inner. *)

val problem_to_yaml : Workload.Nest.t -> Yaml.value

val problem_of_yaml : Yaml.value -> (Workload.Nest.t, string) result

val mapping_to_yaml : Mapspace.Mapping.t -> Yaml.value
(** Canonical 4-level mappings only: emits one directive per level with
    targets [DRAM] (temporal), [SRAM] (spatial), [SRAM] (temporal) and
    [RegisterFile] (temporal). *)

val mapping_of_yaml : Yaml.value -> (Mapspace.Mapping.t, string) result

val constraints_to_yaml : Mapspace.Constraints.t -> Yaml.value
(** Timeloop-style mapspace-constraints document ([mapspace_constraints]
    list with per-level [factors], [max_factors] and
    [permutation_prefix]); canonical 4-level targets only. *)

val constraints_of_yaml : Yaml.value -> (Mapspace.Constraints.t, string) result

val architecture_to_yaml :
  Archspec.Technology.t -> Archspec.Arch.t -> Yaml.value
(** The Fig. 3(a) tree: DRAM, then a chip with shared SRAM and [P]
    replicated PEs, each with a register file and a MAC unit. *)

val architecture_of_yaml : Yaml.value -> (Archspec.Arch.t, string) result

val write_bundle :
  dir:string ->
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  Workload.Nest.t ->
  Mapspace.Mapping.t ->
  unit
(** Write [problem.yaml], [mapping.yaml] and [arch.yaml] under [dir]. *)
