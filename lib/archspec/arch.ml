type t = {
  arch_name : string;
  pe_count : int;
  registers_per_pe : int;
  sram_words : int;
}

let make ~name ~pes ~registers ~sram_words =
  if pes < 1 || registers < 1 || sram_words < 1 then
    invalid_arg "Arch.make: all parameters must be positive";
  { arch_name = name; pe_count = pes; registers_per_pe = registers; sram_words }

let eyeriss =
  make ~name:"eyeriss" ~pes:168 ~registers:512 ~sram_words:(128 * 1024 / 2)

let area tech a =
  Technology.chip_area tech ~pes:a.pe_count ~registers:a.registers_per_pe
    ~sram_words:a.sram_words

let eyeriss_area tech = area tech eyeriss

let register_energy tech a =
  Technology.register_access_energy tech ~registers:a.registers_per_pe

let sram_energy tech a = Technology.sram_access_energy tech ~words:a.sram_words

let pp ppf a =
  Format.fprintf ppf "%s: P=%d R=%d/PE S=%d words" a.arch_name a.pe_count
    a.registers_per_pe a.sram_words
