(** The lint gate: how diagnostics from the analysis passes act on a run.

    [Enforce] (the default) fails fast: any error diagnostic raises
    {!Rejected} before the malformed program reaches the solver — with
    thousands of programs per sweep, one ill-formed formulation would
    otherwise poison a whole ranking without a trace.  [Warn] demotes
    errors to logged warnings ([--lint=warn]); [Off] disables the gate. *)

type mode = Enforce | Warn | Off

exception Rejected of Diagnostic.t list
(** Raised by {!gate} in [Enforce] mode; carries the error diagnostics. *)

val mode_name : mode -> string

val modes : (string * mode) list
(** [("enforce", Enforce); ...] — for command-line enums. *)

val check_problem : ?provenance:string -> Gp.Problem.t -> Diagnostic.t list
(** The pre-solve pass battery over an already-built problem (currently
    {!Discipline.check}; unit checking happens at formulation time via
    {!Dimexpr}). *)

val gate : mode -> Diagnostic.t list -> unit
(** Apply the mode: [Enforce] raises {!Rejected} when errors are present
    and logs the warnings; [Warn] logs everything; [Off] ignores. *)
