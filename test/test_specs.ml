(* Tests for the YAML subset and the Timeloop-style spec round trips. *)

module Y = Specs.Yaml
module T = Specs.Timeloop
module Nest = Workload.Nest
module Mapping = Mapspace.Mapping
module Arch = Archspec.Arch

let tech = Archspec.Technology.table3

let yaml_testable = Alcotest.testable Y.pp ( = )

(* --- YAML --- *)

let test_scalars () =
  Alcotest.(check yaml_testable) "int" (Ok (Y.Int 42) |> Result.get_ok) (Result.get_ok (Y.parse "42"));
  Alcotest.(check yaml_testable) "float" (Y.Float 2.5) (Result.get_ok (Y.parse "2.5"));
  Alcotest.(check yaml_testable) "bool" (Y.Bool true) (Result.get_ok (Y.parse "true"));
  Alcotest.(check yaml_testable) "null" Y.Null (Result.get_ok (Y.parse "~"));
  Alcotest.(check yaml_testable) "string" (Y.String "hello") (Result.get_ok (Y.parse "hello"));
  Alcotest.(check yaml_testable)
    "quoted keeps type" (Y.String "42")
    (Result.get_ok (Y.parse "\"42\""))

let test_map_and_list () =
  let doc = "name: eyeriss\npes: 168\nlist:\n  - 1\n  - 2\n" in
  let v = Result.get_ok (Y.parse doc) in
  Alcotest.(check (option string)) "name" (Some "eyeriss") (Option.bind (Y.find v "name") Y.get_string);
  Alcotest.(check (option int)) "pes" (Some 168) (Option.bind (Y.find v "pes") Y.get_int);
  Alcotest.(check yaml_testable)
    "list" (Y.List [ Y.Int 1; Y.Int 2 ])
    (Option.get (Y.find v "list"))

let test_inline_list_items () =
  (* Timeloop style: "- name: A" with following keys aligned. *)
  let doc = "spaces:\n  - name: A\n    rw: false\n  - name: B\n    rw: true\n" in
  let v = Result.get_ok (Y.parse doc) in
  match Y.find v "spaces" with
  | Some (Y.List [ a; b ]) ->
    Alcotest.(check (option string)) "A" (Some "A") (Option.bind (Y.find a "name") Y.get_string);
    Alcotest.(check yaml_testable) "B rw" (Y.Bool true) (Option.get (Y.find b "rw"))
  | _ -> Alcotest.fail "expected a two-item list"

let test_comments_and_blanks () =
  let doc = "# leading comment\nkey: 1  # trailing\n\nother: 2\n" in
  let v = Result.get_ok (Y.parse doc) in
  Alcotest.(check (option int)) "key" (Some 1) (Option.bind (Y.find v "key") Y.get_int);
  Alcotest.(check (option int)) "other" (Some 2) (Option.bind (Y.find v "other") Y.get_int)

let test_nested_maps () =
  let doc = "a:\n  b:\n    c: 3\n  d: 4\ne: 5\n" in
  let v = Result.get_ok (Y.parse doc) in
  let a = Option.get (Y.find v "a") in
  let b = Option.get (Y.find a "b") in
  Alcotest.(check (option int)) "c" (Some 3) (Option.bind (Y.find b "c") Y.get_int);
  Alcotest.(check (option int)) "d" (Some 4) (Option.bind (Y.find a "d") Y.get_int);
  Alcotest.(check (option int)) "e" (Some 5) (Option.bind (Y.find v "e") Y.get_int)

let test_parse_errors () =
  (match Y.parse "key: 1\n\tbad: 2\n" with
  | Error msg -> Alcotest.(check bool) "tab rejected" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected tab rejection");
  match Y.parse "a: 1\nnot a map line with colon missing\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for stray scalar in map"

let test_quoted_specials () =
  (* Quoted strings may contain the characters that otherwise structure a
     document. *)
  let doc = "a: \"x: y # z\"\nb: 'PE[0..15]'\n" in
  let v = Result.get_ok (Y.parse doc) in
  Alcotest.(check (option string)) "colon and hash" (Some "x: y # z")
    (Option.bind (Y.find v "a") Y.get_string);
  Alcotest.(check (option string)) "bracket range" (Some "PE[0..15]")
    (Option.bind (Y.find v "b") Y.get_string)

let test_list_of_lists () =
  let doc = "-\n  - 1\n  - 2\n-\n  - 3\n" in
  Alcotest.(check yaml_testable)
    "nested" (Y.List [ Y.List [ Y.Int 1; Y.Int 2 ]; Y.List [ Y.Int 3 ] ])
    (Result.get_ok (Y.parse doc))

let test_list_value_at_parent_indent () =
  (* Block lists may sit at the same indent as their key (common YAML). *)
  let doc = "items:\n- a\n- b\nnext: 1\n" in
  let v = Result.get_ok (Y.parse doc) in
  Alcotest.(check yaml_testable)
    "items" (Y.List [ Y.String "a"; Y.String "b" ])
    (Option.get (Y.find v "items"));
  Alcotest.(check (option int)) "next" (Some 1) (Option.bind (Y.find v "next") Y.get_int)

let test_empty_value_is_null () =
  let doc = "a:\nb: 2\n" in
  let v = Result.get_ok (Y.parse doc) in
  Alcotest.(check yaml_testable) "null" Y.Null (Option.get (Y.find v "a"))

let test_emit_quotes_ambiguous () =
  (* A string that parses as a number must be quoted on emission. *)
  let v = Y.Map [ ("k", Y.String "42"); ("s", Y.String "has: colon") ] in
  let v' = Result.get_ok (Y.parse (Y.emit v)) in
  Alcotest.(check yaml_testable) "string 42 survives" (Y.String "42")
    (Option.get (Y.find v' "k"));
  Alcotest.(check yaml_testable) "colon survives" (Y.String "has: colon")
    (Option.get (Y.find v' "s"))

let rec gen_yaml depth =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        return Y.Null;
        map (fun b -> Y.Bool b) bool;
        map (fun i -> Y.Int i) (int_range (-1000) 1000);
        map (fun s -> Y.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
      ]
  in
  if depth = 0 then scalar
  else
    frequency
      [
        (2, scalar);
        ( 1,
          map (fun l -> Y.List l) (list_size (int_range 1 3) (gen_yaml (depth - 1))) );
        ( 1,
          map
            (fun kvs ->
              let dedup =
                List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) kvs
              in
              Y.Map dedup)
            (list_size (int_range 1 3)
               (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)) (gen_yaml (depth - 1))))
        );
      ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse (emit v) = v" ~count:300 (gen_yaml 3) (fun v ->
      match Y.parse (Y.emit v) with Ok v' -> v' = v | Error _ -> false)

(* --- Timeloop specs --- *)

let conv_nest =
  Workload.Conv.to_nest (Workload.Conv.make ~name:"conv" ~k:8 ~c:4 ~hw:8 ~rs:3 ~stride:2 ())

let test_problem_roundtrip () =
  let yaml = T.problem_to_yaml conv_nest in
  let nest' = Result.get_ok (T.problem_of_yaml yaml) in
  Alcotest.(check (list string)) "dims" (Nest.dim_names conv_nest) (Nest.dim_names nest');
  Alcotest.(check int) "extent k" 8 (Nest.extent nest' "k");
  let inp = Nest.tensor nest' "In" in
  Alcotest.(check bool) "In strides preserved" true
    (List.exists
       (List.exists (fun { Nest.stride; iter } -> stride = 2 && iter = "h"))
       inp.Nest.projections);
  let out = Nest.tensor nest' "Out" in
  Alcotest.(check bool) "Out rw" true out.Nest.read_write;
  (* And it survives a second trip through text. *)
  let text = Y.emit yaml in
  let nest'' = Result.get_ok (T.problem_of_yaml (Result.get_ok (Y.parse text))) in
  Alcotest.(check (list string)) "text roundtrip" (Nest.dim_names conv_nest) (Nest.dim_names nest'')

let sample_mapping =
  Mapping.canonical
    ~reg:([ ("r", 3); ("s", 3); ("h", 2) ], [ "n"; "k"; "c"; "r"; "s"; "h"; "w" ])
    ~pe:([ ("k", 4); ("c", 2) ], [ "k"; "c"; "n"; "r"; "s"; "h"; "w" ])
    ~spatial:[ ("c", 2); ("w", 4) ]
    ~dram:([ ("k", 2); ("h", 2) ], [ "h"; "k"; "n"; "c"; "r"; "s"; "w" ])

let test_mapping_roundtrip () =
  let yaml = T.mapping_to_yaml sample_mapping in
  let text = Y.emit yaml in
  let mapping' = Result.get_ok (T.mapping_of_yaml (Result.get_ok (Y.parse text))) in
  Alcotest.(check bool) "equal" true (Mapping.equal sample_mapping mapping');
  Alcotest.(check int) "spatial preserved" 8 (Mapping.spatial_size mapping')

let test_architecture_roundtrip () =
  let yaml = T.architecture_to_yaml tech Arch.eyeriss in
  let text = Y.emit yaml in
  let arch' = Result.get_ok (T.architecture_of_yaml (Result.get_ok (Y.parse text))) in
  Alcotest.(check int) "pes" 168 arch'.Arch.pe_count;
  Alcotest.(check int) "registers" 512 arch'.Arch.registers_per_pe;
  Alcotest.(check int) "sram" 65536 arch'.Arch.sram_words

(* Regression: fractional bandwidths (e.g. a 8.5-words/cycle technology
   point) used to be truncated through [int_of_float] on export, so the
   emitted Timeloop arch under-provisioned the link. *)
let test_architecture_fractional_bandwidth () =
  let tech = { tech with Archspec.Technology.dram_bandwidth = 8.5 } in
  let yaml = T.architecture_to_yaml tech Arch.eyeriss in
  let text = Y.emit yaml in
  Alcotest.(check bool)
    "8.5 survives emission" true
    (let rec contains i =
       i + 3 <= String.length text
       && (String.sub text i 3 = "8.5" || contains (i + 1))
     in
     contains 0);
  Alcotest.(check bool) "no truncated 8 exported" false
    (let rec contains i =
       i + 18 <= String.length text
       && (String.sub text i 18 = "read_bandwidth: 8\n" || contains (i + 1))
     in
     contains 0);
  (* Integer bandwidths still export as integers. *)
  let yaml_int = T.architecture_to_yaml Archspec.Technology.table3 Arch.eyeriss in
  let text_int = Y.emit yaml_int in
  Alcotest.(check bool)
    "integer bandwidth stays integral" true
    (let rec contains i =
       i + 18 <= String.length text_int
       && (String.sub text_int i 18 = "read_bandwidth: 8\n" || contains (i + 1))
     in
     contains 0)

let test_problem_error_paths () =
  let check_error doc what =
    match Result.bind (Y.parse doc) T.problem_of_yaml with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %s to be rejected" what
  in
  check_error "not_a_problem: 1\n" "missing problem key";
  check_error "problem:\n  name: p\n  dimensions:\n    - i\n  instance: {}\n"
    "missing instance extent";
  check_error
    "problem:\n  name: p\n  dimensions:\n    - i\n  instance:\n    i: 4\n  data-spaces:\n    - name: T\n      projection:\n        - \"0*i\"\n"
    "bad stride";
  (* A minimal valid document parses. *)
  let ok =
    "problem:\n  name: p\n  dimensions:\n    - i\n  instance:\n    i: 4\n  data-spaces:\n    - name: T\n      projection:\n        - i\n"
  in
  match Result.bind (Y.parse ok) T.problem_of_yaml with
  | Ok nest -> Alcotest.(check int) "extent" 4 (Nest.extent nest "i")
  | Error msg -> Alcotest.failf "valid doc rejected: %s" msg

let test_mapping_error_paths () =
  let check_error doc what =
    match Result.bind (Y.parse doc) T.mapping_of_yaml with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %s to be rejected" what
  in
  check_error "mapping:\n  - target: DRAM\n    type: temporal\n" "missing factors";
  check_error
    "mapping:\n  - target: DRAM\n    type: temporal\n    factors: i=x\n"
    "malformed factor";
  check_error
    "mapping:\n  - target: DRAM\n    type: temporal\n    factors: i=0\n"
    "nonpositive factor"

let test_write_bundle () =
  let dir = Filename.temp_file "thistle" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  T.write_bundle ~dir tech Arch.eyeriss conv_nest sample_mapping;
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " exists") true (Sys.file_exists (Filename.concat dir f)))
    [ "problem.yaml"; "mapping.yaml"; "arch.yaml" ];
  (* Parse one back from disk. *)
  let ic = open_in (Filename.concat dir "arch.yaml") in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let arch' = Result.get_ok (T.architecture_of_yaml (Result.get_ok (Y.parse text))) in
  Alcotest.(check int) "pes from disk" 168 arch'.Arch.pe_count

let () =
  Alcotest.run "specs"
    [
      ( "yaml",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "maps and lists" `Quick test_map_and_list;
          Alcotest.test_case "inline list items" `Quick test_inline_list_items;
          Alcotest.test_case "comments" `Quick test_comments_and_blanks;
          Alcotest.test_case "nesting" `Quick test_nested_maps;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "quoted specials" `Quick test_quoted_specials;
          Alcotest.test_case "list of lists" `Quick test_list_of_lists;
          Alcotest.test_case "list at parent indent" `Quick test_list_value_at_parent_indent;
          Alcotest.test_case "empty value" `Quick test_empty_value_is_null;
          Alcotest.test_case "emit quotes ambiguous" `Quick test_emit_quotes_ambiguous;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
      ( "timeloop",
        [
          Alcotest.test_case "problem roundtrip" `Quick test_problem_roundtrip;
          Alcotest.test_case "mapping roundtrip" `Quick test_mapping_roundtrip;
          Alcotest.test_case "architecture roundtrip" `Quick test_architecture_roundtrip;
          Alcotest.test_case "fractional bandwidth preserved" `Quick
            test_architecture_fractional_bandwidth;
          Alcotest.test_case "problem error paths" `Quick test_problem_error_paths;
          Alcotest.test_case "mapping error paths" `Quick test_mapping_error_paths;
          Alcotest.test_case "write bundle" `Quick test_write_bundle;
        ] );
    ]
