type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Map of (string * value) list

exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* Scanning                                                           *)
(* ------------------------------------------------------------------ *)

type line = { mutable indent : int; mutable text : string; lineno : int }

(* Remove a trailing comment: '#' outside quotes, at start of line or
   preceded by whitespace. *)
let strip_comment s =
  let n = String.length s in
  let rec scan i in_quote =
    if i >= n then n
    else
      match s.[i] with
      | ('"' | '\'') as q -> begin
        match in_quote with
        | Some q' when q = q' -> scan (i + 1) None
        | Some _ -> scan (i + 1) in_quote
        | None -> scan (i + 1) (Some q)
      end
      | '#' when in_quote = None && (i = 0 || s.[i - 1] = ' ' || s.[i - 1] = '\t') -> i
      | _ -> scan (i + 1) in_quote
  in
  String.sub s 0 (scan 0 None)

let scan_lines src =
  let raw = String.split_on_char '\n' src in
  let lines = ref [] in
  List.iteri
    (fun i l ->
      let l = strip_comment l in
      let trimmed = String.trim l in
      if trimmed <> "" then begin
        let indent = ref 0 in
        while !indent < String.length l && l.[!indent] = ' ' do
          incr indent
        done;
        if !indent < String.length l && l.[!indent] = '\t' then
          raise (Parse_error (i + 1, "tab indentation is not supported"));
        lines := { indent = !indent; text = trimmed; lineno = i + 1 } :: !lines
      end)
    raw;
  Array.of_list (List.rev !lines)

(* ------------------------------------------------------------------ *)
(* Scalars                                                            *)
(* ------------------------------------------------------------------ *)

let scalar_of_string s =
  let n = String.length s in
  if n >= 2 && (s.[0] = '"' || s.[0] = '\'') && s.[n - 1] = s.[0] then
    String (String.sub s 1 (n - 2))
  else
    match s with
    | "null" | "~" -> Null
    | "true" -> Bool true
    | "false" -> Bool false
    | _ -> begin
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> begin
        match float_of_string_opt s with Some f -> Float f | None -> String s
      end
    end

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let is_dash_item text =
  String.length text > 0
  && text.[0] = '-'
  && (String.length text = 1 || text.[1] = ' ')

(* Split "key: rest" at the first colon followed by a space or EOL. *)
let split_key_value lineno text =
  let n = String.length text in
  let rec find i =
    if i >= n then None
    else if text.[i] = ':' && (i + 1 >= n || text.[i + 1] = ' ') then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> raise (Parse_error (lineno, "expected 'key: value'"))
  | Some i ->
    let key = String.trim (String.sub text 0 i) in
    let rest = if i + 1 >= n then "" else String.trim (String.sub text (i + 1) (n - i - 1)) in
    if key = "" then raise (Parse_error (lineno, "empty key"));
    (key, rest)

let rec parse_node lines pos indent =
  if !pos >= Array.length lines then Null
  else begin
    let l = lines.(!pos) in
    if l.indent < indent then Null
    else if is_dash_item l.text then parse_list lines pos l.indent
    else if String.contains l.text ':' then parse_map lines pos l.indent
    else begin
      incr pos;
      scalar_of_string l.text
    end
  end

and parse_list lines pos indent =
  let items = ref [] in
  let continue_ = ref true in
  while !continue_ do
    if !pos >= Array.length lines then continue_ := false
    else begin
      let l = lines.(!pos) in
      if l.indent <> indent || not (is_dash_item l.text) then continue_ := false
      else begin
        let content = String.trim (String.sub l.text 1 (String.length l.text - 1)) in
        if content = "" then begin
          incr pos;
          let item =
            if !pos < Array.length lines && lines.(!pos).indent > indent then
              parse_node lines pos lines.(!pos).indent
            else Null
          in
          items := item :: !items
        end
        else begin
          (* Inline first token: re-interpret the remainder of this line as
             a line indented past the dash, so "- name: x" plus aligned
             following keys parses as one map. *)
          let content_col = indent + (String.length l.text - String.length content) in
          l.indent <- content_col;
          l.text <- content;
          let item = parse_node lines pos content_col in
          items := item :: !items
        end
      end
    end
  done;
  List (List.rev !items)

and parse_map lines pos indent =
  let entries = ref [] in
  let continue_ = ref true in
  while !continue_ do
    if !pos >= Array.length lines then continue_ := false
    else begin
      let l = lines.(!pos) in
      if l.indent <> indent || is_dash_item l.text then continue_ := false
      else begin
        let key, rest = split_key_value l.lineno l.text in
        if rest = "" then begin
          incr pos;
          let v =
            if
              !pos < Array.length lines
              && (lines.(!pos).indent > indent
                 || (lines.(!pos).indent = indent && is_dash_item lines.(!pos).text))
            then parse_node lines pos lines.(!pos).indent
            else Null
          in
          entries := (key, v) :: !entries
        end
        else begin
          incr pos;
          entries := (key, scalar_of_string rest) :: !entries
        end
      end
    end
  done;
  Map (List.rev !entries)

let parse src =
  match scan_lines src with
  | exception Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | lines ->
    if Array.length lines = 0 then Ok Null
    else begin
      let pos = ref 0 in
      match parse_node lines pos lines.(0).indent with
      | exception Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
      | v ->
        if !pos < Array.length lines then
          Error
            (Printf.sprintf "line %d: unexpected content after document"
               lines.(!pos).lineno)
        else Ok v
    end

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let plain_safe s =
  s <> ""
  && scalar_of_string s = String s
  && (not (String.contains s ':'))
  && (not (String.contains s '#'))
  && s.[0] <> '-' && s.[0] <> ' '
  && s.[String.length s - 1] <> ' '

let scalar_to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> if plain_safe s then s else "\"" ^ s ^ "\""
  | List _ | Map _ -> invalid_arg "Yaml.scalar_to_string: not a scalar"

let is_scalar = function List _ | Map _ -> false | _ -> true

let rec emit_block buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Map [] -> Buffer.add_string buf (pad indent ^ "{}\n")
  | List [] -> Buffer.add_string buf (pad indent ^ "[]\n")
  | Map entries ->
    List.iter
      (fun (k, v) ->
        if is_scalar v then
          Buffer.add_string buf (Printf.sprintf "%s%s: %s\n" (pad indent) k (scalar_to_string v))
        else begin
          Buffer.add_string buf (Printf.sprintf "%s%s:\n" (pad indent) k);
          emit_block buf (indent + 2) v
        end)
      entries
  | List items ->
    List.iter
      (fun item ->
        match item with
        | Map ((k, v1) :: rest) when is_scalar v1 ->
          (* Timeloop style: first key inline after the dash. *)
          Buffer.add_string buf
            (Printf.sprintf "%s- %s: %s\n" (pad indent) k (scalar_to_string v1));
          if rest <> [] then emit_block buf (indent + 2) (Map rest)
        | _ when is_scalar item ->
          Buffer.add_string buf (Printf.sprintf "%s- %s\n" (pad indent) (scalar_to_string item))
        | _ ->
          Buffer.add_string buf (Printf.sprintf "%s-\n" (pad indent));
          emit_block buf (indent + 2) item)
      items
  | scalar -> Buffer.add_string buf (pad indent ^ scalar_to_string scalar ^ "\n")

let emit v =
  let buf = Buffer.create 256 in
  emit_block buf 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let find v key = match v with Map entries -> List.assoc_opt key entries | _ -> None

let get_string = function String s -> Some s | _ -> None

let get_int = function Int i -> Some i | _ -> None

let get_list = function List l -> Some l | _ -> None

let rec pp ppf = function
  | Null -> Format.fprintf ppf "null"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | List items ->
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
      items
  | Map entries ->
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         (fun ppf (k, v) -> Format.fprintf ppf "%s: %a" k pp v))
      entries
