module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module Mat = Linalg.Mat
module Vec = Linalg.Vec

let pass = "certificate"

type t = {
  objective_value : float;
  violations : (string * float) list;
  max_violation : float;
  kkt_residual : float option;
  diagnostics : Diagnostic.t list;
}

(* Gradient of [log f] with respect to [y = log t] at the point [env]:
   the softmax-weighted sum of the terms' exponent vectors. *)
let log_gradient index n env p =
  let f = P.eval env p in
  let g = Array.make n 0.0 in
  if Float.is_finite f && f > 0.0 then
    List.iter
      (fun m ->
        let w = M.eval env m /. f in
        List.iter
          (fun (x, e) ->
            match Hashtbl.find_opt index x with
            | Some i -> g.(i) <- g.(i) +. (w *. e)
            | None -> ())
          (M.exponents m))
      (P.terms p);
  g

(* Least-squares stationarity residual: fit multipliers over the
   near-active inequalities and all equalities, clamp negative inequality
   multipliers to zero, and report |grad L| / (1 + |grad f0|). *)
let kkt_residual problem env =
  let vars = Gp.Problem.variables problem in
  let n = List.length vars in
  let index = Hashtbl.create n in
  List.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let g0 = log_gradient index n env (Gp.Problem.objective problem) in
  let active =
    List.filter
      (fun (_, p) ->
        let v = P.eval env p in
        Float.is_finite v && v >= 0.99)
      (Gp.Problem.ineqs problem)
  in
  let ineq_grads =
    List.map (fun (_, p) -> log_gradient index n env p) active
  in
  let eq_grads =
    List.map
      (fun (_, m) ->
        let g = Array.make n 0.0 in
        List.iter
          (fun (x, e) ->
            match Hashtbl.find_opt index x with
            | Some i -> g.(i) <- g.(i) +. e
            | None -> ())
          (M.exponents m);
        g)
      (Gp.Problem.eqs problem)
  in
  let columns = Array.of_list (ineq_grads @ eq_grads) in
  let n_ineq = List.length ineq_grads in
  let m = Array.length columns in
  let norm g = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 g) in
  let residual_with lambda =
    let r = Array.copy g0 in
    Array.iteri
      (fun j col ->
        Array.iteri (fun i v -> r.(i) <- r.(i) +. (lambda.(j) *. v)) col)
      columns;
    norm r /. (1.0 +. norm g0)
  in
  if n = 0 then None
  else if m = 0 then Some (residual_with [||])
  else begin
    let dot a b =
      let acc = ref 0.0 in
      Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
      !acc
    in
    let ata =
      Mat.init m m (fun i j ->
          dot columns.(i) columns.(j) +. if i = j then 1e-10 else 0.0)
    in
    let rhs = Vec.init m (fun j -> -.dot columns.(j) g0) in
    match Mat.solve_spd ata rhs with
    | exception Mat.Singular -> None
    | lambda ->
      (* Inequality multipliers must be nonnegative at a KKT point. *)
      Array.iteri
        (fun j v -> if j < n_ineq && v < 0.0 then lambda.(j) <- 0.0)
        lambda;
      let r = residual_with lambda in
      if Float.is_finite r then Some r else None
  end

let check ?(tol = 1e-4) ?provenance problem env =
  let diags = ref [] in
  let emit mk ?constraint_name fmt =
    Printf.ksprintf
      (fun message ->
        diags := mk ~pass ?constraint_name ?provenance message :: !diags)
      fmt
  in
  let error ?constraint_name fmt = emit Diagnostic.error ?constraint_name fmt in
  let warning ?constraint_name fmt =
    emit Diagnostic.warning ?constraint_name fmt
  in
  let objective_value = P.eval env (Gp.Problem.objective problem) in
  if not (Float.is_finite objective_value) then
    error "objective evaluates to %g at the solution" objective_value;
  List.iter
    (fun x ->
      let v = env x in
      if not (Float.is_finite v && v > 0.0) then
        error "variable %s = %g is not finite positive" x v)
    (Gp.Problem.variables problem);
  let violations = Gp.Problem.violations ~tol problem env in
  let max_violation =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 violations
  in
  List.iter
    (fun (name, v) ->
      if not (Float.is_finite v) then
        error ~constraint_name:name
          "constraint evaluates non-finite at the solution"
      else warning ~constraint_name:name "violated by %g (tol %g)" v tol)
    violations;
  let hard = List.exists Diagnostic.is_error !diags in
  let kkt_residual = if hard then None else kkt_residual problem env in
  { objective_value; violations; max_violation; kkt_residual;
    diagnostics = List.rev !diags }

let hard_failure t = List.exists Diagnostic.is_error t.diagnostics

let pp ppf t =
  Format.fprintf ppf "@[<v>objective %.6g; max violation %.3g; KKT residual %s"
    t.objective_value t.max_violation
    (match t.kkt_residual with Some r -> Printf.sprintf "%.3g" r | None -> "n/a");
  List.iter (fun d -> Format.fprintf ppf "@,%a" Diagnostic.pp d) t.diagnostics;
  Format.fprintf ppf "@]"
