(* The serve daemon (DESIGN §14): wire framing, the request/response
   codec, the content-addressed result store, and the daemon end to end
   — byte-identity of warm and cold answers, fingerprint invalidation,
   corruption tolerance, admission control and injected faults, all
   without ever killing the server. *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module Arch = Archspec.Arch
module Wire = Serve.Wire
module Protocol = Serve.Protocol
module Store = Serve.Store
module Render = Serve.Render
module Server = Serve.Server
module Client = Serve.Client

let tech = Archspec.Technology.table3
let arch = Arch.make ~name:"t" ~pes:64 ~registers:64 ~sram_words:8192

let opts =
  {
    Protocol.top_choices = 1;
    max_choices = 4;
    node_nm = Archspec.Technology.reference_node_nm;
  }

let req = Protocol.Optimize { layer = "resnet-2"; objective = F.Energy; arch; opts }

let base = { O.default_config with O.jobs = 2 }

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let counter name =
  match List.assoc_opt name (Obs.Metrics.counters (Obs.Metrics.snapshot ())) with
  | Some v -> v
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Wire framing                                                       *)
(* ------------------------------------------------------------------ *)

let with_pipe f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_wire_roundtrip () =
  with_pipe @@ fun a b ->
  List.iter
    (fun payload ->
      Wire.write_frame a payload;
      match Wire.read_frame b with
      | Ok got -> Alcotest.(check string) "payload" payload got
      | Error e -> Alcotest.failf "read failed: %s" (Wire.describe e))
    [ "x"; ""; String.make 100_000 'q'; "{\"v\":1}" ]

let test_wire_closed () =
  with_pipe @@ fun a b ->
  Unix.close a;
  match Wire.read_frame b with
  | Error Wire.Closed -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Closed"

let test_wire_torn () =
  (* EOF mid-header. *)
  with_pipe (fun a b ->
      ignore (Unix.write_substring a "\x00\x00" 0 2);
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Torn 2) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Torn 2");
  (* EOF mid-payload: header announces 50 bytes, 10 arrive. *)
  with_pipe (fun a b ->
      ignore (Unix.write_substring a "\x00\x00\x00\x32" 0 4);
      ignore (Unix.write_substring a "0123456789" 0 10);
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Torn 14) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Torn 14")

let test_wire_oversized () =
  with_pipe @@ fun a b ->
  (* A garbage prefix decodes to an absurd length. *)
  ignore (Unix.write_substring a "\xde\xad\xbe\xef" 0 4);
  match Wire.read_frame ~max_frame:1024 b with
  | Error (Wire.Oversized n) -> Alcotest.(check int) "announced" 0xdeadbeef n
  | Ok _ | Error _ -> Alcotest.fail "expected Oversized"

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                     *)
(* ------------------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let reqs =
    [
      req;
      Protocol.Codesign { layer = "yolo-7"; objective = F.Delay; area = None; opts };
      Protocol.Codesign
        { layer = "yolo-7"; objective = F.Edp; area = Some 1234.5; opts };
      Protocol.Pipeline { pipeline = "alexnet"; objective = F.Energy; opts };
      Protocol.Metrics;
    ]
  in
  List.iter
    (fun r ->
      let encoded = Protocol.encode_request r in
      match Protocol.decode_request encoded with
      | Error m -> Alcotest.failf "decode (%s): %s" (Protocol.describe r) m
      | Ok r' ->
        Alcotest.(check string)
          "re-encode is byte-identical" encoded
          (Protocol.encode_request r'))
    reqs;
  let resps =
    [
      Protocol.Payload { body = "hello\nworld"; cached = true };
      Protocol.Payload { body = ""; cached = false };
      Protocol.Refused { kind = Protocol.Rejected; message = "busy" };
      Protocol.Refused { kind = Protocol.Bad_request; message = "?" };
      Protocol.Refused { kind = Protocol.Failed; message = "solver said no" };
    ]
  in
  List.iter
    (fun r ->
      let encoded = Protocol.encode_response r in
      match Protocol.decode_response encoded with
      | Error m -> Alcotest.failf "response decode: %s" m
      | Ok r' ->
        Alcotest.(check string)
          "response re-encode" encoded
          (Protocol.encode_response r'))
    resps

let test_protocol_rejects_garbage () =
  List.iter
    (fun payload ->
      match Protocol.decode_request payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded garbage %S" payload)
    [
      "";
      "not json";
      "{}";
      "{\"v\":1}";
      "{\"v\":99,\"req\":\"metrics\"}" (* version mismatch *);
      "{\"v\":1,\"req\":\"optimize\"}" (* missing fields *);
      "{\"v\":1,\"req\":\"launch-missiles\"}";
      Protocol.encode_request req ^ "trailing";
    ]

(* ------------------------------------------------------------------ *)
(* Store                                                              *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  let dir = temp_dir "thistle-store" in
  match Store.open_ dir with
  | Error m -> Alcotest.failf "open: %s" m
  | Ok store ->
    let config = "cfg-v1" and request_key = "rk|a" in
    Alcotest.(check (option string))
      "empty store misses" None
      (Store.get store ~config ~request_key);
    Store.put store ~config ~request_key "payload-bytes\n";
    Alcotest.(check (option string))
      "hit after put" (Some "payload-bytes\n")
      (Store.get store ~config ~request_key);
    Store.put store ~config ~request_key "rewritten";
    Alcotest.(check (option string))
      "last put wins" (Some "rewritten")
      (Store.get store ~config ~request_key);
    Alcotest.(check (option string))
      "other config misses" None
      (Store.get store ~config:"cfg-v2" ~request_key);
    Alcotest.(check (option string))
      "other key misses" None
      (Store.get store ~config ~request_key:"rk|b")

let test_store_corruption_is_a_miss () =
  let dir = temp_dir "thistle-store" in
  let store = Result.get_ok (Store.open_ dir) in
  let config = "cfg" and request_key = "rk" in
  Store.put store ~config ~request_key "good";
  let path = Store.entry_path store ~config ~request_key in
  let clobber bytes =
    let oc = open_out_bin path in
    output_string oc bytes;
    close_out oc
  in
  (* Truncated, garbage, and key-swapped entries must all read as
     misses, never raise. *)
  let entry = In_channel.with_open_bin path In_channel.input_all in
  List.iter
    (fun bytes ->
      clobber bytes;
      Alcotest.(check (option string))
        "corrupted entry is a miss" None
        (Store.get store ~config ~request_key))
    [
      String.sub entry 0 (String.length entry / 2);
      "}{ definitely not json";
      "";
      "{\"v\":1,\"config\":\"other\",\"request_key\":\"rk\",\"payload\":\"x\"}";
      "{\"v\":99,\"config\":\"cfg\",\"request_key\":\"rk\",\"payload\":\"x\"}";
    ];
  (* A fresh put repairs the entry. *)
  Store.put store ~config ~request_key "good again";
  Alcotest.(check (option string))
    "repaired" (Some "good again")
    (Store.get store ~config ~request_key)

(* ------------------------------------------------------------------ *)
(* Request keys: the arch-name collision regression                   *)
(* ------------------------------------------------------------------ *)

(* Two fixed architectures with identical capacities formulate
   bit-identical GPs — problem_key collides by design (that is what
   dedupe wants) — but they are different requests: request_key must
   separate them, or a shared store would serve one arch's cached
   report for the other. *)
let test_request_key_covers_arch () =
  let a = Arch.make ~name:"eyeriss-like" ~pes:64 ~registers:64 ~sram_words:8192 in
  let b = Arch.make ~name:"prototype-9" ~pes:64 ~registers:64 ~sram_words:8192 in
  let nest =
    Workload.Conv.to_nest (Workload.Zoo.find "resnet-2")
  in
  let plan = Thistle.Permutations.enumerate ~max_choices:2 nest in
  let choice = List.hd plan.Thistle.Permutations.choices in
  let placement = List.hd plan.Thistle.Permutations.placements in
  let problem arch =
    (F.build ~placement tech (F.Fixed arch) F.Energy plan choice).F.problem
  in
  Alcotest.(check string)
    "problem_key collides (same GP)"
    (O.problem_key (problem a))
    (O.problem_key (problem b));
  let key arch = O.request_key ~config:base tech (F.Fixed arch) F.Energy nest in
  if String.equal (key a) (key b) then
    Alcotest.fail "request_key must separate same-capacity arches by name";
  if
    String.equal
      (Store.digest ~config:"c" ~request_key:(key a))
      (Store.digest ~config:"c" ~request_key:(key b))
  then Alcotest.fail "store digests must differ too"

(* ------------------------------------------------------------------ *)
(* Daemon end to end                                                  *)
(* ------------------------------------------------------------------ *)

let with_server ?store_dir ?(max_inflight = 8) ?(base = base) ?max_frame f =
  let cfg = Server.default (Server.Tcp 0) in
  let cfg =
    {
      cfg with
      Server.store_dir;
      base;
      max_inflight;
      max_frame = Option.value max_frame ~default:cfg.Server.max_frame;
    }
  in
  match Server.start cfg with
  | Error m -> Alcotest.failf "server start: %s" m
  | Ok t ->
    let port =
      match Server.address t with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> Alcotest.fail "expected a TCP address"
    in
    Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f port)

let connect port =
  match Client.connect (Client.tcp_addr port) with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let ask client r =
  match Client.request client r with
  | Ok resp -> resp
  | Error m -> Alcotest.failf "request: %s" m

let payload = function
  | Protocol.Payload { body; cached } -> (body, cached)
  | Protocol.Refused { message; _ } -> Alcotest.failf "refused: %s" message

let test_serve_miss_then_hit_byte_identical () =
  let dir = temp_dir "thistle-serve" in
  with_server ~store_dir:dir @@ fun port ->
  Obs.Metrics.reset ();
  let c = connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let cold, cold_cached = payload (ask c req) in
  let warm, warm_cached = payload (ask c req) in
  Alcotest.(check bool) "first is a miss" false cold_cached;
  Alcotest.(check bool) "second is a hit" true warm_cached;
  Alcotest.(check string) "hit replays the exact bytes" cold warm;
  (* And both equal what the CLI's renderer produces from a cold local
     solve with the same effective config. *)
  let config = { base with O.top_choices = 1; max_choices = 4 } in
  let expected =
    match O.dataflow ~config tech arch F.Energy
            (Workload.Conv.to_nest (Workload.Zoo.find "resnet-2"))
    with
    | Ok report -> Render.outcome ~tech report
    | Error m -> Alcotest.failf "local solve failed: %s" m
  in
  Alcotest.(check string) "served = local render" expected cold;
  Alcotest.(check int) "requests" 2 (counter "serve.requests");
  Alcotest.(check int) "misses" 1 (counter "serve.cache_misses");
  Alcotest.(check int) "hits" 1 (counter "serve.cache_hits");
  Alcotest.(check int) "rejected" 0 (counter "serve.rejected")

let test_serve_survives_bad_frames () =
  let dir = temp_dir "thistle-serve" in
  with_server ~store_dir:dir ~max_frame:4096 @@ fun port ->
  (* Garbage payload in a well-formed frame: answered, connection kept. *)
  let c = connect port in
  (match Client.request_raw c "definitely { not a request" with
  | Ok (Protocol.Refused { kind = Protocol.Bad_request; _ }) -> ()
  | Ok _ -> Alcotest.fail "garbage must be refused"
  | Error m -> Alcotest.failf "transport error: %s" m);
  (* Same connection still serves real requests afterwards. *)
  (match ask c Protocol.Metrics with
  | Protocol.Payload _ -> ()
  | Protocol.Refused { message; _ } -> Alcotest.failf "refused: %s" message);
  Client.close c;
  (* Oversized frame: refused, connection dropped, daemon alive. *)
  let c = connect port in
  (match Client.request_raw c (String.make 8192 'x') with
  | Ok (Protocol.Refused { kind = Protocol.Bad_request; _ }) -> ()
  | Ok _ -> Alcotest.fail "oversized must be refused"
  | Error m -> Alcotest.failf "transport error: %s" m);
  Client.close c;
  (* Torn frame: half a header, then hang up.  The daemon must shrug. *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Client.tcp_addr port);
  ignore (Unix.write_substring fd "\x00\x00" 0 2);
  Unix.close fd;
  (* Fresh connection proves the daemon survived all three. *)
  let c = connect port in
  (match ask c Protocol.Metrics with
  | Protocol.Payload _ -> ()
  | Protocol.Refused { message; _ } -> Alcotest.failf "refused: %s" message);
  (match ask c (Protocol.Optimize { layer = "no-such-layer"; objective = F.Energy; arch; opts }) with
  | Protocol.Refused { kind = Protocol.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "unknown layer must be a bad request");
  Client.close c

let test_serve_fingerprint_invalidates () =
  let dir = temp_dir "thistle-serve" in
  (* Warm the store. *)
  with_server ~store_dir:dir (fun port ->
      Obs.Metrics.reset ();
      let c = connect port in
      ignore (payload (ask c req));
      Client.close c;
      Alcotest.(check int) "cold run misses" 1 (counter "serve.cache_misses"));
  (* A solver-behavior change must force a re-solve on the same store. *)
  let tightened = { base with O.gp_tol = base.O.gp_tol *. 0.5 } in
  with_server ~store_dir:dir ~base:tightened (fun port ->
      Obs.Metrics.reset ();
      let c = connect port in
      let _, cached = payload (ask c req) in
      Client.close c;
      Alcotest.(check bool) "tightened config re-solves" false cached;
      Alcotest.(check int) "miss counted" 1 (counter "serve.cache_misses"));
  (* The original config's entry is untouched: a restart hits warm. *)
  with_server ~store_dir:dir (fun port ->
      Obs.Metrics.reset ();
      let c = connect port in
      let _, cached = payload (ask c req) in
      Client.close c;
      Alcotest.(check bool) "restart hits warm" true cached;
      Alcotest.(check int) "no miss" 0 (counter "serve.cache_misses"))

let rec find_entries dir =
  Array.to_list (Sys.readdir dir)
  |> List.concat_map (fun name ->
         let path = Filename.concat dir name in
         if Sys.is_directory path then find_entries path
         else if Filename.check_suffix name ".json" then [ path ]
         else [])

let test_serve_corrupted_entry_re_solves () =
  let dir = temp_dir "thistle-serve" in
  with_server ~store_dir:dir @@ fun port ->
  Obs.Metrics.reset ();
  let c = connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let cold, _ = payload (ask c req) in
  (match find_entries dir with
  | [ entry ] ->
    (* Truncate the entry mid-payload. *)
    let oc = open_out_bin entry in
    output_string oc "{\"v\":1,\"config\":\"tor";
    close_out oc
  | entries -> Alcotest.failf "expected 1 store entry, found %d" (List.length entries));
  let again, cached = payload (ask c req) in
  Alcotest.(check bool) "corrupted entry re-solves" false cached;
  Alcotest.(check string) "re-solve reproduces the bytes" cold again;
  Alcotest.(check int) "misses" 2 (counter "serve.cache_misses");
  let warm, cached = payload (ask c req) in
  Alcotest.(check bool) "entry repaired" true cached;
  Alcotest.(check string) "repaired bytes" cold warm

let test_serve_arch_name_no_collision () =
  let dir = temp_dir "thistle-serve" in
  with_server ~store_dir:dir @@ fun port ->
  Obs.Metrics.reset ();
  let c = connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let named name =
    Protocol.Optimize
      {
        layer = "resnet-2";
        objective = F.Energy;
        arch = Arch.make ~name ~pes:64 ~registers:64 ~sram_words:8192;
        opts;
      }
  in
  let _, cached_a = payload (ask c (named "arch-a")) in
  let _, cached_b = payload (ask c (named "arch-b")) in
  Alcotest.(check bool) "first arch misses" false cached_a;
  Alcotest.(check bool) "same-capacity, different-name arch must not hit" false
    cached_b;
  Alcotest.(check int) "two distinct store keys" 2 (counter "serve.cache_misses");
  Alcotest.(check int) "no false hit" 0 (counter "serve.cache_hits")

let test_serve_admission_rejects () =
  (* max_inflight = 0 turns every solve-type request away, determin-
     istically; metrics bypasses admission so the daemon stays
     observable under overload. *)
  with_server ~max_inflight:0 @@ fun port ->
  Obs.Metrics.reset ();
  let c = connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match ask c req with
  | Protocol.Refused { kind = Protocol.Rejected; _ } -> ()
  | Protocol.Refused { message; _ } -> Alcotest.failf "wrong refusal: %s" message
  | Protocol.Payload _ -> Alcotest.fail "must be rejected at capacity 0");
  (match ask c Protocol.Metrics with
  | Protocol.Payload _ -> ()
  | Protocol.Refused _ -> Alcotest.fail "metrics must bypass admission");
  Alcotest.(check int) "rejected" 1 (counter "serve.rejected");
  Alcotest.(check int) "requests counted" 2 (counter "serve.requests")

let test_serve_injected_fault_is_contained () =
  (* crash@serve fires inside the guarded solve thunk: the request
     fails structurally, nothing is cached, and the daemon keeps
     serving. *)
  let inject = Result.get_ok (Robust.Inject.parse "seed=3,crash@serve=1") in
  let faulty = { base with O.inject } in
  let dir = temp_dir "thistle-serve" in
  with_server ~store_dir:dir ~base:faulty @@ fun port ->
  Obs.Metrics.reset ();
  let c = connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match ask c req with
  | Protocol.Refused { kind = Protocol.Failed; _ } -> ()
  | Protocol.Refused { message; _ } -> Alcotest.failf "wrong refusal: %s" message
  | Protocol.Payload _ -> Alcotest.fail "injected crash must fail the request");
  Alcotest.(check int) "failed request still a miss" 1
    (counter "serve.cache_misses");
  Alcotest.(check int) "nothing cached" 0 (counter "serve.cache_hits");
  (* Failures are not cached: the next attempt re-runs (and re-fails,
     same seed — decisions are deterministic). *)
  (match ask c req with
  | Protocol.Refused { kind = Protocol.Failed; _ } -> ()
  | _ -> Alcotest.fail "still failing, still alive");
  (match ask c Protocol.Metrics with
  | Protocol.Payload _ -> ()
  | Protocol.Refused _ -> Alcotest.fail "daemon must survive injected faults")

let test_serve_concurrent_clients () =
  let dir = temp_dir "thistle-serve" in
  with_server ~store_dir:dir @@ fun port ->
  Obs.Metrics.reset ();
  let n = 4 in
  let results = Array.make n (Error "unset") in
  let worker i =
    match Client.connect (Client.tcp_addr port) with
    | Error m -> results.(i) <- Error m
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.request c req with
          | Ok (Protocol.Payload { body; _ }) -> results.(i) <- Ok body
          | Ok (Protocol.Refused { message; _ }) -> results.(i) <- Error message
          | Error m -> results.(i) <- Error m)
  in
  let threads = List.init n (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let bodies =
    Array.to_list results
    |> List.map (function
         | Ok body -> body
         | Error m -> Alcotest.failf "concurrent client failed: %s" m)
  in
  let first = List.hd bodies in
  List.iteri
    (fun i body ->
      Alcotest.(check string) (Printf.sprintf "client %d bit-identical" i) first body)
    bodies;
  (* Single-flight: identical concurrent requests solve once; the
     followers hit the store the leader populated. *)
  Alcotest.(check int) "requests" n (counter "serve.requests");
  Alcotest.(check int) "one miss" 1 (counter "serve.cache_misses");
  Alcotest.(check int) "followers hit" (n - 1) (counter "serve.cache_hits")

(* ------------------------------------------------------------------ *)
(* Property: replay determinism and jobs-independence                 *)
(* ------------------------------------------------------------------ *)

(* One daemon round: reset counters, ask twice, return the transcript. *)
let round ~jobs r =
  let dir = temp_dir "thistle-serve-prop" in
  with_server ~store_dir:dir ~base:{ base with O.jobs } @@ fun port ->
  Obs.Metrics.reset ();
  let c = connect port in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let first = ask c r in
  let second = ask c r in
  let counters = Obs.Metrics.counters (Obs.Metrics.snapshot ()) in
  (first, second, counters)

let prop_replay_deterministic =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range 0 2) (int_range 0 1) (int_range 0 1) (int_range 0 1))
  in
  QCheck2.Test.make
    ~name:"serve: ask twice = identical bytes, one miss, any --jobs" ~count:3 gen
    (fun (obj_i, pe_i, top_i, max_i) ->
      let objective = List.nth [ F.Energy; F.Delay; F.Edp ] obj_i in
      let arch =
        Arch.make ~name:"prop"
          ~pes:(List.nth [ 64; 128 ] pe_i)
          ~registers:64 ~sram_words:8192
      in
      let opts =
        {
          Protocol.top_choices = 1 + top_i;
          max_choices = List.nth [ 2; 4 ] max_i;
          node_nm = Archspec.Technology.reference_node_nm;
        }
      in
      let r = Protocol.Optimize { layer = "resnet-2"; objective; arch; opts } in
      let check_round (first, second, counters) =
        let c name =
          match List.assoc_opt name counters with Some v -> v | None -> 0
        in
        (match (first, second) with
        | Protocol.Payload { body = b1; cached = c1 },
          Protocol.Payload { body = b2; cached = c2 } ->
          if c1 then QCheck2.Test.fail_report "first answer claimed cached";
          if not c2 then QCheck2.Test.fail_report "second answer not cached";
          if not (String.equal b1 b2) then
            QCheck2.Test.fail_report "replay differs from cold bytes";
          if c "serve.cache_misses" <> 1 then
            QCheck2.Test.fail_report "expected exactly one miss";
          if c "serve.cache_hits" <> 1 then
            QCheck2.Test.fail_report "expected exactly one hit"
        | Protocol.Refused { message = m1; _ }, Protocol.Refused { message = m2; _ }
          ->
          (* An infeasible request must fail identically both times and
             never populate the store. *)
          if not (String.equal m1 m2) then
            QCheck2.Test.fail_report "refusals differ between attempts";
          if c "serve.cache_hits" <> 0 then
            QCheck2.Test.fail_report "a failure was cached"
        | _ -> QCheck2.Test.fail_report "outcome flipped between attempts");
        counters
      in
      let seq = check_round (round ~jobs:1 r) in
      let par = check_round (round ~jobs:2 r) in
      (* The §9 contract, through the daemon: the full deterministic
         counter slice is a function of the request sequence alone. *)
      if seq <> par then
        QCheck2.Test.fail_report "counters differ between --jobs 1 and 2";
      (match (round ~jobs:1 r, round ~jobs:2 r) with
      | (Protocol.Payload { body = b1; _ }, _, _), (Protocol.Payload { body = b2; _ }, _, _)
        ->
        if not (String.equal b1 b2) then
          QCheck2.Test.fail_report "bodies differ between --jobs 1 and 2"
      | (Protocol.Refused _, _, _), (Protocol.Refused _, _, _) -> ()
      | _ -> QCheck2.Test.fail_report "outcome differs between --jobs 1 and 2");
      true)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "clean close" `Quick test_wire_closed;
          Alcotest.test_case "torn frames" `Quick test_wire_torn;
          Alcotest.test_case "oversized/garbage prefix" `Quick test_wire_oversized;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_protocol_rejects_garbage;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption is a miss" `Quick
            test_store_corruption_is_a_miss;
        ] );
      ( "request-key",
        [
          Alcotest.test_case "arch name enters the key" `Quick
            test_request_key_covers_arch;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "miss then hit, byte-identical" `Quick
            test_serve_miss_then_hit_byte_identical;
          Alcotest.test_case "survives torn/oversized/garbage frames" `Quick
            test_serve_survives_bad_frames;
          Alcotest.test_case "config fingerprint invalidates" `Quick
            test_serve_fingerprint_invalidates;
          Alcotest.test_case "corrupted entry re-solves" `Quick
            test_serve_corrupted_entry_re_solves;
          Alcotest.test_case "arch-name requests do not collide" `Quick
            test_serve_arch_name_no_collision;
          Alcotest.test_case "admission rejects at capacity" `Quick
            test_serve_admission_rejects;
          Alcotest.test_case "injected fault is contained" `Quick
            test_serve_injected_fault_is_contained;
          Alcotest.test_case "concurrent clients single-flight" `Quick
            test_serve_concurrent_clients;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_replay_deterministic ] );
    ]
