(** Conv2D layer specifications (paper Listing 1) and their loop nests.

    Extents follow the paper's conventions: [h]/[w] iterate the {e output}
    feature map, the input is indexed by [stride_h*h + r] / [stride_w*w + s],
    and batch size is part of the specification.  Layers are assumed
    same-padded, so the output spatial extent is [input / stride] (see
    DESIGN.md, "Padding"). *)

type t = {
  layer_name : string;
  batch : int;  (** N *)
  out_channels : int;  (** K *)
  in_channels : int;  (** C *)
  in_height : int;  (** input image H (as listed in Table II) *)
  in_width : int;
  kernel : int;  (** R = S *)
  stride : int;  (** kernel stride (1 or 2 in Table II) *)
}

val make :
  name:string ->
  ?batch:int ->
  k:int ->
  c:int ->
  hw:int ->
  rs:int ->
  ?stride:int ->
  unit ->
  t
(** Square-image, square-kernel convenience constructor matching Table II
    columns.  [batch] defaults to 1 and [stride] to 1. *)

val out_height : t -> int
(** Output feature-map height: [in_height / stride], rounded up. *)

val out_width : t -> int

val to_nest : t -> Nest.t
(** The 7-dimensional nest over [n k c r s h w] with tensors [Out] (rw),
    [In], and [Ker].  Dimensions with extent 1 are kept so every layer
    exposes the same iterator set. *)

val macs : t -> float

val pp : Format.formatter -> t -> unit
