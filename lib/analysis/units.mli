(** A small unit algebra for dimensional analysis of the GP formulation.

    Quantities in Thistle's programs are products of powers of five base
    units: data {e elements} (16-bit words moved or stored), {e bytes}
    (raw storage, for spec-level accounting), {e picojoules} (energy),
    {e cycles} (delay) and {e um^2} (silicon area).  A unit is a vector
    of real exponents over these bases; multiplying quantities adds the
    vectors, raising to a power scales them.

    Trip-count variables are dimensionless; technology constants carry
    the units of Table III (e.g. a per-access energy is [pJ/elem], an
    SRAM bandwidth is [elem/cyc]).  The {!Dimexpr} combinators propagate
    these vectors through the formulation and flag any sum or comparison
    that mixes incompatible units. *)

type base = Elements | Bytes | Picojoules | Cycles | Square_microns

type t
(** A unit: a product of base-unit powers.  Normalized (zero exponents
    dropped), so {!equal} is structural. *)

val dimensionless : t

val of_base : base -> t

val elements : t
val bytes : t
val pj : t
val cycles : t
val um2 : t

val mul : t -> t -> t

val div : t -> t -> t

val pow : t -> float -> t
(** Raises [Invalid_argument] on a non-finite power. *)

val inv : t -> t

val exponents : t -> (base * float) list
(** Sorted by base, no zero exponents. *)

val is_dimensionless : t -> bool

val equal : t -> t -> bool
(** Exponent vectors compared within a small tolerance (1e-9), so units
    reassembled through [mul]/[div]/[pow] round-trips compare equal. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
