module Nest = Workload.Nest
module Level = Mapspace.Level

type choice = { pe_perm : string list; dram_perm : string list }

type plan = {
  nest : Nest.t;
  tileable : string list;
  pinned : (string * float) list;
  placements : (string * float) list list;
  choices : (choice * Volume.t) list;
  raw_count : int;
}

let stencil_dims nest =
  let window_of_projection proj =
    match proj with
    | [ _ ] | [] -> None
    | _ ->
      (* The window dim of a halo projection is the one with the smallest
         extent (ties keep the later iterator, matching r/s of conv). *)
      let smallest =
        List.fold_left
          (fun acc { Nest.iter; _ } ->
            match acc with
            | None -> Some iter
            | Some best ->
              if Nest.extent nest iter <= Nest.extent nest best then Some iter else acc)
          None proj
      in
      smallest
  in
  List.concat_map
    (fun t -> List.filter_map window_of_projection t.Nest.projections)
    (Nest.tensors nest)
  |> List.sort_uniq String.compare

(* Apply a simultaneous dim renaming to the nest's structure and check it
   is invariant (up to reordering of terms inside projections). *)
let default_symmetries nest =
  let dims = Nest.dim_names nest in
  let swap_name swaps d =
    let rec find = function
      | [] -> d
      | (a, b) :: rest ->
        if String.equal d a then b else if String.equal d b then a else find rest
    in
    find swaps
  in
  let canonical_tensor swaps t =
    let proj_key proj =
      List.sort compare
        (List.map (fun { Nest.stride; iter } -> (stride, swap_name swaps iter)) proj)
    in
    (* Projection order does not affect footprints or volumes, so compare
       projections as a multiset. *)
    (t.Nest.tensor_name, t.Nest.read_write, List.sort compare (List.map proj_key t.Nest.projections))
  in
  let nest_key swaps =
    ( List.sort compare
        (List.map (fun d -> (swap_name swaps d.Nest.dim_name, d.Nest.extent)) (Nest.dims nest)),
      List.map (canonical_tensor swaps) (Nest.tensors nest) )
  in
  let identity = nest_key [] in
  let invariant swaps = nest_key swaps = identity in
  (* Candidate swap sets: single same-extent pairs and unions of two
     disjoint same-extent pairs — enough for the conv h/w-r/s symmetry. *)
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if String.compare a b < 0 && Nest.extent nest a = Nest.extent nest b then
              Some (a, b)
            else None)
          dims)
      dims
  in
  let singles = List.map (fun p -> [ p ]) pairs in
  let doubles =
    List.concat_map
      (fun ((a1, b1) as p1) ->
        List.filter_map
          (fun ((a2, b2) as p2) ->
            if
              compare p1 p2 < 0
              && List.length (List.sort_uniq String.compare [ a1; b1; a2; b2 ]) = 4
            then Some [ p1; p2 ]
            else None)
          pairs)
      pairs
  in
  List.filter invariant (singles @ doubles)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> not (String.equal x y)) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

let enumerate ?untiled ?symmetries ?(max_choices = max_int) nest =
  let untiled =
    match untiled with Some u -> u | None -> stencil_dims nest
  in
  let symmetries =
    match symmetries with Some s -> s | None -> default_symmetries nest
  in
  let dims = Nest.dim_names nest in
  let tileable =
    List.filter
      (fun d -> Nest.extent nest d > 1 && not (List.mem d untiled))
      dims
  in
  let window_dims =
    List.filter (fun d -> List.mem d untiled && Nest.extent nest d > 1) dims
  in
  (* A pinned assignment for one non-tileable dim: its full extent at
     [home], 1 everywhere else. *)
  let pin_dim d home =
    List.map
      (fun level ->
        let v = if level = home then float_of_int (Nest.extent nest d) else 1.0 in
        (Level.trip_var ~level ~dim:d, v))
      [ 0; 1; 2; 3 ]
  in
  let unit_pinned =
    List.concat_map
      (fun d ->
        if List.mem d tileable || List.mem d window_dims then []
        else pin_dim d Level.register_level)
      dims
  in
  (* Window dims are never split, but their whole extent can sit either
     in the register file (temporal, e.g. a weight row per PE) or across
     the PE array (spatial, as in Eyeriss's row-stationary dataflow). *)
  let placements =
    List.fold_left
      (fun acc d ->
        List.concat_map
          (fun assignment ->
            List.map
              (fun home -> assignment @ pin_dim d home)
              [ Level.register_level; Level.spatial_level ])
          acc)
      [ unit_pinned ] window_dims
  in
  let pinned = List.hd placements in
  let perms = permutations tileable in
  let swap_choice swaps c =
    let swap_name d =
      let rec find = function
        | [] -> d
        | (a, b) :: rest ->
          if String.equal d a then b else if String.equal d b then a else find rest
      in
      find swaps
    in
    {
      pe_perm = List.map swap_name c.pe_perm;
      dram_perm = List.map swap_name c.dram_perm;
    }
  in
  let analyze c = Volume.analyze nest ~pe_perm:c.pe_perm ~dram_perm:c.dram_perm in
  let seen = Hashtbl.create 1024 in
  let raw_count = List.length perms * List.length perms in
  let choices = ref [] in
  let kept = ref 0 in
  List.iter
    (fun pe_perm ->
      List.iter
        (fun dram_perm ->
          if !kept < max_choices then begin
            let c = { pe_perm; dram_perm } in
            let vol = analyze c in
            let fp = Volume.fingerprint vol in
            if not (Hashtbl.mem seen fp) then begin
              Hashtbl.replace seen fp ();
              (* Mark every symmetric twin as seen so it is pruned when
                 the enumeration reaches it. *)
              List.iter
                (fun swaps ->
                  let twin = swap_choice swaps c in
                  Hashtbl.replace seen (Volume.fingerprint (analyze twin)) ())
                symmetries;
              choices := (c, vol) :: !choices;
              incr kept
            end
          end)
        perms)
    perms;
  { nest; tileable; pinned; placements; choices = List.rev !choices; raw_count }

let pinned_env plan var = List.assoc_opt var plan.pinned
