type config = {
  n_divisors : int;
  n_pow2 : int;
  top_choices : int;
  max_choices : int;
  gp_tol : float;
  explore_placements : bool;
  min_pe_utilization : float;
  comm : Archspec.Link.comm_model;
  contention : bool;
  jobs : int;
  lint : Analysis.Lint.mode;
  presolve : Analysis.Presolve.mode;
  dedupe : bool;
  warm_start : bool;
  gp_kernel : Gp.Solver.kernel;
  solve_deadline_ms : float option;
  retries : int;
  inject : Robust.Inject.t;
  shard : Sweep.Partition.t;
  journal : string option;
  resume : bool;
}

let default_config =
  {
    n_divisors = 2;
    n_pow2 = 2;
    top_choices = 3;
    max_choices = 512;
    gp_tol = 1e-6;
    explore_placements = true;
    min_pe_utilization = 0.0;
    comm = Archspec.Link.Comm_aware;
    contention = false;
    jobs = Domain.recommended_domain_count ();
    lint = Analysis.Lint.Enforce;
    presolve = Analysis.Presolve.Prune;
    dedupe = true;
    warm_start = true;
    gp_kernel = `Compiled;
    solve_deadline_ms = None;
    retries = 1;
    inject = Robust.Inject.none;
    shard = Sweep.Partition.full;
    journal = None;
    resume = false;
  }

type report = {
  outcome : Integerize.outcome;
  choices_enumerated : int;
  choices_solved : int;
  best_continuous : float;
  solve_totals : Gp.Solver.totals;
  failures : Robust.failure list;
  pruned : (string * Analysis.Presolve.proof) list;
}

let log_src = Logs.Src.create "thistle.optimize" ~doc:"Thistle optimizer driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_solves = Obs.Metrics.counter "solver.solves"
let m_outer = Obs.Metrics.counter "solver.outer_iters"
let m_phase1 = Obs.Metrics.counter "solver.phase1_outer_iters"
let m_phase2 = Obs.Metrics.counter "solver.phase2_outer_iters"
let m_newton = Obs.Metrics.counter "solver.newton_steps"
let m_backtracks = Obs.Metrics.counter "solver.backtracks"
let m_kkt = Obs.Metrics.counter "solver.kkt_regularizations"
let m_cache_hits = Obs.Metrics.counter "solver.cache_hits"
let m_warm_starts = Obs.Metrics.counter "solver.warm_starts"
let m_chol_fallbacks = Obs.Metrics.counter "solver.cholesky_fallbacks"
let g_gap = Obs.Metrics.gauge "solver.max_duality_gap"

(* Batched-kernel counters (DESIGN §15): structures compiled once per
   run, members packed into coefficient batches, and the batch-size
   distribution.  Pure functions of the workload and the kernel choice
   (wave membership and structure keys never depend on timing), fed
   sequentially after the waves; all zero unless [gp_kernel = `Batched]. *)
let m_batch_structures = Obs.Metrics.counter "solver.batch_structures_compiled"
let m_batch_members = Obs.Metrics.counter "solver.batch_members"
let h_batch_size = Obs.Metrics.histogram "solver.batch_size"

(* Robustness counters (DESIGN §9/§11): fed sequentially from per-pair
   records after the parallel waves complete, like the solver counters,
   so they are functions of the workload (and injection config) alone. *)
let m_quarantined = Obs.Metrics.counter "robust.quarantined"
let m_retries = Obs.Metrics.counter "robust.retries"
let m_deadline_hits = Obs.Metrics.counter "robust.deadline_hits"

(* Sharded/resumable sweep counters (DESIGN §9/§12).  [sweep.pairs_solved]
   counts physical solver invocations this run — the number a resumed or
   merged run keeps low — while [solve_totals] keeps counting logical
   solves (journal replays included) so reports stay identical. *)
let m_journal_hits = Obs.Metrics.counter "sweep.journal_hits"
let m_journal_stale = Obs.Metrics.counter "sweep.journal_stale"
let m_pairs_solved = Obs.Metrics.counter "sweep.pairs_solved"

(* Presolve counters (DESIGN §9/§13): derived from the stage-A verdicts
   over the owned pairs — a pure function of the workload and the
   presolve mode — and fed sequentially after the waves.  [Prune] and
   [Check] produce identical verdicts, hence identical counters; [Off]
   leaves all three at zero. *)
let m_presolve_pruned = Obs.Metrics.counter "presolve.pruned"
let m_presolve_vars_fixed = Obs.Metrics.counter "presolve.vars_fixed"
let m_presolve_dropped = Obs.Metrics.counter "presolve.constraints_dropped"

(* Communication-model counters (DESIGN §9/§16): per-link delay
   constraints emitted across the owned pairs (a function of the nest,
   the objective and [config.comm]; zero under [Overlapped] or the
   Energy objective), and shortlisted integer outcomes whose binding
   resource is a link rather than compute.  Both fed sequentially after
   the parallel stages. *)
let m_comm_constraints = Obs.Metrics.counter "comm.delay_constraints"
let m_comm_bound = Obs.Metrics.counter "comm.comm_bound_outcomes"

let comm_constraint_names =
  [ "delay-reg"; "delay-dram-rd"; "delay-dram-wr"; "delay-noc-rd"; "delay-noc-wr" ]

(* Ascending on finite scores; any non-finite score (NaN, +/-inf from an
   overflowed or failed model evaluation) orders after every finite one
   and ties with other non-finite scores — under a minimization
   objective a bogus score must never displace a real one.  Note
   [Float.compare] alone orders NaN *first*, which would put a NaN
   candidate at the top of the shortlist. *)
let compare_scores a b =
  match (Float.is_finite a, Float.is_finite b) with
  | true, true -> Float.compare a b
  | true, false -> -1
  | false, true -> 1
  | false, false -> 0

(* Minimum of [score] over the list under [compare_scores]; exact ties
   keep the last listed (the historical fold behavior).  In particular a
   NaN-scored element can win only when every element is non-finite. *)
let select_best ~score outcomes =
  List.fold_left
    (fun acc o ->
      match acc with
      | Some o' when compare_scores (score o') (score o) < 0 -> acc
      | Some _ | None -> Some o)
    None outcomes

(* Everything that can change a pair's journaled fate besides the
   problem itself: solver tolerance and kernel, reuse policy, the
   deadline/retry/injection machinery.  Entering the pair fingerprint,
   it versions the journal cache — change any of these and every
   journal entry goes stale and is re-solved (DESIGN §12). *)
let config_fingerprint config =
  Printf.sprintf
    "v3|tol=%Lx|kernel=%s|warm=%b|dedupe=%b|deadline=%s|retries=%d|inject=%s|presolve=%s|comm=%s"
    (Int64.bits_of_float config.gp_tol)
    (* [`Batched] returns bit-for-bit the [`Compiled] results (see
       {!Gp.Solver.solve_batched}), so their journal entries — and serve
       store entries — are interchangeable, exactly like [Check]/[Off]
       below. *)
    (match config.gp_kernel with
    | `Compiled | `Batched -> "compiled"
    | `List -> "list")
    config.warm_start config.dedupe
    (match config.solve_deadline_ms with
    | None -> "none"
    | Some ms -> Printf.sprintf "%Lx" (Int64.bits_of_float ms))
    config.retries
    (Robust.Inject.to_string config.inject)
    (* [Check] solves every original problem exactly as [Off] does —
       presolve only audits — so their journal entries are
       interchangeable; [Prune] solves reduced problems and skips pruned
       pairs, which is a different workload. *)
    (match config.presolve with
    | Analysis.Presolve.Prune -> "prune"
    | Analysis.Presolve.Check | Analysis.Presolve.Off -> "off")
    (* The communication model changes the delay constraints a pair is
       lowered with, so journaled fates of one model must never replay
       under the other.  (For the Energy objective the GPs coincide, but
       [problem_key] already keys that; entering the fingerprint keeps
       the invalidation rule uniform.)  [contention] is excluded: it
       never changes a solve, only evaluation-side scoring — it enters
       {!request_key} instead. *)
    (Archspec.Link.comm_model_name config.comm)

(* Fed from the sequentially-accumulated totals (not from inside the
   parallel sweep), so the counter values are functions of the workload
   alone — see the Obs.Metrics determinism contract. *)
let feed_solver_metrics (t : Gp.Solver.totals) =
  Obs.Metrics.add m_solves t.Gp.Solver.solves;
  Obs.Metrics.add m_outer (t.Gp.Solver.t_phase1_outer + t.Gp.Solver.t_phase2_outer);
  Obs.Metrics.add m_phase1 t.Gp.Solver.t_phase1_outer;
  Obs.Metrics.add m_phase2 t.Gp.Solver.t_phase2_outer;
  Obs.Metrics.add m_newton t.Gp.Solver.t_newton_iters;
  Obs.Metrics.add m_backtracks t.Gp.Solver.t_backtracks;
  Obs.Metrics.add m_kkt t.Gp.Solver.t_kkt_regularizations;
  Obs.Metrics.add m_chol_fallbacks t.Gp.Solver.t_cholesky_fallbacks;
  Obs.Metrics.observe_max g_gap t.Gp.Solver.max_duality_gap

(* Canonical structural key of a GP: the exact coefficient and exponent
   bits of every term, in formulation order, with constraint names
   excluded — the solver's behavior depends on names only through the
   variable set, which the exponent maps carry.  Pairs with equal keys
   are the same mathematical program, so one solve serves all of them. *)
let problem_key problem =
  let buf = Buffer.create 1024 in
  let fl v =
    Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float v))
  in
  let mono m =
    fl (Symexpr.Monomial.coeff m);
    List.iter
      (fun (x, e) ->
        Buffer.add_string buf x;
        Buffer.add_char buf ':';
        fl e)
      (Symexpr.Monomial.exponents m);
    Buffer.add_char buf '|'
  in
  let poly p =
    List.iter mono (Symexpr.Posynomial.terms p);
    Buffer.add_char buf '#'
  in
  poly (Gp.Problem.objective problem);
  Buffer.add_char buf 'I';
  List.iter (fun (_, p) -> poly p) (Gp.Problem.ineqs problem);
  Buffer.add_char buf 'E';
  List.iter
    (fun (_, m) ->
      mono m;
      Buffer.add_char buf '#')
    (Gp.Problem.eqs problem);
  Buffer.contents buf

(* Canonical identity of a whole optimization request, for the serve
   layer's cross-request result store (DESIGN §14).  [problem_key] keys
   only the GP structure, which is not enough at request granularity:
   two arches with identical capacities but different names formulate
   bit-identical GPs yet print different reports, and the integerization
   knobs never enter the GP at all.  This key therefore covers
   everything outside the solver that determines the report: the
   technology point (exact bits), the arch mode, the objective, the full
   nest (dims, extents, tensors, projections) and the enumeration /
   integerization / lint configuration.  Solver behavior is versioned
   separately by {!config_fingerprint}; a result cache keys on both.
   [jobs], [shard] and the journal fields are excluded — they never
   change the report (the bit-identity contracts of §7/§12). *)
let request_key ~config tech arch_mode objective nest =
  let buf = Buffer.create 512 in
  let add = Buffer.add_string buf in
  let fl v = add (Printf.sprintf "%Lx;" (Int64.bits_of_float v)) in
  add "rk2|tech:";
  fl tech.Archspec.Technology.area_mac;
  fl tech.Archspec.Technology.area_register;
  fl tech.Archspec.Technology.area_sram_word;
  fl tech.Archspec.Technology.energy_mac;
  fl tech.Archspec.Technology.sigma_register;
  fl tech.Archspec.Technology.sigma_sram;
  fl tech.Archspec.Technology.energy_dram;
  fl tech.Archspec.Technology.dram_bandwidth;
  fl tech.Archspec.Technology.sram_bandwidth;
  let link (l : Archspec.Link.t) =
    fl l.Archspec.Link.bandwidth;
    fl l.Archspec.Link.burst_words;
    fl l.Archspec.Link.burst_overhead
  in
  add "links:";
  link tech.Archspec.Technology.links.Archspec.Link.dram;
  link tech.Archspec.Technology.links.Archspec.Link.noc;
  link tech.Archspec.Technology.links.Archspec.Link.reg;
  (match arch_mode with
  | Formulate.Fixed a ->
    add
      (Printf.sprintf "|arch:%s:%d:%d:%d" a.Archspec.Arch.arch_name
         a.Archspec.Arch.pe_count a.Archspec.Arch.registers_per_pe
         a.Archspec.Arch.sram_words)
  | Formulate.Codesign { area_budget } ->
    add "|codesign:";
    fl area_budget);
  add
    (match objective with
    | Formulate.Energy -> "|obj:energy"
    | Formulate.Delay -> "|obj:delay"
    | Formulate.Edp -> "|obj:edp");
  add (Printf.sprintf "|nest:%s" (Workload.Nest.name nest));
  List.iter
    (fun (d : Workload.Nest.dim) ->
      add (Printf.sprintf ";%s=%d" d.Workload.Nest.dim_name d.Workload.Nest.extent))
    (Workload.Nest.dims nest);
  List.iter
    (fun (t : Workload.Nest.tensor) ->
      add
        (Printf.sprintf "|T:%s:%b" t.Workload.Nest.tensor_name
           t.Workload.Nest.read_write);
      List.iter
        (fun (proj : Workload.Nest.projection) ->
          add "[";
          List.iter
            (fun (ix : Workload.Nest.index) ->
              add
                (Printf.sprintf "%d*%s," ix.Workload.Nest.stride
                   ix.Workload.Nest.iter))
            proj;
          add "]")
        t.Workload.Nest.projections)
    (Workload.Nest.tensors nest);
  add
    (Printf.sprintf "|cfg:nd=%d;np=%d;top=%d;max=%d;expl=%b;util=" config.n_divisors
       config.n_pow2 config.top_choices config.max_choices
       config.explore_placements);
  fl config.min_pe_utilization;
  add
    (match config.lint with
    | Analysis.Lint.Enforce -> "lint=enforce"
    | Analysis.Lint.Warn -> "lint=warn"
    | Analysis.Lint.Off -> "lint=off");
  (* Unlike the journal fingerprint, contention belongs here: it changes
     the integerizer's candidate scoring, hence the served result. *)
  add
    (Printf.sprintf ";comm=%s;cont=%b"
       (Archspec.Link.comm_model_name config.comm)
       config.contention);
  Buffer.contents buf

(* Fate of one (choice, placement) pair after the guarded solve stage:
   a solver solution, the quarantining failure, or the presolve proof
   that pruned the pair without a solve, plus the final attempt's
   telemetry, the number of extra attempts spent, and the deadline hits
   accumulated across every attempt (retried stalls included, which the
   final attempt's stats alone would miss). *)
type slot = {
  s_fate : Sweep.Journal.fate;
  s_stats : Gp.Solver.stats;
  s_retries : int;
  s_deadline_hits : int;
}

let run ?(config = default_config) tech arch_mode objective nest =
  let jobs = Int.max 1 config.jobs in
  let plan = Permutations.enumerate ~max_choices:config.max_choices nest in
  let placements =
    if config.explore_placements then plan.Permutations.placements
    else [ plan.Permutations.pinned ]
  in
  let nplac = Int.max 1 (List.length placements) in
  let pairs =
    List.concat_map
      (fun choice_vol -> List.map (fun placement -> (choice_vol, placement)) placements)
      plan.Permutations.choices
  in
  let npairs = List.length pairs in
  (* The explicit indexed work-list: pair [i] is choice [i / nplac],
     placement [i mod nplac], in exact enumeration order.  Shard
     membership, journal entries and the merge step all speak this
     indexing (DESIGN §12); a shard owns whole choices so every
     warm-start source stays shard-local. *)
  let pair_arr = Array.of_list pairs in
  let shard_idx = Sweep.Partition.pair_indices config.shard ~nplac ~npairs in
  (* Stage A: formulate, lint, key and presolve every owned (choice,
     placement) pair.  The pairs are independent — Formulate.build
     shares no mutable state — and Exec.Par.map preserves sequential
     order, so the stage is bit-identical for any [jobs].  A lint
     rejection aborts the whole sweep: every pair of one layer shares
     the formulation code, so one malformed instance means the model
     itself is wrong, not that one choice is unlucky.

     Presolve (DESIGN §13) is defense-in-depth the other way around: its
     verdicts gate individual pairs, never the sweep, and before an
     infeasibility verdict is allowed to stand, the proof is re-checked
     by {!Analysis.Certificate.check_prune}.  A rejected proof — or a
     crash inside the propagator — downgrades the pair to "solve
     normally" with a warning, in [Prune] and [Check] alike, so a buggy
     propagator can never silently discard a feasible pair. *)
  let presolve_of instance =
    match config.presolve with
    | Analysis.Presolve.Off -> None
    | Analysis.Presolve.Prune | Analysis.Presolve.Check -> (
      let problem = instance.Formulate.problem in
      let no_reduction t =
        {
          t with
          Analysis.Presolve.verdict =
            Analysis.Presolve.Feasible
              { Analysis.Presolve.reduced = problem; fixed = []; dropped = [] };
        }
      in
      match Analysis.Presolve.analyze problem with
      | exception e ->
        Log.warn (fun m ->
            m "%s: presolve crashed, solving anyway: %s"
              instance.Formulate.provenance (Printexc.to_string e));
        None
      | t -> (
        match t.Analysis.Presolve.verdict with
        | Analysis.Presolve.Feasible _ -> Some t
        | Analysis.Presolve.Infeasible proof -> (
          match Analysis.Certificate.check_prune problem proof with
          | Ok () -> Some t
          | Error msg ->
            Log.warn (fun m ->
                m "%s: presolve proof rejected, solving anyway: %s"
                  instance.Formulate.provenance msg);
            Some (no_reduction t))))
  in
  let formulated =
    try
      Ok
        (Exec.Par.map ~jobs
           (fun i ->
             let choice_vol, placement = pair_arr.(i) in
             let instance =
               Obs.Trace.span "formulate" (fun () ->
                   Formulate.build ~placement ~comm:config.comm tech arch_mode
                     objective plan choice_vol)
             in
             Analysis.Lint.gate config.lint (Formulate.lint instance);
             (instance, problem_key instance.Formulate.problem, presolve_of instance))
           shard_idx)
    with Analysis.Lint.Rejected diags ->
      Error
        (Printf.sprintf "optimize: lint rejected formulation: %s"
           (Analysis.Diagnostic.summary diags))
  in
  match formulated with
  | Error _ as e -> e
  | Ok formulated ->
  let inst :
      (Formulate.instance * string * Analysis.Presolve.t option) option array =
    Array.make npairs None
  in
  List.iter2 (fun i v -> inst.(i) <- Some v) shard_idx formulated;
  let instance_of i =
    match inst.(i) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "optimize: pair %d outside shard" i)
  in
  (* Solve schedule: two waves with sweep-level reuse.

     Wave 1 solves the pinned-placement pair of every choice (pair
     indices [c * nplac]) cold, deduplicating identical programs onto
     their first occurrence in enumeration order.  Wave 2 solves the
     remaining placements, deduplicating against everything already
     keyed, and warm-starting each representative from its own choice's
     pinned solution — which wave 1 always provides.

     Wave membership, dedup representatives and warm-start sources are
     all functions of the enumeration order alone (never of timing or
     worker count), and Exec.Par.map preserves order within each wave,
     so the whole schedule is bit-identical for any [jobs]. *)
  let results : slot option array = Array.make npairs None in
  let key_rep = Hashtbl.create (2 * npairs) in
  let cache_hits = ref 0 in
  let warm_starts = ref 0 in
  (* Journal plumbing (DESIGN §12).  Each owned pair gets a fingerprint
     of (canonical problem key, solver-config fingerprint); a resume
     replays journal entries whose fingerprint still matches, and every
     pair completed by THIS run is appended as it finishes — under a
     mutex, flushed per entry — so a killed run loses at most the pairs
     still in flight. *)
  let config_fp = config_fingerprint config in
  let pair_fp = Array.make npairs "" in
  List.iter
    (fun i ->
      let _, key, _ = instance_of i in
      pair_fp.(i) <- Sweep.Journal.fingerprint ~config:config_fp ~problem_key:key)
    shard_idx;
  let journal_hits = ref 0 in
  let journal_stale = ref 0 in
  let resumed = Array.make npairs false in
  (if config.resume then
     match config.journal with
     | Some path -> (
       match Sweep.Journal.load_existing path with
       | Error msg ->
         Log.warn (fun m -> m "journal %s unreadable, resuming nothing: %s" path msg)
       | Ok entries ->
         let tbl = Hashtbl.create (2 * List.length entries + 1) in
         (* Last entry per pair wins: a re-run may have appended a fresh
            entry for a pair whose earlier one had gone stale. *)
         List.iter
           (fun (e : Sweep.Journal.entry) -> Hashtbl.replace tbl e.Sweep.Journal.pair e)
           entries;
         List.iter
           (fun i ->
             match Hashtbl.find_opt tbl i with
             | Some e when String.equal e.Sweep.Journal.fingerprint pair_fp.(i) ->
               results.(i) <-
                 Some
                   {
                     s_fate = e.Sweep.Journal.fate;
                     s_stats = e.Sweep.Journal.stats;
                     s_retries = e.Sweep.Journal.retries;
                     s_deadline_hits = e.Sweep.Journal.deadline_hits;
                   };
               resumed.(i) <- true;
               incr journal_hits
             | Some _ -> incr journal_stale
             | None -> ())
           shard_idx)
     | None -> ());
  let journal_oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      config.journal
  in
  let journal_mutex = Mutex.create () in
  let journal_emit i (slot : slot) =
    match journal_oc with
    | None -> ()
    | Some oc ->
      if not resumed.(i) then begin
        let instance, _, _ = instance_of i in
        let entry =
          {
            Sweep.Journal.pair = i;
            fingerprint = pair_fp.(i);
            provenance = instance.Formulate.provenance;
            fate = slot.s_fate;
            stats = slot.s_stats;
            retries = slot.s_retries;
            deadline_hits = slot.s_deadline_hits;
          }
        in
        Mutex.lock journal_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock journal_mutex)
          (fun () -> Sweep.Journal.append_line oc entry)
      end
  in
  Fun.protect ~finally:(fun () -> Option.iter close_out_noerr journal_oc)
  @@ fun () ->
  (* Presolve pruning ([Prune] mode only): statically infeasible pairs
     get their fate slot before wave selection — like journal-resumed
     pairs they register as dedupe representatives and are never
     handed to the solver.  The proof was independently re-checked in
     stage A; the stats are all-zero because no solver ran. *)
  (match config.presolve with
  | Analysis.Presolve.Check | Analysis.Presolve.Off -> ()
  | Analysis.Presolve.Prune ->
    List.iter
      (fun i ->
        if results.(i) = None then
          let _, _, pre = instance_of i in
          match pre with
          | Some
              { Analysis.Presolve.verdict = Analysis.Presolve.Infeasible proof; _ }
            ->
            let slot =
              {
                s_fate = Sweep.Journal.Pruned proof;
                s_stats = Gp.Solver.fresh_stats ();
                s_retries = 0;
                s_deadline_hits = 0;
              }
            in
            results.(i) <- Some slot;
            journal_emit i slot
          | Some { Analysis.Presolve.verdict = Analysis.Presolve.Feasible _; _ }
          | None ->
            ())
      shard_idx);
  let deadline_ns = Option.map (fun ms -> ms *. 1e6) config.solve_deadline_ms in
  let max_attempts = 1 + Int.max 0 config.retries in
  (* In [Prune] mode a feasible presolve verdict swaps in the reduced
     problem: fixed variables are gone (the compiled kernel's
     nullspace basis shrinks accordingly) and redundant constraints
     are dropped.  The fixed values are re-injected into every
     solution so downstream consumers — certificates, integerization,
     warm starts, journal replays — see a complete assignment;
     {!Formulate.solution_env} would otherwise default them to 1. *)
  let reduced_of i =
    let instance, _, pre = instance_of i in
    match (config.presolve, pre) with
    | ( Analysis.Presolve.Prune,
        Some { Analysis.Presolve.verdict = Analysis.Presolve.Feasible red; _ } )
      ->
      (red.Analysis.Presolve.reduced, red.Analysis.Presolve.fixed)
    | _ -> (instance.Formulate.problem, [])
  in
  (* Batched kernel (DESIGN §15): before each wave enters the parallel
     pool, its pairs are grouped by coefficient-blind structure key — in
     enumeration order, sequentially — and each group is packed into one
     coefficient block over a per-structure plan.  Plans are cached
     across waves (wave 2 usually re-hits every structure wave 1
     compiled); blocks are per wave.  Point pairs (everything fixed by
     presolve) never reach the solver and are left out.  Grouping is a
     function of the enumeration order alone, so the schedule — and
     with solve_batched bit-identical to the scalar kernel, every
     result — is unchanged for any [jobs]. *)
  let batch_plans : (string, Gp.Batch.plan) Hashtbl.t = Hashtbl.create 64 in
  let batch_slot : (int, Gp.Batch.block * int) Hashtbl.t =
    Hashtbl.create (2 * npairs)
  in
  let batch_sizes = ref [] in
  let prepare_batches idxs =
    match config.gp_kernel with
    | `Compiled | `List -> ()
    | `Batched ->
      let groups = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun i ->
          let problem, fixed = reduced_of i in
          if not (fixed <> [] && Gp.Problem.variables problem = []) then begin
            let key = Gp.Batch.structure_key problem in
            match Hashtbl.find_opt groups key with
            | None ->
              order := key :: !order;
              Hashtbl.replace groups key (ref [ (i, problem) ])
            | Some members -> members := (i, problem) :: !members
          end)
        idxs;
      List.iter
        (fun key ->
          let members = List.rev !(Hashtbl.find groups key) in
          let plan =
            match Hashtbl.find_opt batch_plans key with
            | Some plan -> plan
            | None ->
              let plan = Gp.Batch.compile (snd (List.hd members)) in
              Hashtbl.replace batch_plans key plan;
              plan
          in
          let block = Gp.Batch.pack plan (Array.of_list (List.map snd members)) in
          batch_sizes := block.Gp.Batch.bk_nmembers :: !batch_sizes;
          List.iteri
            (fun m (i, _) -> Hashtbl.replace batch_slot i (block, m))
            members)
        (List.rev !order)
  in
  (* One guarded solve attempt.  A stall injection forces a zero deadline
     on that attempt, which trips [Deadline_exceeded] deterministically at
     the solver's first check without reading the wall clock.  Retries
     escalate the initial KKT regularization — a solve that crashed or
     stalled was usually fighting a near-singular system. *)
  let solve_pair ?warm_start i =
    let instance, _, _ = instance_of i in
    let prov = instance.Formulate.provenance in
    let problem, fixed = reduced_of i in
    let reinstate (sol : Gp.Solver.solution) =
      if fixed = [] then sol
      else { sol with Gp.Solver.values = sol.Gp.Solver.values @ fixed }
    in
    if fixed <> [] && Gp.Problem.variables problem = [] then
      (* Every variable was pinned by monotonicity: the program is a
         point, already proven feasible, so there is nothing to solve. *)
      {
        s_fate =
          Sweep.Journal.Solved
            {
              Gp.Solver.status = Gp.Solver.Optimal;
              objective =
                Symexpr.Posynomial.eval (fun _ -> 1.0)
                  (Gp.Problem.objective problem);
              values = fixed;
            };
        s_stats = Gp.Solver.fresh_stats ();
        s_retries = 0;
        s_deadline_hits = 0;
      }
    else begin
    let attempt_once attempt =
      let st = Gp.Solver.fresh_stats () in
      let deadline_ns =
        if Robust.Inject.stall config.inject ~site:"solve" ~provenance:prov ~attempt
        then Some 0.0
        else deadline_ns
      in
      let initial_reg = if attempt = 0 then 1e-9 else 1e-5 in
      let result =
        Robust.guard ~inject:config.inject ~attempt ~site:"solve" ~provenance:prov
          (fun () ->
            Obs.Trace.span "solve"
              ~attrs:[ ("provenance", prov) ]
              (fun () ->
                match config.gp_kernel with
                | `Batched ->
                  (* The pair was packed by [prepare_batches] before its
                     wave started; retries reuse the same slot.  A
                     missing slot is a scheduling bug — [Robust.guard]
                     turns the [Not_found] into a quarantined pair
                     rather than a crashed sweep. *)
                  let block, mem = Hashtbl.find batch_slot i in
                  Gp.Solver.solve_batched ~tol:config.gp_tol ~stats:st
                    ?deadline_ns ~initial_reg ?warm_start block mem
                | (`Compiled | `List) as kernel ->
                  Gp.Solver.solve ~tol:config.gp_tol ~stats:st ~kernel
                    ?deadline_ns ~initial_reg ?warm_start problem))
      in
      (result, st)
    in
    let start = Robust.now_ns () in
    let rec go ~dh attempt =
      let finish s_fate st =
        {
          s_fate;
          s_stats = st;
          s_retries = attempt;
          s_deadline_hits = dh + st.Gp.Solver.deadline_hits;
        }
      in
      match attempt_once attempt with
      | Ok sol, st when sol.Gp.Solver.status = Gp.Solver.Deadline_exceeded ->
        if attempt + 1 < max_attempts then
          go ~dh:(dh + st.Gp.Solver.deadline_hits) (attempt + 1)
        else
          finish
            (Sweep.Journal.Quarantined
               (Robust.deadline_failure ~attempts:(attempt + 1) ~site:"solve"
                  ~provenance:prov
                  ~elapsed_ns:(Robust.now_ns () -. start)
                  ()))
            st
      | Error f, st ->
        if attempt + 1 < max_attempts then
          go ~dh:(dh + st.Gp.Solver.deadline_hits) (attempt + 1)
        else finish (Sweep.Journal.Quarantined f) st
      | Ok sol, st -> finish (Sweep.Journal.Solved (reinstate sol)) st
    in
    go ~dh:0 0
    end
  in
  (* Replaying a cached solve copies the representative's telemetry
     into a fresh stats record, so [solve_totals] keeps counting
     logical solves exactly as an undeduplicated sweep would; physical
     solver work is [solves - cache_hits].  A quarantined representative
     quarantines its replicas too (same program, same fate), with the
     failure relabeled to the replica's own provenance. *)
  let replay i =
    let instance, key, _ = instance_of i in
    let rep = Hashtbl.find key_rep key in
    let r = Option.get results.(rep) in
    let st = Gp.Solver.fresh_stats () in
    Gp.Solver.copy_stats ~into:st r.s_stats;
    let s_fate =
      match r.s_fate with
      | (Sweep.Journal.Solved _ | Sweep.Journal.Pruned _) as fate -> fate
      | Sweep.Journal.Quarantined f ->
        Sweep.Journal.Quarantined
          { f with Robust.provenance = instance.Formulate.provenance }
    in
    incr cache_hits;
    let slot = { r with s_fate; s_stats = st } in
    results.(i) <- Some slot;
    journal_emit i slot
  in
  let is_rep i =
    let _, key, _ = instance_of i in
    if config.dedupe && Hashtbl.mem key_rep key then false
    else begin
      Hashtbl.replace key_rep key i;
      true
    end
  in
  let pinned_idx =
    List.filter (fun i -> Sweep.Partition.is_pinned ~nplac i) shard_idx
  in
  let other_idx =
    List.filter (fun i -> not (Sweep.Partition.is_pinned ~nplac i)) shard_idx
  in
  (* Wave 1: pinned placements, cold.  Journal-resumed pairs still
     register as dedupe representatives (their slot is present, so later
     duplicates replay from it) but are never re-solved. *)
  let wave1 =
    List.filter
      (fun i ->
        let rep = is_rep i in
        rep && results.(i) = None)
      pinned_idx
  in
  prepare_batches wave1;
  let solved1 =
    Exec.Par.map ~jobs
      (fun i ->
        let r = solve_pair i in
        journal_emit i r;
        r)
      wave1
  in
  List.iter2 (fun i r -> results.(i) <- Some r) wave1 solved1;
  List.iter (fun i -> if results.(i) = None then replay i) pinned_idx;
  (* Wave 2: remaining placements, warm-started from the choice's
     pinned solution when it is usable. *)
  let warm_of i =
    if not config.warm_start then None
    else
      let pinned = i / nplac * nplac in
      match results.(pinned) with
      | Some { s_fate = Sweep.Journal.Solved sol; _ }
        when sol.Gp.Solver.status <> Gp.Solver.Infeasible
             && sol.Gp.Solver.values <> [] ->
        Some sol.Gp.Solver.values
      | _ -> None
  in
  let wave2 =
    List.filter_map
      (fun i ->
        let rep = is_rep i in
        if rep && results.(i) = None then Some (i, warm_of i) else None)
      other_idx
  in
  List.iter (fun (_, w) -> if w <> None then incr warm_starts) wave2;
  prepare_batches (List.map fst wave2);
  let solved2 =
    Exec.Par.map ~jobs
      (fun (i, warm_start) ->
        let r = solve_pair ?warm_start i in
        journal_emit i r;
        r)
      wave2
  in
  List.iter2 (fun (i, _) r -> results.(i) <- Some r) wave2 solved2;
  List.iter (fun i -> if results.(i) = None then replay i) other_idx;
  let pairs_solved = List.length wave1 + List.length wave2 in
  (* Stage C: certificate-check every surviving pair against its
     (possibly replayed) solution, again order-preserving and in
     parallel.  Quarantined pairs pass through with their failure. *)
  let attempts =
    Exec.Par.map ~jobs
      (fun i ->
        let instance, _, _ = instance_of i in
        let slot = Option.get results.(i) in
        let usable =
          match slot.s_fate with
          | Sweep.Journal.Quarantined _ | Sweep.Journal.Pruned _ -> None
          | Sweep.Journal.Solved solution ->
            (match solution.Gp.Solver.status with
            | Gp.Solver.Infeasible | Gp.Solver.Deadline_exceeded -> None
            | Gp.Solver.Optimal | Gp.Solver.Iteration_limit ->
              if not (Float.is_finite solution.Gp.Solver.objective) then None
              else begin
                (* Post-solve certificate: a point with non-finite coordinates
                   or constraint evaluations is discarded even when the solver
                   reported a finite objective for it. *)
                let cert =
                  Analysis.Certificate.check ~provenance:instance.Formulate.provenance
                    instance.Formulate.problem
                    (Formulate.solution_env instance solution)
                in
                if Analysis.Certificate.hard_failure cert then begin
                  Log.debug (fun m ->
                      m "%s: certificate rejected solution: %s"
                        instance.Formulate.provenance
                        (Analysis.Diagnostic.summary cert.Analysis.Certificate.diagnostics));
                  None
                end
                else Some (instance, solution)
              end)
        in
        (usable, slot))
      shard_idx
  in
  (* Accumulate telemetry over every solve (feasible, quarantined or
     not), in the deterministic sequential order Exec.Par.map
     preserves. *)
  let solve_totals =
    List.fold_left
      (fun acc (_, slot) -> Gp.Solver.accumulate acc slot.s_stats)
      Gp.Solver.zero_totals attempts
  in
  let solve_failures =
    List.filter_map
      (fun (_, slot) ->
        match slot.s_fate with Sweep.Journal.Quarantined f -> Some f | _ -> None)
      attempts
  in
  (* Pruned pairs, with provenance, in enumeration order — reported like
     quarantined pairs so audits can re-check every proof. *)
  let pruned =
    List.filter_map
      (fun i ->
        match results.(i) with
        | Some { s_fate = Sweep.Journal.Pruned proof; _ } ->
          let instance, _, _ = instance_of i in
          Some (instance.Formulate.provenance, proof)
        | _ -> None)
      shard_idx
  in
  (* Check mode: every pair was solved as formulated; compare the
     solver's findings against the presolve verdicts.  Any disagreement
     is a presolve soundness bug and fails the run — after the counters
     are fed, so [Check] and [Prune] report identical telemetry. *)
  let disagreements =
    if config.presolve <> Analysis.Presolve.Check then []
    else
      List.concat
        (List.map2
           (fun i (usable, _) ->
             let instance, _, pre = instance_of i in
             let prov = instance.Formulate.provenance in
             match (pre, usable) with
             | None, _ | _, None -> []
             | Some t, Some (_, (solution : Gp.Solver.solution)) -> (
               match t.Analysis.Presolve.verdict with
               | Analysis.Presolve.Infeasible proof ->
                 [
                   Printf.sprintf
                     "%s: solved despite an infeasibility proof (culprit %s)" prov
                     proof.Analysis.Presolve.culprit;
                 ]
               | Analysis.Presolve.Feasible red ->
                 let escaped =
                   List.filter_map
                     (fun (x, v) ->
                       match List.assoc_opt x t.Analysis.Presolve.box with
                       | Some iv when not (Analysis.Interval.mem ~slack:1e-4 v iv)
                         ->
                         Some
                           (Format.asprintf
                              "%s: solution %s = %g escapes the presolve box %a"
                              prov x v Analysis.Interval.pp iv)
                       | Some _ | None -> None)
                     solution.Gp.Solver.values
                 in
                 let active =
                   List.filter_map
                     (fun (name, _) ->
                       match
                         List.assoc_opt name
                           (Gp.Problem.ineqs instance.Formulate.problem)
                       with
                       | None -> None
                       | Some p ->
                         let v =
                           Symexpr.Posynomial.eval
                             (Formulate.solution_env instance solution)
                             p
                         in
                         if v >= 1.0 -. 1e-7 then
                           Some
                             (Printf.sprintf
                                "%s: eliminated constraint %s evaluates to %g at \
                                 the optimum"
                                prov name v)
                         else None)
                     red.Analysis.Presolve.dropped
                 in
                 escaped @ active))
           shard_idx attempts)
  in
  feed_solver_metrics solve_totals;
  Obs.Metrics.add m_batch_structures (Hashtbl.length batch_plans);
  Obs.Metrics.add m_batch_members (List.fold_left ( + ) 0 !batch_sizes);
  List.iter
    (fun s -> Obs.Metrics.observe h_batch_size (float_of_int s))
    (List.rev !batch_sizes);
  Obs.Metrics.add m_cache_hits !cache_hits;
  Obs.Metrics.add m_warm_starts !warm_starts;
  Obs.Metrics.add m_journal_hits !journal_hits;
  Obs.Metrics.add m_journal_stale !journal_stale;
  Obs.Metrics.add m_pairs_solved pairs_solved;
  let presolve_pruned = ref 0 in
  let presolve_fixed = ref 0 in
  let presolve_dropped = ref 0 in
  List.iter
    (fun i ->
      let _, _, pre = instance_of i in
      match pre with
      | Some { Analysis.Presolve.verdict = Analysis.Presolve.Infeasible _; _ } ->
        incr presolve_pruned
      | Some { Analysis.Presolve.verdict = Analysis.Presolve.Feasible red; _ } ->
        presolve_fixed :=
          !presolve_fixed + List.length red.Analysis.Presolve.fixed;
        presolve_dropped :=
          !presolve_dropped + List.length red.Analysis.Presolve.dropped
      | None -> ())
    shard_idx;
  Obs.Metrics.add m_presolve_pruned !presolve_pruned;
  Obs.Metrics.add m_presolve_vars_fixed !presolve_fixed;
  Obs.Metrics.add m_presolve_dropped !presolve_dropped;
  let comm_constraints = ref 0 in
  List.iter
    (fun i ->
      let instance, _, _ = instance_of i in
      List.iter
        (fun (name, _) ->
          if List.mem name comm_constraint_names then incr comm_constraints)
        (Gp.Problem.ineqs instance.Formulate.problem))
    shard_idx;
  Obs.Metrics.add m_comm_constraints !comm_constraints;
  Obs.Metrics.add m_quarantined (List.length solve_failures);
  Obs.Metrics.add m_retries
    (List.fold_left (fun acc (_, slot) -> acc + slot.s_retries) 0 attempts);
  Obs.Metrics.add m_deadline_hits
    (List.fold_left (fun acc (_, slot) -> acc + slot.s_deadline_hits) 0 attempts);
  List.iter
    (fun f -> Log.warn (fun m -> m "quarantined: %s" (Robust.describe f)))
    solve_failures;
  match disagreements with
  | first :: _ ->
    List.iter
      (fun d -> Log.err (fun m -> m "presolve check: %s" d))
      disagreements;
    Error
      (Printf.sprintf
         "optimize: presolve check found %d disagreement(s); first: %s"
         (List.length disagreements) first)
  | [] ->
  let solved = List.filter_map fst attempts in
  match solved with
  | [] ->
    Log.info (fun m ->
        m "%s: 0/%d choices solved (raw %d, %d quarantined, %d pruned)"
          (Workload.Nest.name nest)
          (List.length plan.Permutations.choices) plan.Permutations.raw_count
          (List.length solve_failures) (List.length pruned));
    let reasons =
      (if solve_failures = [] then []
       else
         [ Printf.sprintf "%d pair(s) quarantined" (List.length solve_failures) ])
      @
      if pruned = [] then []
      else [ Printf.sprintf "%d pair(s) presolve-pruned" (List.length pruned) ]
    in
    Error
      (match reasons with
      | [] -> "optimize: no permutation choice produced a feasible program"
      | reasons ->
        Printf.sprintf
          "optimize: no permutation choice produced a feasible program (%s)"
          (String.concat ", " reasons))
  | solved ->
    Log.info (fun m ->
        m "%s: %d/%d choices solved (raw %d, %d deduped, %d warm)"
          (Workload.Nest.name nest) (List.length solved)
          (List.length plan.Permutations.choices) plan.Permutations.raw_count
          !cache_hits !warm_starts);
    let ranked =
      (* List.sort is stable, and [solved] arrives in sequential order, so
         ties keep the deterministic enumeration order.  [compare_scores]
         (not [Float.compare], which sorts NaN first) ranks any
         non-finite solver objective last, so a bogus solution can never
         top the shortlist or become [best_continuous] while a finite
         one exists. *)
      List.sort
        (fun (_, a) (_, b) ->
          compare_scores a.Gp.Solver.objective b.Gp.Solver.objective)
        solved
    in
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    let shortlisted = take config.top_choices ranked in
    let best_continuous =
      match ranked with (_, s) :: _ -> s.Gp.Solver.objective | [] -> nan
    in
    (* Guarded integerization: a crash in the model-evaluation stage
       quarantines that shortlisted candidate (no retry — the stage is
       deterministic in its inputs, so a second run would crash the same
       way) instead of killing the sweep. *)
    let staged =
      Exec.Par.map ~jobs
        (fun (instance, solution) ->
          let prov = instance.Formulate.provenance in
          match
            Robust.guard ~inject:config.inject ~site:"integerize" ~provenance:prov
              (fun () ->
                Obs.Trace.span "integerize"
                  ~attrs:[ ("provenance", prov) ]
                  (fun () ->
                    Integerize.run ~n_divisors:config.n_divisors
                      ~n_pow2:config.n_pow2
                      ~min_pe_utilization:config.min_pe_utilization
                      ~contention:config.contention tech instance solution))
          with
          | Ok (Ok o) -> (Some o, None)
          | Ok (Error msg) ->
            Log.debug (fun m -> m "integerize failed: %s" msg);
            (None, None)
          | Error f -> (None, Some f))
        shortlisted
    in
    let outcomes = List.filter_map fst staged in
    let integerize_failures = List.filter_map snd staged in
    Obs.Metrics.add m_quarantined (List.length integerize_failures);
    Obs.Metrics.add m_comm_bound
      (List.length
         (List.filter
            (fun o ->
              o.Integerize.metrics.Accmodel.Evaluate.comm <> []
              && o.Integerize.metrics.Accmodel.Evaluate.binding <> "compute")
            outcomes));
    List.iter
      (fun f -> Log.warn (fun m -> m "quarantined: %s" (Robust.describe f)))
      integerize_failures;
    let failures = solve_failures @ integerize_failures in
    (* [select_best] orders non-finite model scores after every finite
       one: the old [<] fold returned false on NaN comparisons, so a
       quarantine-surviving but NaN-scored candidate silently displaced
       a finite best. *)
    let best =
      select_best
        ~score:(fun o -> Integerize.score objective o.Integerize.metrics)
        outcomes
    in
    begin
      match best with
      | None ->
        Error
          (if integerize_failures = [] then
             "optimize: no integer candidate survived model evaluation"
           else
             Printf.sprintf
               "optimize: no integer candidate survived model evaluation (%d \
                pair(s) quarantined)"
               (List.length integerize_failures))
      | Some outcome ->
        Ok
          {
            outcome;
            choices_enumerated = List.length plan.Permutations.choices;
            choices_solved = List.length solved;
            best_continuous;
            solve_totals;
            failures;
            pruned;
          }
    end

let dataflow ?config tech arch objective nest =
  run ?config tech (Formulate.Fixed arch) objective nest

let codesign ?config tech ~area_budget objective nest =
  run ?config tech (Formulate.Codesign { area_budget }) objective nest
