(** Deterministic sharding of the optimizer's pair enumeration.

    The co-design sweep is a pure enumeration over (permutation choice
    x window placement) pairs: pair [i] is choice [i / nplac], placement
    [i mod nplac], in the exact order {!Thistle.Permutations.enumerate}
    produces.  That indexing is the work-list contract every sharding
    and journaling decision hangs off — a pair index names the same
    mathematical program on every machine running the same enumeration.

    A partition [I/N] selects the choices [c] with [c mod N = I - 1]
    (1-based [I]), i.e. whole choices are dealt round-robin across
    shards.  Partitioning by {e choice} rather than by raw pair index is
    what keeps shard runs bit-identical to the corresponding slice of an
    unsharded run: the solver's warm-start source for a non-pinned
    placement is its own choice's pinned solution, so a choice-complete
    shard never reaches across the partition boundary.  Round-robin
    (rather than contiguous blocks) spreads structurally similar
    neighbouring choices across shards, balancing work. *)

type t = {
  index : int;  (** 1-based shard number, [1 <= index <= count] *)
  count : int;  (** total number of shards, [>= 1] *)
}

val full : t
(** The trivial partition [1/1]: every choice selected. *)

val is_full : t -> bool

val parse : string -> (t, string) result
(** [parse "I/N"] — 1-based; fails unless [1 <= I <= N]. *)

val to_string : t -> string
(** Inverse of {!parse}: ["I/N"]. *)

val selects : t -> choice:int -> bool
(** Whether 0-based choice index [choice] belongs to this shard. *)

val choice_of : nplac:int -> int -> int
(** Choice index of pair [i]: [i / nplac]. *)

val placement_of : nplac:int -> int -> int
(** Placement index of pair [i]: [i mod nplac]. *)

val is_pinned : nplac:int -> int -> bool
(** Whether pair [i] is its choice's pinned-placement pair (placement
    index 0) — the wave-1 / warm-start source slot. *)

val pair_indices : t -> nplac:int -> npairs:int -> int list
(** Global pair indices owned by this shard, ascending.  [npairs] must
    be [nchoices * nplac]; the union over [index = 1..count] is exactly
    [0 .. npairs - 1] and the shards are pairwise disjoint. *)
