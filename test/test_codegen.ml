(* Tests for tiled-pseudocode emission (the paper's Fig. 1(d) form). *)

module Nest = Workload.Nest
module Mapping = Mapspace.Mapping
module Emit = Codegen.Emit

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains code needle =
  Alcotest.(check bool) (Printf.sprintf "contains %S" needle) true (contains ~needle code)

let index_of code needle =
  let nl = String.length needle and hl = String.length code in
  let rec go i =
    if i + nl > hl then Alcotest.failf "missing %S" needle
    else if String.sub code i nl = needle then i
    else go (i + 1)
  in
  go 0

(* The paper's matmul structure: SRAM-level <i,k,j>, register-level
   <i,j,k>, P_k = 1 (Fig. 1(d)). *)
let matmul_code () =
  let nest = Workload.Matmul.nest ~ni:64 ~nj:64 ~nk:64 () in
  let mapping =
    Mapping.canonical
      ~reg:([ ("i", 2); ("j", 2); ("k", 4) ], [ "i"; "j"; "k" ])
      ~pe:([ ("i", 4); ("j", 4); ("k", 2) ], [ "i"; "j"; "k" ])
      ~spatial:[ ("i", 2); ("j", 4) ]
      ~dram:([ ("i", 4); ("j", 2); ("k", 8) ], [ "i"; "k"; "j" ])
  in
  Result.get_ok (Emit.pseudocode nest mapping)

let test_buffers () =
  let code = matmul_code () in
  (* SRAM tiles: C 16x32, A 16x8, B 8x32; register tiles 2x2, 2x4, 4x2. *)
  check_contains code "int16 C_sbuf[16][32];";
  check_contains code "int16 A_sbuf[16][8];";
  check_contains code "int16 B_sbuf[8][32];";
  check_contains code "int16 C_rbuf[2][2];";
  check_contains code "int16 A_rbuf[2][4];";
  check_contains code "int16 B_rbuf[4][2];"

let test_loop_structure () =
  let code = matmul_code () in
  (* 3 DRAM + 2 spatial + 3 PE-temporal + 3 register loops. *)
  Alcotest.(check int) "loop count" 11 (Emit.loop_count code);
  check_contains code "forall (ip = 0; ip < 2; ip++)";
  check_contains code "forall (jp = 0; jp < 4; jp++)";
  (* DRAM level in <i,k,j> order. *)
  Alcotest.(check bool)
    "id before kd" true
    (index_of code "for (id" < index_of code "for (kd");
  Alcotest.(check bool)
    "kd before jd" true
    (index_of code "for (kd" < index_of code "for (jd")

let test_copy_hoisting () =
  let code = matmul_code () in
  (* A is not indexed by j: its SRAM copy hoists above the jd loop (it
     appears textually before "for (jd"), while B and C's do not. *)
  Alcotest.(check bool)
    "A copy above jd" true
    (index_of code "A_sbuf[0:" < index_of code "for (jd");
  Alcotest.(check bool)
    "B copy below jd" true
    (index_of code "B_sbuf[0:" > index_of code "for (jd");
  (* C is read-write: a write-back of the SRAM tile exists. *)
  check_contains code "] = C_sbuf[";
  check_contains code "] = C_rbuf["

let test_mac_statement () =
  let code = matmul_code () in
  check_contains code "C_rbuf[ir][jr] += A_rbuf[ir][kr] * B_rbuf[kr][jr];"

let test_conv_halo_and_strides () =
  let conv = Workload.Conv.make ~name:"c" ~k:4 ~c:2 ~hw:8 ~rs:3 ~stride:2 () in
  let nest = Workload.Conv.to_nest conv in
  let dims = Nest.dim_names nest in
  let mapping =
    Mapping.canonical
      ~reg:([ ("r", 3); ("s", 3); ("h", 2); ("w", 2) ], dims)
      ~pe:([ ("c", 2); ("h", 2) ], [ "c"; "h"; "n"; "k"; "r"; "s"; "w" ])
      ~spatial:[ ("k", 4) ]
      ~dram:([ ("w", 2) ], dims)
  in
  let code = Result.get_ok (Emit.pseudocode nest mapping) in
  (* In's SRAM tile: c=2, h spans 2*4+3-2 = 9, w spans 2*2+3-2 = 5. *)
  check_contains code "int16 In_sbuf[1][2][9][5];";
  (* The register tile of In carries the halo too: (2*2+3-2) = 5 each. *)
  check_contains code "int16 In_rbuf[1][1][5][5];";
  (* Strided origin arithmetic appears in the In copies. *)
  check_contains code "2*(";
  (* The MAC statement uses the strided index expression. *)
  check_contains code "In_rbuf[0][0][2*(hr) + rr][2*(wr) + sr]"

let test_unit_factors_omitted () =
  let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 () in
  let mapping =
    Mapping.canonical
      ~reg:([ ("i", 8); ("j", 8); ("k", 8) ], [ "i"; "j"; "k" ])
      ~pe:([], [ "i"; "j"; "k" ])
      ~spatial:[]
      ~dram:([], [ "i"; "j"; "k" ])
  in
  let code = Result.get_ok (Emit.pseudocode nest mapping) in
  (* Only the three register loops remain. *)
  Alcotest.(check int) "loops" 3 (Emit.loop_count code)

let test_invalid_mapping () =
  let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 () in
  let mapping =
    Mapping.canonical
      ~reg:([ ("i", 4) ], [ "i"; "j"; "k" ])
      ~pe:([], [ "i"; "j"; "k" ])
      ~spatial:[]
      ~dram:([], [ "i"; "j"; "k" ])
  in
  match Emit.pseudocode nest mapping with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected validation failure"

(* The emitted copies must agree with the model: count the copy
   statements' total words by hand for the paper example. *)
let test_copy_sizes_match_model () =
  let nest = Workload.Matmul.nest ~ni:64 ~nj:64 ~nk:64 () in
  let mapping =
    Mapping.canonical
      ~reg:([ ("i", 2); ("j", 2); ("k", 4) ], [ "i"; "j"; "k" ])
      ~pe:([ ("i", 4); ("j", 4); ("k", 2) ], [ "i"; "j"; "k" ])
      ~spatial:[ ("i", 2); ("j", 4) ]
      ~dram:([ ("i", 4); ("j", 2); ("k", 8) ], [ "i"; "k"; "j" ])
  in
  let code = Result.get_ok (Emit.pseudocode nest mapping) in
  (* A's SRAM copy slice is 16 x 8 = S_i x S_k. *)
  check_contains code "A_sbuf[0:16][0:8]";
  (* A's register copy slice is one register tile, R_i x R_k = 2 x 4,
     re-filled along the innermost present loop (Fig. 1(d) form); the
     model aggregates the sliding-window union analytically. *)
  check_contains code "A_rbuf[0:2][0:4]"

let () =
  Alcotest.run "codegen"
    [
      ( "matmul (Fig. 1d)",
        [
          Alcotest.test_case "buffers" `Quick test_buffers;
          Alcotest.test_case "loop structure" `Quick test_loop_structure;
          Alcotest.test_case "copy hoisting" `Quick test_copy_hoisting;
          Alcotest.test_case "MAC statement" `Quick test_mac_statement;
          Alcotest.test_case "copy sizes" `Quick test_copy_sizes_match_model;
        ] );
      ( "conv",
        [
          Alcotest.test_case "halo and strides" `Quick test_conv_halo_and_strides;
          Alcotest.test_case "unit factors omitted" `Quick test_unit_factors_omitted;
          Alcotest.test_case "invalid mapping" `Quick test_invalid_mapping;
        ] );
    ]
