(** Unit-tagged monomials and posynomials — the dimensional-analysis pass.

    The formulation layer builds its symbolic expressions through these
    combinators instead of raw {!Symexpr} operations.  Each expression
    carries a {!Units.t}; products and powers propagate units, while sums,
    constraints and objectives {e check} them and record a diagnostic in
    the ambient {!ctx} on mismatch (e.g. adding an energy to a buffer
    footprint, or bounding a cycle count by a word capacity).

    Construction never fails: on mismatch the expression keeps the
    left-hand unit and the diagnostic is reported through
    {!diagnostics}, so a single malformed constraint yields a complete
    report rather than an exception mid-build.

    The underlying [Symexpr] values are exactly what the untagged
    operations would build — tagging is erased by {!posy} / {!raw_mono},
    so a formulation refactored onto this layer produces bit-identical
    problems. *)

type ctx
(** Collector for unit-mismatch diagnostics of one formulation. *)

val ctx : ?provenance:string -> unit -> ctx

val diagnostics : ctx -> Diagnostic.t list
(** Diagnostics recorded so far, in emission order. *)

(** {2 Monomials} *)

type mono

val mono : Units.t -> Symexpr.Monomial.t -> mono
(** Tag an existing monomial — an axiom of the analysis; use for leaves
    whose unit is known by construction (trip-count products, technology
    constants). *)

val mconst : Units.t -> float -> mono

val mvar : Units.t -> string -> mono

val mmul : mono -> mono -> mono

val mpow : mono -> float -> mono

val mscale : Units.t -> float -> mono -> mono
(** [mscale u c m] multiplies by the constant [c] carrying unit [u]. *)

val mbind : string -> float -> mono -> mono
(** Partial evaluation of a dimensionless variable; the unit is kept. *)

val raw_mono : mono -> Symexpr.Monomial.t

val mono_unit : mono -> Units.t

(** {2 Posynomials} *)

type t

val of_posynomial : Units.t -> Symexpr.Posynomial.t -> t
(** Tag an existing posynomial (axiom, like {!mono}). *)

val of_mono : mono -> t

val add : ctx -> what:string -> t -> t -> t
(** Records a diagnostic when the units differ; [what] names the quantity
    under construction for the message. *)

val sum : ctx -> what:string -> Units.t -> t list -> t
(** Sum with an explicit expected unit — every summand is checked against
    it, and the unit of an empty sum is well-defined. *)

val mul_mono : mono -> t -> t

val scale : Units.t -> float -> t -> t
(** Like {!mscale}, for posynomials. *)

val bind : string -> float -> t -> t

val posy : t -> Symexpr.Posynomial.t

val unit_of : t -> Units.t

(** {2 Unit-checked constraint and objective lowering} *)

val le : ctx -> name:string -> t -> mono -> Symexpr.Posynomial.t
(** [le ctx ~name p m] checks that [p] and [m] share a unit, then
    normalizes the DGP constraint [p <= m] into [p / m <= 1]. *)

val eq : ctx -> name:string -> mono -> mono -> Symexpr.Monomial.t
(** [eq ctx ~name m1 m2] checks units, then normalizes [m1 = m2] into
    [m1 / m2 = 1]. *)

val objective : ctx -> expected:Units.t -> t -> Symexpr.Posynomial.t
(** Checks the objective carries the unit the chosen criterion implies
    (pJ for energy, cycles for delay, pJ*cyc for EDP). *)
