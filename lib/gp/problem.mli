(** Geometric programs in standard form:

    minimize a posynomial [f0(t)], subject to posynomial inequalities
    [f_i(t) <= 1] and monomial equalities [g_j(t) = 1], over implicit
    positive variables [t].

    Constraints carry names so that solver diagnostics and feasibility
    reports can point at the violated constraint. *)

type t

val make :
  objective:Symexpr.Posynomial.t ->
  ?ineqs:(string * Symexpr.Posynomial.t) list ->
  ?eqs:(string * Symexpr.Monomial.t) list ->
  unit ->
  t
(** Raises [Invalid_argument] if the objective or any inequality is the
    zero posynomial, if an equality monomial has a non-finite or
    non-positive coefficient, if any constraint name is empty, or if a
    name is used by more than one constraint (inequalities and equalities
    share one namespace) — diagnostics and violation reports key on
    unique names. *)

val objective : t -> Symexpr.Posynomial.t

val ineqs : t -> (string * Symexpr.Posynomial.t) list

val eqs : t -> (string * Symexpr.Monomial.t) list

val le : Symexpr.Posynomial.t -> Symexpr.Monomial.t -> Symexpr.Posynomial.t
(** [le p m] normalizes the DGP constraint [p <= m] into [p / m <= 1]. *)

val le_const : Symexpr.Posynomial.t -> float -> Symexpr.Posynomial.t
(** [le_const p c] normalizes [p <= c] (with [c > 0]). *)

val eq : Symexpr.Monomial.t -> Symexpr.Monomial.t -> Symexpr.Monomial.t
(** [eq m1 m2] normalizes [m1 = m2] into [m1 / m2 = 1]. *)

val variables : t -> string list
(** All variables mentioned, sorted. *)

val bind : (string * float) list -> t -> t
(** Partial evaluation: fold each listed variable into the coefficients
    of the objective and every constraint at the given value (presolve's
    variable fixing).  The result is a program over the remaining
    variables whose feasible set and objective values are exactly the
    original's restricted to the bound assignment.  Raises
    [Invalid_argument] (via the monomial constructors) on a non-finite
    or non-positive value, or when a folded coefficient leaves the
    finite positive range. *)

val filter_ineqs : (string -> bool) -> t -> t
(** Keep only the inequalities whose name satisfies the predicate
    (presolve's redundant-constraint elimination); the objective and
    equalities are untouched.  Dropping constraints relaxes the program
    — the caller owns the proof that the dropped ones were implied. *)

val violations : ?tol:float -> t -> (string -> float) -> (string * float) list
(** Constraints violated at the given point, with their violation
    magnitude: [f_i(t) - 1] for inequalities, [|log g_j(t)|] for
    equalities.  A constraint whose evaluation is non-finite (or, for an
    equality, non-positive, whose log would be NaN) is reported with
    magnitude [infinity] — never as feasible.  Empty when the point is
    feasible within [tol] (default 1e-6, relative). *)

val is_feasible : ?tol:float -> t -> (string -> float) -> bool

val pp : Format.formatter -> t -> unit
