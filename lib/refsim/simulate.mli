(** Brute-force reference interpreter for tiled executions.

    This module re-derives data-movement volumes by {e walking the loop
    nest} that the mapping describes: for every tensor and every temporal
    tiling level, the copy into the storage below is placed at its hoist
    point (above every loop of the level absent from the tensor
    reference), the enclosing loops are literally iterated, and each copy's
    word count is obtained from interval arithmetic on the tensor's affine
    projections at the current loop indices.

    It shares no code with {!Accmodel.Counts} beyond the workload types,
    so agreement between the two is a meaningful correctness check.  Costs
    grow with the product of outer trip counts — use small nests. *)

type fill_report = {
  tensor : string;
  level : int;
  copies : int;  (** number of copy executions observed *)
  words : float;  (** total words transferred into the lower storage *)
}

val fills : Workload.Nest.t -> Mapspace.Mapping.t -> (fill_report list, string) result
(** One report per (tensor, temporal level >= 1) pair. *)

val projection_span : extents:(string -> int) -> Workload.Nest.projection -> int
(** Footprint extent of one projection computed by enumerating every
    iterator combination inside the tile: [max index - min index + 1]. *)

val projection_distinct : extents:(string -> int) -> Workload.Nest.projection -> int
(** Number of {e distinct} addresses touched (always [<= projection_span];
    strictly fewer when strides leave gaps). *)
