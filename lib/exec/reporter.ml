let mutexed (reporter : Logs.reporter) =
  let lock = Mutex.create () in
  let report :
      type a b.
      Logs.src -> Logs.level -> over:(unit -> unit) -> (unit -> b) -> (a, b) Logs.msgf -> b =
   fun src level ~over k msgf ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () -> reporter.Logs.report src level ~over k msgf)
  in
  { Logs.report }
