(** Dense matrices of floats with the factorizations needed by the
    geometric-programming solver: pivoted LU for general square systems and
    Cholesky for symmetric positive-definite ones.

    Matrices are stored row-major.  Dimensions are small (tens of rows), so
    no blocking or vectorization is attempted. *)

type t

exception Singular
(** Raised by [lu_solve] / [cholesky] when the matrix is (numerically)
    singular or not positive definite. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_rows : float array array -> t
(** Builds a matrix from rows (copied).  Raises [Invalid_argument] if the
    rows are ragged. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] adds [v] to entry [(i, j)] in place. *)

val copy : t -> t

val fill : t -> float -> unit
(** [fill m v] sets every entry to [v] in place. *)

val transpose : t -> t

val add : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t

val mul_trans_vec : t -> Vec.t -> Vec.t
(** [mul_trans_vec m x] is [transpose m * x] without materializing the
    transpose. *)

val lu_solve : t -> Vec.t -> Vec.t
(** [lu_solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [a] is left unmodified.  Raises [Singular] when no pivot
    exceeds the singularity threshold. *)

type lu
(** An LU factorization with its pivot sequence, produced by {!lu_factor}
    and reusable across any number of {!lu_solve_factored} right-hand
    sides. *)

val lu_factor : t -> lu
(** [lu_factor a] runs the elimination of {!lu_solve} once and keeps the
    factors.  [a] is left unmodified.  Raises [Singular] exactly when
    [lu_solve a _] would.  For any [b],
    [lu_solve_factored (lu_factor a) b] is bit-for-bit equal to
    [lu_solve a b] — the factored path performs the identical float
    operations in the identical order. *)

val lu_solve_factored : lu -> Vec.t -> Vec.t
(** [lu_solve_factored lu b] solves [a x = b] from the stored factors
    without refactoring.  Raises [Invalid_argument] on dimension
    mismatch. *)

val nullspace_basis : int -> Vec.t array -> Vec.t array
(** [nullspace_basis n rows] is an orthonormal basis of the nullspace of
    the matrix whose rows are [rows] (each of dimension [n]), computed by
    two-pass modified Gram-Schmidt over the rows followed by coordinate
    completion.  Dependent rows are dropped by a norm threshold, so rank
    deficiency is handled.  A pure, deterministic function of its
    arguments — callers may compute it once per row structure and reuse
    the result. *)

val cholesky : t -> t
(** [cholesky a] is the lower-triangular [l] with [l * transpose l = a] for
    symmetric positive-definite [a].  Raises [Singular] otherwise. *)

val cholesky_in_place : t -> unit
(** [cholesky_in_place a] overwrites the lower triangle of [a] with its
    Cholesky factor, reading only the lower triangle; the strict upper
    triangle is left untouched, so a workspace buffer can be refilled and
    refactored without clearing.  Raises [Singular] when [a] is not
    positive definite (the buffer is then partially overwritten). *)

val cholesky_solve : t -> Vec.t -> Vec.t
(** [cholesky_solve l b] solves [l * transpose l * x = b] given the factor
    [l] produced by [cholesky].  Only the lower triangle of [l] is read. *)

val cholesky_solve_in_place : t -> Vec.t -> unit
(** [cholesky_solve_in_place l b] overwrites [b] with the solution of
    [l * transpose l * x = b] — the allocation-free core of
    {!cholesky_solve}. *)

val solve_spd : t -> Vec.t -> Vec.t
(** [solve_spd a b] factors and solves in one step. *)

val pp : Format.formatter -> t -> unit
