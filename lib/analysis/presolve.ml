module M = Symexpr.Monomial
module P = Symexpr.Posynomial

type mode = Prune | Check | Off

let modes = [ ("prune", Prune); ("check", Check); ("off", Off) ]

let mode_name = function Prune -> "prune" | Check -> "check" | Off -> "off"

type side = Lo | Hi

type step = { var : string; side : side; bound : float; via : string }

type culprit_kind = Ineq_low | Eq_low | Eq_high

type proof = {
  steps : step list;
  culprit : string;
  kind : culprit_kind;
  bound : float;
}

type reduction = {
  reduced : Gp.Problem.t;
  fixed : (string * float) list;
  dropped : (string * float) list;
}

type verdict = Infeasible of proof | Feasible of reduction

type t = { box : (string * Interval.t) list; verdict : verdict }

let prune_margin = 1e-6

let drop_margin = 1e-6

(* A new endpoint must beat the old one by this relative amount to be
   recorded — both a proof-size and a termination guard (propagation
   also has a hard round cap). *)
let improve_margin = 1e-9

let max_rounds = 8

exception Found_infeasible of step list (* trail, latest first *) * string * culprit_kind * float

module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Propagation core                                                   *)
(* ------------------------------------------------------------------ *)

(* One propagation state: a mutable box plus (optionally) the trail of
   recorded steps, latest first.  The same core runs twice — once with
   recording for the main pass, once silently when re-verifying
   redundancy candidates against the kept constraints only. *)
type state = {
  box : (string, Interval.t) Hashtbl.t;
  mutable trail : step list;
  record : bool;
  mutable dirty : bool;
}

let env st x =
  match Hashtbl.find_opt st.box x with Some i -> i | None -> Interval.full

let fresh_state ~record problem =
  let box = Hashtbl.create 32 in
  List.iter (fun x -> Hashtbl.replace box x Interval.full) (Gp.Problem.variables problem);
  { box; trail = []; record; dirty = false }

(* Tighten one endpoint.  [empty_bound] certifies the infeasibility that
   a crossing (new lower bound above the current upper bound, or vice
   versa) implies: it re-evaluates the implying constraint over the
   *current* box and returns its culprit kind and bound when the margin
   holds.  When the crossing is real but not provable beyond the margin,
   the update is skipped — the box stays a sound superset. *)
let try_hi st ~empty_bound x v via =
  if Float.is_finite v && v > 0.0 then begin
    let cur = env st x in
    if v < cur.Interval.hi *. (1.0 -. improve_margin) then begin
      if v < cur.Interval.lo then begin
        match empty_bound () with
        | Some (kind, bound) -> raise (Found_infeasible (st.trail, via, kind, bound))
        | None -> ()
      end
      else begin
        Hashtbl.replace st.box x { cur with Interval.hi = v };
        if st.record then st.trail <- { var = x; side = Hi; bound = v; via } :: st.trail;
        st.dirty <- true
      end
    end
  end

let try_lo st ~empty_bound x v via =
  if Float.is_finite v && v > 0.0 then begin
    let cur = env st x in
    if v > cur.Interval.lo *. (1.0 +. improve_margin) && v > cur.Interval.lo then begin
      if v > cur.Interval.hi then begin
        match empty_bound () with
        | Some (kind, bound) -> raise (Found_infeasible (st.trail, via, kind, bound))
        | None -> ()
      end
      else begin
        Hashtbl.replace st.box x { cur with Interval.lo = v };
        if st.record then st.trail <- { var = x; side = Lo; bound = v; via } :: st.trail;
        st.dirty <- true
      end
    end
  end

(* Lower bound of the inequality over the current box when it certifies
   infeasibility (finite and beyond the margin), for both the
   constraint-level check and the crossing certificate. *)
let ineq_infeasibility st p =
  let lb = (Interval.posynomial (env st) p).Interval.lo in
  if Float.is_finite lb && lb > 1.0 +. prune_margin then Some (Ineq_low, lb) else None

let eq_low_infeasibility st m =
  let lb = (Interval.monomial (env st) m).Interval.lo in
  if Float.is_finite lb && lb > 1.0 +. prune_margin then Some (Eq_low, lb) else None

let eq_high_infeasibility st m =
  let ub = (Interval.monomial (env st) m).Interval.hi in
  (* [ub < 1.] is finite by construction. *)
  if ub < 1.0 -. prune_margin then Some (Eq_high, ub) else None

let propagate_ineq st (name, p) =
  (match ineq_infeasibility st p with
  | Some (kind, bound) -> raise (Found_infeasible (st.trail, name, kind, bound))
  | None -> ());
  let terms = P.terms p in
  let lbs = List.map (fun m -> (Interval.monomial (env st) m).Interval.lo) terms in
  let total = List.fold_left ( +. ) 0.0 lbs in
  List.iteri
    (fun k m ->
      let slack = 1.0 -. (total -. List.nth lbs k) in
      if slack > 0.0 then
        List.iter
          (fun (x, e) ->
            let rest = (Interval.monomial_without (env st) ~var:x m).Interval.lo in
            if rest > 0.0 && Float.is_finite rest then begin
              (* x ** e <= slack / rest over every feasible point. *)
              let b = (slack /. rest) ** (1.0 /. e) in
              if e > 0.0 then
                try_hi st ~empty_bound:(fun () -> ineq_infeasibility st p) x b name
              else try_lo st ~empty_bound:(fun () -> ineq_infeasibility st p) x b name
            end)
          (M.exponents m))
    terms

let propagate_eq st (name, m) =
  (match eq_low_infeasibility st m with
  | Some (kind, bound) -> raise (Found_infeasible (st.trail, name, kind, bound))
  | None -> ());
  (match eq_high_infeasibility st m with
  | Some (kind, bound) -> raise (Found_infeasible (st.trail, name, kind, bound))
  | None -> ());
  List.iter
    (fun (x, e) ->
      let rest = Interval.monomial_without (env st) ~var:x m in
      (* x ** e = 1 / rest, so x ** e lies in the inverse interval. *)
      let p_lo = if rest.Interval.hi = infinity then 0.0 else 1.0 /. rest.Interval.hi in
      let p_hi = if rest.Interval.lo = 0.0 then infinity else 1.0 /. rest.Interval.lo in
      let ie = 1.0 /. e in
      let x_lo, x_hi =
        if e > 0.0 then (p_lo ** ie, p_hi ** ie) else (p_hi ** ie, p_lo ** ie)
      in
      (* A crossing from an equality bound means the equality itself is
         statically violated on the opposite side. *)
      try_lo st ~empty_bound:(fun () -> eq_high_infeasibility st m) x x_lo name;
      try_hi st ~empty_bound:(fun () -> eq_low_infeasibility st m) x x_hi name)
    (M.exponents m)

let propagate st ~ineqs ~eqs =
  let rounds = ref 0 in
  st.dirty <- true;
  while st.dirty && !rounds < max_rounds do
    st.dirty <- false;
    incr rounds;
    List.iter (propagate_ineq st) ineqs;
    List.iter (propagate_eq st) eqs
  done

(* ------------------------------------------------------------------ *)
(* Proof slicing                                                      *)
(* ------------------------------------------------------------------ *)

let constraint_vars problem name =
  match List.assoc_opt name (Gp.Problem.ineqs problem) with
  | Some p -> P.variables p
  | None -> (
    match List.assoc_opt name (Gp.Problem.eqs problem) with
    | Some m -> M.variables m
    | None -> [])

(* Backward slice: walking the trail latest-first, keep a step iff its
   variable supports the culprit (or an already-kept step's implying
   constraint).  Every earlier step a kept step's bound rests on is
   reached later in the walk, so the slice is support-closed; reversing
   restores application order. *)
let slice problem trail culprit =
  let needed = ref (SS.of_list (constraint_vars problem culprit)) in
  let kept =
    List.filter
      (fun s ->
        if SS.mem s.var !needed then begin
          needed := SS.union !needed (SS.of_list (constraint_vars problem s.via));
          true
        end
        else false)
      trail
  in
  List.rev kept

(* ------------------------------------------------------------------ *)
(* Monotonicity fixing                                                *)
(* ------------------------------------------------------------------ *)

(* A simple bound is a single-monomial inequality over a single
   variable (the formulation's [bound:<var>] constraints): it shapes
   the box but never opposes moving the variable to a box endpoint, so
   it is excluded from the monotonicity scan. *)
let is_simple_bound (_, p) =
  match P.terms p with
  | [ m ] -> ( match M.variables m with [ _ ] -> true | _ -> false)
  | _ -> false

let fixable problem st =
  let eq_vars =
    List.fold_left
      (fun acc (_, m) -> SS.union acc (SS.of_list (M.variables m)))
      SS.empty (Gp.Problem.eqs problem)
  in
  let scanned =
    P.terms (Gp.Problem.objective problem)
    @ List.concat_map
        (fun c -> if is_simple_bound c then [] else P.terms (snd c))
        (Gp.Problem.ineqs problem)
  in
  let sign x =
    List.fold_left
      (fun acc m ->
        let e = M.exponent m x in
        match acc with
        | `Mixed -> `Mixed
        | `Nonneg when e >= 0.0 -> `Nonneg
        | `Nonpos when e <= 0.0 -> `Nonpos
        | _ -> `Mixed)
      `Nonneg scanned
    |> fun first ->
    (* [`Nonneg] is the fold seed; re-run for the nonpositive case only
       when the first pass failed, so a variable absent everywhere
       stays `Nonneg (pinned to its lower endpoint). *)
    if first = `Mixed then
      List.fold_left
        (fun acc m ->
          let e = M.exponent m x in
          match acc with `Nonpos when e <= 0.0 -> `Nonpos | _ -> `Mixed)
        `Nonpos scanned
    else first
  in
  List.filter_map
    (fun x ->
      if SS.mem x eq_vars then None
      else
        let i = env st x in
        match sign x with
        | `Nonneg when Float.is_finite i.Interval.lo && i.Interval.lo > 0.0 ->
          Some (x, i.Interval.lo)
        | `Nonpos when Float.is_finite i.Interval.hi && i.Interval.hi > 0.0 ->
          Some (x, i.Interval.hi)
        | _ -> None)
    (Gp.Problem.variables problem)

(* ------------------------------------------------------------------ *)
(* Redundancy elimination                                             *)
(* ------------------------------------------------------------------ *)

let redundant problem st =
  let ineqs = Gp.Problem.ineqs problem in
  let ub (_, p) = (Interval.posynomial (env st) p).Interval.hi in
  let candidates =
    List.filter (fun c -> ub c <= 1.0 -. drop_margin) ineqs
  in
  if candidates = [] then []
  else begin
    (* A candidate's slackness may rest on bounds it propagated itself.
       Re-propagate from scratch with the kept constraints only; a
       candidate still slack over that (weaker) box is implied by the
       rest of the problem and safe to drop. *)
    let cand_names = SS.of_list (List.map fst candidates) in
    let kept = List.filter (fun (n, _) -> not (SS.mem n cand_names)) ineqs in
    let st' = fresh_state ~record:false problem in
    match propagate st' ~ineqs:kept ~eqs:(Gp.Problem.eqs problem) with
    | () ->
      let ub' (_, p) = (Interval.posynomial (env st') p).Interval.hi in
      List.filter_map
        (fun c -> if ub' c <= 1.0 -. drop_margin then Some (fst c, ub' c) else None)
        candidates
    | exception Found_infeasible _ ->
      (* The kept-only relaxation cannot be infeasible when the full
         problem was not; reachable only through margin corner cases —
         drop nothing, stay conservative. *)
      []
  end

(* ------------------------------------------------------------------ *)
(* Reduction construction                                             *)
(* ------------------------------------------------------------------ *)

(* Binding the fixed variables collapses any inequality mentioning only
   fixed variables to a constant: such a constraint no longer restricts
   the remaining variables — drop it, recording its constant value as
   the certified bound.  A constant meaningfully above 1 would
   contradict the infeasibility check that already passed; it can only
   arise inside the float-rounding slack of an active bound, in which
   case fixing is abandoned wholesale rather than risking an unsound
   drop. *)
exception Abort_fixing

let reduction problem st =
  let fixed = fixable problem st in
  let dropped0 = redundant problem st in
  if fixed = [] && dropped0 = [] then
    { reduced = problem; fixed = []; dropped = [] }
  else begin
    let drop_names = SS.of_list (List.map fst dropped0) in
    let build fixed =
      let fixed_set = SS.of_list (List.map fst fixed) in
      let fixed_env x = List.assoc x fixed in
      let collapsed =
        List.filter_map
          (fun (name, p) ->
            if
              (not (SS.mem name drop_names))
              && List.for_all (fun x -> SS.mem x fixed_set) (P.variables p)
            then begin
              let v = P.eval fixed_env p in
              if v <= 1.0 +. 1e-9 then Some (name, v) else raise Abort_fixing
            end
            else None)
          (Gp.Problem.ineqs problem)
      in
      let collapsed_names = SS.of_list (List.map fst collapsed) in
      let keep name = not (SS.mem name drop_names || SS.mem name collapsed_names) in
      let reduced = Gp.Problem.bind fixed (Gp.Problem.filter_ineqs keep problem) in
      (* Keep [dropped] in original constraint order: binding-collapsed
         constants interleave with interval-certified drops. *)
      let all = dropped0 @ collapsed in
      let dropped =
        List.filter_map
          (fun (name, _) -> Option.map (fun v -> (name, v)) (List.assoc_opt name all))
          (Gp.Problem.ineqs problem)
      in
      { reduced; fixed; dropped }
    in
    try build fixed
    with Abort_fixing -> (
      try build []
      with Abort_fixing -> { reduced = problem; fixed = []; dropped = [] })
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let box_list problem st =
  List.map (fun x -> (x, env st x)) (Gp.Problem.variables problem)

let analyze problem =
  let st = fresh_state ~record:true problem in
  match propagate st ~ineqs:(Gp.Problem.ineqs problem) ~eqs:(Gp.Problem.eqs problem) with
  | () -> { box = box_list problem st; verdict = Feasible (reduction problem st) }
  | exception Found_infeasible (trail, culprit, kind, bound) ->
    let steps = slice problem trail culprit in
    { box = box_list problem st; verdict = Infeasible { steps; culprit; kind; bound } }

let pp_side ppf = function
  | Lo -> Format.pp_print_string ppf ">="
  | Hi -> Format.pp_print_string ppf "<="

let pp_proof ppf proof =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s %a %.6g  (via %s)@," s.var pp_side s.side s.bound s.via)
    proof.steps;
  (match proof.kind with
  | Ineq_low ->
    Format.fprintf ppf "constraint %s: interval lower bound %.6g > 1" proof.culprit
      proof.bound
  | Eq_low ->
    Format.fprintf ppf "equality %s: interval lower bound %.6g > 1" proof.culprit
      proof.bound
  | Eq_high ->
    Format.fprintf ppf "equality %s: interval upper bound %.6g < 1" proof.culprit
      proof.bound);
  Format.fprintf ppf "@]"

let pp ppf t =
  match t.verdict with
  | Infeasible proof -> Format.fprintf ppf "@[<v>infeasible:@,%a@]" pp_proof proof
  | Feasible r ->
    Format.fprintf ppf "feasible: %d fixed, %d dropped" (List.length r.fixed)
      (List.length r.dropped)
