module Vec = Linalg.Vec
module Mat = Linalg.Mat

type t = {
  dim : int;
  eval : Vec.t -> float * Vec.t * Mat.t;
  value : Vec.t -> float;
}

let linear n a b =
  if Vec.dim a <> n then invalid_arg "Smooth.linear: dimension mismatch";
  (* The (zero) Hessian must be fresh on every [eval]: callers accumulate
     into returned Hessians, and a shared matrix would leak one call's
     accumulation into the next. *)
  {
    dim = n;
    eval = (fun y -> (Vec.dot a y +. b, Vec.copy a, Mat.create n n));
    value = (fun y -> Vec.dot a y +. b);
  }

let log_sum_exp n terms =
  if terms = [] then invalid_arg "Smooth.log_sum_exp: empty term list";
  List.iter
    (fun (a, _) ->
      if Vec.dim a <> n then invalid_arg "Smooth.log_sum_exp: dimension mismatch")
    terms;
  let exponents y =
    List.map (fun (a, b) -> Vec.dot a y +. b) terms
  in
  let value y =
    let es = exponents y in
    let m = List.fold_left Float.max neg_infinity es in
    m +. log (List.fold_left (fun acc e -> acc +. exp (e -. m)) 0.0 es)
  in
  let eval y =
    let es = exponents y in
    let m = List.fold_left Float.max neg_infinity es in
    let weights = List.map (fun e -> exp (e -. m)) es in
    let z = List.fold_left ( +. ) 0.0 weights in
    let v = m +. log z in
    (* Softmax probabilities p_k; grad = sum p_k a_k;
       hess = sum p_k a_k a_k^T - grad grad^T. *)
    let probs = List.map (fun w -> w /. z) weights in
    let grad = Vec.create n in
    List.iter2
      (fun p (a, _) ->
        for i = 0 to n - 1 do
          grad.(i) <- grad.(i) +. (p *. a.(i))
        done)
      probs terms;
    let hess = Mat.create n n in
    List.iter2
      (fun p (a, _) ->
        for i = 0 to n - 1 do
          let pai = p *. a.(i) in
          if pai <> 0.0 then
            for j = 0 to n - 1 do
              Mat.add_to hess i j (pai *. a.(j))
            done
        done)
      probs terms;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        Mat.add_to hess i j (-.(grad.(i) *. grad.(j)))
      done
    done;
    (v, grad, hess)
  in
  { dim = n; eval; value }

let extend f extra =
  let n = f.dim + extra in
  let restrict y = Vec.slice y 0 f.dim in
  let value y = f.value (restrict y) in
  let eval y =
    let v, g, h = f.eval (restrict y) in
    let g' = Vec.create n in
    Array.blit g 0 g' 0 f.dim;
    let h' = Mat.create n n in
    for i = 0 to f.dim - 1 do
      for j = 0 to f.dim - 1 do
        Mat.set h' i j (Mat.get h i j)
      done
    done;
    (v, g', h')
  in
  { dim = n; eval; value }
