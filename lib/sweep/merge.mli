(** Combining per-shard journals into one sweep journal.

    Merge invariants (DESIGN §12):
    - entries are keyed by global pair index; the merged journal is
      sorted by it, so merging is independent of shard completion order
      and of the timing-dependent line order within each shard file;
    - two entries for the same pair must carry the same fingerprint —
      same program, same solver configuration.  The first occurrence
      wins (entries with equal fingerprints describe the same
      deterministic solve); conflicting fingerprints mean the shards
      were run against different formulations or solver configs, and
      the merge refuses rather than silently mixing cache versions;
    - merging never fabricates coverage: {!missing} reports the pair
      indices a journal set does not cover, and the merge runner
      re-solves exactly those (plus any stale-fingerprint pairs). *)

val combine : Journal.entry list list -> (Journal.entry list, string) result
(** Concatenate shard journals, sort by pair index, drop duplicate
    entries whose fingerprints agree, and fail on conflicting
    fingerprints for one pair. *)

val load_files : string list -> (Journal.entry list, string) result
(** {!Journal.load} each file and {!combine} the results. *)

val missing : Journal.entry list -> npairs:int -> int list
(** Pair indices in [0 .. npairs - 1] with no entry, ascending. *)
