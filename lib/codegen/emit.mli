(** Tiled-pseudocode generation — the multi-level tiled loop nests with
    explicit buffer copies that the paper uses to define dataflows
    (Fig. 1(d) and Fig. 3(e)).

    Given a canonical 4-level mapping, the emitter produces C-like
    pseudocode with:

    - buffer declarations sized from the exact tile footprints (SRAM
      buffers per tensor, register buffers per tensor per PE);
    - the DRAM-level temporal loops, with SRAM copy-in statements hoisted
      above every loop absent from each tensor's reference (and copy-out
      for read-write tensors);
    - [forall] loops for the spatial (PE array) level;
    - the per-PE temporal loops with register copy-ins at their hoist
      points;
    - the register-tile loops around the MAC statement, whose subscripts
      are the original affine index expressions.

    Trip-count-1 loops are omitted, as in generated code; hoist points
    therefore match {!Accmodel.Counts} exactly. *)

val pseudocode :
  Workload.Nest.t -> Mapspace.Mapping.t -> (string, string) result
(** Fails when the mapping is invalid for the nest or does not have the
    canonical 4-level structure. *)

val loop_count : string -> int
(** Number of [for]/[forall] lines in an emitted program (test helper). *)
