(* Sequential-vs-parallel wall time of the optimizer sweep.

   Runs the full Optimize sweep (GP per permutation choice x window
   placement, then integerization) on one layer for each requested jobs
   setting, reports wall time and speedup over jobs = 1, and checks that
   every run returns a bit-identical report — the determinism guarantee
   of the shared domain pool (Exec.Par preserves order; ranking totally
   orders candidates by objective).

   With --shards N the harness additionally times the sharded path
   (DESIGN §12): N journaled --shard I/N runs, a merge of the journals,
   and a resume from the merged journal — checking the resumed report is
   identical to the unsharded one — and with --out FILE records the
   numbers as a flat BENCH_*.json for tools/perfdiff.sh.

   Usage:
     dune exec bench/sweep.exe                       # resnet-2, jobs 1,2,4
     dune exec bench/sweep.exe -- --layer resnet-8 --jobs 1,4,8
     dune exec bench/sweep.exe -- --codesign --repeat 3
     dune exec bench/sweep.exe -- --shards 4 --out BENCH_sweep.json *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Conv = Workload.Conv
module Evaluate = Accmodel.Evaluate

(* This executable is itself compilation unit [Sweep], which shadows the
   sweep library's alias module; its members are reached through dune's
   mangled per-module names instead. *)
module Partition = Sweep__Partition
module Journal = Sweep__Journal
module Merge = Sweep__Merge

let tech = Archspec.Technology.table3

type options = {
  layer : string;
  jobs : int list;
  codesign : bool;
  repeat : int;
  max_choices : int;
  shards : int option;
  out : string option;
}

let parse_args () =
  let layer = ref "resnet-2" in
  let jobs = ref [ 1; 2; 4 ] in
  let codesign = ref false in
  let repeat = ref 1 in
  let max_choices = ref Thistle.Optimize.default_config.O.max_choices in
  let shards = ref None in
  let out = ref None in
  let int_arg flag s =
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "%s: invalid value %S, expected a positive integer\n" flag s;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--layer" :: name :: rest ->
      layer := name;
      go rest
    | "--jobs" :: spec :: rest ->
      jobs := List.map (int_arg "--jobs") (String.split_on_char ',' spec);
      go rest
    | "--codesign" :: rest ->
      codesign := true;
      go rest
    | "--repeat" :: n :: rest ->
      repeat := int_arg "--repeat" n;
      go rest
    | "--max-choices" :: n :: rest ->
      max_choices := int_arg "--max-choices" n;
      go rest
    | "--shards" :: n :: rest ->
      shards := Some (int_arg "--shards" n);
      go rest
    | "--out" :: path :: rest ->
      out := Some path;
      go rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s (expected --layer NAME, --jobs N,N,..., --codesign, \
         --repeat N, --max-choices N, --shards N, --out FILE)\n"
        arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    layer = !layer;
    jobs = !jobs;
    codesign = !codesign;
    repeat = !repeat;
    max_choices = !max_choices;
    shards = !shards;
    out = !out;
  }

(* Flat BENCH_*.json pairs for tools/perfdiff.sh: *wall_s keys are
   lower-is-better, [speedup] higher-is-better, the rest informational. *)
let json : (string * string) list ref = ref []
let record key value = json := (key, value) :: !json
let record_float key v = record key (Printf.sprintf "%.6g" v)

let write_json path =
  let oc = open_out path in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc "  %S: %s" k v)
    (List.rev !json);
  output_string oc "\n}\n";
  close_out oc

let () =
  let options = parse_args () in
  let nest =
    match Workload.Zoo.find options.layer with
    | layer -> Conv.to_nest layer
    | exception Not_found ->
      Printf.eprintf "unknown layer %S; see `thistle layers'\n" options.layer;
      exit 2
  in
  let run_once config =
    if options.codesign then
      O.codesign ~config tech ~area_budget:(Arch.eyeriss_area tech) F.Energy nest
    else O.dataflow ~config tech Arch.eyeriss F.Energy nest
  in
  let base_config jobs =
    { O.default_config with O.jobs; max_choices = options.max_choices }
  in
  let run jobs =
    let config = base_config jobs in
    let t0 = Unix.gettimeofday () in
    let result =
      let rec loop k last =
        if k = 0 then last
        else
          let r = run_once config in
          loop (k - 1) (Some r)
      in
      loop options.repeat None
    in
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int options.repeat in
    (dt, result)
  in
  Printf.printf "optimizer sweep: layer %s, %s, %d recognized CPU(s)%s\n" options.layer
    (if options.codesign then "codesign" else "dataflow (Eyeriss)")
    (Domain.recommended_domain_count ())
    (if options.repeat > 1 then Printf.sprintf ", best-effort mean of %d runs" options.repeat
     else "");
  record "layer" (Printf.sprintf "%S" options.layer);
  record "max_choices" (string_of_int options.max_choices);
  Printf.printf "%6s %12s %9s %10s\n" "jobs" "wall s" "speedup" "identical";
  let baseline = ref None in
  let reference = ref None in
  let best_speedup = ref 1.0 in
  List.iter
    (fun jobs ->
      let dt, result = run jobs in
      let speedup =
        match !baseline with
        | None ->
          baseline := Some dt;
          1.0
        | Some t1 -> t1 /. dt
      in
      if speedup > !best_speedup then best_speedup := speedup;
      let identical =
        match (!reference, result) with
        | None, r ->
          reference := Some r;
          "-"
        | Some r0, r -> if r0 = r then "yes" else "NO"
      in
      record_float (Printf.sprintf "jobs%d_wall_s" jobs) dt;
      Printf.printf "%6d %12.3f %9.2fx %10s\n%!" jobs dt speedup identical)
    options.jobs;
  record_float "speedup" !best_speedup;
  (match !reference with
  | Some (Some (Ok r)) ->
    let m = r.O.outcome.I.metrics in
    Printf.printf "\nreport: %d choices solved, %.2f pJ/MAC, IPC %.1f\n"
      r.O.choices_solved m.Evaluate.energy_per_mac m.Evaluate.ipc
  | Some (Some (Error msg)) -> Printf.printf "\noptimization failed: %s\n" msg
  | Some None | None -> ());
  (* Sharded path: N journaled shard runs, merge, resume — the resumed
     report must match the unsharded one structurally (the CLI smoke
     checks byte-identity of the rendered output; here the reports are
     compared directly). *)
  (match options.shards with
  | None -> ()
  | Some count ->
    let jobs = List.fold_left max 1 options.jobs in
    let config = base_config jobs in
    let dir = Filename.temp_file "thistle_bench_sweep" ".d" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ())
    @@ fun () ->
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (Unix.gettimeofday () -. t0, r)
    in
    let t_full, full = time (fun () -> run_once config) in
    record_float "unsharded_wall_s" t_full;
    Printf.printf "\nsharded path (%d shards, jobs %d):\n" count jobs;
    Printf.printf "  unsharded          %8.3f s\n" t_full;
    let shard_files, t_shard_max =
      List.fold_left
        (fun (files, worst) i ->
          let path = Filename.concat dir (Printf.sprintf "s%d.jsonl" i) in
          let shard = { Partition.index = i; count } in
          let dt, _ =
            time (fun () ->
                run_once { config with O.shard; journal = Some path })
          in
          record_float (Printf.sprintf "shard%d_wall_s" i) dt;
          Printf.printf "  shard %d/%d          %8.3f s\n" i count dt;
          (path :: files, Float.max worst dt))
        ([], 0.0)
        (List.init count (fun i -> i + 1))
    in
    record_float "shards_max_wall_s" t_shard_max;
    let merged = Filename.concat dir "merged.jsonl" in
    let t_merge, resumed =
      time (fun () ->
          (match Merge.load_files (List.rev shard_files) with
          | Ok entries -> Journal.write_file merged entries
          | Error msg ->
            Printf.eprintf "merge failed: %s\n" msg;
            exit 1);
          run_once { config with O.journal = Some merged; resume = true })
    in
    record_float "merge_resume_wall_s" t_merge;
    let identical = full = resumed in
    record "merged_identical" (if identical then "1" else "0");
    Printf.printf "  merge + resume     %8.3f s\n" t_merge;
    Printf.printf "  shards max %.3f s vs unsharded %.3f s; merged report %s\n"
      t_shard_max t_full
      (if identical then "identical" else "DIFFERS");
    if not identical then exit 1);
  match options.out with
  | None -> ()
  | Some path ->
    write_json path;
    Printf.printf "\nwrote %s\n" path
