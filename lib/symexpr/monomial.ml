type t = {
  coeff : float;
  exps : (string * float) list; (* sorted by variable name, no zero exponents *)
}

let check_coeff who c =
  (* [infinity > 0.0] holds and [nan <> 0.0] holds, so both checks must be
     explicit about finiteness or poisoned expressions build silently. *)
  if not (Float.is_finite c && c > 0.0) then
    invalid_arg
      (Printf.sprintf "Monomial.%s: coefficient must be finite positive (got %g)" who c)

let check_exp who (x, a) =
  if not (Float.is_finite a) then
    invalid_arg
      (Printf.sprintf "Monomial.%s: exponent of %s must be finite (got %g)" who x a)

let normalize who exps =
  List.iter (check_exp who) exps;
  let sorted = List.sort (fun (x, _) (y, _) -> String.compare x y) exps in
  (* Merge duplicate variables by adding exponents, then drop zeros. *)
  let rec merge = function
    | (x, a) :: (y, b) :: rest when String.equal x y -> merge ((x, a +. b) :: rest)
    | pair :: rest -> pair :: merge rest
    | [] -> []
  in
  List.filter (fun (_, a) -> a <> 0.0) (merge sorted)

let one = { coeff = 1.0; exps = [] }

let const c =
  check_coeff "const" c;
  { coeff = c; exps = [] }

let var x = { coeff = 1.0; exps = [ (x, 1.0) ] }

let var_pow x a = { coeff = 1.0; exps = normalize "var_pow" [ (x, a) ] }

let make c exps =
  check_coeff "make" c;
  { coeff = c; exps = normalize "make" exps }

let coeff m = m.coeff

let exponents m = m.exps

let exponent m x = try List.assoc x m.exps with Not_found -> 0.0

let mentions m x = List.mem_assoc x m.exps

let variables m = List.map fst m.exps

let mul a b = { coeff = a.coeff *. b.coeff; exps = normalize "mul" (a.exps @ b.exps) }

let div a b =
  let inv = List.map (fun (x, e) -> (x, -.e)) b.exps in
  { coeff = a.coeff /. b.coeff; exps = normalize "div" (a.exps @ inv) }

let pow m a =
  if not (Float.is_finite a) then
    invalid_arg (Printf.sprintf "Monomial.pow: power must be finite (got %g)" a);
  let coeff = Float.pow m.coeff a in
  check_coeff "pow" coeff;
  { coeff; exps = normalize "pow" (List.map (fun (x, e) -> (x, e *. a)) m.exps) }

let scale c m =
  check_coeff "scale" c;
  { m with coeff = c *. m.coeff }

let subst x m' m =
  match List.assoc_opt x m.exps with
  | None -> m
  | Some a ->
    let without = List.filter (fun (y, _) -> not (String.equal x y)) m.exps in
    mul { m with exps = without } (pow m' a)

let bind x v m =
  if not (Float.is_finite v && v > 0.0) then
    invalid_arg "Monomial.bind: value must be finite positive";
  subst x (const v) m

let eval env m =
  List.fold_left (fun acc (x, a) -> acc *. Float.pow (env x) a) m.coeff m.exps

let is_constant m = m.exps = []

let compare_exponents a b =
  compare a.exps b.exps

let compare a b =
  match compare_exponents a b with 0 -> Float.compare a.coeff b.coeff | c -> c

let equal a b = compare a b = 0

let pp ppf m =
  if m.exps = [] then Format.fprintf ppf "%g" m.coeff
  else begin
    let started = ref false in
    if m.coeff <> 1.0 then begin
      Format.fprintf ppf "%g" m.coeff;
      started := true
    end;
    let print_factor (x, a) =
      if !started then Format.fprintf ppf "*";
      started := true;
      if a = 1.0 then Format.fprintf ppf "%s" x else Format.fprintf ppf "%s^%g" x a
    in
    List.iter print_factor m.exps
  end

let to_string m = Format.asprintf "%a" pp m
