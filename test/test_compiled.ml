(* Bit-for-bit equivalence of the compiled evaluation kernels
   (Gp.Compiled) against the reference list path (Gp.Smooth).  The
   compiled kernel's contract is exact: same values, gradients and
   Hessians down to the last bit, for any finite inputs — this is what
   lets the solver switch kernels without perturbing results beyond the
   KKT factorization itself. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let bits = Int64.bits_of_float

let same_float a b = Int64.equal (bits a) (bits b)

let check_bits name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %h (%Lx), got %h (%Lx)" name expected (bits expected)
       actual (bits actual))
    true (same_float expected actual)

(* Evaluate both paths and compare value / full gradient / full Hessian
   bitwise.  The compiled kernel only writes support entries, so the
   buffers start zeroed — off-support entries of the dense path are
   always [+0.0] (sums from a [+0.0] start can never produce [-0.0]). *)
let agree_on name (smooth : Gp.Smooth.t) compiled y =
  let n = smooth.Gp.Smooth.dim in
  check_bits (name ^ " value") (smooth.Gp.Smooth.value y) (Gp.Compiled.value compiled y);
  let v_ref, g_ref, h_ref = smooth.Gp.Smooth.eval y in
  let grad = Vec.create n in
  let hess = Mat.create n n in
  let v = Gp.Compiled.eval_into compiled y ~grad ~hess in
  check_bits (name ^ " eval value") v_ref v;
  for i = 0 to n - 1 do
    check_bits (Printf.sprintf "%s grad.(%d)" name i) g_ref.(i) grad.(i)
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_bits
        (Printf.sprintf "%s hess.(%d,%d)" name i j)
        (Mat.get h_ref i j) (Mat.get hess i j)
    done
  done

(* --- unit cases --- *)

let test_single_term () =
  let n = 3 in
  let terms = [ (Vec.of_list [ 1.0; -2.0; 0.0 ], log 3.0) ] in
  agree_on "single" (Gp.Smooth.log_sum_exp n terms) (Gp.Compiled.of_terms n terms)
    (Vec.of_list [ 0.3; -1.2; 7.0 ])

let test_constant_term () =
  (* A term with an all-zero row (a constant monomial). *)
  let n = 2 in
  let terms =
    [ (Vec.of_list [ 0.0; 0.0 ], log 2.0); (Vec.of_list [ 1.0; 1.0 ], 0.0) ]
  in
  agree_on "const-term" (Gp.Smooth.log_sum_exp n terms) (Gp.Compiled.of_terms n terms)
    (Vec.of_list [ -0.4; 0.9 ])

let test_affine_matches_linear () =
  let n = 4 in
  let a = Vec.of_list [ 0.5; 0.0; -1.25; 0.0 ] in
  let smooth = Gp.Smooth.linear n a 0.75 in
  let compiled = Gp.Compiled.affine n [ (0, 0.5); (2, -1.25) ] 0.75 in
  agree_on "affine" smooth compiled (Vec.of_list [ 1.0; 2.0; 3.0; 4.0 ])

let test_stale_buffers () =
  (* eval_into must overwrite (not accumulate into) its support block
     even when the buffers carry stale garbage from another function. *)
  let n = 3 in
  let terms = [ (Vec.of_list [ 2.0; 0.0; 1.0 ], 0.1) ] in
  let smooth = Gp.Smooth.log_sum_exp n terms in
  let compiled = Gp.Compiled.of_terms n terms in
  let y = Vec.of_list [ 0.2; 0.4; -0.6 ] in
  let _, g_ref, h_ref = smooth.Gp.Smooth.eval y in
  let grad = Vec.of_list [ 5.0; 5.0; 5.0 ] in
  let hess = Mat.init n n (fun _ _ -> 7.0) in
  ignore (Gp.Compiled.eval_into compiled y ~grad ~hess);
  check_bits "g0" g_ref.(0) grad.(0);
  check_bits "g2" g_ref.(2) grad.(2);
  check_bits "g1 untouched" 5.0 grad.(1);
  check_bits "h00" (Mat.get h_ref 0 0) (Mat.get hess 0 0);
  check_bits "h02" (Mat.get h_ref 0 2) (Mat.get hess 0 2);
  check_bits "h11 untouched" 7.0 (Mat.get hess 1 1);
  check_bits "h01 untouched" 7.0 (Mat.get hess 0 1)

let test_add_linear_slack () =
  (* The phase-I construction G(y, s) = f(y) - s: extend by one
     coordinate, then attach a -1 linear term to it. *)
  let n = 2 in
  let terms =
    [ (Vec.of_list [ 1.0; 0.5 ], 0.2); (Vec.of_list [ -1.0; 2.0 ], -0.3) ]
  in
  let base = Gp.Smooth.log_sum_exp n terms in
  let ext = Gp.Smooth.extend base 1 in
  let smooth =
    {
      Gp.Smooth.dim = n + 1;
      value = (fun y -> ext.Gp.Smooth.value y -. y.(n));
      eval =
        (fun y ->
          let v, g, h = ext.Gp.Smooth.eval y in
          g.(n) <- g.(n) -. 1.0;
          (v -. y.(n), g, h));
    }
  in
  let compiled =
    Gp.Compiled.add_linear (Gp.Compiled.extend (Gp.Compiled.of_terms n terms) 1) n (-1.0)
  in
  agree_on "slack" smooth compiled (Vec.of_list [ 0.7; -0.1; 1.3 ]);
  agree_on "slack at s=0" smooth compiled (Vec.of_list [ 0.7; -0.1; 0.0 ])

let test_rejects_bad_input () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Gp.Compiled.of_terms: empty term list") (fun () ->
      ignore (Gp.Compiled.of_terms 2 []));
  Alcotest.check_raises "descending"
    (Invalid_argument "Gp.Compiled.of_sparse_terms: indices not strictly ascending")
    (fun () -> ignore (Gp.Compiled.of_sparse_terms 3 [ ([ (1, 1.0); (0, 2.0) ], 0.0) ]))

(* --- the property --- *)

let gen_posynomial =
  let open QCheck2.Gen in
  let* n = int_range 2 7 in
  let* nterms = int_range 1 6 in
  let entry =
    (* Mostly structural zeros, like real formulations (each monomial
       mentions a few of the problem variables). *)
    let* zero = frequency [ (6, return true); (4, return false) ] in
    if zero then return 0.0 else float_range (-3.0) 3.0
  in
  let* rows = list_size (return nterms) (array_size (return n) entry) in
  let* bs = list_size (return nterms) (float_range (-4.0) 4.0) in
  let* y = array_size (return n) (float_range (-3.0) 3.0) in
  return (n, List.combine rows bs, y)

let prop_bit_identical =
  QCheck2.Test.make ~name:"compiled kernel is bit-identical to Smooth.log_sum_exp"
    ~count:500 gen_posynomial (fun (n, terms, y) ->
      let smooth = Gp.Smooth.log_sum_exp n terms in
      let compiled = Gp.Compiled.of_terms n terms in
      let ok = ref true in
      let check a b = if not (same_float a b) then ok := false in
      check (smooth.Gp.Smooth.value y) (Gp.Compiled.value compiled y);
      let v_ref, g_ref, h_ref = smooth.Gp.Smooth.eval y in
      let grad = Vec.create n in
      let hess = Mat.create n n in
      let v = Gp.Compiled.eval_into compiled y ~grad ~hess in
      check v_ref v;
      for i = 0 to n - 1 do
        check g_ref.(i) grad.(i);
        for j = 0 to n - 1 do
          check (Mat.get h_ref i j) (Mat.get hess i j)
        done
      done;
      !ok)

let prop_slack_bit_identical =
  QCheck2.Test.make ~name:"compiled slack extension is bit-identical" ~count:200
    gen_posynomial (fun (n, terms, y) ->
      let base = Gp.Smooth.log_sum_exp n terms in
      let ext = Gp.Smooth.extend base 1 in
      let compiled =
        Gp.Compiled.add_linear
          (Gp.Compiled.extend (Gp.Compiled.of_terms n terms) 1)
          n (-1.0)
      in
      let y1 = Vec.concat y [| 0.5 |] in
      let v_ref, g_ref, h_ref = ext.Gp.Smooth.eval y1 in
      g_ref.(n) <- g_ref.(n) -. 1.0;
      let v_ref = v_ref -. y1.(n) in
      let grad = Vec.create (n + 1) in
      let hess = Mat.create (n + 1) (n + 1) in
      let v = Gp.Compiled.eval_into compiled y1 ~grad ~hess in
      let ok = ref true in
      let check a b = if not (same_float a b) then ok := false in
      check v_ref v;
      for i = 0 to n do
        check g_ref.(i) grad.(i);
        for j = 0 to n do
          check (Mat.get h_ref i j) (Mat.get hess i j)
        done
      done;
      !ok)

(* --- batched kernel (Gp.Batch / Gp.Solver.solve_batched) --- *)

module M = Symexpr.Monomial
module P = Symexpr.Posynomial

(* Random batches of same-structure problems: one random structure
   (exponent rows for the objective, inequalities and equalities, plus
   per-variable box constraints that keep the programs bounded), then
   several members that differ only in their coefficients. *)
let gen_batch =
  let open QCheck2.Gen in
  let* n = int_range 2 4 in
  let vars = Array.init n (fun i -> Printf.sprintf "x%d" i) in
  let exp_choice = oneofl [ -2.0; -1.0; -0.5; 0.5; 1.0; 2.0 ] in
  let gen_term =
    let* nv = int_range 1 (min 3 n) in
    let* start = int_range 0 (n - 1) in
    let* exps = list_size (return nv) exp_choice in
    return (List.mapi (fun k e -> (vars.((start + k) mod n), e)) exps)
  in
  let* obj_nt = int_range 1 4 in
  let* obj_s = list_size (return obj_nt) gen_term in
  let* nineq = int_range 0 2 in
  let* ineq_s =
    list_size (return nineq)
      (int_range 1 3 >>= fun nt -> list_size (return nt) gen_term)
  in
  let* neq = int_range 0 1 in
  let* eq_s = list_size (return neq) gen_term in
  (* Occasionally a constant equality: consistent (c = 1) or not
     (c = 1.5) — the batched path checks these per member. *)
  let* const_eq =
    frequency [ (4, return None); (1, return (Some 1.0)); (1, return (Some 1.5)) ]
  in
  let* nmembers = int_range 2 4 in
  let coeff = float_range 0.2 5.0 in
  let eq_coeff = float_range 0.5 2.0 in
  let member =
    let* obj_c = list_size (return obj_nt) coeff in
    let* ineq_c =
      flatten_l
        (List.map (fun ts -> list_size (return (List.length ts)) coeff) ineq_s)
    in
    let* eq_c = list_size (return (List.length eq_s)) eq_coeff in
    return (obj_c, ineq_c, eq_c)
  in
  let* members = list_size (return nmembers) member in
  let* y = array_size (return n) (float_range (-1.5) 1.5) in
  return (vars, obj_s, ineq_s, eq_s, const_eq, members, y)

let build_problem vars obj_s ineq_s eq_s const_eq (obj_c, ineq_c, eq_c) =
  let poly structure cs =
    P.of_monomials (List.map2 (fun t c -> M.make c t) structure cs)
  in
  let n = Array.length vars in
  let box =
    List.concat
      (List.init n (fun i ->
           [
             (Printf.sprintf "ub%d" i, P.of_monomial (M.make 0.1 [ (vars.(i), 1.0) ]));
             (Printf.sprintf "lb%d" i, P.of_monomial (M.make 0.1 [ (vars.(i), -1.0) ]));
           ]))
  in
  let ineqs =
    List.mapi
      (fun j (ts, cs) -> (Printf.sprintf "g%d" j, poly ts cs))
      (List.combine ineq_s ineq_c)
  in
  let eqs =
    List.mapi (fun j m -> (Printf.sprintf "e%d" j, m)) (List.map2 M.make eq_c eq_s)
  in
  let eqs =
    match const_eq with None -> eqs | Some c -> ("ec", M.const c) :: eqs
  in
  Gp.Problem.make ~objective:(poly obj_s obj_c) ~ineqs:(ineqs @ box) ~eqs ()

let pack_batch (vars, obj_s, ineq_s, eq_s, const_eq, members, _y) =
  let problems =
    Array.of_list (List.map (build_problem vars obj_s ineq_s eq_s const_eq) members)
  in
  let plan = Gp.Batch.compile problems.(0) in
  (Gp.Batch.pack plan problems, problems)

let prop_batched_eval_bit_identical =
  QCheck2.Test.make
    ~name:"batched eval is bit-identical to per-problem compiled eval" ~count:200
    gen_batch (fun input ->
      let _, _, _, _, _, _, y = input in
      let block, problems = pack_batch input in
      let ok = ref true in
      let check a b = if not (same_float a b) then ok := false in
      Array.iteri
        (fun m problem ->
          let pvars = Gp.Problem.variables problem in
          let n = List.length pvars in
          let index = Hashtbl.create 16 in
          List.iteri (fun i x -> Hashtbl.replace index x i) pvars;
          let slots =
            Gp.Problem.objective problem
            :: List.map snd (Gp.Problem.ineqs problem)
          in
          List.iteri
            (fun slot poly ->
              let compiled = Gp.Compiled.of_posynomial n index poly in
              check (Gp.Compiled.value compiled y)
                (Gp.Batch.member_value block ~member:m ~slot y);
              let g_ref = Vec.create n in
              let h_ref = Mat.create n n in
              let v_ref = Gp.Compiled.eval_into compiled y ~grad:g_ref ~hess:h_ref in
              let grad = Vec.create n in
              let hess = Mat.create n n in
              let v = Gp.Batch.member_eval_into block ~member:m ~slot ~grad ~hess y in
              check v_ref v;
              for i = 0 to n - 1 do
                check g_ref.(i) grad.(i);
                for j = 0 to n - 1 do
                  check (Mat.get h_ref i j) (Mat.get hess i j)
                done
              done)
            slots)
        problems;
      !ok)

let same_solution (a : Gp.Solver.solution) (b : Gp.Solver.solution) =
  a.Gp.Solver.status = b.Gp.Solver.status
  && same_float a.Gp.Solver.objective b.Gp.Solver.objective
  && List.length a.Gp.Solver.values = List.length b.Gp.Solver.values
  && List.for_all2
       (fun (xa, va) (xb, vb) -> String.equal xa xb && same_float va vb)
       a.Gp.Solver.values b.Gp.Solver.values

let same_stats (a : Gp.Solver.stats) (b : Gp.Solver.stats) =
  a.Gp.Solver.phase1_outer = b.Gp.Solver.phase1_outer
  && a.Gp.Solver.phase2_outer = b.Gp.Solver.phase2_outer
  && a.Gp.Solver.newton_iters = b.Gp.Solver.newton_iters
  && a.Gp.Solver.backtracks = b.Gp.Solver.backtracks
  && a.Gp.Solver.kkt_regularizations = b.Gp.Solver.kkt_regularizations
  && a.Gp.Solver.cholesky_fallbacks = b.Gp.Solver.cholesky_fallbacks
  && a.Gp.Solver.deadline_hits = b.Gp.Solver.deadline_hits
  && same_float a.Gp.Solver.duality_gap b.Gp.Solver.duality_gap

let prop_batched_solve_bit_identical =
  QCheck2.Test.make
    ~name:"solve_batched is bit-identical to solve ~kernel:`Compiled" ~count:60
    gen_batch (fun input ->
      let block, problems = pack_batch input in
      let st_c = Gp.Solver.fresh_stats () in
      let st_b = Gp.Solver.fresh_stats () in
      let ok = ref true in
      Array.iteri
        (fun m problem ->
          let sc = Gp.Solver.solve ~kernel:`Compiled ~stats:st_c problem in
          let sb = Gp.Solver.solve_batched ~stats:st_b block m in
          if not (same_solution sc sb && same_stats st_c st_b) then ok := false;
          (* Warm-started members must agree too (the plan is reused). *)
          if m > 0 && sc.Gp.Solver.status = Gp.Solver.Optimal then begin
            let warm = sc.Gp.Solver.values in
            let wc = Gp.Solver.solve ~kernel:`Compiled ~stats:st_c ~warm_start:warm problem in
            let wb = Gp.Solver.solve_batched ~stats:st_b ~warm_start:warm block m in
            if not (same_solution wc wb && same_stats st_c st_b) then ok := false
          end)
        problems;
      !ok)

let test_structure_key () =
  let p c =
    Gp.Problem.make
      ~objective:(P.of_monomial (M.make c [ ("x", 1.0) ]))
      ~ineqs:[ ("g", P.of_monomial (M.make 0.5 [ ("x", -1.0) ])) ]
      ()
  in
  let k1 = Gp.Batch.structure_key (p 2.0) in
  let k2 = Gp.Batch.structure_key (p 3.0) in
  Alcotest.(check string) "coefficient-blind" k1 k2;
  let q =
    Gp.Problem.make
      ~objective:(P.of_monomial (M.make 2.0 [ ("x", 2.0) ]))
      ~ineqs:[ ("g", P.of_monomial (M.make 0.5 [ ("x", -1.0) ])) ]
      ()
  in
  Alcotest.(check bool)
    "exponents matter" false
    (String.equal k1 (Gp.Batch.structure_key q));
  (* pack rejects a member of a different structure *)
  let plan = Gp.Batch.compile (p 2.0) in
  Alcotest.check_raises "pack mismatch"
    (Invalid_argument "Gp.Batch.pack: problem does not share the plan's structure")
    (fun () -> ignore (Gp.Batch.pack plan [| p 2.0; q |]))

let () =
  Alcotest.run "compiled"
    [
      ( "units",
        [
          Alcotest.test_case "single term" `Quick test_single_term;
          Alcotest.test_case "constant term" `Quick test_constant_term;
          Alcotest.test_case "affine" `Quick test_affine_matches_linear;
          Alcotest.test_case "stale buffers" `Quick test_stale_buffers;
          Alcotest.test_case "slack extension" `Quick test_add_linear_slack;
          Alcotest.test_case "bad input" `Quick test_rejects_bad_input;
          Alcotest.test_case "structure key" `Quick test_structure_key;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bit_identical;
            prop_slack_bit_identical;
            prop_batched_eval_bit_identical;
            prop_batched_solve_bit_identical;
          ] );
    ]
