(** Matrix multiplication [C(i,j) += A(i,k) * B(k,j)] as a loop nest — the
    paper's running example (Fig. 1). *)

val nest : ?name:string -> ni:int -> nj:int -> nk:int -> unit -> Nest.t
