#!/bin/sh
# sweep_smoke.sh THISTLE_CLI
#
# End-to-end smoke of the sharded/resumable sweep CLI (DESIGN §12),
# capped small enough for `dune runtest`:
#   1. an unsharded run is the reference report;
#   2. --shard 1/2 and --shard 2/2 runs journal their halves, and
#      `thistle merge` over the two journals must reproduce the
#      reference byte-for-byte;
#   3. resuming from the merged journal (no shard) must also reproduce
#      it byte-for-byte without re-solving.
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 path/to/thistle_cli.exe" >&2
    exit 2
fi

cli=$1
case $cli in */*) ;; *) cli=./$cli ;; esac
layer=resnet-2
opts="--layer $layer --max-choices 4 --jobs 2"

dir=$(mktemp -d "${TMPDIR:-/tmp}/thistle_sweep.XXXXXX")
trap 'rm -rf "$dir"' EXIT

"$cli" optimize $opts > "$dir/full.txt"

"$cli" optimize $opts --shard 1/2 --journal "$dir/s1.jsonl" > /dev/null
"$cli" optimize $opts --shard 2/2 --journal "$dir/s2.jsonl" > /dev/null

"$cli" merge $opts --journal "$dir/merged.jsonl" \
    "$dir/s1.jsonl" "$dir/s2.jsonl" > "$dir/merged.txt"
if ! cmp -s "$dir/full.txt" "$dir/merged.txt"; then
    echo "sweep smoke: merged shard report differs from unsharded run" >&2
    diff "$dir/full.txt" "$dir/merged.txt" >&2 || true
    exit 1
fi

"$cli" optimize $opts --journal "$dir/merged.jsonl" --resume > "$dir/resumed.txt"
if ! cmp -s "$dir/full.txt" "$dir/resumed.txt"; then
    echo "sweep smoke: resumed report differs from unsharded run" >&2
    diff "$dir/full.txt" "$dir/resumed.txt" >&2 || true
    exit 1
fi

# 4. `thistle merge` must refuse journals whose fingerprints conflict:
#    the same shard journaled under a different solver config (the
#    legacy list kernel) carries the same pair indices with different
#    fingerprints, and merging it with the compiled-kernel journal
#    would mix incompatible solves.
"$cli" optimize $opts --shard 1/2 --gp-kernel list \
    --journal "$dir/s1-list.jsonl" > /dev/null
if "$cli" merge $opts --journal "$dir/conflict.jsonl" \
    "$dir/s1.jsonl" "$dir/s1-list.jsonl" > /dev/null 2> "$dir/conflict.err"; then
    echo "sweep smoke: merge accepted conflicting fingerprints" >&2
    exit 1
fi
if ! grep -qi "fingerprint" "$dir/conflict.err"; then
    echo "sweep smoke: merge refusal does not name the fingerprint conflict:" >&2
    cat "$dir/conflict.err" >&2
    exit 1
fi

# 5. `thistle journal compact` on an empty journal succeeds and leaves
#    it empty; compacting an already-compacted journal is a no-op.
: > "$dir/empty.jsonl"
"$cli" journal compact "$dir/empty.jsonl" > /dev/null
if [ -s "$dir/empty.jsonl" ]; then
    echo "sweep smoke: compacting an empty journal produced bytes" >&2
    exit 1
fi
"$cli" journal compact "$dir/merged.jsonl" > /dev/null
cp "$dir/merged.jsonl" "$dir/merged.once.jsonl"
"$cli" journal compact "$dir/merged.jsonl" > /dev/null
if ! cmp -s "$dir/merged.once.jsonl" "$dir/merged.jsonl"; then
    echo "sweep smoke: journal compact is not idempotent" >&2
    exit 1
fi

echo "sweep smoke: shard+merge, resume, merge-refusal and compact OK on $layer"
