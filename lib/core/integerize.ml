module Nest = Workload.Nest
module Arch = Archspec.Arch
module Level = Mapspace.Level
module Mapping = Mapspace.Mapping
module Divisors = Mapspace.Divisors

type outcome = {
  arch : Arch.t;
  mapping : Mapping.t;
  metrics : Accmodel.Evaluate.t;
  choice : Permutations.choice;
  continuous_objective : float;
  candidates_tried : int;
  candidates_valid : int;
}

(* Per-call values are functions of the instance alone, so summing them
   across (possibly parallel) calls is jobs-independent — see the
   Obs.Metrics determinism contract. *)
let m_tried = Obs.Metrics.counter "integerize.candidates_tried"
let m_valid = Obs.Metrics.counter "integerize.candidates_valid"
let m_filtered = Obs.Metrics.counter "integerize.candidates_filtered"

let score objective (metrics : Accmodel.Evaluate.t) =
  match objective with
  | Formulate.Energy -> metrics.Accmodel.Evaluate.energy_pj
  | Formulate.Delay -> metrics.Accmodel.Evaluate.cycles
  | Formulate.Edp ->
    metrics.Accmodel.Evaluate.energy_pj *. metrics.Accmodel.Evaluate.cycles

(* Cumulative tile extents (register, PE, SRAM) for one dim: the paper's
   top-down divisor ladder. *)
let dim_triples ~n_divisors instance solution dim =
  let extent = Nest.extent instance.Formulate.nest dim in
  let r_real = Formulate.cumulative instance solution dim ~level:0 in
  let q_real = Formulate.cumulative instance solution dim ~level:1 in
  let s_real = Formulate.cumulative instance solution dim ~level:2 in
  let triples =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun q ->
            List.map
              (fun r -> (r, q, s))
              (Divisors.closest q ~target:r_real ~count:n_divisors))
          (Divisors.closest s ~target:q_real ~count:n_divisors))
      (Divisors.closest extent ~target:s_real ~count:n_divisors)
  in
  (* Order closest-first (log-space distance to the real solution) so
     that trimming the ladder keeps the most promising candidates. *)
  let distance (r, q, s) =
    Float.abs (log (float_of_int r) -. log (Float.max 1.0 r_real))
    +. Float.abs (log (float_of_int q) -. log (Float.max 1.0 q_real))
    +. Float.abs (log (float_of_int s) -. log (Float.max 1.0 s_real))
  in
  List.sort_uniq compare triples
  |> List.stable_sort (fun a b -> Float.compare (distance a) (distance b))

let full_perm nest perm =
  let missing =
    List.filter (fun d -> not (List.mem d perm)) (Nest.dim_names nest)
  in
  perm @ missing

(* Build a canonical 4-level mapping from per-dim cumulative extents. *)
let mapping_of_combo instance (combo : (string * (int * int * int)) list) =
  let nest = instance.Formulate.nest in
  let pinned_factor ~level dim =
    match
      List.assoc_opt (Level.trip_var ~level ~dim) instance.Formulate.pinned
    with
    (* Round to nearest: solver-pinned values arrive as floats and may
       sit a few ulps below the integer (3.9999999), which truncation
       would silently turn into 3 and shift the whole divisor ladder.
       Values genuinely far from an integer are rejected up front by
       [check_pinned] in [run]. *)
    | Some v -> int_of_float (Float.round v)
    | None -> 1
  in
  let factors_at ~level select =
    List.map
      (fun d ->
        match List.assoc_opt d combo with
        | Some (r, q, s) -> (d, select (r, q, s) (Nest.extent nest d))
        | None -> (d, pinned_factor ~level d))
      (Nest.dim_names nest)
  in
  let reg = factors_at ~level:Level.register_level (fun (r, _, _) _ -> r) in
  let pe = factors_at ~level:Level.pe_temporal_level (fun (r, q, _) _ -> q / r) in
  let spatial = factors_at ~level:Level.spatial_level (fun (_, q, s) _ -> s / q) in
  let dram = factors_at ~level:Level.dram_temporal_level (fun (_, _, s) n -> n / s) in
  let reg_perm = full_perm nest [] in
  let pe_perm = full_perm nest instance.Formulate.choice.Permutations.pe_perm in
  let dram_perm = full_perm nest instance.Formulate.choice.Permutations.dram_perm in
  Mapping.canonical ~reg:(reg, reg_perm) ~pe:(pe, pe_perm) ~spatial
    ~dram:(dram, dram_perm)

let arch_candidates ~n_pow2 tech instance solution ~spatial_size =
  match instance.Formulate.arch_mode with
  | Formulate.Fixed arch -> [ arch ]
  | Formulate.Codesign { area_budget } ->
    let env = Formulate.solution_env instance solution in
    let regs_candidates =
      Divisors.closest_powers_of_two ~target:(env Formulate.var_arch_regs) ~count:n_pow2
    in
    let sram_candidates =
      Divisors.closest_powers_of_two ~target:(env Formulate.var_arch_sram) ~count:n_pow2
    in
    let pes = Int.max 1 spatial_size in
    List.concat_map
      (fun registers ->
        List.filter_map
          (fun sram_words ->
            if
              Archspec.Technology.chip_area tech ~pes ~registers ~sram_words
              <= area_budget
            then
              Some
                (Arch.make
                   ~name:(Printf.sprintf "%s-codesign" (Nest.name instance.Formulate.nest))
                   ~pes ~registers ~sram_words)
            else None)
          sram_candidates)
      regs_candidates

(* Pinned trip counts are placement decisions and must be integers; a
   value farther than [tol] from one means the placement data is corrupt,
   and flooring it (the old behavior) would silently shift the whole
   divisor ladder. *)
let check_pinned ?(tol = 1e-6) instance =
  List.find_map
    (fun (x, v) ->
      let r = Float.round v in
      if Float.is_finite v && Float.abs (v -. r) <= tol && r >= 1.0 then None
      else
        Some
          (Printf.sprintf
             "integerize: pinned factor %s = %.17g is not a positive integer \
              (tolerance %g)"
             x v tol))
    instance.Formulate.pinned

(* Largest integer b >= 1 with b^dims <= max_candidates, by integer
   search: the float [pow max_candidates (1/dims)] round-trip undercounts
   on exact roots (e.g. 4096^(1/3) evaluating to 15.999...), quartering a
   3-dim ladder's coverage. *)
let per_dim_budget ~max_candidates ~dims =
  let max_candidates = Int.max 1 max_candidates in
  if dims <= 1 then max_candidates
  else begin
    let fits b =
      b >= 1
      &&
      let rec go acc n =
        n = 0 || (acc <= max_candidates / b && go (acc * b) (n - 1))
      in
      go 1 dims
    in
    (* Double past the answer, then bisect [lo fits, hi doesn't]. *)
    let rec grow b = if b > 0 && fits (2 * b) then grow (2 * b) else b in
    let lo = grow 1 in
    let rec bisect lo hi =
      if hi - lo <= 1 then lo
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if fits mid then bisect mid hi else bisect lo mid
      end
    in
    bisect lo (2 * lo)
  end

let run ?(n_divisors = 2) ?(n_pow2 = 2) ?(max_candidates = 65536)
    ?(min_pe_utilization = 0.0) ?(contention = false) tech instance solution =
  match check_pinned instance with
  | Some msg -> Error msg
  | None ->
  let nest = instance.Formulate.nest in
  let per_dim =
    List.map
      (fun d -> (d, dim_triples ~n_divisors instance solution d))
      instance.Formulate.tileable
  in
  (* Bound the cross product by trimming each dim's ladder (which is
     ordered closest-first) rather than truncating the product itself:
     cutting mid-product would silently drop whole regions of the
     candidate space. *)
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  let per_dim =
    match per_dim with
    | [] -> []
    | _ ->
      let budget_per_dim =
        per_dim_budget ~max_candidates ~dims:(List.length per_dim)
      in
      List.map (fun (d, triples) -> (d, take budget_per_dim triples)) per_dim
  in
  let combos = ref [ [] ] in
  List.iter
    (fun (d, triples) ->
      combos :=
        List.concat_map
          (fun combo -> List.map (fun t -> (d, t) :: combo) triples)
          !combos)
    per_dim;
  let tried = ref 0 in
  let valid = ref 0 in
  let best = ref None in
  Obs.Trace.span "evaluate" (fun () ->
  List.iter
    (fun combo ->
      let mapping = mapping_of_combo instance combo in
      let spatial_size = Mapping.spatial_size mapping in
      List.iter
        (fun arch ->
          incr tried;
          let utilization =
            float_of_int spatial_size /. float_of_int arch.Arch.pe_count
          in
          if utilization < min_pe_utilization then ()
          else
          match
            (* Candidates are scored under the same communication model
               the GP was lowered with (DESIGN §16). *)
            Accmodel.Evaluate.evaluate ~comm:instance.Formulate.comm ~contention
              tech arch nest mapping
          with
          | Error _ -> ()
          | Ok metrics ->
            incr valid;
            let s = score instance.Formulate.objective metrics in
            let better =
              match !best with
              | None -> true
              | Some (s', _, _, _) -> s < s'
            in
            if better then best := Some (s, arch, mapping, metrics))
        (arch_candidates ~n_pow2 tech instance solution ~spatial_size))
    !combos);
  Obs.Metrics.add m_tried !tried;
  Obs.Metrics.add m_valid !valid;
  Obs.Metrics.add m_filtered (!tried - !valid);
  match !best with
  | None -> Error "integerize: no feasible integer candidate"
  | Some (_, arch, mapping, metrics) ->
    Ok
      {
        arch;
        mapping;
        metrics;
        choice = instance.Formulate.choice;
        continuous_objective = solution.Gp.Solver.objective;
        candidates_tried = !tried;
        candidates_valid = !valid;
      }
