(** A fixed pool of OCaml 5 domains fed by a mutex/condition work queue.

    The pool is the single parallel substrate of the repository: every
    parallel loop (the optimizer's GP sweep, the per-layer pipeline, the
    mapper's seeded streams) runs as a batch of tasks on one shared pool,
    so the total number of live domains stays bounded regardless of how
    the loops nest.

    Tasks run {e at most one level deep}: a task executed by the pool
    (whether on a worker domain or on the submitting domain while it helps
    drain the queue) observes {!inside_worker}[ = true], and the [Par]
    layer uses that to fall back to sequential execution instead of
    re-entering the pool.  This keeps nested parallel loops deadlock-free
    and the domain count fixed. *)

type t

val create : workers:int -> t
(** [create ~workers] spawns [workers] worker domains ([0] is legal: every
    batch then runs entirely on the submitting domain).  Raises
    [Invalid_argument] on a negative count.  The worker count is clamped
    to {!max_workers}. *)

val max_workers : int
(** Upper bound on worker domains per pool, kept well under the OCaml
    runtime's hard domain limit. *)

val size : t -> int
(** Current number of worker domains. *)

val ensure_workers : t -> int -> unit
(** [ensure_workers t n] grows the pool to at least [n] workers (clamped
    to {!max_workers}); it never shrinks.  No-op on a shut-down pool. *)

val run : t -> (unit -> unit) list -> unit
(** [run t tasks] enqueues the batch and blocks until every task has
    finished.  The calling domain participates: it executes queued tasks
    itself while waiting, so progress is guaranteed even with zero
    workers or a fully busy pool.  Tasks must not raise — wrap the body
    and store the exception (as {!Par.map} does); a task that does raise
    is swallowed so the batch still completes. *)

val shutdown : t -> unit
(** Drains the queue, stops and joins all workers.  Subsequent [run]
    calls execute entirely on the calling domain. *)

val inside_worker : unit -> bool
(** [true] while the current domain is executing a pool task — used by
    [Par] to run nested parallel loops sequentially. *)
