(* Solver-path benchmark, two tiers:

   1. End-to-end: the compiled evaluation kernel + structured KKT +
      sweep reuse (the current defaults) against the legacy
      list-of-closures path through the whole optimizer, plus the
      presolve scenario on a capacity-starved edge architecture.

   2. Scenario x kernel matrix: the solver alone (list / compiled /
      batched) over the formulated (choice, placement) problem set of
      each scenario, formulation excluded from the timed region so the
      cells measure solver work.  The batched cells time the whole
      batched pipeline — structure grouping, per-structure compilation,
      coefficient packing, member solves — since that is the cost the
      kernel claims to amortize (DESIGN §15).

   Emits BENCH_solver.json (flat one-level object; format documented in
   README.md) so the perf trajectory has a recorded baseline —
   tools/perfdiff.sh diffs two such files and fails on regression.

   Usage:
     dune exec bench/solver.exe                         # zoo subset, repeat 2
     dune exec bench/solver.exe -- --layers resnet-2 --repeat 3
     dune exec bench/solver.exe -- --max-choices 4 --out /tmp/b.json
     dune exec bench/solver.exe -- --smoke              # tiny CI smoke run *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module Permutations = Thistle.Permutations
module Arch = Archspec.Arch
module Conv = Workload.Conv
module Json = Obs.Json

let tech = Archspec.Technology.table3

type options = {
  layers : string list;
  repeat : int;
  max_choices : int;
  out : string;
  smoke : bool;
}

let parse_args () =
  let layers = ref [ "resnet-2"; "resnet-8"; "yolo-2" ] in
  let repeat = ref 2 in
  let max_choices = ref O.default_config.O.max_choices in
  let out = ref "BENCH_solver.json" in
  let smoke = ref false in
  let int_arg flag s =
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "%s: invalid value %S, expected a positive integer\n" flag s;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--layers" :: spec :: rest ->
      layers := String.split_on_char ',' spec;
      go rest
    | "--repeat" :: n :: rest ->
      repeat := int_arg "--repeat" n;
      go rest
    | "--max-choices" :: n :: rest ->
      max_choices := int_arg "--max-choices" n;
      go rest
    | "--out" :: file :: rest ->
      out := file;
      go rest
    | "--smoke" :: rest ->
      (* One small layer, shallow sweep: a seconds-scale sanity run for
         the @bench / @batch aliases, not a measurement. *)
      layers := [ "resnet-2" ];
      repeat := 1;
      max_choices := 4;
      smoke := true;
      go rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s (expected --layers N,N,..., --repeat N, --max-choices N, \
         --out FILE, --smoke)\n"
        arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    layers = !layers;
    repeat = !repeat;
    max_choices = !max_choices;
    out = !out;
    smoke = !smoke;
  }

type measurement = {
  wall_s : float;  (** best over repeats, whole layer set *)
  wall_mean_s : float;  (** mean over repeats *)
  solves : int;  (** logical GP solves (replayed duplicates included) *)
  newton_steps : int;
  objective_sum : float;  (** sum of best continuous objectives, sanity *)
  pruned : int;  (** pairs skipped by presolve (0 with presolve off) *)
}

(* Min AND mean wall over [repeat] runs of [pass]: the min is the
   least-noise estimate perfdiff keys on, the mean exposes variance a
   lucky min would hide. *)
let time_repeats ~repeat pass =
  let rec loop k best sum acc_last =
    if k = 0 then (Option.get best, sum /. float_of_int repeat, Option.get acc_last)
    else begin
      let t0 = Unix.gettimeofday () in
      let acc = pass () in
      let dt = Unix.gettimeofday () -. t0 in
      let best =
        match best with Some b when b <= dt -> best | _ -> Some dt
      in
      loop (k - 1) best (sum +. dt) (Some acc)
    end
  in
  loop repeat None 0.0 None

let measure ?(arch = Arch.eyeriss) ?(tech = tech) ?(objective = F.Energy) options
    config nests =
  let one_pass () =
    List.fold_left
      (fun (solves, newton, obj, pruned) (name, nest) ->
        match O.dataflow ~config tech arch objective nest with
        | Ok r ->
          let t = r.O.solve_totals in
          ( solves + t.Gp.Solver.solves,
            newton + t.Gp.Solver.t_newton_iters,
            obj +. r.O.best_continuous,
            pruned + List.length r.O.pruned )
        | Error msg ->
          Printf.eprintf "warning: %s failed: %s\n" name msg;
          (solves, newton, obj, pruned))
      (0, 0, 0.0, 0) nests
  in
  let wall_s, wall_mean_s, (solves, newton_steps, objective_sum, pruned) =
    time_repeats ~repeat:options.repeat one_pass
  in
  { wall_s; wall_mean_s; solves; newton_steps; objective_sum; pruned }

(* --- scenario x kernel matrix over the bare solver --- *)

type cell = {
  c_wall_s : float;
  c_wall_mean_s : float;
  c_solves : int;
  c_solutions : Gp.Solver.solution list;  (** last repeat, for cross-checks *)
}

(* The (choice, placement) problem set of one scenario — exactly the
   pairs the optimizer's sweep would hand the solver, duplicates
   included. *)
let scenario_problems ~max_choices arch nest =
  let plan = Permutations.enumerate ~max_choices nest in
  List.concat_map
    (fun cv ->
      List.map
        (fun placement ->
          (F.build ~placement tech (F.Fixed arch) F.Energy plan cv).F.problem)
        plan.Permutations.placements)
    plan.Permutations.choices

let scalar_cell ~repeat ~kernel problems =
  let pass () =
    List.map (fun p -> Gp.Solver.solve ~kernel p) problems
  in
  let c_wall_s, c_wall_mean_s, c_solutions = time_repeats ~repeat pass in
  { c_wall_s; c_wall_mean_s; c_solves = List.length problems; c_solutions }

(* Structure grouping, compilation and packing are inside the timed
   region: they are the per-structure costs the batched kernel claims to
   amortize over members. *)
let batched_pass problems () =
  let plans = Hashtbl.create 64 in
  let groups = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun p ->
      let key = Gp.Batch.structure_key p in
      match Hashtbl.find_opt groups key with
      | None ->
        order := key :: !order;
        Hashtbl.replace groups key (ref [ p ])
      | Some members -> members := p :: !members)
    problems;
  let blocks =
    List.map
      (fun key ->
        let members = Array.of_list (List.rev !(Hashtbl.find groups key)) in
        let plan =
          match Hashtbl.find_opt plans key with
          | Some plan -> plan
          | None ->
            let plan = Gp.Batch.compile members.(0) in
            Hashtbl.replace plans key plan;
            plan
        in
        Gp.Batch.pack plan members)
      (List.rev !order)
  in
  let solutions =
    List.concat_map
      (fun (block : Gp.Batch.block) ->
        List.init block.Gp.Batch.bk_nmembers (Gp.Solver.solve_batched block))
      blocks
  in
  (solutions, blocks)

let batched_cell ~repeat problems =
  let c_wall_s, c_wall_mean_s, (solutions, blocks) =
    time_repeats ~repeat (batched_pass problems)
  in
  ( { c_wall_s; c_wall_mean_s; c_solves = List.length problems;
      c_solutions = solutions },
    blocks )

(* The batched kernel is contractually bit-identical to the compiled
   one; a drifting cell means a solver bug, so fail loudly rather than
   record a meaningless speedup. *)
let check_identical ~scenario compiled batched =
  List.iter2
    (fun (a : Gp.Solver.solution) (b : Gp.Solver.solution) ->
      if
        a.Gp.Solver.status <> b.Gp.Solver.status
        || Int64.bits_of_float a.Gp.Solver.objective
           <> Int64.bits_of_float b.Gp.Solver.objective
      then begin
        Printf.eprintf
          "FATAL: %s: batched solution differs from compiled solution\n" scenario;
        exit 1
      end)
    compiled.c_solutions batched.c_solutions

let () =
  let options = parse_args () in
  let nests =
    List.map
      (fun name ->
        match Workload.Zoo.find name with
        | layer -> (name, Conv.to_nest layer)
        | exception Not_found ->
          Printf.eprintf "unknown layer %S; see `thistle layers'\n" name;
          exit 2)
      options.layers
  in
  let base =
    { O.default_config with O.jobs = 1; max_choices = options.max_choices }
  in
  (* The pre-PR solver path: closure-per-function evaluation, dense LU
     KKT, no reuse across the sweep. *)
  let list_config =
    { base with O.gp_kernel = `List; dedupe = false; warm_start = false }
  in
  Printf.printf "solver bench: layers %s, max-choices %d, jobs 1, best of %d run(s)\n"
    (String.concat "," options.layers)
    options.max_choices options.repeat;
  Printf.printf "%-9s %9s %8s %13s %10s\n" "path" "wall s" "solves" "newton steps"
    "solves/s";
  let show label (m : measurement) =
    Printf.printf "%-9s %9.3f %8d %13d %10.1f\n%!" label m.wall_s m.solves
      m.newton_steps
      (float_of_int m.solves /. m.wall_s)
  in
  let listed = measure options list_config nests in
  show "list" listed;
  let compiled = measure options base nests in
  show "compiled" compiled;
  let speedup = listed.wall_s /. compiled.wall_s in
  Printf.printf "speedup: %.2fx\n" speedup;
  (* Presolve scenario: a capacity-starved edge accelerator where many
     (choice, placement) pairs are statically infeasible, so interval
     pruning skips whole solves.  The roomy Eyeriss runs above prune
     nothing — this is the workload the analysis pays off on. *)
  let edge = Arch.make ~name:"edge" ~pes:32 ~registers:16 ~sram_words:4096 in
  let presolve_off =
    measure ~arch:edge options
      { base with O.presolve = Analysis.Presolve.Off }
      nests
  in
  let presolve_on =
    measure ~arch:edge options
      { base with O.presolve = Analysis.Presolve.Prune }
      nests
  in
  let presolve_speedup = presolve_off.wall_s /. presolve_on.wall_s in
  Printf.printf "edge arch (P=32 R=16 S=4096), presolve off vs prune:\n";
  show "off" presolve_off;
  show "prune" presolve_on;
  Printf.printf "presolve: pruned %d pair(s), speedup %.2fx\n" presolve_on.pruned
    presolve_speedup;
  (* Communication-limited scenario (DESIGN §16): the bandwidth-starved
     edge technology point under the Delay objective, where the
     comm-aware lowering adds the per-link occupancy constraints.  Both
     lowerings run over the same layer set so the bench records what the
     richer model costs the solver. *)
  let edge_tech = Archspec.Technology.edge in
  let comm_overlapped =
    measure ~tech:edge_tech ~objective:F.Delay options
      { base with O.comm = Archspec.Link.Overlapped }
      nests
  in
  let comm_aware =
    measure ~tech:edge_tech ~objective:F.Delay options
      { base with O.comm = Archspec.Link.Comm_aware }
      nests
  in
  let comm_overhead = comm_aware.wall_s /. comm_overlapped.wall_s in
  Printf.printf
    "edge technology, delay objective: overlapped vs comm-aware lowering:\n";
  show "overlapped" comm_overlapped;
  show "comm" comm_aware;
  Printf.printf "comm-aware lowering overhead: %.2fx\n" comm_overhead;
  let drift =
    Float.abs (listed.objective_sum -. compiled.objective_sum)
    /. (1.0 +. Float.abs listed.objective_sum)
  in
  if drift > 1e-6 then
    Printf.eprintf
      "warning: continuous objectives drifted between paths (relative %.3g)\n" drift;
  (* Scenario x kernel matrix: each row is one formulated problem set,
     each column one solver kernel, timed around the bare solver.  The
     "edge" scenario reuses the starved architecture above — an
     infeasibility-heavy workload where phase I dominates. *)
  let scenarios =
    let nest_of name = Conv.to_nest (Workload.Zoo.find name) in
    if options.smoke then [ ("resnet_2", Arch.eyeriss, nest_of "resnet-2") ]
    else
      [
        ("resnet_2", Arch.eyeriss, nest_of "resnet-2");
        ("resnet_8", Arch.eyeriss, nest_of "resnet-8");
        ("yolo_2", Arch.eyeriss, nest_of "yolo-2");
        ("edge", edge, nest_of "resnet-2");
      ]
  in
  Printf.printf "scenario x kernel matrix (bare solver, %d repeat(s)):\n"
    options.repeat;
  Printf.printf "%-10s %-9s %9s %9s %8s %10s\n" "scenario" "kernel" "min s"
    "mean s" "solves" "solves/s";
  let show_cell scenario kernel (c : cell) =
    Printf.printf "%-10s %-9s %9.3f %9.3f %8d %10.1f\n%!" scenario kernel
      c.c_wall_s c.c_wall_mean_s c.c_solves
      (float_of_int c.c_solves /. c.c_wall_s)
  in
  let structures = ref 0 in
  let batch_sizes = ref [] in
  let matrix =
    List.map
      (fun (scenario, arch, nest) ->
        let problems =
          scenario_problems ~max_choices:options.max_choices arch nest
        in
        let cl = scalar_cell ~repeat:options.repeat ~kernel:`List problems in
        show_cell scenario "list" cl;
        let cc = scalar_cell ~repeat:options.repeat ~kernel:`Compiled problems in
        show_cell scenario "compiled" cc;
        let cb, blocks = batched_cell ~repeat:options.repeat problems in
        show_cell scenario "batched" cb;
        check_identical ~scenario cc cb;
        structures := !structures + List.length blocks;
        batch_sizes :=
          !batch_sizes
          @ List.map (fun (b : Gp.Batch.block) -> b.Gp.Batch.bk_nmembers) blocks;
        Printf.printf "%-10s batched speedup %.2fx over compiled (%d structure(s))\n%!"
          scenario
          (cc.c_wall_s /. cb.c_wall_s)
          (List.length blocks);
        (scenario, cl, cc, cb))
      scenarios
  in
  let batch_count = List.length !batch_sizes in
  let batch_size_mean =
    if batch_count = 0 then 0.0
    else
      float_of_int (List.fold_left ( + ) 0 !batch_sizes)
      /. float_of_int batch_count
  in
  let batch_size_max = List.fold_left Int.max 0 !batch_sizes in
  let buf = Buffer.create 2048 in
  let f name v b = Json.field b name (fun b -> Json.float b v) in
  let i name v b = Json.field b name (fun b -> Json.int b v) in
  let s name v b = Json.field b name (fun b -> Json.str b v) in
  let cell_fields scenario kernel (c : cell) =
    [
      f (Printf.sprintf "%s_%s_wall_s" scenario kernel) c.c_wall_s;
      f (Printf.sprintf "%s_%s_wall_mean_s" scenario kernel) c.c_wall_mean_s;
      f
        (Printf.sprintf "%s_%s_solves_per_s" scenario kernel)
        (float_of_int c.c_solves /. c.c_wall_s);
    ]
  in
  let matrix_fields =
    List.concat_map
      (fun (scenario, cl, cc, cb) ->
        cell_fields scenario "list" cl
        @ cell_fields scenario "compiled" cc
        @ cell_fields scenario "batched" cb
        @ [
            f
              (Printf.sprintf "%s_batched_speedup" scenario)
              (cc.c_wall_s /. cb.c_wall_s);
          ])
      matrix
  in
  Json.obj buf
    ([
       s "bench" "solver";
       s "layers" (String.concat "," options.layers);
       i "repeat" options.repeat;
       i "max_choices" options.max_choices;
       f "list_wall_s" listed.wall_s;
       f "list_wall_mean_s" listed.wall_mean_s;
       i "list_solves" listed.solves;
       i "list_newton_steps" listed.newton_steps;
       f "list_solves_per_s" (float_of_int listed.solves /. listed.wall_s);
       f "compiled_wall_s" compiled.wall_s;
       f "compiled_wall_mean_s" compiled.wall_mean_s;
       i "compiled_solves" compiled.solves;
       i "compiled_newton_steps" compiled.newton_steps;
       f "compiled_solves_per_s" (float_of_int compiled.solves /. compiled.wall_s);
       f "speedup" speedup;
       f "presolve_off_wall_s" presolve_off.wall_s;
       f "presolve_off_wall_mean_s" presolve_off.wall_mean_s;
       f "presolve_on_wall_s" presolve_on.wall_s;
       f "presolve_on_wall_mean_s" presolve_on.wall_mean_s;
       i "presolve_pruned" presolve_on.pruned;
       f "presolve_speedup" presolve_speedup;
       f "comm_overlapped_wall_s" comm_overlapped.wall_s;
       f "comm_overlapped_wall_mean_s" comm_overlapped.wall_mean_s;
       f "comm_overlapped_solves_per_s"
         (float_of_int comm_overlapped.solves /. comm_overlapped.wall_s);
       f "comm_aware_wall_s" comm_aware.wall_s;
       f "comm_aware_wall_mean_s" comm_aware.wall_mean_s;
       f "comm_aware_solves_per_s"
         (float_of_int comm_aware.solves /. comm_aware.wall_s);
       (* Informational ratio (no perfdiff direction): how much the
          per-link lowering costs over the aggregate one. *)
       f "comm_lowering_overhead" comm_overhead;
     ]
    @ matrix_fields
    @ [
        i "batched_structures_compiled" !structures;
        i "batched_batch_count" batch_count;
        f "batched_batch_size_mean" batch_size_mean;
        i "batched_batch_size_max" batch_size_max;
      ]);
  Buffer.add_char buf '\n';
  let oc = open_out options.out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" options.out
