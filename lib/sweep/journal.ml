type fate =
  | Solved of Gp.Solver.solution
  | Quarantined of Robust.failure
  | Pruned of Analysis.Presolve.proof

type entry = {
  pair : int;
  fingerprint : string;
  provenance : string;
  fate : fate;
  stats : Gp.Solver.stats;
  retries : int;
  deadline_hits : int;
}

(* v2 added the [Pruned] fate (presolve infeasibility proofs).  v1
   journals no longer decode: a presolve-capable binary would otherwise
   replay pre-presolve entries whose fingerprints happen to match. *)
let version = 2

(* FNV-1a 64 with murmur3's finalizer — the same construction lib/robust
   uses for injection draws: stable across compilers (no Hashtbl.hash)
   and diffusing enough that a one-character config change flips the
   whole digest. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let fingerprint ~config ~problem_key =
  Printf.sprintf "%016Lx" (mix (fnv64 (config ^ "\x00" ^ problem_key)))

(* Floats travel as IEEE-754 bit patterns in hex so every value — NaN
   payloads included — round-trips exactly. *)
let bits v = Printf.sprintf "%Lx" (Int64.bits_of_float v)

let of_bits s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some b -> Int64.float_of_bits b
  | None -> failwith (Printf.sprintf "bad float bits %S" s)

let status_name = function
  | Gp.Solver.Optimal -> "optimal"
  | Gp.Solver.Infeasible -> "infeasible"
  | Gp.Solver.Iteration_limit -> "iteration_limit"
  | Gp.Solver.Deadline_exceeded -> "deadline_exceeded"

let status_of = function
  | "optimal" -> Gp.Solver.Optimal
  | "infeasible" -> Gp.Solver.Infeasible
  | "iteration_limit" -> Gp.Solver.Iteration_limit
  | "deadline_exceeded" -> Gp.Solver.Deadline_exceeded
  | s -> failwith (Printf.sprintf "unknown solver status %S" s)

let kind_name = function
  | Analysis.Presolve.Ineq_low -> "ineq_low"
  | Analysis.Presolve.Eq_low -> "eq_low"
  | Analysis.Presolve.Eq_high -> "eq_high"

let kind_of = function
  | "ineq_low" -> Analysis.Presolve.Ineq_low
  | "eq_low" -> Analysis.Presolve.Eq_low
  | "eq_high" -> Analysis.Presolve.Eq_high
  | s -> failwith (Printf.sprintf "unknown culprit kind %S" s)

let side_name = function Analysis.Presolve.Lo -> "lo" | Analysis.Presolve.Hi -> "hi"

let side_of = function
  | "lo" -> Analysis.Presolve.Lo
  | "hi" -> Analysis.Presolve.Hi
  | s -> failwith (Printf.sprintf "unknown bound side %S" s)

(* ------------------------------------------------------------------ *)
(* Encoding (via the Obs.Json writer)                                 *)
(* ------------------------------------------------------------------ *)

let encode (e : entry) =
  let b = Buffer.create 512 in
  let j_str s b = Obs.Json.str b s in
  let j_int i b = Obs.Json.int b i in
  let field name v b = Obs.Json.field b name v in
  let obj fields b = Obs.Json.obj b fields in
  let arr vs b =
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        v b)
      vs;
    Buffer.add_char b ']'
  in
  let stats =
    let s = e.stats in
    obj
      [
        field "p1" (j_int s.Gp.Solver.phase1_outer);
        field "p2" (j_int s.Gp.Solver.phase2_outer);
        field "newton" (j_int s.Gp.Solver.newton_iters);
        field "backtracks" (j_int s.Gp.Solver.backtracks);
        field "kkt" (j_int s.Gp.Solver.kkt_regularizations);
        field "chol" (j_int s.Gp.Solver.cholesky_fallbacks);
        field "dh" (j_int s.Gp.Solver.deadline_hits);
        field "gap" (j_str (bits s.Gp.Solver.duality_gap));
      ]
  in
  let fate =
    match e.fate with
    | Solved sol ->
      field "ok"
        (obj
           [
             field "status" (j_str (status_name sol.Gp.Solver.status));
             field "objective" (j_str (bits sol.Gp.Solver.objective));
             field "values"
               (arr
                  (List.map
                     (fun (name, v) -> arr [ j_str name; j_str (bits v) ])
                     sol.Gp.Solver.values));
           ])
    | Quarantined f ->
      field "err"
        (obj
           [
             field "site" (j_str f.Robust.site);
             field "prov" (j_str f.Robust.provenance);
             field "exn" (j_str f.Robust.exn);
             field "backtrace" (j_str f.Robust.backtrace);
             field "elapsed" (j_str (bits f.Robust.elapsed_ns));
             field "attempts" (j_int f.Robust.attempts);
           ])
    | Pruned proof ->
      field "pruned"
        (obj
           [
             field "culprit" (j_str proof.Analysis.Presolve.culprit);
             field "kind" (j_str (kind_name proof.Analysis.Presolve.kind));
             field "bound" (j_str (bits proof.Analysis.Presolve.bound));
             field "steps"
               (arr
                  (List.map
                     (fun (s : Analysis.Presolve.step) ->
                       arr
                         [
                           j_str s.Analysis.Presolve.var;
                           j_str (side_name s.Analysis.Presolve.side);
                           j_str (bits s.Analysis.Presolve.bound);
                           j_str s.Analysis.Presolve.via;
                         ])
                     proof.Analysis.Presolve.steps));
           ])
  in
  obj
    [
      field "v" (j_int version);
      field "pair" (j_int e.pair);
      field "fp" (j_str e.fingerprint);
      field "prov" (j_str e.provenance);
      field "retries" (j_int e.retries);
      field "dh" (j_int e.deadline_hits);
      fate;
      field "stats" stats;
    ]
    b;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding — via the shared Obs.Json subset parser (objects, arrays, *)
(* strings, signed integers), exactly what [encode] emits.            *)
(* ------------------------------------------------------------------ *)

module P = Obs.Json

let decode line =
  let fields v = match v with P.Obj f -> f | _ -> failwith "not an object" in
  let find f k =
    match List.assoc_opt k f with
    | Some v -> v
    | None -> failwith (Printf.sprintf "missing field %S" k)
  in
  let int_of = function P.Int i -> i | _ -> failwith "expected an integer" in
  let str_of = function P.Str s -> s | _ -> failwith "expected a string" in
  let float_of v = of_bits (str_of v) in
  match P.parse line with
  | Error m -> Error ("journal: " ^ m)
  | Ok v -> (
    try
      let f = fields v in
      if int_of (find f "v") <> version then failwith "journal version mismatch";
      let stats_f = fields (find f "stats") in
      let stats : Gp.Solver.stats =
        {
          Gp.Solver.phase1_outer = int_of (find stats_f "p1");
          phase2_outer = int_of (find stats_f "p2");
          newton_iters = int_of (find stats_f "newton");
          backtracks = int_of (find stats_f "backtracks");
          kkt_regularizations = int_of (find stats_f "kkt");
          cholesky_fallbacks = int_of (find stats_f "chol");
          deadline_hits = int_of (find stats_f "dh");
          duality_gap = float_of (find stats_f "gap");
        }
      in
      let fate =
        match
          ( List.assoc_opt "ok" f,
            List.assoc_opt "err" f,
            List.assoc_opt "pruned" f )
        with
        | Some ok, None, None ->
          let ok_f = fields ok in
          let values =
            match find ok_f "values" with
            | P.Arr vs ->
              List.map
                (function
                  | P.Arr [ name; v ] -> (str_of name, float_of v)
                  | _ -> failwith "malformed values pair")
                vs
            | _ -> failwith "values is not an array"
          in
          Solved
            {
              Gp.Solver.status = status_of (str_of (find ok_f "status"));
              objective = float_of (find ok_f "objective");
              values;
            }
        | None, Some err, None ->
          let err_f = fields err in
          Quarantined
            {
              Robust.site = str_of (find err_f "site");
              provenance = str_of (find err_f "prov");
              exn = str_of (find err_f "exn");
              backtrace = str_of (find err_f "backtrace");
              elapsed_ns = float_of (find err_f "elapsed");
              attempts = int_of (find err_f "attempts");
            }
        | None, None, Some pruned ->
          let pr_f = fields pruned in
          let steps =
            match find pr_f "steps" with
            | P.Arr vs ->
              List.map
                (function
                  | P.Arr [ var; side; bound; via ] ->
                    {
                      Analysis.Presolve.var = str_of var;
                      side = side_of (str_of side);
                      bound = float_of bound;
                      via = str_of via;
                    }
                  | _ -> failwith "malformed proof step")
                vs
            | _ -> failwith "steps is not an array"
          in
          Pruned
            {
              Analysis.Presolve.steps;
              culprit = str_of (find pr_f "culprit");
              kind = kind_of (str_of (find pr_f "kind"));
              bound = float_of (find pr_f "bound");
            }
        | _ -> failwith "entry carries none or several of ok/err/pruned"
      in
      Ok
        {
          pair = int_of (find f "pair");
          fingerprint = str_of (find f "fp");
          provenance = str_of (find f "prov");
          fate;
          stats;
          retries = int_of (find f "retries");
          deadline_hits = int_of (find f "dh");
        }
    with Failure m -> Error ("journal: " ^ m))

let append_line oc e =
  output_string oc (encode e);
  output_char oc '\n';
  flush oc

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let entries = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match decode line with
               | Ok e -> entries := e :: !entries
               | Error _ -> () (* torn tail of a killed run, or foreign line *)
           done
         with End_of_file -> ());
        Ok (List.rev !entries))

let load_existing path = if Sys.file_exists path then load path else Ok []

let compact entries =
  let tbl = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace tbl e.pair e) entries;
  let kept = Hashtbl.fold (fun _ e acc -> e :: acc) tbl [] in
  List.sort (fun a b -> Int.compare a.pair b.pair) kept

let write_file path entries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (encode e);
          output_char oc '\n')
        entries)
