module Nest = Workload.Nest
module Mapping = Mapspace.Mapping
module Divisors = Mapspace.Divisors

type criterion = Min_energy | Min_delay | Min_edp

type config = { max_trials : int; victory_condition : int; seed : int }

let default_config = { max_trials = 100000; victory_condition = 100000; seed = 42 }

type result = {
  best : (Mapping.t * Accmodel.Evaluate.t) option;
  trials : int;
  valid_trials : int;
  improvements : int;
}

(* Fed from the merged result record, which Exec.Par.map makes
   independent of scheduling, so the counters stay deterministic for a
   fixed seed/budget (see the Obs.Metrics determinism contract). *)
let m_trials = Obs.Metrics.counter "mapper.trials"
let m_valid = Obs.Metrics.counter "mapper.valid_trials"
let m_improvements = Obs.Metrics.counter "mapper.improvements"

let feed_metrics r =
  Obs.Metrics.add m_trials r.trials;
  Obs.Metrics.add m_valid r.valid_trials;
  Obs.Metrics.add m_improvements r.improvements;
  r

let score criterion (m : Accmodel.Evaluate.t) =
  match criterion with
  | Min_energy -> m.Accmodel.Evaluate.energy_pj
  | Min_delay -> m.Accmodel.Evaluate.cycles
  | Min_edp -> m.Accmodel.Evaluate.energy_pj *. m.Accmodel.Evaluate.cycles

let shuffle rng xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let random_mapping rng nest =
  let dims = Nest.dim_names nest in
  let chains =
    List.map
      (fun d ->
        (d, Divisors.random_factorization rng (Nest.extent nest d) ~parts:4))
      dims
  in
  let factors_at i =
    List.map (fun (d, chain) -> (d, List.nth chain i)) chains
  in
  Mapping.canonical
    ~reg:(factors_at 0, shuffle rng dims)
    ~pe:(factors_at 1, shuffle rng dims)
    ~spatial:(factors_at 2)
    ~dram:(factors_at 3, shuffle rng dims)

(* The uninstrumented body, shared by [search] and the parallel streams
   so each trial is counted exactly once. *)
let search_raw ~config ~constraints tech arch criterion nest =
  let rng = Random.State.make [| config.seed |] in
  let best = ref None in
  let trials = ref 0 in
  let valid = ref 0 in
  let improvements = ref 0 in
  let since_improvement = ref 0 in
  while !trials < config.max_trials && !since_improvement < config.victory_condition do
    incr trials;
    incr since_improvement;
    let mapping = random_mapping rng nest in
    if not (Mapspace.Constraints.satisfies constraints mapping) then ()
    else
    match Accmodel.Evaluate.evaluate tech arch nest mapping with
    | Error _ -> ()
    | Ok metrics ->
      incr valid;
      let s = score criterion metrics in
      let improved =
        match !best with None -> true | Some (s', _, _) -> s < s'
      in
      if improved then begin
        best := Some (s, mapping, metrics);
        incr improvements;
        since_improvement := 0
      end
  done;
  {
    best = Option.map (fun (_, m, e) -> (m, e)) !best;
    trials = !trials;
    valid_trials = !valid;
    improvements = !improvements;
  }

let search ?(config = default_config) ?(constraints = Mapspace.Constraints.empty) tech
    arch criterion nest =
  Obs.Trace.span "mapper.search"
    ~attrs:[ ("nest", Nest.name nest) ]
    (fun () -> feed_metrics (search_raw ~config ~constraints tech arch criterion nest))

let search_parallel ?(config = default_config)
    ?(constraints = Mapspace.Constraints.empty) ?domains tech arch criterion nest =
  let domains =
    match domains with
    | Some d -> Int.max 1 d
    | None -> Int.min 8 (Domain.recommended_domain_count ())
  in
  (* Degenerate splits: with more streams than trials some streams would
     get [max_trials = 0] yet still spawn and merge, and the per-stream
     victory shares would collapse toward 1, changing the termination
     semantics versus the sequential path.  Clamp so every stream owns at
     least one trial; a budget of <= 1 trial runs the sequential path
     outright. *)
  let domains = Int.min domains (Int.max config.max_trials 1) in
  if domains = 1 then search ~config ~constraints tech arch criterion nest
  else
    Obs.Trace.span "mapper.search_parallel"
      ~attrs:[ ("nest", Nest.name nest); ("domains", string_of_int domains) ]
    @@ fun () -> begin
    (* Split the budgets; each stream searches an independent seeded
       slice, exactly as Timeloop's threads partition the space.  The
       streams run as one batch on the shared domain pool; each stream is
       deterministic in its seed and the merge below visits them in
       stream order, so the result does not depend on scheduling. *)
    let share total k =
      (* Distribute [total] over [domains], remainder to the first ones. *)
      (total / domains) + if k < total mod domains then 1 else 0
    in
    let stream k =
      let config =
        {
          max_trials = share config.max_trials k;
          victory_condition = Int.max 1 (share config.victory_condition k);
          seed = config.seed + (7919 * k);
        }
      in
      search_raw ~config ~constraints tech arch criterion nest
    in
    let results = Exec.Par.map ~jobs:domains stream (List.init domains Fun.id) in
    feed_metrics
    @@ List.fold_left
      (fun acc r ->
        let best =
          match (acc.best, r.best) with
          | None, b | b, None -> b
          | Some (_, m1), Some (_, m2) ->
            if score criterion m2 < score criterion m1 then r.best else acc.best
        in
        {
          best;
          trials = acc.trials + r.trials;
          valid_trials = acc.valid_trials + r.valid_trials;
          improvements = acc.improvements + r.improvements;
        })
      { best = None; trials = 0; valid_trials = 0; improvements = 0 }
      results
  end

let exhaustive tech arch criterion nest ~max_points =
  let dims = Nest.dim_names nest in
  let rec permutations = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (String.equal x y)) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs
  in
  let nperms =
    List.fold_left (fun acc i -> acc * (i + 1)) 1 (List.init (List.length dims) Fun.id)
  in
  (* Check the space size before materializing anything. *)
  let total =
    List.fold_left
      (fun acc d ->
        let c = Divisors.count_factorizations (Nest.extent nest d) ~parts:4 in
        if acc > max_points / Int.max 1 c then max_int else acc * c)
      (nperms * nperms) dims
  in
  if total > max_points then
    invalid_arg
      (Printf.sprintf "Mapper.exhaustive: search space exceeds the limit %d" max_points);
  let perms = permutations dims in
  let chains =
    List.map
      (fun d -> (d, Divisors.factorizations (Nest.extent nest d) ~parts:4))
      dims
  in
  let combos =
    List.fold_left
      (fun acc (d, options) ->
        List.concat_map (fun combo -> List.map (fun c -> (d, c) :: combo) options) acc)
      [ [] ] chains
  in
  let best = ref None in
  List.iter
    (fun combo ->
      let factors_at i = List.map (fun (d, chain) -> (d, List.nth chain i)) combo in
      List.iter
        (fun pe_perm ->
          List.iter
            (fun dram_perm ->
              let mapping =
                Mapping.canonical
                  ~reg:(factors_at 0, dims)
                  ~pe:(factors_at 1, pe_perm)
                  ~spatial:(factors_at 2)
                  ~dram:(factors_at 3, dram_perm)
              in
              match Accmodel.Evaluate.evaluate tech arch nest mapping with
              | Error _ -> ()
              | Ok metrics ->
                let s = score criterion metrics in
                let improved =
                  match !best with None -> true | Some (s', _, _) -> s < s'
                in
                if improved then best := Some (s, mapping, metrics))
            perms)
        perms)
    combos;
  Option.map (fun (_, m, e) -> (m, e)) !best
