(** Post-solve solution certificates.

    After the interior-point solver returns a point, this pass certifies
    it independently of the solver's own bookkeeping:

    - the objective value and every variable must be finite and positive;
    - constraint violations come from {!Gp.Problem.violations}, which
      reports non-finite evaluations as infinite violations — those are
      hard failures (errors); finite violations beyond the tolerance are
      warnings (interior-point output is approximate by construction);
    - a stationarity (KKT) residual in log space: the norm of
      [grad f0 + sum lambda_i grad f_i + sum nu_j grad g_j] at the point,
      with multipliers fitted by least squares over the near-active
      constraints and negative inequality multipliers clamped to zero.
      A small residual certifies (approximate) optimality, not just
      feasibility; it is reported, never gated on, because iteration-limit
      points are legitimately sub-optimal. *)

type t = {
  objective_value : float;
  violations : (string * float) list;
      (** violated constraints at the point (non-finite evaluations
          included as [infinity]) *)
  max_violation : float;  (** [0.] when feasible *)
  kkt_residual : float option;
      (** relative stationarity residual; [None] when the least-squares
          system is singular or the point is unusable *)
  diagnostics : Diagnostic.t list;
}

val check :
  ?tol:float ->
  ?provenance:string ->
  Gp.Problem.t ->
  (string -> float) ->
  t
(** [check problem env] certifies the point [env].  [tol] (default 1e-4)
    is the violation tolerance above which warnings are emitted. *)

val hard_failure : t -> bool
(** True when any diagnostic is an error (non-finite objective, variable
    or constraint evaluation) — such a point must not be ranked. *)

val pp : Format.formatter -> t -> unit
