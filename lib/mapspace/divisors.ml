let divisors n =
  if n < 1 then invalid_arg "Divisors.divisors: argument must be positive";
  let rec collect d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then begin
      let q = n / d in
      if q = d then collect (d + 1) (d :: small) large
      else collect (d + 1) (d :: small) (q :: large)
    end
    else collect (d + 1) small large
  in
  collect 1 [] []

let is_divisor d ~of_ = d >= 1 && of_ mod d = 0

let take k xs =
  let rec go k = function
    | x :: rest when k > 0 -> x :: go (k - 1) rest
    | _ -> []
  in
  go k xs

let closest n ~target ~count =
  let target = Float.max target 1.0 in
  let by_log_distance a b =
    let dist d = Float.abs (log (float_of_int d) -. log target) in
    Float.compare (dist a) (dist b)
  in
  divisors n |> List.stable_sort by_log_distance |> take count
  |> List.sort_uniq Int.compare

let closest_powers_of_two ~target ~count =
  if count < 1 then invalid_arg "Divisors.closest_powers_of_two: count must be positive";
  let target = Float.max target 1.0 in
  let exact = log target /. log 2.0 in
  (* Symmetric window around the real-valued exponent: [count + 2]
     candidates on each side of the bracketing pair (floor, ceil), so
     upward candidates like [base + 2] are reachable and the exponent-0
     clamp (deduplicated BEFORE the distance sort and truncation) cannot
     shrink the window below [count] distinct values. *)
  let lo = int_of_float (Float.floor exact) in
  let hi = int_of_float (Float.ceil exact) in
  let exponents =
    List.init (count + 2) (fun i -> lo - i)
    @ List.init (count + 2) (fun i -> hi + i)
    |> List.filter (fun e -> e >= 0)
    |> List.sort_uniq Int.compare
  in
  let pow2 e = 1 lsl e in
  List.map pow2 exponents
  |> List.stable_sort (fun a b ->
         let dist d = Float.abs (log (float_of_int d) -. log target) in
         Float.compare (dist a) (dist b))
  |> take count
  |> List.sort_uniq Int.compare

let rec factorizations n ~parts =
  if parts < 1 then invalid_arg "Divisors.factorizations: parts must be positive";
  if parts = 1 then [ [ n ] ]
  else
    List.concat_map
      (fun d -> List.map (fun rest -> d :: rest) (factorizations (n / d) ~parts:(parts - 1)))
      (divisors n)

let count_factorizations n ~parts =
  let table = Hashtbl.create 64 in
  let rec count n parts =
    if parts = 1 then 1
    else
      match Hashtbl.find_opt table (n, parts) with
      | Some c -> c
      | None ->
        let c =
          List.fold_left (fun acc d -> acc + count (n / d) (parts - 1)) 0 (divisors n)
        in
        Hashtbl.replace table (n, parts) c;
        c
  in
  if parts < 1 then invalid_arg "Divisors.count_factorizations: parts must be positive";
  count n parts

let random_factorization rng n ~parts =
  if parts < 1 then invalid_arg "Divisors.random_factorization: parts must be positive";
  let table = Hashtbl.create 64 in
  let rec count n parts =
    if parts = 1 then 1
    else
      match Hashtbl.find_opt table (n, parts) with
      | Some c -> c
      | None ->
        let c =
          List.fold_left (fun acc d -> acc + count (n / d) (parts - 1)) 0 (divisors n)
        in
        Hashtbl.replace table (n, parts) c;
        c
  in
  (* Uniform over ordered factorizations: pick the first factor d with
     probability proportional to the number of completions of n/d. *)
  let rec sample n parts =
    if parts = 1 then [ n ]
    else begin
      let total = count n parts in
      let target = Random.State.int rng total in
      let rec pick acc = function
        | [] -> assert false
        | d :: rest ->
          let c = count (n / d) (parts - 1) in
          if target < acc + c then d :: sample (n / d) (parts - 1)
          else pick (acc + c) rest
      in
      pick 0 (divisors n)
    end
  in
  sample n parts
