(** Thistle's top-level, single-layer entry points: enumerate pruned
    permutation choices, solve one geometric program per choice, convert
    the best few real-valued solutions to integer design points, and rank
    them with the accelerator model (Fig. 2's flow).

    [dataflow] optimizes the mapping for a fixed architecture (the paper's
    baseline experiments, Figs. 4 and 7); [codesign] additionally frees
    the architectural parameters under an area budget (Figs. 5, 6 and 8). *)

type config = {
  n_divisors : int;  (** paper's [n], divisor candidates per tile variable *)
  n_pow2 : int;  (** paper's [N], power-of-two candidates per capacity *)
  top_choices : int;
      (** how many best-by-continuous-objective permutation choices are
          integerized and model-evaluated *)
  max_choices : int;  (** cap on enumerated permutation choices *)
  gp_tol : float;
  explore_placements : bool;
      (** when false, window dims stay at the register level instead of
          also trying spatial placement (ablation knob) *)
  min_pe_utilization : float;
      (** integer candidates using a smaller fraction of the PEs are
          rejected (paper Section IV's utilization filter); 0 disables *)
  comm : Archspec.Link.comm_model;
      (** communication model for the delay lowering and candidate
          scoring (DESIGN §16).  [Comm_aware] (default) bounds each
          link occupancy — DRAM/NoC read and write, register operand
          stream — separately, with per-burst overhead folded into the
          coefficients; [Overlapped] keeps the historical aggregate
          [delay-sram]/[delay-dram] form, bit-identical to earlier
          releases.  Enters both {!config_fingerprint} (the lowering
          changes the GP) and {!request_key}. *)
  contention : bool;
      (** serialize the DRAM and NoC channels when scoring integer
          candidates (default [false]): the shared-bus busy time is the
          {e sum} of their occupancies rather than the max.  Only
          meaningful under [Comm_aware]; never changes a GP solve, so it
          enters {!request_key} but not {!config_fingerprint}. *)
  jobs : int;
      (** parallelism of the GP-solve sweep and integerization shortlist,
          run on the shared {!Exec.Pool} (default
          [Domain.recommended_domain_count ()]).  [jobs = 1] takes the
          exact sequential path.  Results are bit-identical for any
          value: the sweep is order-preserving and candidate ranking
          totally orders solutions by objective. *)
  lint : Analysis.Lint.mode;
      (** static-analysis gate over every formulated GP
          ({!Formulate.lint}): [Enforce] (default) turns the whole run
          into an [Error] on any lint error — a malformed instance means
          the formulation code is wrong, not that one choice is unlucky;
          [Warn] logs and continues; [Off] skips the checks.  Solutions
          are additionally certified post-solve
          ({!Analysis.Certificate.check}); points with non-finite
          coordinates or constraint values are discarded in every mode. *)
  presolve : Analysis.Presolve.mode;
      (** interval-propagation presolve over every formulated GP
          ({!Analysis.Presolve.analyze}, DESIGN §13).  [Prune] (default)
          skips statically infeasible pairs — each carries a
          machine-checkable proof, independently re-verified by
          {!Analysis.Certificate.check_prune} before it is acted on
          (a rejected proof solves the pair normally) — and solves the
          reduced problem of feasible pairs (monotone variables pinned,
          redundant constraints dropped), with fixed values re-injected
          into every solution.  [Check] solves everything exactly as
          [Off] does and differentially validates the verdicts against
          the solver's findings: a solved presolve-infeasible pair, a
          solution escaping the propagated box, or an eliminated
          constraint active at an optimum turns the whole run into an
          [Error].  Pruning alone never changes the selected outcome
          (infeasible pairs cannot rank or warm-start); fixing and
          dropping may move the solver's iteration path within
          tolerance, like [warm_start].
          [presolve.pruned] / [presolve.vars_fixed] /
          [presolve.constraints_dropped] count the verdicts. *)
  dedupe : bool;
      (** solve each structurally identical GP once per sweep (canonical
          coefficient/exponent key, constraint names excluded) and replay
          the cached solution and telemetry for its duplicates (default
          [true]).  Replays are bit-identical to re-solving, so results
          do not depend on this flag; [solver.cache_hits] counts them. *)
  warm_start : bool;
      (** seed each non-pinned placement's solve from its own choice's
          pinned-placement solution (default [true]).  The warm source is
          a function of the enumeration order alone, so results stay
          bit-identical across [jobs]; against cold starts the converged
          optimum may differ in low-order float bits (the iteration path
          changes), never in feasibility or ranking beyond solver
          tolerance.  [solver.warm_starts] counts seeded solves. *)
  gp_kernel : Gp.Solver.kernel;
      (** solver evaluation/KKT strategy (default [`Compiled]); [`List]
          selects the legacy closure-per-function path, kept as the
          reference baseline for benchmarks and differential tests.
          [`Batched] groups each wave's pairs by coefficient-blind
          structure key ({!Gp.Batch.structure_key}) before the parallel
          pool starts, compiles and factors each structure once, and
          solves members off shared coefficient blocks
          ({!Gp.Solver.solve_batched}).  Grouping follows enumeration
          order and the batched solver is bit-identical to [`Compiled],
          so reports, journals and counters (minus the [solver.batch_*]
          family) are unchanged for any [jobs]; presolve-pruned and
          point pairs never enter a batch, and a deadline or crash fails
          only the affected member. *)
  solve_deadline_ms : float option;
      (** cooperative wall-clock budget per GP solve (default [None]):
          checked at outer-iteration boundaries, so a solve may overrun
          by one centering.  A deadline hit retries per [retries], then
          quarantines the pair (DESIGN §11).  Positive budgets make the
          set of surviving pairs timing-dependent; determinism tests use
          injection instead. *)
  retries : int;
      (** extra solve attempts after a crash or deadline hit before the
          pair is quarantined (default 1; negative behaves as 0).
          Retried attempts escalate the solver's initial KKT
          regularization from 1e-9 to 1e-5. *)
  inject : Robust.Inject.t;
      (** deterministic fault injection for testing the quarantine
          machinery (default {!Robust.Inject.none}); decisions are a pure
          function of (seed, kind, site, provenance, attempt), never of
          time, so injected runs stay bit-identical across [jobs]. *)
  shard : Sweep.Partition.t;
      (** which slice of the (choice x placement) work-list this run
          owns (default {!Sweep.Partition.full}).  Shards partition by
          {e whole choices} so every warm-start source is shard-local;
          a shard run formulates, solves, journals and reports only its
          own pairs — the globally best design point comes from merging
          the shard journals ({!Sweep.Merge}, [thistle merge]) and
          resuming, which replays every pair and re-runs ranking and
          integerization over the full set, byte-identical to an
          unsharded run. *)
  journal : string option;
      (** append-only JSONL completion journal (default [None]).  Every
          pair completed by this run — solved, replayed or quarantined —
          is appended as it finishes and flushed, so a killed run loses
          at most the pairs still in flight.  Entry order in a parallel
          run is timing-dependent; entry {e content} is a function of
          the workload and configuration alone (DESIGN §12). *)
  resume : bool;
      (** replay journal entries instead of re-solving (default
          [false]; requires [journal]).  An entry is replayed only when
          its fingerprint — {!Sweep.Journal.fingerprint} of the pair's
          {!problem_key} and this config's solver fingerprint — still
          matches, so stale pairs (changed formulation, tolerance,
          kernel, retry or injection policy) are re-solved and
          re-journaled.  [sweep.journal_hits] / [sweep.journal_stale]
          count the two cases; [sweep.pairs_solved] counts physical
          solves this run. *)
}

val default_config : config

val compare_scores : float -> float -> int
(** Ascending order on finite scores with every non-finite score (NaN,
    [+/-infinity]) ranked after every finite one; non-finite scores tie
    with each other.  This is the comparator behind both the continuous
    shortlist ranking and {!select_best} — [Float.compare] alone orders
    NaN {e first}, which under a minimization objective would crown a
    bogus candidate. *)

val select_best : score:('a -> float) -> 'a list -> 'a option
(** Minimum of [score] under {!compare_scores}; exact ties keep the
    last listed element.  A non-finite-scored element wins only when the
    list contains nothing finite; [None] only for the empty list. *)

val config_fingerprint : config -> string
(** The solver-behavior fingerprint entering every journal entry's
    {!Sweep.Journal.fingerprint}: tolerance, kernel, reuse policy,
    deadline/retry/injection settings, and the communication model (the
    lowering changes the GP, so journaled fates of one model never
    replay under the other; [contention] is excluded — it never changes
    a solve).  Changing any of them invalidates
    journaled pairs on the next resume.  [`Batched] fingerprints as
    [`Compiled]: their results are bit-identical, so journal (and serve
    store) entries are interchangeable between the two kernels.  Exposed
    for tests; the format is not a stability guarantee. *)

val problem_key : Gp.Problem.t -> string
(** Canonical structural key backing [dedupe]: the exact coefficient and
    exponent bits of every term in formulation order, with constraint
    names excluded (the solver sees names only through the variable set,
    which the exponent maps carry).  Two problems with equal keys are the
    same mathematical program, so one solve serves both.  Exposed for
    tests; the key format is not a stability guarantee. *)

val request_key :
  config:config ->
  Archspec.Technology.t ->
  Formulate.arch_mode ->
  Formulate.objective ->
  Workload.Nest.t ->
  string
(** Canonical identity of a whole optimization request — what the serve
    layer's cross-request result store keys on (DESIGN §14).  Covers the
    technology point (exact float bits, all three link parameter
    triples included), the arch mode {e including the
    architecture name} (two arches with identical capacities formulate
    bit-identical GPs, so {!problem_key} alone collides), the objective,
    the full nest (dims, extents, tensors, projections) and every
    enumeration/integerization/lint knob that shapes the report —
    including [comm] and [contention].  Solver
    behavior is versioned separately by {!config_fingerprint}; a result
    cache must key on both.  [jobs]/[shard]/[journal]/[resume] are
    excluded — they never change the report.  Exposed for the serve
    store and tests; the format is not a stability guarantee. *)

type report = {
  outcome : Integerize.outcome;
  choices_enumerated : int;
  choices_solved : int;  (** GPs that returned a usable point *)
  best_continuous : float;  (** best continuous objective across choices *)
  solve_totals : Gp.Solver.totals;
      (** solver telemetry summed over {e every} GP solve of the sweep,
          feasible or not, accumulated in deterministic enumeration
          order.  For retried pairs only the final attempt's stats are
          counted — one logical solve per pair, mirroring dedupe
          replays; [robust.retries] counts the extra attempts. *)
  failures : Robust.failure list;
      (** quarantined pairs (crashed or deadline-exceeded solves, crashed
          integerizations) in enumeration order — solve-stage failures
          first, then integerization-stage ones.  The run succeeds as
          long as any pair survives; an empty list means a clean sweep.
          Dedupe replicas of a quarantined representative appear here
          too, relabeled with their own provenance. *)
  pruned : (string * Analysis.Presolve.proof) list;
      (** presolve-pruned pairs in enumeration order, as (provenance,
          infeasibility proof) — empty unless [config.presolve = Prune].
          Every proof was re-verified by
          {!Analysis.Certificate.check_prune} before the pair was
          pruned, and is journaled with the pair so audits can re-check
          it offline. *)
}

val run :
  ?config:config ->
  Archspec.Technology.t ->
  Formulate.arch_mode ->
  Formulate.objective ->
  Workload.Nest.t ->
  (report, string) result

val dataflow :
  ?config:config ->
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  Formulate.objective ->
  Workload.Nest.t ->
  (report, string) result

val codesign :
  ?config:config ->
  Archspec.Technology.t ->
  area_budget:float ->
  Formulate.objective ->
  Workload.Nest.t ->
  (report, string) result
