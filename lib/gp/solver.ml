module Vec = Linalg.Vec
module Mat = Linalg.Mat
module P = Symexpr.Posynomial
module M = Symexpr.Monomial

type status = Optimal | Infeasible | Iteration_limit

type solution = { status : status; values : (string * float) list; objective : float }

let lookup sol x =
  match List.assoc_opt x sol.values with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Gp.Solver.lookup: no variable %S in the solution (solution carries: %s)"
         x
         (match sol.values with
         | [] -> "no variables"
         | vs -> String.concat ", " (List.map fst vs)))

let env sol x = lookup sol x

(* ------------------------------------------------------------------ *)
(* Telemetry                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable phase1_outer : int;
  mutable phase2_outer : int;
  mutable newton_iters : int;
  mutable backtracks : int;
  mutable kkt_regularizations : int;
  mutable duality_gap : float;
}

let fresh_stats () =
  {
    phase1_outer = 0;
    phase2_outer = 0;
    newton_iters = 0;
    backtracks = 0;
    kkt_regularizations = 0;
    duality_gap = nan;
  }

let reset_stats st =
  st.phase1_outer <- 0;
  st.phase2_outer <- 0;
  st.newton_iters <- 0;
  st.backtracks <- 0;
  st.kkt_regularizations <- 0;
  st.duality_gap <- nan

type totals = {
  solves : int;
  t_phase1_outer : int;
  t_phase2_outer : int;
  t_newton_iters : int;
  t_backtracks : int;
  t_kkt_regularizations : int;
  max_duality_gap : float;
}

let zero_totals =
  {
    solves = 0;
    t_phase1_outer = 0;
    t_phase2_outer = 0;
    t_newton_iters = 0;
    t_backtracks = 0;
    t_kkt_regularizations = 0;
    max_duality_gap = 0.0;
  }

let accumulate t s =
  {
    solves = t.solves + 1;
    t_phase1_outer = t.t_phase1_outer + s.phase1_outer;
    t_phase2_outer = t.t_phase2_outer + s.phase2_outer;
    t_newton_iters = t.t_newton_iters + s.newton_iters;
    t_backtracks = t.t_backtracks + s.backtracks;
    t_kkt_regularizations = t.t_kkt_regularizations + s.kkt_regularizations;
    max_duality_gap =
      (if Float.is_finite s.duality_gap then Float.max t.max_duality_gap s.duality_gap
       else t.max_duality_gap);
  }

let pp_totals ppf t =
  Format.fprintf ppf
    "solves=%d phase1-outer=%d phase2-outer=%d newton=%d backtracks=%d kkt-reg=%d max-gap=%.3g"
    t.solves t.t_phase1_outer t.t_phase2_outer t.t_newton_iters t.t_backtracks
    t.t_kkt_regularizations t.max_duality_gap

let log_src = Logs.Src.create "gp.solver" ~doc:"Geometric-program solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Lowering to log space                                              *)
(* ------------------------------------------------------------------ *)

let compile_posynomial n index p =
  let term m =
    let a = Vec.create n in
    List.iter (fun (x, e) -> a.(Hashtbl.find index x) <- e) (M.exponents m);
    (a, log (M.coeff m))
  in
  Smooth.log_sum_exp n (List.map term (P.terms p))

(* Equality rows: monomial [c * prod t^a = 1] becomes [a . y = -log c]. *)
let equality_rows n index eqs =
  let row (_, m) =
    let a = Vec.create n in
    List.iter (fun (x, e) -> a.(Hashtbl.find index x) <- e) (M.exponents m);
    (a, -.log (M.coeff m))
  in
  List.map row eqs

(* ------------------------------------------------------------------ *)
(* Equality-constrained Newton centering                              *)
(* ------------------------------------------------------------------ *)

(* Minimize  barrier_t * f0(y) - sum_i log (-f_i(y))  subject to [a] y
   fixed to its value at [y0] (the start must satisfy the equalities and
   be strictly feasible for the inequalities). *)
let centering ~st ~barrier_t ~(objective : Smooth.t) ~(ineqs : Smooth.t list) ~rows y0 =
  let n = Vec.dim y0 in
  let p = List.length rows in
  let phi y =
    let acc = ref (barrier_t *. objective.Smooth.value y) in
    let ok = ref true in
    List.iter
      (fun (g : Smooth.t) ->
        let v = g.Smooth.value y in
        if v >= 0.0 then ok := false else acc := !acc -. log (-.v))
      ineqs;
    if !ok then Some !acc else None
  in
  let y = ref (Vec.copy y0) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 80 do
    incr iter;
    st.newton_iters <- st.newton_iters + 1;
    let v0, g0, h0 = objective.Smooth.eval !y in
    ignore v0;
    let grad = Vec.scale barrier_t g0 in
    let hess = Mat.scale barrier_t h0 in
    List.iter
      (fun (g : Smooth.t) ->
        let vi, gi, hi = g.Smooth.eval !y in
        (* vi < 0 by the line-search invariant *)
        let inv = -1.0 /. vi in
        for i = 0 to n - 1 do
          grad.(i) <- grad.(i) +. (inv *. gi.(i))
        done;
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Mat.add_to hess i j ((inv *. Mat.get hi i j) +. (inv *. inv *. gi.(i) *. gi.(j)))
          done
        done)
      ineqs;
    (* Newton step, keeping A y = const: KKT system
       [H A^T; A 0] [dy; w] = [-grad; 0]. *)
    let solve_kkt reg =
      let dim = n + p in
      let kkt = Mat.create dim dim in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.set kkt i j (Mat.get hess i j)
        done;
        Mat.add_to kkt i i reg
      done;
      List.iteri
        (fun k (a, _) ->
          for j = 0 to n - 1 do
            Mat.set kkt (n + k) j a.(j);
            Mat.set kkt j (n + k) a.(j)
          done)
        rows;
      let rhs = Vec.create dim in
      for i = 0 to n - 1 do
        rhs.(i) <- -.grad.(i)
      done;
      Vec.slice (Mat.lu_solve kkt rhs) 0 n
    in
    let dy =
      let rec attempt reg tries =
        match solve_kkt reg with
        | dy -> Some dy
        | exception Mat.Singular ->
          if tries <= 0 then None
          else begin
            st.kkt_regularizations <- st.kkt_regularizations + 1;
            attempt (reg *. 100.0) (tries - 1)
          end
      in
      attempt 1e-9 6
    in
    match dy with
    | None ->
      (* The KKT system is numerically singular even with heavy
         regularization: accept the current (feasible) point. *)
      converged := true
    | Some dy ->
    let slope = Vec.dot grad dy in
    let lambda2 = -.slope in
    if lambda2 /. 2.0 < 1e-10 then converged := true
    else begin
      (* Backtracking line search with the strict-feasibility invariant. *)
      let phi0 =
        match phi !y with
        | Some v -> v
        | None -> invalid_arg "Gp.Solver: centering started at an infeasible point"
      in
      let rec search alpha tries =
        if tries <= 0 then None
        else begin
          let cand = Vec.axpy alpha dy !y in
          match phi cand with
          | Some v when v <= phi0 +. (0.25 *. alpha *. slope) -> Some cand
          | _ ->
            st.backtracks <- st.backtracks + 1;
            search (alpha /. 2.0) (tries - 1)
        end
      in
      match search 1.0 60 with
      | Some cand -> y := cand
      | None -> converged := true (* cannot make progress; accept the point *)
    end
  done;
  !y

(* ------------------------------------------------------------------ *)
(* Barrier loop                                                       *)
(* ------------------------------------------------------------------ *)

let barrier ?(stop_early = fun _ -> false) ~st ~phase ~tol ~max_outer ~objective ~ineqs
    ~rows y0 =
  let m = List.length ineqs in
  let tick () =
    match phase with
    | `One -> st.phase1_outer <- st.phase1_outer + 1
    | `Two -> st.phase2_outer <- st.phase2_outer + 1
  in
  if m = 0 then begin
    if phase = `Two then st.duality_gap <- 0.0;
    (centering ~st ~barrier_t:1.0 ~objective ~ineqs ~rows y0, true)
  end
  else begin
    let y = ref y0 in
    let t = ref 1.0 in
    let mu = 20.0 in
    let outer = ref 0 in
    let done_ = ref false in
    let clean = ref false in
    while not !done_ do
      incr outer;
      tick ();
      y := centering ~st ~barrier_t:!t ~objective ~ineqs ~rows !y;
      if stop_early !y then begin
        done_ := true;
        clean := true
      end
      else if float_of_int m /. !t < tol then begin
        done_ := true;
        clean := true
      end
      else if !outer >= max_outer then done_ := true
      else t := !t *. mu
    done;
    if phase = `Two then st.duality_gap <- float_of_int m /. !t;
    (!y, !clean)
  end

(* ------------------------------------------------------------------ *)
(* Phase I                                                            *)
(* ------------------------------------------------------------------ *)

(* G(y, s) = f(y) - s over n + 1 variables. *)
let minus_slack n (f : Smooth.t) =
  let base = Smooth.extend f 1 in
  let value y = base.Smooth.value y -. y.(n) in
  let eval y =
    let v, g, h = base.Smooth.eval y in
    g.(n) <- g.(n) -. 1.0;
    (v -. y.(n), g, h)
  in
  { Smooth.dim = n + 1; eval; value }

(* Find a point satisfying the equalities and strictly satisfying the
   inequalities, or decide that none exists. *)
let phase1 ~st ~tol ~max_outer n (ineqs : Smooth.t list) rows y0 =
  let strictly_ok y = List.for_all (fun (g : Smooth.t) -> g.Smooth.value y < -1e-9) ineqs in
  if strictly_ok y0 then Some y0
  else begin
    let n1 = n + 1 in
    let s_dir = Vec.init n1 (fun i -> if i = n then 1.0 else 0.0) in
    let objective = Smooth.linear n1 s_dir 0.0 in
    let g_ineqs = List.map (minus_slack n) ineqs in
    (* Keep s bounded below so the phase-I problem is bounded. *)
    let lower = Smooth.linear n1 (Vec.scale (-1.0) s_dir) (-20.0) in
    let rows1 = List.map (fun (a, d) -> (Vec.concat a [| 0.0 |], d)) rows in
    let s0 =
      List.fold_left (fun acc (g : Smooth.t) -> Float.max acc (g.Smooth.value y0)) 0.0 ineqs
      +. 1.0
    in
    let start = Vec.concat y0 [| s0 |] in
    let stop_early y = y.(n) < -0.5 in
    let y1, _ =
      barrier ~stop_early ~st ~phase:`One ~tol ~max_outer ~objective
        ~ineqs:(lower :: g_ineqs) ~rows:rows1 start
    in
    let y = Vec.slice y1 0 n in
    if strictly_ok y then Some y else None
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let least_norm_start n rows =
  match rows with
  | [] -> Vec.create n
  | _ ->
    (* y0 = A^T z with (A A^T + eps I) z = d: minimum-norm solution of the
       (assumed full-rank) equality system, regularized for safety. *)
    let p = List.length rows in
    let arr = Array.of_list rows in
    let gram =
      Mat.init p p (fun i j ->
          Vec.dot (fst arr.(i)) (fst arr.(j)) +. if i = j then 1e-12 else 0.0)
    in
    let d = Vec.init p (fun i -> snd arr.(i)) in
    let z = Mat.lu_solve gram d in
    let y = Vec.create n in
    Array.iteri
      (fun i (a, _) ->
        for j = 0 to n - 1 do
          y.(j) <- y.(j) +. (z.(i) *. a.(j))
        done)
      arr;
    y

let solve ?(tol = 1e-8) ?(max_outer = 60) ?stats problem =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  reset_stats st;
  let vars = Problem.variables problem in
  let n = List.length vars in
  let index = Hashtbl.create (2 * n) in
  List.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let objective = compile_posynomial n index (Problem.objective problem) in
  let ineqs = List.map (fun (_, p) -> compile_posynomial n index p) (Problem.ineqs problem) in
  let rows0 = equality_rows n index (Problem.eqs problem) in
  (* Constant equalities reduce to 0 = d: inconsistent unless d ~ 0. *)
  let inconsistent = ref false in
  let rows =
    List.filter
      (fun (a, d) ->
        if Vec.norm_inf a > 0.0 then true
        else begin
          if Float.abs d > 1e-9 then inconsistent := true;
          false
        end)
      rows0
  in
  let extract status y =
    let envt = Array.map exp y in
    let values = List.mapi (fun i x -> (x, envt.(i))) vars in
    let lookup_env x = envt.(Hashtbl.find index x) in
    { status; values; objective = P.eval lookup_env (Problem.objective problem) }
  in
  if !inconsistent then { status = Infeasible; values = []; objective = nan }
  else begin
    (* Any residual numerical failure is reported as infeasibility of this
       program rather than escaping to the caller: the driver treats such
       choices as unusable and moves on. *)
    match
      let y0 = least_norm_start n rows in
      match phase1 ~st ~tol:1e-6 ~max_outer n ineqs rows y0 with
      | None ->
        Log.debug (fun m -> m "phase I failed: problem infeasible");
        { status = Infeasible; values = []; objective = nan }
      | Some y_feas ->
        let y_opt, clean =
          barrier ~st ~phase:`Two ~tol ~max_outer ~objective ~ineqs ~rows y_feas
        in
        extract (if clean then Optimal else Iteration_limit) y_opt
    with
    | solution -> solution
    | exception Mat.Singular ->
      Log.debug (fun m -> m "numerical failure: treating the program as infeasible");
      { status = Infeasible; values = []; objective = nan }
  end
