(** Symbolic data-footprint and data-volume expressions — the paper's
    Algorithm 1, generalized over the nest's tensors and the canonical
    4-level hierarchy.

    Trip counts are symbolic variables named by {!Mapspace.Level.trip_var}
    ([t<level>.<dim>]); the expressions produced here become the capacity
    constraints and the objective of the geometric program.

    The construction per tensor and temporal level [l], given the
    footprint at level [l-1], walks the level's permutation inner to
    outer:

    - while the copy can still be hoisted, iterators absent from the
      tensor reference are skipped;
    - the innermost present iterator folds into the footprint
      ([replace c -> c_l * c], the sliding-window union) and stops
      hoisting;
    - every remaining iterator multiplies the volume (and present ones
      also extend the footprint).

    A level permutation lists only the iterators actually tiled at that
    level (untiled iterators never generate loops); spatial trip counts
    multiply volumes only through dims present in the tensor (multicast). *)

type volume = {
  prefix : Symexpr.Monomial.t;
      (** product of the trip counts surrounding the hoisted copy *)
  body : Symexpr.Footprint.t;  (** footprint of one (union) copy *)
}

val volume_posynomial : volume -> Symexpr.Posynomial.t
(** The relaxed (posynomial) view used in the GP objective. *)

val volume_eval_exact : (string -> float) -> volume -> float
(** Exact evaluation, halo constants included. *)

type tensor_volumes = {
  tensor : string;
  read_write : bool;
  register_footprint : Symexpr.Footprint.t;
      (** per-PE register-buffer words: footprint of the level-0 tile *)
  sram_footprint : Symexpr.Footprint.t;
      (** SRAM-buffer words: footprint of the tile through the spatial
          level *)
  sram_to_reg : volume;
      (** words read from SRAM into register files over the whole
          execution (multicast counted once); read-write tensors move the
          same volume back *)
  dram_to_sram : volume;
}

type t = {
  nest : Workload.Nest.t;
  pe_perm : string list;  (** level-1 permutation, outer to inner *)
  dram_perm : string list;  (** level-3 permutation, outer to inner *)
  per_tensor : tensor_volumes list;
}

val analyze :
  Workload.Nest.t -> pe_perm:string list -> dram_perm:string list -> t
(** [analyze nest ~pe_perm ~dram_perm] builds the symbolic expressions for
    every tensor of the nest.  Each permutation must be a list of distinct
    nest dims (a subset: dims not listed are untiled at that level).
    Raises [Invalid_argument] otherwise. *)

val construct :
  level:int ->
  perm:string list ->
  tensor:Workload.Nest.tensor ->
  Symexpr.Footprint.t ->
  Symexpr.Footprint.t * volume
(** One step of Algorithm 1: [(df_l, dv_l)] from the lower-level footprint
    and the level's permutation (outer to inner).  Exposed for testing
    against the paper's Table I trace. *)

val register_tile_footprint : Workload.Nest.tensor -> Symexpr.Footprint.t
(** [DF^0]: the footprint of one register tile in level-0 trip counts. *)

(** {2 Arbitrary level structures}

    The paper's Algorithm 1 supports any number of tiling levels; the
    canonical 4-level hierarchy above is one instance.  The generic
    analysis takes the level structure innermost-first — [Temporal perm]
    levels carry an outer-to-inner iterator permutation, [Spatial] levels
    have no meaningful order — and produces, per tensor, the symbolic
    footprint and fill volume at every temporal boundary (level index
    [>= 1]), with the same semantics as {!Accmodel.Counts}. *)

type level_spec = Temporal of string list | Spatial

type boundary = {
  level : int;
  footprint : Symexpr.Footprint.t;
      (** buffer words at this boundary: tile through [level - 1] *)
  fill : volume;  (** words moved into the storage below across the run *)
}

type general = {
  g_nest : Workload.Nest.t;
  g_levels : level_spec list;
  g_tensors : (string * bool * boundary list) list;
      (** (tensor, read_write, one entry per temporal level >= 1) *)
}

val analyze_general : Workload.Nest.t -> levels:level_spec list -> general
(** Raises [Invalid_argument] if level 0 is not temporal, or a
    permutation is malformed.  [analyze] is equivalent to the canonical
    instance [Temporal _; Temporal pe; Spatial; Temporal dram]. *)

val fingerprint : t -> string
(** A canonical serialization of all volume expressions, used to prune
    permutation choices that induce identical cost models. *)
