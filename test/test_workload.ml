(* Tests for the loop-nest abstraction, conv builder and Table II zoo. *)

module Nest = Workload.Nest
module Conv = Workload.Conv

let approx a b = Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs b)

let test_matmul_structure () =
  let n = Workload.Matmul.nest ~ni:4 ~nj:8 ~nk:16 () in
  Alcotest.(check (list string)) "dims" [ "i"; "j"; "k" ] (Nest.dim_names n);
  Alcotest.(check int) "extent j" 8 (Nest.extent n "j");
  Alcotest.(check bool) "ops" true (approx 512.0 (Nest.ops n));
  let c = Nest.tensor n "C" in
  Alcotest.(check bool) "C is rw" true c.Nest.read_write;
  Alcotest.(check (list string)) "C iters" [ "i"; "j" ] (Nest.iters_of_tensor c);
  Alcotest.(check bool) "C words" true (approx 32.0 (Nest.tensor_words n c))

let test_conv_nest () =
  let l = Conv.make ~name:"l" ~k:8 ~c:4 ~hw:16 ~rs:3 ~stride:2 () in
  Alcotest.(check int) "out h" 8 (Conv.out_height l);
  let n = Conv.to_nest l in
  Alcotest.(check (list string))
    "dims" [ "n"; "k"; "c"; "r"; "s"; "h"; "w" ] (Nest.dim_names n);
  Alcotest.(check bool) "macs" true (approx (Conv.macs l) (Nest.ops n));
  Alcotest.(check bool)
    "macs value" true
    (approx (8.0 *. 4.0 *. 9.0 *. 64.0) (Nest.ops n));
  let inp = Nest.tensor n "In" in
  Alcotest.(check bool) "In mentions r" true (Nest.tensor_mentions inp "r");
  Alcotest.(check bool) "In not rw" false inp.Nest.read_write;
  (* The In spatial projection is 2*h + r: over the full output extent 8
     and kernel 3, the span is 2*8 + 3 - 2 = 17 (same-padding halo). *)
  let words = Nest.tensor_words n inp in
  Alcotest.(check bool) (Printf.sprintf "In words %g" words) true (approx (1.0 *. 4.0 *. 17.0 *. 17.0) words)

let test_conv_1x1 () =
  let l = Conv.make ~name:"l" ~k:8 ~c:4 ~hw:16 ~rs:1 () in
  let n = Conv.to_nest l in
  Alcotest.(check int) "r extent 1" 1 (Nest.extent n "r");
  Alcotest.(check bool) "macs" true (approx (8.0 *. 4.0 *. 256.0) (Nest.ops n))

let test_validation () =
  Alcotest.check_raises "bad extent"
    (Invalid_argument "Nest.make: dimension \"i\" has extent 0") (fun () ->
      ignore
        (Nest.make ~name:"bad" ~dims:[ { Nest.dim_name = "i"; extent = 0 } ] ~tensors:[]));
  Alcotest.check_raises "undeclared iter"
    (Invalid_argument "Nest.make: tensor \"T\" references undeclared iterator \"z\"")
    (fun () ->
      ignore
        (Nest.make ~name:"bad"
           ~dims:[ { Nest.dim_name = "i"; extent = 2 } ]
           ~tensors:
             [
               {
                 Nest.tensor_name = "T";
                 projections = [ [ { Nest.stride = 1; iter = "z" } ] ];
                 read_write = false;
               };
             ]));
  Alcotest.check_raises "duplicate dim"
    (Invalid_argument "Nest.make: duplicate dimension \"i\"") (fun () ->
      ignore
        (Nest.make ~name:"bad"
           ~dims:
             [ { Nest.dim_name = "i"; extent = 2 }; { Nest.dim_name = "i"; extent = 3 } ]
           ~tensors:[]))

let test_zoo_shapes () =
  Alcotest.(check int) "resnet has 12 layers" 12 (List.length Workload.Zoo.resnet18);
  Alcotest.(check int) "yolo has 11 layers" 11 (List.length Workload.Zoo.yolo9000);
  let r1 = Workload.Zoo.find "resnet-1" in
  Alcotest.(check int) "resnet-1 K" 64 r1.Conv.out_channels;
  Alcotest.(check int) "resnet-1 kernel" 7 r1.Conv.kernel;
  Alcotest.(check int) "resnet-1 stride" 2 r1.Conv.stride;
  Alcotest.(check int) "resnet-1 out 112" 112 (Conv.out_height r1);
  let y11 = Workload.Zoo.find "yolo-11" in
  Alcotest.(check int) "yolo-11 K" 28269 y11.Conv.out_channels;
  Alcotest.(check int) "yolo-11 C" 1024 y11.Conv.in_channels;
  let y1 = Workload.Zoo.find "yolo-1" in
  Alcotest.(check int) "yolo-1 HW" 544 y1.Conv.in_height;
  Alcotest.(check bool)
    "all yolo layers stride 1" true
    (List.for_all (fun l -> l.Conv.stride = 1) Workload.Zoo.yolo9000);
  Alcotest.(check int)
    "resnet stride-2 layers" 6
    (List.length (List.filter (fun l -> l.Conv.stride = 2) Workload.Zoo.resnet18))

let test_extra_pipelines () =
  Alcotest.(check int) "alexnet has 5 conv layers" 5 (List.length Workload.Zoo.alexnet);
  Alcotest.(check int) "vgg16 has 13 conv layers" 13 (List.length Workload.Zoo.vgg16);
  let a1 = Workload.Zoo.find "alexnet-1" in
  Alcotest.(check int) "alexnet-1 kernel" 11 a1.Conv.kernel;
  Alcotest.(check int) "alexnet-1 stride" 4 a1.Conv.stride;
  Alcotest.(check int) "alexnet-1 out" 56 (Conv.out_height a1);
  Alcotest.(check bool)
    "vgg all 3x3 stride 1" true
    (List.for_all
       (fun l -> l.Conv.kernel = 3 && l.Conv.stride = 1)
       Workload.Zoo.vgg16);
  Alcotest.(check int) "four pipelines" 4 (List.length Workload.Zoo.pipelines)

let test_zoo_nests_valid () =
  (* Every zoo layer must produce a well-formed nest. *)
  List.iter
    (fun l ->
      let n = Conv.to_nest l in
      Alcotest.(check bool)
        (Printf.sprintf "%s ops positive" l.Conv.layer_name)
        true
        (Nest.ops n > 0.0))
    Workload.Zoo.all_layers

let prop_conv_macs_match_nest =
  let gen =
    QCheck2.Gen.(
      let* k = int_range 1 64 in
      let* c = int_range 1 64 in
      let* hw = int_range 1 64 in
      let* rs = oneofl [ 1; 3; 5; 7 ] in
      let* stride = oneofl [ 1; 2 ] in
      let* batch = int_range 1 4 in
      return (k, c, hw, rs, stride, batch))
  in
  QCheck2.Test.make ~name:"Conv.macs = Nest.ops" ~count:200 gen
    (fun (k, c, hw, rs, stride, batch) ->
      let l = Conv.make ~name:"p" ~batch ~k ~c ~hw ~rs ~stride () in
      approx (Conv.macs l) (Nest.ops (Conv.to_nest l)))

let () =
  Alcotest.run "workload"
    [
      ( "nest",
        [
          Alcotest.test_case "matmul" `Quick test_matmul_structure;
          Alcotest.test_case "conv" `Quick test_conv_nest;
          Alcotest.test_case "1x1 conv" `Quick test_conv_1x1;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "table II shapes" `Quick test_zoo_shapes;
          Alcotest.test_case "extra pipelines" `Quick test_extra_pipelines;
          Alcotest.test_case "nests valid" `Quick test_zoo_nests_valid;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_conv_macs_match_nest ]);
    ]
