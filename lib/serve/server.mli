(** The co-design daemon (DESIGN §14): a long-lived server answering
    length-prefixed JSON requests ({!Wire}, {!Protocol}) over a Unix or
    TCP socket.

    One accept thread hands each connection to its own handler thread;
    handlers run optimizations directly, so the solve parallelism is the
    shared {!Exec.Pool} exactly as in the CLI.  Admission control
    ({!Robust.Admission}) bounds concurrently-served requests — an
    over-limit request gets a structured [Rejected] response instead of
    queueing.  Responses are rendered by {!Render} and persisted in the
    {!Store}, so a warm answer is byte-identical to a cold one and to
    the corresponding CLI run.

    Counters (registered under the DESIGN §9 contract; recording is
    enabled on {!start}):
    - [serve.requests] — well-formed decoded requests (malformed frames
      and payloads are answered but not counted);
    - [serve.cache_hits] — requests answered from the store;
    - [serve.cache_misses] — requests that went to the solver (every
      solve-type request when the daemon runs without a store);
    - [serve.rejected] — requests turned away by admission control.

    For a serial client the counters are pure functions of the request
    sequence and the store state; identical concurrent requests are
    single-flighted (the followers re-read the store after the leader
    lands), so a request set still produces one miss per distinct key.
    [serve.rejected] is the documented exception: it counts overload,
    which only concurrent arrival can produce. *)

type where =
  | Unix_sock of string  (** path; a stale socket file is replaced *)
  | Tcp of int  (** port on 127.0.0.1; 0 picks an ephemeral port *)

type config = {
  where : where;
  store_dir : string option;  (** [None] disables the result store *)
  base : Thistle.Optimize.config;
      (** solver-side settings; per-request knobs ({!Protocol.opts})
          overlay it, everything else is versioned by
          {!Thistle.Optimize.config_fingerprint} *)
  max_inflight : int;  (** admission limit for solve-type requests *)
  max_frame : int;  (** per-connection request frame cap *)
}

val default : where -> config

type t

val start : config -> (t, string) result
val address : t -> Unix.sockaddr
(** The bound address — resolves [Tcp 0] to the actual port. *)

val wait : t -> unit
(** Block until {!stop} (from another thread or a signal handler). *)

val stop : t -> unit
(** Idempotent: stop accepting, shut down live connections, join every
    thread, unlink a Unix socket path. *)
