type t = { terms : (int * Monomial.t) list; constant : int }

let make terms constant =
  List.iter
    (fun (stride, _) ->
      if stride <= 0 then invalid_arg "Affine_dim.make: stride must be positive")
    terms;
  { terms; constant }

let of_extent m = make [ (1, m) ] 0

let terms d = d.terms

let constant d = d.constant

let subst x m' d =
  { d with terms = List.map (fun (s, m) -> (s, Monomial.subst x m' m)) d.terms }

let bind x v d =
  { d with terms = List.map (fun (s, m) -> (s, Monomial.bind x v m)) d.terms }

let mentions d x = List.exists (fun (_, m) -> Monomial.mentions m x) d.terms

let eval_exact env d =
  List.fold_left
    (fun acc (s, m) -> acc +. (float_of_int s *. Monomial.eval env m))
    (float_of_int d.constant) d.terms

let to_posynomial d =
  let stride_terms =
    List.map (fun (s, m) -> Monomial.scale (float_of_int s) m) d.terms
  in
  let with_const =
    if d.constant > 0 then Monomial.const (float_of_int d.constant) :: stride_terms
    else stride_terms
  in
  Posynomial.of_monomials with_const

let equal a b = a.constant = b.constant && List.equal (fun (s1, m1) (s2, m2) -> s1 = s2 && Monomial.equal m1 m2) a.terms b.terms

let pp ppf d =
  Format.fprintf ppf "(";
  List.iteri
    (fun i (s, m) ->
      if i > 0 then Format.fprintf ppf " + ";
      if s <> 1 then Format.fprintf ppf "%d*" s;
      Monomial.pp ppf m)
    d.terms;
  if d.constant <> 0 then Format.fprintf ppf " %+d" d.constant;
  Format.fprintf ppf ")"
