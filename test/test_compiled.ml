(* Bit-for-bit equivalence of the compiled evaluation kernels
   (Gp.Compiled) against the reference list path (Gp.Smooth).  The
   compiled kernel's contract is exact: same values, gradients and
   Hessians down to the last bit, for any finite inputs — this is what
   lets the solver switch kernels without perturbing results beyond the
   KKT factorization itself. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let bits = Int64.bits_of_float

let same_float a b = Int64.equal (bits a) (bits b)

let check_bits name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %h (%Lx), got %h (%Lx)" name expected (bits expected)
       actual (bits actual))
    true (same_float expected actual)

(* Evaluate both paths and compare value / full gradient / full Hessian
   bitwise.  The compiled kernel only writes support entries, so the
   buffers start zeroed — off-support entries of the dense path are
   always [+0.0] (sums from a [+0.0] start can never produce [-0.0]). *)
let agree_on name (smooth : Gp.Smooth.t) compiled y =
  let n = smooth.Gp.Smooth.dim in
  check_bits (name ^ " value") (smooth.Gp.Smooth.value y) (Gp.Compiled.value compiled y);
  let v_ref, g_ref, h_ref = smooth.Gp.Smooth.eval y in
  let grad = Vec.create n in
  let hess = Mat.create n n in
  let v = Gp.Compiled.eval_into compiled y ~grad ~hess in
  check_bits (name ^ " eval value") v_ref v;
  for i = 0 to n - 1 do
    check_bits (Printf.sprintf "%s grad.(%d)" name i) g_ref.(i) grad.(i)
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      check_bits
        (Printf.sprintf "%s hess.(%d,%d)" name i j)
        (Mat.get h_ref i j) (Mat.get hess i j)
    done
  done

(* --- unit cases --- *)

let test_single_term () =
  let n = 3 in
  let terms = [ (Vec.of_list [ 1.0; -2.0; 0.0 ], log 3.0) ] in
  agree_on "single" (Gp.Smooth.log_sum_exp n terms) (Gp.Compiled.of_terms n terms)
    (Vec.of_list [ 0.3; -1.2; 7.0 ])

let test_constant_term () =
  (* A term with an all-zero row (a constant monomial). *)
  let n = 2 in
  let terms =
    [ (Vec.of_list [ 0.0; 0.0 ], log 2.0); (Vec.of_list [ 1.0; 1.0 ], 0.0) ]
  in
  agree_on "const-term" (Gp.Smooth.log_sum_exp n terms) (Gp.Compiled.of_terms n terms)
    (Vec.of_list [ -0.4; 0.9 ])

let test_affine_matches_linear () =
  let n = 4 in
  let a = Vec.of_list [ 0.5; 0.0; -1.25; 0.0 ] in
  let smooth = Gp.Smooth.linear n a 0.75 in
  let compiled = Gp.Compiled.affine n [ (0, 0.5); (2, -1.25) ] 0.75 in
  agree_on "affine" smooth compiled (Vec.of_list [ 1.0; 2.0; 3.0; 4.0 ])

let test_stale_buffers () =
  (* eval_into must overwrite (not accumulate into) its support block
     even when the buffers carry stale garbage from another function. *)
  let n = 3 in
  let terms = [ (Vec.of_list [ 2.0; 0.0; 1.0 ], 0.1) ] in
  let smooth = Gp.Smooth.log_sum_exp n terms in
  let compiled = Gp.Compiled.of_terms n terms in
  let y = Vec.of_list [ 0.2; 0.4; -0.6 ] in
  let _, g_ref, h_ref = smooth.Gp.Smooth.eval y in
  let grad = Vec.of_list [ 5.0; 5.0; 5.0 ] in
  let hess = Mat.init n n (fun _ _ -> 7.0) in
  ignore (Gp.Compiled.eval_into compiled y ~grad ~hess);
  check_bits "g0" g_ref.(0) grad.(0);
  check_bits "g2" g_ref.(2) grad.(2);
  check_bits "g1 untouched" 5.0 grad.(1);
  check_bits "h00" (Mat.get h_ref 0 0) (Mat.get hess 0 0);
  check_bits "h02" (Mat.get h_ref 0 2) (Mat.get hess 0 2);
  check_bits "h11 untouched" 7.0 (Mat.get hess 1 1);
  check_bits "h01 untouched" 7.0 (Mat.get hess 0 1)

let test_add_linear_slack () =
  (* The phase-I construction G(y, s) = f(y) - s: extend by one
     coordinate, then attach a -1 linear term to it. *)
  let n = 2 in
  let terms =
    [ (Vec.of_list [ 1.0; 0.5 ], 0.2); (Vec.of_list [ -1.0; 2.0 ], -0.3) ]
  in
  let base = Gp.Smooth.log_sum_exp n terms in
  let ext = Gp.Smooth.extend base 1 in
  let smooth =
    {
      Gp.Smooth.dim = n + 1;
      value = (fun y -> ext.Gp.Smooth.value y -. y.(n));
      eval =
        (fun y ->
          let v, g, h = ext.Gp.Smooth.eval y in
          g.(n) <- g.(n) -. 1.0;
          (v -. y.(n), g, h));
    }
  in
  let compiled =
    Gp.Compiled.add_linear (Gp.Compiled.extend (Gp.Compiled.of_terms n terms) 1) n (-1.0)
  in
  agree_on "slack" smooth compiled (Vec.of_list [ 0.7; -0.1; 1.3 ]);
  agree_on "slack at s=0" smooth compiled (Vec.of_list [ 0.7; -0.1; 0.0 ])

let test_rejects_bad_input () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Gp.Compiled.of_terms: empty term list") (fun () ->
      ignore (Gp.Compiled.of_terms 2 []));
  Alcotest.check_raises "descending"
    (Invalid_argument "Gp.Compiled.of_sparse_terms: indices not strictly ascending")
    (fun () -> ignore (Gp.Compiled.of_sparse_terms 3 [ ([ (1, 1.0); (0, 2.0) ], 0.0) ]))

(* --- the property --- *)

let gen_posynomial =
  let open QCheck2.Gen in
  let* n = int_range 2 7 in
  let* nterms = int_range 1 6 in
  let entry =
    (* Mostly structural zeros, like real formulations (each monomial
       mentions a few of the problem variables). *)
    let* zero = frequency [ (6, return true); (4, return false) ] in
    if zero then return 0.0 else float_range (-3.0) 3.0
  in
  let* rows = list_size (return nterms) (array_size (return n) entry) in
  let* bs = list_size (return nterms) (float_range (-4.0) 4.0) in
  let* y = array_size (return n) (float_range (-3.0) 3.0) in
  return (n, List.combine rows bs, y)

let prop_bit_identical =
  QCheck2.Test.make ~name:"compiled kernel is bit-identical to Smooth.log_sum_exp"
    ~count:500 gen_posynomial (fun (n, terms, y) ->
      let smooth = Gp.Smooth.log_sum_exp n terms in
      let compiled = Gp.Compiled.of_terms n terms in
      let ok = ref true in
      let check a b = if not (same_float a b) then ok := false in
      check (smooth.Gp.Smooth.value y) (Gp.Compiled.value compiled y);
      let v_ref, g_ref, h_ref = smooth.Gp.Smooth.eval y in
      let grad = Vec.create n in
      let hess = Mat.create n n in
      let v = Gp.Compiled.eval_into compiled y ~grad ~hess in
      check v_ref v;
      for i = 0 to n - 1 do
        check g_ref.(i) grad.(i);
        for j = 0 to n - 1 do
          check (Mat.get h_ref i j) (Mat.get hess i j)
        done
      done;
      !ok)

let prop_slack_bit_identical =
  QCheck2.Test.make ~name:"compiled slack extension is bit-identical" ~count:200
    gen_posynomial (fun (n, terms, y) ->
      let base = Gp.Smooth.log_sum_exp n terms in
      let ext = Gp.Smooth.extend base 1 in
      let compiled =
        Gp.Compiled.add_linear
          (Gp.Compiled.extend (Gp.Compiled.of_terms n terms) 1)
          n (-1.0)
      in
      let y1 = Vec.concat y [| 0.5 |] in
      let v_ref, g_ref, h_ref = ext.Gp.Smooth.eval y1 in
      g_ref.(n) <- g_ref.(n) -. 1.0;
      let v_ref = v_ref -. y1.(n) in
      let grad = Vec.create (n + 1) in
      let hess = Mat.create (n + 1) (n + 1) in
      let v = Gp.Compiled.eval_into compiled y1 ~grad ~hess in
      let ok = ref true in
      let check a b = if not (same_float a b) then ok := false in
      check v_ref v;
      for i = 0 to n do
        check g_ref.(i) grad.(i);
        for j = 0 to n do
          check (Mat.get h_ref i j) (Mat.get hess i j)
        done
      done;
      !ok)

let () =
  Alcotest.run "compiled"
    [
      ( "units",
        [
          Alcotest.test_case "single term" `Quick test_single_term;
          Alcotest.test_case "constant term" `Quick test_constant_term;
          Alcotest.test_case "affine" `Quick test_affine_matches_linear;
          Alcotest.test_case "stale buffers" `Quick test_stale_buffers;
          Alcotest.test_case "slack extension" `Quick test_add_linear_slack;
          Alcotest.test_case "bad input" `Quick test_rejects_bad_input;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bit_identical; prop_slack_bit_identical ] );
    ]
