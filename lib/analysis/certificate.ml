module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module Mat = Linalg.Mat
module Vec = Linalg.Vec

let pass = "certificate"

type t = {
  objective_value : float;
  violations : (string * float) list;
  max_violation : float;
  kkt_residual : float option;
  diagnostics : Diagnostic.t list;
}

(* Gradient of [log f] with respect to [y = log t] at the point [env]:
   the softmax-weighted sum of the terms' exponent vectors. *)
let log_gradient index n env p =
  let f = P.eval env p in
  let g = Array.make n 0.0 in
  if Float.is_finite f && f > 0.0 then
    List.iter
      (fun m ->
        let w = M.eval env m /. f in
        List.iter
          (fun (x, e) ->
            match Hashtbl.find_opt index x with
            | Some i -> g.(i) <- g.(i) +. (w *. e)
            | None -> ())
          (M.exponents m))
      (P.terms p);
  g

(* Least-squares stationarity residual: fit multipliers over the
   near-active inequalities and all equalities, clamp negative inequality
   multipliers to zero, and report |grad L| / (1 + |grad f0|). *)
let kkt_residual problem env =
  let vars = Gp.Problem.variables problem in
  let n = List.length vars in
  let index = Hashtbl.create n in
  List.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let g0 = log_gradient index n env (Gp.Problem.objective problem) in
  let active =
    List.filter
      (fun (_, p) ->
        let v = P.eval env p in
        Float.is_finite v && v >= 0.99)
      (Gp.Problem.ineqs problem)
  in
  let ineq_grads =
    List.map (fun (_, p) -> log_gradient index n env p) active
  in
  let eq_grads =
    List.map
      (fun (_, m) ->
        let g = Array.make n 0.0 in
        List.iter
          (fun (x, e) ->
            match Hashtbl.find_opt index x with
            | Some i -> g.(i) <- g.(i) +. e
            | None -> ())
          (M.exponents m);
        g)
      (Gp.Problem.eqs problem)
  in
  let columns = Array.of_list (ineq_grads @ eq_grads) in
  let n_ineq = List.length ineq_grads in
  let m = Array.length columns in
  let norm g = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 g) in
  let residual_with lambda =
    let r = Array.copy g0 in
    Array.iteri
      (fun j col ->
        Array.iteri (fun i v -> r.(i) <- r.(i) +. (lambda.(j) *. v)) col)
      columns;
    norm r /. (1.0 +. norm g0)
  in
  if n = 0 then None
  else if m = 0 then Some (residual_with [||])
  else begin
    let dot a b =
      let acc = ref 0.0 in
      Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
      !acc
    in
    let ata =
      Mat.init m m (fun i j ->
          dot columns.(i) columns.(j) +. if i = j then 1e-10 else 0.0)
    in
    let rhs = Vec.init m (fun j -> -.dot columns.(j) g0) in
    match Mat.solve_spd ata rhs with
    | exception Mat.Singular -> None
    | lambda ->
      (* Inequality multipliers must be nonnegative at a KKT point. *)
      Array.iteri
        (fun j v -> if j < n_ineq && v < 0.0 then lambda.(j) <- 0.0)
        lambda;
      let r = residual_with lambda in
      if Float.is_finite r then Some r else None
  end

let check ?(tol = 1e-4) ?provenance problem env =
  let diags = ref [] in
  let emit mk ?constraint_name fmt =
    Printf.ksprintf
      (fun message ->
        diags := mk ~pass ?constraint_name ?provenance message :: !diags)
      fmt
  in
  let error ?constraint_name fmt = emit Diagnostic.error ?constraint_name fmt in
  let warning ?constraint_name fmt =
    emit Diagnostic.warning ?constraint_name fmt
  in
  let objective_value = P.eval env (Gp.Problem.objective problem) in
  if not (Float.is_finite objective_value) then
    error "objective evaluates to %g at the solution" objective_value;
  List.iter
    (fun x ->
      let v = env x in
      if not (Float.is_finite v && v > 0.0) then
        error "variable %s = %g is not finite positive" x v)
    (Gp.Problem.variables problem);
  let violations = Gp.Problem.violations ~tol problem env in
  let max_violation =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 violations
  in
  List.iter
    (fun (name, v) ->
      if not (Float.is_finite v) then
        error ~constraint_name:name
          "constraint evaluates non-finite at the solution"
      else warning ~constraint_name:name "violated by %g (tol %g)" v tol)
    violations;
  let hard = List.exists Diagnostic.is_error !diags in
  let kkt_residual = if hard then None else kkt_residual problem env in
  { objective_value; violations; max_violation; kkt_residual;
    diagnostics = List.rev !diags }

let hard_failure t = List.exists Diagnostic.is_error t.diagnostics

(* ------------------------------------------------------------------ *)
(* Presolve proof checking                                            *)
(* ------------------------------------------------------------------ *)

(* Verification slack for the step-infeasibility and claimed-bound
   comparisons: the checker re-derives every quantity with interval
   arithmetic of its own, so honest proofs agree to rounding while a
   tampered bound misses by construction (presolve only records steps
   that improve an endpoint by more than its own margin). *)
let check_tol = 1e-6

let check_prune problem (proof : Presolve.proof) =
  let exception Reject of string in
  let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt in
  let box = Hashtbl.create 32 in
  List.iter
    (fun x -> Hashtbl.replace box x Interval.full)
    (Gp.Problem.variables problem);
  let env x =
    match Hashtbl.find_opt box x with
    | Some i -> i
    | None -> reject "step references unknown variable %s" x
  in
  let constraint_of name =
    match List.assoc_opt name (Gp.Problem.ineqs problem) with
    | Some p -> `Ineq p
    | None -> (
      match List.assoc_opt name (Gp.Problem.eqs problem) with
      | Some m -> `Eq m
      | None -> reject "unknown constraint %s" name)
  in
  let verify_step (s : Presolve.step) =
    if not (Float.is_finite s.Presolve.bound && s.Presolve.bound > 0.0) then
      reject "step on %s carries non-finite or non-positive bound %g" s.Presolve.var
        s.Presolve.bound;
    let cur = env s.Presolve.var in
    (* The region the step excludes, as a box restriction: x beyond the
       claimed endpoint. *)
    let excluded =
      match s.Presolve.side with
      | Presolve.Hi -> { cur with Interval.lo = s.Presolve.bound }
      | Presolve.Lo -> { cur with Interval.hi = s.Presolve.bound }
    in
    let env' x = if String.equal x s.Presolve.var then excluded else env x in
    (* The step is sound iff the excluded region is infeasible under the
       implying constraint alone: its interval lower bound there reaches
       1 (an inequality or equality pushed too high), or — for a
       lower-bound step from an equality — its upper bound falls to 1. *)
    let ok =
      match (constraint_of s.Presolve.via, s.Presolve.side) with
      | `Ineq p, _ -> (Interval.posynomial env' p).Interval.lo >= 1.0 -. check_tol
      | `Eq m, Presolve.Hi -> (Interval.monomial env' m).Interval.lo >= 1.0 -. check_tol
      | `Eq m, Presolve.Lo -> (Interval.monomial env' m).Interval.hi <= 1.0 +. check_tol
    in
    if not ok then
      reject "step %s %s %g not implied by %s over the replayed box" s.Presolve.var
        (match s.Presolve.side with Presolve.Hi -> "<=" | Presolve.Lo -> ">=")
        s.Presolve.bound s.Presolve.via;
    (* Apply the (verified sound) claimed endpoint. *)
    Hashtbl.replace box s.Presolve.var
      (match s.Presolve.side with
      | Presolve.Hi -> { cur with Interval.hi = Float.min cur.Interval.hi s.Presolve.bound }
      | Presolve.Lo -> { cur with Interval.lo = Float.max cur.Interval.lo s.Presolve.bound })
  in
  try
    List.iter verify_step proof.Presolve.steps;
    let recomputed =
      match (constraint_of proof.Presolve.culprit, proof.Presolve.kind) with
      | `Ineq p, Presolve.Ineq_low -> (Interval.posynomial env p).Interval.lo
      | `Eq m, Presolve.Eq_low -> (Interval.monomial env m).Interval.lo
      | `Eq m, Presolve.Eq_high -> (Interval.monomial env m).Interval.hi
      | `Ineq _, (Presolve.Eq_low | Presolve.Eq_high) | `Eq _, Presolve.Ineq_low ->
        reject "culprit kind does not match the class of constraint %s"
          proof.Presolve.culprit
    in
    if not (Float.is_finite recomputed) then
      reject "culprit %s re-evaluates to non-finite bound %g" proof.Presolve.culprit
        recomputed;
    if
      Float.abs (recomputed -. proof.Presolve.bound)
      > check_tol *. Float.max 1.0 (Float.abs recomputed)
    then
      reject "culprit %s bound mismatch: claimed %g, recomputed %g"
        proof.Presolve.culprit proof.Presolve.bound recomputed;
    let violated =
      match proof.Presolve.kind with
      | Presolve.Ineq_low | Presolve.Eq_low ->
        recomputed > 1.0 +. Presolve.prune_margin
      | Presolve.Eq_high -> recomputed < 1.0 -. Presolve.prune_margin
    in
    if not violated then
      reject "culprit %s bound %g does not violate 1 beyond the margin"
        proof.Presolve.culprit recomputed;
    Ok ()
  with Reject m -> Error m

let pp ppf t =
  Format.fprintf ppf "@[<v>objective %.6g; max violation %.3g; KKT residual %s"
    t.objective_value t.max_violation
    (match t.kkt_residual with Some r -> Printf.sprintf "%.3g" r | None -> "n/a");
  List.iter (fun d -> Format.fprintf ppf "@,%a" Diagnostic.pp d) t.diagnostics;
  Format.fprintf ppf "@]"
