type t = { index : int; count : int }

let full = { index = 1; count = 1 }

let is_full t = t.count = 1

let parse s =
  let s = String.trim s in
  match String.index_opt s '/' with
  | None -> Error (Printf.sprintf "shard: %S is not of the form I/N" s)
  | Some slash ->
    let i_s = String.sub s 0 slash in
    let n_s = String.sub s (slash + 1) (String.length s - slash - 1) in
    (match (int_of_string_opt i_s, int_of_string_opt n_s) with
    | Some i, Some n when n >= 1 && i >= 1 && i <= n -> Ok { index = i; count = n }
    | Some _, Some n when n < 1 ->
      Error (Printf.sprintf "shard: count %d must be >= 1" n)
    | Some i, Some n ->
      Error (Printf.sprintf "shard: index %d is outside 1..%d" i n)
    | _ -> Error (Printf.sprintf "shard: %S is not of the form I/N" s))

let to_string t = Printf.sprintf "%d/%d" t.index t.count

let selects t ~choice = choice mod t.count = t.index - 1

let choice_of ~nplac i = i / Int.max 1 nplac

let placement_of ~nplac i = i mod Int.max 1 nplac

let is_pinned ~nplac i = placement_of ~nplac i = 0

let pair_indices t ~nplac ~npairs =
  let nplac = Int.max 1 nplac in
  let nchoices = npairs / nplac in
  List.concat_map
    (fun c ->
      if selects t ~choice:c then List.init nplac (fun p -> (c * nplac) + p)
      else [])
    (List.init nchoices Fun.id)
