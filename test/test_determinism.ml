(* Determinism regression: the pipeline over a small layer set must
   produce bit-identical results AND bit-identical metric counters for
   `jobs = 1` vs `jobs = 4`, and with tracing on vs off.  This locks in
   the contract documented in obs/metrics.mli: counters are functions of
   the input only (histograms are timing-dependent and excluded), and
   observability must never perturb results. *)

module Pl = Thistle.Pipeline
module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Evaluate = Accmodel.Evaluate
module Mapping = Mapspace.Mapping

let tech = Archspec.Technology.table3

let layers =
  List.map Workload.Conv.to_nest
    [
      Workload.Conv.make ~name:"l-small" ~k:8 ~c:8 ~hw:8 ~rs:3 ();
      Workload.Conv.make ~name:"l-large" ~k:32 ~c:32 ~hw:16 ~rs:3 ();
      Workload.Conv.make ~name:"l-1x1" ~k:16 ~c:32 ~hw:16 ~rs:1 ();
    ]

let budget = 6.0e5
let fast_config = { O.default_config with O.max_choices = 8; top_choices = 1 }

(* A bit-exact textual fingerprint of everything a run reports.  Floats
   go through Int64.bits_of_float so "close enough" can't sneak by.
   Quarantined failures enter through their deterministic fields (site,
   provenance, exception, attempts) — elapsed time is wall clock and
   excluded, like the timing histograms. *)
let failure_sig (f : Robust.failure) =
  Printf.sprintf "%s:%s:%s@%d" f.Robust.site f.Robust.provenance f.Robust.exn
    f.Robust.attempts

let fingerprint (e : Pl.entry) =
  let name = Workload.Nest.name e.Pl.nest in
  match e.Pl.result with
  | Error msg -> Printf.sprintf "%s: error: %s" name msg
  | Ok r ->
    let o = r.O.outcome in
    Format.asprintf
      "%s: arch=%s mapping=(%a) energy=%Lx cycles=%Lx continuous=%Lx enumerated=%d \
       solved=%d tried=%d valid=%d totals=(%a) failures=[%s]"
      name o.I.arch.Arch.arch_name Mapping.pp o.I.mapping
      (Int64.bits_of_float o.I.metrics.Evaluate.energy_pj)
      (Int64.bits_of_float o.I.metrics.Evaluate.cycles)
      (Int64.bits_of_float r.O.best_continuous)
      r.O.choices_enumerated r.O.choices_solved o.I.candidates_tried
      o.I.candidates_valid Gp.Solver.pp_totals r.O.solve_totals
      (String.concat ";" (List.map failure_sig r.O.failures))

(* One instrumented pipeline run; returns fingerprints and the counter
   section of the metrics snapshot, leaving the registry clean. *)
let run ?(config = fast_config) ~jobs ~trace () =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  if trace then Obs.Trace.start ();
  let entries =
    Pl.run_layers
      ~config:{ config with O.jobs }
      tech
      (F.Codesign { area_budget = budget })
      F.Energy layers
  in
  if trace then Obs.Trace.stop ();
  Obs.Metrics.disable ();
  let counters = Obs.Metrics.counters (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  (entries, List.map fingerprint entries, counters)

let check_same label (_, fps_a, counters_a) (_, fps_b, counters_b) =
  Alcotest.(check (list string)) (label ^ ": results") fps_a fps_b;
  Alcotest.(check (list (pair string int))) (label ^ ": counters") counters_a counters_b

let counter_value counters name =
  match List.assoc_opt name counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %S missing" name

let nonvacuous (_, _, counters) =
  let value = counter_value counters in
  Alcotest.(check bool) "solver ran" true (value "solver.solves" > 0);
  Alcotest.(check bool) "outer iterations counted" true (value "solver.outer_iters" > 0);
  Alcotest.(check bool) "newton steps counted" true (value "solver.newton_steps" > 0);
  Alcotest.(check bool) "tasks counted" true (value "exec.tasks" > 0);
  Alcotest.(check bool) "warm starts fired" true (value "solver.warm_starts" > 0);
  Alcotest.(check bool) "integerizer counted" true
    (value "integerize.candidates_tried" > 0)

let test_jobs_independent () =
  let seq = run ~jobs:1 ~trace:false () in
  let par = run ~jobs:4 ~trace:false () in
  nonvacuous seq;
  check_same "jobs 1 vs jobs 4" seq par

(* Same contract under deterministic fault injection: quarantine
   decisions are pure functions of (seed, site, provenance, attempt),
   so which pairs fail, which survive, and every robust.* counter must
   be bit-identical for jobs 1 vs 4. *)
let test_injected_jobs_independent () =
  let inject =
    match Robust.Inject.parse "seed=5,crash@solve=0.25,stall@solve=0.1" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let config = { fast_config with O.inject } in
  let seq = run ~config ~jobs:1 ~trace:false () in
  let par = run ~config ~jobs:4 ~trace:false () in
  let entries, _, counters = seq in
  Alcotest.(check bool) "injection quarantined some pairs" true
    (match List.assoc_opt "robust.quarantined" counters with
    | Some v -> v > 0
    | None -> false);
  Alcotest.(check bool) "some layer still survives" true
    (List.exists (fun e -> Result.is_ok e.Pl.result) entries);
  check_same "injected: jobs 1 vs jobs 4" seq par

let test_trace_independent () =
  let plain = run ~jobs:4 ~trace:false () in
  let traced = run ~jobs:4 ~trace:true () in
  check_same "trace off vs on" plain traced;
  (* The trace itself covers every pipeline stage. *)
  let names =
    List.sort_uniq String.compare
      (List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events ()))
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %S present" expected)
        true (List.mem expected names))
    [ "pipeline"; "layer"; "formulate"; "solve"; "integerize"; "evaluate" ]

(* Replaying a cached solve is bit-identical to re-solving (the replay
   shares the representative's solution and copies its telemetry), so
   switching dedup off must not change any result or counter other than
   solver.cache_hits itself.  Warm starts are disabled on both sides to
   isolate the dedup path. *)
let test_dedupe_independent () =
  let without name = List.filter (fun (k, _) -> k <> name) in
  let cfg dedupe = { fast_config with O.dedupe; warm_start = false } in
  let _, fps_on, counters_on = run ~config:(cfg true) ~jobs:4 ~trace:false () in
  let _, fps_off, counters_off = run ~config:(cfg false) ~jobs:4 ~trace:false () in
  Alcotest.(check (list string)) "dedupe on vs off: results" fps_on fps_off;
  Alcotest.(check (list (pair string int)))
    "dedupe on vs off: counters"
    (without "solver.cache_hits" counters_on)
    (without "solver.cache_hits" counters_off);
  Alcotest.(check int) "dedupe off reports no hits" 0
    (counter_value counters_off "solver.cache_hits")

(* Warm starts change the Newton iteration path, so converged optima may
   differ from cold starts in low-order float bits — but never in which
   integer design point wins or (beyond solver tolerance) in the
   continuous objective. *)
let test_warm_start_outcomes () =
  let cfg warm_start = { fast_config with O.warm_start } in
  let warm, _, counters_warm = run ~config:(cfg true) ~jobs:4 ~trace:false () in
  let cold, _, _ = run ~config:(cfg false) ~jobs:4 ~trace:false () in
  Alcotest.(check bool) "warm starts fired" true
    (counter_value counters_warm "solver.warm_starts" > 0);
  List.iter2
    (fun (w : Pl.entry) (c : Pl.entry) ->
      let name = Workload.Nest.name w.Pl.nest in
      match (w.Pl.result, c.Pl.result) with
      | Error a, Error b -> Alcotest.(check string) (name ^ ": same error") b a
      | Ok w, Ok c ->
        let ow = w.O.outcome and oc = c.O.outcome in
        Alcotest.(check string)
          (name ^ ": same arch")
          oc.I.arch.Arch.arch_name ow.I.arch.Arch.arch_name;
        Alcotest.(check string)
          (name ^ ": same mapping")
          (Format.asprintf "%a" Mapping.pp oc.I.mapping)
          (Format.asprintf "%a" Mapping.pp ow.I.mapping);
        Alcotest.(check (float 1e-9))
          (name ^ ": same integer energy")
          oc.I.metrics.Evaluate.energy_pj ow.I.metrics.Evaluate.energy_pj;
        Alcotest.(check (float 1e-9))
          (name ^ ": same integer cycles")
          oc.I.metrics.Evaluate.cycles ow.I.metrics.Evaluate.cycles;
        Alcotest.(check int)
          (name ^ ": same choices solved")
          c.O.choices_solved w.O.choices_solved;
        let rel = Float.abs (w.O.best_continuous -. c.O.best_continuous) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: continuous objective within tolerance (|Δ| = %.3g)" name
             rel)
          true
          (rel <= 1e-6 *. (1.0 +. Float.abs c.O.best_continuous))
      | Ok _, Error m -> Alcotest.failf "%s: cold run failed: %s" name m
      | Error m, Ok _ -> Alcotest.failf "%s: warm run failed: %s" name m)
    warm cold

(* Presolve reductions (variable fixing, constraint elimination) may
   move the solver's iteration path within tolerance, like warm starts —
   but the selected design point and its integer metrics must be
   bit-identical with the pass on or off, and pruning itself never
   touches a rankable pair.  The presolve.* counters enter the jobs-1
   vs jobs-4 equality above automatically (the default config runs the
   pass in Prune mode). *)
let test_presolve_outcomes () =
  let cfg presolve = { fast_config with O.presolve } in
  let on, _, counters_on = run ~config:(cfg Analysis.Presolve.Prune) ~jobs:4 ~trace:false () in
  let off, _, counters_off = run ~config:(cfg Analysis.Presolve.Off) ~jobs:4 ~trace:false () in
  let value = counter_value counters_off in
  Alcotest.(check int) "off reports no prunes" 0 (value "presolve.pruned");
  Alcotest.(check int) "off fixes nothing" 0 (value "presolve.vars_fixed");
  Alcotest.(check int) "off drops nothing" 0 (value "presolve.constraints_dropped");
  Alcotest.(check bool) "on-mode counters present" true
    (List.mem_assoc "presolve.pruned" counters_on);
  List.iter2
    (fun (w : Pl.entry) (c : Pl.entry) ->
      let name = Workload.Nest.name w.Pl.nest in
      match (w.Pl.result, c.Pl.result) with
      | Error a, Error b -> Alcotest.(check string) (name ^ ": same error") b a
      | Ok w, Ok c ->
        let ow = w.O.outcome and oc = c.O.outcome in
        Alcotest.(check string)
          (name ^ ": same arch")
          oc.I.arch.Arch.arch_name ow.I.arch.Arch.arch_name;
        Alcotest.(check string)
          (name ^ ": same mapping")
          (Format.asprintf "%a" Mapping.pp oc.I.mapping)
          (Format.asprintf "%a" Mapping.pp ow.I.mapping);
        Alcotest.(check int64)
          (name ^ ": bit-identical integer energy")
          (Int64.bits_of_float oc.I.metrics.Evaluate.energy_pj)
          (Int64.bits_of_float ow.I.metrics.Evaluate.energy_pj);
        Alcotest.(check int64)
          (name ^ ": bit-identical integer cycles")
          (Int64.bits_of_float oc.I.metrics.Evaluate.cycles)
          (Int64.bits_of_float ow.I.metrics.Evaluate.cycles);
        let rel = Float.abs (w.O.best_continuous -. c.O.best_continuous) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: continuous objective within tolerance (|Δ| = %.3g)" name
             rel)
          true
          (rel <= 1e-6 *. (1.0 +. Float.abs c.O.best_continuous))
      | Ok _, Error m -> Alcotest.failf "%s: presolve-off run failed: %s" name m
      | Error m, Ok _ -> Alcotest.failf "%s: presolve-on run failed: %s" name m)
    on off

(* The batched kernel groups each wave's pairs by structure key before
   the parallel pool starts, so the same jobs-independence contract must
   hold — including the solver.batch_* counters, which are functions of
   wave membership and structure keys alone. *)
let batched_config = { fast_config with O.gp_kernel = `Batched }

let test_batched_jobs_independent () =
  let seq = run ~config:batched_config ~jobs:1 ~trace:false () in
  let par = run ~config:batched_config ~jobs:4 ~trace:false () in
  nonvacuous seq;
  let _, _, counters = seq in
  Alcotest.(check bool) "structures were batched" true
    (counter_value counters "solver.batch_structures_compiled" > 0);
  Alcotest.(check bool) "members were packed" true
    (counter_value counters "solver.batch_members" > 0);
  check_same "batched: jobs 1 vs jobs 4" seq par

(* Batched vs compiled: bit-identical results AND bit-identical counters
   once the batch bookkeeping counters themselves are set aside — the
   batched kernel changes where structure work happens, never what the
   solver computes. *)
let test_batched_matches_compiled () =
  let without_batch =
    List.filter (fun (k, _) -> not (String.starts_with ~prefix:"solver.batch" k))
  in
  let _, fps_b, counters_b = run ~config:batched_config ~jobs:4 ~trace:false () in
  let _, fps_c, counters_c = run ~config:fast_config ~jobs:4 ~trace:false () in
  Alcotest.(check (list string)) "batched vs compiled: results" fps_c fps_b;
  Alcotest.(check (list (pair string int)))
    "batched vs compiled: counters"
    (without_batch counters_c) (without_batch counters_b);
  Alcotest.(check int) "compiled packs no batches" 0
    (counter_value counters_c "solver.batch_members")

(* Fault injection composes with batching: a crashed or stalled member
   retries and quarantines on its own, leaving the rest of its block
   untouched, with the same fates as the compiled kernel. *)
let test_batched_injected_matches_compiled () =
  let inject =
    match Robust.Inject.parse "seed=5,crash@solve=0.25,stall@solve=0.1" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let without_batch =
    List.filter (fun (k, _) -> not (String.starts_with ~prefix:"solver.batch" k))
  in
  let _, fps_b, counters_b =
    run ~config:{ batched_config with O.inject } ~jobs:4 ~trace:false ()
  in
  let _, fps_c, counters_c =
    run ~config:{ fast_config with O.inject } ~jobs:4 ~trace:false ()
  in
  Alcotest.(check bool) "injection quarantined some pairs" true
    (counter_value counters_b "robust.quarantined" > 0);
  Alcotest.(check (list string)) "injected batched vs compiled: results" fps_c fps_b;
  Alcotest.(check (list (pair string int)))
    "injected batched vs compiled: counters"
    (without_batch counters_c) (without_batch counters_b)

let () =
  Alcotest.run "determinism"
    [
      ( "pipeline",
        [
          Alcotest.test_case "jobs-independent" `Quick test_jobs_independent;
          Alcotest.test_case "injected jobs-independent" `Quick
            test_injected_jobs_independent;
          Alcotest.test_case "trace-independent" `Quick test_trace_independent;
          Alcotest.test_case "dedupe-independent" `Quick test_dedupe_independent;
          Alcotest.test_case "warm-start outcomes" `Quick test_warm_start_outcomes;
          Alcotest.test_case "presolve outcomes" `Quick test_presolve_outcomes;
          Alcotest.test_case "batched jobs-independent" `Quick
            test_batched_jobs_independent;
          Alcotest.test_case "batched matches compiled" `Quick
            test_batched_matches_compiled;
          Alcotest.test_case "batched injected matches compiled" `Quick
            test_batched_injected_matches_compiled;
        ] );
    ]
