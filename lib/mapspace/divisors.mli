(** Divisor arithmetic used by mapping enumeration and by the conversion of
    real-valued solver output to integer tile sizes. *)

val divisors : int -> int list
(** All positive divisors of [n], ascending.  Raises [Invalid_argument] for
    [n < 1]. *)

val is_divisor : int -> of_:int -> bool

val closest : int -> target:float -> count:int -> int list
(** [closest n ~target ~count] is up to [count] divisors of [n] nearest to
    [target] (distance measured in log space, since tile sizes act
    multiplicatively), de-duplicated, ascending. *)

val closest_powers_of_two : target:float -> count:int -> int list
(** Up to [count] powers of two nearest to [target] in log space; always at
    least 1. *)

val factorizations : int -> parts:int -> int list list
(** All ordered ways to write [n] as a product of [parts] positive factors.
    Intended for small [n]; the count grows quickly. *)

val count_factorizations : int -> parts:int -> int
(** Number of such factorizations, without materializing them. *)

val random_factorization : Random.State.t -> int -> parts:int -> int list
(** Uniformly random ordered factorization, drawn by walking the divisor
    lattice. *)
