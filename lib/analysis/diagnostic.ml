type severity = Error | Warning

type t = {
  severity : severity;
  pass : string;
  constraint_name : string option;
  message : string;
  provenance : string option;
}

let make severity ~pass ?constraint_name ?provenance message =
  { severity; pass; constraint_name; message; provenance }

let error ~pass ?constraint_name ?provenance message =
  make Error ~pass ?constraint_name ?provenance message

let warning ~pass ?constraint_name ?provenance message =
  make Warning ~pass ?constraint_name ?provenance message

let is_error d = d.severity = Error

let errors ds = List.filter is_error ds

let count ds =
  List.fold_left
    (fun (e, w) d -> if is_error d then (e + 1, w) else (e, w + 1))
    (0, 0) ds

let severity_name = function Error -> "error" | Warning -> "warning"

let summary ds =
  let e, w = count ds in
  let head =
    match List.find_opt is_error ds with
    | Some d -> Printf.sprintf "; first: %s" d.message
    | None -> (
      match ds with
      | d :: _ -> Printf.sprintf "; first: %s" d.message
      | [] -> "")
  in
  Printf.sprintf "%d error%s, %d warning%s%s" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    head

let pp ppf d =
  Format.fprintf ppf "%s[%s]" (severity_name d.severity) d.pass;
  (match d.constraint_name with
  | Some c -> Format.fprintf ppf " %s:" c
  | None -> ());
  Format.fprintf ppf " %s" d.message;
  match d.provenance with
  | Some p -> Format.fprintf ppf " (%s)" p
  | None -> ()

let pp_table ppf ds =
  let ordered = errors ds @ List.filter (fun d -> not (is_error d)) ds in
  let width f = List.fold_left (fun acc d -> Int.max acc (String.length (f d))) 0 ordered in
  let sev d = severity_name d.severity in
  let con d = Option.value ~default:"-" d.constraint_name in
  let prov d = Option.value ~default:"-" d.provenance in
  let w_sev = Int.max 8 (width sev)
  and w_pass = Int.max 4 (width (fun d -> d.pass))
  and w_con = Int.max 10 (width con)
  and w_prov = Int.max 10 (width prov) in
  Format.fprintf ppf "@[<v>%-*s %-*s %-*s %-*s %s" w_sev "severity" w_pass
    "pass" w_con "constraint" w_prov "provenance" "message";
  List.iter
    (fun d ->
      Format.fprintf ppf "@,%-*s %-*s %-*s %-*s %s" w_sev (sev d) w_pass d.pass
        w_con (con d) w_prov (prov d) d.message)
    ordered;
  Format.fprintf ppf "@]"

let to_string d = Format.asprintf "%a" pp d
