type t = Monomial.t list (* sorted by exponent vector, like terms merged *)

let normalize ms =
  let sorted = List.sort Monomial.compare_exponents ms in
  let rec merge = function
    | a :: b :: rest when Monomial.compare_exponents a b = 0 ->
      let c = Monomial.coeff a +. Monomial.coeff b in
      merge (Monomial.make c (Monomial.exponents a) :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

let zero = []

let of_monomial m = [ m ]

let const c = [ Monomial.const c ]

let var x = [ Monomial.var x ]

let of_monomials ms = normalize ms

let terms p = p

let is_zero p = p = []

let is_monomial p = match p with [ _ ] -> true | _ -> false

let as_monomial = function [ m ] -> Some m | _ -> None

let add a b = normalize (a @ b)

let sum ps = normalize (List.concat ps)

let mul a b =
  normalize (List.concat_map (fun ma -> List.map (Monomial.mul ma) b) a)

let mul_monomial m p = List.map (Monomial.mul m) p

let div_monomial p m = List.map (fun t -> Monomial.div t m) p

let scale c p = List.map (Monomial.scale c) p

let bind x v p = normalize (List.map (Monomial.bind x v) p)

let eval env p = List.fold_left (fun acc m -> acc +. Monomial.eval env m) 0.0 p

let variables p =
  List.sort_uniq String.compare (List.concat_map Monomial.variables p)

let num_terms = List.length

let compare a b = List.compare Monomial.compare a b

let equal a b = compare a b = 0

let pp ppf p =
  match p with
  | [] -> Format.fprintf ppf "0"
  | m :: rest ->
    Monomial.pp ppf m;
    List.iter (fun t -> Format.fprintf ppf " + %a" Monomial.pp t) rest

let to_string p = Format.asprintf "%a" pp p
