(** Energy, delay and throughput of a concrete mapping on a concrete
    architecture — the role Timeloop's model plays in the paper.

    The energy expression is Eq. 3 instantiated with the technology models
    of Eq. 4:

    - MAC + per-MAC register traffic: [(4*eps_R + eps_op) * macs];
    - register-file side of SRAM<->register traffic: [eps_R * (...)];
    - SRAM accesses from both the register and the DRAM boundary;
    - DRAM accesses.

    Delay is the maximum of per-component delays (compute on the used PEs,
    SRAM port traffic, DRAM traffic) as in Section V-B. *)

type breakdown = {
  mac_energy : float;  (** pJ, includes per-MAC register accesses *)
  register_energy : float;  (** pJ for register-side tile traffic *)
  sram_energy : float;
  dram_energy : float;
}

type t = {
  arch : Archspec.Arch.t;
  counts : Counts.t;
  energy_pj : float;
  energy_per_mac : float;
  breakdown : breakdown;
  compute_cycles : float;
  sram_cycles : float;
  dram_cycles : float;
  cycles : float;
  ipc : float;  (** MACs per cycle; at most the number of PEs used *)
}

val evaluate :
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  Workload.Nest.t ->
  Mapspace.Mapping.t ->
  (t, string) result
(** Fails when the mapping is invalid for the nest or exceeds the
    architecture's register / SRAM / PE capacities. *)

val energy : t -> float

val ipc : t -> float

val pp : Format.formatter -> t -> unit
