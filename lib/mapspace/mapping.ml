type level = {
  kind : Level.kind;
  factors : (string * int) list;
  perm : string list;
}

type t = { levels : level list }

let make levels =
  List.iter
    (fun lvl ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (dim, f) ->
          if f < 1 then
            invalid_arg (Printf.sprintf "Mapping.make: factor %d for dim %S" f dim);
          if Hashtbl.mem seen dim then
            invalid_arg (Printf.sprintf "Mapping.make: duplicate dim %S in level" dim);
          Hashtbl.replace seen dim ())
        lvl.factors)
    levels;
  { levels }

let levels m = m.levels

let num_levels m = List.length m.levels

let level m i = List.nth m.levels i

let factor m ~level dim =
  match List.assoc_opt dim (List.nth m.levels level).factors with
  | Some f -> f
  | None -> 1

let trips m dim = List.map (fun lvl -> Option.value ~default:1 (List.assoc_opt dim lvl.factors)) m.levels

let extent_through m ~level dim =
  let rec go i acc = function
    | [] -> acc
    | lvl :: rest ->
      if i > level then acc
      else
        go (i + 1) (acc * Option.value ~default:1 (List.assoc_opt dim lvl.factors)) rest
  in
  go 0 1 m.levels

let total_extent m dim = extent_through m ~level:(num_levels m - 1) dim

let spatial_size m =
  List.fold_left
    (fun acc lvl ->
      match lvl.kind with
      | Level.Spatial -> List.fold_left (fun a (_, f) -> a * f) acc lvl.factors
      | Level.Temporal -> acc)
    1 m.levels

let env m var =
  match Level.parse_trip_var var with
  | Some (lvl, dim) when lvl < num_levels m -> float_of_int (factor m ~level:lvl dim)
  | Some _ | None -> 1.0

let validate nest m =
  let dims = Workload.Nest.dim_names nest in
  let error fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_level i lvl =
    let bad_dim =
      List.find_opt (fun (d, _) -> not (List.mem d dims)) lvl.factors
    in
    match bad_dim with
    | Some (d, _) -> error "level %d factors undeclared dim %S" i d
    | None -> begin
      match lvl.kind with
      | Level.Spatial -> Ok ()
      | Level.Temporal ->
        if List.sort String.compare lvl.perm <> List.sort String.compare dims then
          error "level %d permutation is not a permutation of the nest dims" i
        else Ok ()
    end
  in
  let rec check_levels i = function
    | [] -> Ok ()
    | lvl :: rest -> begin
      match check_level i lvl with Ok () -> check_levels (i + 1) rest | e -> e
    end
  in
  match check_levels 0 m.levels with
  | Error _ as e -> e
  | Ok () ->
    let rec check_extents = function
      | [] -> Ok ()
      | d :: rest ->
        let product = total_extent m d in
        let extent = Workload.Nest.extent nest d in
        if product <> extent then
          error "dim %S: factors multiply to %d, extent is %d" d product extent
        else check_extents rest
    in
    check_extents dims

let canonical ~reg ~pe ~spatial ~dram =
  let reg_factors, reg_perm = reg in
  let pe_factors, pe_perm = pe in
  let dram_factors, dram_perm = dram in
  make
    [
      { kind = Level.Temporal; factors = reg_factors; perm = reg_perm };
      { kind = Level.Temporal; factors = pe_factors; perm = pe_perm };
      { kind = Level.Spatial; factors = spatial; perm = [] };
      { kind = Level.Temporal; factors = dram_factors; perm = dram_perm };
    ]

let equal_level a b =
  a.kind = b.kind
  && List.sort compare a.factors = List.sort compare b.factors
  && a.perm = b.perm

let equal a b = List.equal equal_level a.levels b.levels

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i lvl ->
      let kind = match lvl.kind with Level.Temporal -> "temporal" | Level.Spatial -> "spatial" in
      Format.fprintf ppf "%s(%s):" (Level.name i) kind;
      List.iter (fun (d, f) -> if f > 1 then Format.fprintf ppf " %s=%d" d f) lvl.factors;
      (match lvl.kind with
      | Level.Temporal when lvl.perm <> [] ->
        Format.fprintf ppf " perm=%s" (String.concat "" lvl.perm)
      | Level.Temporal | Level.Spatial -> ());
      if i < List.length m.levels - 1 then Format.fprintf ppf "@,")
    m.levels;
  Format.fprintf ppf "@]"
