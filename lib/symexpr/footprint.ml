type t = Affine_dim.t list

let make dims = dims

let dims fp = fp

let subst x m' fp = List.map (Affine_dim.subst x m') fp

let bind x v fp = List.map (Affine_dim.bind x v) fp

let mentions fp x = List.exists (fun d -> Affine_dim.mentions d x) fp

let eval_exact env fp =
  List.fold_left (fun acc d -> acc *. Affine_dim.eval_exact env d) 1.0 fp

let to_posynomial fp =
  List.fold_left
    (fun acc d -> Posynomial.mul acc (Affine_dim.to_posynomial d))
    (Posynomial.const 1.0) fp

let equal = List.equal Affine_dim.equal

let pp ppf fp =
  match fp with
  | [] -> Format.fprintf ppf "1"
  | d :: rest ->
    Affine_dim.pp ppf d;
    List.iter (fun d -> Format.fprintf ppf "*%a" Affine_dim.pp d) rest
