module M = Symexpr.Monomial
module P = Symexpr.Posynomial

type t = { lo : float; hi : float }

let full = { lo = 0.0; hi = infinity }

let make ~lo ~hi =
  if not (lo >= 0.0 && hi >= lo) then
    invalid_arg (Printf.sprintf "Interval.make: bad bounds [%g, %g]" lo hi);
  { lo; hi }

let point v =
  if not (Float.is_finite v && v > 0.0) then
    invalid_arg (Printf.sprintf "Interval.point: %g not finite positive" v);
  { lo = v; hi = v }

let is_full t = t.lo = 0.0 && t.hi = infinity

let mem ?(slack = 0.0) v t =
  (* NaN fails both comparisons; an infinite [v] is a member only when
     the upper side is unbounded. *)
  v >= t.lo *. (1.0 -. slack) && v <= t.hi *. (1.0 +. slack)

(* [0. *. infinity] is NaN in IEEE arithmetic; for bounds the sound
   results are 0 (lower: one factor may be 0) and infinity (upper: one
   factor may be unbounded). *)
let mul_lo a b = if a = 0.0 || b = 0.0 then 0.0 else a *. b

let mul_hi a b = if a = infinity || b = infinity then infinity else a *. b

let mul a b = { lo = mul_lo a.lo b.lo; hi = mul_hi a.hi b.hi }

(* [x ** e] is monotone on the positive axis, and OCaml's [( ** )]
   already takes the right limits at the endpoints we use:
   [0. ** e = 0.] and [infinity ** e = infinity] for [e > 0.], while
   [0. ** e = infinity] and [infinity ** e = 0.] for [e < 0.]. *)
let pow t e =
  if e = 0.0 then { lo = 1.0; hi = 1.0 }
  else if e > 0.0 then { lo = t.lo ** e; hi = t.hi ** e }
  else { lo = t.hi ** e; hi = t.lo ** e }

let inv t = pow t (-1.0)

let monomial env m =
  List.fold_left
    (fun acc (x, e) -> mul acc (pow (env x) e))
    (point (M.coeff m)) (M.exponents m)

let monomial_without env ~var m =
  List.fold_left
    (fun acc (x, e) -> if String.equal x var then acc else mul acc (pow (env x) e))
    (point (M.coeff m)) (M.exponents m)

let posynomial env p =
  List.fold_left
    (fun acc m ->
      let i = monomial env m in
      { lo = acc.lo +. i.lo; hi = acc.hi +. i.hi })
    { lo = 0.0; hi = 0.0 } (P.terms p)

let pp ppf t = Format.fprintf ppf "[%g, %g]" t.lo t.hi
