(** Interior-point solver for geometric programs.

    The problem is transformed to log space ([y = log t]), where the
    objective and inequality constraints become convex log-sum-exp
    functions and monomial equalities become affine equalities.  A
    standard two-phase barrier method then follows: phase I finds a
    strictly feasible point (or a certificate of infeasibility), phase II
    traces the central path with equality-constrained Newton steps. *)

type status =
  | Optimal  (** converged to the requested duality-gap tolerance *)
  | Infeasible  (** phase I could not find a strictly feasible point *)
  | Iteration_limit
      (** progress stalled; the returned point is the best found and is
          feasible, but optimality is not certified *)

type solution = {
  status : status;
  values : (string * float) list;
      (** variable assignment in the original (positive) space *)
  objective : float;  (** objective posynomial value at [values] *)
}

val lookup : solution -> string -> float
(** Value of a variable in the solution.  Raises [Invalid_argument] with
    a message naming the missing variable (and the variables the solution
    does carry) if it does not occur — never a bare [Not_found]. *)

val env : solution -> string -> float
(** The solution as an evaluation environment.  Missing variables raise
    like {!lookup}. *)

(** {2 Telemetry}

    An optional mutable sink filled in by {!solve}.  The counters are
    pure functions of the problem (no timing enters them), so for a
    fixed problem they are identical run to run and independent of any
    parallelism around the solver. *)

type stats = {
  mutable phase1_outer : int;
      (** outer barrier iterations spent finding a strictly feasible
          point (0 when the equality-seeded start is already strictly
          feasible) *)
  mutable phase2_outer : int;  (** outer barrier iterations of the minimization *)
  mutable newton_iters : int;  (** Newton steps across both phases *)
  mutable backtracks : int;
      (** step-size backoffs: line-search halvings across all Newton
          steps *)
  mutable kkt_regularizations : int;
      (** extra regularization retries after a singular KKT system *)
  mutable duality_gap : float;
      (** certified duality-gap bound [m / t] at the end of phase II;
          [0.0] for problems without inequalities, [nan] when phase II
          never ran (infeasible or inconsistent problems) *)
}

val fresh_stats : unit -> stats
(** All counters zero, [duality_gap = nan]. *)

type totals = {
  solves : int;
  t_phase1_outer : int;
  t_phase2_outer : int;
  t_newton_iters : int;
  t_backtracks : int;
  t_kkt_regularizations : int;
  max_duality_gap : float;  (** largest finite per-solve gap; [0.0] if none *)
}
(** Order-independent aggregation of per-solve {!stats} — summing is
    commutative, so accumulating in any schedule order yields the same
    totals. *)

val zero_totals : totals

val accumulate : totals -> stats -> totals

val pp_totals : Format.formatter -> totals -> unit

val solve : ?tol:float -> ?max_outer:int -> ?stats:stats -> Problem.t -> solution
(** [solve problem] minimizes the problem objective.  [tol] bounds the
    final duality gap per inequality constraint (default 1e-8);
    [max_outer] bounds the number of barrier updates (default 60).
    When [stats] is given, its fields are overwritten with this solve's
    telemetry; passing it does not change the returned solution in any
    way. *)
