module Tech = Archspec.Technology
module Arch = Archspec.Arch

type breakdown = {
  mac_energy : float;
  register_energy : float;
  sram_energy : float;
  dram_energy : float;
}

type t = {
  arch : Arch.t;
  counts : Counts.t;
  energy_pj : float;
  energy_per_mac : float;
  breakdown : breakdown;
  compute_cycles : float;
  sram_cycles : float;
  dram_cycles : float;
  cycles : float;
  ipc : float;
}

let check_capacities arch counts =
  let reg = Counts.reg_words_per_pe counts in
  let sram = Counts.sram_words_used counts in
  let pes = counts.Counts.pes_used in
  if reg > float_of_int arch.Arch.registers_per_pe then
    Error
      (Printf.sprintf "register tile needs %g words, PE has %d" reg
         arch.Arch.registers_per_pe)
  else if sram > float_of_int arch.Arch.sram_words then
    Error (Printf.sprintf "SRAM tile needs %g words, SRAM has %d" sram arch.Arch.sram_words)
  else if pes > arch.Arch.pe_count then
    Error (Printf.sprintf "mapping uses %d PEs, architecture has %d" pes arch.Arch.pe_count)
  else Ok ()

let evaluate tech arch nest mapping =
  match Counts.compute nest mapping with
  | Error _ as e -> e
  | Ok counts -> begin
    match check_capacities arch counts with
    | Error _ as e -> e
    | Ok () ->
      let eps_r = Arch.register_energy tech arch in
      let eps_s = Arch.sram_energy tech arch in
      let eps_d = tech.Tech.energy_dram in
      let macs = counts.Counts.macs in
      let s2r = Counts.sram_to_reg counts in
      let r2s = Counts.reg_to_sram counts in
      let d2s = Counts.dram_to_sram counts in
      let s2d = Counts.sram_to_dram counts in
      let mac_energy = ((4.0 *. eps_r) +. tech.Tech.energy_mac) *. macs in
      let register_energy = eps_r *. (s2r +. r2s) in
      let sram_energy = eps_s *. (s2r +. r2s +. d2s +. s2d) in
      let dram_energy = eps_d *. (d2s +. s2d) in
      let energy_pj = mac_energy +. register_energy +. sram_energy +. dram_energy in
      let compute_cycles = macs /. float_of_int counts.Counts.pes_used in
      let sram_cycles = (s2r +. r2s +. d2s +. s2d) /. tech.Tech.sram_bandwidth in
      let dram_cycles = (d2s +. s2d) /. tech.Tech.dram_bandwidth in
      let cycles = Float.max compute_cycles (Float.max sram_cycles dram_cycles) in
      Ok
        {
          arch;
          counts;
          energy_pj;
          energy_per_mac = energy_pj /. macs;
          breakdown = { mac_energy; register_energy; sram_energy; dram_energy };
          compute_cycles;
          sram_cycles;
          dram_cycles;
          cycles;
          ipc = macs /. cycles;
        }
  end

let energy t = t.energy_pj

let ipc t = t.ipc

let pp ppf t =
  Format.fprintf ppf
    "@[<v>energy %.4g pJ (%.3f pJ/MAC): mac %.3g, reg %.3g, sram %.3g, dram %.3g@,\
     cycles %.4g (compute %.4g, sram %.4g, dram %.4g), IPC %.2f, PEs %d@]"
    t.energy_pj t.energy_per_mac t.breakdown.mac_energy t.breakdown.register_energy
    t.breakdown.sram_energy t.breakdown.dram_energy t.cycles t.compute_cycles
    t.sram_cycles t.dram_cycles t.ipc t.counts.Counts.pes_used
