(* Determinism regression: the pipeline over a small layer set must
   produce bit-identical results AND bit-identical metric counters for
   `jobs = 1` vs `jobs = 4`, and with tracing on vs off.  This locks in
   the contract documented in obs/metrics.mli: counters are functions of
   the input only (histograms are timing-dependent and excluded), and
   observability must never perturb results. *)

module Pl = Thistle.Pipeline
module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Evaluate = Accmodel.Evaluate
module Mapping = Mapspace.Mapping

let tech = Archspec.Technology.table3

let layers =
  List.map Workload.Conv.to_nest
    [
      Workload.Conv.make ~name:"l-small" ~k:8 ~c:8 ~hw:8 ~rs:3 ();
      Workload.Conv.make ~name:"l-large" ~k:32 ~c:32 ~hw:16 ~rs:3 ();
      Workload.Conv.make ~name:"l-1x1" ~k:16 ~c:32 ~hw:16 ~rs:1 ();
    ]

let budget = 6.0e5
let fast_config = { O.default_config with O.max_choices = 8; top_choices = 1 }

(* A bit-exact textual fingerprint of everything a run reports.  Floats
   go through Int64.bits_of_float so "close enough" can't sneak by. *)
let fingerprint (e : Pl.entry) =
  let name = Workload.Nest.name e.Pl.nest in
  match e.Pl.result with
  | Error msg -> Printf.sprintf "%s: error: %s" name msg
  | Ok r ->
    let o = r.O.outcome in
    Format.asprintf
      "%s: arch=%s mapping=(%a) energy=%Lx cycles=%Lx continuous=%Lx enumerated=%d \
       solved=%d tried=%d valid=%d totals=(%a)"
      name o.I.arch.Arch.arch_name Mapping.pp o.I.mapping
      (Int64.bits_of_float o.I.metrics.Evaluate.energy_pj)
      (Int64.bits_of_float o.I.metrics.Evaluate.cycles)
      (Int64.bits_of_float r.O.best_continuous)
      r.O.choices_enumerated r.O.choices_solved o.I.candidates_tried
      o.I.candidates_valid Gp.Solver.pp_totals r.O.solve_totals

(* One instrumented pipeline run; returns fingerprints and the counter
   section of the metrics snapshot, leaving the registry clean. *)
let run ~jobs ~trace =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  if trace then Obs.Trace.start ();
  let entries =
    Pl.run_layers
      ~config:{ fast_config with O.jobs }
      tech
      (F.Codesign { area_budget = budget })
      F.Energy layers
  in
  if trace then Obs.Trace.stop ();
  Obs.Metrics.disable ();
  let counters = Obs.Metrics.counters (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  (List.map fingerprint entries, counters)

let check_same label (fps_a, counters_a) (fps_b, counters_b) =
  Alcotest.(check (list string)) (label ^ ": results") fps_a fps_b;
  Alcotest.(check (list (pair string int))) (label ^ ": counters") counters_a counters_b

let nonvacuous (_, counters) =
  let value name =
    match List.assoc_opt name counters with
    | Some v -> v
    | None -> Alcotest.failf "counter %S missing" name
  in
  Alcotest.(check bool) "solver ran" true (value "solver.solves" > 0);
  Alcotest.(check bool) "outer iterations counted" true (value "solver.outer_iters" > 0);
  Alcotest.(check bool) "newton steps counted" true (value "solver.newton_steps" > 0);
  Alcotest.(check bool) "tasks counted" true (value "exec.tasks" > 0);
  Alcotest.(check bool) "integerizer counted" true
    (value "integerize.candidates_tried" > 0)

let test_jobs_independent () =
  let seq = run ~jobs:1 ~trace:false in
  let par = run ~jobs:4 ~trace:false in
  nonvacuous seq;
  check_same "jobs 1 vs jobs 4" seq par

let test_trace_independent () =
  let plain = run ~jobs:4 ~trace:false in
  let traced = run ~jobs:4 ~trace:true in
  check_same "trace off vs on" plain traced;
  (* The trace itself covers every pipeline stage. *)
  let names =
    List.sort_uniq String.compare
      (List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events ()))
  in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "span %S present" expected)
        true (List.mem expected names))
    [ "pipeline"; "layer"; "formulate"; "solve"; "integerize"; "evaluate" ]

let () =
  Alcotest.run "determinism"
    [
      ( "pipeline",
        [
          Alcotest.test_case "jobs-independent" `Quick test_jobs_independent;
          Alcotest.test_case "trace-independent" `Quick test_trace_independent;
        ] );
    ]
