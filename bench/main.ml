(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (Tables II/III, Figs. 4-8) and runs Bechamel
   micro-benchmarks of the pipeline stages.

   Usage:
     dune exec bench/main.exe                 # everything, full settings
     dune exec bench/main.exe -- --quick      # reduced trial counts
     dune exec bench/main.exe -- --only fig4,fig7
     dune exec bench/main.exe -- --no-bechamel
     dune exec bench/main.exe -- --metrics m.json   # counter/histogram dump *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Pl = Thistle.Pipeline
module S = Mapper.Search
module Arch = Archspec.Arch
module Tech = Archspec.Technology
module Conv = Workload.Conv
module Nest = Workload.Nest
module Evaluate = Accmodel.Evaluate

let tech = Tech.table3

let area_budget = Arch.eyeriss_area tech

(* ------------------------------------------------------------------ *)
(* Command line                                                       *)
(* ------------------------------------------------------------------ *)

type options = {
  quick : bool;
  only : string list option;
  bechamel : bool;
  metrics : string option;
}

let parse_args () =
  let quick = ref false in
  let only = ref None in
  let bechamel = ref true in
  let metrics = ref None in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--no-bechamel" :: rest ->
      bechamel := false;
      go rest
    | "--only" :: spec :: rest ->
      only := Some (String.split_on_char ',' spec);
      go rest
    | "--metrics" :: file :: rest ->
      metrics := Some file;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  { quick = !quick; only = !only; bechamel = !bechamel; metrics = !metrics }

let options = parse_args ()

let wants section =
  match options.only with None -> true | Some l -> List.mem section l

let section name =
  Printf.printf "\n[%s]\n" name;
  flush stdout

(* Reduced settings for --quick runs. *)
let mapper_config =
  if options.quick then { S.max_trials = 3000; victory_condition = 3000; seed = 42 }
  else { S.max_trials = 30000; victory_condition = 15000; seed = 42 }

let thistle_config =
  if options.quick then { O.default_config with O.max_choices = 16; top_choices = 2 }
  else O.default_config

(* Under the delay objective many permutation choices tie near
   macs / P in the continuous relaxation; integerization quality then
   decides, so a deeper shortlist is needed. *)
let deep_shortlist =
  { thistle_config with O.top_choices = (if options.quick then 8 else 12) }

let thistle_config_for obj =
  match obj with `Energy -> thistle_config | `Delay -> deep_shortlist

let layers =
  if options.quick then
    List.filter
      (fun l ->
        List.mem l.Conv.layer_name
          [ "yolo-2"; "yolo-6"; "resnet-2"; "resnet-8"; "resnet-12" ])
      (Workload.Zoo.yolo9000 @ Workload.Zoo.resnet18)
  else Workload.Zoo.yolo9000 @ Workload.Zoo.resnet18

let nests = List.map (fun l -> (l, Conv.to_nest l)) layers

(* ------------------------------------------------------------------ *)
(* Shared per-layer computations (memoized across figures)            *)
(* ------------------------------------------------------------------ *)

let memo f =
  let cache = Hashtbl.create 16 in
  fun key ->
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
      let v = f key in
      Hashtbl.replace cache key v;
      v

let objective_of = function `Energy -> F.Energy | `Delay -> F.Delay

let criterion_of = function `Energy -> S.Min_energy | `Delay -> S.Min_delay

let nest_of layer_name =
  let _, nest = List.find (fun (l, _) -> l.Conv.layer_name = layer_name) nests in
  nest

(* Thistle dataflow optimization on the Eyeriss architecture. *)
let eyeriss_thistle =
  memo (fun (layer_name, obj) ->
      O.dataflow ~config:(thistle_config_for obj) tech Arch.eyeriss (objective_of obj)
        (nest_of layer_name))

(* Timeloop-Mapper-style search on the Eyeriss architecture. *)
let eyeriss_mapper =
  memo (fun (layer_name, obj) ->
      S.search ~config:mapper_config tech Arch.eyeriss (criterion_of obj)
        (nest_of layer_name))

(* Layer-wise architecture-dataflow co-design at the Eyeriss area. *)
let codesign =
  memo (fun (layer_name, obj) ->
      O.codesign ~config:(thistle_config_for obj) tech ~area_budget (objective_of obj)
        (nest_of layer_name))

(* The architecture of the dominant layer (largest energy / delay among
   the layer-wise co-designs), shared by all layers in Figs. 6 and 8. *)
let dominant_arch =
  memo (fun obj ->
      let entries =
        List.map
          (fun (l, nest) -> { Pl.nest; result = codesign (l.Conv.layer_name, obj) })
          nests
      in
      Pl.dominant_arch (objective_of obj) entries)

let fixed_dominant =
  memo (fun (layer_name, obj) ->
      match dominant_arch obj with
      | Error msg -> Error msg
      | Ok arch ->
        O.dataflow ~config:(thistle_config_for obj) tech arch (objective_of obj)
          (nest_of layer_name))

let metrics_of_report = function
  | Ok (r : O.report) -> Some r.O.outcome.I.metrics
  | Error _ -> None

let energy_per_mac = function
  | Some (m : Evaluate.t) -> m.Evaluate.energy_per_mac
  | None -> nan

let ipc = function Some (m : Evaluate.t) -> m.Evaluate.ipc | None -> nan

(* ------------------------------------------------------------------ *)
(* Tables                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "table2";
  Printf.printf "%-10s %6s %6s %6s %4s %7s %12s\n" "layer" "K" "C" "H=W" "RS" "stride"
    "MACs";
  List.iter
    (fun (l, nest) ->
      Printf.printf "%-10s %6d %6d %6d %4d %7d %12.4g\n" l.Conv.layer_name
        l.Conv.out_channels l.Conv.in_channels l.Conv.in_height l.Conv.kernel
        l.Conv.stride (Nest.ops nest))
    nests

let table3 () =
  section "table3";
  Printf.printf "%-28s %14s %s\n" "parameter" "value" "unit";
  let row name value unit = Printf.printf "%-28s %14g %s\n" name value unit in
  row "area per MAC" tech.Tech.area_mac "um^2";
  row "area per register" tech.Tech.area_register "um^2";
  row "area per SRAM word" tech.Tech.area_sram_word "um^2";
  row "energy per int16 MAC" tech.Tech.energy_mac "pJ";
  row "register energy-constant" tech.Tech.sigma_register "pJ/word";
  row "SRAM energy-constant" tech.Tech.sigma_sram "pJ/sqrt-word";
  row "energy per DRAM access" tech.Tech.energy_dram "pJ";
  row "Eyeriss area (budget)" area_budget "um^2"

(* ------------------------------------------------------------------ *)
(* Figures                                                            *)
(* ------------------------------------------------------------------ *)

(* Fig. 4: energy on the Eyeriss architecture, Timeloop-Mapper-style
   search vs Thistle; EnergyUp = mapper / thistle. *)
let fig4 () =
  section "fig4";
  Printf.printf "%-10s %14s %15s %9s\n" "layer" "mapper pJ/MAC" "thistle pJ/MAC"
    "EnergyUp";
  List.iter
    (fun (l, _) ->
      let name = l.Conv.layer_name in
      let mapper = eyeriss_mapper (name, `Energy) in
      let mapper_e =
        match mapper.S.best with
        | Some (_, m) -> m.Evaluate.energy_per_mac
        | None -> nan
      in
      let thistle_e =
        energy_per_mac (metrics_of_report (eyeriss_thistle (name, `Energy)))
      in
      Printf.printf "%-10s %14.2f %15.2f %9.3f\n" name mapper_e thistle_e
        (mapper_e /. thistle_e);
      flush stdout)
    nests

(* Fig. 5: energy, Eyeriss-architecture optimal dataflow vs layer-wise
   co-designed architecture at the same area. *)
let fig5 () =
  section "fig5";
  Printf.printf "%-10s %14s %15s %9s %s\n" "layer" "eyeriss pJ/MAC" "codesign pJ/MAC"
    "improve" "architecture";
  List.iter
    (fun (l, _) ->
      let name = l.Conv.layer_name in
      let eyeriss_e =
        energy_per_mac (metrics_of_report (eyeriss_thistle (name, `Energy)))
      in
      (match codesign (name, `Energy) with
      | Error msg -> Printf.printf "%-10s %14.2f %15s ! %s\n" name eyeriss_e "-" msg
      | Ok r ->
        let m = r.O.outcome.I.metrics in
        let a = r.O.outcome.I.arch in
        Printf.printf "%-10s %14.2f %15.2f %9.3f P=%d R=%d S=%d\n" name eyeriss_e
          m.Evaluate.energy_per_mac
          (eyeriss_e /. m.Evaluate.energy_per_mac)
          a.Arch.pe_count a.Arch.registers_per_pe a.Arch.sram_words);
      flush stdout)
    nests

(* Fig. 6: energy, Eyeriss vs layer-wise vs single fixed architecture
   taken from the energy-dominant layer. *)
let fig6 () =
  section "fig6";
  (match dominant_arch `Energy with
  | Ok a ->
    Printf.printf "dominant-layer architecture: %s (P=%d R=%d S=%d, area %.3g)\n"
      a.Arch.arch_name a.Arch.pe_count a.Arch.registers_per_pe a.Arch.sram_words
      (Arch.area tech a)
  | Error msg -> Printf.printf "dominant architecture failed: %s\n" msg);
  Printf.printf "%-10s %14s %16s %12s\n" "layer" "eyeriss pJ/MAC" "layerwise pJ/MAC"
    "fixed pJ/MAC";
  List.iter
    (fun (l, _) ->
      let name = l.Conv.layer_name in
      let eyeriss_e =
        energy_per_mac (metrics_of_report (eyeriss_thistle (name, `Energy)))
      in
      let layerwise_e = energy_per_mac (metrics_of_report (codesign (name, `Energy))) in
      let fixed_e = energy_per_mac (metrics_of_report (fixed_dominant (name, `Energy))) in
      Printf.printf "%-10s %14.2f %16.2f %12.2f\n" name eyeriss_e layerwise_e fixed_e;
      flush stdout)
    nests

(* Fig. 7: throughput (MAC IPC) on the Eyeriss architecture, mapper vs
   Thistle; the theoretical maximum is the PE count, 168. *)
let fig7 () =
  section "fig7";
  Printf.printf "%-10s %12s %12s %9s\n" "layer" "mapper IPC" "thistle IPC" "speedup";
  List.iter
    (fun (l, _) ->
      let name = l.Conv.layer_name in
      let mapper = eyeriss_mapper (name, `Delay) in
      let mapper_ipc =
        match mapper.S.best with Some (_, m) -> m.Evaluate.ipc | None -> nan
      in
      let thistle_ipc = ipc (metrics_of_report (eyeriss_thistle (name, `Delay))) in
      Printf.printf "%-10s %12.2f %12.2f %9.3f\n" name mapper_ipc thistle_ipc
        (thistle_ipc /. mapper_ipc);
      flush stdout)
    nests

(* Fig. 8: throughput, Eyeriss vs layer-wise co-design vs fixed
   architecture from the delay-dominant layer. *)
let fig8 () =
  section "fig8";
  (match dominant_arch `Delay with
  | Ok a ->
    Printf.printf "dominant-layer architecture: %s (P=%d R=%d S=%d, area %.3g)\n"
      a.Arch.arch_name a.Arch.pe_count a.Arch.registers_per_pe a.Arch.sram_words
      (Arch.area tech a)
  | Error msg -> Printf.printf "dominant architecture failed: %s\n" msg);
  Printf.printf "%-10s %12s %13s %10s\n" "layer" "eyeriss IPC" "layerwise IPC"
    "fixed IPC";
  List.iter
    (fun (l, _) ->
      let name = l.Conv.layer_name in
      let eyeriss_ipc = ipc (metrics_of_report (eyeriss_thistle (name, `Delay))) in
      let layerwise_ipc = ipc (metrics_of_report (codesign (name, `Delay))) in
      let fixed_ipc = ipc (metrics_of_report (fixed_dominant (name, `Delay))) in
      Printf.printf "%-10s %12.2f %13.2f %10.2f\n" name eyeriss_ipc layerwise_ipc
        fixed_ipc;
      flush stdout)
    nests

(* ------------------------------------------------------------------ *)
(* Extension: EDP objective, and ablations of the design choices      *)
(* ------------------------------------------------------------------ *)

let ablation_layers =
  List.filter
    (fun (l, _) ->
      List.mem l.Conv.layer_name [ "yolo-2"; "resnet-2"; "resnet-8" ])
    nests

(* Energy-delay product (a DGP-expressible objective the paper mentions
   but does not evaluate): compare the three criteria on Eyeriss. *)
let edp_section () =
  section "edp";
  Printf.printf "%-10s %-9s %10s %8s %12s\n" "layer" "objective" "pJ/MAC" "IPC"
    "EDP (pJ*cyc)";
  List.iter
    (fun (l, nest) ->
      List.iter
        (fun (label, objective) ->
          (* EDP ties like delay does: integerize a deep shortlist. *)
          let config =
            match objective with F.Energy -> thistle_config | F.Delay | F.Edp -> deep_shortlist
          in
          match O.dataflow ~config tech Arch.eyeriss objective nest with
          | Error msg -> Printf.printf "%-10s %-9s failed: %s\n" l.Conv.layer_name label msg
          | Ok r ->
            let m = r.O.outcome.I.metrics in
            Printf.printf "%-10s %-9s %10.2f %8.1f %12.4g\n%!" l.Conv.layer_name label
              m.Evaluate.energy_per_mac m.Evaluate.ipc
              (m.Evaluate.energy_pj *. m.Evaluate.cycles))
        [ ("energy", F.Energy); ("delay", F.Delay); ("edp", F.Edp) ])
    ablation_layers

(* Window-dim placement: restricting r/s to the register level caps the
   achievable parallelism (DESIGN.md's Fig. 7 note). *)
let ablation_placement () =
  section "ablation-placement";
  Printf.printf "%-10s %14s %12s\n" "layer" "reg-only IPC" "full IPC";
  List.iter
    (fun (l, nest) ->
      let run explore_placements =
        let config = { thistle_config with O.explore_placements; top_choices = 8 } in
        match O.dataflow ~config tech Arch.eyeriss F.Delay nest with
        | Ok r -> r.O.outcome.I.metrics.Evaluate.ipc
        | Error _ -> nan
      in
      Printf.printf "%-10s %14.2f %12.2f\n%!" l.Conv.layer_name (run false) (run true))
    ablation_layers

(* Integerization ladder width (the paper's n): candidate count vs
   achieved energy. *)
let ablation_divisors () =
  section "ablation-divisors";
  Printf.printf "%-10s %4s %12s %12s\n" "layer" "n" "pJ/MAC" "candidates";
  List.iter
    (fun (l, nest) ->
      List.iter
        (fun n ->
          let config = { thistle_config with O.n_divisors = n } in
          match O.dataflow ~config tech Arch.eyeriss F.Energy nest with
          | Error msg -> Printf.printf "%-10s %4d failed: %s\n" l.Conv.layer_name n msg
          | Ok r ->
            Printf.printf "%-10s %4d %12.2f %12d\n%!" l.Conv.layer_name n
              r.O.outcome.I.metrics.Evaluate.energy_per_mac
              r.O.outcome.I.candidates_tried)
        [ 1; 2; 3 ])
    ablation_layers

(* Permutation-space pruning: raw pairs vs surviving cost classes. *)
let ablation_pruning () =
  section "ablation-pruning";
  Printf.printf "%-10s %10s %10s %12s\n" "layer" "raw pairs" "kept" "prune ratio";
  List.iter
    (fun (l, nest) ->
      let plan = Thistle.Permutations.enumerate nest in
      let kept = List.length plan.Thistle.Permutations.choices in
      Printf.printf "%-10s %10d %10d %11.1fx\n%!" l.Conv.layer_name
        plan.Thistle.Permutations.raw_count kept
        (float_of_int plan.Thistle.Permutations.raw_count /. float_of_int kept))
    ablation_layers

(* Grid-search co-design (the prior-work strategy the paper contrasts
   with): enumerate power-of-two architecture points, run a mapping
   search per point, and compare quality and model-evaluation counts
   against Thistle's single-shot formulation. *)
let ablation_gridsearch () =
  section "ablation-gridsearch";
  Printf.printf "%-10s %-11s %10s %6s %5s %8s %12s\n" "layer" "method" "pJ/MAC" "PEs"
    "R" "SRAM" "model evals";
  List.iter
    (fun (l, nest) ->
      (match codesign (l.Conv.layer_name, `Energy) with
      | Error msg -> Printf.printf "%-10s %-11s failed: %s\n" l.Conv.layer_name "thistle" msg
      | Ok r ->
        let o = r.O.outcome in
        Printf.printf "%-10s %-11s %10.2f %6d %5d %8d %12d\n%!" l.Conv.layer_name
          "thistle" o.I.metrics.Evaluate.energy_per_mac o.I.arch.Arch.pe_count
          o.I.arch.Arch.registers_per_pe o.I.arch.Arch.sram_words
          o.I.candidates_tried);
      let grid_config =
        {
          Mapper.Grid.default_config with
          Mapper.Grid.trials_per_point = (if options.quick then 500 else 2000);
        }
      in
      let grid =
        Mapper.Grid.search ~config:grid_config tech ~area_budget
          Mapper.Search.Min_energy nest
      in
      match grid.Mapper.Grid.winner with
      | Some { Mapper.Grid.best = Some (_, m); arch; _ } ->
        Printf.printf "%-10s %-11s %10.2f %6d %5d %8d %12d\n%!" l.Conv.layer_name
          "grid-search" m.Evaluate.energy_per_mac arch.Arch.pe_count
          arch.Arch.registers_per_pe arch.Arch.sram_words grid.Mapper.Grid.total_trials
      | Some { Mapper.Grid.best = None; _ } | None ->
        Printf.printf "%-10s %-11s found no valid point (%d trials)\n" l.Conv.layer_name
          "grid-search" grid.Mapper.Grid.total_trials)
    ablation_layers

(* Shortlist depth for the delay objective (near-ties in the continuous
   relaxation make integerization quality decide). *)
let ablation_shortlist () =
  section "ablation-shortlist";
  Printf.printf "%-10s %6s %10s\n" "layer" "top-K" "IPC";
  List.iter
    (fun (l, nest) ->
      List.iter
        (fun top_choices ->
          let config = { thistle_config with O.top_choices } in
          match O.codesign ~config tech ~area_budget F.Delay nest with
          | Error msg ->
            Printf.printf "%-10s %6d failed: %s\n" l.Conv.layer_name top_choices msg
          | Ok r ->
            Printf.printf "%-10s %6d %10.2f\n%!" l.Conv.layer_name top_choices
              r.O.outcome.I.metrics.Evaluate.ipc)
        [ 1; 3; 10 ])
    ablation_layers

(* Technology what-if: co-design the same layer at scaled process nodes
   (first-order scaling; DRAM does not shrink, so it increasingly
   dominates the energy budget). *)
let ablation_technology () =
  section "ablation-technology";
  Printf.printf "%-10s %8s %12s %14s %12s\n" "layer" "node" "pJ/MAC" "dram share" "budget um^2";
  let layer, nest = List.hd ablation_layers in
  List.iter
    (fun node_nm ->
      let scaled = Tech.scale_to_node tech ~node_nm in
      let budget = Arch.eyeriss_area scaled in
      match O.codesign ~config:thistle_config scaled ~area_budget:budget F.Energy nest with
      | Error msg -> Printf.printf "%-10s %8.1f failed: %s\n" layer.Conv.layer_name node_nm msg
      | Ok r ->
        let m = r.O.outcome.I.metrics in
        Printf.printf "%-10s %8.1f %12.2f %13.0f%% %12.3g\n%!" layer.Conv.layer_name
          node_nm m.Evaluate.energy_per_mac
          (100.0 *. m.Evaluate.breakdown.Evaluate.dram_energy /. m.Evaluate.energy_pj)
          budget)
    [ 45.0; 32.0; 22.0 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per experiment family                *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  section "bechamel";
  let open Bechamel in
  let nest = Conv.to_nest (Workload.Zoo.find "resnet-2") in
  let plan = Thistle.Permutations.enumerate nest in
  let choice_vol = List.hd plan.Thistle.Permutations.choices in
  let choice = fst choice_vol in
  let instance = F.build tech (F.Fixed Arch.eyeriss) F.Energy plan choice_vol in
  let solution = Gp.Solver.solve instance.F.problem in
  let rng = Random.State.make [| 1 |] in
  let mapping =
    (* A fixed valid mapping for the model benchmark. *)
    let rec find () =
      let m = Mapper.Search.random_mapping rng nest in
      match Evaluate.evaluate tech Arch.eyeriss nest m with
      | Ok _ -> m
      | Error _ -> find ()
    in
    find ()
  in
  let tests =
    Test.make_grouped ~name:"thistle"
      [
        (* fig4/fig7 inner loop: one GP formulation + solve. *)
        Test.make ~name:"gp-formulate-solve"
          (Staged.stage (fun () ->
               let inst = F.build tech (F.Fixed Arch.eyeriss) F.Energy plan choice_vol in
               ignore (Gp.Solver.solve inst.F.problem)));
        (* Algorithm 1 symbolic analysis for one permutation choice. *)
        Test.make ~name:"volume-analyze"
          (Staged.stage (fun () ->
               ignore
                 (Thistle.Volume.analyze nest
                    ~pe_perm:choice.Thistle.Permutations.pe_perm
                    ~dram_perm:choice.Thistle.Permutations.dram_perm)));
        (* fig4 baseline inner loop: one mapper trial. *)
        Test.make ~name:"mapper-trial"
          (Staged.stage (fun () ->
               let m = Mapper.Search.random_mapping rng nest in
               ignore (Evaluate.evaluate tech Arch.eyeriss nest m)));
        (* the Timeloop-model stand-in: one exact evaluation. *)
        Test.make ~name:"model-evaluate"
          (Staged.stage (fun () ->
               ignore (Evaluate.evaluate tech Arch.eyeriss nest mapping)));
        (* section-IV rounding: one integerization pass. *)
        Test.make ~name:"integerize"
          (Staged.stage (fun () -> ignore (I.run tech instance solution)));
        (* permutation enumeration with pruning. *)
        Test.make ~name:"enumerate-choices"
          (Staged.stage (fun () -> ignore (Thistle.Permutations.enumerate nest)));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols (List.hd instances) raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      let time_ns =
        match Analyze.OLS.estimates result with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      Printf.printf "%-40s %14.1f ns/run\n" name time_ns)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "thistle reproduction harness%s\n"
    (if options.quick then " (quick mode)" else "");
  if options.metrics <> None then begin
    Obs.Metrics.reset ();
    Obs.Metrics.enable ()
  end;
  let t0 = Unix.gettimeofday () in
  if wants "table2" then table2 ();
  if wants "table3" then table3 ();
  if wants "fig4" then fig4 ();
  if wants "fig5" then fig5 ();
  if wants "fig6" then fig6 ();
  if wants "fig7" then fig7 ();
  if wants "fig8" then fig8 ();
  if wants "edp" then edp_section ();
  if wants "ablation-placement" then ablation_placement ();
  if wants "ablation-divisors" then ablation_divisors ();
  if wants "ablation-pruning" then ablation_pruning ();
  if wants "ablation-shortlist" then ablation_shortlist ();
  if wants "ablation-gridsearch" then ablation_gridsearch ();
  if wants "ablation-technology" then ablation_technology ();
  if options.bechamel && wants "bechamel" then bechamel ();
  (match options.metrics with
  | None -> ()
  | Some file ->
    Obs.Metrics.disable ();
    let oc = open_out file in
    output_string oc (Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" file);
  Printf.printf "\ntotal time: %.1f s\n" (Unix.gettimeofday () -. t0)
