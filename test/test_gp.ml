(* Tests for the geometric-programming solver against problems with known
   closed-form optima, plus feasibility/optimality properties. *)

module M = Symexpr.Monomial
module P = Symexpr.Posynomial

let approx ?(eps = 1e-4) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_float name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" name expected actual)
    true (approx expected actual)

let solve = Gp.Solver.solve

let status_name = function
  | Gp.Solver.Optimal -> "optimal"
  | Gp.Solver.Infeasible -> "infeasible"
  | Gp.Solver.Iteration_limit -> "iteration-limit"
  | Gp.Solver.Deadline_exceeded -> "deadline-exceeded"

let check_optimal sol =
  Alcotest.(check string) "status" "optimal" (status_name sol.Gp.Solver.status)

(* min x + y  s.t. x y >= 1  ->  x = y = 1, objective 2 (AM-GM). *)
let test_amgm () =
  let prob =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.var "y"))
      ~ineqs:
        [ ("xy>=1", P.of_monomial (M.make 1.0 [ ("x", -1.0); ("y", -1.0) ])) ]
      ()
  in
  let sol = solve prob in
  check_optimal sol;
  check_float "objective" 2.0 sol.Gp.Solver.objective;
  check_float "x" 1.0 (Gp.Solver.lookup sol "x");
  check_float "y" 1.0 (Gp.Solver.lookup sol "y")

(* min x  s.t. x y = 4, y <= 2  ->  x = 2. *)
let test_equality () =
  let prob =
    Gp.Problem.make ~objective:(P.var "x")
      ~ineqs:[ ("y<=2", Gp.Problem.le_const (P.var "y") 2.0) ]
      ~eqs:[ ("xy=4", Gp.Problem.eq (M.mul (M.var "x") (M.var "y")) (M.const 4.0)) ]
      ()
  in
  let sol = solve prob in
  check_optimal sol;
  check_float "x" 2.0 (Gp.Solver.lookup sol "x");
  check_float "y" 2.0 (Gp.Solver.lookup sol "y")

(* min x + 1/x (no constraints) -> 2 at x = 1. *)
let test_unconstrained () =
  let prob =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.of_monomial (M.var_pow "x" (-1.0))))
      ()
  in
  let sol = solve prob in
  check_float "objective" 2.0 sol.Gp.Solver.objective;
  check_float "x" 1.0 (Gp.Solver.lookup sol "x")

(* min sqrt x + 4/x -> stationary at x^1.5 = 8, x = 4, objective 3. *)
let test_fractional_exponent () =
  let prob =
    Gp.Problem.make
      ~objective:
        (P.of_monomials [ M.var_pow "x" 0.5; M.make 4.0 [ ("x", -1.0) ] ])
      ()
  in
  let sol = solve prob in
  check_float "x" 4.0 (Gp.Solver.lookup sol "x");
  check_float "objective" 3.0 sol.Gp.Solver.objective

(* Classic box design: minimize total wall area of an open box of volume 8
   with a square base: min b^2 + 4 b h  s.t. b^2 h = 8.
   Substituting h = 8/b^2: A = b^2 + 32/b, A' = 2b - 32/b^2 = 0 -> b^3 = 16. *)
let test_box_design () =
  let b = M.var "b" and h = M.var "h" in
  let prob =
    Gp.Problem.make
      ~objective:
        (P.of_monomials [ M.pow b 2.0; M.scale 4.0 (M.mul b h) ])
      ~eqs:
        [ ("volume", Gp.Problem.eq (M.mul (M.pow b 2.0) h) (M.const 8.0)) ]
      ()
  in
  let sol = solve prob in
  check_optimal sol;
  let b_star = Float.pow 16.0 (1.0 /. 3.0) in
  check_float "b" b_star (Gp.Solver.lookup sol "b");
  check_float "objective"
    ((b_star ** 2.0) +. (32.0 /. b_star))
    sol.Gp.Solver.objective

(* Infeasible: x <= 1/2 and x >= 2. *)
let test_infeasible () =
  let prob =
    Gp.Problem.make ~objective:(P.var "x")
      ~ineqs:
        [
          ("x<=0.5", Gp.Problem.le_const (P.var "x") 0.5);
          ("x>=2", P.of_monomial (M.make 2.0 [ ("x", -1.0) ]));
        ]
      ()
  in
  let sol = solve prob in
  Alcotest.(check string) "status" "infeasible" (status_name sol.Gp.Solver.status)

(* Inconsistent constant equality. *)
let test_inconsistent_equality () =
  let prob =
    Gp.Problem.make ~objective:(P.var "x")
      ~eqs:[ ("2=1", Gp.Problem.eq (M.const 2.0) M.one) ]
      ()
  in
  let sol = solve prob in
  Alcotest.(check string) "status" "infeasible" (status_name sol.Gp.Solver.status)

(* A problem shaped like the paper's Eq. 3 for a tiny matmul: checks that
   multi-variable tiling problems with several equalities solve cleanly. *)
let test_matmul_shaped () =
  let n = 64.0 in
  let vars l d = M.var (Printf.sprintf "t%d.%s" l d) in
  let prod d = List.fold_left (fun acc l -> M.mul acc (vars l d)) M.one [ 0; 1; 2; 3 ] in
  let eqs =
    List.map
      (fun d -> (Printf.sprintf "extent:%s" d, Gp.Problem.eq (prod d) (M.const n)))
      [ "i"; "j"; "k" ]
  in
  let bounds =
    List.concat_map
      (fun d ->
        List.map
          (fun l ->
            let v = Printf.sprintf "t%d.%s" l d in
            (Printf.sprintf "bound:%s" v, P.of_monomial (M.var_pow v (-1.0))))
          [ 0; 1; 2; 3 ])
      [ "i"; "j"; "k" ]
  in
  let reg_cap =
    Gp.Problem.le_const
      (P.of_monomials
         [
           M.mul (vars 0 "i") (vars 0 "j");
           M.mul (vars 0 "i") (vars 0 "k");
           M.mul (vars 0 "j") (vars 0 "k");
         ])
      64.0
  in
  (* DRAM volume shaped objective: N^3/Si + N^3/Sj terms. *)
  let s d = M.mul (vars 0 d) (M.mul (vars 1 d) (vars 2 d)) in
  let objective =
    P.of_monomials
      [
        M.scale (n ** 3.0) (M.pow (s "i") (-1.0));
        M.scale (n ** 3.0) (M.pow (s "j") (-1.0));
        M.scale (n ** 3.0) (M.pow (s "k") (-1.0));
      ]
  in
  let prob =
    Gp.Problem.make ~objective ~ineqs:(("reg", reg_cap) :: bounds) ~eqs ()
  in
  let sol = solve prob in
  check_optimal sol;
  Alcotest.(check bool)
    "feasible" true
    (Gp.Problem.is_feasible ~tol:1e-4 prob (Gp.Solver.env sol))

(* Boyd et al.'s floor-planning-style GP: minimize the bounding-box area
   h*w of two stacked rectangles with fixed areas and aspect limits.
   minimize h*w s.t. h >= h1 + h2, w*h1 >= a1, w*h2 >= a2,
   aspect: h1 <= 2w, w <= 2 h1 (etc.).  With a1 = a2 = 2 and loose aspect
   bounds the optimum stacks two 1x2 rectangles: w = 2, h = 2, area 4. *)
let test_floorplan () =
  let v = M.var in
  let prob =
    Gp.Problem.make
      ~objective:(P.of_monomial (M.mul (v "h") (v "w")))
      ~ineqs:
        [
          ( "stack",
            Gp.Problem.le (P.add (P.var "h1") (P.var "h2")) (v "h") );
          ("area1", P.of_monomial (M.make 2.0 [ ("w", -1.0); ("h1", -1.0) ]));
          ("area2", P.of_monomial (M.make 2.0 [ ("w", -1.0); ("h2", -1.0) ]));
          ("w<=4", Gp.Problem.le_const (P.var "w") 4.0);
          ("h1<=4", Gp.Problem.le_const (P.var "h1") 4.0);
          ("h2<=4", Gp.Problem.le_const (P.var "h2") 4.0);
        ]
      ()
  in
  let sol = solve prob in
  check_optimal sol;
  check_float "area" 4.0 sol.Gp.Solver.objective

(* A moderately large structured instance (approximately the size of a
   Thistle co-design program) must solve quickly and to feasibility. *)
let test_large_structured () =
  let n_groups = 12 in
  let var g l = Printf.sprintf "x%d_%d" g l in
  let eqs =
    List.init n_groups (fun g ->
        let product =
          List.fold_left (fun acc l -> M.mul acc (M.var (var g l))) M.one [ 0; 1; 2; 3 ]
        in
        (Printf.sprintf "eq%d" g, Gp.Problem.eq product (M.const 64.0)))
  in
  let bounds =
    List.concat_map
      (fun g ->
        List.map
          (fun l ->
            (Printf.sprintf "b%d_%d" g l, P.of_monomial (M.var_pow (var g l) (-1.0))))
          [ 0; 1; 2; 3 ])
      (List.init n_groups (fun g -> g))
  in
  let cap =
    ( "cap",
      Gp.Problem.le_const
        (P.of_monomials (List.init n_groups (fun g -> M.var (var g 0))))
        48.0 )
  in
  let objective =
    P.of_monomials
      (List.init n_groups (fun g -> M.scale 100.0 (M.var_pow (var g 2) (-1.0))))
  in
  let prob = Gp.Problem.make ~objective ~ineqs:(cap :: bounds) ~eqs () in
  let t0 = Sys.time () in
  let sol = solve prob in
  let elapsed = Sys.time () -. t0 in
  check_optimal sol;
  Alcotest.(check bool)
    "feasible" true
    (Gp.Problem.is_feasible ~tol:1e-4 prob (Gp.Solver.env sol));
  Alcotest.(check bool)
    (Printf.sprintf "fast enough (%.2f s)" elapsed)
    true (elapsed < 5.0)

let test_violations_report () =
  let prob =
    Gp.Problem.make ~objective:(P.var "x")
      ~ineqs:[ ("x<=2", Gp.Problem.le_const (P.var "x") 2.0) ]
      ~eqs:[ ("xy=4", Gp.Problem.eq (M.mul (M.var "x") (M.var "y")) (M.const 4.0)) ]
      ()
  in
  let bad = function "x" -> 3.0 | _ -> 1.0 in
  let violations = Gp.Problem.violations prob bad in
  Alcotest.(check (list string))
    "both violated" [ "x<=2"; "xy=4" ]
    (List.map fst violations);
  let good = function "x" -> 2.0 | _ -> 2.0 in
  Alcotest.(check bool) "feasible point" true (Gp.Problem.is_feasible prob good)

let test_zero_objective_rejected () =
  Alcotest.check_raises "zero objective"
    (Invalid_argument "Gp.Problem.make: zero objective") (fun () ->
      ignore (Gp.Problem.make ~objective:P.zero ()))

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* lookup/env on a missing variable must raise a descriptive
   Invalid_argument naming the variable and the ones the solution does
   carry — never a bare Not_found. *)
let test_lookup_missing () =
  let prob =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.of_monomial (M.var_pow "x" (-1.0))))
      ()
  in
  let sol = solve prob in
  let expect_raise f =
    match f () with
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the missing variable" msg)
        true (contains msg "nosuch");
      Alcotest.(check bool)
        (Printf.sprintf "message %S lists the available variables" msg)
        true (contains msg "x")
    | exception Not_found -> Alcotest.fail "raised bare Not_found"
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_raise (fun () -> Gp.Solver.lookup sol "nosuch");
  expect_raise (fun () -> Gp.Solver.env sol "nosuch")

(* --- telemetry --- *)

let test_stats_optimal () =
  let prob =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.var "y"))
      ~ineqs:
        [ ("xy>=1", P.of_monomial (M.make 1.0 [ ("x", -1.0); ("y", -1.0) ])) ]
      ()
  in
  let st = Gp.Solver.fresh_stats () in
  let sol = Gp.Solver.solve ~stats:st prob in
  check_optimal sol;
  Alcotest.(check bool) "phase II ran" true (st.Gp.Solver.phase2_outer > 0);
  Alcotest.(check bool) "newton steps counted" true
    (st.Gp.Solver.newton_iters >= st.Gp.Solver.phase2_outer);
  Alcotest.(check bool) "gap is finite" true (Float.is_finite st.Gp.Solver.duality_gap);
  Alcotest.(check bool)
    (Printf.sprintf "gap %g certified below tolerance" st.Gp.Solver.duality_gap)
    true
    (st.Gp.Solver.duality_gap >= 0.0 && st.Gp.Solver.duality_gap <= 1e-6);
  (* Passing a sink must not perturb the solution. *)
  let plain = solve prob in
  Alcotest.(check bool) "solution unchanged by stats" true
    (plain.Gp.Solver.values = sol.Gp.Solver.values
    && Int64.bits_of_float plain.Gp.Solver.objective
       = Int64.bits_of_float sol.Gp.Solver.objective)

let test_stats_infeasible () =
  let prob =
    Gp.Problem.make ~objective:(P.var "x")
      ~ineqs:
        [
          ("x<=0.5", Gp.Problem.le_const (P.var "x") 0.5);
          ("x>=2", P.of_monomial (M.make 2.0 [ ("x", -1.0) ]));
        ]
      ()
  in
  let st = Gp.Solver.fresh_stats () in
  let sol = Gp.Solver.solve ~stats:st prob in
  Alcotest.(check string) "status" "infeasible" (status_name sol.Gp.Solver.status);
  Alcotest.(check bool) "gap is nan when phase II never ran" true
    (Float.is_nan st.Gp.Solver.duality_gap)

let test_stats_no_inequalities () =
  let prob =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.of_monomial (M.var_pow "x" (-1.0))))
      ()
  in
  let st = Gp.Solver.fresh_stats () in
  let sol = Gp.Solver.solve ~stats:st prob in
  check_float "objective" 2.0 sol.Gp.Solver.objective;
  Alcotest.(check (float 0.0)) "gap is exactly 0 without inequalities" 0.0
    st.Gp.Solver.duality_gap

let test_totals_accumulate () =
  let s1 = Gp.Solver.fresh_stats () in
  s1.Gp.Solver.phase1_outer <- 2;
  s1.Gp.Solver.phase2_outer <- 5;
  s1.Gp.Solver.newton_iters <- 40;
  s1.Gp.Solver.backtracks <- 7;
  s1.Gp.Solver.kkt_regularizations <- 1;
  s1.Gp.Solver.duality_gap <- 1e-3;
  let s2 = Gp.Solver.fresh_stats () in
  s2.Gp.Solver.phase2_outer <- 3;
  s2.Gp.Solver.newton_iters <- 10;
  (* s2's gap stays nan (infeasible solve): it must not poison the max. *)
  let t =
    Gp.Solver.(accumulate (accumulate zero_totals s1) s2)
  in
  Alcotest.(check int) "solves" 2 t.Gp.Solver.solves;
  Alcotest.(check int) "phase1" 2 t.Gp.Solver.t_phase1_outer;
  Alcotest.(check int) "phase2" 8 t.Gp.Solver.t_phase2_outer;
  Alcotest.(check int) "newton" 50 t.Gp.Solver.t_newton_iters;
  Alcotest.(check int) "backtracks" 7 t.Gp.Solver.t_backtracks;
  Alcotest.(check int) "kkt" 1 t.Gp.Solver.t_kkt_regularizations;
  Alcotest.(check (float 0.0)) "nan gap skipped in max" 1e-3
    t.Gp.Solver.max_duality_gap;
  (* Accumulation order must not matter. *)
  let t' = Gp.Solver.(accumulate (accumulate zero_totals s2) s1) in
  Alcotest.(check bool) "order-independent" true (t = t')

(* --- properties --- *)

(* Monomial objective with nonnegative exponents over a box [1, u]^2 is
   minimized at the all-ones corner. *)
let prop_box_corner =
  let gen =
    QCheck2.Gen.(
      triple (float_range 0.1 3.0) (float_range 0.1 3.0) (float_range 2.0 16.0))
  in
  QCheck2.Test.make ~name:"monomial over a box is minimized at 1" ~count:50 gen
    (fun (a, b, u) ->
      let prob =
        Gp.Problem.make
          ~objective:(P.of_monomial (M.make 1.0 [ ("x", a); ("y", b) ]))
          ~ineqs:
            [
              ("x>=1", P.of_monomial (M.var_pow "x" (-1.0)));
              ("y>=1", P.of_monomial (M.var_pow "y" (-1.0)));
              ("x<=u", Gp.Problem.le_const (P.var "x") u);
              ("y<=u", Gp.Problem.le_const (P.var "y") u);
            ]
          ()
      in
      let sol = solve prob in
      approx ~eps:1e-3 1.0 sol.Gp.Solver.objective)

(* Random 2-variable posynomial objective over a box: the solver should
   never be beaten by a grid scan (up to tolerance). *)
let prop_beats_grid =
  let gen_term =
    QCheck2.Gen.(
      triple (float_range 0.1 5.0) (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
  in
  let gen = QCheck2.Gen.(list_size (int_range 1 4) gen_term) in
  QCheck2.Test.make ~name:"solver <= grid scan on the box" ~count:40 gen (fun terms ->
      let objective =
        P.of_monomials
          (List.map (fun (c, a, b) -> M.make c [ ("x", a); ("y", b) ]) terms)
      in
      let u = 8.0 in
      let prob =
        Gp.Problem.make ~objective
          ~ineqs:
            [
              ("x>=1", P.of_monomial (M.var_pow "x" (-1.0)));
              ("y>=1", P.of_monomial (M.var_pow "y" (-1.0)));
              ("x<=u", Gp.Problem.le_const (P.var "x") u);
              ("y<=u", Gp.Problem.le_const (P.var "y") u);
            ]
          ()
      in
      let sol = solve prob in
      let grid_best = ref infinity in
      let steps = 40 in
      for i = 0 to steps do
        for j = 0 to steps do
          let x = exp (log u *. float_of_int i /. float_of_int steps) in
          let y = exp (log u *. float_of_int j /. float_of_int steps) in
          let v = P.eval (function "x" -> x | _ -> y) objective in
          if v < !grid_best then grid_best := v
        done
      done;
      sol.Gp.Solver.objective <= !grid_best *. 1.001)

(* The returned point always satisfies the constraints. *)
let prop_solution_feasible =
  let gen =
    QCheck2.Gen.(
      triple (float_range 1.5 100.0) (float_range 1.5 100.0) (float_range 1.5 50.0))
  in
  QCheck2.Test.make ~name:"solution is feasible" ~count:50 gen (fun (cap1, cap2, n) ->
      let prob =
        Gp.Problem.make
          ~objective:(P.add (P.var "x") (P.of_monomial (M.make n [ ("y", -1.0) ])))
          ~ineqs:
            [
              ("xy<=cap1", Gp.Problem.le_const (P.of_monomial (M.mul (M.var "x") (M.var "y"))) cap1);
              ("x+y<=cap2", Gp.Problem.le_const (P.add (P.var "x") (P.var "y")) cap2);
              ("x>=1", P.of_monomial (M.var_pow "x" (-1.0)));
              ("y>=1", P.of_monomial (M.var_pow "y" (-1.0)));
            ]
          ()
      in
      let sol = solve prob in
      match sol.Gp.Solver.status with
      | Gp.Solver.Infeasible -> cap1 < 1.0 +. 1e-6 || cap2 < 2.0 +. 1e-6
      | Gp.Solver.Deadline_exceeded -> false (* no deadline was set *)
      | Gp.Solver.Optimal | Gp.Solver.Iteration_limit ->
        Gp.Problem.is_feasible ~tol:1e-5 prob (Gp.Solver.env sol))

(* Random small DGP instances, feasible by construction: a random
   posynomial objective and a random posynomial constraint g <= cap over
   the box [1, 8]^2, with cap = slack * g(1, 1) so the all-ones point is
   strictly feasible.  Whenever the solver claims Optimal, the returned
   point must (a) violate nothing, (b) not be beaten by a brute-force
   log-grid scan over the feasible box, and (c) carry a certified gap. *)
let gen_dgp =
  QCheck2.Gen.(
    let term lo = triple (float_range 0.1 5.0) (float_range lo 2.0) (float_range lo 2.0) in
    triple
      (list_size (int_range 1 4) (term (-2.0)))
      (list_size (int_range 1 3) (term 0.1))
      (float_range 1.2 4.0))

let build_dgp (obj_terms, con_terms, slack) =
  let posy terms =
    P.of_monomials (List.map (fun (c, a, b) -> M.make c [ ("x", a); ("y", b) ]) terms)
  in
  let g = posy con_terms in
  let cap = slack *. P.eval (fun _ -> 1.0) g in
  let u = 8.0 in
  let prob =
    Gp.Problem.make ~objective:(posy obj_terms)
      ~ineqs:
        [
          ("g<=cap", Gp.Problem.le_const g cap);
          ("x>=1", P.of_monomial (M.var_pow "x" (-1.0)));
          ("y>=1", P.of_monomial (M.var_pow "y" (-1.0)));
          ("x<=u", Gp.Problem.le_const (P.var "x") u);
          ("y<=u", Gp.Problem.le_const (P.var "y") u);
        ]
      ()
  in
  (prob, posy obj_terms, g, cap, u)

let prop_random_dgp_optimal =
  QCheck2.Test.make ~name:"random feasible DGP: optimal, clean, matches grid"
    ~count:40 gen_dgp (fun instance ->
      let prob, objective, g, cap, u = build_dgp instance in
      let st = Gp.Solver.fresh_stats () in
      let sol = Gp.Solver.solve ~stats:st prob in
      match sol.Gp.Solver.status with
      | Gp.Solver.Infeasible -> false (* feasible by construction *)
      | Gp.Solver.Deadline_exceeded -> false (* no deadline was set *)
      | Gp.Solver.Iteration_limit ->
        (* Not certified: only require the point it did return to be
           feasible (matches the solver's documented contract). *)
        Gp.Problem.is_feasible ~tol:1e-5 prob (Gp.Solver.env sol)
      | Gp.Solver.Optimal ->
        let env = Gp.Solver.env sol in
        let clean = Gp.Problem.violations ~tol:1e-5 prob env = [] in
        let grid_best = ref infinity in
        let steps = 40 in
        for i = 0 to steps do
          for j = 0 to steps do
            let x = exp (log u *. float_of_int i /. float_of_int steps) in
            let y = exp (log u *. float_of_int j /. float_of_int steps) in
            let at = function "x" -> x | _ -> y in
            if P.eval at g <= cap then begin
              let v = P.eval at objective in
              if v < !grid_best then grid_best := v
            end
          done
        done;
        clean
        && sol.Gp.Solver.objective <= !grid_best *. 1.001
        && Float.is_finite st.Gp.Solver.duality_gap)

(* The same instances with an added constant constraint c <= 1, c > 1:
   the solver must certify infeasibility, and the certificate is the
   constant constraint itself — it is violated at every point, which
   Gp.Problem.violations confirms without reference to the solver. *)
let prop_constant_infeasible =
  QCheck2.Gen.(pair gen_dgp (float_range 1.01 10.0)) |> fun gen ->
  QCheck2.Test.make ~name:"constant-violated DGP is reported infeasible" ~count:40
    gen (fun (instance, c) ->
      let prob0, _, _, _, _ = build_dgp instance in
      let prob =
        Gp.Problem.make
          ~objective:(Gp.Problem.objective prob0)
          ~ineqs:(("impossible", P.of_monomial (M.const c)) :: Gp.Problem.ineqs prob0)
          ~eqs:(Gp.Problem.eqs prob0) ()
      in
      let sol = solve prob in
      sol.Gp.Solver.status = Gp.Solver.Infeasible
      && List.mem_assoc "impossible" (Gp.Problem.violations prob (fun _ -> 1.0)))

(* Regression: Smooth.linear used to hand out one shared Hessian matrix
   from every eval; a caller accumulating into it corrupted later
   evaluations. *)
let test_linear_hessian_fresh () =
  let f = Gp.Smooth.linear 2 [| 1.0; 2.0 |] 3.0 in
  let y = [| 0.5; -0.5 |] in
  let _, g1, h1 = f.Gp.Smooth.eval y in
  Linalg.Mat.add_to h1 0 0 5.0;
  g1.(0) <- 42.0;
  let _, g2, h2 = f.Gp.Smooth.eval y in
  check_float "hessian fresh" 0.0 (Linalg.Mat.get h2 0 0);
  check_float "gradient fresh" 1.0 g2.(0)

(* The two kernels must agree on every problem to solver tolerance (the
   function evaluations are bit-identical; only the KKT factorization
   differs). *)
let kernel_ab_problem () =
  Gp.Problem.make
    ~objective:(P.add (P.var "x") (P.add (P.var "y") (P.var "z")))
    ~ineqs:
      [
        ("xyz>=8", P.of_monomial (M.make 8.0 [ ("x", -1.0); ("y", -1.0); ("z", -1.0) ]));
        ("x<=4", Gp.Problem.le_const (P.var "x") 4.0);
      ]
    ~eqs:[ ("yz=4", Gp.Problem.eq (M.mul (M.var "y") (M.var "z")) (M.const 4.0)) ]
    ()

let test_kernel_ab () =
  let prob = kernel_ab_problem () in
  let a = Gp.Solver.solve ~kernel:`Compiled prob in
  let b = Gp.Solver.solve ~kernel:`List prob in
  Alcotest.(check string) "status" (status_name b.Gp.Solver.status)
    (status_name a.Gp.Solver.status);
  check_float "objective" b.Gp.Solver.objective a.Gp.Solver.objective;
  List.iter
    (fun (x, v) -> check_float x v (Gp.Solver.lookup a x))
    b.Gp.Solver.values

let test_warm_start () =
  let prob = kernel_ab_problem () in
  let cold = Gp.Solver.solve prob in
  check_optimal cold;
  let warm = Gp.Solver.solve ~warm_start:cold.Gp.Solver.values prob in
  check_optimal warm;
  check_float "objective" cold.Gp.Solver.objective warm.Gp.Solver.objective;
  (* Garbage warm values are ignored, never fatal. *)
  let junk =
    Gp.Solver.solve ~warm_start:[ ("x", -3.0); ("y", nan); ("nosuch", 1.0) ] prob
  in
  check_optimal junk;
  check_float "objective after junk seed" cold.Gp.Solver.objective
    junk.Gp.Solver.objective

let () =
  Alcotest.run "gp"
    [
      ( "known optima",
        [
          Alcotest.test_case "AM-GM" `Quick test_amgm;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "unconstrained" `Quick test_unconstrained;
          Alcotest.test_case "fractional exponent" `Quick test_fractional_exponent;
          Alcotest.test_case "box design" `Quick test_box_design;
          Alcotest.test_case "matmul shaped" `Quick test_matmul_shaped;
          Alcotest.test_case "floorplan" `Quick test_floorplan;
          Alcotest.test_case "large structured" `Quick test_large_structured;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "violations report" `Quick test_violations_report;
          Alcotest.test_case "zero objective" `Quick test_zero_objective_rejected;
          Alcotest.test_case "lookup missing variable" `Quick test_lookup_missing;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "stats on optimal" `Quick test_stats_optimal;
          Alcotest.test_case "stats on infeasible" `Quick test_stats_infeasible;
          Alcotest.test_case "stats without inequalities" `Quick
            test_stats_no_inequalities;
          Alcotest.test_case "totals accumulate" `Quick test_totals_accumulate;
        ] );
      ( "infeasibility",
        [
          Alcotest.test_case "conflicting bounds" `Quick test_infeasible;
          Alcotest.test_case "inconsistent equality" `Quick test_inconsistent_equality;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "linear hessian fresh" `Quick test_linear_hessian_fresh;
          Alcotest.test_case "compiled vs list" `Quick test_kernel_ab;
          Alcotest.test_case "warm start" `Quick test_warm_start;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_box_corner;
            prop_beats_grid;
            prop_solution_feasible;
            prop_random_dgp_optimal;
            prop_constant_infeasible;
          ] );
    ]
