(* Communication-aware delay model tests (DESIGN §16).

   The analytical evaluator derives per-link occupancies from the
   closed-form access counts; the timed refsim re-derives them by
   literally walking the copy schedule and charging every transfer to
   its link with burst quantization.  The two share only the Link
   arithmetic in archspec, so bit-for-bit agreement in uncontended mode
   is a meaningful check of both sides' word/burst accounting. *)

module Nest = Workload.Nest
module Conv = Workload.Conv
module Mapping = Mapspace.Mapping
module Arch = Archspec.Arch
module Tech = Archspec.Technology
module Link = Archspec.Link
module Evaluate = Accmodel.Evaluate
module Sim = Refsim.Simulate
module Pl = Thistle.Pipeline
module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize

(* Twelve layers spanning both networks, as in the differential test. *)
let layers =
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  take 6 Workload.Zoo.yolo9000 @ take 6 Workload.Zoo.resnet18

let () = assert (List.length layers >= 12)

(* An architecture large enough that no zoo tiling below trips the
   capacity checks: the tests here are about timing, not feasibility. *)
let big_arch =
  Arch.make ~name:"roomy" ~pes:(1 lsl 16) ~registers:(1 lsl 40)
    ~sram_words:(1 lsl 45)

(* --- small-tiling construction (shared with test_differential) --- *)

let divisor_of n ~limit =
  let rec go d =
    if d < 2 then 1 else if d <= limit && n mod d = 0 then d else go (d - 1)
  in
  go 4

type split = { reg : int; pe : int; spatial : int; dram : int }

let split_dims ?(budget = 4000) ~pick nest =
  let budget = ref budget in
  let take n =
    let d = pick n ~limit:(Int.min 4 !budget) in
    budget := !budget / d;
    d
  in
  List.map
    (fun d ->
      let e = Nest.extent nest d in
      let pe = take e in
      let dram = take (e / pe) in
      let spatial = take (e / pe / dram) in
      (d, { reg = e / pe / dram / spatial; pe; spatial; dram }))
    (Nest.dim_names nest)

let full_perm restricted dims =
  restricted @ List.filter (fun d -> not (List.mem d restricted)) dims

let mapping_of_splits nest splits ~pe_order ~dram_order =
  let dims = Nest.dim_names nest in
  let factors select = List.map (fun (d, s) -> (d, select s)) splits in
  Mapping.canonical
    ~reg:(factors (fun s -> s.reg), full_perm [] dims)
    ~pe:(factors (fun s -> s.pe), full_perm pe_order dims)
    ~spatial:(factors (fun s -> s.spatial))
    ~dram:(factors (fun s -> s.dram), full_perm dram_order dims)

let fixed_mapping nest =
  let splits = split_dims ~pick:(fun n ~limit -> divisor_of n ~limit) nest in
  let dims = Nest.dim_names nest in
  mapping_of_splits nest splits ~pe_order:dims ~dram_order:(List.rev dims)

let random_mapping rng nest =
  let pick n ~limit =
    let options =
      List.filter (fun d -> d <= limit && n mod d = 0) [ 1; 2; 3; 4 ]
    in
    List.nth options (Random.State.int rng (List.length options))
  in
  let splits = split_dims ~pick nest in
  let shuffle xs =
    List.map snd
      (List.sort compare (List.map (fun x -> (Random.State.bits rng, x)) xs))
  in
  let dims = Nest.dim_names nest in
  mapping_of_splits nest splits ~pe_order:(shuffle dims)
    ~dram_order:(shuffle dims)

(* --- analytical model vs timed replay, bit for bit --- *)

let bits = Int64.bits_of_float

let check_bits label expected actual =
  Alcotest.(check int64) label (bits expected) (bits actual)

(* Uncontended: cycles, binding and every channel's words/bursts/busy
   must agree exactly — no epsilon. *)
let check_agreement ~label tech nest mapping =
  let m =
    match Evaluate.evaluate ~comm:Link.Comm_aware tech big_arch nest mapping with
    | Ok m -> m
    | Error msg -> Alcotest.failf "%s: evaluate failed: %s" label msg
  in
  let t =
    match Sim.timed tech nest mapping with
    | Ok t -> t
    | Error msg -> Alcotest.failf "%s: timed refsim failed: %s" label msg
  in
  check_bits (label ^ ": cycles") m.Evaluate.cycles t.Sim.cycles;
  Alcotest.(check string) (label ^ ": binding") m.Evaluate.binding t.Sim.binding;
  Alcotest.(check (list string))
    (label ^ ": channel order")
    (List.map (fun (o : Link.occupancy) -> o.Link.chan) m.Evaluate.comm)
    (List.map (fun (o : Link.occupancy) -> o.Link.chan) t.Sim.channels);
  List.iter2
    (fun (a : Link.occupancy) (b : Link.occupancy) ->
      let l what = Printf.sprintf "%s: %s %s" label a.Link.chan what in
      check_bits (l "words") a.Link.words b.Link.words;
      check_bits (l "bursts") a.Link.bursts b.Link.bursts;
      check_bits (l "busy") a.Link.busy b.Link.busy)
    m.Evaluate.comm t.Sim.channels;
  (m, t)

(* Contention can only serialize, never accelerate. *)
let check_contention_monotone ~label tech nest mapping =
  let cycles_of = function
    | Ok (m : Evaluate.t) -> m.Evaluate.cycles
    | Error msg -> Alcotest.failf "%s: evaluate failed: %s" label msg
  in
  let base =
    cycles_of (Evaluate.evaluate ~comm:Link.Comm_aware tech big_arch nest mapping)
  in
  let contended =
    cycles_of
      (Evaluate.evaluate ~comm:Link.Comm_aware ~contention:true tech big_arch
         nest mapping)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: contention %.17g >= uncontended %.17g" label contended
       base)
    true (contended >= base);
  let timed =
    match Sim.timed ~contention:true tech nest mapping with
    | Ok t -> t
    | Error msg -> Alcotest.failf "%s: contended refsim failed: %s" label msg
  in
  check_bits (label ^ ": contended refsim agrees") contended timed.Sim.cycles

let test_zoo_agreement () =
  List.iter
    (fun layer ->
      let nest = Conv.to_nest layer in
      let mapping = fixed_mapping nest in
      List.iter
        (fun (tech_name, tech) ->
          let label =
            Printf.sprintf "%s/%s" layer.Conv.layer_name tech_name
          in
          ignore (check_agreement ~label tech nest mapping);
          check_contention_monotone ~label tech nest mapping)
        [ ("eyeriss", Tech.table3); ("edge", Tech.edge) ])
    layers

let prop_random_agreement =
  let gen = QCheck2.Gen.int_range 0 100000 in
  QCheck2.Test.make ~name:"timed refsim = analytical on random zoo tilings"
    ~count:40 gen (fun seed ->
      let rng = Random.State.make [| seed |] in
      let layer = List.nth layers (Random.State.int rng (List.length layers)) in
      let nest = Conv.to_nest layer in
      let mapping = random_mapping rng nest in
      let tech = if Random.State.bool rng then Tech.table3 else Tech.edge in
      let label = Printf.sprintf "%s/seed=%d" layer.Conv.layer_name seed in
      ignore (check_agreement ~label tech nest mapping);
      check_contention_monotone ~label tech nest mapping;
      true)

(* --- the two lowerings must actually disagree somewhere --- *)

(* Collapse a binding resource to the coarse class the overlapped model
   can express: both DRAM directions contend for the aggregate DRAM
   interface, the NoC directions and the register stream for the
   aggregate SRAM port. *)
let binding_class = function
  | "compute" -> `Compute
  | "dram" | "dram-rd" | "dram-wr" -> `Dram
  | "sram" | "noc-rd" | "noc-wr" | "reg" -> `Sram
  | "bus" -> `Bus
  | other -> Alcotest.failf "unexpected binding resource %S" other

(* On the bandwidth-starved edge point the burst overheads shift which
   resource binds: at least one zoo layer must flip class between the
   two lowerings, and on every flipped layer the timed replay must
   confirm the comm-aware verdict exactly. *)
let test_edge_models_disagree () =
  let tech = Tech.edge in
  let disagreements = ref 0 in
  List.iter
    (fun layer ->
      let nest = Conv.to_nest layer in
      let mapping = fixed_mapping nest in
      let overlapped =
        match
          Evaluate.evaluate ~comm:Link.Overlapped tech big_arch nest mapping
        with
        | Ok m -> m
        | Error msg ->
          Alcotest.failf "%s: overlapped evaluate failed: %s"
            layer.Conv.layer_name msg
      in
      Alcotest.(check (list string))
        (layer.Conv.layer_name ^ ": overlapped reports no channels")
        []
        (List.map (fun (o : Link.occupancy) -> o.Link.chan) overlapped.Evaluate.comm);
      let comm_aware, timed =
        check_agreement ~label:(layer.Conv.layer_name ^ "/edge") tech nest
          mapping
      in
      Alcotest.(check string)
        (layer.Conv.layer_name ^ ": refsim confirms binding")
        comm_aware.Evaluate.binding timed.Sim.binding;
      if
        binding_class overlapped.Evaluate.binding
        <> binding_class comm_aware.Evaluate.binding
      then incr disagreements)
    layers;
  Alcotest.(check bool)
    (Printf.sprintf "models disagree on >= 1 zoo layer (got %d)" !disagreements)
    true (!disagreements >= 1)

(* The default direct-evaluation path is the historical overlapped model:
   explicit [~comm:Overlapped] and no argument are the same thing. *)
let test_overlapped_is_default () =
  let layer = List.hd layers in
  let nest = Conv.to_nest layer in
  let mapping = fixed_mapping nest in
  let dflt = Result.get_ok (Evaluate.evaluate Tech.table3 big_arch nest mapping) in
  let expl =
    Result.get_ok
      (Evaluate.evaluate ~comm:Link.Overlapped Tech.table3 big_arch nest mapping)
  in
  check_bits "cycles" expl.Evaluate.cycles dflt.Evaluate.cycles;
  Alcotest.(check string) "binding" expl.Evaluate.binding dflt.Evaluate.binding;
  Alcotest.(check int) "no channels" 0 (List.length dflt.Evaluate.comm);
  check_bits "overlapped cycles = max of the aggregate components"
    (Float.max dflt.Evaluate.compute_cycles
       (Float.max dflt.Evaluate.sram_cycles dflt.Evaluate.dram_cycles))
    dflt.Evaluate.cycles

(* --- jobs-independence of both comm models (§9 contract) --- *)

let small_layers =
  List.map Workload.Conv.to_nest
    [
      Workload.Conv.make ~name:"c-small" ~k:8 ~c:8 ~hw:8 ~rs:3 ();
      Workload.Conv.make ~name:"c-1x1" ~k:16 ~c:32 ~hw:16 ~rs:1 ();
    ]

let fingerprint (e : Pl.entry) =
  let name = Workload.Nest.name e.Pl.nest in
  match e.Pl.result with
  | Error msg -> Printf.sprintf "%s: error: %s" name msg
  | Ok r ->
    let o = r.O.outcome in
    Format.asprintf "%s: arch=%s mapping=(%a) energy=%Lx cycles=%Lx binding=%s"
      name o.I.arch.Arch.arch_name Mapping.pp o.I.mapping
      (bits o.I.metrics.Evaluate.energy_pj)
      (bits o.I.metrics.Evaluate.cycles)
      o.I.metrics.Evaluate.binding

let run_pipeline ~comm ~contention ~jobs =
  let config =
    {
      O.default_config with
      O.max_choices = 8;
      top_choices = 1;
      comm;
      contention;
      jobs;
    }
  in
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let entries =
    Pl.run_layers ~config Tech.edge
      (F.Codesign { area_budget = 6.0e5 })
      F.Delay small_layers
  in
  Obs.Metrics.disable ();
  let counters = Obs.Metrics.counters (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  (List.map fingerprint entries, counters)

let test_jobs_independent () =
  List.iter
    (fun (comm, contention) ->
      let label =
        Printf.sprintf "%s%s" (Link.comm_model_name comm)
          (if contention then "+contention" else "")
      in
      let fps_seq, counters_seq = run_pipeline ~comm ~contention ~jobs:1 in
      let fps_par, counters_par = run_pipeline ~comm ~contention ~jobs:4 in
      Alcotest.(check (list string)) (label ^ ": results") fps_seq fps_par;
      Alcotest.(check (list (pair string int)))
        (label ^ ": counters")
        counters_seq counters_par;
      let value name =
        match List.assoc_opt name counters_seq with Some v -> v | None -> 0
      in
      match comm with
      | Link.Comm_aware ->
        Alcotest.(check bool)
          (label ^ ": comm delay constraints were lowered")
          true
          (value "comm.delay_constraints" > 0)
      | Link.Overlapped ->
        Alcotest.(check int)
          (label ^ ": overlapped lowers no comm constraints")
          0
          (value "comm.delay_constraints"))
    [
      (Link.Comm_aware, false);
      (Link.Comm_aware, true);
      (Link.Overlapped, false);
    ]

let () =
  Alcotest.run "comm"
    [
      ( "timed refsim vs analytical",
        [
          Alcotest.test_case "zoo sweep, both technologies" `Quick
            test_zoo_agreement;
          QCheck_alcotest.to_alcotest prop_random_agreement;
        ] );
      ( "model disagreement",
        [
          Alcotest.test_case "edge point flips the binding class" `Quick
            test_edge_models_disagree;
          Alcotest.test_case "overlapped is the direct-call default" `Quick
            test_overlapped_is_default;
        ] );
      ( "determinism",
        [ Alcotest.test_case "jobs-independent" `Quick test_jobs_independent ] );
    ]
