type failure = {
  site : string;
  provenance : string;
  exn : string;
  backtrace : string;
  elapsed_ns : float;
  attempts : int;
}

let now_ns () = Unix.gettimeofday () *. 1e9

let describe f =
  Printf.sprintf "%s failed (%d attempt%s): %s [%s]" f.site f.attempts
    (if f.attempts = 1 then "" else "s")
    f.exn f.provenance

let pp_failure ppf f = Format.pp_print_string ppf (describe f)

let pp_summary ppf failures =
  Format.fprintf ppf "%-11s %8s %9s  %-40s %s@." "site" "attempts" "ms" "exception"
    "provenance";
  List.iter
    (fun f ->
      let exn =
        if String.length f.exn <= 40 then f.exn else String.sub f.exn 0 37 ^ "..."
      in
      Format.fprintf ppf "%-11s %8d %9.1f  %-40s %s@." f.site f.attempts
        (f.elapsed_ns /. 1e6) exn f.provenance)
    failures

exception Injected_fault of string

module Inject = struct
  type kind = [ `Crash | `Stall ]

  type rule = { kind : kind; site : string; filter : string option; prob : float }

  type t = { seed : int; rules : rule list }

  let none = { seed = 0; rules = [] }

  let is_none t = t.rules = []

  let seed t = t.seed

  let kind_name = function `Crash -> "crash" | `Stall -> "stall"

  (* FNV-1a, 64-bit: a stable string hash that does not depend on the
     compiler's [Hashtbl.hash] internals, so decisions are reproducible
     across builds. *)
  let fnv64 s =
    let prime = 0x100000001b3L in
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
      s;
    !h

  (* Murmur3's 64-bit finalizer.  FNV-1a alone diffuses a trailing-byte
     change through one multiply only, leaving the draws for attempt 0
     and attempt 1 of the same key about 1e-7 apart — retries would
     almost never re-roll.  The finalizer spreads any single-bit change
     across the whole word. *)
  let mix h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)

  (* Uniform draw in [0, 1) from the top 53 bits of the mixed hash. *)
  let unit_draw key =
    Int64.to_float (Int64.shift_right_logical (mix (fnv64 key)) 11)
    /. 9007199254740992.0

  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    if n = 0 then true
    else begin
      let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
      at 0
    end

  let decide t ~kind ~site ~provenance ~attempt =
    match
      List.fold_left
        (fun acc r ->
          if
            r.kind = kind && r.site = site
            && (match r.filter with None -> true | Some f -> contains ~sub:f provenance)
          then Float.max acc r.prob
          else acc)
        0.0 t.rules
    with
    | p when p <= 0.0 -> false
    | prob ->
      let key =
        Printf.sprintf "%d|%s|%s|%s|%d" t.seed (kind_name kind) site provenance attempt
      in
      unit_draw key < prob

  let crash t ~site ~provenance ~attempt = decide t ~kind:`Crash ~site ~provenance ~attempt

  let stall t ~site ~provenance ~attempt = decide t ~kind:`Stall ~site ~provenance ~attempt

  let parse_clause clause =
    let clause = String.trim clause in
    match String.index_opt clause '=' with
    | None -> Error (Printf.sprintf "inject: clause %S has no '='" clause)
    | Some eq ->
      let lhs = String.sub clause 0 eq in
      let rhs = String.sub clause (eq + 1) (String.length clause - eq - 1) in
      if lhs = "seed" then
        match int_of_string_opt rhs with
        | Some s -> Ok (`Seed s)
        | None -> Error (Printf.sprintf "inject: seed %S is not an integer" rhs)
      else begin
        match String.index_opt lhs '@' with
        | None ->
          Error
            (Printf.sprintf "inject: clause %S is neither seed=N nor KIND@SITE=PROB"
               clause)
        | Some at ->
          let kind_s = String.sub lhs 0 at in
          let site_s = String.sub lhs (at + 1) (String.length lhs - at - 1) in
          let kind =
            match kind_s with
            | "crash" -> Ok `Crash
            | "stall" -> Ok `Stall
            | k -> Error (Printf.sprintf "inject: unknown fault kind %S" k)
          in
          let site, filter =
            match (String.index_opt site_s '[', String.rindex_opt site_s ']') with
            | Some l, Some r when r = String.length site_s - 1 && l < r ->
              (String.sub site_s 0 l, Some (String.sub site_s (l + 1) (r - l - 1)))
            | _ -> (site_s, None)
          in
          match (kind, float_of_string_opt rhs) with
          | Error e, _ -> Error e
          | Ok _, None ->
            Error (Printf.sprintf "inject: probability %S is not a float" rhs)
          | Ok _, Some p when not (Float.is_finite p) || p < 0.0 || p > 1.0 ->
            Error (Printf.sprintf "inject: probability %s is outside [0, 1]" rhs)
          | Ok kind, Some prob ->
            if site = "" then Error (Printf.sprintf "inject: clause %S has no site" clause)
            else Ok (`Rule { kind; site; filter; prob })
      end

  let parse spec =
    let clauses =
      List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec)
    in
    if clauses = [] then Error "inject: empty spec"
    else
      List.fold_left
        (fun acc clause ->
          match (acc, parse_clause clause) with
          | (Error _ as e), _ -> e
          | _, (Error _ as e) -> e
          | Ok t, Ok (`Seed s) -> Ok { t with seed = s }
          | Ok t, Ok (`Rule r) -> Ok { t with rules = t.rules @ [ r ] })
        (Ok none) clauses

  let to_string t =
    String.concat ","
      (Printf.sprintf "seed=%d" t.seed
      :: List.map
           (fun r ->
             Printf.sprintf "%s@%s%s=%g" (kind_name r.kind) r.site
               (match r.filter with None -> "" | Some f -> "[" ^ f ^ "]")
               r.prob)
           t.rules)
end

let guard ?(inject = Inject.none) ?(attempt = 0) ~site ~provenance body =
  let start = now_ns () in
  match
    if Inject.crash inject ~site ~provenance ~attempt then
      raise (Injected_fault (Printf.sprintf "injected crash at %s [%s]" site provenance));
    body ()
  with
  | v -> Ok v
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    Error
      {
        site;
        provenance;
        exn = Printexc.to_string e;
        backtrace;
        elapsed_ns = now_ns () -. start;
        attempts = attempt + 1;
      }

let deadline_failure ?(attempts = 1) ~site ~provenance ~elapsed_ns () =
  { site; provenance; exn = "Deadline_exceeded"; backtrace = ""; elapsed_ns; attempts }

(* ------------------------------------------------------------------ *)
(* Admission control                                                  *)
(* ------------------------------------------------------------------ *)

module Admission = struct
  type t = { lock : Mutex.t; limit : int; mutable inflight : int }

  let create limit =
    if limit < 0 then invalid_arg "Robust.Admission.create: negative limit";
    { lock = Mutex.create (); limit; inflight = 0 }

  let limit t = t.limit

  let try_admit t =
    Mutex.lock t.lock;
    let admitted = t.inflight < t.limit in
    if admitted then t.inflight <- t.inflight + 1;
    Mutex.unlock t.lock;
    admitted

  let release t =
    Mutex.lock t.lock;
    if t.inflight <= 0 then begin
      Mutex.unlock t.lock;
      invalid_arg "Robust.Admission.release: nothing admitted"
    end
    else begin
      t.inflight <- t.inflight - 1;
      Mutex.unlock t.lock
    end

  let inflight t =
    Mutex.lock t.lock;
    let n = t.inflight in
    Mutex.unlock t.lock;
    n

  let with_admission t ~rejected body =
    if not (try_admit t) then rejected ()
    else Fun.protect ~finally:(fun () -> release t) body
end
