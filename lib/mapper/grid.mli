(** Grid-search architecture-dataflow co-design — the strategy of prior
    co-design frameworks that the paper contrasts with Thistle's
    single-shot formulation (Section II: "heuristic searches or bounded
    grid search, where specific combinations of architectural parameters
    are considered, and dataflow optimization is performed for each").

    The grid enumerates power-of-two register-file and SRAM capacities
    and derives for each pair the largest PE count that fits the area
    budget; each surviving architecture gets an independent mapping
    search with a per-point trial budget.  The total model-evaluation
    count is reported so the cost can be compared against Thistle's
    solver-based approach. *)

type config = {
  trials_per_point : int;  (** mapping-search budget per architecture *)
  seed : int;
  min_regs : int;  (** smallest register file considered (words) *)
  max_regs : int;
  min_sram : int;  (** smallest SRAM considered (words) *)
  max_sram : int;
}

val default_config : config
(** 2000 trials per point, registers 4..1024, SRAM 1 K..256 K words. *)

type point = {
  arch : Archspec.Arch.t;
  best : (Mapspace.Mapping.t * Accmodel.Evaluate.t) option;
}

type result = {
  points : point list;  (** every architecture evaluated, grid order *)
  winner : point option;  (** best by the search criterion *)
  total_trials : int;
}

val architectures :
  Archspec.Technology.t -> config -> area_budget:float -> Archspec.Arch.t list
(** The architecture grid: for each (registers, SRAM) pair of powers of
    two within the configured ranges, the maximal PE count affordable
    under the area budget (pairs that cannot afford one PE are dropped). *)

val search :
  ?config:config ->
  Archspec.Technology.t ->
  area_budget:float ->
  Search.criterion ->
  Workload.Nest.t ->
  result
