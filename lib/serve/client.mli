(** Minimal blocking client for the serve daemon: one connection, one
    request/response at a time.  Used by [thistle client], the tests and
    the bench harness. *)

type t

val unix_addr : string -> Unix.sockaddr
val tcp_addr : int -> Unix.sockaddr
(** Loopback. *)

val connect : ?max_frame:int -> Unix.sockaddr -> (t, string) result
val request : t -> Protocol.request -> (Protocol.response, string) result
(** One round trip.  Errors cover transport failures (connection reset,
    torn or oversized response frame) and undecodable responses. *)

val request_raw : t -> string -> (Protocol.response, string) result
(** Send a raw payload verbatim — the tests' hook for malformed
    requests. *)

val close : t -> unit
