(** Extent of one data dimension of a tensor tile, in factored affine form:

    [sum_k stride_k * extent_k + constant]

    where each [extent_k] is a monomial over trip-count variables (the
    number of distinct values the k-th iterator takes inside the tile) and
    [constant] is the usual halo correction [1 - sum_k stride_k].

    Example: for the input-tensor dimension indexed by [x*h + r] with tile
    extents [Ht] and [Rt], the footprint extent is
    [x*Ht + Rt - x]  (stride [x] on [h], stride 1 on [r], constant
    [1 - (x + 1) = -x]).

    Exact evaluation keeps the constant; the posynomial view used for
    geometric programming drops non-positive constants (a conservative
    over-approximation of at most [sum strides - 1] words per dimension). *)

type t

val make : (int * Monomial.t) list -> int -> t
(** [make terms constant]; every stride must be positive.  Extent
    monomials normally have coefficient 1 (pure products of trip-count
    variables); partial evaluation with {!bind} may fold constants into
    them. *)

val of_extent : Monomial.t -> t
(** A dimension indexed by a single stride-1 iterator: extent = monomial,
    constant 0. *)

val terms : t -> (int * Monomial.t) list

val constant : t -> int

val subst : string -> Monomial.t -> t -> t
(** Substitute a variable inside every extent monomial (see
    {!Monomial.subst}). *)

val bind : string -> float -> t -> t
(** Partial evaluation of one variable inside every extent monomial. *)

val mentions : t -> string -> bool

val eval_exact : (string -> float) -> t -> float

val to_posynomial : t -> Posynomial.t
(** Relaxed view: strides times extents, plus the constant only when it is
    positive (it never is for well-formed dims, but we keep the general
    rule). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
