(** On-disk content-addressed result store backing the serve daemon
    (DESIGN §14).

    An entry is keyed by the pair (solver-behavior fingerprint,
    request key) — {!Thistle.Optimize.config_fingerprint} and
    {!Thistle.Optimize.request_key} respectively — digested with
    {!Sweep.Journal.fingerprint} into a 16-hex name and fanned out as
    [root/<first-2-hex>/<digest>.json].  The entry records both key
    strings verbatim and {!get} verifies them against the caller's, so
    a 64-bit digest collision or a stale/corrupted file reads as a miss,
    never as a wrong answer.

    Writes go to a temp file in [root] and are [rename(2)]d into place,
    so readers — concurrent daemon threads or a restarted daemon — see
    either nothing or a complete entry.  Losing a race just rewrites the
    same bytes: payloads are pure functions of the key pair. *)

type t

val open_ : string -> (t, string) result
(** Create [root] (and one level of parents) if missing. *)

val root : t -> string

val digest : config:string -> request_key:string -> string
(** The 16-hex entry name; exposed for tests. *)

val entry_path : t -> config:string -> request_key:string -> string
(** Where the entry for this key pair lives; exposed for tests (e.g. to
    corrupt or truncate it). *)

val get : t -> config:string -> request_key:string -> string option
(** The stored payload, or [None] for missing, torn, corrupted or
    key-mismatched entries — every failure is a miss, never an
    exception. *)

val put : t -> config:string -> request_key:string -> string -> unit
(** Atomically persist a payload.  Raises [Sys_error]/[Unix_error] only
    for environmental failures (permissions, disk full). *)
