(** The serve wire protocol: request/response payloads and their JSON
    codec (DESIGN §14).

    Payloads are the {!Obs.Json} subset — objects, arrays, strings,
    signed integers — with floats travelling as IEEE-754 bit patterns in
    hex strings (the journal's convention), so every request re-encodes
    to the same bytes and cache keys derived from decoded requests are
    exact.  Every payload carries a ["v"] field; a version mismatch is a
    decode error, never a guess. *)

val version : int

type opts = {
  top_choices : int;
  max_choices : int;
  node_nm : float;  (** process node; Table III scaled first-order *)
}
(** The per-request subset of {!Thistle.Optimize.config} the protocol
    exposes.  Everything else (kernel, reuse policy, deadlines,
    injection) is fixed server-side by the daemon's base config and
    versioned by its {!Thistle.Optimize.config_fingerprint}. *)

val default_opts : opts

type request =
  | Optimize of {
      layer : string;
      objective : Thistle.Formulate.objective;
      arch : Archspec.Arch.t;
      opts : opts;
    }
  | Codesign of {
      layer : string;
      objective : Thistle.Formulate.objective;
      area : float option;  (** [None] means the Eyeriss area *)
      opts : opts;
    }
  | Pipeline of {
      pipeline : string;
      objective : Thistle.Formulate.objective;
      opts : opts;
    }
  | Metrics  (** daemon counter snapshot; never cached *)

type reject_kind =
  | Rejected  (** admission control: over the in-flight limit *)
  | Bad_request  (** malformed payload or unknown layer/pipeline *)
  | Failed  (** the optimization itself returned an error *)

type response =
  | Payload of { body : string; cached : bool }
  | Refused of { kind : reject_kind; message : string }

val describe : request -> string
(** One-line provenance for logs and fault-injection filters. *)

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
