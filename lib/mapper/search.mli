(** Search-based mapping exploration — the role Timeloop's Mapper plays in
    the paper's comparison (Figs. 4 and 7).

    The search samples random mappings (uniform ordered factorizations of
    each dim across the four canonical levels, uniform random loop
    permutations), scores the valid ones with {!Accmodel.Evaluate}, and
    terminates on either a trial budget ("timeout") or a number of
    consecutive non-improving trials (the "victory condition"), matching
    Timeloop Mapper's knobs.  A seeded PRNG makes runs reproducible. *)

type criterion = Min_energy | Min_delay | Min_edp

type config = {
  max_trials : int;  (** total mapping samples, valid or not *)
  victory_condition : int;  (** stop after this many non-improving trials *)
  seed : int;
}

val default_config : config
(** 100000 trials and a victory condition of 100000, the values the paper
    passes to Timeloop Mapper (scaled-down runs should override). *)

type result = {
  best : (Mapspace.Mapping.t * Accmodel.Evaluate.t) option;
  trials : int;  (** trials actually executed *)
  valid_trials : int;  (** mappings that fit the architecture *)
  improvements : int;  (** times the incumbent was replaced *)
}

val random_mapping :
  Random.State.t -> Workload.Nest.t -> Mapspace.Mapping.t
(** One uniform sample from the canonical mapping space (factor chains and
    permutations); not necessarily valid for any architecture. *)

val score : criterion -> Accmodel.Evaluate.t -> float

val search :
  ?config:config ->
  ?constraints:Mapspace.Constraints.t ->
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  criterion ->
  Workload.Nest.t ->
  result
(** [constraints] restricts the sampled mapping space (Timeloop's
    "dataflow constraints specification"); non-conforming samples are
    rejected before evaluation but still consume trials. *)

val search_parallel :
  ?config:config ->
  ?constraints:Mapspace.Constraints.t ->
  ?domains:int ->
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  criterion ->
  Workload.Nest.t ->
  result
(** Multi-threaded exploration, as Timeloop's Mapper runs it (Section IV:
    "spawns a given number of threads and each thread explores parts of
    the search space"): the trial budget is split across [domains]
    independently seeded streams run as a batch on the shared
    {!Exec.Pool}, and the per-stream incumbents are merged in stream
    order.  Deterministic for a fixed [(config, domains)] pair regardless
    of scheduling.  [domains] defaults to the number of recognized CPUs,
    capped at 8, and is additionally clamped to [max config.max_trials 1]
    so no stream ever owns zero trials (degenerate splits would otherwise
    change the victory-condition semantics versus the sequential path); a
    budget of [<= 1] trial runs {!search}'s exact sequential path. *)

val exhaustive :
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  criterion ->
  Workload.Nest.t ->
  max_points:int ->
  (Mapspace.Mapping.t * Accmodel.Evaluate.t) option
(** Full enumeration of factorizations and (level-1, level-3) permutations
    for tiny nests; raises [Invalid_argument] when the space exceeds
    [max_points].  Used to validate the random search in tests. *)
