(* Quickstart: optimize the dataflow of a matrix multiplication (the
   paper's Fig. 1 example) for a small fixed accelerator, and compare the
   result against a naive untiled-ish mapping.

   Run with:  dune exec examples/quickstart.exe *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Evaluate = Accmodel.Evaluate

let () =
  let tech = Archspec.Technology.table3 in
  (* A 64-PE accelerator with 64 registers per PE and an 8 K-word SRAM. *)
  let arch = Archspec.Arch.make ~name:"demo" ~pes:64 ~registers:64 ~sram_words:8192 in
  let nest = Workload.Matmul.nest ~ni:256 ~nj:256 ~nk:256 () in
  Format.printf "workload:@.%a@.@." Workload.Nest.pp nest;
  Format.printf "architecture: %a@.@." Archspec.Arch.pp arch;

  (* A deliberately poor reference point: everything streamed from DRAM
     in large row panels, no register tiling to speak of. *)
  let naive =
    Mapspace.Mapping.canonical
      ~reg:([ ("i", 2); ("j", 2); ("k", 2) ], [ "i"; "j"; "k" ])
      ~pe:([ ("k", 128) ], [ "i"; "j"; "k" ])
      ~spatial:[ ("i", 4) ]
      ~dram:([ ("i", 32); ("j", 128) ], [ "i"; "j"; "k" ])
  in
  (match Evaluate.evaluate tech arch nest naive with
  | Ok m -> Format.printf "naive mapping:@.%a@.@." Evaluate.pp m
  | Error msg -> Format.printf "naive mapping invalid: %s@.@." msg);

  (* Thistle: enumerate pruned loop permutations, solve one geometric
     program per choice, integerize, rank with the model. *)
  match O.dataflow tech arch F.Energy nest with
  | Error msg -> Format.printf "optimization failed: %s@." msg
  | Ok report ->
    let o = report.O.outcome in
    Format.printf "thistle explored %d pruned permutation choices (%d solved)@."
      report.O.choices_enumerated report.O.choices_solved;
    Format.printf "best mapping:@.%a@.@." Mapspace.Mapping.pp o.I.mapping;
    Format.printf "metrics:@.%a@." Evaluate.pp o.I.metrics
