(* Tests for the GP formulation: constraint structure, feasibility of the
   solved programs, and agreement between the symbolic objective and the
   model's accounting at matched points. *)

module F = Thistle.Formulate
module Perm = Thistle.Permutations
module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module Tech = Archspec.Technology
module Arch = Archspec.Arch

let tech = Tech.table3

let small_conv () =
  Workload.Conv.to_nest (Workload.Conv.make ~name:"small" ~k:16 ~c:16 ~hw:16 ~rs:3 ())

let first_choice plan = List.hd plan.Perm.choices

let test_fixed_arch_constraints () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst = F.build tech (F.Fixed arch) F.Energy plan (first_choice plan) in
  let names = List.map fst (Gp.Problem.ineqs inst.F.problem) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "has %s" expected)
        true (List.mem expected names))
    [ "reg-capacity"; "sram-capacity"; "pe-count"; "bound:t0.k"; "bound:t3.w" ];
  Alcotest.(check bool) "no area constraint" true (not (List.mem "area" names));
  (* One extent equality per tileable dim. *)
  Alcotest.(check int)
    "extent equalities" 4
    (List.length (Gp.Problem.eqs inst.F.problem));
  (* Pinned window variables must not appear in the program. *)
  let vars = Gp.Problem.variables inst.F.problem in
  Alcotest.(check bool) "t0.r eliminated" true (not (List.mem "t0.r" vars));
  Alcotest.(check bool) "t0.k free" true (List.mem "t0.k" vars)

let test_codesign_constraints () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  let inst = F.build tech (F.Codesign { area_budget = 1e6 }) F.Energy plan (first_choice plan) in
  let names = List.map fst (Gp.Problem.ineqs inst.F.problem) in
  Alcotest.(check bool) "has area" true (List.mem "area" names);
  let vars = Gp.Problem.variables inst.F.problem in
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "has %s" v) true (List.mem v vars))
    [ F.var_arch_regs; F.var_arch_sram; F.var_arch_pes ]

let test_delay_constraints () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst = F.build tech (F.Fixed arch) F.Delay plan (first_choice plan) in
  let names = List.map fst (Gp.Problem.ineqs inst.F.problem) in
  List.iter
    (fun expected ->
      Alcotest.(check bool)
        (Printf.sprintf "has %s" expected)
        true (List.mem expected names))
    [ "delay-compute"; "delay-sram"; "delay-dram" ];
  Alcotest.(check bool)
    "objective is T" true
    (P.equal (Gp.Problem.objective inst.F.problem) (P.var F.var_delay))

let test_edp_constraints () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst = F.build tech (F.Fixed arch) F.Edp plan (first_choice plan) in
  let names = List.map fst (Gp.Problem.ineqs inst.F.problem) in
  Alcotest.(check bool) "has delay epigraph" true (List.mem "delay-compute" names);
  (* The objective mentions both the epigraph variable and energy terms. *)
  let obj_vars = P.variables (Gp.Problem.objective inst.F.problem) in
  Alcotest.(check bool) "objective mentions T" true (List.mem F.var_delay obj_vars);
  Alcotest.(check bool)
    "objective has several terms" true
    (P.num_terms (Gp.Problem.objective inst.F.problem) > 1);
  (* And it solves. *)
  let sol = Gp.Solver.solve inst.F.problem in
  Alcotest.(check bool)
    "solved" true
    (match sol.Gp.Solver.status with Gp.Solver.Infeasible -> false | _ -> true)

let test_window_placements () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  (* Two window dims (r, s), two homes each: four placements. *)
  Alcotest.(check int) "4 placements" 4 (List.length plan.Perm.placements);
  Alcotest.(check bool)
    "default is first" true
    (List.hd plan.Perm.placements = plan.Perm.pinned);
  (* One placement puts both windows on the PE array. *)
  let spatial_both =
    List.exists
      (fun placement ->
        List.assoc_opt "t2.r" placement = Some 3.0
        && List.assoc_opt "t2.s" placement = Some 3.0)
      plan.Perm.placements
  in
  Alcotest.(check bool) "spatial r and s available" true spatial_both;
  (* A spatial placement contributes its factor to the PE-count bound. *)
  let placement =
    List.find (fun p -> List.assoc_opt "t2.r" p = Some 3.0) plan.Perm.placements
  in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst = F.build ~placement tech (F.Fixed arch) F.Energy plan (first_choice plan) in
  let pe_constraint = List.assoc "pe-count" (Gp.Problem.ineqs inst.F.problem) in
  (* At the all-ones point the constraint value is 3*3/64 or 3/64. *)
  let v = P.eval (fun _ -> 1.0) pe_constraint in
  Alcotest.(check bool)
    (Printf.sprintf "pinned spatial factor present (%g)" v)
    true
    (v >= 3.0 /. 64.0 -. 1e-9);
  (* 1x1 convolutions have no window dims and exactly one placement. *)
  let one_by_one =
    Workload.Conv.to_nest (Workload.Conv.make ~name:"p" ~k:8 ~c:8 ~hw:8 ~rs:1 ())
  in
  let plan1 = Perm.enumerate one_by_one in
  Alcotest.(check int) "single placement" 1 (List.length plan1.Perm.placements)

(* The solved program must be feasible and its solution must satisfy the
   trip-count equalities. *)
let test_solution_feasible () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst = F.build tech (F.Fixed arch) F.Energy plan (first_choice plan) in
  let sol = Gp.Solver.solve inst.F.problem in
  Alcotest.(check bool)
    "solved" true
    (match sol.Gp.Solver.status with Gp.Solver.Infeasible -> false | _ -> true);
  Alcotest.(check bool)
    "feasible" true
    (Gp.Problem.is_feasible ~tol:1e-4 inst.F.problem (Gp.Solver.env sol));
  List.iter
    (fun d ->
      let product = F.cumulative inst sol d ~level:3 in
      let expected = float_of_int (Workload.Nest.extent nest d) in
      Alcotest.(check bool)
        (Printf.sprintf "extent %s: %g vs %g" d product expected)
        true
        (Float.abs (product -. expected) /. expected < 1e-3))
    inst.F.tileable

(* At matched variable assignments, the GP's energy objective must equal
   the accounting formula evaluated on the relaxed volumes: check the GP
   objective against an independent recomputation from the analysis. *)
let test_objective_matches_accounting () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let inst = F.build tech (F.Fixed arch) F.Energy plan (first_choice plan) in
  let sol = Gp.Solver.solve inst.F.problem in
  let env = F.solution_env inst sol in
  let eps_r = Arch.register_energy tech arch in
  let eps_s = Arch.sram_energy tech arch in
  let relaxed select rw_only =
    List.fold_left
      (fun acc tv ->
        if rw_only && not tv.Thistle.Volume.read_write then acc
        else acc +. P.eval env (Thistle.Volume.volume_posynomial (select tv)))
      0.0 inst.F.analysis.Thistle.Volume.per_tensor
  in
  let s2r = relaxed (fun tv -> tv.Thistle.Volume.sram_to_reg) false in
  let r2s = relaxed (fun tv -> tv.Thistle.Volume.sram_to_reg) true in
  let d2s = relaxed (fun tv -> tv.Thistle.Volume.dram_to_sram) false in
  let s2d = relaxed (fun tv -> tv.Thistle.Volume.dram_to_sram) true in
  let macs = Workload.Nest.ops nest in
  let expected =
    (((4.0 *. eps_r) +. tech.Tech.energy_mac) *. macs)
    +. (eps_r *. (s2r +. r2s))
    +. (eps_s *. (s2r +. r2s +. d2s +. s2d))
    +. (tech.Tech.energy_dram *. (d2s +. s2d))
  in
  let actual = P.eval env (Gp.Problem.objective inst.F.problem) in
  Alcotest.(check bool)
    (Printf.sprintf "objective %g vs %g" actual expected)
    true
    (Float.abs (actual -. expected) /. expected < 1e-9)

(* Co-design at a generous budget can only improve on any fixed
   architecture inside the budget (continuous relaxation). *)
let test_codesign_dominates_fixed () =
  let nest = small_conv () in
  let plan = Perm.enumerate nest in
  let choice = first_choice plan in
  let arch = Arch.make ~name:"a" ~pes:64 ~registers:64 ~sram_words:4096 in
  let budget = Arch.area tech arch *. 2.0 in
  let fixed = F.build tech (F.Fixed arch) F.Energy plan choice in
  let codesign = F.build tech (F.Codesign { area_budget = budget }) F.Energy plan choice in
  let sol_fixed = Gp.Solver.solve fixed.F.problem in
  let sol_codesign = Gp.Solver.solve codesign.F.problem in
  Alcotest.(check bool)
    (Printf.sprintf "codesign %g <= fixed %g" sol_codesign.Gp.Solver.objective
       sol_fixed.Gp.Solver.objective)
    true
    (sol_codesign.Gp.Solver.objective <= sol_fixed.Gp.Solver.objective *. 1.001)

let () =
  Alcotest.run "formulate"
    [
      ( "structure",
        [
          Alcotest.test_case "fixed-arch constraints" `Quick test_fixed_arch_constraints;
          Alcotest.test_case "codesign constraints" `Quick test_codesign_constraints;
          Alcotest.test_case "delay constraints" `Quick test_delay_constraints;
          Alcotest.test_case "edp constraints" `Quick test_edp_constraints;
          Alcotest.test_case "window placements" `Quick test_window_placements;
        ] );
      ( "solutions",
        [
          Alcotest.test_case "feasible" `Quick test_solution_feasible;
          Alcotest.test_case "objective accounting" `Quick test_objective_matches_accounting;
          Alcotest.test_case "codesign dominates fixed" `Quick test_codesign_dominates_fixed;
        ] );
    ]
