(** Nestable timed spans with an in-memory collector and JSONL export.

    Tracing is {e disabled by default}: {!span} then reduces to a single
    atomic-load branch before calling its body, so instrumented code paths
    pay no measurable cost in normal runs, and nothing a span records can
    perturb computation — results are bit-identical with tracing on or
    off.  {!start} resets the collector and enables recording; {!stop}
    disables it and keeps the collected events for export.

    Span nesting is tracked per domain (a domain-local stack of open
    spans).  A task submitted to a worker domain therefore starts a new
    root span on that domain rather than pointing at the submitting
    domain's open span — parenthood never crosses domains, which keeps the
    collector lock-free on the hot path and the trace unambiguous.

    The collector is safe to use from any number of domains concurrently:
    span bodies run outside the collector lock, which is held only to
    append one finished event.

    {2 JSONL schema}

    One JSON object per line, one line per {e finished} span, in
    completion order:

    {v
    {"type":"span","name":<string>,"id":<int>,"parent":<int|null>,
     "domain":<int>,"ts_ns":<int>,"dur_ns":<int>,"attrs":{<string>:<string>,...}}
    v}

    [ts_ns] is the span's start time in nanoseconds relative to the
    {!start} call of the current recording session; [dur_ns] its
    duration; [parent] the [id] of the enclosing span on the same domain,
    or [null] for roots.  Ids are unique within a session but not
    consecutive per domain. *)

type event = {
  id : int;
  parent : int option;
  name : string;
  domain : int;  (** integer id of the domain the span ran on *)
  ts_ns : int64;  (** start, ns since {!start} *)
  dur_ns : int64;
  attrs : (string * string) list;
}

val enabled : unit -> bool

val start : unit -> unit
(** Drop previously collected events and begin recording. *)

val stop : unit -> unit
(** Stop recording; collected events remain available. *)

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when tracing is enabled, the call is
    recorded as a span named [name].  The span is recorded (and the
    domain-local stack unwound) even when [f] raises; the exception is
    re-raised. *)

val events : unit -> event list
(** Finished spans of the current session, in completion order. *)

val to_jsonl : event -> string
(** One JSONL line (no trailing newline). *)

val export : out_channel -> unit
(** Write every collected event as JSONL. *)

val export_file : string -> unit
(** [export] to a fresh file (truncating). *)
