(** Batched structure-sharing compilation of GP problems (DESIGN §15).

    The co-design sweep solves thousands of programs that differ only in
    their coefficients: every placement of one permutation choice (and
    many choices across layers) formulates the same exponent rows, the
    same sparsity pattern and the same affine shape.  This module
    exploits that redundancy.  A coefficient-blind {!structure_key}
    groups problems; {!compile} lowers one representative into a
    {!plan} — the shared exponent structure together with everything the
    solver needs that does not depend on coefficients (per-structure
    nullspace bases, the factored least-norm Gram system); {!pack} then
    lays the coefficient vectors of a whole group in contiguous buffers
    so the solver touches one flat array per function while iterating
    batch members.

    {b Bit-identity contract.}  The evaluation primitives below perform
    the identical float operations in the identical order as
    {!Compiled.value} / {!Compiled.eval_into} on the member's own
    compiled functions, and the per-structure factorizations
    ({!Mat.nullspace_basis}, {!Mat.lu_factor}) are pure functions of the
    structure, equal bit-for-bit to the per-solve computations they
    amortize.  [Solver.solve_batched] therefore returns exactly the
    bits of [Solver.solve ~kernel:`Compiled] for every member —
    test/test_compiled.ml pins this with QCheck properties. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

val structure_key : Problem.t -> string
(** Coefficient-blind coarsening of [Optimize.problem_key]: variable
    names, exponent bits and term/section framing, with coefficients
    dropped.  Problems with equal keys have the same sorted variable
    list and align term-for-term — posynomial terms are sorted by
    exponent vector with like terms merged, so term order never depends
    on coefficients. *)

(** One compiled convex function of the shared structure,

      F(y) = log sum_k exp(row_k . y + b_k)  +  lin . y + lin_const,

    in the contiguous sparse layout of {!Compiled.t} but {e without} the
    [b] vector: coefficient terms live in the batch {!block}, selected
    by [(b, boff)] at each evaluation.  [f_slot] names the coefficient
    table of the block this function reads (-1 for the coefficient-free
    phase-I helpers). *)
type fn = {
  f_nterms : int;
  f_starts : int array;
  f_idx : int array;
  f_coef : float array;
  f_support : int array;  (** sorted distinct variable indices touched *)
  f_lin_idx : int array;
  f_lin_coef : float array;
  f_lin_const : float;
  f_slot : int;
}

(** Outcome of factoring the least-norm Gram system [A A^T + 1e-12 I]
    once per structure. *)
type gram =
  | No_rows  (** no (nonzero) equality rows *)
  | Factored of Mat.lu
  | Gram_singular
      (** factorization failed; solves of this structure report
          [Infeasible] exactly where the scalar path raises
          [Mat.Singular] *)

(** Everything coefficient-independent about one structure, compiled
    once and shared by every batch member and every warm-started
    retry. *)
type plan = {
  pl_key : string;
  pl_vars : string list;  (** sorted, as [Problem.variables] *)
  pl_n : int;
  pl_index : (string, int) Hashtbl.t;
  pl_objective : fn;
  pl_ineqs : fn array;
  pl_nterms : int array;
      (** terms per coefficient slot: slot 0 = objective, slot j+1 =
          inequality j *)
  pl_row_zero : bool array;  (** per equality: exponent row all-zero? *)
  pl_rows : Vec.t array;  (** nonzero equality rows, source order *)
  pl_rows1 : Vec.t array;  (** the same rows over n+1 (slack column 0) *)
  pl_gram : gram;
  pl_zbasis : Vec.t array;  (** nullspace basis of [pl_rows] over n *)
  pl_zbasis1 : Vec.t array;  (** nullspace basis of [pl_rows1] over n+1 *)
  pl_objective1 : fn;  (** phase I objective: s *)
  pl_lower1 : fn;  (** phase I bound: -s - 20 <= 0 *)
  pl_ineqs1 : fn array;
      (** phase I images of [pl_ineqs] over n+1 with the -s slack;
          they read the {e same} coefficient slots as [pl_ineqs] *)
  pl_max_terms : int;  (** scratch sizing for evaluation buffers *)
}

(** One batch: a plan plus the coefficient vectors of its members, laid
    member-major in one flat buffer per function slot.  Member [m] of
    slot [s] occupies [bk_b.(s).(m * pl_nterms.(s) + k)] for term [k]
    (log coefficients), and its equality right-hand sides occupy
    [bk_d.(m * p + i)] (for the [p] nonzero rows, [-log c]) and
    [bk_dz] (for the all-zero rows, consistency-checked per solve). *)
type block = {
  bk_plan : plan;
  bk_members : Problem.t array;
  bk_nmembers : int;
  bk_b : float array array;
  bk_d : float array;
  bk_dz : float array;
  bk_nz : int;
}

val compile : Problem.t -> plan
(** Compile the structure of one representative problem.  Pure: any
    member of the group yields the same plan (coefficients never enter).
*)

val pack : plan -> Problem.t array -> block
(** Lay the members' coefficients into contiguous buffers.  Raises
    [Invalid_argument] if the array is empty or any member's
    {!structure_key} differs from the plan's. *)

(** {1 Flat evaluation primitives}

    Mirrors of {!Compiled.value} / {!Compiled.eval_into} over a [fn] and
    an externally-supplied coefficient vector [(b, boff)] — bit-identical
    by construction (same operations, same order).  [es] is caller
    scratch of length at least [f_nterms]; [hess] is a flat row-major
    [n * n] buffer with stride [hn].  No bounds checks: the solver owns
    the invariants. *)

val value : fn -> b:float array -> boff:int -> es:float array -> float array -> float

val eval_into :
  fn ->
  b:float array ->
  boff:int ->
  es:float array ->
  grad:float array ->
  hess:float array ->
  hn:int ->
  float array ->
  float

(** {1 Test conveniences} *)

val member_value : block -> member:int -> slot:int -> Vec.t -> float
(** [member_value block ~member ~slot y] evaluates slot [slot] (0 =
    objective, j+1 = inequality j) of member [member] at [y],
    allocating its own scratch. *)

val member_eval_into :
  block ->
  member:int ->
  slot:int ->
  grad:Vec.t ->
  hess:Mat.t ->
  Vec.t ->
  float
(** Like {!Compiled.eval_into} for one member/slot pair, writing into a
    caller matrix (cleared here, dense, for test comparison). *)
