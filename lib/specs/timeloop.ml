module Nest = Workload.Nest
module Mapping = Mapspace.Mapping
module Level = Mapspace.Level
module Arch = Archspec.Arch
module Tech = Archspec.Technology

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Problem                                                            *)
(* ------------------------------------------------------------------ *)

let projection_to_string proj =
  String.concat "+"
    (List.map
       (fun { Nest.stride; iter } ->
         if stride = 1 then iter else Printf.sprintf "%d*%s" stride iter)
       proj)

let projection_of_string lineno s =
  let parse_term t =
    let t = String.trim t in
    match String.index_opt t '*' with
    | None ->
      if t = "" then Error (Printf.sprintf "%s: empty projection term" lineno)
      else Ok { Nest.stride = 1; iter = t }
    | Some star -> begin
      let coeff = String.trim (String.sub t 0 star) in
      let iter = String.trim (String.sub t (star + 1) (String.length t - star - 1)) in
      match int_of_string_opt coeff with
      | Some stride when stride >= 1 -> Ok { Nest.stride; iter }
      | Some _ | None -> Error (Printf.sprintf "%s: bad stride %S" lineno coeff)
    end
  in
  let rec all acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> begin
      match parse_term t with Ok i -> all (i :: acc) rest | Error _ as e -> e
    end
  in
  all [] (String.split_on_char '+' s)

let problem_to_yaml nest =
  let dims = Yaml.List (List.map (fun d -> Yaml.String d) (Nest.dim_names nest)) in
  let data_space t =
    Yaml.Map
      [
        ("name", Yaml.String t.Nest.tensor_name);
        ( "projection",
          Yaml.List
            (List.map (fun p -> Yaml.String (projection_to_string p)) t.Nest.projections) );
        ("read-write", Yaml.Bool t.Nest.read_write);
      ]
  in
  let instance =
    Yaml.Map
      (List.map (fun d -> (d.Nest.dim_name, Yaml.Int d.Nest.extent)) (Nest.dims nest))
  in
  Yaml.Map
    [
      ( "problem",
        Yaml.Map
          [
            ("name", Yaml.String (Nest.name nest));
            ("dimensions", dims);
            ("data-spaces", Yaml.List (List.map data_space (Nest.tensors nest)));
            ("instance", instance);
          ] );
    ]

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "problem spec: missing %s" what)

let problem_of_yaml yaml =
  let* problem = require "problem" (Yaml.find yaml "problem") in
  let* name =
    require "problem.name" (Option.bind (Yaml.find problem "name") Yaml.get_string)
  in
  let* instance = require "problem.instance" (Yaml.find problem "instance") in
  let* dims_yaml =
    require "problem.dimensions" (Option.bind (Yaml.find problem "dimensions") Yaml.get_list)
  in
  let* dims =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* dim_name = require "dimension name" (Yaml.get_string d) in
        let* extent =
          require
            (Printf.sprintf "instance extent for %s" dim_name)
            (Option.bind (Yaml.find instance dim_name) Yaml.get_int)
        in
        Ok ({ Nest.dim_name; extent } :: acc))
      (Ok []) dims_yaml
  in
  let dims = List.rev dims in
  let* spaces =
    require "problem.data-spaces"
      (Option.bind (Yaml.find problem "data-spaces") Yaml.get_list)
  in
  let* tensors =
    List.fold_left
      (fun acc space ->
        let* acc = acc in
        let* tensor_name =
          require "data-space name" (Option.bind (Yaml.find space "name") Yaml.get_string)
        in
        let* projs =
          require "data-space projection"
            (Option.bind (Yaml.find space "projection") Yaml.get_list)
        in
        let* projections =
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              let* s = require "projection string" (Yaml.get_string p) in
              let* proj = projection_of_string tensor_name s in
              Ok (proj :: acc))
            (Ok []) projs
        in
        let read_write =
          match Yaml.find space "read-write" with Some (Yaml.Bool b) -> b | _ -> false
        in
        Ok
          ({ Nest.tensor_name; projections = List.rev projections; read_write } :: acc))
      (Ok []) spaces
  in
  match Nest.make ~name ~dims ~tensors:(List.rev tensors) with
  | nest -> Ok nest
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Mapping                                                            *)
(* ------------------------------------------------------------------ *)

let factors_to_string factors =
  String.concat " " (List.map (fun (d, f) -> Printf.sprintf "%s=%d" d f) factors)

let factors_of_string s =
  let parts = List.filter (fun p -> p <> "") (String.split_on_char ' ' s) in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      match String.index_opt part '=' with
      | None -> Error (Printf.sprintf "mapping: bad factor %S" part)
      | Some eq -> begin
        let d = String.sub part 0 eq in
        let f = String.sub part (eq + 1) (String.length part - eq - 1) in
        match int_of_string_opt f with
        | Some f when f >= 1 -> Ok ((d, f) :: acc)
        | Some _ | None -> Error (Printf.sprintf "mapping: bad factor %S" part)
      end)
    (Ok []) parts
  |> Result.map List.rev

let level_target i =
  (* Canonical hierarchy, innermost first. *)
  match i with
  | 0 -> ("RegisterFile", "temporal")
  | 1 -> ("SRAM", "temporal")
  | 2 -> ("SRAM", "spatial")
  | 3 -> ("DRAM", "temporal")
  | _ -> (Printf.sprintf "Level%d" i, "temporal")

let mapping_to_yaml mapping =
  let directive i (lvl : Mapping.level) =
    let target, typ = level_target i in
    let base =
      [
        ("target", Yaml.String target);
        ("type", Yaml.String typ);
        ("factors", Yaml.String (factors_to_string lvl.Mapping.factors));
      ]
    in
    let perm =
      match lvl.Mapping.kind with
      | Level.Spatial -> []
      | Level.Temporal ->
        (* Timeloop writes permutations innermost first. *)
        [ ("permutation", Yaml.String (String.concat " " (List.rev lvl.Mapping.perm))) ]
    in
    Yaml.Map (base @ perm)
  in
  (* Outermost directive first, as in Fig. 3(d). *)
  let directives = List.mapi directive (Mapping.levels mapping) in
  Yaml.Map [ ("mapping", Yaml.List (List.rev directives)) ]

let mapping_of_yaml yaml =
  let* directives =
    require "mapping" (Option.bind (Yaml.find yaml "mapping") Yaml.get_list)
  in
  let* levels =
    List.fold_left
      (fun acc d ->
        let* acc = acc in
        let* target = require "target" (Option.bind (Yaml.find d "target") Yaml.get_string) in
        let* typ = require "type" (Option.bind (Yaml.find d "type") Yaml.get_string) in
        let* factors_s =
          require "factors" (Option.bind (Yaml.find d "factors") Yaml.get_string)
        in
        let* factors = factors_of_string factors_s in
        let kind =
          match typ with "spatial" -> Level.Spatial | _ -> Level.Temporal
        in
        let perm =
          match Option.bind (Yaml.find d "permutation") Yaml.get_string with
          | Some s ->
            List.rev (List.filter (fun p -> p <> "") (String.split_on_char ' ' s))
          | None -> []
        in
        ignore target;
        Ok ({ Mapping.kind; factors; perm } :: acc))
      (Ok []) directives
  in
  (* The document lists outermost first; mappings store innermost first. *)
  match Mapping.make levels with
  | m -> Ok m
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Mapspace constraints                                               *)
(* ------------------------------------------------------------------ *)

let level_of_target target typ =
  match (target, typ) with
  | "RegisterFile", "temporal" -> Ok 0
  | "SRAM", "temporal" -> Ok 1
  | "SRAM", "spatial" -> Ok 2
  | "DRAM", "temporal" -> Ok 3
  | _ -> Error (Printf.sprintf "constraints: unknown target %s/%s" target typ)

let constraints_to_yaml constraints =
  let directive (c : Mapspace.Constraints.level_constraint) =
    let target, typ = level_target c.Mapspace.Constraints.c_level in
    let base = [ ("target", Yaml.String target); ("type", Yaml.String typ) ] in
    let opt name factors =
      if factors = [] then [] else [ (name, Yaml.String (factors_to_string factors)) ]
    in
    let prefix =
      if c.Mapspace.Constraints.perm_prefix = [] then []
      else
        [
          ( "permutation_prefix",
            Yaml.String (String.concat " " c.Mapspace.Constraints.perm_prefix) );
        ]
    in
    Yaml.Map
      (base
      @ opt "factors" c.Mapspace.Constraints.fixed_factors
      @ opt "max_factors" c.Mapspace.Constraints.max_factors
      @ prefix)
  in
  Yaml.Map [ ("mapspace_constraints", Yaml.List (List.map directive constraints)) ]

let constraints_of_yaml yaml =
  let* directives =
    require "mapspace_constraints"
      (Option.bind (Yaml.find yaml "mapspace_constraints") Yaml.get_list)
  in
  List.fold_left
    (fun acc d ->
      let* acc = acc in
      let* target = require "target" (Option.bind (Yaml.find d "target") Yaml.get_string) in
      let* typ = require "type" (Option.bind (Yaml.find d "type") Yaml.get_string) in
      let* level = level_of_target target typ in
      let factors_field name =
        match Option.bind (Yaml.find d name) Yaml.get_string with
        | Some s -> factors_of_string s
        | None -> Ok []
      in
      let* fixed = factors_field "factors" in
      let* max_factors = factors_field "max_factors" in
      let perm_prefix =
        match Option.bind (Yaml.find d "permutation_prefix") Yaml.get_string with
        | Some s -> List.filter (fun p -> p <> "") (String.split_on_char ' ' s)
        | None -> []
      in
      match
        Mapspace.Constraints.level_constraint ~level ~fixed ~max_factors ~perm_prefix ()
      with
      | c -> Ok (acc @ [ c ])
      | exception Invalid_argument msg -> Error msg)
    (Ok []) directives

(* ------------------------------------------------------------------ *)
(* Architecture                                                       *)
(* ------------------------------------------------------------------ *)

(* Bandwidths are words/cycle and may be fractional (e.g. a 8.5-words/cycle
   technology point): truncating through [int_of_float] silently exported
   8, so the round-tripped Timeloop model under-provisioned the link. *)
let bandwidth_yaml v =
  if Float.is_integer v then Yaml.Int (int_of_float v) else Yaml.Float v

let architecture_to_yaml tech arch =
  let dram =
    Yaml.Map
      [
        ("name", Yaml.String "DRAM");
        ("class", Yaml.String "DRAM");
        ( "attributes",
          Yaml.Map
            [
              ("type", Yaml.String "LPDDR4");
              ("word-bits", Yaml.Int 16);
              ("read_bandwidth", bandwidth_yaml tech.Tech.dram_bandwidth);
              ("write_bandwidth", bandwidth_yaml tech.Tech.dram_bandwidth);
            ] );
      ]
  in
  let sram =
    Yaml.Map
      [
        ("name", Yaml.String "SRAM");
        ("class", Yaml.String "SRAM");
        ( "attributes",
          Yaml.Map
            [
              ("depth", Yaml.Int arch.Arch.sram_words);
              ("word-bits", Yaml.Int 16);
              ("read_bandwidth", bandwidth_yaml tech.Tech.sram_bandwidth);
              ("write_bandwidth", bandwidth_yaml tech.Tech.sram_bandwidth);
            ] );
      ]
  in
  let pe =
    Yaml.Map
      [
        ("name", Yaml.String (Printf.sprintf "PE[0..%d]" (arch.Arch.pe_count - 1)));
        ( "local",
          Yaml.List
            [
              Yaml.Map
                [
                  ("name", Yaml.String "RegisterFile");
                  ("class", Yaml.String "regfile");
                  ( "attributes",
                    Yaml.Map
                      [ ("depth", Yaml.Int arch.Arch.registers_per_pe); ("word-bits", Yaml.Int 16) ]
                  );
                ];
              Yaml.Map
                [
                  ("name", Yaml.String "MACC");
                  ("class", Yaml.String "intmac");
                  ("attributes", Yaml.Map [ ("datawidth", Yaml.Int 16) ]);
                ];
            ] );
      ]
  in
  Yaml.Map
    [
      ( "architecture",
        Yaml.Map
          [
            ("version", Yaml.String "A.3");
            ("name", Yaml.String arch.Arch.arch_name);
            ("technology", Yaml.String "45nm");
            ( "subtree",
              Yaml.List
                [
                  Yaml.Map
                    [
                      ("name", Yaml.String "system");
                      ("local", Yaml.List [ dram ]);
                      ( "subtree",
                        Yaml.List
                          [
                            Yaml.Map
                              [
                                ("name", Yaml.String "Chip");
                                ("local", Yaml.List [ sram ]);
                                ("subtree", Yaml.List [ pe ]);
                              ];
                          ] );
                    ];
                ] );
          ] );
    ]

(* Count the replication in a name like "PE[0..167]". *)
let replication_of_name name =
  match (String.index_opt name '[', String.index_opt name ']') with
  | Some lb, Some rb when rb > lb -> begin
    let range = String.sub name (lb + 1) (rb - lb - 1) in
    match String.split_on_char '.' range with
    | [ lo; ""; hi ] | [ lo; hi ] -> begin
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when hi >= lo -> Some (hi - lo + 1)
      | _ -> None
    end
    | _ -> None
  end
  | _ -> None

let architecture_of_yaml yaml =
  let* root = require "architecture" (Yaml.find yaml "architecture") in
  let* name =
    require "architecture.name" (Option.bind (Yaml.find root "name") Yaml.get_string)
  in
  (* Walk the subtree collecting SRAM depth, register depth, PE count. *)
  let sram = ref None in
  let regs = ref None in
  let pes = ref None in
  let rec walk node ~replication =
    let locals = Option.value ~default:[] (Option.bind (Yaml.find node "local") Yaml.get_list) in
    List.iter
      (fun local ->
        let cls = Option.bind (Yaml.find local "class") Yaml.get_string in
        let depth = Option.bind (Yaml.find local "attributes") (fun a -> Option.bind (Yaml.find a "depth") Yaml.get_int) in
        match cls with
        | Some "SRAM" -> sram := depth
        | Some "regfile" ->
          regs := depth;
          pes := Some replication
        | Some _ | None -> ())
      locals;
    let subtrees =
      Option.value ~default:[] (Option.bind (Yaml.find node "subtree") Yaml.get_list)
    in
    List.iter
      (fun sub ->
        let sub_name = Option.bind (Yaml.find sub "name") Yaml.get_string in
        let replication =
          match Option.bind sub_name replication_of_name with
          | Some r -> replication * r
          | None -> replication
        in
        walk sub ~replication)
      subtrees
  in
  walk root ~replication:1;
  match (!pes, !regs, !sram) with
  | Some pes, Some registers, Some sram_words ->
    Ok (Arch.make ~name ~pes ~registers ~sram_words)
  | _ -> Error "architecture spec: missing PE / register-file / SRAM description"

let write_bundle ~dir tech arch nest mapping =
  let write name v =
    let oc = open_out (Filename.concat dir name) in
    output_string oc (Yaml.emit v);
    close_out oc
  in
  write "problem.yaml" (problem_to_yaml nest);
  write "mapping.yaml" (mapping_to_yaml mapping);
  write "arch.yaml" (architecture_to_yaml tech arch)
