(** Monomials: [c * prod_i x_i ^ a_i] with positive coefficient [c], named
    variables [x_i] and real exponents [a_i].

    Monomials are the atoms of geometric programming: products, quotients
    and real powers of monomials are monomials.  The representation is
    normalized — variables sorted by name, zero exponents dropped — so
    structural equality coincides with mathematical equality up to
    floating-point rounding of coefficients. *)

type t

val one : t

val const : float -> t
(** [const c] is the constant monomial [c].  Raises [Invalid_argument]
    unless [c] is finite and positive ([infinity > 0.0] holds, so the
    finiteness check is explicit — a non-finite coefficient would poison
    every expression built on top). *)

val var : string -> t
(** [var x] is the monomial [x^1]. *)

val var_pow : string -> float -> t
(** Raises [Invalid_argument] on a non-finite exponent. *)

val make : float -> (string * float) list -> t
(** [make c exps] is [c * prod x^a].  Raises [Invalid_argument] unless
    [c] is finite positive and every exponent finite. *)

val coeff : t -> float

val exponents : t -> (string * float) list
(** Sorted by variable name; no zero exponents. *)

val exponent : t -> string -> float
(** [exponent m x] is the exponent of [x] in [m] (0 when absent). *)

val mentions : t -> string -> bool

val variables : t -> string list

val mul : t -> t -> t

val div : t -> t -> t

val pow : t -> float -> t
(** Raises [Invalid_argument] if the power is not finite, or if the
    resulting coefficient leaves the finite positive range (overflow or
    underflow to 0). *)

val scale : float -> t -> t
(** Raises [Invalid_argument] if the factor is not positive. *)

val subst : string -> t -> t -> t
(** [subst x m' m] replaces each occurrence [x^a] in [m] by [m'^a].  Used
    to implement Algorithm 1's [replace(expr, c, c'*c)] by substituting
    [x := x * x']. *)

val bind : string -> float -> t -> t
(** [bind x v m] folds the variable [x] into the coefficient at value [v]
    (partial evaluation).  Raises [Invalid_argument] unless [v] is finite
    positive. *)

val eval : (string -> float) -> t -> float

val is_constant : t -> bool

val equal : t -> t -> bool
(** Exact structural equality (coefficients compared with [=]). *)

val compare : t -> t -> int
(** Total order: by exponent vector, then coefficient.  Monomials with
    equal exponent vectors but different coefficients compare unequal. *)

val compare_exponents : t -> t -> int
(** Order on exponent vectors only, ignoring the coefficient — used to
    merge like terms in posynomials. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
