(** Minimal JSON writing helpers shared by the trace and metrics exports.

    The observability layer emits JSON without depending on a JSON
    library: the values it serializes are flat (strings, numbers and
    one-level objects), so a few combinators over [Buffer] suffice.
    Numbers are printed with enough digits to round-trip ([%.17g] for
    non-integral floats), and non-finite floats — which raw JSON cannot
    represent — are emitted as the strings ["inf"], ["-inf"] and
    ["nan"]. *)

val escape : string -> string
(** JSON string escaping of the bytes of the argument (quotes, backslash,
    control characters); the result does not include the surrounding
    quotes. *)

val str : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string. *)

val int : Buffer.t -> int -> unit

val float : Buffer.t -> float -> unit
(** Integral floats print without an exponent or fraction; non-finite
    values fall back to quoted strings. *)

val obj : Buffer.t -> (Buffer.t -> unit) list -> unit
(** [obj b fields] appends [{f1,...,fn}], inserting the commas. *)

val field : Buffer.t -> string -> (Buffer.t -> unit) -> unit
(** [field b name v] appends ["name":<v>] — use inside {!obj}. *)

(** {2 Parsing}

    A parser for exactly the subset the writers above emit — objects,
    arrays, strings and signed integers.  Floats that must round-trip
    exactly (journal entries, wire payloads) travel as IEEE-754 bit
    patterns inside strings, so JSON-number floats, booleans and [null]
    are deliberately outside the grammar.  Shared by the sweep journal
    decoder and the serve wire protocol. *)

type value =
  | Obj of (string * value) list
  | Arr of value list
  | Str of string
  | Int of int

val parse : string -> (value, string) result
(** Parse one complete JSON value; trailing bytes are an error.  The
    error message names the offending offset. *)
