(** Enumeration and pruning of tile-loop permutation choices (the outer
    level of the paper's design-space exploration).

    Pruning, as in Section III:

    - {e stencil dims} (the small window iterators of halo projections,
      e.g. [r]/[s] of a convolution) are never tiled: their full extent is
      pinned to the register level;
    - extent-1 dims generate no loops at all;
    - choices whose symbolic cost model is identical (the "CanHoist false
      for all tensors" argument) are deduplicated by the
      {!Volume.fingerprint} of their expressions;
    - choices equivalent under a nest symmetry (e.g. the simultaneous
      [h<->w], [r<->s] swap of a square convolution) are pruned. *)

type choice = { pe_perm : string list; dram_perm : string list }

type plan = {
  nest : Workload.Nest.t;
  tileable : string list;
      (** dims whose trip counts are free variables at every level *)
  pinned : (string * float) list;
      (** default trip-count assignments for untiled / unit dims: window
          dims fully at the register level *)
  placements : (string * float) list list;
      (** alternative pinned assignments, one per way of placing each
          window dim's full extent at the register or the spatial level
          (never split, per the paper's pruning rule).  The first element
          is [pinned]. *)
  choices : (choice * Volume.t) list;  (** pruned, with their analyses *)
  raw_count : int;  (** permutation pairs before pruning *)
}

val stencil_dims : Workload.Nest.t -> string list
(** Dims appearing in multi-iterator (halo) projections with the smallest
    extent among the projection's iterators — the window dims that the
    paper leaves untiled. *)

val default_symmetries : Workload.Nest.t -> (string * string) list list
(** Dim swaps (applied simultaneously within one list) that leave the nest
    invariant, detected structurally; e.g. [[["h","w"; "r","s"]]] for a
    square convolution. *)

val enumerate :
  ?untiled:string list ->
  ?symmetries:(string * string) list list ->
  ?max_choices:int ->
  Workload.Nest.t ->
  plan
(** [enumerate nest] lists pruned permutation choices with their symbolic
    analyses.  [untiled] overrides {!stencil_dims}; [symmetries] overrides
    {!default_symmetries}; [max_choices] truncates the (deterministic)
    enumeration as a safety valve. *)

val pinned_env : plan -> string -> float option
(** Lookup into the plan's pinned assignments. *)
