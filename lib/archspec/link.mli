(** Per-level interconnect parameters for the communication-aware delay
    model (DESIGN §16).

    A link moves data in bursts: transferring [words] words in [bursts]
    bursts occupies the link for [words / bandwidth + bursts *
    burst_overhead] cycles.  The per-word streaming view amortizes the
    overhead over full bursts ([words / burst_words] of them), which
    keeps the cost a posynomial in the traffic and is exact whenever
    transfers are whole bursts; the analytical model and the timed
    refsim quantize ([ceil] per copy) where exactness matters. *)

type t = {
  bandwidth : float;  (** words per cycle while streaming *)
  burst_words : float;  (** words per burst (>= 1) *)
  burst_overhead : float;  (** fixed cycles charged per burst (>= 0) *)
}

type set = {
  dram : t;  (** DRAM <-> SRAM path *)
  noc : t;  (** SRAM <-> PE-array network-on-chip *)
  reg : t;  (** PE-array <-> register-file operand path, per PE *)
}

type comm_model =
  | Overlapped
      (** the original aggregate model: one SRAM and one DRAM bandwidth,
          transfers perfectly overlapped with compute *)
  | Comm_aware
      (** per-level, per-direction link occupancy including burst
          overhead *)

val make : bandwidth:float -> burst_words:float -> burst_overhead:float -> t
(** Validates every field: bandwidth and burst length finite and
    positive, overhead finite and non-negative.  Raises
    [Invalid_argument] otherwise. *)

val busy : t -> words:float -> bursts:float -> float
(** Link occupancy in cycles: [words / bandwidth + bursts *
    burst_overhead].  The analytical model and the timed refsim both
    compute occupancies through this one function so their uncontended
    answers agree bit-for-bit. *)

val stream_busy : t -> words:float -> float
(** {!busy} with fractional bursts [words / burst_words] — the
    streaming (non-quantized) view used for the per-MAC register
    operand path. *)

val cycles_per_word : t -> float
(** [1/bandwidth + burst_overhead/burst_words]: the coefficient that
    turns a traffic posynomial into a link-occupancy posynomial in the
    DGP lowering. *)

val comm_model_name : comm_model -> string
(** ["overlapped"] / ["comm"] — the CLI spelling, also used in
    fingerprints. *)

type occupancy = {
  chan : string;  (** channel label, e.g. ["dram-rd"] *)
  words : float;
  bursts : float;
  busy : float;  (** cycles the link is occupied *)
}

val occupancy : string -> t -> words:float -> bursts:float -> occupancy

val stream_occupancy : string -> t -> words:float -> occupancy
(** {!occupancy} with fractional bursts ({!stream_busy}). *)

val binding : (string * float) list -> string
(** First-wins argmax over labeled cycle counts: ties keep the earlier
    entry, so the canonical channel order (compute, dram-rd, dram-wr,
    noc-rd, noc-wr, reg) resolves deterministically.  ["compute"] for
    the empty list. *)

val comm_cycles :
  contention:bool ->
  compute:float ->
  shared:occupancy list ->
  reg:occupancy ->
  float * string
(** Total cycles and binding resource of a communication-aware
    evaluation.  Uncontended: every channel overlaps, so the result is
    the max of compute and each occupancy.  Contended: the [shared]
    channels (DRAM and NoC, in canonical order) serialize onto one
    fabric — their busies {e sum} (left fold, fixed order) — while the
    per-PE register path and compute still overlap; the binding then
    names ["bus"] for the serialized fabric.  Both the analytical model
    and the timed refsim call this one function, which is what makes
    their answers bit-identical on identical channel totals. *)

val pp : Format.formatter -> t -> unit
