type event = {
  id : int;
  parent : int option;
  name : string;
  domain : int;
  ts_ns : int64;
  dur_ns : int64;
  attrs : (string * string) list;
}

let on = Atomic.make false

let enabled () = Atomic.get on

let next_id = Atomic.make 1

(* Events are appended under [lock]; span bodies never hold it. *)
let lock = Mutex.create ()

let collected : event list ref = ref []

let epoch_ns = Atomic.make 0L

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Stack of open span ids on the current domain, innermost first. *)
let open_spans : int list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let start () =
  Mutex.lock lock;
  collected := [];
  Mutex.unlock lock;
  Atomic.set epoch_ns (now_ns ());
  Atomic.set on true

let stop () = Atomic.set on false

let events () =
  Mutex.lock lock;
  let evs = !collected in
  Mutex.unlock lock;
  List.rev evs

let record ev =
  Mutex.lock lock;
  collected := ev :: !collected;
  Mutex.unlock lock

let span ?(attrs = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get open_spans in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    stack := id :: !stack;
    let t0 = now_ns () in
    let finish () =
      let t1 = now_ns () in
      (match !stack with
      | s :: rest when s = id -> stack := rest
      | _ -> () (* unbalanced pop: a nested span escaped; leave the stack *));
      record
        {
          id;
          parent;
          name;
          domain = (Domain.self () :> int);
          ts_ns = Int64.sub t0 (Atomic.get epoch_ns);
          dur_ns = Int64.sub t1 t0;
          attrs;
        }
    in
    Fun.protect ~finally:finish f
  end

let to_jsonl ev =
  let b = Buffer.create 160 in
  Json.obj b
    [
      (fun b -> Json.field b "type" (fun b -> Json.str b "span"));
      (fun b -> Json.field b "name" (fun b -> Json.str b ev.name));
      (fun b -> Json.field b "id" (fun b -> Json.int b ev.id));
      (fun b ->
        Json.field b "parent" (fun b ->
            match ev.parent with
            | None -> Buffer.add_string b "null"
            | Some p -> Json.int b p));
      (fun b -> Json.field b "domain" (fun b -> Json.int b ev.domain));
      (fun b -> Json.field b "ts_ns" (fun b -> Buffer.add_string b (Int64.to_string ev.ts_ns)));
      (fun b -> Json.field b "dur_ns" (fun b -> Buffer.add_string b (Int64.to_string ev.dur_ns)));
      (fun b ->
        Json.field b "attrs" (fun b ->
            Json.obj b
              (List.map (fun (k, v) -> fun b -> Json.field b k (fun b -> Json.str b v)) ev.attrs)));
    ];
  Buffer.contents b

let export oc =
  List.iter
    (fun ev ->
      output_string oc (to_jsonl ev);
      output_char oc '\n')
    (events ())

let export_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export oc)
