module Nest = Workload.Nest
module Tech = Archspec.Technology
module Arch = Archspec.Arch
module Level = Mapspace.Level
module M = Symexpr.Monomial
module P = Symexpr.Posynomial

type objective = Energy | Delay | Edp

type arch_mode = Fixed of Arch.t | Codesign of { area_budget : float }

type instance = {
  problem : Gp.Problem.t;
  nest : Nest.t;
  choice : Permutations.choice;
  analysis : Volume.t;
  objective : objective;
  arch_mode : arch_mode;
  tileable : string list;
  pinned : (string * float) list;
}

let var_arch_regs = "arch.regs"

let var_arch_sram = "arch.sram"

let var_arch_pes = "arch.pes"

let var_delay = "delay.T"

let bind_pinned pinned p =
  List.fold_left (fun acc (x, v) -> P.bind x v acc) p pinned

let build ?placement tech arch_mode objective (plan : Permutations.plan) (choice, analysis) =
  let nest = plan.Permutations.nest in
  let pinned =
    match placement with Some p -> p | None -> plan.Permutations.pinned
  in
  let tileable = plan.Permutations.tileable in
  let bind = bind_pinned pinned in
  let macs = Nest.ops nest in
  (* Data volumes and buffer footprints, summed over tensors. *)
  let volume_sum select =
    P.sum
      (List.filter_map
         (fun tv ->
           Option.map
             (fun v -> bind (Volume.volume_posynomial v))
             (select tv))
         analysis.Volume.per_tensor)
  in
  let sram_to_reg = volume_sum (fun tv -> Some tv.Volume.sram_to_reg) in
  let reg_to_sram =
    volume_sum (fun tv -> if tv.Volume.read_write then Some tv.Volume.sram_to_reg else None)
  in
  let dram_to_sram = volume_sum (fun tv -> Some tv.Volume.dram_to_sram) in
  let sram_to_dram =
    volume_sum (fun tv -> if tv.Volume.read_write then Some tv.Volume.dram_to_sram else None)
  in
  let footprint_sum select =
    P.sum
      (List.map
         (fun tv -> bind (Symexpr.Footprint.to_posynomial (select tv)))
         analysis.Volume.per_tensor)
  in
  let reg_footprint = footprint_sum (fun tv -> tv.Volume.register_footprint) in
  let sram_footprint = footprint_sum (fun tv -> tv.Volume.sram_footprint) in
  let spatial_product =
    (* Over every dim: pinned spatial placements (e.g. a window dim spread
       across PE rows) contribute their constant factor after binding. *)
    let raw =
      List.fold_left
        (fun acc d -> M.mul acc (M.var (Level.trip_var ~level:Level.spatial_level ~dim:d)))
        M.one (Nest.dim_names nest)
    in
    List.fold_left (fun acc (x, v) -> M.bind x v acc) raw pinned
  in
  (* Per-access energies: constants for a fixed architecture, monomials in
     the architectural variables in co-design mode (Eq. 4). *)
  let eps_r, eps_s =
    match arch_mode with
    | Fixed arch -> (M.const (Arch.register_energy tech arch), M.const (Arch.sram_energy tech arch))
    | Codesign _ ->
      ( M.scale tech.Tech.sigma_register (M.var var_arch_regs),
        M.scale tech.Tech.sigma_sram (M.var_pow var_arch_sram 0.5) )
  in
  let eps_d = tech.Tech.energy_dram in
  let register_side = P.add sram_to_reg reg_to_sram in
  let dram_side = P.add dram_to_sram sram_to_dram in
  let sram_side = P.add register_side dram_side in
  (* Capacity / resource constraints shared by both objectives.

     The posynomial footprints over-approximate the exact halo extents
     (the negative constants of [x*Ht + Rt - x] are dropped).  The gap
     [relaxed - exact] is smallest at the all-ones point, so adding that
     minimal gap as slack to a constant capacity keeps the constraint a
     valid over-approximation everywhere while making it exact at the
     boundary — without it, architectures with very small register files
     (which the co-design path legitimately produces) would be spuriously
     infeasible. *)
  let ones_env var =
    match List.assoc_opt var pinned with Some v -> v | None -> 1.0
  in
  let capacity_slack select =
    List.fold_left
      (fun acc tv ->
        let fp = select tv in
        acc
        +. P.eval ones_env (Symexpr.Footprint.to_posynomial fp)
        -. Symexpr.Footprint.eval_exact ones_env fp)
      0.0 analysis.Volume.per_tensor
  in
  let capacity name posy bound_monomial = (name, Gp.Problem.le posy bound_monomial) in
  let base_constraints =
    match arch_mode with
    | Fixed arch ->
      [
        capacity "reg-capacity" reg_footprint
          (M.const
             (float_of_int arch.Arch.registers_per_pe
             +. capacity_slack (fun tv -> tv.Volume.register_footprint)));
        capacity "sram-capacity" sram_footprint
          (M.const
             (float_of_int arch.Arch.sram_words
             +. capacity_slack (fun tv -> tv.Volume.sram_footprint)));
        capacity "pe-count" (P.of_monomial spatial_product)
          (M.const (float_of_int arch.Arch.pe_count));
      ]
    | Codesign { area_budget } ->
      let area =
        P.of_monomials
          [
            M.scale tech.Tech.area_register (M.mul (M.var var_arch_regs) (M.var var_arch_pes));
            M.scale tech.Tech.area_mac (M.var var_arch_pes);
            M.scale tech.Tech.area_sram_word (M.var var_arch_sram);
          ]
      in
      [
        capacity "reg-capacity" reg_footprint (M.var var_arch_regs);
        capacity "sram-capacity" sram_footprint (M.var var_arch_sram);
        capacity "pe-count" (P.of_monomial spatial_product) (M.var var_arch_pes);
        ("area", Gp.Problem.le_const area area_budget);
      ]
  in
  let lower_bounds =
    let bound v = (Printf.sprintf "bound:%s" v, P.of_monomial (M.var_pow v (-1.0))) in
    let trip_vars =
      List.concat_map
        (fun d -> List.map (fun level -> Level.trip_var ~level ~dim:d) [ 0; 1; 2; 3 ])
        tileable
    in
    let arch_vars =
      match arch_mode with
      | Fixed _ -> []
      | Codesign _ -> [ var_arch_regs; var_arch_sram; var_arch_pes ]
    in
    List.map bound (trip_vars @ arch_vars)
  in
  let extent_eqs =
    List.map
      (fun d ->
        let product =
          List.fold_left
            (fun acc level -> M.mul acc (M.var (Level.trip_var ~level ~dim:d)))
            M.one [ 0; 1; 2; 3 ]
        in
        ( Printf.sprintf "extent:%s" d,
          Gp.Problem.eq product (M.const (float_of_int (Nest.extent nest d))) ))
      tileable
  in
  let energy =
    let mac_term =
      P.of_monomials [ M.scale (4.0 *. macs) eps_r; M.const (tech.Tech.energy_mac *. macs) ]
    in
    P.sum
      [
        mac_term;
        P.mul_monomial eps_r register_side;
        P.mul_monomial eps_s sram_side;
        P.scale eps_d dram_side;
      ]
  in
  let delay_constraints () =
    let t = M.var var_delay in
    let compute_delay =
      (* macs / (PEs used): one MAC per PE per cycle. *)
      P.of_monomial (M.scale macs (M.pow spatial_product (-1.0)))
    in
    [
      ("delay-compute", Gp.Problem.le compute_delay t);
      ("delay-sram", Gp.Problem.le (P.scale (1.0 /. tech.Tech.sram_bandwidth) sram_side) t);
      ("delay-dram", Gp.Problem.le (P.scale (1.0 /. tech.Tech.dram_bandwidth) dram_side) t);
    ]
  in
  let problem =
    match objective with
    | Energy ->
      Gp.Problem.make ~objective:energy
        ~ineqs:(base_constraints @ lower_bounds)
        ~eqs:extent_eqs ()
    | Delay ->
      Gp.Problem.make ~objective:(P.var var_delay)
        ~ineqs:(delay_constraints () @ base_constraints @ lower_bounds)
        ~eqs:extent_eqs ()
    | Edp ->
      (* Energy-delay product: posynomial times the epigraph variable is
         still a posynomial, so EDP stays inside DGP. *)
      Gp.Problem.make
        ~objective:(P.mul_monomial (M.var var_delay) energy)
        ~ineqs:(delay_constraints () @ base_constraints @ lower_bounds)
        ~eqs:extent_eqs ()
  in
  { problem; nest; choice; analysis; objective; arch_mode; tileable; pinned }

let solution_env instance solution var =
  match List.assoc_opt var instance.pinned with
  | Some v -> v
  | None -> begin
    match List.assoc_opt var solution.Gp.Solver.values with Some v -> v | None -> 1.0
  end

let cumulative instance solution dim ~level =
  let env = solution_env instance solution in
  let rec go l acc =
    if l > level then acc else go (l + 1) (acc *. env (Level.trip_var ~level:l ~dim))
  in
  go 0 1.0
