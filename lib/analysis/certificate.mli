(** Post-solve solution certificates.

    After the interior-point solver returns a point, this pass certifies
    it independently of the solver's own bookkeeping:

    - the objective value and every variable must be finite and positive;
    - constraint violations come from {!Gp.Problem.violations}, which
      reports non-finite evaluations as infinite violations — those are
      hard failures (errors); finite violations beyond the tolerance are
      warnings (interior-point output is approximate by construction);
    - a stationarity (KKT) residual in log space: the norm of
      [grad f0 + sum lambda_i grad f_i + sum nu_j grad g_j] at the point,
      with multipliers fitted by least squares over the near-active
      constraints and negative inequality multipliers clamped to zero.
      A small residual certifies (approximate) optimality, not just
      feasibility; it is reported, never gated on, because iteration-limit
      points are legitimately sub-optimal. *)

type t = {
  objective_value : float;
  violations : (string * float) list;
      (** violated constraints at the point (non-finite evaluations
          included as [infinity]) *)
  max_violation : float;  (** [0.] when feasible *)
  kkt_residual : float option;
      (** relative stationarity residual; [None] when the least-squares
          system is singular or the point is unusable *)
  diagnostics : Diagnostic.t list;
}

val check :
  ?tol:float ->
  ?provenance:string ->
  Gp.Problem.t ->
  (string -> float) ->
  t
(** [check problem env] certifies the point [env].  [tol] (default 1e-4)
    is the violation tolerance above which warnings are emitted. *)

val hard_failure : t -> bool
(** True when any diagnostic is an error (non-finite objective, variable
    or constraint evaluation) — such a point must not be ranked. *)

val check_prune : Gp.Problem.t -> Presolve.proof -> (unit, string) result
(** Independently verify a presolve infeasibility proof against the
    original problem, so a buggy propagator can never silently discard
    a feasible pair (the optimizer runs this before acting on any
    [Infeasible] verdict; a rejected proof falls back to solving).

    The checker replays the proof's bound-derivation steps over its own
    box, accepting a step only when the region it excludes is provably
    infeasible under the step's named constraint: for an upper-bound
    step [x <= b], the implying constraint's interval lower bound over
    the box restricted to [x >= b] must reach 1 (symmetrically for
    lower-bound steps, with an equality's upper bound falling to 1).
    This accepts any sound step — weaker-than-derivable bounds
    included — and rejects tampered ones.  Finally the culprit
    constraint's interval bound is re-evaluated over the replayed box;
    it must be finite, match the proof's claimed bound, and violate 1
    beyond {!Presolve.prune_margin}.  Non-finite or non-positive step
    bounds are rejected outright. *)

val pp : Format.formatter -> t -> unit
