(** The evaluation workloads of the paper: all convolutional layers of
    ResNet-18 and Yolo-9000 (Table II).  Batch size 1; kernel stride 2 for
    the layers marked with [*] in the table, 1 otherwise. *)

val resnet18 : Conv.t list
(** 12 conv layers, named ["resnet-1"] .. ["resnet-12"]. *)

val yolo9000 : Conv.t list
(** 11 conv layers, named ["yolo-1"] .. ["yolo-11"]. *)

val alexnet : Conv.t list
(** The 5 conv layers of AlexNet (not part of the paper's evaluation;
    provided for experiments beyond Table II).  Named ["alexnet-1"] ..
    ["alexnet-5"]. *)

val vgg16 : Conv.t list
(** The 13 conv layers of VGG-16, named ["vgg-1"] .. ["vgg-13"]. *)

val pipelines : (string * Conv.t list) list
(** All pipelines by name: the paper's two first ([resnet18], [yolo9000]),
    then [alexnet] and [vgg16]. *)

val all_layers : Conv.t list
(** Concatenation of both pipelines, Yolo first as in the figures. *)

val find : string -> Conv.t
(** Look up a layer by name.  Raises [Not_found]. *)
