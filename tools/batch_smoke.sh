#!/bin/sh
# batch_smoke.sh THISTLE_CLI
#
# End-to-end smoke of the batched GP kernel (DESIGN §15).  The batched
# kernel is contractually bit-identical to the default compiled kernel,
# so every report below must match byte-for-byte:
#   1. --gp-kernel batched vs the default, same flags;
#   2. the batched run again with a different worker count (batch
#      grouping follows enumeration order, never the schedule);
#   3. both kernels with presolve off (batches are formed from the
#      original problems instead of the presolve-reduced ones).
set -eu

if [ $# -ne 1 ]; then
    echo "usage: $0 path/to/thistle_cli.exe" >&2
    exit 2
fi

cli=$1
case $cli in */*) ;; *) cli=./$cli ;; esac
layer=resnet-2
opts="--layer $layer --max-choices 8 --jobs 1"

dir=$(mktemp -d "${TMPDIR:-/tmp}/thistle_batch.XXXXXX")
trap 'rm -rf "$dir"' EXIT

"$cli" optimize $opts > "$dir/compiled.txt"

"$cli" optimize $opts --gp-kernel batched > "$dir/batched.txt"
if ! cmp -s "$dir/compiled.txt" "$dir/batched.txt"; then
    echo "batch smoke: batched report differs from compiled report" >&2
    diff "$dir/compiled.txt" "$dir/batched.txt" >&2 || true
    exit 1
fi

"$cli" optimize --layer $layer --max-choices 8 --jobs 4 \
    --gp-kernel batched > "$dir/batched-j4.txt"
if ! cmp -s "$dir/compiled.txt" "$dir/batched-j4.txt"; then
    echo "batch smoke: batched report depends on --jobs" >&2
    diff "$dir/compiled.txt" "$dir/batched-j4.txt" >&2 || true
    exit 1
fi

"$cli" optimize $opts --presolve off > "$dir/compiled-off.txt"
"$cli" optimize $opts --presolve off --gp-kernel batched > "$dir/batched-off.txt"
if ! cmp -s "$dir/compiled-off.txt" "$dir/batched-off.txt"; then
    echo "batch smoke: batched report differs from compiled with presolve off" >&2
    diff "$dir/compiled-off.txt" "$dir/batched-off.txt" >&2 || true
    exit 1
fi

echo "batch smoke: batched reports byte-identical to compiled on $layer"
