(* Tests for the static-analysis layer: the unit algebra, the finiteness
   guards on the symbolic substrate, the DGP discipline checker, the
   dimensional-analysis combinators, the post-solve certificate and the
   lint gate — including the property that every formulation Thistle
   builds over the zoo lints clean. *)

module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module U = Analysis.Units
module Dg = Analysis.Diagnostic
module D = Analysis.Dimexpr
module Disc = Analysis.Discipline
module Cert = Analysis.Certificate
module L = Analysis.Lint
module F = Thistle.Formulate
module O = Thistle.Optimize
module Perm = Thistle.Permutations
module Arch = Archspec.Arch
module Conv = Workload.Conv

let tech = Archspec.Technology.table3

let raises_invalid name f =
  Alcotest.(check bool) name true
    (match f () with () -> false | exception Invalid_argument _ -> true)

let errors_of diags = List.length (Dg.errors diags)

(* --- units --- *)

let test_units_algebra () =
  let pj_per_elem = U.div U.pj U.elements in
  Alcotest.(check bool) "mul/inv = div" true
    (U.equal pj_per_elem (U.mul U.pj (U.inv U.elements)));
  Alcotest.(check bool) "x/x is dimensionless" true
    (U.is_dimensionless (U.div U.elements U.elements));
  Alcotest.(check bool) "pow distributes" true
    (U.equal (U.pow pj_per_elem 2.0) (U.div (U.mul U.pj U.pj) (U.mul U.elements U.elements)));
  Alcotest.(check bool) "round-trip equality" true
    (U.equal U.cycles (U.mul (U.div U.cycles U.pj) U.pj));
  Alcotest.(check bool) "distinct bases differ" false (U.equal U.pj U.cycles);
  Alcotest.(check string) "dimensionless prints 1" "1" (U.to_string U.dimensionless);
  raises_invalid "pow of nan" (fun () -> ignore (U.pow U.pj Float.nan))

(* --- monomial finiteness guards (satellite fix) --- *)

let test_monomial_guards () =
  raises_invalid "const inf" (fun () -> ignore (M.const Float.infinity));
  raises_invalid "const nan" (fun () -> ignore (M.const Float.nan));
  raises_invalid "make nan exponent" (fun () -> ignore (M.make 1.0 [ ("x", Float.nan) ]));
  raises_invalid "var_pow inf" (fun () -> ignore (M.var_pow "x" Float.infinity));
  raises_invalid "bind inf" (fun () -> ignore (M.bind "x" Float.infinity (M.var "x")));
  raises_invalid "pow overflow" (fun () -> ignore (M.pow (M.const 1e308) 4.0));
  raises_invalid "pow underflow to 0" (fun () -> ignore (M.pow (M.const 1e-308) 4.0));
  raises_invalid "pow of nan" (fun () -> ignore (M.pow (M.var "x") Float.nan));
  (* Well-formed operations keep working. *)
  Alcotest.(check bool) "pow in range ok" true
    (M.equal (M.pow (M.const 2.0) 3.0) (M.const 8.0))

(* --- Gp.Problem.make validation (satellite fix) --- *)

let test_problem_make_guards () =
  raises_invalid "duplicate constraint name" (fun () ->
      ignore
        (Gp.Problem.make ~objective:(P.var "x")
           ~ineqs:[ ("c", P.var "x"); ("c", P.var "y") ]
           ()));
  raises_invalid "duplicate across kinds" (fun () ->
      ignore
        (Gp.Problem.make ~objective:(P.var "x")
           ~ineqs:[ ("c", P.var "x") ]
           ~eqs:[ ("c", M.var "y") ]
           ()));
  raises_invalid "empty constraint name" (fun () ->
      ignore (Gp.Problem.make ~objective:(P.var "x") ~ineqs:[ ("", P.var "x") ] ()));
  (* [M.div] can underflow a coefficient to zero; [make] must catch the
     degenerate equality. *)
  raises_invalid "zero equality coefficient" (fun () ->
      ignore
        (Gp.Problem.make ~objective:(P.var "x")
           ~eqs:[ ("e", M.div (M.const 1e-300) (M.const 1e300)) ]
           ()))

let test_violations_nonfinite () =
  let prob =
    Gp.Problem.make ~objective:(P.var "x")
      ~ineqs:[ ("c", P.var "x") ]
      ~eqs:[ ("e", M.var "y") ]
      ()
  in
  (* NaN inequality evaluation and a non-positive equality value must
     both surface as infinite violations, never as feasible. *)
  let env = function "x" -> Float.nan | _ -> -1.0 in
  let vs = Gp.Problem.violations prob env in
  Alcotest.(check bool) "ineq reported" true
    (List.assoc_opt "c" vs = Some Float.infinity);
  Alcotest.(check bool) "eq reported" true
    (List.assoc_opt "e" vs = Some Float.infinity);
  Alcotest.(check bool) "not feasible" false (Gp.Problem.is_feasible prob env)

(* --- discipline checker --- *)

let test_discipline_unbounded () =
  let below = Gp.Problem.make ~objective:(P.var "x") () in
  let ds = Disc.check below in
  Alcotest.(check bool) "unbounded below flagged" true (errors_of ds = 1);
  let above =
    Gp.Problem.make ~objective:(P.of_monomial (M.var_pow "x" (-1.0))) ()
  in
  Alcotest.(check bool) "unbounded above flagged" true
    (errors_of (Disc.check above) = 1);
  (* x + 1/x bounds itself; no constraint needed. *)
  let self =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.of_monomial (M.var_pow "x" (-1.0))))
      ()
  in
  Alcotest.(check int) "self-bounded clean" 0 (List.length (Disc.check self));
  (* A lower bound from an inequality clears the flag... *)
  let bounded =
    Gp.Problem.make ~objective:(P.var "x")
      ~ineqs:[ ("x>=1", P.of_monomial (M.var_pow "x" (-1.0))) ]
      ()
  in
  Alcotest.(check int) "inequality bound clean" 0 (List.length (Disc.check bounded));
  (* ...and so does membership in an equality. *)
  let via_eq =
    Gp.Problem.make ~objective:(P.var "x")
      ~eqs:[ ("xy=4", Gp.Problem.eq (M.mul (M.var "x") (M.var "y")) (M.const 4.0)) ]
      ()
  in
  Alcotest.(check int) "equality bound clean" 0 (List.length (Disc.check via_eq))

let test_discipline_constant_constraints () =
  let prob =
    Gp.Problem.make ~objective:(P.add (P.var "x") (P.of_monomial (M.var_pow "x" (-1.0))))
      ~ineqs:[ ("two<=1", P.const 2.0); ("half<=1", P.const 0.5) ]
      ~eqs:[ ("const-eq", M.const 2.0) ]
      ()
  in
  let ds = Disc.check prob in
  let errs, warns = Dg.count ds in
  (* 2 <= 1 and the constant equality are infeasible (errors); 0.5 <= 1
     is vacuous (warning). *)
  Alcotest.(check int) "errors" 2 errs;
  Alcotest.(check int) "warnings" 1 warns;
  let named n = List.exists (fun d -> d.Dg.constraint_name = Some n) ds in
  Alcotest.(check bool) "flags two<=1" true (named "two<=1");
  Alcotest.(check bool) "flags const-eq" true (named "const-eq")

let test_discipline_provenance () =
  let prob = Gp.Problem.make ~objective:(P.var "x") () in
  match Disc.check ~provenance:"here" prob with
  | [ d ] ->
    Alcotest.(check bool) "provenance threaded" true (d.Dg.provenance = Some "here");
    Alcotest.(check string) "pass" "discipline" d.Dg.pass
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

(* --- dimensional analysis --- *)

let test_dimexpr_mismatch () =
  let ctx = D.ctx ~provenance:"test" () in
  let energy = D.of_posynomial U.pj (P.var "e") in
  let words = D.of_posynomial U.elements (P.var "w") in
  let sum = D.add ctx ~what:"mix" energy words in
  Alcotest.(check int) "mismatched add flagged" 1 (errors_of (D.diagnostics ctx));
  Alcotest.(check bool) "left unit wins" true (U.equal U.pj (D.unit_of sum));
  (* The underlying posynomial is still the plain sum. *)
  Alcotest.(check bool) "value unaffected" true
    (P.equal (D.posy sum) (P.add (P.var "e") (P.var "w")))

let test_dimexpr_constraints () =
  let ctx = D.ctx () in
  ignore
    (D.le ctx ~name:"bad-bound"
       (D.of_posynomial U.cycles (P.var "t"))
       (D.mconst U.elements 4.0));
  ignore
    (D.eq ctx ~name:"bad-eq" (D.mvar U.pj "e") (D.mconst U.cycles 1.0));
  ignore (D.objective ctx ~expected:U.pj (D.of_posynomial U.cycles (P.var "t")));
  let ds = D.diagnostics ctx in
  Alcotest.(check int) "three findings" 3 (errors_of ds);
  Alcotest.(check bool) "all from units pass" true
    (List.for_all (fun d -> String.equal d.Dg.pass "units") ds);
  Alcotest.(check bool) "constraint named" true
    (List.exists (fun d -> d.Dg.constraint_name = Some "bad-bound") ds)

let test_dimexpr_propagation () =
  let ctx = D.ctx () in
  let eps = D.mconst (U.div U.pj U.elements) 2.0 in
  let traffic = D.of_posynomial U.elements (P.var "v") in
  let term = D.mul_mono eps traffic in
  Alcotest.(check bool) "pJ/elem * elem = pJ" true (U.equal U.pj (D.unit_of term));
  let sq = D.mpow (D.mvar U.elements "s") 2.0 in
  Alcotest.(check bool) "pow propagates" true
    (U.equal (U.mul U.elements U.elements) (D.mono_unit sq));
  ignore (D.sum ctx ~what:"total" U.pj [ term ]);
  Alcotest.(check int) "no spurious diagnostics" 0 (List.length (D.diagnostics ctx))

(* --- certificate --- *)

let amgm =
  Gp.Problem.make
    ~objective:(P.add (P.var "x") (P.var "y"))
    ~ineqs:[ ("xy>=1", P.of_monomial (M.make 1.0 [ ("x", -1.0); ("y", -1.0) ])) ]
    ()

let test_certificate_optimal () =
  let sol = Gp.Solver.solve amgm in
  let cert = Cert.check amgm (Gp.Solver.env sol) in
  Alcotest.(check bool) "no hard failure" false (Cert.hard_failure cert);
  Alcotest.(check (float 1e-9)) "feasible" 0.0 cert.Cert.max_violation;
  (match cert.Cert.kkt_residual with
  | Some r ->
    Alcotest.(check bool) (Printf.sprintf "small KKT residual (%g)" r) true (r < 1e-2)
  | None -> Alcotest.fail "expected a KKT residual");
  Alcotest.(check (float 1e-3)) "objective" 2.0 cert.Cert.objective_value

let test_certificate_violated () =
  (* x = y = 1/2 violates xy >= 1 by a finite margin: warning, not a
     hard failure. *)
  let cert = Cert.check amgm (fun _ -> 0.5) in
  Alcotest.(check bool) "not a hard failure" false (Cert.hard_failure cert);
  Alcotest.(check bool) "violation recorded" true (cert.Cert.max_violation > 1.0);
  let _, warns = Dg.count cert.Cert.diagnostics in
  Alcotest.(check bool) "warned" true (warns >= 1)

let test_certificate_nonfinite () =
  let cert = Cert.check amgm (fun _ -> Float.nan) in
  Alcotest.(check bool) "NaN point is a hard failure" true (Cert.hard_failure cert);
  let cert0 = Cert.check amgm (fun _ -> 0.0) in
  Alcotest.(check bool) "zero point is a hard failure" true (Cert.hard_failure cert0)

(* --- lint gate --- *)

let test_gate_modes () =
  let err = Dg.error ~pass:"discipline" "broken" in
  let warn = Dg.warning ~pass:"discipline" "odd" in
  Alcotest.check_raises "enforce raises" (L.Rejected [ err ]) (fun () ->
      L.gate L.Enforce [ warn; err ]);
  L.gate L.Warn [ warn; err ];
  L.gate L.Off [ warn; err ];
  (* Errors-free lists pass the gate in every mode. *)
  L.gate L.Enforce [ warn ];
  Alcotest.(check bool) "mode names round-trip" true
    (List.for_all (fun (s, m) -> String.equal s (L.mode_name m)) L.modes)

(* --- formulation lint: hand checks and the zoo property --- *)

let small_conv () =
  Conv.to_nest (Conv.make ~name:"small" ~k:16 ~c:16 ~hw:16 ~rs:3 ())

let arch = Arch.make ~name:"t" ~pes:64 ~registers:64 ~sram_words:4096

let modes = [ F.Fixed arch; F.Codesign { area_budget = 1e6 } ]

let objectives = [ F.Energy; F.Delay; F.Edp ]

let test_formulate_lints_clean () =
  let nest = small_conv () in
  let plan = Perm.enumerate ~max_choices:4 nest in
  List.iter
    (fun mode ->
      List.iter
        (fun objective ->
          List.iter
            (fun choice_vol ->
              List.iter
                (fun placement ->
                  let inst = F.build ~placement tech mode objective plan choice_vol in
                  match F.lint inst with
                  | [] -> ()
                  | ds ->
                    Alcotest.failf "%s: %s" inst.F.provenance (Dg.summary ds))
                plan.Perm.placements)
            plan.Perm.choices)
        objectives)
    modes

let prop_zoo_lints_clean =
  (* Sample (layer, choice, placement, mode, objective) combinations
     across the zoo; every formulated program must pass both analysis
     passes with zero diagnostics. *)
  let sample_nests =
    List.filteri (fun i _ -> i mod 11 = 0) Workload.Zoo.all_layers
    |> List.map Conv.to_nest
  in
  let plans =
    lazy
      (Array.of_list
         (List.map (fun nest -> Perm.enumerate ~max_choices:12 nest) sample_nests))
  in
  let gen =
    QCheck2.Gen.(tup4 (int_bound 1000) (int_bound 1000) (int_bound 1) (int_bound 2))
  in
  QCheck2.Test.make ~name:"zoo formulations lint clean" ~count:25 gen
    (fun (li, ci, mi, oi) ->
      let plans = Lazy.force plans in
      let plan = plans.(li mod Array.length plans) in
      let choices = Array.of_list plan.Perm.choices in
      let choice_vol = choices.(ci mod Array.length choices) in
      let placements = Array.of_list plan.Perm.placements in
      let placement = placements.(ci mod Array.length placements) in
      let mode = List.nth modes mi in
      let objective = List.nth objectives oi in
      let inst = F.build ~placement tech mode objective plan choice_vol in
      F.lint inst = [])

let test_gate_preserves_results () =
  (* The Enforce gate must be invisible on a clean model: same sweep
     outcome as with the analysis off. *)
  let nest = small_conv () in
  let config =
    {
      O.default_config with
      O.max_choices = 4;
      top_choices = 1;
      n_divisors = 1;
      n_pow2 = 1;
      jobs = 1;
    }
  in
  let run lint = O.dataflow ~config:{ config with O.lint } tech arch F.Energy nest in
  match (run L.Enforce, run L.Off) with
  | Ok a, Ok b ->
    Alcotest.(check (float 0.0)) "same best continuous" a.O.best_continuous
      b.O.best_continuous;
    Alcotest.(check int) "same solve count" a.O.choices_solved b.O.choices_solved
  | Error msg, _ | _, Error msg -> Alcotest.failf "optimize failed: %s" msg

let () =
  Alcotest.run "analysis"
    [
      ("units", [ Alcotest.test_case "algebra" `Quick test_units_algebra ]);
      ( "guards",
        [
          Alcotest.test_case "monomial finiteness" `Quick test_monomial_guards;
          Alcotest.test_case "problem make" `Quick test_problem_make_guards;
          Alcotest.test_case "violations non-finite" `Quick test_violations_nonfinite;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "unbounded variables" `Quick test_discipline_unbounded;
          Alcotest.test_case "constant constraints" `Quick test_discipline_constant_constraints;
          Alcotest.test_case "provenance" `Quick test_discipline_provenance;
        ] );
      ( "dimexpr",
        [
          Alcotest.test_case "mismatched add" `Quick test_dimexpr_mismatch;
          Alcotest.test_case "constraint checks" `Quick test_dimexpr_constraints;
          Alcotest.test_case "propagation" `Quick test_dimexpr_propagation;
        ] );
      ( "certificate",
        [
          Alcotest.test_case "optimal point" `Quick test_certificate_optimal;
          Alcotest.test_case "violated point" `Quick test_certificate_violated;
          Alcotest.test_case "non-finite point" `Quick test_certificate_nonfinite;
        ] );
      ("gate", [ Alcotest.test_case "modes" `Quick test_gate_modes ]);
      ( "formulation",
        [
          Alcotest.test_case "small conv lints clean" `Quick test_formulate_lints_clean;
          Alcotest.test_case "gate preserves results" `Slow test_gate_preserves_results;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_zoo_lints_clean ] );
    ]
