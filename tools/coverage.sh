#!/usr/bin/env bash
# Test-coverage driver for thistle.
#
# Every library and executable carries an `(instrumentation (backend
# bisect_ppx))` stanza; those stanzas are inert unless dune is invoked
# with `--instrument-with bisect_ppx`, so normal builds and tests are
# unaffected whether or not bisect_ppx is installed.
#
# Usage:
#   tools/coverage.sh            run the suite instrumented, report to
#                                _coverage/ (html) and stdout (summary)
#   tools/coverage.sh --status   only check tooling availability (used
#                                by the `dune build @coverage` alias,
#                                which cannot re-enter dune itself)
set -euo pipefail
cd "$(dirname "$0")/.."

have_bisect() {
  command -v bisect-ppx-report >/dev/null 2>&1
}

if ! have_bisect; then
  cat <<'EOF'
coverage: bisect_ppx is not installed in this environment, so no
coverage run was performed.  The instrumentation stanzas in the dune
files are inert without it.  To measure coverage:

    opam install bisect_ppx
    tools/coverage.sh
EOF
  # --status is informational and must not fail the alias; an explicit
  # coverage run without the tooling is an error.
  [ "${1:-}" = "--status" ] && exit 0 || exit 1
fi

if [ "${1:-}" = "--status" ]; then
  echo "coverage: bisect_ppx found; run tools/coverage.sh (outside dune) for a report."
  exit 0
fi

export BISECT_FILE="$PWD/_coverage/bisect"
rm -rf _coverage
mkdir -p _coverage

dune runtest --force --instrument-with bisect_ppx
bisect-ppx-report html -o _coverage/html --coverage-path _coverage
bisect-ppx-report summary --coverage-path _coverage

echo "coverage: HTML report in _coverage/html/index.html"
