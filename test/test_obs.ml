(* Tests for the observability layer: span collection and nesting,
   JSONL/JSON well-formedness (checked with a small JSON parser below,
   since the writer is hand-rolled), metric semantics, and domain
   safety. *)

module T = Obs.Trace
module Mx = Obs.Metrics

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser, enough to validate the exporter's output.    *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d in %s" msg !pos s)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n') do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "short \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          if code < 128 then Buffer.add_char b (Char.chr code)
          else Buffer.add_string b (Printf.sprintf "\\u%04X" code)
        | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 0x20 -> fail "raw control char in string"
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> pos := !pos + 4; Bool true
    | Some 'f' -> pos := !pos + 5; Bool false
    | Some 'n' -> pos := !pos + 4; Null
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        advance ()
      done;
      if !pos = start then fail "expected a value";
      Num (float_of_string (String.sub s start (!pos - start)))
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj key =
  match obj with
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "missing field %S" key)))
  | _ -> raise (Bad "not an object")

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_passthrough () =
  Alcotest.(check bool) "disabled by default" false (T.enabled ());
  Alcotest.(check int) "span returns the body's value" 42 (T.span "noop" (fun () -> 42));
  Alcotest.(check int) "nothing recorded" 0 (List.length (T.events ()))

let test_nesting_and_attrs () =
  T.start ();
  let v =
    T.span "outer" ~attrs:[ ("layer", "l1") ] (fun () ->
        T.span "inner" (fun () -> 7))
  in
  T.stop ();
  Alcotest.(check int) "value" 7 v;
  match T.events () with
  | [ inner; outer ] ->
    (* Completion order: inner finishes first. *)
    Alcotest.(check string) "inner name" "inner" inner.T.name;
    Alcotest.(check string) "outer name" "outer" outer.T.name;
    Alcotest.(check (option int)) "inner parent" (Some outer.T.id) inner.T.parent;
    Alcotest.(check (option int)) "outer is a root" None outer.T.parent;
    Alcotest.(check (list (pair string string)))
      "attrs" [ ("layer", "l1") ] outer.T.attrs;
    Alcotest.(check bool) "inner within outer" true (inner.T.ts_ns >= outer.T.ts_ns);
    Alcotest.(check bool) "durations nonneg" true
      (inner.T.dur_ns >= 0L && outer.T.dur_ns >= 0L)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_exception_safety () =
  T.start ();
  (try T.span "boom" (fun () -> failwith "expected") with Failure _ -> ());
  let after = T.span "after" (fun () -> ()) in
  T.stop ();
  ignore after;
  match T.events () with
  | [ boom; after ] ->
    Alcotest.(check string) "raising span recorded" "boom" boom.T.name;
    (* The stack unwound: the next span is a root, not a child of the
       raising span. *)
    Alcotest.(check (option int)) "stack unwound" None after.T.parent
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_worker_spans_are_roots () =
  T.start ();
  T.span "submitter" (fun () ->
      let d = Domain.spawn (fun () -> T.span "worker" (fun () -> ())) in
      Domain.join d);
  T.stop ();
  let worker = List.find (fun e -> e.T.name = "worker") (T.events ()) in
  Alcotest.(check (option int)) "parenthood never crosses domains" None worker.T.parent

let test_jsonl_well_formed () =
  T.start ();
  T.span "weird \"name\"\n\t\\" ~attrs:[ ("k\"ey", "v\nal") ] (fun () ->
      T.span "child" (fun () -> ()));
  T.stop ();
  let events = T.events () in
  Alcotest.(check int) "2 events" 2 (List.length events);
  List.iter
    (fun e ->
      let j = parse_json (T.to_jsonl e) in
      (match field j "type" with
      | Str "span" -> ()
      | _ -> Alcotest.fail "type must be \"span\"");
      (match field j "name" with
      | Str n -> Alcotest.(check string) "name round-trips" e.T.name n
      | _ -> Alcotest.fail "name must be a string");
      (match field j "parent" with
      | Null | Num _ -> ()
      | _ -> Alcotest.fail "parent must be null or a number");
      (match (field j "ts_ns", field j "dur_ns", field j "id", field j "domain") with
      | Num _, Num _, Num _, Num _ -> ()
      | _ -> Alcotest.fail "numeric fields");
      match field j "attrs" with
      | Obj kvs ->
        Alcotest.(check (list (pair string string)))
          "attrs round-trip" e.T.attrs
          (List.map (function k, Str v -> (k, v) | _ -> Alcotest.fail "attr value") kvs)
      | _ -> Alcotest.fail "attrs must be an object")
    events

let test_export_file () =
  T.start ();
  T.span "a" (fun () -> ());
  T.span "b" (fun () -> ());
  T.stop ();
  let file = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      T.export_file file;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per span" 2 (List.length lines);
      List.iter (fun line -> ignore (parse_json line)) lines)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_value name =
  match List.assoc_opt name (Mx.snapshot ()) with
  | Some v -> v
  | None -> Alcotest.failf "metric %S not registered" name

let test_counter_semantics () =
  let c = Mx.counter "test.counter" in
  Mx.disable ();
  Mx.incr c;
  Alcotest.(check bool) "disabled is a no-op" true (snapshot_value "test.counter" = Mx.Counter 0);
  Mx.enable ();
  Mx.incr c;
  Mx.add c 9;
  Mx.disable ();
  Alcotest.(check bool) "accumulates" true (snapshot_value "test.counter" = Mx.Counter 10);
  Alcotest.(check bool) "same name, same handle" true
    (Mx.counter "test.counter" == c);
  Mx.reset ();
  Alcotest.(check bool) "reset zeroes" true (snapshot_value "test.counter" = Mx.Counter 0)

let test_gauge_semantics () =
  let g = Mx.gauge "test.gauge" in
  Mx.enable ();
  Alcotest.(check bool) "unset reads 0" true (snapshot_value "test.gauge" = Mx.Gauge 0.0);
  Mx.observe_max g (-5.0);
  Alcotest.(check bool) "first observation wins over unset" true
    (snapshot_value "test.gauge" = Mx.Gauge (-5.0));
  Mx.observe_max g 3.0;
  Mx.observe_max g 1.0;
  Mx.disable ();
  Alcotest.(check bool) "keeps the max" true (snapshot_value "test.gauge" = Mx.Gauge 3.0);
  Mx.reset ()

let test_histogram_semantics () =
  let h = Mx.histogram "test.hist" in
  Mx.enable ();
  Mx.observe h 1.0;
  Mx.observe h 3.0;
  Mx.observe h 1024.0;
  Mx.disable ();
  (match snapshot_value "test.hist" with
  | Mx.Histogram { count; sum; buckets } ->
    Alcotest.(check int) "count" 3 count;
    Alcotest.(check (float 1e-9)) "sum" 1028.0 sum;
    (* log2 buckets: 1.0 -> bound 1, 3.0 -> bound 4, 1024 -> bound 1024. *)
    Alcotest.(check (list (pair (float 0.0) int)))
      "buckets" [ (1.0, 1); (4.0, 1); (1024.0, 1) ] buckets
  | _ -> Alcotest.fail "expected a histogram");
  Mx.reset ()

let test_kind_mismatch_rejected () =
  ignore (Mx.counter "test.kind");
  (try
     ignore (Mx.gauge "test.kind");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  Mx.reset ()

let test_snapshot_sorted_and_counters_subset () =
  ignore (Mx.counter "test.z");
  ignore (Mx.counter "test.a");
  let dump = Mx.snapshot () in
  let names = List.map fst dump in
  Alcotest.(check (list string)) "sorted" (List.sort String.compare names) names;
  List.iter
    (fun (_, n) -> Alcotest.(check int) "counters subset carries ints" 0 n)
    (List.filter
       (fun (name, _) -> name = "test.z" || name = "test.a")
       (Mx.counters dump))

let test_metrics_json_well_formed () =
  Mx.reset ();
  let c = Mx.counter "test.json.counter" in
  let g = Mx.gauge "test.json.gauge" in
  let h = Mx.histogram "test.json.hist" in
  Mx.enable ();
  Mx.add c 5;
  Mx.set g 2.5;
  Mx.observe h 7.0;
  Mx.disable ();
  let j = parse_json (Mx.to_json (Mx.snapshot ())) in
  (match field (field j "counters") "test.json.counter" with
  | Num 5.0 -> ()
  | _ -> Alcotest.fail "counter value");
  (match field (field j "gauges") "test.json.gauge" with
  | Num 2.5 -> ()
  | _ -> Alcotest.fail "gauge value");
  (match field (field j "histograms") "test.json.hist" with
  | Obj _ as hist ->
    (match (field hist "count", field hist "sum") with
    | Num 1.0, Num 7.0 -> ()
    | _ -> Alcotest.fail "histogram count/sum");
    (match field hist "buckets" with
    | Obj [ ("8", Num 1.0) ] -> ()
    | _ -> Alcotest.fail "histogram buckets")
  | _ -> Alcotest.fail "histogram object");
  Mx.reset ()

let test_parallel_updates () =
  Mx.reset ();
  let c = Mx.counter "test.par.counter" in
  let g = Mx.gauge "test.par.gauge" in
  Mx.enable ();
  let worker k () =
    for i = 1 to 1000 do
      Mx.incr c;
      Mx.observe_max g (float_of_int ((k * 1000) + i))
    done
  in
  let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  Mx.disable ();
  Alcotest.(check bool) "no lost counter updates" true
    (snapshot_value "test.par.counter" = Mx.Counter 4000);
  Alcotest.(check bool) "max merge across domains" true
    (snapshot_value "test.par.gauge" = Mx.Gauge 4000.0);
  Mx.reset ()

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "disabled passthrough" `Quick test_disabled_is_passthrough;
          Alcotest.test_case "nesting and attrs" `Quick test_nesting_and_attrs;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "worker spans are roots" `Quick test_worker_spans_are_roots;
          Alcotest.test_case "JSONL well-formed" `Quick test_jsonl_well_formed;
          Alcotest.test_case "export to file" `Quick test_export_file;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
          Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
          Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch_rejected;
          Alcotest.test_case "snapshot sorted" `Quick test_snapshot_sorted_and_counters_subset;
          Alcotest.test_case "JSON well-formed" `Quick test_metrics_json_well_formed;
          Alcotest.test_case "parallel updates" `Quick test_parallel_updates;
        ] );
    ]
