(** Conversion of the solver's real-valued design point into integer
    candidates, and their ranking with the accelerator model (Section IV).

    Following the paper: memory capacities snap to the [n] closest powers
    of two; tile sizes are chosen top-down — the [n] divisors of the
    problem extent closest to the real SRAM-level tile, then divisors of
    each such candidate for the PE-level tile, then divisors of those for
    the register tile.  The cross product is filtered (divisibility is
    ensured by construction; area and capacity violations are rejected)
    and every surviving candidate is scored with {!Accmodel.Evaluate};
    the best one is returned. *)

type outcome = {
  arch : Archspec.Arch.t;
  mapping : Mapspace.Mapping.t;
  metrics : Accmodel.Evaluate.t;
  choice : Permutations.choice;
  continuous_objective : float;
      (** GP objective value at the real-valued optimum *)
  candidates_tried : int;
  candidates_valid : int;
}

val score : Formulate.objective -> Accmodel.Evaluate.t -> float
(** The model metric being minimized: total energy (pJ) for [Energy],
    total cycles for [Delay], their product for [Edp]. *)

val per_dim_budget : max_candidates:int -> dims:int -> int
(** Largest integer [b >= 1] with [b^dims <= max_candidates], computed by
    integer search — the float [pow]-root round-trip undercounts on exact
    roots (e.g. [4096 ** (1/3)] evaluating to 15.999...).  [dims <= 1]
    returns [max_candidates] itself.  Exposed for tests. *)

val run :
  ?n_divisors:int ->
  ?n_pow2:int ->
  ?max_candidates:int ->
  ?min_pe_utilization:float ->
  ?contention:bool ->
  Archspec.Technology.t ->
  Formulate.instance ->
  Gp.Solver.solution ->
  (outcome, string) result
(** [n_divisors] (default 2) is the paper's [n]; [n_pow2] (default 2) is
    the paper's [N]; [max_candidates] (default 65536) bounds the cross
    product; [min_pe_utilization] (default 0, i.e. off) rejects candidates
    whose used-PE fraction falls below the threshold — the paper's
    "minimum threshold on resource utilization" filter.

    Candidates are scored by {!Accmodel.Evaluate} under the instance's
    communication model ({!Formulate.instance.comm}); [contention]
    (default false) additionally serializes the DRAM/NoC channels in
    that scoring (only meaningful under [Comm_aware]). *)
