(** The DGP discipline checker — static validation of a formulated
    geometric program before it reaches the solver (the role CVXPY's DGP
    ruleset plays for the paper's implementation).

    Checks, each reported as a {!Diagnostic.t}:

    - every monomial coefficient is finite and strictly positive, and
      every exponent finite, in the objective, every inequality and every
      equality (errors);
    - the objective and each inequality are non-empty posynomials
      (errors);
    - constraint names are non-empty and unique across inequalities and
      equalities (errors) — duplicate names make violation reports and
      diagnostics ambiguous;
    - trivially infeasible constant constraints: an all-constant
      inequality with value [> 1] or a constant equality [<> 1] can never
      be satisfied (errors); satisfiable constant constraints are vacuous
      and reported as warnings;
    - unbounded-below-in-log-space objectives: a variable whose objective
      exponents are all positive needs a lower bound from some constraint
      (a negative exponent in an inequality, or membership in an
      equality), and symmetrically for all-negative exponents — otherwise
      the infimum is approached only as the variable escapes to [0] or
      [infinity] and the solver diverges (errors);
    - a variable mentioned by no constraint at all, unless its objective
      exponents self-bound it (mixed signs), is reported with the above;
      constraint-only variables are never flagged (one-sided bounds are
      fine when the objective is indifferent). *)

val check : ?provenance:string -> Gp.Problem.t -> Diagnostic.t list
(** Empty on a well-formed program. *)
