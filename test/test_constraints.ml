(* Tests for mapping-space constraints: satisfaction logic, the
   constrained mapper search, and the Timeloop-style spec round trip. *)

module C = Mapspace.Constraints
module Mapping = Mapspace.Mapping
module S = Mapper.Search

let tech = Archspec.Technology.table3

let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 ()

let sample_mapping =
  Mapping.canonical
    ~reg:([ ("i", 2); ("j", 2); ("k", 2) ], [ "i"; "j"; "k" ])
    ~pe:([ ("i", 2); ("k", 2) ], [ "k"; "i"; "j" ])
    ~spatial:[ ("j", 2) ]
    ~dram:([ ("i", 2); ("j", 2); ("k", 2) ], [ "j"; "i"; "k" ])

let test_fixed_factor () =
  let ok = [ C.level_constraint ~level:1 ~fixed:[ ("i", 2); ("j", 1) ] () ] in
  Alcotest.(check bool) "satisfied" true (C.satisfies ok sample_mapping);
  let bad = [ C.level_constraint ~level:1 ~fixed:[ ("i", 4) ] () ] in
  Alcotest.(check bool) "violated" false (C.satisfies bad sample_mapping);
  Alcotest.(check int) "one violation" 1 (List.length (C.violations bad sample_mapping))

let test_max_factor () =
  let ok = [ C.level_constraint ~level:2 ~max_factors:[ ("j", 4) ] () ] in
  Alcotest.(check bool) "under the cap" true (C.satisfies ok sample_mapping);
  let bad = [ C.level_constraint ~level:2 ~max_factors:[ ("j", 1) ] () ] in
  Alcotest.(check bool) "over the cap" false (C.satisfies bad sample_mapping)

let test_perm_prefix () =
  let ok = [ C.level_constraint ~level:1 ~perm_prefix:[ "k"; "i" ] () ] in
  Alcotest.(check bool) "prefix holds" true (C.satisfies ok sample_mapping);
  let bad = [ C.level_constraint ~level:1 ~perm_prefix:[ "i" ] () ] in
  Alcotest.(check bool) "prefix fails" false (C.satisfies bad sample_mapping);
  (* A permutation prefix on a spatial level is never satisfiable. *)
  let spatial = [ C.level_constraint ~level:2 ~perm_prefix:[ "j" ] () ] in
  Alcotest.(check bool) "spatial prefix" false (C.satisfies spatial sample_mapping)

let test_missing_level () =
  let c = [ C.level_constraint ~level:7 ~fixed:[ ("i", 1) ] () ] in
  Alcotest.(check bool) "level out of range" false (C.satisfies c sample_mapping)

let test_validation () =
  Alcotest.check_raises "bad factor"
    (Invalid_argument "Constraints.level_constraint: factor 0 for dim \"i\"") (fun () ->
      ignore (C.level_constraint ~level:0 ~fixed:[ ("i", 0) ] ()))

let test_constrained_search () =
  let arch = Archspec.Arch.make ~name:"t" ~pes:8 ~registers:32 ~sram_words:512 in
  let constraints =
    [
      C.level_constraint ~level:2 ~fixed:[ ("i", 1); ("j", 2); ("k", 1) ] ();
      C.level_constraint ~level:0 ~max_factors:[ ("k", 2) ] ();
    ]
  in
  let config = { S.max_trials = 4000; victory_condition = 4000; seed = 13 } in
  let r = S.search ~config ~constraints tech arch S.Min_energy nest in
  match r.S.best with
  | None -> Alcotest.fail "no constrained mapping found"
  | Some (mapping, _) ->
    Alcotest.(check bool) "satisfies" true (C.satisfies constraints mapping);
    Alcotest.(check int) "spatial j fixed" 2 (Mapping.factor mapping ~level:2 "j");
    Alcotest.(check bool) "reg k capped" true (Mapping.factor mapping ~level:0 "k" <= 2);
    (* The free search (same seed) may use mappings the constraints
       forbid, so the constrained best can only be equal or worse. *)
    let free = S.search ~config tech arch S.Min_energy nest in
    match (free.S.best, r.S.best) with
    | Some (_, f), Some (_, c) ->
      Alcotest.(check bool)
        "free <= constrained" true
        (f.Accmodel.Evaluate.energy_pj <= c.Accmodel.Evaluate.energy_pj +. 1e-9)
    | _ -> Alcotest.fail "searches found nothing"

let test_spec_roundtrip () =
  let constraints =
    [
      C.level_constraint ~level:1 ~fixed:[ ("k", 4) ] ~perm_prefix:[ "k"; "c" ] ();
      C.level_constraint ~level:2 ~max_factors:[ ("c", 8) ] ();
      C.level_constraint ~level:3 ~fixed:[ ("h", 2) ] ~max_factors:[ ("w", 4) ] ();
    ]
  in
  let yaml = Specs.Timeloop.constraints_to_yaml constraints in
  let text = Specs.Yaml.emit yaml in
  let parsed =
    Result.get_ok
      (Specs.Timeloop.constraints_of_yaml (Result.get_ok (Specs.Yaml.parse text)))
  in
  Alcotest.(check int) "count" 3 (List.length parsed);
  let c1 = List.nth parsed 0 in
  Alcotest.(check int) "level" 1 c1.C.c_level;
  Alcotest.(check (list (pair string int))) "fixed" [ ("k", 4) ] c1.C.fixed_factors;
  Alcotest.(check (list string)) "prefix" [ "k"; "c" ] c1.C.perm_prefix;
  let c3 = List.nth parsed 2 in
  Alcotest.(check (list (pair string int))) "caps" [ ("w", 4) ] c3.C.max_factors

let () =
  Alcotest.run "constraints"
    [
      ( "satisfaction",
        [
          Alcotest.test_case "fixed factors" `Quick test_fixed_factor;
          Alcotest.test_case "factor caps" `Quick test_max_factor;
          Alcotest.test_case "permutation prefix" `Quick test_perm_prefix;
          Alcotest.test_case "missing level" `Quick test_missing_level;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ("search", [ Alcotest.test_case "constrained search" `Quick test_constrained_search ]);
      ("specs", [ Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip ]);
    ]
