(* Command-line interface to the Thistle optimizer and its substrates. *)

open Cmdliner

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Pl = Thistle.Pipeline
module An = Analysis
module S = Mapper.Search
module Arch = Archspec.Arch
module Conv = Workload.Conv
module Nest = Workload.Nest
module Evaluate = Accmodel.Evaluate

let base_tech = Archspec.Technology.table3

(* Subcommands without a --node flag use the Table III values as-is. *)
let tech = base_tech

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let setup_logs =
  let setup verbose =
    (* Optimizer sweeps log from pool worker domains; serialize the
       reporter so lines never interleave. *)
    Logs.set_reporter (Exec.Reporter.mutexed (Logs_fmt.reporter ()));
    Logs.set_level (if verbose then Some Logs.Info else Some Logs.Warning)
  in
  Term.(const setup $ Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Verbose logging."))

let layer_arg =
  let doc = "Layer name from Table II (e.g. resnet-2, yolo-7); see `thistle layers'." in
  Arg.(required & opt (some string) None & info [ "layer" ] ~docv:"NAME" ~doc)

let nest_of_layer name =
  match Workload.Zoo.find name with
  | layer -> Ok (Conv.to_nest layer)
  | exception Not_found -> Error (Printf.sprintf "unknown layer %S; try `thistle layers'" name)

let objective_arg =
  let objective_conv =
    Arg.enum [ ("energy", F.Energy); ("delay", F.Delay); ("edp", F.Edp) ]
  in
  Arg.(
    value
    & opt objective_conv F.Energy
    & info [ "objective" ] ~docv:"OBJ"
        ~doc:"Optimization criterion: $(b,energy), $(b,delay) or $(b,edp).")

let arch_args =
  let pes =
    Arg.(value & opt int 168 & info [ "pes" ] ~docv:"P" ~doc:"Number of PEs.")
  in
  let regs =
    Arg.(value & opt int 512 & info [ "regs" ] ~docv:"R" ~doc:"Registers per PE (words).")
  in
  let sram =
    Arg.(value & opt int 65536 & info [ "sram" ] ~docv:"S" ~doc:"SRAM capacity (16-bit words).")
  in
  let build pes regs sram = Arch.make ~name:"cli" ~pes ~registers:regs ~sram_words:sram in
  Term.(const build $ pes $ regs $ sram)

let node_arg =
  Arg.(
    value
    & opt float Archspec.Technology.reference_node_nm
    & info [ "node" ] ~docv:"NM"
        ~doc:"Process node in nm; Table III's 45 nm values are scaled \
              first-order (on-chip area and energy by the squared ratio).")

let tech_of_node node = Archspec.Technology.scale_to_node base_tech ~node_nm:node

let top_choices_arg =
  Arg.(
    value
    & opt int O.default_config.O.top_choices
    & info [ "top-choices" ] ~docv:"K"
        ~doc:"Number of best continuous solutions to integerize and model-evaluate.")

let jobs_arg =
  Arg.(
    value
    & opt int O.default_config.O.jobs
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the optimizer sweep (default: recognized CPUs; 1 runs \
           the exact sequential path).  The reported mapping and metrics are \
           identical for any value.")

let sweep_max_choices_arg =
  Arg.(
    value
    & opt int O.default_config.O.max_choices
    & info [ "max-choices" ] ~docv:"N"
        ~doc:"Cap on enumerated permutation choices per layer.")

(* Solver-path knobs shared by the sweep-running subcommands: a term
   that finishes an [Optimize.config] with the requested kernel/reuse
   settings. *)
let solver_opts =
  let kernel_arg =
    Arg.(
      value
      & opt
          (Arg.enum
             [ ("compiled", `Compiled); ("list", `List); ("batched", `Batched) ])
          `Compiled
      & info [ "gp-kernel" ] ~docv:"KERNEL"
          ~doc:
            "GP solver evaluation path: $(b,compiled) (contiguous exponent rows, \
             structured KKT solves), $(b,batched) (the compiled path over \
             coefficient batches — programs sharing an exponent structure are \
             compiled and factored once per structure; results are bit-identical \
             to $(b,compiled)) or $(b,list) (the legacy closure-per-function \
             reference path, kept for benchmarks and differential runs).")
  in
  let no_dedupe_arg =
    Arg.(
      value & flag
      & info [ "no-dedupe" ]
          ~doc:
            "Solve structurally identical programs repeatedly instead of replaying \
             the cached solution.  Results are bit-identical either way.")
  in
  let no_warm_arg =
    Arg.(
      value & flag
      & info [ "no-warm-start" ]
          ~doc:
            "Start every solve from the least-norm point instead of seeding \
             non-pinned placements from their choice's pinned solution.")
  in
  let presolve_arg =
    Arg.(
      value
      & opt (Arg.enum An.Presolve.modes) An.Presolve.Prune
      & info [ "presolve" ] ~docv:"MODE"
          ~doc:
            "Interval-propagation presolve over every formulated program: \
             $(b,prune) (default) skips statically infeasible pairs — each \
             carries an independently re-checked proof — and solves reduced \
             problems (monotone variables pinned, redundant constraints \
             dropped); $(b,check) solves everything and fails the run if any \
             verdict disagrees with the solver; $(b,off) disables the \
             analysis.")
  in
  let build gp_kernel no_dedupe no_warm presolve config =
    {
      config with
      O.gp_kernel;
      dedupe = not no_dedupe;
      warm_start = not no_warm;
      presolve;
    }
  in
  Term.(const build $ kernel_arg $ no_dedupe_arg $ no_warm_arg $ presolve_arg)

(* Fault-tolerance knobs (DESIGN §11), composing onto the config the same
   way [solver_opts] does. *)
let robust_opts =
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "solve-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Cooperative wall-clock budget per GP solve, in milliseconds, checked at \
             outer-iteration boundaries.  A solve that exceeds it retries per \
             $(b,--retries) and is then quarantined; the sweep succeeds as long as \
             any pair survives.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int O.default_config.O.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra solve attempts after a crash or deadline hit before the pair is \
             quarantined.  Retried attempts escalate the solver's initial KKT \
             regularization.")
  in
  let inject_conv =
    let parse s = Result.map_error (fun m -> `Msg m) (Robust.Inject.parse s) in
    let print ppf t = Format.pp_print_string ppf (Robust.Inject.to_string t) in
    Arg.conv (parse, print)
  in
  let inject_arg =
    Arg.(
      value
      & opt inject_conv Robust.Inject.none
      & info [ "inject" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault injection for exercising the quarantine machinery: \
             comma-separated $(b,seed=INT) and $(b,KIND\\@SITE[FILTER]=PROB) clauses, \
             e.g. $(b,seed=7,crash\\@solve=0.2,stall\\@solve[resnet-2]=1).  Decisions \
             are a pure function of the spec and the work item, never of time.")
  in
  let build solve_deadline_ms retries inject config =
    { config with O.solve_deadline_ms; retries; inject }
  in
  Term.(const build $ deadline_arg $ retries_arg $ inject_arg)

(* Sharding/journaling knobs (DESIGN §12), composing onto the config
   like [solver_opts] and [robust_opts]. *)
let shard_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Sweep.Partition.parse s) in
  let print ppf t = Format.pp_print_string ppf (Sweep.Partition.to_string t) in
  Arg.conv (parse, print)

let sweep_opts =
  let shard_arg =
    Arg.(
      value
      & opt shard_conv Sweep.Partition.full
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Own only the $(docv)-th of $(i,N) round-robin slices of the \
             (choice x placement) work-list (whole choices per shard, 1-based).  A \
             shard solves, journals and reports its own pairs; combine the shard \
             journals with $(b,thistle merge) to recover the exact unsharded \
             report.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append every completed (solved or quarantined) pair to the JSONL \
             completion journal $(docv) as it finishes, so a killed run can be \
             resumed with $(b,--resume).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay pairs recorded in $(b,--journal) instead of re-solving them.  \
             Entries whose fingerprint no longer matches the formulation and solver \
             configuration are re-solved and re-journaled.")
  in
  let build shard journal resume config =
    { config with O.shard; journal; resume }
  in
  Term.(const build $ shard_arg $ journal_arg $ resume_arg)

(* Communication-model knobs (DESIGN §16), composing onto the config
   like the other option groups. *)
let comm_opts =
  let comm_arg =
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("comm", Archspec.Link.Comm_aware);
               ("overlapped", Archspec.Link.Overlapped);
             ])
          Archspec.Link.Comm_aware
      & info [ "comm-model" ] ~docv:"MODEL"
          ~doc:
            "Communication model for the delay constraints and candidate \
             scoring: $(b,comm) (default) bounds each link occupancy — DRAM \
             and NoC reads and writes, the per-PE register operand stream — \
             separately with per-burst overhead folded in; $(b,overlapped) \
             keeps the historical aggregate SRAM/DRAM bandwidth form, \
             bit-identical to earlier releases.")
  in
  let contention_arg =
    Arg.(
      value & flag
      & info [ "contention" ]
          ~doc:
            "Serialize the DRAM and NoC channels when scoring integer \
             candidates: the shared bus is busy for the sum of their \
             occupancies rather than the maximum.  Only meaningful under \
             $(b,--comm-model comm).")
  in
  let build comm contention config = { config with O.comm; contention } in
  Term.(const build $ comm_arg $ contention_arg)

let lint_mode_arg =
  Arg.(
    value
    & opt (Arg.enum An.Lint.modes) An.Lint.Enforce
    & info [ "lint" ] ~docv:"MODE"
        ~doc:
          "Static-analysis gate over every formulated program: $(b,enforce) fails the \
           run on any discipline or unit error, $(b,warn) logs and continues, \
           $(b,off) skips the checks.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record nested timing spans (formulate/solve/integerize/evaluate) and write \
           them as JSONL to $(docv).  Tracing never changes results.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record counters, gauges and timing histograms and write them as one JSON \
           object to $(docv).")

(* Runs [f] with tracing/metrics recording enabled per the CLI flags and
   writes the requested files even when [f] raises. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Obs.Trace.start ();
  if metrics <> None then begin
    Obs.Metrics.reset ();
    Obs.Metrics.enable ()
  end;
  let finish () =
    (match trace with
    | None -> ()
    | Some file ->
      Obs.Trace.stop ();
      Obs.Trace.export_file file);
    match metrics with
    | None -> ()
    | Some file ->
      Obs.Metrics.disable ();
      let oc = open_out file in
      output_string oc (Obs.Metrics.to_json (Obs.Metrics.snapshot ()));
      output_char oc '\n';
      close_out oc
  in
  Fun.protect ~finally:finish f

let emit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~docv:"DIR"
        ~doc:"Write Timeloop-style problem/mapping/arch YAML files to $(docv).")

let emit_code_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-code" ] ~docv:"FILE"
        ~doc:"Write the tiled pseudocode of the chosen mapping to $(docv).")

(* The report text itself comes from Serve.Render, the renderer shared
   with the daemon: a served answer — warm or cold — is byte-identical
   to this command's output by construction (DESIGN §14). *)
let print_outcome ?(tech = base_tech) nest (report : O.report) emit emit_code =
  let o = report.O.outcome in
  print_string (Serve.Render.outcome ~tech report);
  (match emit with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    Specs.Timeloop.write_bundle ~dir tech o.I.arch nest o.I.mapping;
    Format.printf "wrote %s/{problem,mapping,arch}.yaml@." dir);
  match emit_code with
  | None -> ()
  | Some file -> begin
    match Codegen.Emit.pseudocode nest o.I.mapping with
    | Ok code ->
      let oc = open_out file in
      output_string oc code;
      close_out oc;
      Format.printf "wrote %s@." file
    | Error msg -> Format.printf "pseudocode emission failed: %s@." msg
  end

(* ------------------------------------------------------------------ *)
(* Subcommands                                                        *)
(* ------------------------------------------------------------------ *)

let layers_cmd =
  let run () =
    Printf.printf "%-10s %6s %6s %6s %4s %7s %12s\n" "layer" "K" "C" "H=W" "RS" "stride"
      "MACs";
    List.iter
      (fun l ->
        Printf.printf "%-10s %6d %6d %6d %4d %7d %12.4g\n" l.Conv.layer_name
          l.Conv.out_channels l.Conv.in_channels l.Conv.in_height l.Conv.kernel
          l.Conv.stride (Conv.macs l))
      Workload.Zoo.all_layers;
    0
  in
  Cmd.v
    (Cmd.info "layers" ~doc:"List the Table II workloads (ResNet-18 and Yolo-9000).")
    Term.(const (fun () () -> run ()) $ setup_logs $ const ())

let optimize_cmd =
  let run () layer objective arch top_choices max_choices emit emit_code node jobs lint
      solver robust sweep comm trace metrics =
    match nest_of_layer layer with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok nest ->
      with_obs ~trace ~metrics @@ fun () -> begin
        let tech = tech_of_node node in
        let config =
          comm
            (sweep
               (robust
                  (solver
                     { O.default_config with O.top_choices; max_choices; jobs; lint })))
        in
        match O.dataflow ~config tech arch objective nest with
        | Error msg ->
          prerr_endline msg;
          1
        | Ok report ->
          print_outcome ~tech nest report emit emit_code;
          0
      end
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Optimize the dataflow of one layer for a fixed architecture (Fig. 4 / Fig. 7 \
          setting).")
    Term.(
      const run $ setup_logs $ layer_arg $ objective_arg $ arch_args $ top_choices_arg
      $ sweep_max_choices_arg $ emit_arg $ emit_code_arg $ node_arg $ jobs_arg
      $ lint_mode_arg $ solver_opts $ robust_opts $ sweep_opts $ comm_opts
      $ trace_arg $ metrics_out_arg)

let codesign_cmd =
  let area_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "area" ] ~docv:"UM2"
          ~doc:"Chip-area budget in um^2 (defaults to the Eyeriss area).")
  in
  let run () layer objective area top_choices max_choices emit emit_code node jobs lint
      solver robust sweep comm trace metrics =
    match nest_of_layer layer with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok nest ->
      with_obs ~trace ~metrics @@ fun () -> begin
        let tech = tech_of_node node in
        let area_budget =
          match area with Some a -> a | None -> Arch.eyeriss_area tech
        in
        let config =
          comm
            (sweep
               (robust
                  (solver
                     { O.default_config with O.top_choices; max_choices; jobs; lint })))
        in
        match O.codesign ~config tech ~area_budget objective nest with
        | Error msg ->
          prerr_endline msg;
          1
        | Ok report ->
          print_string (Serve.Render.area_header area_budget);
          print_outcome ~tech nest report emit emit_code;
          0
      end
  in
  Cmd.v
    (Cmd.info "codesign"
       ~doc:
         "Jointly optimize architecture (PEs, registers, SRAM) and dataflow for one \
          layer under an area budget (Fig. 5 setting).")
    Term.(
      const run $ setup_logs $ layer_arg $ objective_arg $ area_arg $ top_choices_arg
      $ sweep_max_choices_arg $ emit_arg $ emit_code_arg $ node_arg $ jobs_arg
      $ lint_mode_arg $ solver_opts $ robust_opts $ sweep_opts $ comm_opts
      $ trace_arg $ metrics_out_arg)

let mapper_cmd =
  let trials_arg =
    Arg.(value & opt int 30000 & info [ "trials" ] ~docv:"N" ~doc:"Trial budget.")
  in
  let victory_arg =
    Arg.(
      value & opt int 15000
      & info [ "victory" ] ~docv:"N" ~doc:"Stop after $(docv) non-improving trials.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Search domains (threads); the trial budget is split across them.")
  in
  let run () layer objective arch trials victory seed domains trace metrics =
    match nest_of_layer layer with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok nest ->
      with_obs ~trace ~metrics @@ fun () ->
      let criterion =
        match objective with
        | F.Energy -> S.Min_energy
        | F.Delay -> S.Min_delay
        | F.Edp -> S.Min_edp
      in
      let config = { S.max_trials = trials; victory_condition = victory; seed } in
      let result = S.search_parallel ~config ~domains tech arch criterion nest in
      Printf.printf "trials: %d (%d valid, %d improvements)\n" result.S.trials
        result.S.valid_trials result.S.improvements;
      (match result.S.best with
      | None -> print_endline "no valid mapping found"
      | Some (mapping, metrics) ->
        Format.printf "best mapping:@.%a@." Mapspace.Mapping.pp mapping;
        Format.printf "metrics:@.%a@." Evaluate.pp metrics);
      0
  in
  Cmd.v
    (Cmd.info "mapper"
       ~doc:
         "Search-based mapping exploration (the Timeloop-Mapper-style baseline) on a \
          fixed architecture.")
    Term.(
      const run $ setup_logs $ layer_arg $ objective_arg $ arch_args $ trials_arg
      $ victory_arg $ seed_arg $ domains_arg $ trace_arg $ metrics_out_arg)

let lint_cmd =
  let layer_filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "layer" ] ~docv:"NAME"
          ~doc:"Audit only this layer (default: the whole Table II zoo).")
  in
  let max_choices_arg =
    Arg.(
      value
      & opt int 32
      & info [ "max-choices" ] ~docv:"N"
          ~doc:"Cap on permutation choices audited per layer and mode.")
  in
  let certify_arg =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "Also solve every audited program and check the solution certificate \
             (KKT residual, constraint violations) — much slower.")
  in
  let run () layer max_choices certify node jobs =
    let tech = tech_of_node node in
    let layers =
      match layer with
      | None -> Ok (List.map Conv.to_nest Workload.Zoo.all_layers)
      | Some name -> Result.map (fun n -> [ n ]) (nest_of_layer name)
    in
    match layers with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok nests ->
      let arch = Arch.make ~name:"lint" ~pes:168 ~registers:512 ~sram_words:65536 in
      let modes =
        [ F.Fixed arch; F.Codesign { area_budget = Arch.eyeriss_area tech } ]
      in
      let objectives = [ F.Energy; F.Delay; F.Edp ] in
      let certify_diags (instance : F.instance) =
        let solution = Gp.Solver.solve instance.F.problem in
        match solution.Gp.Solver.status with
        | Gp.Solver.Infeasible | Gp.Solver.Deadline_exceeded -> []
        | Gp.Solver.Optimal | Gp.Solver.Iteration_limit ->
          let cert =
            An.Certificate.check ~provenance:instance.F.provenance
              instance.F.problem
              (F.solution_env instance solution)
          in
          cert.An.Certificate.diagnostics
      in
      let audit nest =
        (* Every (mode, objective, choice, placement) combination the
           optimizer would formulate, within the choice cap. *)
        let plan = Thistle.Permutations.enumerate ~max_choices nest in
        let count = ref 0 in
        let diags = ref [] in
        List.iter
          (fun mode ->
            List.iter
              (fun objective ->
                List.iter
                  (fun choice_vol ->
                    List.iter
                      (fun placement ->
                        let instance =
                          F.build ~placement tech mode objective plan choice_vol
                        in
                        incr count;
                        let ds = F.lint instance in
                        let ds = if certify then ds @ certify_diags instance else ds in
                        diags := List.rev_append ds !diags)
                      plan.Thistle.Permutations.placements)
                  plan.Thistle.Permutations.choices)
              objectives)
          modes;
        (!count, List.rev !diags)
      in
      let results = Exec.Par.map ~jobs audit nests in
      let total = List.fold_left (fun acc (n, _) -> acc + n) 0 results in
      let diags = List.concat_map snd results in
      let errors, warnings = An.Diagnostic.count diags in
      if diags <> [] then Format.printf "%a@." An.Diagnostic.pp_table diags;
      Format.printf "linted %d formulations across %d layers: %d errors, %d warnings@."
        total (List.length nests) errors warnings;
      if errors > 0 then 1 else 0
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Audit the formulation layer: build every program the optimizer would (all \
          modes, objectives, permutation choices and placements, per layer) and run \
          the DGP discipline and unit checks without solving.")
    Term.(
      const run $ setup_logs $ layer_filter_arg $ max_choices_arg $ certify_arg
      $ node_arg $ jobs_arg)

let presolve_cmd =
  let layer_filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "layer" ] ~docv:"NAME"
          ~doc:"Audit only this layer (default: the whole Table II zoo).")
  in
  let max_choices_arg =
    Arg.(
      value
      & opt int 32
      & info [ "max-choices" ] ~docv:"N"
          ~doc:"Cap on permutation choices audited per layer and mode.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also solve every audited program and differentially validate the \
             presolve verdicts against the solver: a solved presolve-infeasible \
             program, a solution escaping the propagated box, or an eliminated \
             constraint active at an optimum is a disagreement — much slower.")
  in
  let run () layer max_choices check arch node jobs =
    let tech = tech_of_node node in
    let layers =
      match layer with
      | None -> Ok (List.map Conv.to_nest Workload.Zoo.all_layers)
      | Some name -> Result.map (fun n -> [ n ]) (nest_of_layer name)
    in
    match layers with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok nests ->
      let modes =
        [ F.Fixed arch; F.Codesign { area_budget = Arch.eyeriss_area tech } ]
      in
      let objectives = [ F.Energy; F.Delay; F.Edp ] in
      (* Solve-and-certify, as Optimize.run would gate a usable point. *)
      let usable_solution (instance : F.instance) =
        let sol = Gp.Solver.solve instance.F.problem in
        match sol.Gp.Solver.status with
        | Gp.Solver.Infeasible | Gp.Solver.Deadline_exceeded -> None
        | Gp.Solver.Optimal | Gp.Solver.Iteration_limit ->
          if not (Float.is_finite sol.Gp.Solver.objective) then None
          else
            let cert =
              An.Certificate.check ~provenance:instance.F.provenance
                instance.F.problem
                (F.solution_env instance sol)
            in
            if An.Certificate.hard_failure cert then None else Some sol
      in
      let audit nest =
        let plan = Thistle.Permutations.enumerate ~max_choices nest in
        let count = ref 0 in
        let pruned = ref 0 in
        let fixed = ref 0 in
        let dropped = ref 0 in
        let disagreements = ref [] in
        let disagree fmt =
          Printf.ksprintf (fun m -> disagreements := m :: !disagreements) fmt
        in
        List.iter
          (fun mode ->
            List.iter
              (fun objective ->
                List.iter
                  (fun choice_vol ->
                    List.iter
                      (fun placement ->
                        let instance =
                          F.build ~placement tech mode objective plan choice_vol
                        in
                        let problem = instance.F.problem in
                        let prov = instance.F.provenance in
                        incr count;
                        let t = An.Presolve.analyze problem in
                        match t.An.Presolve.verdict with
                        | An.Presolve.Infeasible proof -> (
                          incr pruned;
                          (match An.Certificate.check_prune problem proof with
                          | Ok () -> ()
                          | Error m ->
                            disagree "%s: proof checker rejected the pruning \
                                      proof: %s" prov m);
                          if check then
                            match usable_solution instance with
                            | Some sol ->
                              disagree
                                "%s: solved to %.6g despite an infeasibility \
                                 proof (culprit %s)"
                                prov sol.Gp.Solver.objective
                                proof.An.Presolve.culprit
                            | None -> ())
                        | An.Presolve.Feasible red -> (
                          fixed := !fixed + List.length red.An.Presolve.fixed;
                          dropped :=
                            !dropped + List.length red.An.Presolve.dropped;
                          if check then
                            match usable_solution instance with
                            | None -> ()
                            | Some sol ->
                              List.iter
                                (fun (x, v) ->
                                  match List.assoc_opt x t.An.Presolve.box with
                                  | Some iv
                                    when not (An.Interval.mem ~slack:1e-4 v iv)
                                    ->
                                    disagree
                                      "%s: solution %s = %g escapes the \
                                       presolve box"
                                      prov x v
                                  | Some _ | None -> ())
                                sol.Gp.Solver.values;
                              List.iter
                                (fun (name, _) ->
                                  match
                                    List.assoc_opt name (Gp.Problem.ineqs problem)
                                  with
                                  | None -> ()
                                  | Some p ->
                                    let v =
                                      Symexpr.Posynomial.eval
                                        (F.solution_env instance sol) p
                                    in
                                    if v >= 1.0 -. 1e-7 then
                                      disagree
                                        "%s: eliminated constraint %s \
                                         evaluates to %g at the optimum"
                                        prov name v)
                                red.An.Presolve.dropped))
                      plan.Thistle.Permutations.placements)
                  plan.Thistle.Permutations.choices)
              objectives)
          modes;
        ( Nest.name nest,
          !count,
          !pruned,
          !fixed,
          !dropped,
          List.rev !disagreements )
      in
      let results = Exec.Par.map ~jobs audit nests in
      Printf.printf "%-10s %14s %8s %6s %8s\n" "layer" "formulations" "pruned"
        "fixed" "dropped";
      List.iter
        (fun (name, count, pruned, fixed, dropped, _) ->
          Printf.printf "%-10s %14d %8d %6d %8d\n" name count pruned fixed dropped)
        results;
      let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
      Printf.printf "total: %d formulations, %d pruned, %d fixed, %d dropped\n"
        (total (fun (_, c, _, _, _, _) -> c))
        (total (fun (_, _, p, _, _, _) -> p))
        (total (fun (_, _, _, f, _, _) -> f))
        (total (fun (_, _, _, _, d, _) -> d));
      let disagreements =
        List.concat_map (fun (_, _, _, _, _, ds) -> ds) results
      in
      if disagreements <> [] then begin
        Printf.printf "%d disagreement(s):\n" (List.length disagreements);
        List.iter (fun d -> Printf.printf "  %s\n" d) disagreements;
        1
      end
      else 0
  in
  Cmd.v
    (Cmd.info "presolve"
       ~doc:
         "Audit the presolve layer: run interval bound propagation over every \
          program the optimizer would formulate (all modes, objectives, \
          permutation choices and placements, per layer), re-check every \
          infeasibility proof, and report prune/fix/drop counts.  With \
          $(b,--check), also solve everything and fail on any verdict the \
          solver contradicts.")
    Term.(
      const run $ setup_logs $ layer_filter_arg $ max_choices_arg $ check_arg
      $ arch_args $ node_arg $ jobs_arg)

let journal_cmd =
  let compact_cmd =
    let files_arg =
      Arg.(
        non_empty & pos_all string []
        & info [] ~docv:"JOURNAL"
            ~doc:"Completion journals (JSONL) to compact in place.")
    in
    let run () files =
      List.fold_left
        (fun rc path ->
          match Sweep.Journal.load path with
          | Error msg ->
            Printf.eprintf "%s: %s\n" path msg;
            1
          | Ok entries ->
            let compacted = Sweep.Journal.compact entries in
            Sweep.Journal.write_file path compacted;
            Printf.printf "%s: %d entries -> %d\n" path (List.length entries)
              (List.length compacted);
            rc)
        0 files
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Rewrite completion journals in place to one line per pair — the last \
            entry wins, exactly as $(b,--resume) replays them — dropping \
            superseded and torn lines.  Resuming from a compacted journal is \
            byte-identical to resuming from the original.")
      Term.(const run $ setup_logs $ files_arg)
  in
  Cmd.group
    (Cmd.info "journal" ~doc:"Completion-journal maintenance utilities.")
    [ compact_cmd ]

let pipeline_cmd =
  let pipeline_arg =
    let doc = "DNN pipeline: $(b,resnet18), $(b,yolo9000), $(b,alexnet) or $(b,vgg16)." in
    Arg.(
      required
      & opt (some (Arg.enum Workload.Zoo.pipelines)) None
      & info [ "pipeline" ] ~docv:"NAME" ~doc)
  in
  let run () layers objective max_choices jobs lint solver robust comm trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let nests = List.map Conv.to_nest layers in
    let config =
      comm (robust (solver { O.default_config with O.max_choices; jobs; lint }))
    in
    (* The whole run — layer-wise co-design, dominant-arch selection,
       comparison table — renders through the module shared with the
       daemon, so `thistle client pipeline` replies byte-identically. *)
    print_string (Serve.Render.pipeline ~config tech objective nests);
    0
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "Layer-wise co-design of a whole DNN pipeline, then re-optimization for the \
          dominant layer's shared architecture (Fig. 6 / Fig. 8 flow).")
    Term.(
      const run $ setup_logs $ pipeline_arg $ objective_arg $ sweep_max_choices_arg
      $ jobs_arg $ lint_mode_arg $ solver_opts $ robust_opts $ comm_opts
      $ trace_arg $ metrics_out_arg)

let merge_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"JOURNAL"
          ~doc:"Per-shard completion journals (JSONL) to combine.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the combined journal to $(docv) (sorted by pair index, duplicates \
             collapsed), then resume the sweep from it.")
  in
  let codesign_arg =
    Arg.(
      value & flag
      & info [ "codesign" ]
          ~doc:
            "The shards ran $(b,thistle codesign); reproduce that command's report \
             (the default reproduces $(b,thistle optimize) on the $(b,--pes/--regs/\
             --sram) architecture).")
  in
  let area_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "area" ] ~docv:"UM2"
          ~doc:
            "Chip-area budget for $(b,--codesign) (defaults to the Eyeriss area); \
             must match the shard runs.")
  in
  let run () layer objective arch codesign area top_choices max_choices node jobs lint
      solver robust out files =
    match nest_of_layer layer with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok nest -> (
      match Sweep.Merge.load_files files with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok entries ->
        Sweep.Journal.write_file out entries;
        let tech = tech_of_node node in
        let config =
          robust
            (solver
               {
                 O.default_config with
                 O.top_choices;
                 max_choices;
                 jobs;
                 lint;
                 journal = Some out;
                 resume = true;
               })
        in
        (* The merged run replays every journaled pair and re-runs
           ranking + integerization over the full work-list: its report
           is byte-identical to the corresponding unsharded command.
           Pairs the shards never completed (or whose fingerprints went
           stale) are re-solved here and appended to the merged
           journal. *)
        let result =
          if codesign then begin
            let area_budget =
              match area with Some a -> a | None -> Arch.eyeriss_area tech
            in
            print_string (Serve.Render.area_header area_budget);
            O.codesign ~config tech ~area_budget objective nest
          end
          else O.dataflow ~config tech arch objective nest
        in
        match result with
        | Error msg ->
          prerr_endline msg;
          1
        | Ok report ->
          print_outcome ~tech nest report None None;
          0)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Combine per-shard sweep journals and replay them into the exact report an \
          unsharded run would print.  Pass the same layer, objective, architecture \
          and solver flags the shards ran with; pairs missing from the journals are \
          re-solved.")
    Term.(
      const run $ setup_logs $ layer_arg $ objective_arg $ arch_args $ codesign_arg
      $ area_arg $ top_choices_arg $ sweep_max_choices_arg $ node_arg $ jobs_arg
      $ lint_mode_arg $ solver_opts $ robust_opts $ out_arg $ files_arg)

let metrics_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the dump as one JSON object instead of a text table.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the dump to $(docv) instead of stdout.")
  in
  let run () layer objective top_choices max_choices node jobs lint solver robust json
      out =
    match nest_of_layer layer with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok nest ->
      let tech = tech_of_node node in
      let area_budget = Arch.eyeriss_area tech in
      let config =
        robust
          (solver { O.default_config with O.top_choices; max_choices; jobs; lint })
      in
      Obs.Metrics.reset ();
      Obs.Metrics.enable ();
      let result = O.codesign ~config tech ~area_budget objective nest in
      Obs.Metrics.disable ();
      let dump = Obs.Metrics.snapshot () in
      let payload =
        if json then Obs.Metrics.to_json dump ^ "\n"
        else begin
          let b = Buffer.create 1024 in
          let ppf = Format.formatter_of_buffer b in
          (match result with
          | Ok report ->
            Format.fprintf ppf "solver: %a@." Gp.Solver.pp_totals report.O.solve_totals
          | Error msg -> Format.fprintf ppf "optimization failed: %s@." msg);
          Obs.Metrics.pp_text ppf dump;
          Format.pp_print_flush ppf ();
          Buffer.contents b
        end
      in
      (match out with
      | None -> print_string payload
      | Some file ->
        let oc = open_out file in
        output_string oc payload;
        close_out oc);
      (match result with Ok _ -> 0 | Error _ -> 1)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Co-design one layer with metric recording on and dump every counter, gauge \
          and histogram (solver iterations, duality gap, integerization candidates, \
          pool queue waits) as text or JSON.")
    Term.(
      const run $ setup_logs $ layer_arg $ objective_arg $ top_choices_arg
      $ sweep_max_choices_arg $ node_arg $ jobs_arg $ lint_mode_arg $ solver_opts
      $ robust_opts $ json_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* Serve daemon and client (DESIGN §14)                               *)
(* ------------------------------------------------------------------ *)

let addr_args =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port on 127.0.0.1 (the daemon accepts 0 for an ephemeral port).")
  in
  let build socket port =
    match (socket, port) with
    | Some path, None -> Ok (`Unix path)
    | None, Some port -> Ok (`Tcp port)
    | None, None -> Error "one of --socket or --port is required"
    | Some _, Some _ -> Error "--socket and --port are mutually exclusive"
  in
  Term.(const build $ socket_arg $ port_arg)

let serve_cmd =
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Persist every rendered answer in the content-addressed result store \
             rooted at $(docv); a repeated request — across connections, restarts \
             and solver-config-compatible daemons — replays the stored bytes.")
  in
  let max_inflight_arg =
    Arg.(
      value
      & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission limit: requests arriving while $(docv) others are being \
             served are rejected immediately with a structured response instead of \
             queueing.")
  in
  let run () addr store max_inflight jobs lint solver robust =
    match addr with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok addr -> (
      let where =
        match addr with
        | `Unix path -> Serve.Server.Unix_sock path
        | `Tcp port -> Serve.Server.Tcp port
      in
      let base = robust (solver { O.default_config with O.jobs; lint }) in
      let config =
        { (Serve.Server.default where) with
          Serve.Server.store_dir = store;
          base;
          max_inflight;
        }
      in
      match Serve.Server.start config with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok server ->
        (match Serve.Server.address server with
        | Unix.ADDR_UNIX path -> Printf.printf "listening on %s\n%!" path
        | Unix.ADDR_INET (_, port) ->
          Printf.printf "listening on 127.0.0.1:%d\n%!" port);
        Serve.Server.wait server;
        0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the co-design daemon: answer optimize/codesign/pipeline/metrics \
          requests over a Unix or TCP socket, solving on the shared domain pool and \
          replaying repeated requests byte-identically from the $(b,--store).")
    Term.(
      const run $ setup_logs $ addr_args $ store_arg $ max_inflight_arg $ jobs_arg
      $ lint_mode_arg $ solver_opts $ robust_opts)

let client_cmd =
  let run_request addr req =
    match addr with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok addr -> (
      let sockaddr =
        match addr with
        | `Unix path -> Serve.Client.unix_addr path
        | `Tcp port -> Serve.Client.tcp_addr port
      in
      match Serve.Client.connect sockaddr with
      | Error msg ->
        prerr_endline msg;
        1
      | Ok client ->
        let result = Serve.Client.request client req in
        Serve.Client.close client;
        (match result with
        | Error msg ->
          prerr_endline msg;
          1
        | Ok (Serve.Protocol.Payload { body; _ }) ->
          print_string body;
          0
        | Ok (Serve.Protocol.Refused { kind; message }) ->
          let kind_name =
            match kind with
            | Serve.Protocol.Rejected -> "rejected"
            | Serve.Protocol.Bad_request -> "bad request"
            | Serve.Protocol.Failed -> "failed"
          in
          Printf.eprintf "%s: %s\n" kind_name message;
          1))
  in
  let opts_of top_choices max_choices node =
    {
      Serve.Protocol.top_choices;
      max_choices;
      node_nm = node;
    }
  in
  let optimize =
    let run () addr layer objective arch top_choices max_choices node =
      run_request addr
        (Serve.Protocol.Optimize
           { layer; objective; arch; opts = opts_of top_choices max_choices node })
    in
    Cmd.v
      (Cmd.info "optimize"
         ~doc:"Ask the daemon to optimize one layer on a fixed architecture.")
      Term.(
        const run $ setup_logs $ addr_args $ layer_arg $ objective_arg $ arch_args
        $ top_choices_arg $ sweep_max_choices_arg $ node_arg)
  in
  let codesign =
    let area_arg =
      Arg.(
        value
        & opt (some float) None
        & info [ "area" ] ~docv:"UM2"
            ~doc:"Chip-area budget in um^2 (defaults to the Eyeriss area).")
    in
    let run () addr layer objective area top_choices max_choices node =
      run_request addr
        (Serve.Protocol.Codesign
           { layer; objective; area; opts = opts_of top_choices max_choices node })
    in
    Cmd.v
      (Cmd.info "codesign"
         ~doc:"Ask the daemon to co-design one layer under an area budget.")
      Term.(
        const run $ setup_logs $ addr_args $ layer_arg $ objective_arg $ area_arg
        $ top_choices_arg $ sweep_max_choices_arg $ node_arg)
  in
  let pipeline =
    let pipeline_arg =
      let doc = "DNN pipeline: $(b,resnet18), $(b,yolo9000), $(b,alexnet) or $(b,vgg16)." in
      Arg.(
        required
        & opt (some (Arg.enum (List.map (fun (n, _) -> (n, n)) Workload.Zoo.pipelines))) None
        & info [ "pipeline" ] ~docv:"NAME" ~doc)
    in
    let run () addr pipeline objective max_choices node =
      run_request addr
        (Serve.Protocol.Pipeline
           {
             pipeline;
             objective;
             opts = opts_of O.default_config.O.top_choices max_choices node;
           })
    in
    Cmd.v
      (Cmd.info "pipeline"
         ~doc:"Ask the daemon for a whole-pipeline co-design run.")
      Term.(
        const run $ setup_logs $ addr_args $ pipeline_arg $ objective_arg
        $ sweep_max_choices_arg $ node_arg)
  in
  let metrics =
    let run () addr = run_request addr Serve.Protocol.Metrics in
    Cmd.v
      (Cmd.info "metrics" ~doc:"Dump the daemon's counter snapshot as JSON.")
      Term.(const run $ setup_logs $ addr_args)
  in
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Send one request to a running $(b,thistle serve) daemon and print the \
          response body — byte-identical to the corresponding local subcommand.")
    [ optimize; codesign; pipeline; metrics ]

let main =
  let info =
    Cmd.info "thistle" ~version:"1.0.0"
      ~doc:
        "Comprehensive accelerator-dataflow co-design for CNNs via geometric \
         programming (CGO 2022 reproduction)."
  in
  Cmd.group info
    [
      layers_cmd;
      optimize_cmd;
      codesign_cmd;
      mapper_cmd;
      pipeline_cmd;
      lint_cmd;
      presolve_cmd;
      journal_cmd;
      merge_cmd;
      metrics_cmd;
      serve_cmd;
      client_cmd;
    ]

let () = exit (Cmd.eval' main)
