type entry = {
  nest : Workload.Nest.t;
  result : (Optimize.report, string) result;
}

let run_layers ?config tech arch_mode objective nests =
  List.map
    (fun nest -> { nest; result = Optimize.run ?config tech arch_mode objective nest })
    nests

let metrics entry =
  match entry.result with
  | Ok report -> Some report.Optimize.outcome.Integerize.metrics
  | Error _ -> None

let dominant_arch objective entries =
  let score m = Integerize.score objective m in
  let best =
    List.fold_left
      (fun acc entry ->
        match entry.result with
        | Error _ -> acc
        | Ok report ->
          let m = report.Optimize.outcome.Integerize.metrics in
          let s = score m in
          begin
            match acc with
            | Some (s', _) when s' >= s -> acc
            | Some _ | None -> Some (s, report.Optimize.outcome.Integerize.arch)
          end)
      None entries
  in
  match best with
  | Some (_, arch) -> Ok arch
  | None -> Error "dominant_arch: no layer optimized successfully"
