(** Twice-differentiable convex functions of a vector variable, as used by
    the barrier solver.  Evaluation returns value, gradient and Hessian in
    one pass because the three share most of the work for log-sum-exp. *)

type t = {
  dim : int;
  eval : Linalg.Vec.t -> float * Linalg.Vec.t * Linalg.Mat.t;
  value : Linalg.Vec.t -> float;  (** value only, cheaper than [eval] *)
}

val linear : int -> Linalg.Vec.t -> float -> t
(** [linear n a b] is [fun y -> a . y + b].  Every [eval] returns a
    fresh gradient and (zero) Hessian, safe for the caller to mutate. *)

val log_sum_exp : int -> (Linalg.Vec.t * float) list -> t
(** [log_sum_exp n terms] with terms [(a_k, b_k)] is
    [fun y -> log (sum_k exp (a_k . y + b_k))] — the log-space image of a
    posynomial.  Raises [Invalid_argument] on an empty term list. *)

val extend : t -> int -> t
(** [extend f extra] views [f] as a function of [dim + extra] variables
    that ignores the trailing [extra] coordinates (zero-padded gradient and
    Hessian). *)
