(* Tests for the shared domain pool (Exec.Pool) and the order-preserving,
   exception-safe parallel combinators (Exec.Par). *)

module Pool = Exec.Pool
module Par = Exec.Par

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "order preserved" (List.map f xs) (Par.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "empty" [] (Par.map ~jobs:4 f []);
  Alcotest.(check (list int)) "singleton" [ 10 ] (Par.map ~jobs:4 f [ 3 ])

let test_filter_map_matches_sequential () =
  let xs = List.init 101 Fun.id in
  let f x = if x mod 3 = 0 then Some (x * 2) else None in
  Alcotest.(check (list int))
    "filtered order" (List.filter_map f xs)
    (Par.filter_map ~jobs:4 f xs)

let test_unbalanced_work_keeps_order () =
  (* Early items carry far more work than late ones, so lanes finish out
     of submission order; the result must not. *)
  let n = 64 in
  let xs = List.init n Fun.id in
  let f i =
    let spins = (n - i) * 2000 in
    let acc = ref 0 in
    for k = 1 to spins do
      acc := (!acc + k) mod 1000003
    done;
    (i, !acc land 0)
  in
  Alcotest.(check (list (pair int int))) "order under skew" (List.map f xs)
    (Par.map ~jobs:4 f xs)

exception Boom of int

let test_exception_propagates () =
  let xs = List.init 20 Fun.id in
  match Par.map ~jobs:4 (fun x -> if x >= 7 then raise (Boom x) else x) xs with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom x ->
    (* Every item >= 7 raises; the lowest index must win, mirroring the
       failure sequential evaluation would surface. *)
    Alcotest.(check int) "lowest failing index wins" 7 x

let test_pool_still_usable_after_exception () =
  (try ignore (Par.map ~jobs:4 (fun _ -> raise Exit) [ 1; 2; 3 ]) with Exit -> ());
  Alcotest.(check (list int))
    "subsequent batch unaffected" [ 2; 4; 6 ]
    (Par.map ~jobs:4 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_nested_map_falls_back () =
  (* Nested parallel loops run sequentially inside pool tasks, with the
     same results. *)
  let inner i = Par.map ~jobs:4 (fun j -> (i * 10) + j) (List.init 5 Fun.id) in
  let expected = List.map inner (List.init 4 Fun.id) in
  Alcotest.(check (list (list int))) "nested" expected (Par.map ~jobs:4 inner (List.init 4 Fun.id))

let test_private_pool_and_shutdown () =
  let pool = Pool.create ~workers:2 in
  Alcotest.(check int) "size" 2 (Pool.size pool);
  let r = Par.map ~pool ~jobs:3 (fun x -> x + 1) (List.init 10 Fun.id) in
  Alcotest.(check (list int)) "private pool" (List.init 10 (fun i -> i + 1)) r;
  Pool.shutdown pool;
  Alcotest.(check int) "size after shutdown" 0 (Pool.size pool);
  (* A shut-down pool still completes batches on the calling domain. *)
  let r = Par.map ~pool ~jobs:3 (fun x -> x * 2) (List.init 10 Fun.id) in
  Alcotest.(check (list int)) "after shutdown" (List.init 10 (fun i -> i * 2)) r

let test_zero_worker_pool () =
  let pool = Pool.create ~workers:0 in
  let r = Par.map ~pool ~jobs:4 (fun x -> x - 1) (List.init 10 Fun.id) in
  Alcotest.(check (list int)) "caller-only pool" (List.init 10 (fun i -> i - 1)) r;
  Pool.shutdown pool

let prop_map_equals_list_map =
  let gen = QCheck2.Gen.(pair (small_list small_int) (int_range 1 8)) in
  QCheck2.Test.make ~name:"Par.map = List.map for any jobs" ~count:200 gen
    (fun (xs, jobs) ->
      let f x = (x * 3) + 1 in
      Par.map ~jobs f xs = List.map f xs)

let prop_filter_map_equals_list_filter_map =
  let gen = QCheck2.Gen.(pair (small_list small_int) (int_range 1 8)) in
  QCheck2.Test.make ~name:"Par.filter_map = List.filter_map for any jobs" ~count:200 gen
    (fun (xs, jobs) ->
      let f x = if x mod 2 = 0 then Some (x / 2) else None in
      Par.filter_map ~jobs f xs = List.filter_map f xs)

let () =
  Alcotest.run "exec"
    [
      ( "par",
        [
          Alcotest.test_case "map order" `Quick test_map_matches_sequential;
          Alcotest.test_case "filter_map order" `Quick test_filter_map_matches_sequential;
          Alcotest.test_case "unbalanced work" `Quick test_unbalanced_work_keeps_order;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "pool survives exceptions" `Quick
            test_pool_still_usable_after_exception;
          Alcotest.test_case "nested fallback" `Quick test_nested_map_falls_back;
        ] );
      ( "pool",
        [
          Alcotest.test_case "private pool + shutdown" `Quick test_private_pool_and_shutdown;
          Alcotest.test_case "zero workers" `Quick test_zero_worker_pool;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_map_equals_list_map; prop_filter_map_equals_list_filter_map ] );
    ]
