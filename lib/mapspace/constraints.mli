(** Mapping-space constraints — the "dataflow constraints specification"
    a Timeloop-style mapper accepts alongside free search (paper
    Section IV).  A constraint set restricts, per level:

    - fixed factors: a dim's trip count at the level must equal a value;
    - factor caps: a dim's trip count at the level may not exceed a value;
    - a permutation prefix: the outermost loops of a temporal level must
      start with the given iterators, in order.

    Constraint sets are conjunctive and levels not mentioned are free. *)

type level_constraint = {
  c_level : int;
  fixed_factors : (string * int) list;
  max_factors : (string * int) list;
  perm_prefix : string list;  (** outer to inner *)
}

type t = level_constraint list

val empty : t

val level_constraint :
  level:int ->
  ?fixed:(string * int) list ->
  ?max_factors:(string * int) list ->
  ?perm_prefix:string list ->
  unit ->
  level_constraint
(** Raises [Invalid_argument] on non-positive factor values. *)

val satisfies : t -> Mapping.t -> bool
(** Levels beyond the mapping's depth make the constraint unsatisfied. *)

val violations : t -> Mapping.t -> string list
(** Human-readable reasons why the mapping fails each constraint; empty
    iff {!satisfies}. *)

val pp : Format.formatter -> t -> unit
