(* Fault-isolation layer tests: deterministic injection, the guard, the
   solver's cooperative deadline, and quarantine behavior through
   Optimize.run and Pipeline.run_layers (DESIGN §11). *)

module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module O = Thistle.Optimize
module F = Thistle.Formulate
module Pl = Thistle.Pipeline

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let inject_of spec =
  match Robust.Inject.parse spec with
  | Ok t -> t
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Inject: parsing                                                    *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let spec = "seed=7,crash@solve=0.2,stall@solve[resnet-2]=1" in
  let t = inject_of spec in
  Alcotest.(check int) "seed" 7 (Robust.Inject.seed t);
  Alcotest.(check string) "round trip" spec (Robust.Inject.to_string t);
  Alcotest.(check bool) "not none" false (Robust.Inject.is_none t);
  Alcotest.(check bool) "none is none" true (Robust.Inject.is_none Robust.Inject.none)

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Robust.Inject.parse spec with
      | Ok _ -> Alcotest.failf "spec %S should not parse" spec
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error mentions inject" spec)
          true
          (contains ~sub:"inject" msg))
    [
      "";
      "crash@solve";
      "crash@=0.5";
      "boom@solve=0.5";
      "crash@solve=1.5";
      "crash@solve=-0.1";
      "crash@solve=nan";
      "seed=x";
      "crash_solve=0.3";
    ]

(* ------------------------------------------------------------------ *)
(* Inject: decisions                                                  *)
(* ------------------------------------------------------------------ *)

(* Decisions are pure functions of (seed, kind, site, provenance,
   attempt): re-asking gives the same answer, and across many distinct
   provenances the firing rate lands near the configured probability. *)
let test_decide_deterministic_and_calibrated () =
  let t = inject_of "seed=3,crash@solve=0.3" in
  let provs = List.init 2000 (Printf.sprintf "prov-%d") in
  let fire p = Robust.Inject.crash t ~site:"solve" ~provenance:p ~attempt:0 in
  let first = List.map fire provs in
  let second = List.map fire provs in
  Alcotest.(check (list bool)) "repeatable" first second;
  let hits = List.length (List.filter Fun.id first) in
  let rate = float_of_int hits /. 2000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f near 0.3" rate)
    true
    (rate > 0.2 && rate < 0.4);
  (* The attempt number enters the hash, so a retry re-rolls. *)
  let differs =
    List.exists
      (fun p -> fire p <> Robust.Inject.crash t ~site:"solve" ~provenance:p ~attempt:1)
      provs
  in
  Alcotest.(check bool) "attempt re-rolls" true differs

let test_decide_site_kind_filter () =
  let t = inject_of "seed=1,crash@solve[l-large]=1,stall@integerize=1" in
  let crash site prov = Robust.Inject.crash t ~site ~provenance:prov ~attempt:0 in
  let stall site prov = Robust.Inject.stall t ~site ~provenance:prov ~attempt:0 in
  Alcotest.(check bool) "filter match fires" true (crash "solve" "l-large energy");
  Alcotest.(check bool) "filter mismatch silent" false (crash "solve" "l-small energy");
  Alcotest.(check bool) "other site silent" false (crash "integerize" "l-large energy");
  Alcotest.(check bool) "other kind honored" true (stall "integerize" "anything");
  Alcotest.(check bool) "stall on solve silent" false (stall "solve" "l-large energy");
  Alcotest.(check bool) "none never fires" false
    (Robust.Inject.crash Robust.Inject.none ~site:"solve" ~provenance:"p" ~attempt:0)

(* ------------------------------------------------------------------ *)
(* Guard                                                              *)
(* ------------------------------------------------------------------ *)

let test_guard_ok () =
  match Robust.guard ~site:"s" ~provenance:"p" (fun () -> 42) with
  | Ok v -> Alcotest.(check int) "value" 42 v
  | Error f -> Alcotest.failf "unexpected failure: %s" (Robust.describe f)

let test_guard_catches () =
  match Robust.guard ~site:"s" ~provenance:"p" (fun () -> failwith "boom") with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error f ->
    Alcotest.(check string) "site" "s" f.Robust.site;
    Alcotest.(check string) "provenance" "p" f.Robust.provenance;
    Alcotest.(check bool) "exn captured" true (contains ~sub:"boom" f.Robust.exn);
    Alcotest.(check int) "attempts" 1 f.Robust.attempts;
    Alcotest.(check bool) "describe mentions site" true
      (contains ~sub:"s failed" (Robust.describe f))

let test_guard_injected_crash () =
  let inject = inject_of "seed=1,crash@s=1" in
  match Robust.guard ~inject ~site:"s" ~provenance:"p" (fun () -> 1) with
  | Ok _ -> Alcotest.fail "expected injected failure"
  | Error f ->
    Alcotest.(check bool) "injected exn" true (contains ~sub:"Injected_fault" f.Robust.exn)

(* ------------------------------------------------------------------ *)
(* Solver deadline                                                    *)
(* ------------------------------------------------------------------ *)

(* min x + y s.t. x y >= 1: optimal objective 2. *)
let amgm =
  Gp.Problem.make
    ~objective:(P.add (P.var "x") (P.var "y"))
    ~ineqs:[ ("xy>=1", P.of_monomial (M.make 1.0 [ ("x", -1.0); ("y", -1.0) ])) ]
    ()

let test_solver_deadline () =
  let st = Gp.Solver.fresh_stats () in
  let sol = Gp.Solver.solve ~stats:st ~deadline_ns:0.0 amgm in
  (match sol.Gp.Solver.status with
  | Gp.Solver.Deadline_exceeded -> ()
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  Alcotest.(check int) "deadline hit counted" 1 st.Gp.Solver.deadline_hits;
  Alcotest.(check (list (pair string (float 0.0)))) "no values" [] sol.Gp.Solver.values;
  (* Without a deadline the same problem solves to optimality and no
     hit is recorded. *)
  let st2 = Gp.Solver.fresh_stats () in
  let sol2 = Gp.Solver.solve ~stats:st2 amgm in
  (match sol2.Gp.Solver.status with
  | Gp.Solver.Optimal -> ()
  | _ -> Alcotest.fail "expected Optimal");
  Alcotest.(check int) "no deadline hit" 0 st2.Gp.Solver.deadline_hits

let test_solver_initial_reg () =
  (* The escalated retry regularization must still converge on a clean
     problem, to the same optimum within tolerance. *)
  let sol = Gp.Solver.solve ~initial_reg:1e-5 amgm in
  (match sol.Gp.Solver.status with
  | Gp.Solver.Optimal -> ()
  | _ -> Alcotest.fail "expected Optimal");
  Alcotest.(check bool) "objective near 2" true
    (Float.abs (sol.Gp.Solver.objective -. 2.0) <= 1e-4)

(* ------------------------------------------------------------------ *)
(* Optimize quarantine                                                *)
(* ------------------------------------------------------------------ *)

let tech = Archspec.Technology.table3
let budget = 6.0e5

let nest =
  Workload.Conv.to_nest (Workload.Conv.make ~name:"r-small" ~k:8 ~c:8 ~hw:8 ~rs:3 ())

let opt_config ?(retries = 1) inject =
  {
    O.default_config with
    O.max_choices = 8;
    top_choices = 1;
    jobs = 2;
    retries;
    inject = inject_of inject;
  }

let with_counters f =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let result = f () in
  Obs.Metrics.disable ();
  let counters = Obs.Metrics.counters (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  (result, fun name -> Option.value ~default:0 (List.assoc_opt name counters))

let test_optimize_all_crash () =
  let config = opt_config "seed=1,crash@solve=1" in
  let result, counter =
    with_counters (fun () -> O.codesign ~config tech ~area_budget:budget F.Energy nest)
  in
  (match result with
  | Ok _ -> Alcotest.fail "expected Error when every solve crashes"
  | Error msg ->
    Alcotest.(check bool) "error mentions quarantine" true
      (contains ~sub:"quarantined" msg));
  Alcotest.(check bool) "quarantined counted" true (counter "robust.quarantined" > 0);
  Alcotest.(check bool) "retries counted" true (counter "robust.retries" > 0)

let test_optimize_partial_crash () =
  let config = opt_config "seed=3,crash@solve=0.3" in
  let result, counter =
    with_counters (fun () -> O.codesign ~config tech ~area_budget:budget F.Energy nest)
  in
  match result with
  | Error msg -> Alcotest.failf "expected survivors, got: %s" msg
  | Ok report ->
    Alcotest.(check bool) "some pairs quarantined" true (report.O.failures <> []);
    Alcotest.(check int) "counter matches report"
      (List.length report.O.failures)
      (counter "robust.quarantined");
    List.iter
      (fun f ->
        Alcotest.(check string) "failure site" "solve" f.Robust.site;
        Alcotest.(check bool) "injected exn" true
          (contains ~sub:"Injected_fault" f.Robust.exn))
      report.O.failures

let test_optimize_stall_quarantine () =
  (* Stalls surface as deterministic deadline hits; with retries off a
     single stall quarantines the pair as Deadline_exceeded. *)
  let config = opt_config ~retries:0 "seed=2,stall@solve=0.4" in
  let result, counter =
    with_counters (fun () -> O.codesign ~config tech ~area_budget:budget F.Energy nest)
  in
  match result with
  | Error msg -> Alcotest.failf "expected survivors, got: %s" msg
  | Ok report ->
    Alcotest.(check bool) "some pairs quarantined" true (report.O.failures <> []);
    List.iter
      (fun f ->
        Alcotest.(check string) "deadline exn" "Deadline_exceeded" f.Robust.exn)
      report.O.failures;
    Alcotest.(check bool) "deadline hits counted" true
      (counter "robust.deadline_hits" > 0);
    Alcotest.(check int) "no retries configured" 0 (counter "robust.retries")

let test_optimize_retry_recovers () =
  (* With one retry allowed, an attempt-0 stall re-rolls on attempt 1:
     with these odds some pairs recover, so the sweep keeps more
     survivors than the retry-less run while counting the retries. *)
  let stalled cfg =
    let result, counter =
      with_counters (fun () ->
          O.codesign ~config:cfg tech ~area_budget:budget F.Energy nest)
    in
    match result with
    | Error msg -> Alcotest.failf "expected survivors, got: %s" msg
    | Ok report -> (List.length report.O.failures, counter)
  in
  let q0, _ = stalled (opt_config ~retries:0 "seed=2,stall@solve=0.4") in
  let q1, counter = stalled (opt_config ~retries:1 "seed=2,stall@solve=0.4") in
  Alcotest.(check bool) "retries counted" true (counter "robust.retries" > 0);
  Alcotest.(check bool)
    (Printf.sprintf "retry keeps more pairs (%d quarantined vs %d)" q1 q0)
    true (q1 < q0)

let test_optimize_clean_run_empty_failures () =
  match O.codesign ~config:(opt_config "seed=1,crash@solve=0") tech ~area_budget:budget
          F.Energy nest
  with
  | Error msg -> Alcotest.failf "clean run failed: %s" msg
  | Ok report -> Alcotest.(check int) "no failures" 0 (List.length report.O.failures)

(* ------------------------------------------------------------------ *)
(* Pipeline isolation                                                 *)
(* ------------------------------------------------------------------ *)

let layers =
  List.map Workload.Conv.to_nest
    [
      Workload.Conv.make ~name:"l-small" ~k:8 ~c:8 ~hw:8 ~rs:3 ();
      Workload.Conv.make ~name:"l-large" ~k:32 ~c:32 ~hw:16 ~rs:3 ();
      Workload.Conv.make ~name:"l-1x1" ~k:16 ~c:32 ~hw:16 ~rs:1 ();
    ]

let check_isolation entries =
  List.iter
    (fun (e : Pl.entry) ->
      let name = Workload.Nest.name e.Pl.nest in
      match (name, e.Pl.result) with
      | "l-large", Error _ -> ()
      | "l-large", Ok _ -> Alcotest.fail "l-large should have failed"
      | _, Ok _ -> ()
      | _, Error msg -> Alcotest.failf "sibling %s failed: %s" name msg)
    entries

(* A crash at the layer site itself (outside Optimize.run's per-pair
   quarantine) is caught by the pipeline's backstop guard. *)
let test_pipeline_layer_crash_isolated () =
  let config =
    { (opt_config "seed=1,crash@layer[l-large]=1") with O.jobs = 3 }
  in
  let entries =
    Pl.run_layers ~config tech (F.Codesign { area_budget = budget }) F.Energy layers
  in
  check_isolation entries;
  List.iter
    (fun (e : Pl.entry) ->
      match e.Pl.result with
      | Error msg ->
        Alcotest.(check bool) "error names the injected fault" true
          (contains ~sub:"Injected_fault" msg)
      | Ok _ -> ())
    entries

(* Every pair of one layer crashing quarantines that whole layer into
   its Error entry; siblings are untouched. *)
let test_pipeline_pairs_crash_isolated () =
  let config = { (opt_config "seed=1,crash@solve[l-large]=1") with O.jobs = 3 } in
  let entries =
    Pl.run_layers ~config tech (F.Codesign { area_budget = budget }) F.Energy layers
  in
  check_isolation entries;
  List.iter
    (fun (e : Pl.entry) ->
      match e.Pl.result with
      | Error msg ->
        Alcotest.(check bool) "error mentions quarantine" true
          (contains ~sub:"quarantined" msg)
      | Ok _ -> ())
    entries

let () =
  Alcotest.run "robust"
    [
      ( "inject",
        [
          Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "deterministic + calibrated" `Quick
            test_decide_deterministic_and_calibrated;
          Alcotest.test_case "site/kind/filter" `Quick test_decide_site_kind_filter;
        ] );
      ( "guard",
        [
          Alcotest.test_case "ok passthrough" `Quick test_guard_ok;
          Alcotest.test_case "catches exceptions" `Quick test_guard_catches;
          Alcotest.test_case "injected crash" `Quick test_guard_injected_crash;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "zero deadline trips" `Quick test_solver_deadline;
          Alcotest.test_case "escalated initial reg" `Quick test_solver_initial_reg;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "all-crash errors" `Quick test_optimize_all_crash;
          Alcotest.test_case "partial crash survives" `Quick test_optimize_partial_crash;
          Alcotest.test_case "stall quarantines" `Quick test_optimize_stall_quarantine;
          Alcotest.test_case "retry recovers" `Quick test_optimize_retry_recovers;
          Alcotest.test_case "clean run, no failures" `Quick
            test_optimize_clean_run_empty_failures;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "layer crash isolated" `Quick
            test_pipeline_layer_crash_isolated;
          Alcotest.test_case "pair crashes isolated" `Quick
            test_pipeline_pairs_crash_isolated;
        ] );
    ]
