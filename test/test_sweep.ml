(* Sharded, resumable sweeps (DESIGN §12): the partition/journal/merge
   trio plus the end-to-end contract on Optimize.run — a sharded sweep
   merged and resumed, or a killed run resumed from its journal, reports
   bit-identically to the uninterrupted single-process run, re-solving
   only the pairs the journal does not already cover. *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Evaluate = Accmodel.Evaluate
module Mapping = Mapspace.Mapping
module Partition = Sweep.Partition
module Journal = Sweep.Journal
module Merge = Sweep.Merge

let tech = Archspec.Technology.table3
let arch = Arch.make ~name:"mid" ~pes:64 ~registers:64 ~sram_words:8192

let nest =
  Workload.Conv.to_nest
    (Workload.Conv.make ~name:"l-small" ~k:8 ~c:8 ~hw:8 ~rs:3 ())

let fast = { O.default_config with O.max_choices = 8; top_choices = 1; jobs = 2 }

(* ------------------------------------------------------------------ *)
(* Partition                                                          *)
(* ------------------------------------------------------------------ *)

let test_partition_parse () =
  (match Partition.parse "2/5" with
  | Ok t ->
    Alcotest.(check int) "index" 2 t.Partition.index;
    Alcotest.(check int) "count" 5 t.Partition.count;
    Alcotest.(check string) "roundtrip" "2/5" (Partition.to_string t)
  | Error e -> Alcotest.failf "parse 2/5 failed: %s" e);
  List.iter
    (fun s ->
      match Partition.parse s with
      | Ok _ -> Alcotest.failf "parse %S should fail" s
      | Error _ -> ())
    [ ""; "3"; "0/4"; "5/4"; "-1/4"; "1/0"; "a/b"; "1/4/2"; "1.5/4" ]

(* Every shard is choice-complete, the shards are pairwise disjoint, and
   their union is exactly the full pair range — the properties the
   warm-start contract and the merge step both hang off. *)
let test_partition_covers () =
  List.iter
    (fun (nchoices, nplac) ->
      let npairs = nchoices * nplac in
      List.iter
        (fun count ->
          let shards =
            List.init count (fun i ->
                Partition.pair_indices
                  { Partition.index = i + 1; count }
                  ~nplac ~npairs)
          in
          let label fmt =
            Printf.ksprintf
              (fun s -> Printf.sprintf "%dx%d over %d: %s" nchoices nplac count s)
              fmt
          in
          let union = List.sort_uniq compare (List.concat shards) in
          Alcotest.(check (list int))
            (label "union is full range")
            (List.init npairs Fun.id) union;
          Alcotest.(check int)
            (label "disjoint")
            npairs
            (List.fold_left (fun n s -> n + List.length s) 0 shards);
          List.iteri
            (fun i pairs ->
              let t = { Partition.index = i + 1; count } in
              List.iter
                (fun p ->
                  let c = Partition.choice_of ~nplac p in
                  Alcotest.(check bool) (label "selects agrees") true
                    (Partition.selects t ~choice:c);
                  (* choice-complete: the whole choice rides along *)
                  List.iter
                    (fun q ->
                      Alcotest.(check bool)
                        (label "choice %d complete in shard %d" c (i + 1))
                        true
                        (List.mem ((c * nplac) + q) pairs))
                    (List.init nplac Fun.id))
                pairs;
              Alcotest.(check (list int))
                (label "ascending")
                (List.sort compare pairs) pairs)
            shards)
        [ 1; 2; 3; 4; 7 ])
    [ (7, 3); (5, 1); (1, 4); (12, 5) ]

(* ------------------------------------------------------------------ *)
(* Journal                                                            *)
(* ------------------------------------------------------------------ *)

let stats ?(gap = 1e-9) () =
  {
    Gp.Solver.phase1_outer = 2;
    phase2_outer = 11;
    newton_iters = 53;
    backtracks = 7;
    kkt_regularizations = 1;
    cholesky_fallbacks = 0;
    deadline_hits = 0;
    duality_gap = gap;
  }

let ok_entry =
  {
    Journal.pair = 3;
    fingerprint = "00deadbeef00f00d";
    provenance = "l-small energy pe=[k,c] dram=[h,w]";
    fate =
      Journal.Solved
        {
          Gp.Solver.status = Gp.Solver.Optimal;
          objective = 1.25e-7;
          values = [ ("t0.c", 4.0); ("t1.k", -0.0); ("gap", Float.nan) ];
        };
    stats = stats ~gap:Float.nan ();
    retries = 0;
    deadline_hits = 0;
  }

let err_entry =
  {
    Journal.pair = 9;
    fingerprint = "0123456789abcdef";
    provenance = "l-small energy pe=[w] dram=[k]";
    fate =
      Journal.Quarantined
        {
          Robust.site = "solve";
          provenance = "l-small energy pe=[w] dram=[k]";
          exn = "Failure(\"injected\")";
          backtrace = "Raised at line 1\nCalled from \"solver\"\n\tframe \xe2\x80\x94 2";
          elapsed_ns = 1.5e6;
          attempts = 2;
        };
    stats = stats ();
    retries = 1;
    deadline_hits = 1;
  }

let pruned_entry =
  {
    Journal.pair = 5;
    fingerprint = "feedface00000001";
    provenance = "l-small energy pe=[c] dram=[k,h]";
    fate =
      Journal.Pruned
        {
          Analysis.Presolve.steps =
            [
              {
                Analysis.Presolve.var = "t0.k";
                side = Analysis.Presolve.Hi;
                bound = 2.0;
                via = "reg-capacity";
              };
              {
                Analysis.Presolve.var = "t1.c";
                side = Analysis.Presolve.Lo;
                bound = 0x1.8p1;
                via = "vol.c";
              };
            ];
          culprit = "pe-count";
          kind = Analysis.Presolve.Ineq_low;
          bound = 1.0 +. 3e-5;
        };
    stats =
      {
        Gp.Solver.phase1_outer = 0;
        phase2_outer = 0;
        newton_iters = 0;
        backtracks = 0;
        kkt_regularizations = 0;
        cholesky_fallbacks = 0;
        deadline_hits = 0;
        duality_gap = Float.infinity;
      };
    retries = 0;
    deadline_hits = 0;
  }

(* Structural equality is useless under NaN, and bit-exactness is the
   actual contract — so round-trips are compared through the encoder. *)
let test_journal_roundtrip () =
  List.iter
    (fun e ->
      let line = Journal.encode e in
      match Journal.decode line with
      | Error msg -> Alcotest.failf "decode failed: %s\nline: %s" msg line
      | Ok e' ->
        Alcotest.(check string)
          (Printf.sprintf "pair %d round-trips bit-exactly" e.Journal.pair)
          line (Journal.encode e'))
    [ ok_entry; err_entry; pruned_entry ]

let test_journal_bit_exact_floats () =
  match Journal.decode (Journal.encode ok_entry) with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok e -> (
    match e.Journal.fate with
    | Journal.Quarantined _ | Journal.Pruned _ ->
      Alcotest.fail "expected Solved fate"
    | Journal.Solved sol ->
      List.iter2
        (fun (n, v) (n', v') ->
          Alcotest.(check string) "variable name" n n';
          Alcotest.(check int64)
            (Printf.sprintf "%s bits" n)
            (Int64.bits_of_float v) (Int64.bits_of_float v'))
        (match ok_entry.Journal.fate with
        | Journal.Solved s -> s.Gp.Solver.values
        | Journal.Quarantined _ | Journal.Pruned _ -> assert false)
        sol.Gp.Solver.values;
      Alcotest.(check bool) "nan gap survives" true
        (Float.is_nan e.Journal.stats.Gp.Solver.duality_gap))

let with_temp f =
  let path = Filename.temp_file "thistle_sweep" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_journal_torn_tail () =
  with_temp @@ fun path ->
  let oc = open_out path in
  output_string oc (Journal.encode ok_entry);
  output_char oc '\n';
  output_string oc (Journal.encode err_entry);
  output_char oc '\n';
  (* a kill mid-append tears the final line *)
  output_string oc "{\"v\":1,\"pair\":12,\"fp\":\"dead";
  close_out oc;
  match Journal.load path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok entries ->
    Alcotest.(check (list int)) "torn tail dropped, good lines kept" [ 3; 9 ]
      (List.map (fun e -> e.Journal.pair) entries)

let test_journal_version_gate () =
  with_temp @@ fun path ->
  let line = Journal.encode ok_entry in
  let oc = open_out path in
  output_string oc
    (String.concat "\n"
       [
         line;
         (* same shape, wrong schema version: must not decode *)
         Printf.sprintf "{\"v\":%d%s" (Journal.version + 1)
           (String.sub line 6 (String.length line - 6));
       ]);
  output_char oc '\n';
  close_out oc;
  match Journal.load path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok entries ->
    Alcotest.(check int) "wrong-version line dropped" 1 (List.length entries)

let test_journal_missing_file () =
  match Journal.load_existing "/nonexistent/thistle.jsonl" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty journal"
  | Error msg -> Alcotest.failf "missing file should be empty, got: %s" msg

(* Compaction: last entry per pair wins (exactly the resume loader's
   replacement order), output sorted and one line per pair, and the
   compacted file replays byte-identically to the original. *)
let test_journal_compact () =
  let stale = { ok_entry with Journal.fingerprint = "0000000000000000" } in
  let entries = [ stale; err_entry; pruned_entry; ok_entry ] in
  let compacted = Journal.compact entries in
  Alcotest.(check (list int)) "sorted, one entry per pair" [ 3; 5; 9 ]
    (List.map (fun e -> e.Journal.pair) compacted);
  (match List.find_opt (fun e -> e.Journal.pair = 3) compacted with
  | Some e ->
    Alcotest.(check string) "last entry for the pair wins"
      ok_entry.Journal.fingerprint e.Journal.fingerprint
  | None -> Alcotest.fail "pair 3 missing after compaction");
  Alcotest.(check (list string)) "idempotent"
    (List.map Journal.encode compacted)
    (List.map Journal.encode (Journal.compact compacted));
  with_temp @@ fun path ->
  Journal.write_file path entries;
  (match Journal.load path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok loaded ->
    Journal.write_file path (Journal.compact loaded);
    let shrunk =
      In_channel.with_open_text path @@ fun ic -> In_channel.input_lines ic
    in
    Alcotest.(check int) "file shrank to one line per pair" 3
      (List.length shrunk);
    (* replay equivalence: the effective (last-wins) entry per pair is
       unchanged, compared through the encoder for bit-exactness *)
    let effective es =
      let tbl = Hashtbl.create 8 in
      List.iter (fun e -> Hashtbl.replace tbl e.Journal.pair e) es;
      List.sort compare
        (Hashtbl.fold (fun p e acc -> (p, Journal.encode e) :: acc) tbl [])
    in
    match Journal.load path with
    | Error msg -> Alcotest.failf "reload failed: %s" msg
    | Ok reloaded ->
      Alcotest.(check (list (pair int string)))
        "compacted journal replays identically" (effective loaded)
        (effective reloaded))

let test_fingerprint_sensitivity () =
  let base = Journal.fingerprint ~config:"cfg-a" ~problem_key:"key-a" in
  Alcotest.(check string) "deterministic" base
    (Journal.fingerprint ~config:"cfg-a" ~problem_key:"key-a");
  Alcotest.(check int) "16 hex digits" 16 (String.length base);
  Alcotest.(check bool) "config changes digest" true
    (base <> Journal.fingerprint ~config:"cfg-b" ~problem_key:"key-a");
  Alcotest.(check bool) "problem changes digest" true
    (base <> Journal.fingerprint ~config:"cfg-a" ~problem_key:"key-b");
  (* the separator keeps (config, key) unambiguous *)
  Alcotest.(check bool) "boundary matters" true
    (Journal.fingerprint ~config:"ab" ~problem_key:"c"
    <> Journal.fingerprint ~config:"a" ~problem_key:"bc")

(* ------------------------------------------------------------------ *)
(* Merge                                                              *)
(* ------------------------------------------------------------------ *)

let test_merge_combine () =
  let e pair fingerprint = { ok_entry with Journal.pair; fingerprint } in
  match Merge.combine [ [ e 4 "b"; e 0 "a" ]; [ e 2 "c"; e 0 "a" ] ] with
  | Error msg -> Alcotest.failf "combine failed: %s" msg
  | Ok merged ->
    Alcotest.(check (list int)) "sorted, duplicates collapsed" [ 0; 2; 4 ]
      (List.map (fun e -> e.Journal.pair) merged);
    Alcotest.(check (list int)) "missing pairs" [ 1; 3; 5 ]
      (Merge.missing merged ~npairs:6)

let test_merge_conflict () =
  let e pair fingerprint = { ok_entry with Journal.pair; fingerprint } in
  match Merge.combine [ [ e 7 "aaaa" ]; [ e 7 "bbbb" ] ] with
  | Ok _ -> Alcotest.fail "conflicting fingerprints must not merge"
  | Error msg ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "error names the pair: %s" msg)
      true (contains msg "7")

(* ------------------------------------------------------------------ *)
(* End-to-end: shard + merge + resume vs the single-process run        *)
(* ------------------------------------------------------------------ *)

let get = function
  | Ok (r : O.report) -> r
  | Error msg -> Alcotest.failf "optimize failed: %s" msg

let failure_sig (f : Robust.failure) =
  Printf.sprintf "%s:%s:%s@%d" f.Robust.site f.Robust.provenance f.Robust.exn
    f.Robust.attempts

(* Bit-exact textual fingerprint of a report, as in test_determinism. *)
let report_sig (r : O.report) =
  let o = r.O.outcome in
  Format.asprintf
    "arch=%s mapping=(%a) energy=%Lx cycles=%Lx continuous=%Lx enumerated=%d \
     solved=%d totals=(%a) failures=[%s]"
    o.I.arch.Arch.arch_name Mapping.pp o.I.mapping
    (Int64.bits_of_float o.I.metrics.Evaluate.energy_pj)
    (Int64.bits_of_float o.I.metrics.Evaluate.cycles)
    (Int64.bits_of_float r.O.best_continuous)
    r.O.choices_enumerated r.O.choices_solved Gp.Solver.pp_totals
    r.O.solve_totals
    (String.concat ";" (List.map failure_sig r.O.failures))

let run_counted config =
  Obs.Metrics.reset ();
  Obs.Metrics.enable ();
  let r = O.dataflow ~config tech arch F.Energy nest in
  Obs.Metrics.disable ();
  let counters = Obs.Metrics.counters (Obs.Metrics.snapshot ()) in
  Obs.Metrics.reset ();
  (get r, counters)

let counter counters name =
  match List.assoc_opt name counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %S missing" name

let with_temp_dir f =
  let dir = Filename.temp_file "thistle_sweep" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let shard_merge_resume ?(config = fast) ~count () =
  with_temp_dir @@ fun dir ->
  let full, _ = run_counted config in
  let shard_files =
    List.init count (fun i ->
        let path = Filename.concat dir (Printf.sprintf "s%d.jsonl" (i + 1)) in
        let shard = { Partition.index = i + 1; count } in
        ignore
          (get
             (O.dataflow
                ~config:{ config with O.shard; journal = Some path }
                tech arch F.Energy nest));
        path)
  in
  let merged = Filename.concat dir "merged.jsonl" in
  (match Merge.load_files shard_files with
  | Error msg -> Alcotest.failf "merge failed: %s" msg
  | Ok entries -> Journal.write_file merged entries);
  let resumed, counters =
    run_counted { config with O.journal = Some merged; resume = true }
  in
  Alcotest.(check string)
    (Printf.sprintf "merged %d-shard run = single-process run" count)
    (report_sig full) (report_sig resumed);
  Alcotest.(check int) "every pair replayed, none stale" 0
    (counter counters "sweep.journal_stale");
  Alcotest.(check int) "no physical solves on resume" 0
    (counter counters "sweep.pairs_solved");
  Alcotest.(check bool) "journal hits fired" true
    (counter counters "sweep.journal_hits" > 0);
  (full, counters)

let test_shard_merge_determinism () = ignore (shard_merge_resume ~count:3 ())

(* Same contract when the sweep quarantines injected faults: the merged
   resume replays failures with their exact provenance fingerprints. *)
let test_shard_merge_injected () =
  let inject =
    match Robust.Inject.parse "seed=5,crash@solve=0.25" with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let full, _ = shard_merge_resume ~config:{ fast with O.inject } ~count:2 () in
  Alcotest.(check bool) "injection actually quarantined pairs" true
    (full.O.failures <> [])

(* Kill-and-resume: truncate the journal of a finished jobs=1 run to its
   first K lines (simulating a kill after K completions) and resume.
   The report must be byte-identical and exactly K pairs replayed. *)
let test_kill_and_resume () =
  with_temp_dir @@ fun dir ->
  let config = { fast with O.jobs = 1 } in
  let path = Filename.concat dir "run.jsonl" in
  let full, counters_full =
    run_counted { config with O.journal = Some path }
  in
  let lines =
    In_channel.with_open_text path @@ fun ic ->
    In_channel.input_lines ic
  in
  let npairs = List.length lines in
  Alcotest.(check bool) "journal covers several pairs" true (npairs > 4);
  let k = npairs / 2 in
  let truncated = Filename.concat dir "truncated.jsonl" in
  Out_channel.with_open_text truncated (fun oc ->
      List.iteri
        (fun i l -> if i < k then (output_string oc l; output_char oc '\n'))
        lines);
  let resumed, counters =
    run_counted { config with O.journal = Some truncated; resume = true }
  in
  Alcotest.(check string) "resumed = uninterrupted" (report_sig full)
    (report_sig resumed);
  Alcotest.(check int) "exactly the journaled pairs replayed" k
    (counter counters "sweep.journal_hits");
  Alcotest.(check int) "nothing stale" 0 (counter counters "sweep.journal_stale");
  Alcotest.(check bool) "strictly fewer physical solves" true
    (counter counters "sweep.pairs_solved"
    < counter counters_full "sweep.pairs_solved");
  (* the resume appended the re-solved pairs: the journal is whole again
     and a second resume replays everything *)
  let _, counters2 =
    run_counted { config with O.journal = Some truncated; resume = true }
  in
  Alcotest.(check int) "journal complete after resume" 0
    (counter counters2 "sweep.pairs_solved")

(* A solver-config change must invalidate every journaled pair: the
   fingerprint covers the config, so nothing replays and everything is
   re-solved (and re-journaled) under the new config. *)
let test_stale_fingerprint () =
  with_temp_dir @@ fun dir ->
  let config = { fast with O.jobs = 1 } in
  let path = Filename.concat dir "run.jsonl" in
  let _, counters_full = run_counted { config with O.journal = Some path } in
  let solved = counter counters_full "sweep.pairs_solved" in
  let stale_config =
    { config with O.gp_tol = config.O.gp_tol *. 0.5; journal = Some path; resume = true }
  in
  let _, counters = run_counted stale_config in
  Alcotest.(check int) "no stale entry replays" 0
    (counter counters "sweep.journal_hits");
  Alcotest.(check bool) "stale entries detected" true
    (counter counters "sweep.journal_stale" > 0);
  Alcotest.(check int) "everything re-solved" solved
    (counter counters "sweep.pairs_solved")

let () =
  Alcotest.run "sweep"
    [
      ( "partition",
        [
          Alcotest.test_case "parse" `Quick test_partition_parse;
          Alcotest.test_case "coverage and disjointness" `Quick
            test_partition_covers;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "bit-exact floats" `Quick
            test_journal_bit_exact_floats;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "version gate" `Quick test_journal_version_gate;
          Alcotest.test_case "missing file" `Quick test_journal_missing_file;
          Alcotest.test_case "compact" `Quick test_journal_compact;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_fingerprint_sensitivity;
        ] );
      ( "merge",
        [
          Alcotest.test_case "combine" `Quick test_merge_combine;
          Alcotest.test_case "conflict" `Quick test_merge_conflict;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "shard+merge determinism" `Quick
            test_shard_merge_determinism;
          Alcotest.test_case "injected faults" `Quick test_shard_merge_injected;
          Alcotest.test_case "kill and resume" `Quick test_kill_and_resume;
          Alcotest.test_case "stale fingerprint" `Quick test_stale_fingerprint;
        ] );
    ]
