(* Tests for divisor arithmetic, level naming and mapping validation. *)

module D = Mapspace.Divisors
module Level = Mapspace.Level
module Mapping = Mapspace.Mapping
module Nest = Workload.Nest

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (D.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (D.divisors 1);
  Alcotest.(check (list int)) "49" [ 1; 7; 49 ] (D.divisors 49);
  Alcotest.(check bool) "is_divisor" true (D.is_divisor 7 ~of_:49);
  Alcotest.(check bool) "not divisor" false (D.is_divisor 5 ~of_:49)

let test_closest () =
  Alcotest.(check (list int)) "closest to 5 in 12" [ 4; 6 ] (D.closest 12 ~target:5.0 ~count:2);
  Alcotest.(check (list int)) "closest to 1" [ 1; 2 ] (D.closest 12 ~target:1.0 ~count:2);
  Alcotest.(check (list int)) "closest to huge" [ 6; 12 ] (D.closest 12 ~target:100.0 ~count:2)

let test_closest_pow2 () =
  Alcotest.(check (list int)) "near 12" [ 8; 16 ] (D.closest_powers_of_two ~target:12.0 ~count:2);
  Alcotest.(check (list int))
    "near 0.3 stays >= 1" [ 1; 2 ]
    (D.closest_powers_of_two ~target:0.3 ~count:2);
  (* Regression: the candidate window used to be biased downward, so a
     target at the clamp returned fewer than [count] values. *)
  Alcotest.(check (list int))
    "full ladder above a clamped target" [ 1; 2; 4; 8 ]
    (D.closest_powers_of_two ~target:1.0 ~count:4);
  Alcotest.(check (list int))
    "upward candidates stay reachable" [ 1; 2; 4; 8; 16 ]
    (D.closest_powers_of_two ~target:2.0 ~count:5);
  Alcotest.(check (list int))
    "window centred on the real-valued target" [ 16; 32; 64 ]
    (D.closest_powers_of_two ~target:33.0 ~count:3)

let prop_closest_pow2_window =
  let gen = QCheck2.Gen.(pair (float_range 0.1 1.0e6) (int_range 1 6)) in
  QCheck2.Test.make ~name:"closest_powers_of_two fills count and brackets target" ~count:300
    gen
    (fun (target, count) ->
      let ds = D.closest_powers_of_two ~target ~count in
      let is_pow2 d = d > 0 && d land (d - 1) = 0 in
      let t = Float.max target 1.0 in
      List.length ds = count
      && List.for_all is_pow2 ds
      && List.sort_uniq Int.compare ds = ds
      && (count < 2
         || List.exists (fun d -> float_of_int d <= t) ds
            && List.exists (fun d -> float_of_int d >= t) ds))

let test_factorizations () =
  let fs = D.factorizations 4 ~parts:2 in
  Alcotest.(check int) "4 into 2 parts" 3 (List.length fs);
  Alcotest.(check bool)
    "products" true
    (List.for_all (fun f -> List.fold_left ( * ) 1 f = 4) fs);
  Alcotest.(check int)
    "count matches"
    (List.length (D.factorizations 24 ~parts:3))
    (D.count_factorizations 24 ~parts:3)

let prop_random_factorization =
  let gen = QCheck2.Gen.(pair (int_range 1 360) (int_range 1 5)) in
  QCheck2.Test.make ~name:"random factorization multiplies back" ~count:300 gen
    (fun (n, parts) ->
      let rng = Random.State.make [| n; parts |] in
      let f = D.random_factorization rng n ~parts in
      List.length f = parts && List.fold_left ( * ) 1 f = n)

let prop_closest_are_divisors =
  let gen = QCheck2.Gen.(triple (int_range 1 1000) (float_range 0.5 600.0) (int_range 1 4)) in
  QCheck2.Test.make ~name:"closest returns divisors" ~count:300 gen
    (fun (n, target, count) ->
      let ds = D.closest n ~target ~count in
      ds <> [] && List.for_all (fun d -> D.is_divisor d ~of_:n) ds)

let test_level_vars () =
  Alcotest.(check string) "var name" "t2.h" (Level.trip_var ~level:2 ~dim:"h");
  Alcotest.(check (option (pair int string)))
    "parse" (Some (2, "h"))
    (Level.parse_trip_var "t2.h");
  Alcotest.(check (option (pair int string))) "reject" None (Level.parse_trip_var "x2.h");
  Alcotest.(check string) "level names" "spatial" (Level.name Level.spatial_level)

let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 ()

let mapping_for ?(spatial = [ ("i", 2) ]) () =
  Mapping.canonical
    ~reg:([ ("i", 2); ("j", 2); ("k", 2) ], [ "i"; "j"; "k" ])
    ~pe:([ ("i", 2); ("j", 4); ("k", 2) ], [ "i"; "j"; "k" ])
    ~spatial
    ~dram:([ ("j", 1); ("k", 2) ], [ "i"; "j"; "k" ])

let test_mapping_accessors () =
  let m = mapping_for () in
  Alcotest.(check int) "factor" 4 (Mapping.factor m ~level:1 "j");
  Alcotest.(check int) "default factor" 1 (Mapping.factor m ~level:3 "i");
  Alcotest.(check int) "extent through" 4 (Mapping.extent_through m ~level:1 "i");
  Alcotest.(check int) "total i" 8 (Mapping.total_extent m "i");
  Alcotest.(check int) "spatial size" 2 (Mapping.spatial_size m);
  Alcotest.(check (list int)) "trips j" [ 2; 4; 1; 1 ] (Mapping.trips m "j");
  Alcotest.(check (float 0.0)) "env" 4.0 (Mapping.env m "t1.j");
  Alcotest.(check (float 0.0)) "env unknown" 1.0 (Mapping.env m "t9.q")

let test_mapping_validate () =
  let ok = mapping_for () in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Mapping.validate nest ok);
  let bad_extent = mapping_for ~spatial:[ ("i", 4) ] () in
  (match Mapping.validate nest bad_extent with
  | Error msg ->
    Alcotest.(check bool) "mentions dim i" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected extent violation");
  let bad_perm =
    Mapping.canonical
      ~reg:([ ("i", 8); ("j", 8); ("k", 8) ], [ "i"; "j" ])
      ~pe:([], [ "i"; "j"; "k" ])
      ~spatial:[]
      ~dram:([], [ "i"; "j"; "k" ])
  in
  match Mapping.validate nest bad_perm with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected permutation violation"

let test_mapping_make_rejects () =
  Alcotest.check_raises "nonpositive factor"
    (Invalid_argument "Mapping.make: factor 0 for dim \"i\"") (fun () ->
      ignore
        (Mapping.make
           [ { Mapping.kind = Level.Temporal; factors = [ ("i", 0) ]; perm = [ "i" ] } ]))

let prop_extent_product =
  let gen = QCheck2.Gen.int_range 0 10000 in
  QCheck2.Test.make ~name:"random mapping factor products = extents" ~count:200 gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let m = Mapper.Search.random_mapping rng nest in
      Mapping.validate nest m = Ok ())

let () =
  Alcotest.run "mapspace"
    [
      ( "divisors",
        [
          Alcotest.test_case "divisors" `Quick test_divisors;
          Alcotest.test_case "closest" `Quick test_closest;
          Alcotest.test_case "closest pow2" `Quick test_closest_pow2;
          Alcotest.test_case "factorizations" `Quick test_factorizations;
        ] );
      ("levels", [ Alcotest.test_case "trip vars" `Quick test_level_vars ]);
      ( "mapping",
        [
          Alcotest.test_case "accessors" `Quick test_mapping_accessors;
          Alcotest.test_case "validate" `Quick test_mapping_validate;
          Alcotest.test_case "make rejects" `Quick test_mapping_make_rejects;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_factorization;
            prop_closest_are_divisors;
            prop_closest_pow2_window;
            prop_extent_product;
          ] );
    ]
