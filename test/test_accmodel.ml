(* Tests for the accelerator model: access counts against the paper's
   closed-form matmul volumes (Eq. 1/2), cross-validation against the
   brute-force reference simulator, and the energy/delay accounting. *)

module Nest = Workload.Nest
module Mapping = Mapspace.Mapping
module Counts = Accmodel.Counts
module Evaluate = Accmodel.Evaluate
module Arch = Archspec.Arch
module Tech = Archspec.Technology

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_float ?eps name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" name expected actual)
    true
    (approx ?eps expected actual)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* The paper's Fig. 1 structure: N = 64 per dim, register tiles R_d,
   per-PE tiles Q_d, SRAM tiles S_d; SRAM-level permutation <i,k,j>,
   register-level permutation <i,j,k>; P_k = 1. *)
let paper_matmul () =
  let nest = Workload.Matmul.nest ~ni:64 ~nj:64 ~nk:64 () in
  (* R = (2,2,4), Q = (8,8,8), S = (16,32,8), N = 64. *)
  let mapping =
    Mapping.canonical
      ~reg:([ ("i", 2); ("j", 2); ("k", 4) ], [ "i"; "j"; "k" ])
      ~pe:([ ("i", 4); ("j", 4); ("k", 2) ], [ "i"; "j"; "k" ])
      ~spatial:[ ("i", 2); ("j", 4) ]
      ~dram:([ ("i", 4); ("j", 2); ("k", 8) ], [ "i"; "k"; "j" ])
  in
  (nest, mapping)

let test_matmul_dram_volumes () =
  let nest, mapping = paper_matmul () in
  let counts = ok (Counts.compute nest mapping) in
  let n = 64.0 in
  let s_i = 16.0 and s_k = 8.0 in
  let fill name =
    let tc = List.find (fun t -> t.Counts.tensor = name) counts.Counts.per_tensor in
    List.assoc Mapspace.Level.dram_temporal_level tc.Counts.fills
  in
  (* Eq. 1: A moves N_i N_k, B moves N^3 / S_i, C moves N^3 / S_k. *)
  check_float "A" (n *. n) (fill "A");
  check_float "B" (n *. n *. n /. s_i) (fill "B");
  check_float "C" (n *. n *. n /. s_k) (fill "C")

let test_matmul_sram_volumes () =
  let nest, mapping = paper_matmul () in
  let counts = ok (Counts.compute nest mapping) in
  let n = 64.0 in
  let r_i = 2.0 and r_j = 2.0 in
  let p_i = 2.0 and p_j = 4.0 in
  let s_k = 8.0 in
  let fill name =
    let tc = List.find (fun t -> t.Counts.tensor = name) counts.Counts.per_tensor in
    List.assoc Mapspace.Level.pe_temporal_level tc.Counts.fills
  in
  (* Eq. 2 with register-level permutation <i,j,k>. *)
  check_float "A" (n ** 3.0 /. (r_j *. p_j)) (fill "A");
  check_float "B" (n ** 3.0 /. (r_i *. p_i)) (fill "B");
  check_float "C" (n ** 3.0 /. s_k) (fill "C")

let test_matmul_footprints () =
  let nest, mapping = paper_matmul () in
  let counts = ok (Counts.compute nest mapping) in
  (* Register tile: R_i R_j + R_i R_k + R_j R_k = 4 + 8 + 8. *)
  check_float "register words" 20.0 (Counts.reg_words_per_pe counts);
  (* SRAM tile: S_i S_j + S_i S_k + S_j S_k = 512 + 128 + 256. *)
  check_float "sram words" 896.0 (Counts.sram_words_used counts);
  Alcotest.(check int) "PEs" 8 counts.Counts.pes_used;
  check_float "macs" (64.0 ** 3.0) counts.Counts.macs

let test_rw_doubling () =
  let nest, mapping = paper_matmul () in
  let counts = ok (Counts.compute nest mapping) in
  (* Only C is read-write: the drain side equals its fill volume. *)
  let c_fill =
    let tc = List.find (fun t -> t.Counts.tensor = "C") counts.Counts.per_tensor in
    List.assoc Mapspace.Level.pe_temporal_level tc.Counts.fills
  in
  check_float "reg_to_sram = C fill" c_fill (Counts.reg_to_sram counts);
  Alcotest.(check bool)
    "sram_to_reg includes all tensors" true
    (Counts.sram_to_reg counts > Counts.reg_to_sram counts)

(* Trip-count-1 loops do not stop hoisting: placing a factor-1 present
   loop innermost must not change the counted volume. *)
let test_unit_loops_ignored () =
  let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 () in
  let base_factors = [ ("i", 2); ("j", 2) ] in
  let with_perm perm =
    Mapping.canonical
      ~reg:([ ("i", 2); ("j", 2); ("k", 8) ], [ "i"; "j"; "k" ])
      ~pe:(base_factors, perm)
      ~spatial:[]
      ~dram:([ ("i", 2); ("j", 2) ], [ "i"; "j"; "k" ])
  in
  (* k has factor 1 at the PE level; its position must not matter. *)
  let counts_outer = ok (Counts.compute nest (with_perm [ "k"; "i"; "j" ])) in
  let counts_inner = ok (Counts.compute nest (with_perm [ "i"; "j"; "k" ])) in
  check_float "volumes equal"
    (Counts.sram_to_reg counts_outer)
    (Counts.sram_to_reg counts_inner)

(* Conv halo: the In tensor's fills must use exact halo extents. *)
let test_conv_halo_exact () =
  let conv = Workload.Conv.make ~name:"t" ~k:2 ~c:2 ~hw:8 ~rs:3 () in
  let nest = Workload.Conv.to_nest conv in
  let dims = Nest.dim_names nest in
  let mapping =
    Mapping.canonical
      ~reg:([ ("r", 3); ("s", 3); ("h", 2); ("w", 2) ], dims)
      ~pe:([ ("k", 2); ("c", 2); ("h", 2) ], [ "k"; "c"; "h"; "n"; "r"; "s"; "w" ])
      ~spatial:[ ("w", 2) ]
      ~dram:([ ("h", 2); ("w", 2) ], dims)
  in
  let counts = ok (Counts.compute nest mapping) in
  let inp = List.find (fun t -> t.Counts.tensor = "In") counts.Counts.per_tensor in
  (* Register tile of In: 1 * 1 * (2 + 3 - 1) * (2 + 3 - 1) = 16 words. *)
  check_float "In register tile" 16.0 (List.assoc 1 inp.Counts.footprints);
  (* PE-level fills: the innermost present loop of the PE permutation is h
     (factor 2), so one union copy is (4+3-1) * (2+3-1) = 24 words; the
     outer loops c and k multiply (x4); spatial w is present (x2); DRAM
     h and w multiply (x4): 24 * 4 * 2 * 4 = 768. *)
  check_float "In fills" 768.0 (List.assoc 1 inp.Counts.fills)

(* --- cross-validation against the reference simulator --- *)

let small_nests =
  [
    Workload.Matmul.nest ~name:"mm8" ~ni:8 ~nj:4 ~nk:8 ();
    Workload.Matmul.nest ~name:"mm12" ~ni:12 ~nj:6 ~nk:4 ();
    Workload.Conv.to_nest (Workload.Conv.make ~name:"conv-s1" ~k:4 ~c:2 ~hw:6 ~rs:3 ());
    Workload.Conv.to_nest
      (Workload.Conv.make ~name:"conv-s2" ~k:2 ~c:3 ~hw:8 ~rs:3 ~stride:2 ());
    Workload.Conv.to_nest
      (Workload.Conv.make ~name:"conv-1x1" ~k:4 ~c:4 ~hw:4 ~rs:1 ~stride:1 ());
  ]

let prop_matches_refsim =
  let gen =
    QCheck2.Gen.(pair (int_range 0 (List.length small_nests - 1)) (int_range 0 5000))
  in
  QCheck2.Test.make ~name:"Counts.compute = Refsim.fills on random mappings" ~count:150
    gen
    (fun (nest_idx, seed) ->
      let nest = List.nth small_nests nest_idx in
      let rng = Random.State.make [| seed |] in
      let mapping = Mapper.Search.random_mapping rng nest in
      let counts = Result.get_ok (Counts.compute nest mapping) in
      let reports = Result.get_ok (Refsim.Simulate.fills nest mapping) in
      List.for_all
        (fun (r : Refsim.Simulate.fill_report) ->
          let tc =
            List.find
              (fun t -> t.Counts.tensor = r.Refsim.Simulate.tensor)
              counts.Counts.per_tensor
          in
          let analytic = List.assoc r.Refsim.Simulate.level tc.Counts.fills in
          approx ~eps:1e-9 analytic r.Refsim.Simulate.words)
        reports)

(* Deeper hierarchies: the counting rules are level-generic, so a 5-level
   mapping (two temporal levels above the spatial one, as in the paper's
   Fig. 3(e)) must also agree with the reference simulator. *)
let prop_five_levels_match_refsim =
  let gen = QCheck2.Gen.int_range 0 5000 in
  QCheck2.Test.make ~name:"5-level Counts = Refsim" ~count:100 gen (fun seed ->
      let nest = Workload.Matmul.nest ~ni:16 ~nj:8 ~nk:16 () in
      let rng = Random.State.make [| seed |] in
      let dims = Nest.dim_names nest in
      let shuffle xs =
        List.map snd
          (List.sort compare (List.map (fun x -> (Random.State.bits rng, x)) xs))
      in
      let chains =
        List.map
          (fun d ->
            ( d,
              Mapspace.Divisors.random_factorization rng (Nest.extent nest d) ~parts:5 ))
          dims
      in
      let factors_at i = List.map (fun (d, chain) -> (d, List.nth chain i)) chains in
      let level kind i perm =
        { Mapping.kind; factors = factors_at i; perm }
      in
      let mapping =
        Mapping.make
          [
            level Mapspace.Level.Temporal 0 (shuffle dims);
            level Mapspace.Level.Temporal 1 (shuffle dims);
            level Mapspace.Level.Spatial 2 [];
            level Mapspace.Level.Temporal 3 (shuffle dims);
            level Mapspace.Level.Temporal 4 (shuffle dims);
          ]
      in
      let counts = Result.get_ok (Counts.compute nest mapping) in
      let reports = Result.get_ok (Refsim.Simulate.fills nest mapping) in
      List.for_all
        (fun (r : Refsim.Simulate.fill_report) ->
          let tc =
            List.find
              (fun t -> t.Counts.tensor = r.Refsim.Simulate.tensor)
              counts.Counts.per_tensor
          in
          approx ~eps:1e-9
            (List.assoc r.Refsim.Simulate.level tc.Counts.fills)
            r.Refsim.Simulate.words)
        reports)

(* --- energy / delay accounting --- *)

let tech = Tech.table3

let test_energy_formula () =
  let nest, mapping = paper_matmul () in
  let arch = Arch.make ~name:"tiny" ~pes:16 ~registers:32 ~sram_words:1024 in
  let m = ok (Evaluate.evaluate tech arch nest mapping) in
  let counts = m.Evaluate.counts in
  let eps_r = Arch.register_energy tech arch in
  let eps_s = Arch.sram_energy tech arch in
  let s2r = Counts.sram_to_reg counts and r2s = Counts.reg_to_sram counts in
  let d2s = Counts.dram_to_sram counts and s2d = Counts.sram_to_dram counts in
  let expected =
    (((4.0 *. eps_r) +. tech.Tech.energy_mac) *. counts.Counts.macs)
    +. (eps_r *. (s2r +. r2s))
    +. (eps_s *. (s2r +. r2s +. d2s +. s2d))
    +. (tech.Tech.energy_dram *. (d2s +. s2d))
  in
  check_float "energy" expected m.Evaluate.energy_pj;
  check_float "energy/mac" (expected /. counts.Counts.macs) m.Evaluate.energy_per_mac;
  (* Delay: max of the three component delays; IPC bounded by PEs used. *)
  check_float "cycles"
    (Float.max m.Evaluate.compute_cycles
       (Float.max m.Evaluate.sram_cycles m.Evaluate.dram_cycles))
    m.Evaluate.cycles;
  Alcotest.(check bool)
    "ipc <= PEs" true
    (m.Evaluate.ipc <= float_of_int counts.Counts.pes_used +. 1e-9)

let test_capacity_rejection () =
  let nest, mapping = paper_matmul () in
  (* Register tile needs 20 words; 16 must be rejected. *)
  let tiny_regs = Arch.make ~name:"r16" ~pes:16 ~registers:16 ~sram_words:4096 in
  (match Evaluate.evaluate tech tiny_regs nest mapping with
  | Error msg -> Alcotest.(check bool) "has message" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected register capacity rejection");
  (* SRAM tile needs 896 words. *)
  let tiny_sram = Arch.make ~name:"s512" ~pes:16 ~registers:32 ~sram_words:512 in
  (match Evaluate.evaluate tech tiny_sram nest mapping with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected SRAM capacity rejection");
  (* Mapping uses 8 PEs. *)
  let tiny_pes = Arch.make ~name:"p4" ~pes:4 ~registers:32 ~sram_words:4096 in
  match Evaluate.evaluate tech tiny_pes nest mapping with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected PE-count rejection"

(* A nest whose extent product overflows to infinity used to reach the
   unguarded [energy / macs] and [macs / cycles] divisions and return
   NaN/inf metrics as [Ok]; the evaluator must refuse it instead. *)
let test_degenerate_nest_rejected () =
  let dims =
    List.init 18 (fun i ->
        { Nest.dim_name = Printf.sprintf "d%d" i; extent = 1 lsl 60 })
  in
  let tensors =
    [
      {
        Nest.tensor_name = "T";
        projections = [ [ { Nest.stride = 1; iter = "d0" } ] ];
        read_write = false;
      };
    ]
  in
  let nest = Nest.make ~name:"overflow" ~dims ~tensors in
  Alcotest.(check bool) "ops overflow to inf" false (Float.is_finite (Nest.ops nest));
  let ones = List.map (fun d -> (d.Nest.dim_name, 1)) dims in
  let full = List.map (fun d -> (d.Nest.dim_name, d.Nest.extent)) dims in
  let perm = Nest.dim_names nest in
  (* All the iteration lives at the DRAM level, so every on-chip tile is
     one word and the capacity checks pass. *)
  let mapping =
    Mapping.canonical ~reg:(ones, perm) ~pe:(ones, perm) ~spatial:[]
      ~dram:(full, perm)
  in
  match Evaluate.evaluate tech Arch.eyeriss nest mapping with
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "message names degeneracy: %s" msg)
      true
      (String.length msg > 0)
  | Ok m ->
    Alcotest.failf "degenerate nest accepted: energy/mac %g, ipc %g"
      m.Evaluate.energy_per_mac m.Evaluate.ipc

let test_eyeriss_constants () =
  (* Eyeriss area under the Table III model, used as the co-design budget. *)
  let area = Arch.eyeriss_area tech in
  Alcotest.(check bool)
    (Printf.sprintf "area %.0f in [2.3e6, 2.4e6]" area)
    true
    (area > 2.3e6 && area < 2.4e6);
  check_float ~eps:1e-6 "register energy" (0.00906719 *. 512.0)
    (Arch.register_energy tech Arch.eyeriss);
  check_float ~eps:1e-6 "sram energy" (0.01788 *. 256.0)
    (Arch.sram_energy tech Arch.eyeriss)

let () =
  Alcotest.run "accmodel"
    [
      ( "matmul closed forms",
        [
          Alcotest.test_case "DRAM volumes (Eq. 1)" `Quick test_matmul_dram_volumes;
          Alcotest.test_case "SRAM volumes (Eq. 2)" `Quick test_matmul_sram_volumes;
          Alcotest.test_case "footprints" `Quick test_matmul_footprints;
          Alcotest.test_case "read-write doubling" `Quick test_rw_doubling;
          Alcotest.test_case "unit loops ignored" `Quick test_unit_loops_ignored;
          Alcotest.test_case "conv halo exact" `Quick test_conv_halo_exact;
        ] );
      ( "refsim cross-check",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_refsim; prop_five_levels_match_refsim ] );
      ( "energy/delay",
        [
          Alcotest.test_case "energy formula" `Quick test_energy_formula;
          Alcotest.test_case "capacity rejection" `Quick test_capacity_rejection;
          Alcotest.test_case "degenerate nest rejected" `Quick
            test_degenerate_nest_rejected;
          Alcotest.test_case "eyeriss constants" `Quick test_eyeriss_constants;
        ] );
    ]
