(** Concrete mappings: integer tiling factors and loop permutations for
    every level of the hierarchy.

    A mapping assigns to each level an association [dim -> factor]
    (missing dims default to 1) and, for temporal levels, a permutation of
    the nest iterators written {e outer to inner}, following the paper's
    convention for tile-iterator permutations. *)

type level = {
  kind : Level.kind;
  factors : (string * int) list;
  perm : string list;  (** outer to inner; ignored for spatial levels *)
}

type t

val make : level list -> t
(** Levels innermost first.  Raises [Invalid_argument] on non-positive
    factors or duplicate dims within a level. *)

val levels : t -> level list

val num_levels : t -> int

val level : t -> int -> level

val factor : t -> level:int -> string -> int
(** Defaults to 1 for dims not listed at the level. *)

val trips : t -> string -> int list
(** Factors of one dim across levels, innermost first. *)

val extent_through : t -> level:int -> string -> int
(** Product of the dim's factors at levels [0..level] — the tile extent of
    the dim at that level. *)

val total_extent : t -> string -> int

val spatial_size : t -> int
(** Product of all factors at spatial levels: the number of PEs used. *)

val env : t -> string -> float
(** Evaluation environment mapping {!Level.trip_var} names to factors
    (1.0 for anything unknown), for use with symbolic expressions. *)

val validate : Workload.Nest.t -> t -> (unit, string) result
(** Checks that the mapping has a level structure matching
    {!Level.canonical} length or any length, that every factored dim is
    declared in the nest, that per-dim factor products equal extents, and
    that every temporal level's permutation is a permutation of the nest's
    dims. *)

val canonical :
  reg:(string * int) list * string list ->
  pe:(string * int) list * string list ->
  spatial:(string * int) list ->
  dram:(string * int) list * string list ->
  t
(** Convenience constructor for the 4-level canonical hierarchy; each
    temporal argument is [(factors, perm)]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
