(** Sound interval arithmetic over the positive reals, specialized to
    monomial/posynomial evaluation for the presolve pass.

    An interval [{lo; hi}] abbreviates the set [{ t | lo <= t <= hi }]
    intersected with the positive axis (GP variables are positive by
    definition; [lo = 0.] means "no lower bound known", [hi = infinity]
    "no upper bound known").  All operations are {e outward}: the result
    interval contains the exact image of the inputs.  Monomials
    [c * prod x^e] are monotone in each variable on the positive axis,
    so endpoint evaluation is exact up to floating-point rounding —
    soundness against rounding is the caller's job (the presolve pass
    keeps decision margins far wider than an ulp; see DESIGN §13).

    The two hazards of naive endpoint arithmetic are handled here:
    [0. *. infinity = nan] (a lower bound of a product with one factor
    0 is 0, an upper bound with one factor infinite is infinite — never
    NaN), and powers of the endpoints ([0. ** -2. = infinity] and
    [infinity ** -2. = 0.] are already the correct monotone limits). *)

type t = {
  lo : float;  (** [>= 0.]; [0.] means no positive lower bound known *)
  hi : float;  (** [>= lo]; [infinity] means no upper bound known *)
}

val full : t
(** The whole positive axis: [{lo = 0.; hi = infinity}]. *)

val make : lo:float -> hi:float -> t
(** Raises [Invalid_argument] unless [0. <= lo <= hi] (NaN rejected). *)

val point : float -> t
(** Degenerate interval [[v, v]]; raises unless [v] is finite positive. *)

val is_full : t -> bool

val mem : ?slack:float -> float -> t -> bool
(** [mem v t] is [lo <= v <= hi], with each comparison relaxed by the
    relative [slack] (default [0.]): [v >= lo *. (1 - slack)] and
    [v <= hi *. (1 + slack)].  Non-finite [v] is never a member of a
    bounded side. *)

val mul_lo : float -> float -> float
(** Product of two lower bounds with [0. *. infinity = 0.] (sound: if
    one factor can be 0 the product can be 0). *)

val mul_hi : float -> float -> float
(** Product of two upper bounds with [0. *. infinity = infinity]
    (sound: an unbounded factor makes the product unbounded). *)

val mul : t -> t -> t

val pow : t -> float -> t
(** Image of [x ** e] over the interval; [x ** e] is monotone on the
    positive axis (increasing for [e > 0], decreasing for [e < 0]), so
    this is endpoint evaluation with the endpoints swapped for negative
    exponents.  [e = 0.] gives the point interval [1]. *)

val inv : t -> t
(** [pow t (-1.)], spelled out. *)

val monomial : (string -> t) -> Symexpr.Monomial.t -> t
(** Interval of [c * prod x^e] under the per-variable boxes [env]. *)

val monomial_without : (string -> t) -> var:string -> Symexpr.Monomial.t -> t
(** Like {!monomial} but with [var]'s factor removed — the coefficient
    of [var ** e] when the monomial is read as a function of [var]. *)

val posynomial : (string -> t) -> Symexpr.Posynomial.t -> t
(** Termwise sum of {!monomial} intervals. *)

val pp : Format.formatter -> t -> unit
