(** Fault isolation for the optimizer sweep.

    The pipeline solves one geometric program per (permutation choice ×
    window placement) across every layer of a network; at that scale one
    pathological instance must not take down the run.  This module
    provides the pieces the drivers thread through the stack:

    - {!guard} runs a pair/layer body and catches any exception into a
      structured {!failure} record (provenance, exception, backtrace,
      elapsed time) instead of letting it propagate through
      {!Exec.Par}'s re-raise contract;
    - {!Inject} is a {e deterministic} fault-injection config — crash /
      stall decisions are pure functions of a seed and the site's
      provenance string, never of wall-clock time or scheduling — so the
      degradation paths are testable and independent of [--jobs].

    Deadlines themselves live in {!Gp.Solver.solve} ([?deadline_ns],
    status [Deadline_exceeded]); the retry/quarantine policy that
    consumes both lives in {!Optimize}. *)

type failure = {
  site : string;  (** which guarded stage failed: ["solve"], ["integerize"], ["layer"] *)
  provenance : string;  (** the instance/layer identity, e.g. {!Formulate.instance.provenance} *)
  exn : string;  (** [Printexc.to_string] of the caught exception, or a synthetic tag *)
  backtrace : string;  (** raw backtrace text; may be empty when recording is off *)
  elapsed_ns : float;
      (** wall-clock time spent in the body before it failed.  Timing
          only — excluded from any determinism comparison. *)
  attempts : int;  (** how many attempts (1 + retries) were made in total *)
}

val describe : failure -> string
(** One-line rendering: site, provenance, exception, attempts. *)

val pp_failure : Format.formatter -> failure -> unit

val pp_summary : Format.formatter -> failure list -> unit
(** Table of failures (site, attempts, elapsed, exception, provenance) —
    the CLI's failure summary. *)

val now_ns : unit -> float
(** Wall-clock nanoseconds, for stamping {!failure.elapsed_ns}. *)

exception Injected_fault of string
(** Raised by {!guard} when the injection config fires a crash at the
    guarded site; carries the site and provenance. *)

module Inject : sig
  (** Seeded, deterministic fault injection.

      A config is a seed plus a list of rules.  Each rule gives a fault
      kind ([crash] raises {!Injected_fault} inside the guarded body,
      [stall] tells the caller to force an already-expired solver
      deadline), a site name, an optional provenance-substring filter,
      and a probability.  Whether a given (kind, site, provenance,
      attempt) fires is decided by hashing exactly those values with the
      seed (FNV-1a) into [0, 1) and comparing against the largest
      matching rule probability — never by wall clock or RNG state, so
      decisions are reproducible, independent of scheduling, and
      (because the attempt number enters the hash) a retry of a crashed
      site re-rolls rather than deterministically re-crashing. *)

  type t

  val none : t
  (** No rules; never fires. *)

  val is_none : t -> bool

  val seed : t -> int

  val parse : string -> (t, string) result
  (** Parse a spec string.  Grammar (comma-separated clauses):

      {v
      SPEC   ::= clause ("," clause)*
      clause ::= "seed=" INT
               | KIND "@" SITE [ "[" FILTER "]" ] "=" PROB
      KIND   ::= "crash" | "stall"
      v}

      [SITE] is a guarded-site name ([solve], [integerize], [layer]);
      [FILTER] restricts the rule to provenances containing it as a
      substring; [PROB] is a float in [0, 1].  Example:
      ["seed=7,crash@solve=0.2,stall@solve[resnet-2]=1"]. *)

  val to_string : t -> string
  (** Canonical spec text; [parse (to_string t)] round-trips. *)

  val decide :
    t -> kind:[ `Crash | `Stall ] -> site:string -> provenance:string -> attempt:int -> bool

  val crash : t -> site:string -> provenance:string -> attempt:int -> bool
  (** [decide ~kind:`Crash]. *)

  val stall : t -> site:string -> provenance:string -> attempt:int -> bool
  (** [decide ~kind:`Stall]. *)
end

val guard :
  ?inject:Inject.t ->
  ?attempt:int ->
  site:string ->
  provenance:string ->
  (unit -> 'a) ->
  ('a, failure) result
(** [guard ~site ~provenance body] runs [body ()] and catches any
    exception (including an {!Injected_fault} fired by [inject] for
    this site/provenance/attempt) into a {!failure} record carrying the
    provenance, the exception text, the backtrace and the elapsed time.
    [attempt] (default 0) is the retry ordinal; the recorded
    [failure.attempts] is [attempt + 1]. *)

val deadline_failure :
  ?attempts:int -> site:string -> provenance:string -> elapsed_ns:float -> unit -> failure
(** Synthetic failure for a solve that exhausted its deadline (and its
    retries): [exn] is ["Deadline_exceeded"]. *)

module Admission : sig
  (** Bounded-concurrency admission control: a counting semaphore that
      {e rejects} instead of queueing.  The serve daemon (DESIGN §14)
      admits each request through one of these — a request arriving
      while [limit] others are in flight is turned away immediately
      with a structured "rejected" response, keeping tail latency
      bounded under overload instead of letting a queue grow without
      bound.  Thread- and domain-safe. *)

  type t

  val create : int -> t
  (** [create limit] admits at most [limit] concurrent holders.
      [limit = 0] rejects everything; raises [Invalid_argument] on a
      negative limit. *)

  val limit : t -> int

  val try_admit : t -> bool
  (** Admit if a slot is free (never blocks).  A [true] return must be
      paired with exactly one {!release}. *)

  val release : t -> unit
  (** Raises [Invalid_argument] when nothing is admitted — an unbalanced
      release is a caller bug, not a condition to paper over. *)

  val inflight : t -> int

  val with_admission : t -> rejected:(unit -> 'a) -> (unit -> 'a) -> 'a
  (** [with_admission t ~rejected body] runs [body ()] inside an
      admitted slot, releasing it even on exceptions; runs [rejected ()]
      instead when the limit is reached. *)
end
