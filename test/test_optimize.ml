(* End-to-end tests of the Thistle driver: dataflow optimization for fixed
   architectures, co-design under an area budget, and the paper's expected
   dominance relations between the two. *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module S = Mapper.Search
module Arch = Archspec.Arch
module Mapping = Mapspace.Mapping
module Evaluate = Accmodel.Evaluate

let tech = Archspec.Technology.table3

let small_conv () =
  Workload.Conv.to_nest (Workload.Conv.make ~name:"small" ~k:16 ~c:16 ~hw:16 ~rs:3 ())

let arch = Arch.make ~name:"mid" ~pes:64 ~registers:64 ~sram_words:8192

let get = function
  | Ok (r : O.report) -> r
  | Error msg -> Alcotest.failf "optimize failed: %s" msg

(* A reduced exploration keeps the end-to-end suite fast; the full
   settings are exercised by the reproduction harness. *)
let fast = { O.default_config with O.max_choices = 10; top_choices = 2 }

let test_dataflow_valid () =
  let nest = small_conv () in
  let r = get (O.dataflow ~config:fast tech arch F.Energy nest) in
  let o = r.O.outcome in
  Alcotest.(check (result unit string))
    "mapping valid" (Ok ())
    (Mapping.validate nest o.I.mapping);
  Alcotest.(check bool) "solved several" true (r.O.choices_solved > 1);
  (* The continuous relaxation over-approximates halo volumes and the
     integer point rounds tile sizes, so the two can differ in either
     direction — but only modestly. *)
  let ratio = r.O.best_continuous /. o.I.metrics.Evaluate.energy_pj in
  Alcotest.(check bool)
    (Printf.sprintf "continuous/integer ratio %.3f in [0.5, 2]" ratio)
    true
    (ratio > 0.5 && ratio < 2.0)

(* Thistle's optimized dataflow should not lose to a seeded random search
   with a healthy trial budget (the paper's Fig. 4 relationship). *)
let test_beats_or_matches_mapper () =
  let nest = small_conv () in
  let r = get (O.dataflow ~config:fast tech arch F.Energy nest) in
  let thistle_energy = r.O.outcome.I.metrics.Evaluate.energy_pj in
  let config = { S.max_trials = 5000; victory_condition = 5000; seed = 1 } in
  let mapper = S.search ~config tech arch S.Min_energy nest in
  match mapper.S.best with
  | None -> Alcotest.fail "mapper found nothing"
  | Some (_, e) ->
    Alcotest.(check bool)
      (Printf.sprintf "thistle %.3g <= 1.05 * mapper %.3g" thistle_energy
         e.Evaluate.energy_pj)
      true
      (thistle_energy <= e.Evaluate.energy_pj *. 1.05)

(* Co-design at the area of the fixed architecture should match or beat
   the fixed architecture's optimized dataflow (Fig. 5 relationship). *)
let test_codesign_beats_fixed () =
  let nest = small_conv () in
  let fixed = get (O.dataflow ~config:fast tech arch F.Energy nest) in
  let budget = Arch.area tech arch in
  let codesign = get (O.codesign ~config:fast tech ~area_budget:budget F.Energy nest) in
  let e_fixed = fixed.O.outcome.I.metrics.Evaluate.energy_pj in
  let e_codesign = codesign.O.outcome.I.metrics.Evaluate.energy_pj in
  Alcotest.(check bool)
    (Printf.sprintf "codesign %.3g <= 1.05 * fixed %.3g" e_codesign e_fixed)
    true
    (e_codesign <= e_fixed *. 1.05);
  Alcotest.(check bool)
    "within budget" true
    (Arch.area tech codesign.O.outcome.I.arch <= budget)

let test_delay_objective () =
  let nest = small_conv () in
  let r = get (O.dataflow ~config:fast tech arch F.Delay nest) in
  let m = r.O.outcome.I.metrics in
  Alcotest.(check bool)
    "ipc <= P" true
    (m.Evaluate.ipc <= float_of_int arch.Arch.pe_count +. 1e-9);
  Alcotest.(check bool)
    "cycles >= macs / P" true
    (m.Evaluate.cycles
    >= (Workload.Nest.ops nest /. float_of_int arch.Arch.pe_count) -. 1e-9);
  (* Delay optimization should saturate a good fraction of the array on
     this comfortably parallel layer. *)
  Alcotest.(check bool)
    (Printf.sprintf "ipc %.1f >= 16" m.Evaluate.ipc)
    true (m.Evaluate.ipc >= 16.0)

let test_edp_objective () =
  let nest = small_conv () in
  let edp (m : Evaluate.t) = m.Evaluate.energy_pj *. m.Evaluate.cycles in
  let r_edp = get (O.run ~config:fast tech (F.Fixed arch) F.Edp nest) in
  let r_energy = get (O.run ~config:fast tech (F.Fixed arch) F.Energy nest) in
  let r_delay = get (O.run ~config:fast tech (F.Fixed arch) F.Delay nest) in
  let edp_of (r : O.report) = edp r.O.outcome.I.metrics in
  (* The EDP-optimal point should beat (or match) the products achieved
     by the single-criterion optimizations, modulo integerization. *)
  Alcotest.(check bool)
    (Printf.sprintf "edp %.3g <= energy-run %.3g" (edp_of r_edp) (edp_of r_energy))
    true
    (edp_of r_edp <= edp_of r_energy *. 1.10);
  Alcotest.(check bool)
    (Printf.sprintf "edp %.3g <= delay-run %.3g" (edp_of r_edp) (edp_of r_delay))
    true
    (edp_of r_edp <= edp_of r_delay *. 1.10)

let test_matmul_workload () =
  (* The optimizer is not conv-specific: the paper's Fig. 1 example. *)
  let nest = Workload.Matmul.nest ~ni:64 ~nj:64 ~nk:64 () in
  let r = get (O.dataflow ~config:fast tech arch F.Energy nest) in
  Alcotest.(check (result unit string))
    "mapping valid" (Ok ())
    (Mapping.validate nest r.O.outcome.I.mapping)

let test_infeasible_arch () =
  let nest = small_conv () in
  let hopeless = Arch.make ~name:"hopeless" ~pes:1 ~registers:2 ~sram_words:16 in
  match O.dataflow tech hopeless F.Energy nest with
  | Error _ -> ()
  | Ok r ->
    Alcotest.failf "expected failure, got %g pJ"
      r.O.outcome.I.metrics.Evaluate.energy_pj

(* The parallel sweep must be a pure scheduling change: whatever [jobs]
   is, the report (mapping, metrics, counters) is bit-identical to the
   sequential path.  Checked on two real zoo layers. *)
let test_jobs_determinism () =
  List.iter
    (fun layer_name ->
      let nest = Workload.Conv.to_nest (Workload.Zoo.find layer_name) in
      let run jobs =
        let config = { O.default_config with O.max_choices = 8; top_choices = 2; jobs } in
        get (O.dataflow ~config tech arch F.Energy nest)
      in
      Alcotest.(check bool)
        (layer_name ^ ": jobs=4 report = jobs=1 report")
        true
        (run 4 = run 1))
    [ "resnet-2"; "yolo-2" ]

(* The dedup key must identify programs by their mathematics alone:
   renaming constraints keeps the key, perturbing any coefficient or
   exponent changes it. *)
let test_problem_key () =
  let module M = Symexpr.Monomial in
  let module P = Symexpr.Posynomial in
  let problem ?(coeff = 2.0) ?(cname = "cap") () =
    Gp.Problem.make
      ~objective:
        (P.of_monomials [ M.make 1.0 [ ("x", 1.0) ]; M.make coeff [ ("y", 1.0) ] ])
      ~ineqs:[ (cname, P.of_monomial (M.make 0.5 [ ("x", -1.0); ("y", -1.0) ])) ]
      ~eqs:[ ("tie", M.make 0.25 [ ("x", 1.0); ("y", -1.0) ]) ]
      ()
  in
  let base = O.problem_key (problem ()) in
  Alcotest.(check string) "renamed constraint keeps key" base
    (O.problem_key (problem ~cname:"budget" ()));
  Alcotest.(check bool) "perturbed coefficient changes key" true
    (base <> O.problem_key (problem ~coeff:2.0000000001 ()))

(* Regression: a NaN-scored candidate must never displace a finite one.
   The old best-outcome fold asked "is the incumbent strictly better than
   the challenger?" — every comparison against NaN answers false, so a
   NaN challenger *replaced* a finite incumbent; and raw [Float.compare]
   orders NaN before every finite float, so a NaN objective topped the
   ascending continuous shortlist. *)
let test_nan_ordering () =
  let check = Alcotest.(check int) in
  check "finite ascending" (-1) (O.compare_scores 1.0 2.0);
  check "finite descending" 1 (O.compare_scores 2.0 1.0);
  check "finite ties" 0 (O.compare_scores 1.0 1.0);
  check "nan after finite" 1 (O.compare_scores Float.nan 1.0);
  check "finite before nan" (-1) (O.compare_scores 1.0 Float.nan);
  check "inf after finite" 1 (O.compare_scores Float.infinity 1.0);
  check "neg-inf after finite" 1 (O.compare_scores Float.neg_infinity 1.0);
  check "non-finite ties" 0 (O.compare_scores Float.nan Float.infinity);
  (* Sorting a shortlist with a NaN entry keeps the finite minimum on
     top — the exact ranking the solve-stage shortlist performs. *)
  let sorted = List.sort O.compare_scores [ 3.0; Float.nan; 1.0; 2.0 ] in
  Alcotest.(check (float 0.0)) "nan sorts last" 1.0 (List.hd sorted)

let test_select_best_nan () =
  let best = O.select_best ~score:Fun.id in
  let check_some name exp got =
    match got with
    | Some v when v = exp || (Float.is_nan exp && Float.is_nan v) -> ()
    | Some v -> Alcotest.failf "%s: expected %h, got %h" name exp v
    | None -> Alcotest.failf "%s: got None" name
  in
  Alcotest.(check bool) "empty list" true (best [] = None);
  check_some "nan challenger loses" 1.0 (best [ 1.0; Float.nan ]);
  check_some "nan incumbent loses" 1.0 (best [ Float.nan; 1.0 ]);
  check_some "finite minimum wins" 1.0 (best [ 3.0; Float.nan; 1.0; 2.0 ]);
  check_some "all-nan still answers" Float.nan (best [ Float.nan; Float.nan ]);
  check_some "inf loses to finite" 1.0 (best [ Float.infinity; 1.0 ])

let test_config_knobs () =
  let nest = small_conv () in
  let config = { O.default_config with O.max_choices = 2; top_choices = 1 } in
  let r = get (O.dataflow ~config tech arch F.Energy nest) in
  Alcotest.(check bool) "choices capped" true (r.O.choices_enumerated <= 2)

let () =
  Alcotest.run "optimize"
    [
      ( "dataflow",
        [
          Alcotest.test_case "valid outcome" `Quick test_dataflow_valid;
          Alcotest.test_case "matches mapper" `Quick test_beats_or_matches_mapper;
          Alcotest.test_case "matmul workload" `Quick test_matmul_workload;
          Alcotest.test_case "infeasible arch" `Quick test_infeasible_arch;
          Alcotest.test_case "config knobs" `Quick test_config_knobs;
          Alcotest.test_case "problem key" `Quick test_problem_key;
          Alcotest.test_case "nan ordering" `Quick test_nan_ordering;
          Alcotest.test_case "select best vs nan" `Quick test_select_best_nan;
          Alcotest.test_case "jobs determinism" `Quick test_jobs_determinism;
        ] );
      ( "codesign",
        [
          Alcotest.test_case "beats fixed at equal area" `Quick test_codesign_beats_fixed;
        ] );
      ( "delay",
        [
          Alcotest.test_case "delay objective" `Quick test_delay_objective;
          Alcotest.test_case "edp objective" `Quick test_edp_objective;
        ] );
    ]
