module Vec = Linalg.Vec
module Mat = Linalg.Mat
module M = Symexpr.Monomial
module P = Symexpr.Posynomial

(* One compiled convex function

     F(y) = log sum_k exp(row_k . y + b_k)  +  lin . y  +  lin_const

   (the log-sum-exp part absent when [nterms = 0]).  The exponent rows
   are stored as one contiguous sparsity index: term [k]'s nonzero
   entries are [idx]/[coef] positions [starts.(k) .. starts.(k+1) - 1],
   ascending by variable index.  Most monomial rows of a Thistle
   formulation touch <= 4 of the ~12 problem variables, so the tight
   loops below do a small fraction of the work of the dense
   [Smooth.log_sum_exp] walk while executing the {e same} float
   operations in the {e same} order — see the bit-identity note in the
   interface. *)
type t = {
  n : int;
  nterms : int;
  starts : int array;
  idx : int array;
  coef : float array;
  b : float array;
  lin_idx : int array;
  lin_coef : float array;
  lin_const : float;
  support : int array;
  es : float array;  (* per-term scratch: exponents, then softmax weights *)
}

let dim t = t.n

let support t = t.support

let num_terms t = t.nterms

let merge_support lists =
  let tbl = Hashtbl.create 16 in
  List.iter (fun l -> Array.iter (fun i -> Hashtbl.replace tbl i ()) l) lists;
  let s = Array.of_seq (Seq.map fst (Hashtbl.to_seq tbl)) in
  Array.sort compare s;
  s

let of_sparse_terms n sparse =
  if sparse = [] then invalid_arg "Gp.Compiled.of_sparse_terms: empty term list";
  let nterms = List.length sparse in
  let starts = Array.make (nterms + 1) 0 in
  let b = Array.make nterms 0.0 in
  let total =
    List.fold_left (fun acc (entries, _) -> acc + List.length entries) 0 sparse
  in
  let idx = Array.make total 0 in
  let coef = Array.make total 0.0 in
  List.iteri
    (fun k (entries, bk) ->
      b.(k) <- bk;
      let pos = ref starts.(k) in
      List.iter
        (fun (i, c) ->
          if i < 0 || i >= n then
            invalid_arg "Gp.Compiled.of_sparse_terms: variable index out of range";
          idx.(!pos) <- i;
          coef.(!pos) <- c;
          incr pos)
        entries;
      starts.(k + 1) <- !pos)
    sparse;
  (* Entries must be ascending within each term so the sparse dot product
     accumulates in the same order as the dense walk. *)
  for k = 0 to nterms - 1 do
    for p = starts.(k) + 1 to starts.(k + 1) - 1 do
      if idx.(p - 1) >= idx.(p) then
        invalid_arg "Gp.Compiled.of_sparse_terms: indices not strictly ascending"
    done
  done;
  let row k =
    Array.init (starts.(k + 1) - starts.(k)) (fun p -> idx.(starts.(k) + p))
  in
  {
    n;
    nterms;
    starts;
    idx;
    coef;
    b;
    lin_idx = [||];
    lin_coef = [||];
    lin_const = 0.0;
    support = merge_support (List.init nterms row);
    es = Array.make nterms 0.0;
  }

let of_terms n terms =
  if terms = [] then invalid_arg "Gp.Compiled.of_terms: empty term list";
  List.iter
    (fun (a, _) ->
      if Vec.dim a <> n then invalid_arg "Gp.Compiled.of_terms: dimension mismatch")
    terms;
  let sparse =
    List.map
      (fun (a, bk) ->
        let entries = ref [] in
        for i = Vec.dim a - 1 downto 0 do
          if a.(i) <> 0.0 then entries := (i, a.(i)) :: !entries
        done;
        (!entries, bk))
      terms
  in
  of_sparse_terms n sparse

(* Lowering straight from a posynomial, given the problem's variable
   index.  Monomial exponents are sorted by variable name, and the index
   maps names in that same (sorted) order, so the entries come out
   ascending by index without an explicit sort. *)
let of_posynomial n index p =
  let term m =
    let entries =
      List.sort
        (fun (i, _) (j, _) -> compare i j)
        (List.map (fun (x, e) -> (Hashtbl.find index x, e)) (M.exponents m))
    in
    (entries, log (M.coeff m))
  in
  of_sparse_terms n (List.map term (P.terms p))

let affine n entries const =
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= n then invalid_arg "Gp.Compiled.affine: index out of range")
    entries;
  let entries = List.sort (fun (i, _) (j, _) -> compare i j) entries in
  let entries = List.filter (fun (_, c) -> c <> 0.0) entries in
  {
    n;
    nterms = 0;
    starts = [| 0 |];
    idx = [||];
    coef = [||];
    b = [||];
    lin_idx = Array.of_list (List.map fst entries);
    lin_coef = Array.of_list (List.map snd entries);
    lin_const = const;
    support = Array.of_list (List.map fst entries);
    es = [||];
  }

let extend t extra =
  if extra < 0 then invalid_arg "Gp.Compiled.extend: negative extension";
  { t with n = t.n + extra; es = Array.make t.nterms 0.0 }

let add_linear t i c =
  if i < 0 || i >= t.n then invalid_arg "Gp.Compiled.add_linear: index out of range";
  if Array.exists (( = ) i) t.lin_idx then
    invalid_arg "Gp.Compiled.add_linear: index already has a linear term";
  {
    t with
    lin_idx = Array.append t.lin_idx [| i |];
    lin_coef = Array.append t.lin_coef [| c |];
    support = merge_support [ t.support; [| i |] ];
    es = Array.make t.nterms 0.0;
  }

(* Sparse row dot: identical accumulation order (ascending index) and
   identical bits to the dense [Vec.dot] for finite [y] — the skipped
   entries contribute exactly [+0.0] or [-0.0], which never changes a
   partial sum that started at [+0.0]. *)
let row_dot t k y =
  let acc = ref 0.0 in
  for p = t.starts.(k) to t.starts.(k + 1) - 1 do
    acc := !acc +. (t.coef.(p) *. y.(t.idx.(p)))
  done;
  !acc

let linear_part t y =
  let acc = ref 0.0 in
  for p = 0 to Array.length t.lin_idx - 1 do
    acc := !acc +. (t.lin_coef.(p) *. y.(t.lin_idx.(p)))
  done;
  !acc

let lse_value t y =
  let es = t.es in
  for k = 0 to t.nterms - 1 do
    es.(k) <- row_dot t k y +. t.b.(k)
  done;
  let m = ref neg_infinity in
  for k = 0 to t.nterms - 1 do
    m := Float.max !m es.(k)
  done;
  let z = ref 0.0 in
  for k = 0 to t.nterms - 1 do
    z := !z +. exp (es.(k) -. !m)
  done;
  !m +. log !z

let value t y =
  let v =
    if t.nterms = 0 then linear_part t y
    else if Array.length t.lin_idx = 0 then lse_value t y
    else lse_value t y +. linear_part t y
  in
  if t.lin_const <> 0.0 then v +. t.lin_const else v

let eval_into t y ~grad ~hess =
  (* Clear only the support entries: the caller's buffers are reused
     across evaluations of different functions and may hold stale data,
     but everything outside the support is left untouched by contract. *)
  let support = t.support in
  let ns = Array.length support in
  for a = 0 to ns - 1 do
    grad.(support.(a)) <- 0.0
  done;
  for a = 0 to ns - 1 do
    for bj = 0 to ns - 1 do
      Mat.set hess support.(a) support.(bj) 0.0
    done
  done;
  let v_lse =
    if t.nterms = 0 then 0.0
    else begin
      let es = t.es in
      for k = 0 to t.nterms - 1 do
        es.(k) <- row_dot t k y +. t.b.(k)
      done;
      let m = ref neg_infinity in
      for k = 0 to t.nterms - 1 do
        m := Float.max !m es.(k)
      done;
      let m = !m in
      (* Reuse [es] for the softmax weights, then probabilities. *)
      for k = 0 to t.nterms - 1 do
        es.(k) <- exp (es.(k) -. m)
      done;
      let z = ref 0.0 in
      for k = 0 to t.nterms - 1 do
        z := !z +. es.(k)
      done;
      let z = !z in
      let v = m +. log z in
      for k = 0 to t.nterms - 1 do
        es.(k) <- es.(k) /. z
      done;
      (* grad = sum_k p_k row_k, accumulated term-major like the list
         walk. *)
      for k = 0 to t.nterms - 1 do
        let p = es.(k) in
        for q = t.starts.(k) to t.starts.(k + 1) - 1 do
          let i = t.idx.(q) in
          grad.(i) <- grad.(i) +. (p *. t.coef.(q))
        done
      done;
      (* hess = sum_k p_k row_k row_k^T - grad grad^T.  The rank-one
         subtraction must use the pure log-sum-exp gradient, before any
         linear adjustment below. *)
      for k = 0 to t.nterms - 1 do
        let p = es.(k) in
        for q = t.starts.(k) to t.starts.(k + 1) - 1 do
          let i = t.idx.(q) in
          let pai = p *. t.coef.(q) in
          if pai <> 0.0 then
            for r = t.starts.(k) to t.starts.(k + 1) - 1 do
              Mat.add_to hess i t.idx.(r) (pai *. t.coef.(r))
            done
        done
      done;
      for a = 0 to ns - 1 do
        let i = support.(a) in
        let gi = grad.(i) in
        for bj = 0 to ns - 1 do
          let j = support.(bj) in
          Mat.add_to hess i j (-.(gi *. grad.(j)))
        done
      done;
      v
    end
  in
  for p = 0 to Array.length t.lin_idx - 1 do
    let i = t.lin_idx.(p) in
    grad.(i) <- grad.(i) +. t.lin_coef.(p)
  done;
  let v =
    if t.nterms = 0 then linear_part t y
    else if Array.length t.lin_idx = 0 then v_lse
    else v_lse +. linear_part t y
  in
  if t.lin_const <> 0.0 then v +. t.lin_const else v
