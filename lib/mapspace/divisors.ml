let divisors n =
  if n < 1 then invalid_arg "Divisors.divisors: argument must be positive";
  let rec collect d small large =
    if d * d > n then List.rev_append small large
    else if n mod d = 0 then begin
      let q = n / d in
      if q = d then collect (d + 1) (d :: small) large
      else collect (d + 1) (d :: small) (q :: large)
    end
    else collect (d + 1) small large
  in
  collect 1 [] []

let is_divisor d ~of_ = d >= 1 && of_ mod d = 0

let take k xs =
  let rec go k = function
    | x :: rest when k > 0 -> x :: go (k - 1) rest
    | _ -> []
  in
  go k xs

let closest n ~target ~count =
  let target = Float.max target 1.0 in
  let by_log_distance a b =
    let dist d = Float.abs (log (float_of_int d) -. log target) in
    Float.compare (dist a) (dist b)
  in
  divisors n |> List.stable_sort by_log_distance |> take count
  |> List.sort_uniq Int.compare

let closest_powers_of_two ~target ~count =
  let target = Float.max target 1.0 in
  let exact = log target /. log 2.0 in
  let base = int_of_float (Float.round exact) in
  let candidates =
    List.init (count + 2) (fun i ->
        let off = ((i + 1) / 2) * if i mod 2 = 0 then 1 else -1 in
        Int.max 0 (base + off))
  in
  let pow2 e = 1 lsl e in
  List.map pow2 candidates |> List.sort_uniq Int.compare
  |> List.stable_sort (fun a b ->
         let dist d = Float.abs (log (float_of_int d) -. log target) in
         Float.compare (dist a) (dist b))
  |> take count
  |> List.sort_uniq Int.compare

let rec factorizations n ~parts =
  if parts < 1 then invalid_arg "Divisors.factorizations: parts must be positive";
  if parts = 1 then [ [ n ] ]
  else
    List.concat_map
      (fun d -> List.map (fun rest -> d :: rest) (factorizations (n / d) ~parts:(parts - 1)))
      (divisors n)

let count_factorizations n ~parts =
  let table = Hashtbl.create 64 in
  let rec count n parts =
    if parts = 1 then 1
    else
      match Hashtbl.find_opt table (n, parts) with
      | Some c -> c
      | None ->
        let c =
          List.fold_left (fun acc d -> acc + count (n / d) (parts - 1)) 0 (divisors n)
        in
        Hashtbl.replace table (n, parts) c;
        c
  in
  if parts < 1 then invalid_arg "Divisors.count_factorizations: parts must be positive";
  count n parts

let random_factorization rng n ~parts =
  if parts < 1 then invalid_arg "Divisors.random_factorization: parts must be positive";
  let table = Hashtbl.create 64 in
  let rec count n parts =
    if parts = 1 then 1
    else
      match Hashtbl.find_opt table (n, parts) with
      | Some c -> c
      | None ->
        let c =
          List.fold_left (fun acc d -> acc + count (n / d) (parts - 1)) 0 (divisors n)
        in
        Hashtbl.replace table (n, parts) c;
        c
  in
  (* Uniform over ordered factorizations: pick the first factor d with
     probability proportional to the number of completions of n/d. *)
  let rec sample n parts =
    if parts = 1 then [ n ]
    else begin
      let total = count n parts in
      let target = Random.State.int rng total in
      let rec pick acc = function
        | [] -> assert false
        | d :: rest ->
          let c = count (n / d) (parts - 1) in
          if target < acc + c then d :: sample (n / d) (parts - 1)
          else pick (acc + c) rest
      in
      pick 0 (divisors n)
    end
  in
  sample n parts
