(** A small YAML subset, sufficient for Timeloop-style specification
    documents (Fig. 3): indentation-structured maps, block lists of
    ["- "] items (including inline first keys, as in ["- name: x"]),
    scalars (null/bool/int/float/plain and quoted strings) and ["#"]
    comments.  Anchors, flow collections, multi-document streams and
    multi-line scalars are not supported. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of value list
  | Map of (string * value) list

val parse : string -> (value, string) result
(** Errors carry a line number and a description. *)

val emit : value -> string
(** [parse (emit v)] returns a value equal to [v] up to scalar
    re-interpretation (e.g. the string ["42"] emits as a quoted scalar so
    it survives the round trip). *)

val find : value -> string -> value option
(** Map lookup; [None] on non-maps or missing keys. *)

val get_string : value -> string option

val get_int : value -> int option

val get_list : value -> value list option

val pp : Format.formatter -> value -> unit
