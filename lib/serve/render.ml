module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Pl = Thistle.Pipeline
module An = Analysis
module Arch = Archspec.Arch
module Nest = Workload.Nest
module Evaluate = Accmodel.Evaluate

let with_ppf f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let outcome ~tech (report : O.report) =
  with_ppf @@ fun ppf ->
  let o = report.O.outcome in
  Format.fprintf ppf "explored %d pruned permutation choices, %d programs solved@."
    report.O.choices_enumerated report.O.choices_solved;
  Format.fprintf ppf "solver: %a@." Gp.Solver.pp_totals report.O.solve_totals;
  if report.O.failures <> [] then begin
    Format.fprintf ppf "quarantined %d pair(s):@." (List.length report.O.failures);
    Format.fprintf ppf "%a" Robust.pp_summary report.O.failures
  end;
  if report.O.pruned <> [] then begin
    Format.fprintf ppf "presolve pruned %d pair(s):@." (List.length report.O.pruned);
    List.iter
      (fun (prov, (proof : An.Presolve.proof)) ->
        Format.fprintf ppf "  %s: constraint %s bounded to %.6g (%d step(s))@." prov
          proof.An.Presolve.culprit proof.An.Presolve.bound
          (List.length proof.An.Presolve.steps))
      report.O.pruned
  end;
  Format.fprintf ppf "architecture: %a (area %.0f um^2)@." Arch.pp o.I.arch
    (Arch.area tech o.I.arch);
  Format.fprintf ppf "mapping:@.%a@." Mapspace.Mapping.pp o.I.mapping;
  Format.fprintf ppf "metrics:@.%a@." Evaluate.pp o.I.metrics

let area_header area_budget = Printf.sprintf "area budget: %.0f um^2\n" area_budget

let pipeline ~config tech objective nests =
  with_ppf @@ fun ppf ->
  let area_budget = Arch.eyeriss_area tech in
  let entries =
    Pl.run_layers ~config tech (F.Codesign { area_budget }) objective nests
  in
  List.iter
    (fun (e : Pl.entry) ->
      match e.Pl.result with
      | Error msg ->
        Format.fprintf ppf "layer %s failed: %s\n" (Nest.name e.Pl.nest) msg
      | Ok _ -> ())
    entries;
  let failures =
    List.concat_map
      (fun (e : Pl.entry) ->
        match e.Pl.result with Ok r -> r.O.failures | Error _ -> [])
      entries
  in
  if failures <> [] then begin
    Format.fprintf ppf "quarantined %d pair(s) across layers:@."
      (List.length failures);
    Format.fprintf ppf "%a" Robust.pp_summary failures
  end;
  match Pl.dominant_arch objective entries with
  | Error msg -> Format.fprintf ppf "dominant architecture failed: %s\n" msg
  | Ok arch ->
    Format.fprintf ppf "dominant-layer architecture: %a@.@." Arch.pp arch;
    Format.fprintf ppf "%-10s %16s %16s\n" "layer" "layer-wise" "shared-arch";
    List.iter
      (fun (e : Pl.entry) ->
        let name = Nest.name e.Pl.nest in
        let value (m : Evaluate.t option) =
          match (m, objective) with
          | Some m, F.Energy -> Printf.sprintf "%.2f pJ/MAC" m.Evaluate.energy_per_mac
          | Some m, F.Delay -> Printf.sprintf "%.1f IPC" m.Evaluate.ipc
          | Some m, F.Edp ->
            Printf.sprintf "%.3g pJ*cyc" (m.Evaluate.energy_pj *. m.Evaluate.cycles)
          | None, _ -> "-"
        in
        let shared =
          match O.dataflow ~config tech arch objective e.Pl.nest with
          | Ok r -> Some r.O.outcome.I.metrics
          | Error _ -> None
        in
        Format.fprintf ppf "%-10s %16s %16s\n" name
          (value (Pl.metrics e))
          (value shared))
      entries
