type read_error = Closed | Torn of int | Oversized of int

let describe = function
  | Closed -> "connection closed"
  | Torn n -> Printf.sprintf "torn frame: EOF after %d byte(s)" n
  | Oversized n -> Printf.sprintf "oversized frame: %d bytes announced" n

let default_max_frame = 16 * 1024 * 1024

let write_frame fd payload =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  (* Big-endian, most significant byte first. *)
  Bytes.set_uint8 buf 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 buf 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 buf 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 buf 3 (n land 0xff);
  Bytes.blit_string payload 0 buf 4 n;
  let total = 4 + n in
  let written = ref 0 in
  while !written < total do
    written := !written + Unix.write fd buf !written (total - !written)
  done

(* Reads exactly [len] bytes into [buf] starting at [off]; returns how
   many it got before EOF (short only on EOF). *)
let read_exact fd buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match Unix.read fd buf (off + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  !got

let read_frame ?(max_frame = default_max_frame) fd =
  let header = Bytes.create 4 in
  match read_exact fd header 0 4 with
  | 0 -> Error Closed
  | n when n < 4 -> Error (Torn n)
  | _ ->
    let len =
      (Bytes.get_uint8 header 0 lsl 24)
      lor (Bytes.get_uint8 header 1 lsl 16)
      lor (Bytes.get_uint8 header 2 lsl 8)
      lor Bytes.get_uint8 header 3
    in
    if len > max_frame then Error (Oversized len)
    else begin
      let payload = Bytes.create len in
      let got = read_exact fd payload 0 len in
      if got < len then Error (Torn (4 + got))
      else Ok (Bytes.unsafe_to_string payload)
    end
