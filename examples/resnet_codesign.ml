(* Architecture-dataflow co-design for ResNet-18 (the paper's Fig. 5/6
   flow, energy objective): each conv layer gets its own architecture
   under the Eyeriss area budget, then the energy-dominant layer's
   architecture is fixed and every layer is re-optimized for it.

   Run with:  dune exec examples/resnet_codesign.exe *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Pl = Thistle.Pipeline
module Arch = Archspec.Arch
module Evaluate = Accmodel.Evaluate

let () =
  let tech = Archspec.Technology.table3 in
  let area_budget = Arch.eyeriss_area tech in
  Printf.printf "area budget (Eyeriss): %.0f um^2\n\n" area_budget;
  let nests = List.map Workload.Conv.to_nest Workload.Zoo.resnet18 in
  let entries =
    Pl.run_layers tech (F.Codesign { area_budget }) F.Energy nests
  in
  Printf.printf "%-10s %10s %6s %8s %10s\n" "layer" "pJ/MAC" "PEs" "regs/PE" "SRAM words";
  List.iter
    (fun (e : Pl.entry) ->
      let name = Workload.Nest.name e.Pl.nest in
      match e.Pl.result with
      | Error msg -> Printf.printf "%-10s failed: %s\n" name msg
      | Ok r ->
        let o = r.O.outcome in
        Printf.printf "%-10s %10.2f %6d %8d %10d\n%!" name
          o.I.metrics.Evaluate.energy_per_mac o.I.arch.Arch.pe_count
          o.I.arch.Arch.registers_per_pe o.I.arch.Arch.sram_words)
    entries;
  match Pl.dominant_arch F.Energy entries with
  | Error msg -> Printf.printf "\nno dominant architecture: %s\n" msg
  | Ok arch ->
    Printf.printf "\nsingle shared architecture (energy-dominant layer): %s\n"
      (Format.asprintf "%a" Arch.pp arch);
    Printf.printf "%-10s %16s\n" "layer" "pJ/MAC (shared)";
    List.iter
      (fun (e : Pl.entry) ->
        let name = Workload.Nest.name e.Pl.nest in
        match O.dataflow tech arch F.Energy e.Pl.nest with
        | Error msg -> Printf.printf "%-10s failed: %s\n" name msg
        | Ok r ->
          Printf.printf "%-10s %16.2f\n%!" name
            r.O.outcome.I.metrics.Evaluate.energy_per_mac)
      entries
