(** Structured diagnostics emitted by the static-analysis passes.

    Every checker — the DGP discipline pass ({!Discipline}), the
    dimensional-analysis pass ({!Dimexpr}) and the post-solve certificate
    ({!Certificate}) — reports findings through this one type, so callers
    (the {!Lint} gate, the [thistle lint] subcommand, tests) can filter
    by severity, key on constraint names and print uniform tables.

    [provenance] identifies which formulated program the finding belongs
    to (layer, objective, permutation choice, window placement) — with
    thousands of programs per sweep, a diagnostic without provenance is
    unactionable. *)

type severity = Error | Warning

type t = {
  severity : severity;
  pass : string;  (** ["discipline"], ["units"] or ["certificate"] *)
  constraint_name : string option;
      (** [None] when the finding concerns the objective or the problem
          as a whole *)
  message : string;
  provenance : string option;
      (** layer / objective / permutation / placement of the program *)
}

val error :
  pass:string -> ?constraint_name:string -> ?provenance:string -> string -> t

val warning :
  pass:string -> ?constraint_name:string -> ?provenance:string -> string -> t

val is_error : t -> bool

val errors : t list -> t list

val count : t list -> int * int
(** [(errors, warnings)]. *)

val summary : t list -> string
(** One line: count by severity plus the first error's message — for
    embedding in [Error _] results. *)

val pp : Format.formatter -> t -> unit
(** One diagnostic on one line: [severity pass [constraint] message
    (provenance)]. *)

val pp_table : Format.formatter -> t list -> unit
(** All diagnostics as an aligned table, errors first. *)

val to_string : t -> string
