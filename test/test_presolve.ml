(* Tests for the presolve pass: the interval substrate's hazard cases
   (0 * inf products, negative-exponent powers), hand-built propagation
   verdicts with machine-checked proofs, tampered-proof rejection by the
   independent checker, a QCheck soundness property (the propagated box
   always contains a known feasible point), and the end-to-end contracts
   over a capacity-starved architecture: Check mode agrees with the
   solver, and Prune mode selects a bit-identical outcome to Off while
   actually pruning pairs. *)

module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module Iv = Analysis.Interval
module Ps = Analysis.Presolve
module Cert = Analysis.Certificate
module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Evaluate = Accmodel.Evaluate
module Mapping = Mapspace.Mapping

let tech = Archspec.Technology.table3

let raises_invalid name f =
  Alcotest.(check bool) name true
    (match f () with () -> false | exception Invalid_argument _ -> true)

let check_interval name expected got =
  Alcotest.(check (float 0.0)) (name ^ ".lo") expected.Iv.lo got.Iv.lo;
  Alcotest.(check (float 0.0)) (name ^ ".hi") expected.Iv.hi got.Iv.hi

(* --- interval arithmetic: the 0 * inf and endpoint-swap hazards --- *)

let test_interval_products () =
  Alcotest.(check (float 0.0)) "mul_lo 0 inf" 0.0 (Iv.mul_lo 0.0 Float.infinity);
  Alcotest.(check (float 0.0)) "mul_lo inf 0" 0.0 (Iv.mul_lo Float.infinity 0.0);
  Alcotest.(check (float 0.0)) "mul_hi 0 inf" Float.infinity
    (Iv.mul_hi 0.0 Float.infinity);
  check_interval "[0,1]*[2,inf]"
    { Iv.lo = 0.0; hi = Float.infinity }
    (Iv.mul (Iv.make ~lo:0.0 ~hi:1.0) (Iv.make ~lo:2.0 ~hi:Float.infinity));
  check_interval "point product" (Iv.point 6.0) (Iv.mul (Iv.point 2.0) (Iv.point 3.0))

let test_interval_powers () =
  (* Negative exponents swap the endpoints; the full axis is a fixed
     point of every power. *)
  check_interval "[2,3]^-1"
    { Iv.lo = 1.0 /. 3.0; hi = 0.5 }
    (Iv.pow (Iv.make ~lo:2.0 ~hi:3.0) (-1.0));
  check_interval "full^-2 stays full" Iv.full (Iv.pow Iv.full (-2.0));
  check_interval "x^0 is 1" (Iv.point 1.0) (Iv.pow Iv.full 0.0);
  check_interval "inv of [0,2]"
    { Iv.lo = 0.5; hi = Float.infinity }
    (Iv.inv (Iv.make ~lo:0.0 ~hi:2.0))

let test_interval_guards_and_mem () =
  raises_invalid "make lo > hi" (fun () -> ignore (Iv.make ~lo:2.0 ~hi:1.0));
  raises_invalid "make negative lo" (fun () -> ignore (Iv.make ~lo:(-1.0) ~hi:1.0));
  raises_invalid "make nan" (fun () -> ignore (Iv.make ~lo:Float.nan ~hi:1.0));
  raises_invalid "point 0" (fun () -> ignore (Iv.point 0.0));
  raises_invalid "point inf" (fun () -> ignore (Iv.point Float.infinity));
  let i = Iv.make ~lo:2.0 ~hi:3.0 in
  Alcotest.(check bool) "endpoint is a member" true (Iv.mem 2.0 i);
  Alcotest.(check bool) "outside is not" false (Iv.mem 1.99 i);
  Alcotest.(check bool) "slack relaxes the endpoint" true
    (Iv.mem ~slack:1e-2 1.99 i);
  Alcotest.(check bool) "nan is never a member" false (Iv.mem Float.nan i);
  Alcotest.(check bool) "inf outside a bounded side" false (Iv.mem Float.infinity i)

let test_interval_monomials () =
  let env = function
    | "x" -> Iv.make ~lo:1.0 ~hi:2.0
    | "y" -> Iv.make ~lo:2.0 ~hi:4.0
    | _ -> Iv.full
  in
  (* 3 x y^-1 over x in [1,2], y in [2,4]: [3/4, 3]. *)
  check_interval "3 x y^-1"
    { Iv.lo = 0.75; hi = 3.0 }
    (Iv.monomial env (M.make 3.0 [ ("x", 1.0); ("y", -1.0) ]));
  check_interval "posynomial sums termwise"
    { Iv.lo = 1.75; hi = 5.0 }
    (Iv.posynomial env (P.add (P.var "x") (P.of_monomial (M.make 3.0 [ ("x", 1.0); ("y", -1.0) ]))))

(* --- propagation verdicts on hand-built programs --- *)

(* x >= 2 (as 2 x^-1 <= 1) against x <= 1: statically infeasible. *)
let conflicting =
  Gp.Problem.make ~objective:(P.var "x")
    ~ineqs:
      [ ("x>=2", P.of_monomial (M.make 2.0 [ ("x", -1.0) ])); ("x<=1", P.var "x") ]
    ()

let require_infeasible name problem =
  match (Ps.analyze problem).Ps.verdict with
  | Ps.Infeasible proof ->
    (match Cert.check_prune problem proof with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s: checker rejected analyze's proof: %s" name msg);
    proof
  | Ps.Feasible _ -> Alcotest.failf "%s: expected infeasible" name

let test_infeasible_bound_conflict () =
  let proof = require_infeasible "bound conflict" conflicting in
  Alcotest.(check bool) "bound violates 1 beyond the margin" true
    (proof.Ps.bound > 1.0 +. Ps.prune_margin)

let test_infeasible_constant_term () =
  (* A constant term above 1 needs no propagation at all. *)
  let problem =
    Gp.Problem.make ~objective:(P.var "x")
      ~ineqs:[ ("cap", P.add (P.const 2.0) (P.var "x")) ]
      ()
  in
  let proof = require_infeasible "constant term" problem in
  Alcotest.(check string) "culprit is the capacity constraint" "cap" proof.Ps.culprit;
  Alcotest.(check bool) "kind" true (proof.Ps.kind = Ps.Ineq_low)

let test_infeasible_equality () =
  (* x y = 8 cannot hold under x <= 2, y <= 2 (product tops out at 4). *)
  let problem =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.var "y"))
      ~ineqs:
        [
          ("x<=2", P.of_monomial (M.make 0.5 [ ("x", 1.0) ]));
          ("y<=2", P.of_monomial (M.make 0.5 [ ("y", 1.0) ]));
        ]
      ~eqs:[ ("xy=8", Gp.Problem.eq (M.mul (M.var "x") (M.var "y")) (M.const 8.0)) ]
      ()
  in
  ignore (require_infeasible "equality conflict" problem)

let test_monotone_fixing () =
  (* Minimizing x y with both variables bounded below pins both to their
     lower endpoints; the simple bounds collapse to constants and are
     recorded as dropped. *)
  let problem =
    Gp.Problem.make
      ~objective:(P.of_monomial (M.mul (M.var "x") (M.var "y")))
      ~ineqs:
        [
          ("x>=2", P.of_monomial (M.make 2.0 [ ("x", -1.0) ]));
          ("y>=3", P.of_monomial (M.make 3.0 [ ("y", -1.0) ]));
        ]
      ()
  in
  match (Ps.analyze problem).Ps.verdict with
  | Ps.Infeasible _ -> Alcotest.fail "expected feasible"
  | Ps.Feasible red ->
    Alcotest.(check (list (pair string (float 0.0))))
      "both variables pinned"
      [ ("x", 2.0); ("y", 3.0) ]
      red.Ps.fixed;
    Alcotest.(check (list string)) "reduced problem is fully solved" []
      (Gp.Problem.variables red.Ps.reduced);
    Alcotest.(check (list string))
      "collapsed bounds recorded in original order" [ "x>=2"; "y>=3" ]
      (List.map fst red.Ps.dropped)

let test_redundant_elimination () =
  (* x <= 10 is implied by x <= 2 (certified upper bound 0.2); the
     objective x + 1/x is sign-mixed, so nothing is fixed. *)
  let problem =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.of_monomial (M.var_pow "x" (-1.0))))
      ~ineqs:
        [
          ("x<=2", P.of_monomial (M.make 0.5 [ ("x", 1.0) ]));
          ("x<=10", P.of_monomial (M.make 0.1 [ ("x", 1.0) ]));
        ]
      ()
  in
  match (Ps.analyze problem).Ps.verdict with
  | Ps.Infeasible _ -> Alcotest.fail "expected feasible"
  | Ps.Feasible red ->
    Alcotest.(check (list string)) "nothing fixed" [] (List.map fst red.Ps.fixed);
    (match red.Ps.dropped with
    | [ ("x<=10", ub) ] ->
      Alcotest.(check (float 1e-12)) "certified upper bound" 0.2 ub
    | d -> Alcotest.failf "expected x<=10 dropped, got %d" (List.length d));
    Alcotest.(check (list string)) "tight constraint kept" [ "x<=2" ]
      (List.map fst (Gp.Problem.ineqs red.Ps.reduced))

let test_duplicates_not_mutually_dropped () =
  (* Two copies of the same binding constraint imply each other; the
     kept-only re-verification must prevent dropping either. *)
  let bound = P.of_monomial (M.make 0.5 [ ("x", 1.0) ]) in
  let problem =
    Gp.Problem.make
      ~objective:(P.add (P.var "x") (P.of_monomial (M.var_pow "x" (-1.0))))
      ~ineqs:[ ("a", bound); ("b", bound) ]
      ()
  in
  match (Ps.analyze problem).Ps.verdict with
  | Ps.Infeasible _ -> Alcotest.fail "expected feasible"
  | Ps.Feasible red ->
    Alcotest.(check (list string)) "neither copy dropped" []
      (List.map fst red.Ps.dropped);
    Alcotest.(check int) "both constraints survive" 2
      (List.length (Gp.Problem.ineqs red.Ps.reduced))

(* --- the independent proof checker: sound proofs pass, tampered fail --- *)

let proof_of ~steps ~bound =
  { Ps.steps; culprit = "x<=1"; kind = Ps.Ineq_low; bound }

let step bound = { Ps.var = "x"; side = Ps.Lo; bound; via = "x>=2" }

let test_checker_accepts_sound_proofs () =
  (* The exactly-derivable proof, and a deliberately weaker one (x >= 1.5
     instead of the derivable x >= 2, with the culprit bound recomputed
     accordingly): the checker accepts any sound derivation, not just the
     one the propagator happens to emit. *)
  (match Cert.check_prune conflicting (proof_of ~steps:[ step 2.0 ] ~bound:2.0) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "exact proof rejected: %s" msg);
  match Cert.check_prune conflicting (proof_of ~steps:[ step 1.5 ] ~bound:1.5) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "weaker sound proof rejected: %s" msg

let test_checker_rejects_tampered_proofs () =
  let rejected name proof =
    match Cert.check_prune conflicting proof with
    | Ok () -> Alcotest.failf "%s: tampered proof accepted" name
    | Error _ -> ()
  in
  (* A step claiming more than its constraint implies (x >= 3 from
     2 x^-1 <= 1). *)
  rejected "overstated step" (proof_of ~steps:[ step 3.0 ] ~bound:3.0);
  (* A culprit bound that does not match the replayed box. *)
  rejected "inflated culprit bound" (proof_of ~steps:[ step 2.0 ] ~bound:4.0);
  (* Non-finite and non-positive step bounds are rejected outright. *)
  rejected "nan step bound" (proof_of ~steps:[ step Float.nan ] ~bound:2.0);
  rejected "zero step bound" (proof_of ~steps:[ step 0.0 ] ~bound:2.0);
  (* A culprit that is not violated at all. *)
  rejected "unviolated culprit"
    { Ps.steps = []; culprit = "x>=2"; kind = Ps.Ineq_low; bound = 1.0 }

(* --- QCheck soundness: the box contains every feasible point --- *)

let prop_box_contains_feasible_point =
  (* Build random two-variable programs that are feasible at a sampled
     point by construction (each inequality gets 5% slack at the point;
     the optional equality holds there exactly).  Soundness of the
     propagation demands the verdict is not Infeasible and the final box
     contains the point. *)
  let open QCheck2.Gen in
  let coord = oneofl [ 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  let expo = map float_of_int (int_range (-2) 2) in
  let mono = map2 (fun ex ey -> M.make 1.0 [ ("x", ex); ("y", ey) ]) expo expo in
  let gen = tup4 coord coord (list_size (int_range 1 4) mono) (option mono) in
  QCheck2.Test.make ~name:"propagated box contains a known feasible point"
    ~count:200 gen (fun (px, py, ineq_monos, eq_mono) ->
      let at_point m = M.eval (function "x" -> px | _ -> py) m in
      let ineqs =
        List.mapi
          (fun k m ->
            (Printf.sprintf "c%d" k, P.of_monomial (M.scale (1.0 /. (1.05 *. at_point m)) m)))
          ineq_monos
      in
      let eqs =
        match eq_mono with
        | None -> []
        | Some m -> [ ("eq", M.scale (1.0 /. at_point m) m) ]
      in
      let problem =
        Gp.Problem.make ~objective:(P.add (P.var "x") (P.var "y")) ~ineqs ~eqs ()
      in
      let t = Ps.analyze problem in
      match t.Ps.verdict with
      | Ps.Infeasible _ -> false (* a feasible point existed: unsound *)
      | Ps.Feasible _ ->
        List.for_all
          (fun (v, value) ->
            match List.assoc_opt v t.Ps.box with
            | None -> true
            | Some i -> Iv.mem ~slack:1e-9 value i)
          [ ("x", px); ("y", py) ])

(* --- end-to-end over a capacity-starved architecture --- *)

(* 32 PEs with 16 registers each and a 4K-word SRAM: many (choice,
   placement) pairs of resnet-2 are statically over capacity, so the
   pass has real prunes to find (the roomy Eyeriss default prunes
   nothing). *)
let edge = Arch.make ~name:"edge" ~pes:32 ~registers:16 ~sram_words:4096

let nest = Workload.Conv.to_nest (Workload.Zoo.find "resnet-2")

let config presolve = { O.default_config with O.max_choices = 16; presolve }

let test_check_mode_agrees_with_solver () =
  (* Check mode solves everything and turns any presolve/solver
     disagreement into an Error; a clean run is the differential pass. *)
  match O.dataflow ~config:(config Ps.Check) tech edge F.Energy nest with
  | Ok r -> Alcotest.(check int) "check mode prunes nothing" 0 (List.length r.O.pruned)
  | Error msg -> Alcotest.failf "check mode found a disagreement: %s" msg

let test_prune_outcome_identical_to_off () =
  let run presolve =
    match O.dataflow ~config:(config presolve) tech edge F.Energy nest with
    | Ok r -> r
    | Error msg -> Alcotest.failf "optimize failed: %s" msg
  in
  let pruned = run Ps.Prune and off = run Ps.Off in
  Alcotest.(check bool) "presolve actually pruned pairs" true
    (List.length pruned.O.pruned > 0);
  Alcotest.(check int) "off prunes nothing" 0 (List.length off.O.pruned);
  let op = pruned.O.outcome and oo = off.O.outcome in
  Alcotest.(check string) "same arch" oo.I.arch.Arch.arch_name op.I.arch.Arch.arch_name;
  Alcotest.(check string) "same mapping"
    (Format.asprintf "%a" Mapping.pp oo.I.mapping)
    (Format.asprintf "%a" Mapping.pp op.I.mapping);
  Alcotest.(check int64) "bit-identical energy"
    (Int64.bits_of_float oo.I.metrics.Evaluate.energy_pj)
    (Int64.bits_of_float op.I.metrics.Evaluate.energy_pj);
  Alcotest.(check int64) "bit-identical cycles"
    (Int64.bits_of_float oo.I.metrics.Evaluate.cycles)
    (Int64.bits_of_float op.I.metrics.Evaluate.cycles);
  let rel =
    Float.abs (pruned.O.best_continuous -. off.O.best_continuous)
    /. (1.0 +. Float.abs off.O.best_continuous)
  in
  Alcotest.(check bool)
    (Printf.sprintf "continuous objective within tolerance (|Δ| = %.3g)" rel)
    true (rel <= 1e-6)

let () =
  Alcotest.run "presolve"
    [
      ( "interval",
        [
          Alcotest.test_case "products" `Quick test_interval_products;
          Alcotest.test_case "powers" `Quick test_interval_powers;
          Alcotest.test_case "guards and membership" `Quick test_interval_guards_and_mem;
          Alcotest.test_case "monomials" `Quick test_interval_monomials;
        ] );
      ( "verdicts",
        [
          Alcotest.test_case "bound conflict" `Quick test_infeasible_bound_conflict;
          Alcotest.test_case "constant term" `Quick test_infeasible_constant_term;
          Alcotest.test_case "equality conflict" `Quick test_infeasible_equality;
          Alcotest.test_case "monotone fixing" `Quick test_monotone_fixing;
          Alcotest.test_case "redundant elimination" `Quick test_redundant_elimination;
          Alcotest.test_case "duplicates kept" `Quick test_duplicates_not_mutually_dropped;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts sound proofs" `Quick test_checker_accepts_sound_proofs;
          Alcotest.test_case "rejects tampered proofs" `Quick
            test_checker_rejects_tampered_proofs;
        ] );
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest [ prop_box_contains_feasible_point ] );
      ( "optimize",
        [
          Alcotest.test_case "check mode agrees with solver" `Slow
            test_check_mode_agrees_with_solver;
          Alcotest.test_case "prune outcome identical to off" `Slow
            test_prune_outcome_identical_to_off;
        ] );
    ]
