(* Serve-daemon benchmark: request latency and throughput against an
   in-process daemon (Tcp on loopback) with a fresh result store — the
   cold solve, the warm-hit replay path, and saturation throughput with
   concurrent clients hammering stored answers.

   Emits BENCH_serve.json (flat one-level object; format documented in
   README.md) so the perf trajectory has a recorded baseline —
   tools/perfdiff.sh knows *_ms is lower-is-better and
   *hit_rate/*req_per_s are higher-is-better.

   Usage:
     dune exec bench/serve_bench.exe                      # defaults
     dune exec bench/serve_bench.exe -- --requests 200 --clients 8
     dune exec bench/serve_bench.exe -- --smoke           # tiny CI run *)

module F = Thistle.Formulate
module Arch = Archspec.Arch
module Json = Obs.Json
module Protocol = Serve.Protocol
module Server = Serve.Server
module Client = Serve.Client

type options = {
  layer : string;
  max_choices : int;
  requests : int;  (** warm requests measured sequentially *)
  clients : int;  (** concurrent clients for the saturation phase *)
  per_client : int;  (** requests each saturation client issues *)
  out : string;
}

let parse_args () =
  let layer = ref "resnet-2" in
  let max_choices = ref 8 in
  let requests = ref 100 in
  let clients = ref 8 in
  let per_client = ref 50 in
  let out = ref "BENCH_serve.json" in
  let int_arg flag s =
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "%s: invalid value %S, expected a positive integer\n" flag s;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--layer" :: name :: rest ->
      layer := name;
      go rest
    | "--max-choices" :: n :: rest ->
      max_choices := int_arg "--max-choices" n;
      go rest
    | "--requests" :: n :: rest ->
      requests := int_arg "--requests" n;
      go rest
    | "--clients" :: n :: rest ->
      clients := int_arg "--clients" n;
      go rest
    | "--per-client" :: n :: rest ->
      per_client := int_arg "--per-client" n;
      go rest
    | "--out" :: file :: rest ->
      out := file;
      go rest
    | "--smoke" :: rest ->
      (* Seconds-scale sanity run for the @bench alias. *)
      max_choices := 4;
      requests := 20;
      clients := 2;
      per_client := 10;
      go rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s (expected --layer NAME, --max-choices N, --requests N, \
         --clients N, --per-client N, --out FILE, --smoke)\n"
        arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    layer = !layer;
    max_choices = !max_choices;
    requests = !requests;
    clients = !clients;
    per_client = !per_client;
    out = !out;
  }

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

let counter name =
  match List.assoc_opt name (Obs.Metrics.counters (Obs.Metrics.snapshot ())) with
  | Some v -> v
  | None -> 0

let () =
  let options = parse_args () in
  let store_dir = temp_dir "thistle-bench-serve" in
  let cfg =
    {
      (Server.default (Server.Tcp 0)) with
      Server.store_dir = Some store_dir;
      max_inflight = options.clients + 2;
    }
  in
  let server =
    match Server.start cfg with
    | Ok t -> t
    | Error m ->
      Printf.eprintf "serve bench: %s\n" m;
      exit 1
  in
  let port =
    match Server.address server with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let req =
    Protocol.Optimize
      {
        layer = options.layer;
        objective = F.Energy;
        arch = Arch.eyeriss;
        opts =
          {
            Protocol.top_choices = 1;
            max_choices = options.max_choices;
            node_nm = Archspec.Technology.reference_node_nm;
          };
      }
  in
  Obs.Metrics.reset ();
  let ask client =
    match Client.request client req with
    | Ok (Protocol.Payload { body; _ }) -> body
    | Ok (Protocol.Refused { message; _ }) ->
      Printf.eprintf "serve bench: refused: %s\n" message;
      exit 1
    | Error m ->
      Printf.eprintf "serve bench: %s\n" m;
      exit 1
  in
  let with_client f =
    match Client.connect (Client.tcp_addr port) with
    | Error m ->
      Printf.eprintf "serve bench: %s\n" m;
      exit 1
    | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)
  in
  (* Cold solve: the one store miss of the whole run. *)
  let t0 = Unix.gettimeofday () in
  let cold_body = with_client ask in
  let cold_wall_s = Unix.gettimeofday () -. t0 in
  (* Warm hits, one connection, sequential: latency distribution. *)
  let latencies =
    with_client @@ fun c ->
    Array.init options.requests (fun _ ->
        let t0 = Unix.gettimeofday () in
        let body = ask c in
        let dt = Unix.gettimeofday () -. t0 in
        if not (String.equal body cold_body) then begin
          Printf.eprintf "serve bench: warm reply differs from cold bytes\n";
          exit 1
        end;
        dt)
  in
  let warm_wall_s = Array.fold_left ( +. ) 0.0 latencies in
  Array.sort compare latencies;
  let p50_ms = 1e3 *. percentile latencies 0.50 in
  let p99_ms = 1e3 *. percentile latencies 0.99 in
  let warm_req_per_s = float_of_int options.requests /. warm_wall_s in
  (* Saturation: concurrent clients replaying the stored answer. *)
  let total_sat = options.clients * options.per_client in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init options.clients (fun _ ->
        Thread.create
          (fun () ->
            with_client @@ fun c ->
            for _ = 1 to options.per_client do
              ignore (ask c)
            done)
          ())
  in
  List.iter Thread.join threads;
  let sat_wall_s = Unix.gettimeofday () -. t0 in
  let sat_req_per_s = float_of_int total_sat /. sat_wall_s in
  let hits = counter "serve.cache_hits" in
  let misses = counter "serve.cache_misses" in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Server.stop server;
  (try rm_rf store_dir with Sys_error _ | Unix.Unix_error _ -> ());
  let buf = Buffer.create 512 in
  let f name v b = Json.field b name (fun b -> Json.float b v) in
  let i name v b = Json.field b name (fun b -> Json.int b v) in
  let s name v b = Json.field b name (fun b -> Json.str b v) in
  Json.obj buf
    [
      s "bench" "serve";
      s "layer" options.layer;
      i "max_choices" options.max_choices;
      i "warm_requests" options.requests;
      i "sat_clients" options.clients;
      i "sat_requests" total_sat;
      f "serve_cold_wall_s" cold_wall_s;
      f "serve_warm_p50_ms" p50_ms;
      f "serve_warm_p99_ms" p99_ms;
      f "serve_warm_req_per_s" warm_req_per_s;
      f "serve_sat_req_per_s" sat_req_per_s;
      f "serve_cache_hit_rate" hit_rate;
      i "serve_cache_hits" hits;
      i "serve_cache_misses" misses;
    ];
  Buffer.add_char buf '\n';
  let oc = open_out options.out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "serve bench: cold %.2fs; warm p50 %.3fms p99 %.3fms (%.0f req/s); saturation \
     %.0f req/s over %d clients; hit rate %.3f\n"
    cold_wall_s p50_ms p99_ms warm_req_per_s sat_req_per_s options.clients hit_rate;
  Printf.printf "wrote %s\n" options.out
