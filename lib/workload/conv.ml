type t = {
  layer_name : string;
  batch : int;
  out_channels : int;
  in_channels : int;
  in_height : int;
  in_width : int;
  kernel : int;
  stride : int;
}

let make ~name ?(batch = 1) ~k ~c ~hw ~rs ?(stride = 1) () =
  if batch < 1 || k < 1 || c < 1 || hw < 1 || rs < 1 || stride < 1 then
    invalid_arg "Conv.make: all parameters must be positive";
  {
    layer_name = name;
    batch;
    out_channels = k;
    in_channels = c;
    in_height = hw;
    in_width = hw;
    kernel = rs;
    stride;
  }

let out_height l = (l.in_height + l.stride - 1) / l.stride

let out_width l = (l.in_width + l.stride - 1) / l.stride

let to_nest l =
  let open Nest in
  let dims =
    [
      { dim_name = "n"; extent = l.batch };
      { dim_name = "k"; extent = l.out_channels };
      { dim_name = "c"; extent = l.in_channels };
      { dim_name = "r"; extent = l.kernel };
      { dim_name = "s"; extent = l.kernel };
      { dim_name = "h"; extent = out_height l };
      { dim_name = "w"; extent = out_width l };
    ]
  in
  let idx ?(stride = 1) iter = { stride; iter } in
  let tensors =
    [
      {
        tensor_name = "Out";
        projections = [ [ idx "n" ]; [ idx "k" ]; [ idx "h" ]; [ idx "w" ] ];
        read_write = true;
      };
      {
        tensor_name = "In";
        projections =
          [
            [ idx "n" ];
            [ idx "c" ];
            [ idx ~stride:l.stride "h"; idx "r" ];
            [ idx ~stride:l.stride "w"; idx "s" ];
          ];
        read_write = false;
      };
      {
        tensor_name = "Ker";
        projections = [ [ idx "k" ]; [ idx "c" ]; [ idx "r" ]; [ idx "s" ] ];
        read_write = false;
      };
    ]
  in
  Nest.make ~name:l.layer_name ~dims ~tensors

let macs l =
  float_of_int l.batch
  *. float_of_int l.out_channels
  *. float_of_int l.in_channels
  *. float_of_int (l.kernel * l.kernel)
  *. float_of_int (out_height l)
  *. float_of_int (out_width l)

let pp ppf l =
  Format.fprintf ppf "%s: N=%d K=%d C=%d HxW=%dx%d RS=%d stride=%d" l.layer_name l.batch
    l.out_channels l.in_channels l.in_height l.in_width l.kernel l.stride
