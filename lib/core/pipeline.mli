(** Multi-layer flows used by the paper's evaluation (Figs. 6 and 8):
    layer-wise optimization of a whole DNN pipeline, selection of the
    dominant layer, and re-optimization of every layer for the dominant
    layer's fixed architecture. *)

type entry = {
  nest : Workload.Nest.t;
  result : (Optimize.report, string) result;
}

val run_layers :
  ?config:Optimize.config ->
  Archspec.Technology.t ->
  Formulate.arch_mode ->
  Formulate.objective ->
  Workload.Nest.t list ->
  entry list
(** Optimize each layer independently; failures are recorded per layer.
    Layers run in parallel on the shared pool ([config.jobs] tasks at a
    time; each layer's own sweep then runs sequentially), and the entry
    list keeps the input layer order — results are identical for any
    [jobs].  The static-analysis gate ([config.lint]) applies per layer
    through {!Optimize.run}: under [Enforce] a lint rejection shows up as
    that layer's [Error] entry rather than aborting the other layers.

    Each layer body additionally runs under {!Robust.guard} (site
    ["layer"], provenance = the nest name): a crash that escapes
    {!Optimize.run}'s own per-pair quarantine — in formulation, ranking
    or enumeration — becomes that layer's [Error] entry instead of
    propagating through {!Exec.Par.map} and killing the sibling layers'
    results (DESIGN §11). *)

val dominant_arch :
  Formulate.objective -> entry list -> (Archspec.Arch.t, string) result
(** The architecture chosen by the layer-wise co-design for the layer with
    the {e largest} total energy (respectively delay, EDP) — the paper's
    worst-case-layer rule for picking the single architecture shared by
    all layers (Figs. 6 and 8), NOT the best-scoring layer.  Ties keep the
    earliest layer; layers with non-finite scores are skipped. *)

val metrics : entry -> Accmodel.Evaluate.t option
(** The model metrics of an entry, when optimization succeeded. *)
