(** Divisor arithmetic used by mapping enumeration and by the conversion of
    real-valued solver output to integer tile sizes. *)

val divisors : int -> int list
(** All positive divisors of [n], ascending.  Raises [Invalid_argument] for
    [n < 1]. *)

val is_divisor : int -> of_:int -> bool

val closest : int -> target:float -> count:int -> int list
(** [closest n ~target ~count] is up to [count] divisors of [n] nearest to
    [target] (distance measured in log space, since tile sizes act
    multiplicatively), de-duplicated, ascending. *)

val closest_powers_of_two : target:float -> count:int -> int list
(** The [count] powers of two nearest to [target] in log space, drawn from
    a window symmetric around the real-valued exponent (so candidates
    above {e and} below the target are always reachable), de-duplicated,
    ascending; every value is at least 1.  Raises [Invalid_argument] for
    [count < 1]. *)

val factorizations : int -> parts:int -> int list list
(** All ordered ways to write [n] as a product of [parts] positive factors.
    Intended for small [n]; the count grows quickly. *)

val count_factorizations : int -> parts:int -> int
(** Number of such factorizations, without materializing them. *)

val random_factorization : Random.State.t -> int -> parts:int -> int list
(** Uniformly random ordered factorization, drawn by walking the divisor
    lattice. *)
