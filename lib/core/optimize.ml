type config = {
  n_divisors : int;
  n_pow2 : int;
  top_choices : int;
  max_choices : int;
  gp_tol : float;
  explore_placements : bool;
  min_pe_utilization : float;
  jobs : int;
  lint : Analysis.Lint.mode;
}

let default_config =
  {
    n_divisors = 2;
    n_pow2 = 2;
    top_choices = 3;
    max_choices = 512;
    gp_tol = 1e-6;
    explore_placements = true;
    min_pe_utilization = 0.0;
    jobs = Domain.recommended_domain_count ();
    lint = Analysis.Lint.Enforce;
  }

type report = {
  outcome : Integerize.outcome;
  choices_enumerated : int;
  choices_solved : int;
  best_continuous : float;
  solve_totals : Gp.Solver.totals;
}

let log_src = Logs.Src.create "thistle.optimize" ~doc:"Thistle optimizer driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_solves = Obs.Metrics.counter "solver.solves"
let m_outer = Obs.Metrics.counter "solver.outer_iters"
let m_phase1 = Obs.Metrics.counter "solver.phase1_outer_iters"
let m_phase2 = Obs.Metrics.counter "solver.phase2_outer_iters"
let m_newton = Obs.Metrics.counter "solver.newton_steps"
let m_backtracks = Obs.Metrics.counter "solver.backtracks"
let m_kkt = Obs.Metrics.counter "solver.kkt_regularizations"
let g_gap = Obs.Metrics.gauge "solver.max_duality_gap"

(* Fed from the sequentially-accumulated totals (not from inside the
   parallel sweep), so the counter values are functions of the workload
   alone — see the Obs.Metrics determinism contract. *)
let feed_solver_metrics (t : Gp.Solver.totals) =
  Obs.Metrics.add m_solves t.Gp.Solver.solves;
  Obs.Metrics.add m_outer (t.Gp.Solver.t_phase1_outer + t.Gp.Solver.t_phase2_outer);
  Obs.Metrics.add m_phase1 t.Gp.Solver.t_phase1_outer;
  Obs.Metrics.add m_phase2 t.Gp.Solver.t_phase2_outer;
  Obs.Metrics.add m_newton t.Gp.Solver.t_newton_iters;
  Obs.Metrics.add m_backtracks t.Gp.Solver.t_backtracks;
  Obs.Metrics.add m_kkt t.Gp.Solver.t_kkt_regularizations;
  Obs.Metrics.observe_max g_gap t.Gp.Solver.max_duality_gap

let run ?(config = default_config) tech arch_mode objective nest =
  let jobs = Int.max 1 config.jobs in
  let plan = Permutations.enumerate ~max_choices:config.max_choices nest in
  let solved =
    (* Inner exploration: one GP per (permutation choice, window-dim
       placement) pair.  The pairs are independent — Formulate.build and
       Gp.Solver.solve share no mutable state — so they run as one batch
       on the shared domain pool.  Exec.Par.filter_map preserves the
       sequential (choice-major, placement-minor) order, so the result is
       bit-identical for any [jobs]. *)
    let placements =
      if config.explore_placements then plan.Permutations.placements
      else [ plan.Permutations.pinned ]
    in
    let pairs =
      List.concat_map
        (fun choice_vol -> List.map (fun placement -> (choice_vol, placement)) placements)
        plan.Permutations.choices
    in
    let solve_one (choice_vol, placement) =
      let instance =
        Obs.Trace.span "formulate" (fun () ->
            Formulate.build ~placement tech arch_mode objective plan choice_vol)
      in
      Analysis.Lint.gate config.lint (Formulate.lint instance);
      let st = Gp.Solver.fresh_stats () in
      let solution =
        Obs.Trace.span "solve"
          ~attrs:[ ("provenance", instance.Formulate.provenance) ]
          (fun () -> Gp.Solver.solve ~tol:config.gp_tol ~stats:st instance.Formulate.problem)
      in
      let usable =
        match solution.Gp.Solver.status with
        | Gp.Solver.Infeasible -> None
        | Gp.Solver.Optimal | Gp.Solver.Iteration_limit ->
          if not (Float.is_finite solution.Gp.Solver.objective) then None
          else begin
            (* Post-solve certificate: a point with non-finite coordinates
               or constraint evaluations is discarded even when the solver
               reported a finite objective for it. *)
            let cert =
              Analysis.Certificate.check ~provenance:instance.Formulate.provenance
                instance.Formulate.problem
                (Formulate.solution_env instance solution)
            in
            if Analysis.Certificate.hard_failure cert then begin
              Log.debug (fun m ->
                  m "%s: certificate rejected solution: %s"
                    instance.Formulate.provenance
                    (Analysis.Diagnostic.summary cert.Analysis.Certificate.diagnostics));
              None
            end
            else Some (instance, solution)
          end
      in
      (usable, st)
    in
    (* A lint rejection aborts the whole sweep: every pair of one layer
       shares the formulation code, so one malformed instance means the
       model itself is wrong, not that one choice is unlucky. *)
    try Ok (Exec.Par.map ~jobs solve_one pairs)
    with Analysis.Lint.Rejected diags ->
      Error
        (Printf.sprintf "optimize: lint rejected formulation: %s"
           (Analysis.Diagnostic.summary diags))
  in
  match solved with
  | Error _ as e -> e
  | Ok attempts ->
  (* Accumulate telemetry over every solve (feasible or not), in the
     deterministic sequential order Exec.Par.map preserves. *)
  let solve_totals =
    List.fold_left
      (fun acc (_, st) -> Gp.Solver.accumulate acc st)
      Gp.Solver.zero_totals attempts
  in
  feed_solver_metrics solve_totals;
  let solved = List.filter_map fst attempts in
  match solved with
  | [] ->
    Log.info (fun m ->
        m "%s: 0/%d choices solved (raw %d)" (Workload.Nest.name nest)
          (List.length plan.Permutations.choices) plan.Permutations.raw_count);
    Error "optimize: no permutation choice produced a feasible program"
  | solved ->
    Log.info (fun m ->
        m "%s: %d/%d choices solved (raw %d)" (Workload.Nest.name nest)
          (List.length solved) (List.length plan.Permutations.choices)
          plan.Permutations.raw_count);
    let ranked =
      (* List.sort is stable, and [solved] arrives in sequential order, so
         ties keep the deterministic enumeration order. *)
      List.sort
        (fun (_, a) (_, b) ->
          Float.compare a.Gp.Solver.objective b.Gp.Solver.objective)
        solved
    in
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    let shortlisted = take config.top_choices ranked in
    let best_continuous =
      match ranked with (_, s) :: _ -> s.Gp.Solver.objective | [] -> nan
    in
    let outcomes =
      Exec.Par.filter_map ~jobs
        (fun (instance, solution) ->
          match
            Obs.Trace.span "integerize"
              ~attrs:[ ("provenance", instance.Formulate.provenance) ]
              (fun () ->
                Integerize.run ~n_divisors:config.n_divisors ~n_pow2:config.n_pow2
                  ~min_pe_utilization:config.min_pe_utilization tech instance solution)
          with
          | Ok o -> Some o
          | Error msg ->
            Log.debug (fun m -> m "integerize failed: %s" msg);
            None)
        shortlisted
    in
    let better a b =
      Integerize.score objective a.Integerize.metrics
      < Integerize.score objective b.Integerize.metrics
    in
    let best =
      List.fold_left
        (fun acc o ->
          match acc with Some o' when better o' o -> acc | Some _ | None -> Some o)
        None outcomes
    in
    begin
      match best with
      | None -> Error "optimize: no integer candidate survived model evaluation"
      | Some outcome ->
        Ok
          {
            outcome;
            choices_enumerated = List.length plan.Permutations.choices;
            choices_solved = List.length solved;
            best_continuous;
            solve_totals;
          }
    end

let dataflow ?config tech arch objective nest =
  run ?config tech (Formulate.Fixed arch) objective nest

let codesign ?config tech ~area_budget objective nest =
  run ?config tech (Formulate.Codesign { area_budget }) objective nest
