let nest ?(name = "matmul") ~ni ~nj ~nk () =
  let nest_name = name in
  let open Nest in
  let idx iter = { stride = 1; iter } in
  Nest.make ~name:nest_name
    ~dims:
      [
        { dim_name = "i"; extent = ni };
        { dim_name = "j"; extent = nj };
        { dim_name = "k"; extent = nk };
      ]
    ~tensors:
      [
        {
          tensor_name = "C";
          projections = [ [ idx "i" ]; [ idx "j" ] ];
          read_write = true;
        };
        {
          tensor_name = "A";
          projections = [ [ idx "i" ]; [ idx "k" ] ];
          read_write = false;
        };
        {
          tensor_name = "B";
          projections = [ [ idx "k" ]; [ idx "j" ] ];
          read_write = false;
        };
      ]
