let combine shards =
  let all = List.concat shards in
  let sorted =
    List.stable_sort
      (fun (a : Journal.entry) (b : Journal.entry) -> compare a.Journal.pair b.Journal.pair)
      all
  in
  let rec dedup acc = function
    | [] -> Ok (List.rev acc)
    | (e : Journal.entry) :: rest -> (
      match acc with
      | (prev : Journal.entry) :: _ when prev.Journal.pair = e.Journal.pair ->
        if String.equal prev.Journal.fingerprint e.Journal.fingerprint then
          dedup acc rest
        else
          Error
            (Printf.sprintf
               "merge: pair %d appears with conflicting fingerprints %s and %s \
                (shards ran different formulations or solver configs)"
               e.Journal.pair prev.Journal.fingerprint e.Journal.fingerprint)
      | _ -> dedup (e :: acc) rest)
  in
  dedup [] sorted

let load_files files =
  let rec go acc = function
    | [] -> combine (List.rev acc)
    | f :: rest -> (
      match Journal.load f with
      | Error m -> Error (Printf.sprintf "merge: %s: %s" f m)
      | Ok entries -> go (entries :: acc) rest)
  in
  go [] files

let missing entries ~npairs =
  let covered = Array.make (Int.max 0 npairs) false in
  List.iter
    (fun (e : Journal.entry) ->
      if e.Journal.pair >= 0 && e.Journal.pair < npairs then
        covered.(e.Journal.pair) <- true)
    entries;
  List.filter (fun i -> not covered.(i)) (List.init (Int.max 0 npairs) Fun.id)
