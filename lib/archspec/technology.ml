type t = {
  area_mac : float;
  area_register : float;
  area_sram_word : float;
  energy_mac : float;
  sigma_register : float;
  sigma_sram : float;
  energy_dram : float;
  dram_bandwidth : float;
  sram_bandwidth : float;
  links : Link.set;
}

let make ~area_mac ~area_register ~area_sram_word ~energy_mac ~sigma_register
    ~sigma_sram ~energy_dram ~dram_bandwidth ~sram_bandwidth ~links =
  let check name v =
    if not (Float.is_finite v && v > 0.0) then
      invalid_arg
        (Printf.sprintf "Technology.make: %s must be finite and positive (got %g)"
           name v)
  in
  check "area_mac" area_mac;
  check "area_register" area_register;
  check "area_sram_word" area_sram_word;
  check "energy_mac" energy_mac;
  check "sigma_register" sigma_register;
  check "sigma_sram" sigma_sram;
  check "energy_dram" energy_dram;
  check "dram_bandwidth" dram_bandwidth;
  check "sram_bandwidth" sram_bandwidth;
  {
    area_mac;
    area_register;
    area_sram_word;
    energy_mac;
    sigma_register;
    sigma_sram;
    energy_dram;
    dram_bandwidth;
    sram_bandwidth;
    links;
  }

(* Eyeriss-calibrated links: the streaming bandwidths match the Fig. 3(a)
   aggregate numbers; DRAM moves 32-word (LPDDR4 BL16 x 16-bit) bursts
   with a fixed activation overhead, the NoC hands 16-word flits to the
   PEs with one cycle of header/routing, and the register operand path
   moves 4 words per MAC per cycle with no burst structure (so its
   occupancy coincides exactly with the compute bound). *)
let eyeriss_links =
  {
    Link.dram = Link.make ~bandwidth:8.0 ~burst_words:32.0 ~burst_overhead:4.0;
    noc = Link.make ~bandwidth:80.0 ~burst_words:16.0 ~burst_overhead:1.0;
    reg = Link.make ~bandwidth:4.0 ~burst_words:1.0 ~burst_overhead:0.0;
  }

let table3 =
  make ~area_mac:1239.5 ~area_register:19.874 ~area_sram_word:6.806
    ~energy_mac:2.2
    ~sigma_register:9.06719e-3
      (* Table III lists 17.88 for the SRAM constant; on the same 10^-3 pJ
         scale as the register constant this gives ~4.6 pJ per access for the
         Eyeriss 64K-word scratchpad, consistent with Cacti. *)
    ~sigma_sram:17.88e-3 ~energy_dram:128.0 ~dram_bandwidth:8.0
    ~sram_bandwidth:80.0 ~links:eyeriss_links

(* A bandwidth-starved edge point: same Table III energies and areas, but
   a single-channel LPDDR interface (1 word/cycle, longer activation) and
   a narrow NoC.  Communication-limited by construction — the point where
   the overlapped and communication-aware models visibly disagree. *)
let edge =
  {
    table3 with
    dram_bandwidth = 1.0;
    sram_bandwidth = 16.0;
    links =
      {
        Link.dram = Link.make ~bandwidth:1.0 ~burst_words:32.0 ~burst_overhead:8.0;
        noc = Link.make ~bandwidth:16.0 ~burst_words:16.0 ~burst_overhead:2.0;
        reg = Link.make ~bandwidth:4.0 ~burst_words:1.0 ~burst_overhead:0.0;
      };
  }

let reference_node_nm = 45.0

let scale_to_node tech ~node_nm =
  if not (node_nm > 0.0) then
    invalid_arg "Technology.scale_to_node: node must be positive";
  let s = node_nm /. reference_node_nm in
  let s2 = s *. s in
  {
    tech with
    area_mac = tech.area_mac *. s2;
    area_register = tech.area_register *. s2;
    area_sram_word = tech.area_sram_word *. s2;
    energy_mac = tech.energy_mac *. s2;
    sigma_register = tech.sigma_register *. s2;
    sigma_sram = tech.sigma_sram *. s2;
    (* DRAM is off-chip: per-access energy, the bandwidths and the link
       parameters are left unchanged. *)
  }

let register_access_energy_f tech r = tech.sigma_register *. r

let sram_access_energy_f tech s = tech.sigma_sram *. sqrt s

let register_access_energy tech ~registers =
  register_access_energy_f tech (float_of_int registers)

let sram_access_energy tech ~words = sram_access_energy_f tech (float_of_int words)

let pe_area tech ~registers =
  (tech.area_register *. float_of_int registers) +. tech.area_mac

let chip_area tech ~pes ~registers ~sram_words =
  (pe_area tech ~registers *. float_of_int pes)
  +. (tech.area_sram_word *. float_of_int sram_words)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>area/MAC %g um^2, area/reg %g um^2, area/SRAM-word %g um^2@,\
     MAC %g pJ, sigma_R %g pJ/word, sigma_S %g pJ/sqrt-word, DRAM %g pJ@,\
     bandwidth: DRAM %g w/cyc, SRAM %g w/cyc@,\
     links: dram %a; noc %a; reg %a@]"
    t.area_mac t.area_register t.area_sram_word t.energy_mac t.sigma_register
    t.sigma_sram t.energy_dram t.dram_bandwidth t.sram_bandwidth Link.pp
    t.links.Link.dram Link.pp t.links.Link.noc Link.pp t.links.Link.reg
