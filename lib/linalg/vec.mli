(** Dense vectors of floats.

    Thin wrappers over [float array] used by the geometric-programming
    solver.  All operations allocate fresh vectors unless the name ends in
    [_inplace]. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t

val dim : t -> int

val copy : t -> t

val of_list : float list -> t

val to_list : t -> float list

val get : t -> int -> float

val set : t -> int -> float -> unit

val fill : t -> float -> unit

val add : t -> t -> t
(** [add x y] is the elementwise sum.  Raises [Invalid_argument] on
    dimension mismatch. *)

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a *. x + y]. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float

val max_elt : t -> float
(** Maximum element.  Raises [Invalid_argument] on the empty vector. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val concat : t -> t -> t

val slice : t -> int -> int -> t
(** [slice x pos len] extracts the sub-vector of [len] entries starting at
    [pos]. *)

val pp : Format.formatter -> t -> unit
