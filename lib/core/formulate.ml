module Nest = Workload.Nest
module Tech = Archspec.Technology
module Arch = Archspec.Arch
module Level = Mapspace.Level
module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module U = Analysis.Units
module D = Analysis.Dimexpr

type objective = Energy | Delay | Edp

type arch_mode = Fixed of Arch.t | Codesign of { area_budget : float }

type instance = {
  problem : Gp.Problem.t;
  nest : Nest.t;
  choice : Permutations.choice;
  analysis : Volume.t;
  objective : objective;
  arch_mode : arch_mode;
  comm : Archspec.Link.comm_model;
  tileable : string list;
  pinned : (string * float) list;
  provenance : string;
  unit_diagnostics : Analysis.Diagnostic.t list;
}

let var_arch_regs = "arch.regs"

let var_arch_sram = "arch.sram"

let var_arch_pes = "arch.pes"

let var_delay = "delay.T"

(* The unit model of the formulation: trip counts are dimensionless, the
   register-file and SRAM capacities are word counts, the PE count a bare
   count, the delay epigraph variable a cycle count. *)
let unit_of_var v =
  if String.equal v var_delay then Some U.cycles
  else if String.equal v var_arch_regs || String.equal v var_arch_sram then
    Some U.elements
  else if String.equal v var_arch_pes then Some U.dimensionless
  else Option.map (fun _ -> U.dimensionless) (Level.parse_trip_var v)

(* Per-access energies (Eq. 4) are pJ per word moved. *)
let unit_access_energy = U.div U.pj U.elements

let objective_name = function Energy -> "energy" | Delay -> "delay" | Edp -> "edp"

let objective_unit = function
  | Energy -> U.pj
  | Delay -> U.cycles
  | Edp -> U.mul U.pj U.cycles

let provenance_of objective nest (choice : Permutations.choice) pinned =
  let spatial =
    List.filter_map
      (fun (v, value) ->
        match Level.parse_trip_var v with
        | Some (l, d) when l = Level.spatial_level && value > 1.0 ->
          Some (Printf.sprintf "%s=%g" d value)
        | _ -> None)
      pinned
  in
  Printf.sprintf "%s %s pe=[%s] dram=[%s]%s" (Nest.name nest)
    (objective_name objective)
    (String.concat "," choice.Permutations.pe_perm)
    (String.concat "," choice.Permutations.dram_perm)
    (match spatial with
    | [] -> ""
    | l -> " spatial{" ^ String.concat "," l ^ "}")

let bind_pinned pinned p =
  List.fold_left (fun acc (x, v) -> P.bind x v acc) p pinned

let build ?placement ?(comm = Archspec.Link.Overlapped) tech arch_mode objective
    (plan : Permutations.plan) (choice, analysis) =
  let nest = plan.Permutations.nest in
  let pinned =
    match placement with Some p -> p | None -> plan.Permutations.pinned
  in
  let tileable = plan.Permutations.tileable in
  let provenance = provenance_of objective nest choice pinned in
  let ctx = D.ctx ~provenance () in
  let bind = bind_pinned pinned in
  let macs = Nest.ops nest in
  (* Data volumes and buffer footprints, summed over tensors; both count
     16-bit data words, so they carry the [elem] unit. *)
  let volume_sum what select =
    D.sum ctx ~what U.elements
      (List.filter_map
         (fun tv ->
           Option.map
             (fun v ->
               D.of_posynomial U.elements (bind (Volume.volume_posynomial v)))
             (select tv))
         analysis.Volume.per_tensor)
  in
  let sram_to_reg = volume_sum "sram-to-reg volume" (fun tv -> Some tv.Volume.sram_to_reg) in
  let reg_to_sram =
    volume_sum "reg-to-sram volume" (fun tv ->
        if tv.Volume.read_write then Some tv.Volume.sram_to_reg else None)
  in
  let dram_to_sram = volume_sum "dram-to-sram volume" (fun tv -> Some tv.Volume.dram_to_sram) in
  let sram_to_dram =
    volume_sum "sram-to-dram volume" (fun tv ->
        if tv.Volume.read_write then Some tv.Volume.dram_to_sram else None)
  in
  let footprint_sum what select =
    D.sum ctx ~what U.elements
      (List.map
         (fun tv ->
           D.of_posynomial U.elements
             (bind (Symexpr.Footprint.to_posynomial (select tv))))
         analysis.Volume.per_tensor)
  in
  let reg_footprint = footprint_sum "register footprint" (fun tv -> tv.Volume.register_footprint) in
  let sram_footprint = footprint_sum "SRAM footprint" (fun tv -> tv.Volume.sram_footprint) in
  let spatial_product =
    (* Over every dim: pinned spatial placements (e.g. a window dim spread
       across PE rows) contribute their constant factor after binding. *)
    let raw =
      List.fold_left
        (fun acc d -> M.mul acc (M.var (Level.trip_var ~level:Level.spatial_level ~dim:d)))
        M.one (Nest.dim_names nest)
    in
    List.fold_left (fun acc (x, v) -> M.bind x v acc) raw pinned
  in
  let spatial = D.mono U.dimensionless spatial_product in
  (* Per-access energies: constants for a fixed architecture, monomials in
     the architectural variables in co-design mode (Eq. 4).  In co-design
     mode the Table III constants sigma_R / sigma_S absorb the extra
     capacity factor, so the products below still come out in pJ/elem. *)
  let eps_r, eps_s =
    match arch_mode with
    | Fixed arch ->
      ( D.mono unit_access_energy (M.const (Arch.register_energy tech arch)),
        D.mono unit_access_energy (M.const (Arch.sram_energy tech arch)) )
    | Codesign _ ->
      ( D.mono unit_access_energy
          (M.scale tech.Tech.sigma_register (M.var var_arch_regs)),
        D.mono unit_access_energy
          (M.scale tech.Tech.sigma_sram (M.var_pow var_arch_sram 0.5)) )
  in
  let register_side = D.add ctx ~what:"register-side traffic" sram_to_reg reg_to_sram in
  let dram_side = D.add ctx ~what:"DRAM-side traffic" dram_to_sram sram_to_dram in
  let sram_side = D.add ctx ~what:"SRAM-side traffic" register_side dram_side in
  (* Capacity / resource constraints shared by both objectives.

     The posynomial footprints over-approximate the exact halo extents
     (the negative constants of [x*Ht + Rt - x] are dropped).  The gap
     [relaxed - exact] is smallest at the all-ones point, so adding that
     minimal gap as slack to a constant capacity keeps the constraint a
     valid over-approximation everywhere while making it exact at the
     boundary — without it, architectures with very small register files
     (which the co-design path legitimately produces) would be spuriously
     infeasible. *)
  let ones_env var =
    match List.assoc_opt var pinned with Some v -> v | None -> 1.0
  in
  let capacity_slack select =
    List.fold_left
      (fun acc tv ->
        let fp = select tv in
        acc
        +. P.eval ones_env (Symexpr.Footprint.to_posynomial fp)
        -. Symexpr.Footprint.eval_exact ones_env fp)
      0.0 analysis.Volume.per_tensor
  in
  let capacity name posy bound_mono = (name, D.le ctx ~name posy bound_mono) in
  let base_constraints =
    match arch_mode with
    | Fixed arch ->
      [
        capacity "reg-capacity" reg_footprint
          (D.mconst U.elements
             (float_of_int arch.Arch.registers_per_pe
             +. capacity_slack (fun tv -> tv.Volume.register_footprint)));
        capacity "sram-capacity" sram_footprint
          (D.mconst U.elements
             (float_of_int arch.Arch.sram_words
             +. capacity_slack (fun tv -> tv.Volume.sram_footprint)));
        capacity "pe-count" (D.of_mono spatial)
          (D.mconst U.dimensionless (float_of_int arch.Arch.pe_count));
      ]
    | Codesign { area_budget } ->
      let area_per_word = U.div U.um2 U.elements in
      let area =
        D.sum ctx ~what:"chip area" U.um2
          [
            D.of_mono
              (D.mmul
                 (D.mconst area_per_word tech.Tech.area_register)
                 (D.mmul (D.mvar U.elements var_arch_regs)
                    (D.mvar U.dimensionless var_arch_pes)));
            D.of_mono
              (D.mscale U.um2 tech.Tech.area_mac
                 (D.mvar U.dimensionless var_arch_pes));
            D.of_mono
              (D.mmul
                 (D.mconst area_per_word tech.Tech.area_sram_word)
                 (D.mvar U.elements var_arch_sram));
          ]
      in
      [
        capacity "reg-capacity" reg_footprint (D.mvar U.elements var_arch_regs);
        capacity "sram-capacity" sram_footprint (D.mvar U.elements var_arch_sram);
        capacity "pe-count" (D.of_mono spatial)
          (D.mvar U.dimensionless var_arch_pes);
        ("area", D.le ctx ~name:"area" area (D.mconst U.um2 area_budget));
      ]
  in
  let lower_bounds =
    let bound (v, u) =
      let name = Printf.sprintf "bound:%s" v in
      (name, D.le ctx ~name (D.of_mono (D.mconst u 1.0)) (D.mvar u v))
    in
    let trip_vars =
      List.concat_map
        (fun d ->
          List.map
            (fun level -> (Level.trip_var ~level ~dim:d, U.dimensionless))
            [ 0; 1; 2; 3 ])
        tileable
    in
    let arch_vars =
      match arch_mode with
      | Fixed _ -> []
      | Codesign _ ->
        [
          (var_arch_regs, U.elements);
          (var_arch_sram, U.elements);
          (var_arch_pes, U.dimensionless);
        ]
    in
    List.map bound (trip_vars @ arch_vars)
  in
  let extent_eqs =
    List.map
      (fun d ->
        let product =
          List.fold_left
            (fun acc level -> M.mul acc (M.var (Level.trip_var ~level ~dim:d)))
            M.one [ 0; 1; 2; 3 ]
        in
        let name = Printf.sprintf "extent:%s" d in
        ( name,
          D.eq ctx ~name
            (D.mono U.dimensionless product)
            (D.mconst U.dimensionless (float_of_int (Nest.extent nest d))) ))
      tileable
  in
  let energy =
    (* Each MAC makes 4 register accesses (two operand reads, an
       accumulator read and write), so [4 * macs] counts words moved. *)
    let mac_term =
      D.add ctx ~what:"MAC energy"
        (D.of_mono (D.mmul eps_r (D.mconst U.elements (4.0 *. macs))))
        (D.of_mono (D.mconst U.pj (tech.Tech.energy_mac *. macs)))
    in
    D.sum ctx ~what:"energy" U.pj
      [
        mac_term;
        D.mul_mono eps_r register_side;
        D.mul_mono eps_s sram_side;
        D.scale unit_access_energy tech.Tech.energy_dram dram_side;
      ]
  in
  let delay_constraints () =
    let t = D.mvar U.cycles var_delay in
    let compute_delay =
      (* macs / (PEs used): one MAC per PE per cycle, so the quotient is a
         cycle count. *)
      D.of_mono
        (D.mono U.cycles (M.scale macs (M.pow spatial_product (-1.0))))
    in
    (* Bandwidths are words per cycle; dividing traffic by them yields
       cycles. *)
    let per_word = U.div U.cycles U.elements in
    match comm with
    | Archspec.Link.Overlapped ->
      [
        ("delay-compute", D.le ctx ~name:"delay-compute" compute_delay t);
        ( "delay-sram",
          D.le ctx ~name:"delay-sram"
            (D.scale per_word (1.0 /. tech.Tech.sram_bandwidth) sram_side)
            t );
        ( "delay-dram",
          D.le ctx ~name:"delay-dram"
            (D.scale per_word (1.0 /. tech.Tech.dram_bandwidth) dram_side)
            t );
      ]
    | Archspec.Link.Comm_aware ->
      (* Per-level, per-direction link occupancy bounds (DESIGN §16).
         [cycles_per_word] folds the burst overhead into the coefficient
         — [traffic/bw + (traffic/burst)*ovh] with fractional bursts —
         so each bound stays a posynomial-vs-monomial epigraph
         constraint.  The quantized ([ceil]) burst count is evaluation-
         side only (Accmodel / refsim); fractional bursts lower-bound it,
         keeping the relaxation sound.  Directions with no traffic (a
         nest with no read-write tensor has empty write-back sums) are
         skipped: an empty posynomial is not a DGP constraint. *)
      let links = tech.Tech.links in
      let chan name link traffic =
        if Symexpr.Posynomial.terms (D.posy traffic) = [] then None
        else
          Some
            ( name,
              D.le ctx ~name
                (D.scale per_word (Archspec.Link.cycles_per_word link) traffic)
                t )
      in
      (* The register operand path moves [4 * macs] words spread over the
         used PEs; like compute, it scales with the reciprocal spatial
         product. *)
      let reg_delay =
        D.of_mono
          (D.mono U.cycles
             (M.scale
                (4.0 *. macs
                *. Archspec.Link.cycles_per_word tech.Tech.links.Archspec.Link.reg)
                (M.pow spatial_product (-1.0))))
      in
      ("delay-compute", D.le ctx ~name:"delay-compute" compute_delay t)
      :: ("delay-reg", D.le ctx ~name:"delay-reg" reg_delay t)
      :: List.filter_map
           (fun c -> c)
           [
             chan "delay-dram-rd" links.Archspec.Link.dram dram_to_sram;
             chan "delay-dram-wr" links.Archspec.Link.dram sram_to_dram;
             chan "delay-noc-rd" links.Archspec.Link.noc sram_to_reg;
             chan "delay-noc-wr" links.Archspec.Link.noc reg_to_sram;
           ]
  in
  let lower ~expected d = D.objective ctx ~expected d in
  let problem =
    match objective with
    | Energy ->
      Gp.Problem.make
        ~objective:(lower ~expected:(objective_unit Energy) energy)
        ~ineqs:(base_constraints @ lower_bounds)
        ~eqs:extent_eqs ()
    | Delay ->
      Gp.Problem.make
        ~objective:
          (lower ~expected:(objective_unit Delay)
             (D.of_mono (D.mvar U.cycles var_delay)))
        ~ineqs:(delay_constraints () @ base_constraints @ lower_bounds)
        ~eqs:extent_eqs ()
    | Edp ->
      (* Energy-delay product: posynomial times the epigraph variable is
         still a posynomial, so EDP stays inside DGP. *)
      Gp.Problem.make
        ~objective:
          (lower ~expected:(objective_unit Edp)
             (D.mul_mono (D.mvar U.cycles var_delay) energy))
        ~ineqs:(delay_constraints () @ base_constraints @ lower_bounds)
        ~eqs:extent_eqs ()
  in
  {
    problem;
    nest;
    choice;
    analysis;
    objective;
    arch_mode;
    comm;
    tileable;
    pinned;
    provenance;
    unit_diagnostics = D.diagnostics ctx;
  }

let lint instance =
  instance.unit_diagnostics
  @ Analysis.Discipline.check ~provenance:instance.provenance instance.problem

let solution_env instance solution var =
  match List.assoc_opt var instance.pinned with
  | Some v -> v
  | None -> begin
    match List.assoc_opt var solution.Gp.Solver.values with Some v -> v | None -> 1.0
  end

let cumulative instance solution dim ~level =
  let env = solution_env instance solution in
  let rec go l acc =
    if l > level then acc else go (l + 1) (acc *. env (Level.trip_var ~level:l ~dim))
  in
  go 0 1.0
