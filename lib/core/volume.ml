module Nest = Workload.Nest
module Level = Mapspace.Level
module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module FP = Symexpr.Footprint
module AD = Symexpr.Affine_dim

type volume = { prefix : M.t; body : FP.t }

let volume_posynomial v = P.mul_monomial v.prefix (FP.to_posynomial v.body)

let volume_eval_exact env v = M.eval env v.prefix *. FP.eval_exact env v.body

type tensor_volumes = {
  tensor : string;
  read_write : bool;
  register_footprint : FP.t;
  sram_footprint : FP.t;
  sram_to_reg : volume;
  dram_to_sram : volume;
}

type t = {
  nest : Nest.t;
  pe_perm : string list;
  dram_perm : string list;
  per_tensor : tensor_volumes list;
}

let base_var dim = M.var (Level.trip_var ~level:Level.register_level ~dim)

let register_tile_footprint tensor =
  let dim_of_projection proj =
    let terms = List.map (fun { Nest.stride; iter } -> (stride, base_var iter)) proj in
    let strides = List.fold_left (fun a { Nest.stride; _ } -> a + stride) 0 proj in
    AD.make terms (1 - strides)
  in
  FP.make (List.map dim_of_projection tensor.Nest.projections)

(* [replace c -> c_level * c] for one dim: every extent monomial of the
   dim is a product of that dim's per-level trip variables, so extending
   through the always-present level-0 variable extends the whole extent. *)
let extend_dim ~level dim fp =
  let t0 = Level.trip_var ~level:Level.register_level ~dim in
  let tl = Level.trip_var ~level ~dim in
  FP.subst t0 (M.mul (M.var t0) (M.var tl)) fp

let construct ~level ~perm ~tensor df_lower =
  let present dim = Nest.tensor_mentions tensor dim in
  let step (df, dv_body, dv_prefix, can_hoist) it =
    let trip = M.var (Level.trip_var ~level ~dim:it) in
    if can_hoist then
      if present it then
        (* Innermost present iterator: fold the sliding-window union into
           both footprint and volume; hoisting stops here. *)
        (extend_dim ~level it df, extend_dim ~level it dv_body, dv_prefix, false)
      else (df, dv_body, dv_prefix, true)
    else if present it then
      (extend_dim ~level it df, dv_body, M.mul dv_prefix trip, false)
    else (df, dv_body, M.mul dv_prefix trip, false)
  in
  let df, body, prefix, _ =
    List.fold_left step (df_lower, df_lower, M.one, true) (List.rev perm)
  in
  (df, { prefix; body })

let check_perm nest what perm =
  let dims = Nest.dim_names nest in
  let rec distinct = function
    | [] -> true
    | d :: rest -> (not (List.mem d rest)) && distinct rest
  in
  if not (distinct perm) then
    invalid_arg (Printf.sprintf "Volume.analyze: duplicate dim in %s" what);
  List.iter
    (fun d ->
      if not (List.mem d dims) then
        invalid_arg (Printf.sprintf "Volume.analyze: %s mentions undeclared dim %S" what d))
    perm

let analyze nest ~pe_perm ~dram_perm =
  check_perm nest "pe_perm" pe_perm;
  check_perm nest "dram_perm" dram_perm;
  let all_dims = Nest.dim_names nest in
  let analyze_tensor tensor =
    let df0 = register_tile_footprint tensor in
    let df1, fill1 =
      construct ~level:Level.pe_temporal_level ~perm:pe_perm ~tensor df0
    in
    (* Spatial level: every dim may be parallelized; present dims extend
       the SRAM-resident footprint. *)
    let df2 =
      List.fold_left
        (fun fp dim -> extend_dim ~level:Level.spatial_level dim fp)
        df1 all_dims
    in
    (* SRAM->register fills replay for present spatial dims (absent dims
       multicast) and for every DRAM-level trip count. *)
    let sram_to_reg =
      let spatial_mult =
        List.fold_left
          (fun acc dim ->
            if Nest.tensor_mentions tensor dim then
              M.mul acc (M.var (Level.trip_var ~level:Level.spatial_level ~dim))
            else acc)
          M.one all_dims
      in
      let dram_mult =
        List.fold_left
          (fun acc dim ->
            M.mul acc (M.var (Level.trip_var ~level:Level.dram_temporal_level ~dim)))
          M.one all_dims
      in
      { fill1 with prefix = M.mul fill1.prefix (M.mul spatial_mult dram_mult) }
    in
    let _df3, dram_to_sram =
      construct ~level:Level.dram_temporal_level ~perm:dram_perm ~tensor df2
    in
    {
      tensor = tensor.Nest.tensor_name;
      read_write = tensor.Nest.read_write;
      register_footprint = df0;
      sram_footprint = df2;
      sram_to_reg;
      dram_to_sram;
    }
  in
  { nest; pe_perm; dram_perm; per_tensor = List.map analyze_tensor (Nest.tensors nest) }

(* ------------------------------------------------------------------ *)
(* Arbitrary level structures                                         *)
(* ------------------------------------------------------------------ *)

type level_spec = Temporal of string list | Spatial

type boundary = { level : int; footprint : FP.t; fill : volume }

type general = {
  g_nest : Nest.t;
  g_levels : level_spec list;
  g_tensors : (string * bool * boundary list) list;
}

let analyze_general nest ~levels =
  (match levels with
  | Temporal _ :: _ -> ()
  | Spatial :: _ | [] ->
    invalid_arg "Volume.analyze_general: level 0 must be temporal");
  List.iteri
    (fun i spec ->
      match spec with
      | Temporal perm -> check_perm nest (Printf.sprintf "level %d" i) perm
      | Spatial -> ())
    levels;
  let all_dims = Nest.dim_names nest in
  let specs = Array.of_list levels in
  let nlevels = Array.length specs in
  (* Trip counts of every level outer than [l] multiply a fill volume;
     spatial levels only through dims present in the tensor. *)
  let outer_multiplier tensor ~level =
    let acc = ref M.one in
    for l = level + 1 to nlevels - 1 do
      let dims =
        match specs.(l) with
        | Temporal _ -> all_dims
        | Spatial -> List.filter (Nest.tensor_mentions tensor) all_dims
      in
      List.iter
        (fun dim -> acc := M.mul !acc (M.var (Level.trip_var ~level:l ~dim)))
        dims
    done;
    !acc
  in
  let analyze_tensor tensor =
    let df = ref (register_tile_footprint tensor) in
    let boundaries = ref [] in
    for l = 1 to nlevels - 1 do
      match specs.(l) with
      | Spatial ->
        df := List.fold_left (fun fp dim -> extend_dim ~level:l dim fp) !df all_dims
      | Temporal perm ->
        let footprint = !df in
        let df_l, fill0 = construct ~level:l ~perm ~tensor !df in
        df := df_l;
        let fill =
          { fill0 with prefix = M.mul fill0.prefix (outer_multiplier tensor ~level:l) }
        in
        boundaries := { level = l; footprint; fill } :: !boundaries
    done;
    (tensor.Nest.tensor_name, tensor.Nest.read_write, List.rev !boundaries)
  in
  { g_nest = nest; g_levels = levels; g_tensors = List.map analyze_tensor (Nest.tensors nest) }

let fingerprint t =
  let volume_string v = P.to_string (volume_posynomial v) in
  String.concat "|"
    (List.map
       (fun tv ->
         Printf.sprintf "%s:%s;%s" tv.tensor
           (volume_string tv.sram_to_reg)
           (volume_string tv.dram_to_sram))
       t.per_tensor)
