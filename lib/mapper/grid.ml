module Arch = Archspec.Arch
module Tech = Archspec.Technology

type config = {
  trials_per_point : int;
  seed : int;
  min_regs : int;
  max_regs : int;
  min_sram : int;
  max_sram : int;
}

let default_config =
  {
    trials_per_point = 2000;
    seed = 42;
    min_regs = 4;
    max_regs = 1024;
    min_sram = 1024;
    max_sram = 256 * 1024;
  }

type point = {
  arch : Arch.t;
  best : (Mapspace.Mapping.t * Accmodel.Evaluate.t) option;
}

type result = { points : point list; winner : point option; total_trials : int }

let powers_of_two lo hi =
  let rec go v acc = if v > hi then List.rev acc else go (v * 2) (v :: acc) in
  go lo []

let architectures tech config ~area_budget =
  List.concat_map
    (fun registers ->
      List.filter_map
        (fun sram_words ->
          let fixed = tech.Tech.area_sram_word *. float_of_int sram_words in
          let per_pe = Tech.pe_area tech ~registers in
          let pes = int_of_float ((area_budget -. fixed) /. per_pe) in
          if pes < 1 then None
          else
            Some
              (Arch.make
                 ~name:(Printf.sprintf "grid-r%d-s%d" registers sram_words)
                 ~pes ~registers ~sram_words))
        (powers_of_two config.min_sram config.max_sram))
    (powers_of_two config.min_regs config.max_regs)

let search ?(config = default_config) tech ~area_budget criterion nest =
  let archs = architectures tech config ~area_budget in
  let total_trials = ref 0 in
  let points =
    List.mapi
      (fun i arch ->
        let search_config =
          {
            Search.max_trials = config.trials_per_point;
            victory_condition = config.trials_per_point;
            seed = config.seed + i;
          }
        in
        let r = Search.search ~config:search_config tech arch criterion nest in
        total_trials := !total_trials + r.Search.trials;
        { arch; best = r.Search.best })
      archs
  in
  let winner =
    List.fold_left
      (fun acc point ->
        match (acc, point.best) with
        | None, Some _ -> Some point
        | Some { best = Some (_, incumbent); _ }, Some (_, challenger)
          when Search.score criterion challenger < Search.score criterion incumbent ->
          Some point
        | acc, _ -> acc)
      None points
  in
  { points; winner; total_trials = !total_trials }
