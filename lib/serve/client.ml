type t = { fd : Unix.file_descr; max_frame : int }

let unix_addr path = Unix.ADDR_UNIX path
let tcp_addr port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let connect ?(max_frame = Wire.default_max_frame) addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  match Unix.connect fd addr with
  | () -> Ok { fd; max_frame }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Printf.sprintf "client: cannot connect: %s" (Unix.error_message e))

let receive t =
  match Wire.read_frame ~max_frame:t.max_frame t.fd with
  | Error e -> Error ("client: " ^ Wire.describe e)
  | Ok payload -> Protocol.decode_response payload

let request_raw t payload =
  match Wire.write_frame t.fd payload with
  | () -> receive t
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "client: send failed: %s" (Unix.error_message e))

let request t req = request_raw t (Protocol.encode_request req)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
