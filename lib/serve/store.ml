module J = Obs.Json

type t = { root : string }

let entry_version = 1

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let open_ root =
  match mkdir_p root with
  | () ->
    if Sys.is_directory root then Ok { root }
    else Error (Printf.sprintf "store: %s is not a directory" root)
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "store: cannot create %s: %s" root (Unix.error_message e))

let root t = t.root

let digest ~config ~request_key =
  Sweep.Journal.fingerprint ~config ~problem_key:request_key

let entry_path t ~config ~request_key =
  let d = digest ~config ~request_key in
  Filename.concat (Filename.concat t.root (String.sub d 0 2)) (d ^ ".json")

let encode ~config ~request_key payload =
  let b = Buffer.create (String.length payload + 256) in
  J.obj b
    [
      (fun b -> J.field b "v" (fun b -> J.int b entry_version));
      (fun b -> J.field b "config" (fun b -> J.str b config));
      (fun b -> J.field b "request_key" (fun b -> J.str b request_key));
      (fun b -> J.field b "payload" (fun b -> J.str b payload));
    ];
  Buffer.add_char b '\n';
  Buffer.contents b

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))

let get t ~config ~request_key =
  match read_file (entry_path t ~config ~request_key) with
  | None -> None
  | Some raw -> (
    match J.parse (String.trim raw) with
    | Error _ -> None (* torn or corrupted entry: a miss, not a crash *)
    | Ok v -> (
      try
        let f = match v with J.Obj f -> f | _ -> failwith "not an object" in
        let find k =
          match List.assoc_opt k f with
          | Some v -> v
          | None -> failwith "missing field"
        in
        let str = function J.Str s -> s | _ -> failwith "expected string" in
        let int = function J.Int i -> i | _ -> failwith "expected int" in
        if
          int (find "v") = entry_version
          && String.equal (str (find "config")) config
          && String.equal (str (find "request_key")) request_key
        then Some (str (find "payload"))
        else None
      with Failure _ -> None))

(* Distinct temp names per writer: concurrent puts (even of different
   keys) must never share a temp file. *)
let tmp_seq = Atomic.make 0

let put t ~config ~request_key payload =
  let path = entry_path t ~config ~request_key in
  mkdir_p (Filename.dirname path);
  let tmp =
    Filename.concat t.root
      (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add tmp_seq 1))
  in
  let oc = open_out_bin tmp in
  (match output_string oc (encode ~config ~request_key payload) with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  (* rename within one directory tree: atomic on POSIX, so readers see
     either the old entry (or nothing) or the complete new one. *)
  Unix.rename tmp path
