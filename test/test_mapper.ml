(* Tests for the search-based mapper baseline: random-mapping validity,
   search termination knobs, and optimality on an exhaustively enumerable
   space. *)

module S = Mapper.Search
module Arch = Archspec.Arch
module Mapping = Mapspace.Mapping

let tech = Archspec.Technology.table3

let tiny_nest = Workload.Matmul.nest ~name:"tiny" ~ni:4 ~nj:4 ~nk:2 ()

let tiny_arch = Arch.make ~name:"tiny" ~pes:4 ~registers:16 ~sram_words:64

let test_random_mapping_valid () =
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 50 do
    let m = S.random_mapping rng tiny_nest in
    Alcotest.(check (result unit string)) "valid" (Ok ()) (Mapping.validate tiny_nest m)
  done

let test_search_deterministic () =
  let config = { S.max_trials = 500; victory_condition = 500; seed = 3 } in
  let r1 = S.search ~config tech tiny_arch S.Min_energy tiny_nest in
  let r2 = S.search ~config tech tiny_arch S.Min_energy tiny_nest in
  match (r1.S.best, r2.S.best) with
  | Some (_, e1), Some (_, e2) ->
    Alcotest.(check (float 0.0))
      "same result" e1.Accmodel.Evaluate.energy_pj e2.Accmodel.Evaluate.energy_pj
  | _ -> Alcotest.fail "search found nothing"

let test_trial_budget () =
  let config = { S.max_trials = 37; victory_condition = 1000; seed = 1 } in
  let r = S.search ~config tech tiny_arch S.Min_energy tiny_nest in
  Alcotest.(check int) "stops at budget" 37 r.S.trials

let test_victory_condition () =
  let config = { S.max_trials = 100000; victory_condition = 50; seed = 1 } in
  let r = S.search ~config tech tiny_arch S.Min_energy tiny_nest in
  (* The search must stop well before the trial budget. *)
  Alcotest.(check bool)
    (Printf.sprintf "stopped early (%d trials)" r.S.trials)
    true (r.S.trials < 100000)

let test_exhaustive_is_lower_bound () =
  let exact =
    match S.exhaustive tech tiny_arch S.Min_energy tiny_nest ~max_points:2_000_000 with
    | Some (_, e) -> e.Accmodel.Evaluate.energy_pj
    | None -> Alcotest.fail "exhaustive found nothing"
  in
  let config = { S.max_trials = 4000; victory_condition = 4000; seed = 5 } in
  let r = S.search ~config tech tiny_arch S.Min_energy tiny_nest in
  match r.S.best with
  | None -> Alcotest.fail "search found nothing"
  | Some (_, e) ->
    let found = e.Accmodel.Evaluate.energy_pj in
    Alcotest.(check bool)
      (Printf.sprintf "exhaustive %g <= search %g" exact found)
      true
      (exact <= found +. 1e-9);
    (* With thousands of trials on a tiny space, the search should land
       close to the optimum (deterministic given the seed). *)
    Alcotest.(check bool)
      (Printf.sprintf "search within 10%% (%g vs %g)" found exact)
      true
      (found <= exact *. 1.10)

let test_exhaustive_space_guard () =
  let nest = Workload.Conv.to_nest (Workload.Conv.make ~name:"big" ~k:64 ~c:64 ~hw:56 ~rs:3 ()) in
  match S.exhaustive tech tiny_arch S.Min_energy nest ~max_points:1000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected the space guard to trip"

let test_delay_criterion () =
  let config = { S.max_trials = 2000; victory_condition = 2000; seed = 9 } in
  let r = S.search ~config tech tiny_arch S.Min_delay tiny_nest in
  match r.S.best with
  | None -> Alcotest.fail "search found nothing"
  | Some (_, e) ->
    Alcotest.(check bool)
      "score is cycles" true
      (S.score S.Min_delay e = e.Accmodel.Evaluate.cycles)

let test_parallel_search () =
  let config = { S.max_trials = 2000; victory_condition = 2000; seed = 11 } in
  let parallel = S.search_parallel ~config ~domains:4 tech tiny_arch S.Min_energy tiny_nest in
  Alcotest.(check int) "budget split exactly" 2000 parallel.S.trials;
  (* Deterministic for a fixed (config, domains) pair. *)
  let again = S.search_parallel ~config ~domains:4 tech tiny_arch S.Min_energy tiny_nest in
  (match (parallel.S.best, again.S.best) with
  | Some (_, a), Some (_, b) ->
    Alcotest.(check (float 0.0))
      "deterministic" a.Accmodel.Evaluate.energy_pj b.Accmodel.Evaluate.energy_pj
  | _ -> Alcotest.fail "parallel search found nothing");
  (* One domain degrades to the sequential search. *)
  let seq = S.search ~config tech tiny_arch S.Min_energy tiny_nest in
  let one = S.search_parallel ~config ~domains:1 tech tiny_arch S.Min_energy tiny_nest in
  match (seq.S.best, one.S.best) with
  | Some (_, a), Some (_, b) ->
    Alcotest.(check (float 0.0))
      "domains=1 = sequential" a.Accmodel.Evaluate.energy_pj b.Accmodel.Evaluate.energy_pj
  | _ -> Alcotest.fail "searches found nothing"

(* Degenerate splits: with more domains than trials, the per-stream
   budgets used to collapse to zero trials and victory shares of one,
   changing termination semantics versus the sequential path.  The
   domain count is clamped to the budget, so tiny budgets must behave
   exactly like the sequential search, and the total never exceeds the
   budget. *)
let test_parallel_tiny_budgets () =
  List.iter
    (fun max_trials ->
      let config = { S.max_trials; victory_condition = 100; seed = 7 } in
      let seq = S.search ~config tech tiny_arch S.Min_energy tiny_nest in
      let par =
        S.search_parallel ~config ~domains:8 tech tiny_arch S.Min_energy tiny_nest
      in
      Alcotest.(check int)
        (Printf.sprintf "budget %d: same trial count" max_trials)
        seq.S.trials par.S.trials;
      Alcotest.(check int)
        (Printf.sprintf "budget %d: same valid count" max_trials)
        seq.S.valid_trials par.S.valid_trials;
      match (seq.S.best, par.S.best) with
      | None, None -> ()
      | Some (_, a), Some (_, b) ->
        Alcotest.(check (float 0.0))
          (Printf.sprintf "budget %d: same best" max_trials)
          a.Accmodel.Evaluate.energy_pj b.Accmodel.Evaluate.energy_pj
      | _ -> Alcotest.failf "budget %d: best presence differs" max_trials)
    [ 0; 1 ];
  let config = { S.max_trials = 5; victory_condition = 100; seed = 7 } in
  let par = S.search_parallel ~config ~domains:8 tech tiny_arch S.Min_energy tiny_nest in
  Alcotest.(check bool)
    (Printf.sprintf "5-trial budget spends %d <= 5" par.S.trials)
    true (par.S.trials <= 5)

(* --- grid-search co-design baseline --- *)

let test_grid_architectures () =
  let config =
    {
      Mapper.Grid.default_config with
      Mapper.Grid.min_regs = 8;
      max_regs = 32;
      min_sram = 1024;
      max_sram = 4096;
    }
  in
  let archs = Mapper.Grid.architectures tech config ~area_budget:500000.0 in
  (* 3 register sizes x 3 SRAM sizes, all affordable at this budget. *)
  Alcotest.(check int) "grid size" 9 (List.length archs);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within budget" a.Archspec.Arch.arch_name)
        true
        (Archspec.Arch.area tech a <= 500000.0);
      (* The PE count is maximal: one more PE would not fit. *)
      let one_more =
        Archspec.Arch.make ~name:"x" ~pes:(a.Archspec.Arch.pe_count + 1)
          ~registers:a.Archspec.Arch.registers_per_pe
          ~sram_words:a.Archspec.Arch.sram_words
      in
      Alcotest.(check bool) "PE count maximal" true
        (Archspec.Arch.area tech one_more > 500000.0))
    archs

let test_grid_budget_filter () =
  (* A budget below one PE + minimal SRAM leaves an empty grid. *)
  let config =
    { Mapper.Grid.default_config with Mapper.Grid.min_sram = 65536; max_sram = 65536 }
  in
  let archs = Mapper.Grid.architectures tech config ~area_budget:100000.0 in
  Alcotest.(check int) "empty" 0 (List.length archs)

let test_grid_search_runs () =
  let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 () in
  let config =
    {
      Mapper.Grid.trials_per_point = 300;
      seed = 3;
      min_regs = 8;
      max_regs = 32;
      min_sram = 256;
      max_sram = 1024;
    }
  in
  let r = Mapper.Grid.search ~config tech ~area_budget:200000.0 S.Min_energy nest in
  Alcotest.(check bool) "some points" true (List.length r.Mapper.Grid.points > 0);
  Alcotest.(check bool)
    "trials accounted" true
    (r.Mapper.Grid.total_trials
    = 300 * List.length r.Mapper.Grid.points);
  match r.Mapper.Grid.winner with
  | None -> Alcotest.fail "no winner"
  | Some { Mapper.Grid.best = Some (_, m); arch; _ } ->
    (* The winner's score is minimal across all points. *)
    List.iter
      (fun (p : Mapper.Grid.point) ->
        match p.Mapper.Grid.best with
        | Some (_, m') ->
          Alcotest.(check bool) "winner minimal" true
            (m.Accmodel.Evaluate.energy_pj <= m'.Accmodel.Evaluate.energy_pj +. 1e-9)
        | None -> ())
      r.Mapper.Grid.points;
    Alcotest.(check bool) "winner within budget" true
      (Archspec.Arch.area tech arch <= 200000.0)
  | Some { Mapper.Grid.best = None; _ } -> Alcotest.fail "winner without mapping"

let () =
  Alcotest.run "mapper"
    [
      ( "search",
        [
          Alcotest.test_case "random mappings valid" `Quick test_random_mapping_valid;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "trial budget" `Quick test_trial_budget;
          Alcotest.test_case "victory condition" `Quick test_victory_condition;
          Alcotest.test_case "exhaustive lower bound" `Slow test_exhaustive_is_lower_bound;
          Alcotest.test_case "space guard" `Quick test_exhaustive_space_guard;
          Alcotest.test_case "delay criterion" `Quick test_delay_criterion;
          Alcotest.test_case "parallel search" `Quick test_parallel_search;
          Alcotest.test_case "parallel tiny budgets" `Quick test_parallel_tiny_budgets;
        ] );
      ( "grid",
        [
          Alcotest.test_case "architecture grid" `Quick test_grid_architectures;
          Alcotest.test_case "budget filter" `Quick test_grid_budget_filter;
          Alcotest.test_case "search" `Quick test_grid_search_runs;
        ] );
    ]
