type level_constraint = {
  c_level : int;
  fixed_factors : (string * int) list;
  max_factors : (string * int) list;
  perm_prefix : string list;
}

type t = level_constraint list

let empty = []

let level_constraint ~level ?(fixed = []) ?(max_factors = []) ?(perm_prefix = []) () =
  List.iter
    (fun (dim, f) ->
      if f < 1 then
        invalid_arg
          (Printf.sprintf "Constraints.level_constraint: factor %d for dim %S" f dim))
    (fixed @ max_factors);
  { c_level = level; fixed_factors = fixed; max_factors; perm_prefix }

let rec is_prefix prefix perm =
  match (prefix, perm) with
  | [], _ -> true
  | p :: ps, q :: qs -> String.equal p q && is_prefix ps qs
  | _ :: _, [] -> false

let violations_of constraint_ mapping =
  if constraint_.c_level >= Mapping.num_levels mapping then
    [ Printf.sprintf "level %d does not exist in the mapping" constraint_.c_level ]
  else begin
    let level = constraint_.c_level in
    let fixed =
      List.filter_map
        (fun (dim, expected) ->
          let actual = Mapping.factor mapping ~level dim in
          if actual <> expected then
            Some
              (Printf.sprintf "level %d: %s=%d, constrained to %d" level dim actual
                 expected)
          else None)
        constraint_.fixed_factors
    in
    let capped =
      List.filter_map
        (fun (dim, bound) ->
          let actual = Mapping.factor mapping ~level dim in
          if actual > bound then
            Some
              (Printf.sprintf "level %d: %s=%d exceeds the cap %d" level dim actual bound)
          else None)
        constraint_.max_factors
    in
    let perm =
      if constraint_.perm_prefix = [] then []
      else begin
        let lvl = Mapping.level mapping level in
        match lvl.Mapping.kind with
        | Level.Spatial ->
          [ Printf.sprintf "level %d is spatial: permutation prefix meaningless" level ]
        | Level.Temporal ->
          if is_prefix constraint_.perm_prefix lvl.Mapping.perm then []
          else
            [
              Printf.sprintf "level %d: permutation does not start with %s" level
                (String.concat " " constraint_.perm_prefix);
            ]
      end
    in
    fixed @ capped @ perm
  end

let violations t mapping = List.concat_map (fun c -> violations_of c mapping) t

let satisfies t mapping = violations t mapping = []

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "level %d:" c.c_level;
      List.iter (fun (d, f) -> Format.fprintf ppf " %s=%d" d f) c.fixed_factors;
      List.iter (fun (d, f) -> Format.fprintf ppf " %s<=%d" d f) c.max_factors;
      if c.perm_prefix <> [] then
        Format.fprintf ppf " perm^=%s" (String.concat "" c.perm_prefix))
    t;
  Format.fprintf ppf "@]"
