module O = Thistle.Optimize
module F = Thistle.Formulate
module Arch = Archspec.Arch
module J = Obs.Json

let version = 1

type opts = { top_choices : int; max_choices : int; node_nm : float }

let default_opts =
  {
    top_choices = O.default_config.O.top_choices;
    max_choices = O.default_config.O.max_choices;
    node_nm = Archspec.Technology.reference_node_nm;
  }

type request =
  | Optimize of {
      layer : string;
      objective : F.objective;
      arch : Arch.t;
      opts : opts;
    }
  | Codesign of {
      layer : string;
      objective : F.objective;
      area : float option;
      opts : opts;
    }
  | Pipeline of { pipeline : string; objective : F.objective; opts : opts }
  | Metrics

type reject_kind = Rejected | Bad_request | Failed

type response =
  | Payload of { body : string; cached : bool }
  | Refused of { kind : reject_kind; message : string }

let objective_name = function
  | F.Energy -> "energy"
  | F.Delay -> "delay"
  | F.Edp -> "edp"

let objective_of = function
  | "energy" -> F.Energy
  | "delay" -> F.Delay
  | "edp" -> F.Edp
  | s -> failwith (Printf.sprintf "unknown objective %S" s)

let describe = function
  | Optimize { layer; objective; arch; _ } ->
    Printf.sprintf "optimize:%s:%s:%s" layer (objective_name objective)
      arch.Arch.arch_name
  | Codesign { layer; objective; _ } ->
    Printf.sprintf "codesign:%s:%s" layer (objective_name objective)
  | Pipeline { pipeline; objective; _ } ->
    Printf.sprintf "pipeline:%s:%s" pipeline (objective_name objective)
  | Metrics -> "metrics"

(* Floats travel as IEEE-754 bit patterns in hex, like journal entries,
   so requests re-encode byte-identically and NaN payloads survive. *)
let bits v = Printf.sprintf "%Lx" (Int64.bits_of_float v)

let of_bits s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some b -> Int64.float_of_bits b
  | None -> failwith (Printf.sprintf "bad float bits %S" s)

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let j_str s b = J.str b s
let j_int i b = J.int b i
let field name v b = J.field b name v
let obj fields b = J.obj b fields

let to_string f =
  let b = Buffer.create 256 in
  f b;
  Buffer.contents b

let opts_fields o =
  [
    field "top" (j_int o.top_choices);
    field "max" (j_int o.max_choices);
    field "node" (j_str (bits o.node_nm));
  ]

let encode_request req =
  to_string
  @@ obj
       (field "v" (j_int version)
       ::
       (match req with
       | Optimize { layer; objective; arch; opts } ->
         [
           field "req" (j_str "optimize");
           field "layer" (j_str layer);
           field "objective" (j_str (objective_name objective));
           field "arch"
             (obj
                [
                  field "name" (j_str arch.Arch.arch_name);
                  field "pes" (j_int arch.Arch.pe_count);
                  field "regs" (j_int arch.Arch.registers_per_pe);
                  field "sram" (j_int arch.Arch.sram_words);
                ]);
         ]
         @ opts_fields opts
       | Codesign { layer; objective; area; opts } ->
         [
           field "req" (j_str "codesign");
           field "layer" (j_str layer);
           field "objective" (j_str (objective_name objective));
         ]
         @ (match area with
           | None -> []
           | Some a -> [ field "area" (j_str (bits a)) ])
         @ opts_fields opts
       | Pipeline { pipeline; objective; opts } ->
         [
           field "req" (j_str "pipeline");
           field "pipeline" (j_str pipeline);
           field "objective" (j_str (objective_name objective));
         ]
         @ opts_fields opts
       | Metrics -> [ field "req" (j_str "metrics") ]))

let encode_response resp =
  to_string
  @@ obj
       (field "v" (j_int version)
       ::
       (match resp with
       | Payload { body; cached } ->
         [
           field "ok"
             (obj
                [
                  field "cached" (j_int (if cached then 1 else 0));
                  field "body" (j_str body);
                ]);
         ]
       | Refused { kind; message } ->
         let kind_name =
           match kind with
           | Rejected -> "rejected"
           | Bad_request -> "bad_request"
           | Failed -> "failed"
         in
         [
           field "refused"
             (obj [ field "kind" (j_str kind_name); field "msg" (j_str message) ]);
         ]))

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

let fields = function J.Obj f -> f | _ -> failwith "not an object"

let find f k =
  match List.assoc_opt k f with
  | Some v -> v
  | None -> failwith (Printf.sprintf "missing field %S" k)

let int_of = function J.Int i -> i | _ -> failwith "expected an integer"
let str_of = function J.Str s -> s | _ -> failwith "expected a string"
let float_of v = of_bits (str_of v)

let check_version f =
  if int_of (find f "v") <> version then
    failwith
      (Printf.sprintf "protocol version mismatch (want %d, got %d)" version
         (int_of (find f "v")))

let opts_of f =
  {
    top_choices = int_of (find f "top");
    max_choices = int_of (find f "max");
    node_nm = float_of (find f "node");
  }

let wrap name decode line =
  match J.parse line with
  | Error m -> Error (name ^ ": " ^ m)
  | Ok v -> (
    try Ok (decode (fields v)) with Failure m -> Error (name ^ ": " ^ m))

let decode_request =
  wrap "request" (fun f ->
      check_version f;
      match str_of (find f "req") with
      | "optimize" ->
        let a = fields (find f "arch") in
        Optimize
          {
            layer = str_of (find f "layer");
            objective = objective_of (str_of (find f "objective"));
            arch =
              Arch.make
                ~name:(str_of (find a "name"))
                ~pes:(int_of (find a "pes"))
                ~registers:(int_of (find a "regs"))
                ~sram_words:(int_of (find a "sram"));
            opts = opts_of f;
          }
      | "codesign" ->
        Codesign
          {
            layer = str_of (find f "layer");
            objective = objective_of (str_of (find f "objective"));
            area = Option.map float_of (List.assoc_opt "area" f);
            opts = opts_of f;
          }
      | "pipeline" ->
        Pipeline
          {
            pipeline = str_of (find f "pipeline");
            objective = objective_of (str_of (find f "objective"));
            opts = opts_of f;
          }
      | "metrics" -> Metrics
      | s -> failwith (Printf.sprintf "unknown request kind %S" s))

let decode_response =
  wrap "response" (fun f ->
      check_version f;
      match (List.assoc_opt "ok" f, List.assoc_opt "refused" f) with
      | Some ok, None ->
        let ok_f = fields ok in
        Payload
          {
            body = str_of (find ok_f "body");
            cached = int_of (find ok_f "cached") <> 0;
          }
      | None, Some refused ->
        let r_f = fields refused in
        let kind =
          match str_of (find r_f "kind") with
          | "rejected" -> Rejected
          | "bad_request" -> Bad_request
          | "failed" -> Failed
          | s -> failwith (Printf.sprintf "unknown refusal kind %S" s)
        in
        Refused { kind; message = str_of (find r_f "msg") }
      | _ -> failwith "response carries none or both of ok/refused")
