module O = Thistle.Optimize
module F = Thistle.Formulate

let c_requests = Obs.Metrics.counter "serve.requests"
let c_hits = Obs.Metrics.counter "serve.cache_hits"
let c_misses = Obs.Metrics.counter "serve.cache_misses"
let c_rejected = Obs.Metrics.counter "serve.rejected"

type where = Unix_sock of string | Tcp of int

type config = {
  where : where;
  store_dir : string option;
  base : O.config;
  max_inflight : int;
  max_frame : int;
}

let default where =
  {
    where;
    store_dir = None;
    base = O.default_config;
    max_inflight = 8;
    max_frame = Wire.default_max_frame;
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  addr : Unix.sockaddr;
  store : Store.t option;
  adm : Robust.Admission.t;
  lock : Mutex.t;  (** guards [stopping], [conns], [threads] *)
  mutable stopping : bool;
  mutable next_conn : int;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  (* Single-flight per store digest: concurrent identical requests wait
     for the leader and then re-read the store, so one request set
     solves each distinct key once. *)
  flight_lock : Mutex.t;
  flight_cond : Condition.t;
  flight : (string, unit) Hashtbl.t;
}

let stopping t =
  Mutex.lock t.lock;
  let s = t.stopping in
  Mutex.unlock t.lock;
  s

(* ------------------------------------------------------------------ *)
(* Request resolution                                                 *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let validate_opts (o : Protocol.opts) =
  if o.Protocol.top_choices < 1 then Error "top_choices must be >= 1"
  else if o.Protocol.max_choices < 1 then Error "max_choices must be >= 1"
  else if (not (Float.is_finite o.Protocol.node_nm)) || o.Protocol.node_nm <= 0.0
  then Error "node_nm must be a positive finite float"
  else Ok ()

let nest_of_layer name =
  match Workload.Zoo.find name with
  | layer -> Ok (Workload.Conv.to_nest layer)
  | exception Not_found -> Error (Printf.sprintf "unknown layer %S" name)

let tech_of (o : Protocol.opts) =
  Archspec.Technology.scale_to_node Archspec.Technology.table3
    ~node_nm:o.Protocol.node_nm

(* A solve-type request resolves to its cache identity plus a thunk
   producing the rendered payload.  The request key and the payload are
   both pure functions of the decoded request and the base config. *)
let resolve base req =
  match req with
  | Protocol.Metrics -> assert false (* answered before resolution *)
  | Protocol.Optimize { layer; objective; arch; opts } ->
    let* () = validate_opts opts in
    let* nest = nest_of_layer layer in
    let config =
      {
        base with
        O.top_choices = opts.Protocol.top_choices;
        max_choices = opts.Protocol.max_choices;
      }
    in
    let tech = tech_of opts in
    let key = O.request_key ~config tech (F.Fixed arch) objective nest in
    Ok
      ( key,
        config,
        fun () ->
          Result.map
            (fun r -> Render.outcome ~tech r)
            (O.dataflow ~config tech arch objective nest) )
  | Protocol.Codesign { layer; objective; area; opts } ->
    let* () = validate_opts opts in
    let* nest = nest_of_layer layer in
    let config =
      {
        base with
        O.top_choices = opts.Protocol.top_choices;
        max_choices = opts.Protocol.max_choices;
      }
    in
    let tech = tech_of opts in
    let area_budget =
      match area with Some a -> a | None -> Archspec.Arch.eyeriss_area tech
    in
    let* () =
      if Float.is_finite area_budget && area_budget > 0.0 then Ok ()
      else Error "area budget must be a positive finite float"
    in
    let key =
      O.request_key ~config tech (F.Codesign { area_budget }) objective nest
    in
    Ok
      ( key,
        config,
        fun () ->
          Result.map
            (fun r -> Render.area_header area_budget ^ Render.outcome ~tech r)
            (O.codesign ~config tech ~area_budget objective nest) )
  | Protocol.Pipeline { pipeline; objective; opts } ->
    let* () = validate_opts opts in
    let* layers =
      match List.assoc_opt pipeline Workload.Zoo.pipelines with
      | Some layers -> Ok layers
      | None -> Error (Printf.sprintf "unknown pipeline %S" pipeline)
    in
    let nests = List.map Workload.Conv.to_nest layers in
    (* The CLI's pipeline command has no --top-choices; mirror it. *)
    let config = { base with O.max_choices = opts.Protocol.max_choices } in
    let tech = tech_of opts in
    let area_budget = Archspec.Arch.eyeriss_area tech in
    let key =
      String.concat "&"
        (Protocol.describe req
        :: List.map
             (fun nest ->
               O.request_key ~config tech
                 (F.Codesign { area_budget })
                 objective nest)
             nests)
    in
    Ok (key, config, fun () -> Ok (Render.pipeline ~config tech objective nests))

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let with_flight t key body =
  Mutex.lock t.flight_lock;
  while Hashtbl.mem t.flight key do
    Condition.wait t.flight_cond t.flight_lock
  done;
  Hashtbl.replace t.flight key ();
  Mutex.unlock t.flight_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.flight_lock;
      Hashtbl.remove t.flight key;
      Condition.broadcast t.flight_cond;
      Mutex.unlock t.flight_lock)
    body

let handle t req =
  Obs.Metrics.incr c_requests;
  match req with
  | Protocol.Metrics ->
    Protocol.Payload
      {
        body = Obs.Metrics.to_json (Obs.Metrics.snapshot ()) ^ "\n";
        cached = false;
      }
  | _ ->
    Robust.Admission.with_admission t.adm
      ~rejected:(fun () ->
        Obs.Metrics.incr c_rejected;
        Protocol.Refused
          {
            kind = Protocol.Rejected;
            message =
              Printf.sprintf "server at capacity (%d request(s) in flight)"
                (Robust.Admission.limit t.adm);
          })
      (fun () ->
        match resolve t.cfg.base req with
        | Error m -> Protocol.Refused { kind = Protocol.Bad_request; message = m }
        | Ok (request_key, config, compute) -> (
          let config_fp = O.config_fingerprint config in
          let digest = Store.digest ~config:config_fp ~request_key in
          with_flight t digest @@ fun () ->
          let cached =
            match t.store with
            | None -> None
            | Some store -> Store.get store ~config:config_fp ~request_key
          in
          match cached with
          | Some body ->
            Obs.Metrics.incr c_hits;
            Protocol.Payload { body; cached = true }
          | None -> (
            Obs.Metrics.incr c_misses;
            match
              Robust.guard ~inject:config.O.inject ~site:"serve"
                ~provenance:(Protocol.describe req) compute
            with
            | Error f ->
              Protocol.Refused
                { kind = Protocol.Failed; message = Robust.describe f }
            | Ok (Error m) ->
              Protocol.Refused { kind = Protocol.Failed; message = m }
            | Ok (Ok body) ->
              (match t.store with
              | Some store -> Store.put store ~config:config_fp ~request_key body
              | None -> ());
              Protocol.Payload { body; cached = false })))

(* ------------------------------------------------------------------ *)
(* Connection and accept loops                                        *)
(* ------------------------------------------------------------------ *)

let send fd resp =
  match Wire.write_frame fd (Protocol.encode_response resp) with
  | () -> true
  | exception Unix.Unix_error _ -> false

let conn_loop t id fd =
  let rec loop () =
    match Wire.read_frame ~max_frame:t.cfg.max_frame fd with
    | Error (Wire.Closed | Wire.Torn _) -> ()
    | Error (Wire.Oversized _ as e) ->
      (* The stream cannot be re-synchronized after a bad length
         prefix: answer once and drop the connection. *)
      ignore
        (send fd
           (Protocol.Refused
              { kind = Protocol.Bad_request; message = Wire.describe e }))
    | Ok payload ->
      let resp =
        match Protocol.decode_request payload with
        | Error m -> Protocol.Refused { kind = Protocol.Bad_request; message = m }
        | Ok req -> handle t req
      in
      if send fd resp then loop ()
  in
  (try loop ()
   with e ->
     Logs.warn (fun m ->
         m "serve: connection handler died: %s" (Printexc.to_string e)));
  Mutex.lock t.lock;
  Hashtbl.remove t.conns id;
  Mutex.unlock t.lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_loop t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    if stopping t then () else accept_loop t
  | exception Unix.Unix_error _ ->
    () (* listen socket closed or poisoned during stop *)
  | fd, _ ->
    if stopping t then (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      Mutex.lock t.lock;
      let id = t.next_conn in
      t.next_conn <- id + 1;
      Hashtbl.replace t.conns id fd;
      Mutex.unlock t.lock;
      let th = Thread.create (fun () -> conn_loop t id fd) () in
      Mutex.lock t.lock;
      t.threads <- th :: t.threads;
      Mutex.unlock t.lock;
      accept_loop t
    end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let listen_on where =
  match where with
  | Unix_sock path ->
    (* A stale socket file from a killed daemon would fail the bind. *)
    if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (fd, Unix.ADDR_UNIX path)
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (fd, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let start cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let store =
    match cfg.store_dir with
    | None -> Ok None
    | Some dir -> Result.map Option.some (Store.open_ dir)
  in
  match store with
  | Error m -> Error m
  | Ok store -> (
    let fd, addr = listen_on cfg.where in
    match
      Unix.bind fd addr;
      Unix.listen fd 64
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "serve: cannot listen: %s" (Unix.error_message e))
    | () ->
      let t =
        {
          cfg;
          listen_fd = fd;
          addr = Unix.getsockname fd;
          store;
          adm = Robust.Admission.create cfg.max_inflight;
          lock = Mutex.create ();
          stopping = false;
          next_conn = 0;
          conns = Hashtbl.create 16;
          threads = [];
          accept_thread = None;
          flight_lock = Mutex.create ();
          flight_cond = Condition.create ();
          flight = Hashtbl.create 16;
        }
      in
      Obs.Metrics.enable ();
      t.accept_thread <- Some (Thread.create accept_loop t);
      Ok t)

let address t = t.addr

let wait t =
  match t.accept_thread with None -> () | Some th -> Thread.join th

let stop t =
  Mutex.lock t.lock;
  let already = t.stopping in
  t.stopping <- true;
  Mutex.unlock t.lock;
  if not already then begin
    (* Wake the acceptor: [close] alone does not reliably unblock a
       thread parked in [accept]. *)
    (try
       let domain = Unix.domain_of_sockaddr t.addr in
       let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
       (try Unix.connect fd t.addr with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    wait t;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.cfg.where with
    | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    (* Shut down live connections under the lock: a handler only closes
       its fd after removing it from [conns] under the same lock, so
       every fd seen here is still valid. *)
    Mutex.lock t.lock;
    Hashtbl.iter
      (fun _ fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.conns;
    let threads = t.threads in
    t.threads <- [];
    Mutex.unlock t.lock;
    List.iter Thread.join threads
  end
