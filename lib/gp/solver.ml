module Vec = Linalg.Vec
module Mat = Linalg.Mat
module P = Symexpr.Posynomial
module M = Symexpr.Monomial

type status = Optimal | Infeasible | Iteration_limit | Deadline_exceeded

type solution = { status : status; values : (string * float) list; objective : float }

type kernel = [ `Compiled | `List | `Batched ]

let lookup sol x =
  match List.assoc_opt x sol.values with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Gp.Solver.lookup: no variable %S in the solution (solution carries: %s)"
         x
         (match sol.values with
         | [] -> "no variables"
         | vs -> String.concat ", " (List.map fst vs)))

let env sol x = lookup sol x

(* ------------------------------------------------------------------ *)
(* Telemetry                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable phase1_outer : int;
  mutable phase2_outer : int;
  mutable newton_iters : int;
  mutable backtracks : int;
  mutable kkt_regularizations : int;
  mutable cholesky_fallbacks : int;
  mutable deadline_hits : int;
  mutable duality_gap : float;
}

let fresh_stats () =
  {
    phase1_outer = 0;
    phase2_outer = 0;
    newton_iters = 0;
    backtracks = 0;
    kkt_regularizations = 0;
    cholesky_fallbacks = 0;
    deadline_hits = 0;
    duality_gap = nan;
  }

let reset_stats st =
  st.phase1_outer <- 0;
  st.phase2_outer <- 0;
  st.newton_iters <- 0;
  st.backtracks <- 0;
  st.kkt_regularizations <- 0;
  st.cholesky_fallbacks <- 0;
  st.deadline_hits <- 0;
  st.duality_gap <- nan

let copy_stats ~into st =
  into.phase1_outer <- st.phase1_outer;
  into.phase2_outer <- st.phase2_outer;
  into.newton_iters <- st.newton_iters;
  into.backtracks <- st.backtracks;
  into.kkt_regularizations <- st.kkt_regularizations;
  into.cholesky_fallbacks <- st.cholesky_fallbacks;
  into.deadline_hits <- st.deadline_hits;
  into.duality_gap <- st.duality_gap

type totals = {
  solves : int;
  t_phase1_outer : int;
  t_phase2_outer : int;
  t_newton_iters : int;
  t_backtracks : int;
  t_kkt_regularizations : int;
  t_cholesky_fallbacks : int;
  t_deadline_hits : int;
  max_duality_gap : float;
}

let zero_totals =
  {
    solves = 0;
    t_phase1_outer = 0;
    t_phase2_outer = 0;
    t_newton_iters = 0;
    t_backtracks = 0;
    t_kkt_regularizations = 0;
    t_cholesky_fallbacks = 0;
    t_deadline_hits = 0;
    max_duality_gap = 0.0;
  }

let accumulate t s =
  {
    solves = t.solves + 1;
    t_phase1_outer = t.t_phase1_outer + s.phase1_outer;
    t_phase2_outer = t.t_phase2_outer + s.phase2_outer;
    t_newton_iters = t.t_newton_iters + s.newton_iters;
    t_backtracks = t.t_backtracks + s.backtracks;
    t_kkt_regularizations = t.t_kkt_regularizations + s.kkt_regularizations;
    t_cholesky_fallbacks = t.t_cholesky_fallbacks + s.cholesky_fallbacks;
    t_deadline_hits = t.t_deadline_hits + s.deadline_hits;
    max_duality_gap =
      (if Float.is_finite s.duality_gap then Float.max t.max_duality_gap s.duality_gap
       else t.max_duality_gap);
  }

let pp_totals ppf t =
  Format.fprintf ppf
    "solves=%d phase1-outer=%d phase2-outer=%d newton=%d backtracks=%d kkt-reg=%d \
     chol-fallback=%d deadline=%d max-gap=%.3g"
    t.solves t.t_phase1_outer t.t_phase2_outer t.t_newton_iters t.t_backtracks
    t.t_kkt_regularizations t.t_cholesky_fallbacks t.t_deadline_hits t.max_duality_gap

let log_src = Logs.Src.create "gp.solver" ~doc:"Geometric-program solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Lowering to log space                                              *)
(* ------------------------------------------------------------------ *)

let compile_posynomial n index p =
  let term m =
    let a = Vec.create n in
    List.iter (fun (x, e) -> a.(Hashtbl.find index x) <- e) (M.exponents m);
    (a, log (M.coeff m))
  in
  Smooth.log_sum_exp n (List.map term (P.terms p))

(* Equality rows: monomial [c * prod t^a = 1] becomes [a . y = -log c]. *)
let equality_rows n index eqs =
  let row (_, m) =
    let a = Vec.create n in
    List.iter (fun (x, e) -> a.(Hashtbl.find index x) <- e) (M.exponents m);
    (a, -.log (M.coeff m))
  in
  List.map row eqs

(* ------------------------------------------------------------------ *)
(* Dense KKT path (shared by the list kernel and the compiled         *)
(* kernel's fallback)                                                 *)
(* ------------------------------------------------------------------ *)

(* Newton step keeping A y = const: KKT system
   [H + reg I, A^T; A, 0] [dy; w] = [-grad; 0], solved densely by LU. *)
let solve_kkt_dense ~hess ~grad ~rows n p reg =
  let dim = n + p in
  let kkt = Mat.create dim dim in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set kkt i j (Mat.get hess i j)
    done;
    Mat.add_to kkt i i reg
  done;
  List.iteri
    (fun k (a, _) ->
      for j = 0 to n - 1 do
        Mat.set kkt (n + k) j a.(j);
        Mat.set kkt j (n + k) a.(j)
      done)
    rows;
  let rhs = Vec.create dim in
  for i = 0 to n - 1 do
    rhs.(i) <- -.grad.(i)
  done;
  Vec.slice (Mat.lu_solve kkt rhs) 0 n

let attempt_dense ~st ~initial_reg ~hess ~grad ~rows n p =
  let rec attempt reg tries =
    match solve_kkt_dense ~hess ~grad ~rows n p reg with
    | dy -> Some dy
    | exception Mat.Singular ->
      if tries <= 0 then None
      else begin
        st.kkt_regularizations <- st.kkt_regularizations + 1;
        attempt (reg *. 100.0) (tries - 1)
      end
  in
  attempt initial_reg 6

(* ------------------------------------------------------------------ *)
(* Equality-constrained Newton centering — list kernel                *)
(* ------------------------------------------------------------------ *)

(* Minimize  barrier_t * f0(y) - sum_i log (-f_i(y))  subject to [a] y
   fixed to its value at [y0] (the start must satisfy the equalities and
   be strictly feasible for the inequalities).  This is the pre-compiled
   reference path, kept verbatim as the benchmark baseline. *)
let centering_list ~initial_reg ~st ~barrier_t ~(objective : Smooth.t)
    ~(ineqs : Smooth.t list) ~rows y0 =
  let n = Vec.dim y0 in
  let p = List.length rows in
  let phi y =
    let acc = ref (barrier_t *. objective.Smooth.value y) in
    let ok = ref true in
    List.iter
      (fun (g : Smooth.t) ->
        let v = g.Smooth.value y in
        if v >= 0.0 then ok := false else acc := !acc -. log (-.v))
      ineqs;
    if !ok then Some !acc else None
  in
  let y = ref (Vec.copy y0) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 80 do
    incr iter;
    st.newton_iters <- st.newton_iters + 1;
    let v0, g0, h0 = objective.Smooth.eval !y in
    ignore v0;
    let grad = Vec.scale barrier_t g0 in
    let hess = Mat.scale barrier_t h0 in
    List.iter
      (fun (g : Smooth.t) ->
        let vi, gi, hi = g.Smooth.eval !y in
        (* vi < 0 by the line-search invariant *)
        let inv = -1.0 /. vi in
        for i = 0 to n - 1 do
          grad.(i) <- grad.(i) +. (inv *. gi.(i))
        done;
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            Mat.add_to hess i j ((inv *. Mat.get hi i j) +. (inv *. inv *. gi.(i) *. gi.(j)))
          done
        done)
      ineqs;
    match attempt_dense ~st ~initial_reg ~hess ~grad ~rows n p with
    | None ->
      (* The KKT system is numerically singular even with heavy
         regularization: accept the current (feasible) point. *)
      converged := true
    | Some dy ->
    let slope = Vec.dot grad dy in
    let lambda2 = -.slope in
    if lambda2 /. 2.0 < 1e-10 then converged := true
    else begin
      (* Backtracking line search with the strict-feasibility invariant. *)
      let phi0 =
        match phi !y with
        | Some v -> v
        | None -> invalid_arg "Gp.Solver: centering started at an infeasible point"
      in
      let rec search alpha tries =
        if tries <= 0 then None
        else begin
          let cand = Vec.axpy alpha dy !y in
          match phi cand with
          | Some v when v <= phi0 +. (0.25 *. alpha *. slope) -> Some cand
          | _ ->
            st.backtracks <- st.backtracks + 1;
            search (alpha /. 2.0) (tries - 1)
        end
      in
      match search 1.0 60 with
      | Some cand -> y := cand
      | None -> converged := true (* cannot make progress; accept the point *)
    end
  done;
  !y

(* ------------------------------------------------------------------ *)
(* Equality-constrained Newton centering — compiled kernel            *)
(* ------------------------------------------------------------------ *)

(* Per-solve workspace: every buffer the compiled centering needs, sized
   once for a given (n, p) and reused across Newton steps, barrier
   updates and regularization retries.  The cache lives in the [solve]
   call (one per kernel instantiation), so concurrent solves never share
   a workspace. *)
type ws = {
  w_grad : Vec.t;  (* combined barrier gradient *)
  w_hess : Mat.t;  (* combined barrier Hessian *)
  w_gi : Vec.t;  (* per-function gradient buffer (support entries valid) *)
  w_hi : Mat.t;  (* per-function Hessian buffer (support block valid) *)
  w_dy : Vec.t;  (* Newton direction *)
}

let make_ws n =
  {
    w_grad = Vec.create n;
    w_hess = Mat.create n n;
    w_gi = Vec.create n;
    w_hi = Mat.create n n;
    w_dy = Vec.create n;
  }

let get_ws cache n =
  match Hashtbl.find_opt cache n with
  | Some ws -> ws
  | None ->
    let ws = make_ws n in
    Hashtbl.add cache n ws;
    ws

(* Orthonormal nullspace bases live in [Mat.nullspace_basis] (moved
   there so the batched plan compiler can share them); the function is
   pure, so per-centering and per-structure computations agree bit for
   bit. *)
let nullspace_basis = Mat.nullspace_basis

(* Same minimization as [centering_list], but over compiled functions:
   sparse evaluation into reused buffers and a structured KKT solve.
   With [Z] an orthonormal basis of null(A) (computed once per centering
   call — the rows never change within one), the equality-constrained
   Newton step reduces to the SPD system

     (Z^T H Z + reg I) u = Z^T (-grad),   dy = Z u

   solved by Cholesky.  [A dy = (A Z) u ~ 0] holds to machine precision
   by construction, unlike a range-space (Schur-complement) elimination,
   which amplifies roundoff by ||H^-1|| ~ barrier_t / reg along the
   curvature-free log-linear directions every GP formulation has. *)
let centering_compiled ~ws_cache ~initial_reg ~st ~barrier_t ~(objective : Compiled.t)
    ~(ineqs : Compiled.t list) ~rows y0 =
  let n = Vec.dim y0 in
  let p = List.length rows in
  let ws = get_ws ws_cache n in
  let rows_arr = Array.of_list (List.map fst rows) in
  let zbasis = nullspace_basis n rows_arr in
  let q = Array.length zbasis in
  let hz = Array.init q (fun _ -> Vec.create n) in
  let hr = Mat.create q q in
  let u = Vec.create q in
  let phi y =
    let acc = ref (barrier_t *. Compiled.value objective y) in
    let ok = ref true in
    List.iter
      (fun g ->
        let v = Compiled.value g y in
        if v >= 0.0 then ok := false else acc := !acc -. log (-.v))
      ineqs;
    if !ok then Some !acc else None
  in
  let grad = ws.w_grad in
  let hess = ws.w_hess in
  let y = ref (Vec.copy y0) in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 80 do
    incr iter;
    st.newton_iters <- st.newton_iters + 1;
    (* Combined gradient/Hessian of barrier_t * f0 - sum log(-f_i).  The
       buffers are cleared in full: variables appearing only in equality
       rows are outside every support, yet the factorization reads the
       whole lower triangle. *)
    Vec.fill grad 0.0;
    Mat.fill hess 0.0;
    ignore (Compiled.eval_into objective !y ~grad:ws.w_gi ~hess:ws.w_hi);
    let sup0 = Compiled.support objective in
    let ns0 = Array.length sup0 in
    for a = 0 to ns0 - 1 do
      let i = sup0.(a) in
      grad.(i) <- barrier_t *. ws.w_gi.(i);
      for b = 0 to ns0 - 1 do
        let j = sup0.(b) in
        Mat.set hess i j (barrier_t *. Mat.get ws.w_hi i j)
      done
    done;
    List.iter
      (fun g ->
        let vi = Compiled.eval_into g !y ~grad:ws.w_gi ~hess:ws.w_hi in
        (* vi < 0 by the line-search invariant *)
        let inv = -1.0 /. vi in
        let sup = Compiled.support g in
        let ns = Array.length sup in
        for a = 0 to ns - 1 do
          let i = sup.(a) in
          grad.(i) <- grad.(i) +. (inv *. ws.w_gi.(i))
        done;
        for a = 0 to ns - 1 do
          let i = sup.(a) in
          let gi_i = ws.w_gi.(i) in
          for b = 0 to ns - 1 do
            let j = sup.(b) in
            Mat.add_to hess i j
              ((inv *. Mat.get ws.w_hi i j) +. (inv *. inv *. gi_i *. ws.w_gi.(j)))
          done
        done)
      ineqs;
    (* Structured KKT solve in the nullspace basis: the products
       [hz_j = H z_j] are fixed for this step, the reduced matrix is
       rebuilt cheaply on each regularization retry. *)
    for j = 0 to q - 1 do
      let zj = zbasis.(j) in
      let hzj = hz.(j) in
      for i = 0 to n - 1 do
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. (Mat.get hess i k *. zj.(k))
        done;
        hzj.(i) <- !acc
      done
    done;
    let solve_structured reg =
      for j = 0 to q - 1 do
        for l = 0 to j do
          Mat.set hr j l (Vec.dot zbasis.(j) hz.(l))
        done;
        Mat.add_to hr j j reg
      done;
      Mat.cholesky_in_place hr;
      for j = 0 to q - 1 do
        u.(j) <- -.(Vec.dot zbasis.(j) grad)
      done;
      Mat.cholesky_solve_in_place hr u;
      let dy = ws.w_dy in
      Vec.fill dy 0.0;
      for j = 0 to q - 1 do
        let uj = u.(j) in
        if uj <> 0.0 then begin
          let zj = zbasis.(j) in
          for i = 0 to n - 1 do
            dy.(i) <- dy.(i) +. (uj *. zj.(i))
          done
        end
      done;
      dy
    in
    let dy =
      let rec attempt reg tries =
        match solve_structured reg with
        | dy -> Some dy
        | exception Mat.Singular ->
          if tries <= 0 then None
          else begin
            st.kkt_regularizations <- st.kkt_regularizations + 1;
            attempt (reg *. 100.0) (tries - 1)
          end
      in
      match attempt initial_reg 6 with
      | Some dy -> Some dy
      | None ->
        (* Cholesky keeps failing even under heavy regularization (an
           indefinite Hessian from numerical noise): fall back once to
           the dense pivoted-LU KKT path before giving up on the step. *)
        st.cholesky_fallbacks <- st.cholesky_fallbacks + 1;
        attempt_dense ~st ~initial_reg ~hess ~grad ~rows n p
    in
    match dy with
    | None ->
      (* Singular under every factorization: accept the current
         (feasible) point. *)
      converged := true
    | Some dy ->
    let slope = Vec.dot grad dy in
    let lambda2 = -.slope in
    if lambda2 /. 2.0 < 1e-10 then converged := true
    else begin
      (* Backtracking line search with the strict-feasibility invariant. *)
      let phi0 =
        match phi !y with
        | Some v -> v
        | None -> invalid_arg "Gp.Solver: centering started at an infeasible point"
      in
      let rec search alpha tries =
        if tries <= 0 then None
        else begin
          let cand = Vec.axpy alpha dy !y in
          match phi cand with
          | Some v when v <= phi0 +. (0.25 *. alpha *. slope) -> Some cand
          | _ ->
            st.backtracks <- st.backtracks + 1;
            search (alpha /. 2.0) (tries - 1)
        end
      in
      match search 1.0 60 with
      | Some cand -> y := cand
      | None -> converged := true (* cannot make progress; accept the point *)
    end
  done;
  !y

(* ------------------------------------------------------------------ *)
(* Kernel dispatch                                                    *)
(* ------------------------------------------------------------------ *)

(* The barrier and phase-I drivers are written once against this record
   so both kernels run through identical control flow — the kernels
   differ only in how a convex function is represented and evaluated
   and in how the per-step KKT system is solved. *)
type 'f ops = {
  k_value : 'f -> Vec.t -> float;
  k_centering :
    st:stats ->
    barrier_t:float ->
    objective:'f ->
    ineqs:'f list ->
    rows:(Vec.t * float) list ->
    Vec.t ->
    Vec.t;
  k_linear : int -> Vec.t -> float -> 'f;
  k_minus_slack : int -> 'f -> 'f;
}

(* G(y, s) = f(y) - s over n + 1 variables. *)
let minus_slack n (f : Smooth.t) =
  let base = Smooth.extend f 1 in
  let value y = base.Smooth.value y -. y.(n) in
  let eval y =
    let v, g, h = base.Smooth.eval y in
    g.(n) <- g.(n) -. 1.0;
    (v -. y.(n), g, h)
  in
  { Smooth.dim = n + 1; eval; value }

let list_ops ~initial_reg : Smooth.t ops =
  {
    k_value = (fun (f : Smooth.t) y -> f.Smooth.value y);
    k_centering = centering_list ~initial_reg;
    k_linear = Smooth.linear;
    k_minus_slack = minus_slack;
  }

let compiled_ops ws_cache ~initial_reg : Compiled.t ops =
  {
    k_value = Compiled.value;
    k_centering = centering_compiled ~ws_cache ~initial_reg;
    k_linear =
      (fun n a b ->
        let entries = ref [] in
        for i = Vec.dim a - 1 downto 0 do
          if a.(i) <> 0.0 then entries := (i, a.(i)) :: !entries
        done;
        Compiled.affine n !entries b);
    k_minus_slack = (fun n f -> Compiled.add_linear (Compiled.extend f 1) n (-1.0));
  }

(* ------------------------------------------------------------------ *)
(* Barrier loop                                                       *)
(* ------------------------------------------------------------------ *)

(* [check] is the cooperative deadline hook: called before every outer
   (centering) iteration, it raises {!Deadline} once the caller's budget
   is spent.  Checks sit at outer-iteration boundaries only — a single
   centering runs to completion — keeping the hot path untouched.

   The loop is written against an abstract [centering] closure (and the
   inequality count [m]) so every kernel — list, compiled, batched —
   runs through the identical control flow: same schedule, same stop
   conditions, same stats ticks. *)
let barrier ?(stop_early = fun _ -> false) ~check ~st ~phase ~tol ~max_outer ~m
    ~centering y0 =
  let tick () =
    match phase with
    | `One -> st.phase1_outer <- st.phase1_outer + 1
    | `Two -> st.phase2_outer <- st.phase2_outer + 1
  in
  if m = 0 then begin
    check ();
    if phase = `Two then st.duality_gap <- 0.0;
    (centering ~barrier_t:1.0 y0, true)
  end
  else begin
    let y = ref y0 in
    let t = ref 1.0 in
    let mu = 20.0 in
    let outer = ref 0 in
    let done_ = ref false in
    let clean = ref false in
    while not !done_ do
      incr outer;
      tick ();
      check ();
      y := centering ~barrier_t:!t !y;
      if stop_early !y then begin
        done_ := true;
        clean := true
      end
      else if float_of_int m /. !t < tol then begin
        done_ := true;
        clean := true
      end
      else if !outer >= max_outer then done_ := true
      else t := !t *. mu
    done;
    if phase = `Two then st.duality_gap <- float_of_int m /. !t;
    (!y, !clean)
  end

(* ------------------------------------------------------------------ *)
(* Phase I                                                            *)
(* ------------------------------------------------------------------ *)

(* Find a point satisfying the equalities and strictly satisfying the
   inequalities, or decide that none exists. *)
let phase1 ~check ~ops ~st ~tol ~max_outer n ineqs rows y0 =
  let strictly_ok y = List.for_all (fun g -> ops.k_value g y < -1e-9) ineqs in
  if strictly_ok y0 then Some y0
  else begin
    let n1 = n + 1 in
    let s_dir = Vec.init n1 (fun i -> if i = n then 1.0 else 0.0) in
    let objective = ops.k_linear n1 s_dir 0.0 in
    let g_ineqs = List.map (ops.k_minus_slack n) ineqs in
    (* Keep s bounded below so the phase-I problem is bounded. *)
    let lower = ops.k_linear n1 (Vec.scale (-1.0) s_dir) (-20.0) in
    let rows1 = List.map (fun (a, d) -> (Vec.concat a [| 0.0 |], d)) rows in
    let s0 =
      List.fold_left (fun acc g -> Float.max acc (ops.k_value g y0)) 0.0 ineqs +. 1.0
    in
    let start = Vec.concat y0 [| s0 |] in
    let stop_early y = y.(n) < -0.5 in
    let all_ineqs = lower :: g_ineqs in
    let y1, _ =
      barrier ~stop_early ~check ~st ~phase:`One ~tol ~max_outer
        ~m:(List.length all_ineqs)
        ~centering:(fun ~barrier_t y ->
          ops.k_centering ~st ~barrier_t ~objective ~ineqs:all_ineqs ~rows:rows1 y)
        start
    in
    let y = Vec.slice y1 0 n in
    if strictly_ok y then Some y else None
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let least_norm_start n rows =
  match rows with
  | [] -> Vec.create n
  | _ ->
    (* y0 = A^T z with (A A^T + eps I) z = d: minimum-norm solution of the
       (assumed full-rank) equality system, regularized for safety. *)
    let p = List.length rows in
    let arr = Array.of_list rows in
    let gram =
      Mat.init p p (fun i j ->
          Vec.dot (fst arr.(i)) (fst arr.(j)) +. if i = j then 1e-12 else 0.0)
    in
    let d = Vec.init p (fun i -> snd arr.(i)) in
    let z = Mat.lu_solve gram d in
    let y = Vec.create n in
    Array.iteri
      (fun i (a, _) ->
        for j = 0 to n - 1 do
          y.(j) <- y.(j) +. (z.(i) *. a.(j))
        done)
      arr;
    y

(* Log-space start seeded from a prior solution of a structurally close
   problem: overlay the warm values on the least-norm equality solution,
   then project back onto the equality manifold ([y <- y + A^T z] with
   [(A A^T + eps I) z = d - A y]), since the warm point satisfied a
   {e different} problem's equalities. *)
let warm_point n index vars rows warm =
  let y = least_norm_start n rows in
  List.iter
    (fun x ->
      match List.assoc_opt x warm with
      | Some v when Float.is_finite v && v > 0.0 -> y.(Hashtbl.find index x) <- log v
      | _ -> ())
    vars;
  match rows with
  | [] -> y
  | _ ->
    (try
       let p = List.length rows in
       let arr = Array.of_list rows in
       let gram =
         Mat.init p p (fun i j ->
             Vec.dot (fst arr.(i)) (fst arr.(j)) +. if i = j then 1e-12 else 0.0)
       in
       let d = Vec.init p (fun i -> snd arr.(i) -. Vec.dot (fst arr.(i)) y) in
       let z = Mat.lu_solve gram d in
       Array.iteri
         (fun i (a, _) ->
           for j = 0 to n - 1 do
             y.(j) <- y.(j) +. (z.(i) *. a.(j))
           done)
         arr;
       y
     with Mat.Singular -> least_norm_start n rows)

(* Internal deadline signal; never escapes [solve]. *)
exception Deadline

let now_ns () = Unix.gettimeofday () *. 1e9

let solve_scalar ~tol ~max_outer ?stats ?warm_start ~kernel ?deadline_ns ~initial_reg
    problem =
  let st = match stats with Some st -> st | None -> fresh_stats () in
  reset_stats st;
  (* Cooperative deadline: checked at outer-iteration boundaries (see
     [barrier]).  [deadline_ns <= 0] trips at the very first check, which
     the fault-injection "stall" path relies on for determinism. *)
  let check =
    match deadline_ns with
    | None -> fun () -> ()
    | Some budget_ns ->
      let start = now_ns () in
      fun () -> if now_ns () -. start >= budget_ns then raise Deadline
  in
  let vars = Problem.variables problem in
  let n = List.length vars in
  let index = Hashtbl.create (2 * n) in
  List.iteri (fun i x -> Hashtbl.replace index x i) vars;
  let rows0 = equality_rows n index (Problem.eqs problem) in
  (* Constant equalities reduce to 0 = d: inconsistent unless d ~ 0. *)
  let inconsistent = ref false in
  let rows =
    List.filter
      (fun (a, d) ->
        if Vec.norm_inf a > 0.0 then true
        else begin
          if Float.abs d > 1e-9 then inconsistent := true;
          false
        end)
      rows0
  in
  let extract status y =
    let envt = Array.map exp y in
    let values = List.mapi (fun i x -> (x, envt.(i))) vars in
    let lookup_env x = envt.(Hashtbl.find index x) in
    { status; values; objective = P.eval lookup_env (Problem.objective problem) }
  in
  if !inconsistent then { status = Infeasible; values = []; objective = nan }
  else begin
    (* Any residual numerical failure is reported as infeasibility of this
       program rather than escaping to the caller: the driver treats such
       choices as unusable and moves on. *)
    match
      let y0 =
        match warm_start with
        | None -> least_norm_start n rows
        | Some warm -> warm_point n index vars rows warm
      in
      let run ops objective ineqs =
        match phase1 ~check ~ops ~st ~tol:1e-6 ~max_outer n ineqs rows y0 with
        | None ->
          Log.debug (fun m -> m "phase I failed: problem infeasible");
          { status = Infeasible; values = []; objective = nan }
        | Some y_feas ->
          let y_opt, clean =
            barrier ~check ~st ~phase:`Two ~tol ~max_outer ~m:(List.length ineqs)
              ~centering:(fun ~barrier_t y ->
                ops.k_centering ~st ~barrier_t ~objective ~ineqs ~rows y)
              y_feas
          in
          extract (if clean then Optimal else Iteration_limit) y_opt
      in
      match kernel with
      | `List ->
        run (list_ops ~initial_reg)
          (compile_posynomial n index (Problem.objective problem))
          (List.map (fun (_, p) -> compile_posynomial n index p) (Problem.ineqs problem))
      | `Compiled ->
        let ws_cache = Hashtbl.create 4 in
        run (compiled_ops ws_cache ~initial_reg)
          (Compiled.of_posynomial n index (Problem.objective problem))
          (List.map
             (fun (_, p) -> Compiled.of_posynomial n index p)
             (Problem.ineqs problem))
    with
    | solution -> solution
    | exception Mat.Singular ->
      Log.debug (fun m -> m "numerical failure: treating the program as infeasible");
      { status = Infeasible; values = []; objective = nan }
    | exception Deadline ->
      st.deadline_hits <- st.deadline_hits + 1;
      Log.debug (fun m -> m "solve deadline exceeded");
      { status = Deadline_exceeded; values = []; objective = nan }
  end

(* ------------------------------------------------------------------ *)
(* Batched kernel (DESIGN §15)                                        *)
(* ------------------------------------------------------------------ *)

(* The batched kernel runs the exact algorithm of the compiled kernel —
   same barrier schedule, same centerings, same KKT solves, same line
   search — against a [Batch.plan] shared by every member of a
   structure group.  What is amortized per structure: the lowering
   itself, the nullspace bases (pure, see [Mat.nullspace_basis]) and the
   least-norm Gram factorization ([Mat.lu_factor], bit-identical to the
   per-solve [Mat.lu_solve]).  What is changed mechanically: all hot
   buffers are flat unchecked float arrays, and three provably
   unobservable evaluations are elided (the line-search merit value
   short-circuits after the first infeasible inequality; the merit value
   at the current iterate reuses the values the Newton assembly just
   computed; all elided computations are pure).  Everything else is a
   transcription, so results are bit-for-bit equal to
   [solve ~kernel:`Compiled] — pinned by test/test_compiled.ml and the
   determinism suite. *)

(* A compiled structure function bound to one member's coefficients. *)
type bfun = { bf_fn : Batch.fn; bf_b : float array; bf_off : int }

(* The function set of one (phase, member) pair. *)
type bset = {
  bs_n : int;
  bs_obj : bfun;
  bs_ineqs : bfun array;
  bs_zbasis : Vec.t array;
  bs_rows : Vec.t array;  (* equality rows, for the dense KKT fallback *)
}

(* Per-solve workspace (never shared across concurrent solves). *)
type bws = {
  bw_y : float array;
  bw_cand : float array;
  bw_grad : float array;
  bw_hess : float array;  (* n * n, stride n *)
  bw_gi : float array;
  bw_hi : float array;  (* n * n, stride n *)
  bw_dy : float array;
  bw_es : float array;
  bw_vis : float array;  (* per-inequality values at the current iterate *)
  bw_hz : Vec.t array;
  bw_hr : Mat.t;
  bw_hr0 : float array;  (* pristine reduced Hessian, lower triangle, stride q *)
  bw_u : Vec.t;
  bw_u0 : float array;  (* pristine reduced RHS *)
}

let make_bws ~n ~q ~max_terms ~nineqs =
  {
    bw_y = Array.make n 0.0;
    bw_cand = Array.make n 0.0;
    bw_grad = Array.make n 0.0;
    bw_hess = Array.make (n * n) 0.0;
    bw_gi = Array.make n 0.0;
    bw_hi = Array.make (n * n) 0.0;
    bw_dy = Array.make n 0.0;
    bw_es = Array.make (max 1 max_terms) 0.0;
    bw_vis = Array.make (max 1 nineqs) 0.0;
    bw_hz = Array.init q (fun _ -> Vec.create n);
    bw_hr = Mat.create q q;
    bw_hr0 = Array.make (max 1 (q * q)) 0.0;
    bw_u = Vec.create q;
    bw_u0 = Array.make (max 1 q) 0.0;
  }

(* Mirror of [centering_compiled] over flat buffers; see the bit-identity
   note above. *)
let centering_batched ~ws ~fset ~initial_reg ~st ~barrier_t y0 =
  let n = fset.bs_n in
  let nineq = Array.length fset.bs_ineqs in
  let zbasis = fset.bs_zbasis in
  let q = Array.length zbasis in
  let grad = ws.bw_grad in
  let hess = ws.bw_hess in
  let gi = ws.bw_gi in
  let hi = ws.bw_hi in
  let es = ws.bw_es in
  let vis = ws.bw_vis in
  let y = ws.bw_y in
  if y != y0 then Array.blit y0 0 y 0 n;
  (* Line-search merit value at a candidate.  The compiled path
     evaluates every inequality and discards the accumulator when any
     value is >= 0; stopping at the first such value skips only pure
     computations, so the accepted candidate and every accept/reject
     decision are unchanged.  A NaN value never triggers the exit
     ([v >= 0.0] is false for NaN), matching the compiled path's
     accept test, which a NaN also fails. *)
  let phi_cand cand =
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < nineq do
      let f = Array.unsafe_get fset.bs_ineqs !i in
      let v = Batch.value f.bf_fn ~b:f.bf_b ~boff:f.bf_off ~es cand in
      if v >= 0.0 then ok := false
      else begin
        Array.unsafe_set vis !i v;
        incr i
      end
    done;
    if not !ok then None
    else begin
      let o = fset.bs_obj in
      let acc =
        ref (barrier_t *. Batch.value o.bf_fn ~b:o.bf_b ~boff:o.bf_off ~es cand)
      in
      for j = 0 to nineq - 1 do
        acc := !acc -. log (-.Array.unsafe_get vis j)
      done;
      Some !acc
    end
  in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < 80 do
    incr iter;
    st.newton_iters <- st.newton_iters + 1;
    Array.fill grad 0 n 0.0;
    Array.fill hess 0 (n * n) 0.0;
    let o = fset.bs_obj in
    let v0 = Batch.eval_into o.bf_fn ~b:o.bf_b ~boff:o.bf_off ~es ~grad:gi ~hess:hi ~hn:n y in
    let sup0 = o.bf_fn.Batch.f_support in
    let ns0 = Array.length sup0 in
    for a = 0 to ns0 - 1 do
      let i = Array.unsafe_get sup0 a in
      Array.unsafe_set grad i (barrier_t *. Array.unsafe_get gi i);
      let base = i * n in
      for b = 0 to ns0 - 1 do
        let j = Array.unsafe_get sup0 b in
        Array.unsafe_set hess (base + j) (barrier_t *. Array.unsafe_get hi (base + j))
      done
    done;
    for gidx = 0 to nineq - 1 do
      let g = Array.unsafe_get fset.bs_ineqs gidx in
      let vi =
        Batch.eval_into g.bf_fn ~b:g.bf_b ~boff:g.bf_off ~es ~grad:gi ~hess:hi ~hn:n y
      in
      Array.unsafe_set vis gidx vi;
      (* vi < 0 by the line-search invariant *)
      let inv = -1.0 /. vi in
      let sup = g.bf_fn.Batch.f_support in
      let ns = Array.length sup in
      for a = 0 to ns - 1 do
        let i = Array.unsafe_get sup a in
        Array.unsafe_set grad i (Array.unsafe_get grad i +. (inv *. Array.unsafe_get gi i))
      done;
      for a = 0 to ns - 1 do
        let i = Array.unsafe_get sup a in
        let gi_i = Array.unsafe_get gi i in
        let base = i * n in
        for b = 0 to ns - 1 do
          let j = Array.unsafe_get sup b in
          let o = base + j in
          Array.unsafe_set hess o
            (Array.unsafe_get hess o
            +. ((inv *. Array.unsafe_get hi o) +. (inv *. inv *. gi_i *. Array.unsafe_get gi j))
            )
        done
      done
    done;
    (* Structured KKT solve in the shared nullspace basis. *)
    for j = 0 to q - 1 do
      let zj = zbasis.(j) in
      let hzj = ws.bw_hz.(j) in
      for i = 0 to n - 1 do
        let base = i * n in
        let acc = ref 0.0 in
        for k = 0 to n - 1 do
          acc := !acc +. (Array.unsafe_get hess (base + k) *. Array.unsafe_get zj k)
        done;
        Array.unsafe_set hzj i !acc
      done
    done;
    (* The reduced Hessian entries [z_j . (H z_l)] and the reduced RHS
       [-z_j . grad] are pure per-iteration values: compute them once
       and replay them on regularization retries (the compiled path
       recomputes the same dots; same accumulation order, same bits). *)
    let hr0 = ws.bw_hr0 and u0 = ws.bw_u0 in
    for j = 0 to q - 1 do
      let zj = zbasis.(j) in
      for l = 0 to j do
        let hzl = ws.bw_hz.(l) in
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. (Array.unsafe_get zj i *. Array.unsafe_get hzl i)
        done;
        Array.unsafe_set hr0 ((j * q) + l) !acc
      done;
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (Array.unsafe_get zj i *. Array.unsafe_get grad i)
      done;
      Array.unsafe_set u0 j (-. !acc)
    done;
    let solve_structured reg =
      let hr = ws.bw_hr in
      let u = ws.bw_u in
      for j = 0 to q - 1 do
        for l = 0 to j do
          Mat.set hr j l (Array.unsafe_get hr0 ((j * q) + l))
        done;
        Mat.add_to hr j j reg
      done;
      Mat.cholesky_in_place hr;
      Array.blit u0 0 u 0 q;
      Mat.cholesky_solve_in_place hr u;
      let dy = ws.bw_dy in
      Array.fill dy 0 n 0.0;
      for j = 0 to q - 1 do
        let uj = u.(j) in
        if uj <> 0.0 then begin
          let zj = zbasis.(j) in
          for i = 0 to n - 1 do
            Array.unsafe_set dy i (Array.unsafe_get dy i +. (uj *. Array.unsafe_get zj i))
          done
        end
      done;
      dy
    in
    let dy =
      let rec attempt reg tries =
        match solve_structured reg with
        | dy -> Some dy
        | exception Mat.Singular ->
          if tries <= 0 then None
          else begin
            st.kkt_regularizations <- st.kkt_regularizations + 1;
            attempt (reg *. 100.0) (tries - 1)
          end
      in
      match attempt initial_reg 6 with
      | Some dy -> Some dy
      | None ->
        st.cholesky_fallbacks <- st.cholesky_fallbacks + 1;
        let p = Array.length fset.bs_rows in
        let hess_m = Mat.init n n (fun i j -> hess.((i * n) + j)) in
        let rows = Array.to_list (Array.map (fun a -> (a, 0.0)) fset.bs_rows) in
        attempt_dense ~st ~initial_reg ~hess:hess_m ~grad ~rows n p
    in
    match dy with
    | None -> converged := true
    | Some dy ->
      let slope =
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. (Array.unsafe_get grad i *. Array.unsafe_get dy i)
        done;
        !acc
      in
      let lambda2 = -.slope in
      if lambda2 /. 2.0 < 1e-10 then converged := true
      else begin
        (* Merit value at the current iterate, from the values the
           assembly above just computed — the compiled path recomputes
           them; the evaluations are pure, so the bits agree. *)
        let phi0 =
          let ok = ref true in
          for j = 0 to nineq - 1 do
            if vis.(j) >= 0.0 then ok := false
          done;
          if not !ok then
            invalid_arg "Gp.Solver: centering started at an infeasible point"
          else begin
            let acc = ref (barrier_t *. v0) in
            for j = 0 to nineq - 1 do
              acc := !acc -. log (-.vis.(j))
            done;
            !acc
          end
        in
        let cand = ws.bw_cand in
        let rec search alpha tries =
          if tries <= 0 then false
          else begin
            for i = 0 to n - 1 do
              Array.unsafe_set cand i
                ((alpha *. Array.unsafe_get dy i) +. Array.unsafe_get y i)
            done;
            match phi_cand cand with
            | Some v when v <= phi0 +. (0.25 *. alpha *. slope) -> true
            | _ ->
              st.backtracks <- st.backtracks + 1;
              search (alpha /. 2.0) (tries - 1)
          end
        in
        if search 1.0 60 then Array.blit cand 0 y 0 n
        else converged := true (* cannot make progress; accept the point *)
      end
  done;
  y

(* Member function sets: phase II over n variables, phase I over n+1
   with the slack.  The phase-I inequalities read the same coefficient
   slots as their phase-II counterparts. *)
let bset_phase2 (plan : Batch.plan) (block : Batch.block) mem =
  let bind (f : Batch.fn) =
    { bf_fn = f; bf_b = block.Batch.bk_b.(f.Batch.f_slot);
      bf_off = mem * plan.Batch.pl_nterms.(f.Batch.f_slot) }
  in
  {
    bs_n = plan.Batch.pl_n;
    bs_obj = bind plan.Batch.pl_objective;
    bs_ineqs = Array.map bind plan.Batch.pl_ineqs;
    bs_zbasis = plan.Batch.pl_zbasis;
    bs_rows = plan.Batch.pl_rows;
  }

let bset_phase1 (plan : Batch.plan) (block : Batch.block) mem =
  let bind_slack (f : Batch.fn) =
    { bf_fn = f; bf_b = block.Batch.bk_b.(f.Batch.f_slot);
      bf_off = mem * plan.Batch.pl_nterms.(f.Batch.f_slot) }
  in
  let affine f = { bf_fn = f; bf_b = [||]; bf_off = 0 } in
  {
    bs_n = plan.Batch.pl_n + 1;
    bs_obj = affine plan.Batch.pl_objective1;
    bs_ineqs =
      Array.append
        [| affine plan.Batch.pl_lower1 |]
        (Array.map bind_slack plan.Batch.pl_ineqs1);
    bs_zbasis = plan.Batch.pl_zbasis1;
    bs_rows = plan.Batch.pl_rows1;
  }

(* Mirror of the generic [phase1] over a member's function sets. *)
let phase1_batched ~check ~st ~max_outer ~initial_reg ~(plan : Batch.plan) ~block ~mem
    ~fset2 ~(ws2 : bws) y0 =
  let n = plan.Batch.pl_n in
  let nineq = Array.length fset2.bs_ineqs in
  (* [List.for_all] in the generic path stops at the first failure; the
     evaluations are pure, so the early exit is unobservable. *)
  let strictly_ok y =
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < nineq do
      let f = fset2.bs_ineqs.(!i) in
      if Batch.value f.bf_fn ~b:f.bf_b ~boff:f.bf_off ~es:ws2.bw_es y < -1e-9 then incr i
      else ok := false
    done;
    !ok
  in
  if strictly_ok y0 then Some y0
  else begin
    let fset1 = bset_phase1 plan block mem in
    let ws1 =
      make_bws ~n:(n + 1)
        ~q:(Array.length plan.Batch.pl_zbasis1)
        ~max_terms:plan.Batch.pl_max_terms
        ~nineqs:(1 + nineq)
    in
    let s0 =
      let acc = ref 0.0 in
      for i = 0 to nineq - 1 do
        let f = fset2.bs_ineqs.(i) in
        acc := Float.max !acc (Batch.value f.bf_fn ~b:f.bf_b ~boff:f.bf_off ~es:ws2.bw_es y0)
      done;
      !acc +. 1.0
    in
    let start = Vec.concat y0 [| s0 |] in
    let stop_early y = y.(n) < -0.5 in
    let y1, _ =
      barrier ~stop_early ~check ~st ~phase:`One ~tol:1e-6 ~max_outer ~m:(1 + nineq)
        ~centering:(fun ~barrier_t y ->
          centering_batched ~ws:ws1 ~fset:fset1 ~initial_reg ~st ~barrier_t y)
        start
    in
    let y = Vec.slice y1 0 n in
    if strictly_ok y then Some y else None
  end

let solve_batched ?(tol = 1e-8) ?(max_outer = 60) ?stats ?warm_start ?deadline_ns
    ?(initial_reg = 1e-9) (block : Batch.block) mem =
  if mem < 0 || mem >= block.Batch.bk_nmembers then
    invalid_arg "Gp.Solver.solve_batched: member index out of range";
  let st = match stats with Some st -> st | None -> fresh_stats () in
  reset_stats st;
  let check =
    match deadline_ns with
    | None -> fun () -> ()
    | Some budget_ns ->
      let start = now_ns () in
      fun () -> if now_ns () -. start >= budget_ns then raise Deadline
  in
  let plan = block.Batch.bk_plan in
  let problem = block.Batch.bk_members.(mem) in
  let n = plan.Batch.pl_n in
  let p = Array.length plan.Batch.pl_rows in
  let nz = block.Batch.bk_nz in
  (* Constant equalities reduce to 0 = d: inconsistent unless d ~ 0. *)
  let inconsistent = ref false in
  for r = 0 to nz - 1 do
    if Float.abs block.Batch.bk_dz.((mem * nz) + r) > 1e-9 then inconsistent := true
  done;
  let extract status y =
    let envt = Array.map exp y in
    let values = List.mapi (fun i x -> (x, envt.(i))) plan.Batch.pl_vars in
    let lookup_env x = envt.(Hashtbl.find plan.Batch.pl_index x) in
    { status; values; objective = P.eval lookup_env (Problem.objective problem) }
  in
  if !inconsistent then { status = Infeasible; values = []; objective = nan }
  else begin
    match
      let d_of i = block.Batch.bk_d.((mem * p) + i) in
      let overlay_rows y z =
        Array.iteri
          (fun i a ->
            for j = 0 to n - 1 do
              y.(j) <- y.(j) +. (z.(i) *. a.(j))
            done)
          plan.Batch.pl_rows
      in
      (* [least_norm_start] / [warm_point] with the Gram factorization
         reused from the plan: [lu_solve_factored] is bit-identical to
         the per-solve [lu_solve], and a singular Gram raises exactly
         where the scalar path's factorization would. *)
      let least_norm () =
        match plan.Batch.pl_gram with
        | Batch.No_rows -> Vec.create n
        | Batch.Gram_singular -> raise Mat.Singular
        | Batch.Factored lu ->
          let d = Vec.init p d_of in
          let z = Mat.lu_solve_factored lu d in
          let y = Vec.create n in
          overlay_rows y z;
          y
      in
      let y0 =
        match warm_start with
        | None -> least_norm ()
        | Some warm ->
          let y = least_norm () in
          List.iter
            (fun x ->
              match List.assoc_opt x warm with
              | Some v when Float.is_finite v && v > 0.0 ->
                y.(Hashtbl.find plan.Batch.pl_index x) <- log v
              | _ -> ())
            plan.Batch.pl_vars;
          (match plan.Batch.pl_gram with
          | Batch.No_rows | Batch.Gram_singular -> y
          | Batch.Factored lu ->
            let d = Vec.init p (fun i -> d_of i -. Vec.dot plan.Batch.pl_rows.(i) y) in
            let z = Mat.lu_solve_factored lu d in
            overlay_rows y z;
            y)
      in
      let fset2 = bset_phase2 plan block mem in
      let ws2 =
        make_bws ~n
          ~q:(Array.length plan.Batch.pl_zbasis)
          ~max_terms:plan.Batch.pl_max_terms
          ~nineqs:(Array.length fset2.bs_ineqs)
      in
      match
        phase1_batched ~check ~st ~max_outer ~initial_reg ~plan ~block ~mem ~fset2 ~ws2
          y0
      with
      | None ->
        Log.debug (fun m -> m "phase I failed: problem infeasible");
        { status = Infeasible; values = []; objective = nan }
      | Some y_feas ->
        let y_opt, clean =
          barrier ~check ~st ~phase:`Two ~tol ~max_outer
            ~m:(Array.length fset2.bs_ineqs)
            ~centering:(fun ~barrier_t y ->
              centering_batched ~ws:ws2 ~fset:fset2 ~initial_reg ~st ~barrier_t y)
            y_feas
        in
        extract (if clean then Optimal else Iteration_limit) y_opt
    with
    | solution -> solution
    | exception Mat.Singular ->
      Log.debug (fun m -> m "numerical failure: treating the program as infeasible");
      { status = Infeasible; values = []; objective = nan }
    | exception Deadline ->
      st.deadline_hits <- st.deadline_hits + 1;
      Log.debug (fun m -> m "solve deadline exceeded");
      { status = Deadline_exceeded; values = []; objective = nan }
  end

(* ------------------------------------------------------------------ *)
(* Public entry point                                                 *)
(* ------------------------------------------------------------------ *)

let solve ?(tol = 1e-8) ?(max_outer = 60) ?stats ?warm_start ?(kernel = `Compiled)
    ?deadline_ns ?(initial_reg = 1e-9) problem =
  match kernel with
  | `Batched ->
    (* A standalone batched solve is a batch of one: compile the
       structure, pack the single member, run the batched driver. *)
    let plan = Batch.compile problem in
    let block = Batch.pack plan [| problem |] in
    solve_batched ~tol ~max_outer ?stats ?warm_start ?deadline_ns ~initial_reg block 0
  | (`Compiled | `List) as kernel ->
    solve_scalar ~tol ~max_outer ?stats ?warm_start ~kernel ?deadline_ns ~initial_reg
      problem
