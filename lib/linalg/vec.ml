type t = float array

let create n = Array.make n 0.0

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let get = Array.get

let set = Array.set

let fill x v = Array.fill x 0 (Array.length x) v

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

let add x y =
  check_dims "add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_dims "sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let axpy a x y =
  check_dims "axpy" x y;
  Array.mapi (fun i xi -> (a *. xi) +. y.(i)) x

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0.0 x

let max_elt x =
  if Array.length x = 0 then invalid_arg "Vec.max_elt: empty vector";
  Array.fold_left Float.max x.(0) x

let map = Array.map

let map2 f x y =
  check_dims "map2" x y;
  Array.mapi (fun i xi -> f xi y.(i)) x

let concat x y = Array.append x y

let slice x pos len = Array.sub x pos len

let pp ppf x =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    x
