(** Process-wide metric registry: counters, gauges and log-scale
    histograms.

    Like {!Trace}, metrics are {e disabled by default}: every update
    ({!add}, {!incr}, {!set}, {!observe_max}, {!observe}) is a no-op
    behind a single atomic-load branch until {!enable} is called, so
    instrumented code pays nothing in normal runs and recording cannot
    perturb results.  Handle creation ({!counter} / {!gauge} /
    {!histogram}) registers the metric whether or not recording is
    enabled, and is idempotent per name.

    All updates are atomic and may come from any domain.

    {2 Determinism contract}

    The registry distinguishes quantities by how they aggregate:

    - {e counters} accumulate sums of work items (solver iterations,
      candidates, tasks).  Instrumented code must only feed counters with
      quantities that are functions of the input, never of scheduling —
      so for a fixed workload, counter values are identical for any
      [--jobs] setting and with tracing on or off ({!counters} is the
      deterministic subset used by the regression tests);
    - {e gauges} keep a single float.  {!observe_max} merges by maximum,
      which is order-independent and therefore also deterministic for
      deterministic inputs; {!set} is last-write-wins and is not;
    - {e histograms} record {e timing} distributions (queue waits).
      Their contents depend on scheduling and load by nature and are
      excluded from any determinism comparison. *)

type counter
type gauge
type histogram

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val counter : string -> counter
(** Registers the counter on first use.  Raises [Invalid_argument] if the
    name is already registered as a different metric kind. *)

val add : counter -> int -> unit
val incr : counter -> unit

val gauge : string -> gauge
val set : gauge -> float -> unit
val observe_max : gauge -> float -> unit
(** Set the gauge to the maximum of its current value and the argument
    (atomically).  An unset gauge is [neg_infinity] for this merge and
    reads as [0.0] in snapshots until first set. *)

val now_ns : unit -> float
(** Wall-clock nanoseconds, for stamping enqueue times fed into timing
    histograms.  Callers should skip the clock read entirely when
    {!enabled} is false. *)

val histogram : string -> histogram
val observe : histogram -> float -> unit
(** Record a non-negative sample into log-2 buckets (bucket [i] counts
    samples in [(2^(i-1), 2^i]]; samples [<= 1] land in bucket 0). *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; buckets : (float * int) list }
      (** [buckets] lists only non-empty buckets as (inclusive upper
          bound, count), ascending. *)

val snapshot : unit -> (string * value) list
(** Every registered metric with its current value, sorted by name. *)

val counters : (string * value) list -> (string * int) list
(** The counter subset of a snapshot — the deterministic slice compared
    by the regression tests. *)

val pp_text : Format.formatter -> (string * value) list -> unit
(** Human-readable table: one line per metric. *)

val to_json : (string * value) list -> string
(** One JSON object:
    [{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
    "sum":..,"buckets":{"<bound>":count,...}},...}}]. *)
