#!/bin/sh
# perfdiff.sh BASELINE.json CURRENT.json [tolerance-percent]
#
# Compares two flat BENCH_*.json files (one-level objects of
# "key": number pairs, as emitted by bench/solver.exe) and fails with
# exit 1 if any tracked metric regressed by more than the tolerance
# (default 10%).  Direction is inferred from the key name:
#   *wall_s             lower is better
#   *wall_mean_s        lower is better (mean-of-repeats companion)
#   *_ms                lower is better (serve latency percentiles)
#   *solves_per_s       higher is better
#   *speedup            higher is better
#   *_pruned            higher is better (presolve coverage)
#   *hit_rate           higher is better (serve cache)
#   *req_per_s          higher is better (serve throughput)
# All other keys are informational and only reported when they change.
# The comm_* keys from the communication-limited scenario follow the
# same suffix rules (comm_aware_wall_s is lower-better, &c.);
# comm_lowering_overhead is a cost ratio, deliberately informational —
# a richer lowering is allowed to cost solver time.
#
# A *speedup key whose current value hovers around 1.0 (within 5%) gets
# a "~1.0 WARN" marker: the feature it measures is enabled but buying
# nothing, which deserves a look even though it is not a regression.
# The warning never affects the exit status.
#
# A directional key present in the baseline but absent from the current
# file is itself a failure (exit 1): a bench that silently stops
# emitting a tracked metric must not read as a pass.
set -eu

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 BASELINE.json CURRENT.json [tolerance-percent]" >&2
    exit 2
fi

baseline=$1
current=$2
tolerance=${3:-10}

for f in "$baseline" "$current"; do
    [ -r "$f" ] || { echo "perfdiff: cannot read $f" >&2; exit 2; }
done

# Flatten  "key": 12.5  pairs to  key 12.5  lines (numbers only; quoted
# string values like "layers" drop out here).
pairs() {
    tr ',{}' '\n\n\n' < "$1" |
        sed -n 's/^[[:space:]]*"\([^"]*\)"[[:space:]]*:[[:space:]]*\(-\{0,1\}[0-9][0-9.eE+-]*\)[[:space:]]*$/\1 \2/p'
}

pairs "$baseline" > "${TMPDIR:-/tmp}/perfdiff_base.$$"
pairs "$current" > "${TMPDIR:-/tmp}/perfdiff_cur.$$"
trap 'rm -f "${TMPDIR:-/tmp}/perfdiff_base.$$" "${TMPDIR:-/tmp}/perfdiff_cur.$$"' EXIT

status=0
found=0
while read -r key cur; do
    base=$(awk -v k="$key" '$1 == k { print $2; exit }' "${TMPDIR:-/tmp}/perfdiff_base.$$")
    [ -n "$base" ] || continue
    case $key in
        *wall_s | *wall_mean_s | *_ms) dir=lower ;;
        *solves_per_s | *speedup | *_pruned | *hit_rate | *req_per_s) dir=higher ;;
        *) dir=info ;;
    esac
    ratio=0
    case $key in *speedup) ratio=1 ;; esac
    line=$(awk -v k="$key" -v b="$base" -v c="$cur" -v d="$dir" -v tol="$tolerance" \
               -v ratio="$ratio" '
        BEGIN {
            delta = (b == 0) ? 0 : 100 * (c - b) / b
            verdict = "ok"
            if (d == "lower" && delta > tol) verdict = "REGRESSION"
            if (d == "higher" && delta < -tol) verdict = "REGRESSION"
            if (d == "info") verdict = (c == b) ? "same" : "changed"
            if (ratio && verdict == "ok" && c >= 0.95 && c <= 1.05)
                verdict = "~1.0 WARN"
            printf "%-25s %14g %14g %+8.1f%%  %s", k, b, c, delta, verdict
        }')
    echo "$line"
    case $line in *REGRESSION) status=1 ;; esac
    case $dir in lower | higher) found=$((found + 1)) ;; esac
done < "${TMPDIR:-/tmp}/perfdiff_cur.$$"

# Baseline-only directional keys: the current run dropped a tracked
# metric, which would otherwise pass vacuously.
missing=0
while read -r key base; do
    case $key in
        *wall_s | *wall_mean_s | *_ms | *solves_per_s | *speedup | *_pruned \
            | *hit_rate | *req_per_s) ;;
        *) continue ;;
    esac
    cur=$(awk -v k="$key" '$1 == k { print $2; exit }' "${TMPDIR:-/tmp}/perfdiff_cur.$$")
    [ -n "$cur" ] && continue
    printf '%-25s %14g %14s %9s  MISSING\n' "$key" "$base" "-" "-"
    missing=$((missing + 1))
    status=1
done < "${TMPDIR:-/tmp}/perfdiff_base.$$"

if [ "$found" -eq 0 ] && [ "$missing" -eq 0 ]; then
    echo "perfdiff: no tracked metrics in common between $baseline and $current" >&2
    exit 2
fi
[ "$status" -eq 0 ] && echo "perfdiff: no regression beyond ${tolerance}%"
exit $status
