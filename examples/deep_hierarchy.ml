(* Arbitrary tiling depth: the paper's Algorithm 1 is not limited to the
   canonical 3-level memory hierarchy.  This example analyzes a 5-level
   structure (two temporal levels above the PE array, as in the paper's
   Fig. 3(e) Timeloop mapping), checks the symbolic volumes against the
   concrete model on an integer mapping, and prints both.

   Run with:  dune exec examples/deep_hierarchy.exe *)

module V = Thistle.Volume
module Mapping = Mapspace.Mapping
module Level = Mapspace.Level
module Counts = Accmodel.Counts

let () =
  let nest = Workload.Matmul.nest ~ni:64 ~nj:64 ~nk:64 () in
  Format.printf "%a@.@." Workload.Nest.pp nest;
  let perms =
    [ [ "i"; "j"; "k" ]; [ "k"; "j"; "i" ]; [ "i"; "k"; "j" ]; [ "j"; "i"; "k" ] ]
  in
  let levels =
    [
      V.Temporal (List.nth perms 0);
      (* register-tile interior *)
      V.Temporal (List.nth perms 1);
      (* per-PE sequential *)
      V.Spatial;
      (* PE array *)
      V.Temporal (List.nth perms 2);
      (* global-buffer sequential *)
      V.Temporal (List.nth perms 3);
      (* DRAM-level *)
    ]
  in
  let analysis = V.analyze_general nest ~levels in
  print_endline "symbolic fill volumes per tensor and temporal boundary:";
  List.iter
    (fun (name, rw, boundaries) ->
      List.iter
        (fun b ->
          Format.printf "  %s%s @L%d: %s@." name
            (if rw then "(rw)" else "")
            b.V.level
            (Symexpr.Posynomial.to_string (V.volume_posynomial b.V.fill)))
        boundaries)
    analysis.V.g_tensors;
  (* A concrete 5-level mapping: factors 2/2/4/2/2 per dim (product 64). *)
  let factors f = List.map (fun d -> (d, f)) [ "i"; "j"; "k" ] in
  let mapping =
    Mapping.make
      [
        { Mapping.kind = Level.Temporal; factors = factors 2; perm = List.nth perms 0 };
        { Mapping.kind = Level.Temporal; factors = factors 2; perm = List.nth perms 1 };
        { Mapping.kind = Level.Spatial; factors = factors 4; perm = [] };
        { Mapping.kind = Level.Temporal; factors = factors 2; perm = List.nth perms 2 };
        { Mapping.kind = Level.Temporal; factors = factors 2; perm = List.nth perms 3 };
      ]
  in
  let counts = Result.get_ok (Counts.compute nest mapping) in
  let env = Mapping.env mapping in
  Format.printf "@.concrete mapping check (symbolic = model):@.";
  List.iter
    (fun (name, _, boundaries) ->
      let tc =
        List.find (fun t -> t.Counts.tensor = name) counts.Counts.per_tensor
      in
      List.iter
        (fun b ->
          let symbolic = V.volume_eval_exact env b.V.fill in
          let concrete = List.assoc b.V.level tc.Counts.fills in
          Format.printf "  %s @L%d: %.0f words %s@." name b.V.level symbolic
            (if Float.abs (symbolic -. concrete) < 1e-9 then "(matches)"
             else Printf.sprintf "(MODEL DISAGREES: %.0f)" concrete))
        boundaries)
    analysis.V.g_tensors
