(* Tests for the multi-layer flows behind Figs. 6 and 8: layer-wise
   optimization, dominant-layer architecture selection, and fixed-arch
   re-optimization. *)

module Pl = Thistle.Pipeline
module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Evaluate = Accmodel.Evaluate

let tech = Archspec.Technology.table3

let layers =
  List.map Workload.Conv.to_nest
    [
      Workload.Conv.make ~name:"l-small" ~k:8 ~c:8 ~hw:8 ~rs:3 ();
      Workload.Conv.make ~name:"l-large" ~k:32 ~c:32 ~hw:16 ~rs:3 ();
      Workload.Conv.make ~name:"l-1x1" ~k:16 ~c:32 ~hw:16 ~rs:1 ();
    ]

let budget = 6.0e5

let fast_config = { O.default_config with O.max_choices = 12; top_choices = 2 }

let entries =
  lazy
    (Pl.run_layers ~config:fast_config tech
       (F.Codesign { area_budget = budget })
       F.Energy layers)

let test_all_layers_succeed () =
  List.iter
    (fun (e : Pl.entry) ->
      match e.Pl.result with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s failed: %s" (Workload.Nest.name e.Pl.nest) msg)
    (Lazy.force entries)

let test_dominant_arch_is_max_energy () =
  let entries = Lazy.force entries in
  let arch = Result.get_ok (Pl.dominant_arch F.Energy entries) in
  (* The dominant layer is the one with the largest total energy; check
     the returned architecture is that layer's. *)
  let with_metrics =
    List.filter_map
      (fun (e : Pl.entry) ->
        match e.Pl.result with
        | Ok r -> Some (r.O.outcome.I.arch, r.O.outcome.I.metrics.Evaluate.energy_pj)
        | Error _ -> None)
      entries
  in
  let max_energy = List.fold_left (fun m (_, e) -> Float.max m e) 0.0 with_metrics in
  let expected, _ = List.find (fun (_, e) -> e = max_energy) with_metrics in
  Alcotest.(check string) "dominant arch" expected.Arch.arch_name arch.Arch.arch_name;
  Alcotest.(check bool) "within budget" true (Arch.area tech arch <= budget)

let test_fixed_arch_rerun () =
  let entries = Lazy.force entries in
  let arch = Result.get_ok (Pl.dominant_arch F.Energy entries) in
  let fixed = Pl.run_layers ~config:fast_config tech (F.Fixed arch) F.Energy layers in
  List.iter2
    (fun (layerwise : Pl.entry) (fixed_entry : Pl.entry) ->
      match (Pl.metrics layerwise, Pl.metrics fixed_entry) with
      | Some lw, Some fx ->
        (* A single shared architecture can only do as well or worse than
           the per-layer one (up to integerization noise). *)
        Alcotest.(check bool)
          (Printf.sprintf "%s: fixed %.3g >= 0.95 * layerwise %.3g"
             (Workload.Nest.name layerwise.Pl.nest)
             fx.Evaluate.energy_pj lw.Evaluate.energy_pj)
          true
          (fx.Evaluate.energy_pj >= lw.Evaluate.energy_pj *. 0.95)
      | _ ->
        (* The dominant-layer architecture may be infeasible for another
           layer only if its register file cannot hold the window tiles;
           with these layers it should always be feasible. *)
        Alcotest.failf "missing metrics for %s" (Workload.Nest.name layerwise.Pl.nest))
    entries fixed

let test_delay_dominance () =
  (* Under the delay objective the dominant layer is the one with the
     largest cycle count, not the largest energy. *)
  let entries =
    Pl.run_layers ~config:fast_config tech
      (F.Codesign { area_budget = budget })
      F.Delay layers
  in
  let arch = Result.get_ok (Pl.dominant_arch F.Delay entries) in
  let cycles_of (e : Pl.entry) =
    match Pl.metrics e with Some m -> m.Evaluate.cycles | None -> neg_infinity
  in
  let slowest =
    List.fold_left
      (fun acc e -> if cycles_of e > cycles_of acc then e else acc)
      (List.hd entries) (List.tl entries)
  in
  (match slowest.Pl.result with
  | Ok r ->
    Alcotest.(check string)
      "dominant is the slowest layer's arch"
      r.O.outcome.I.arch.Arch.arch_name arch.Arch.arch_name
  | Error msg -> Alcotest.failf "slowest layer failed: %s" msg);
  Alcotest.(check bool) "within budget" true (Arch.area tech arch <= budget)

(* Lock in the selection rule: the layer with the LARGEST finite score
   wins (the worst-case layer, not the best one), ties keep the earliest
   layer, and non-finite scores never win.  Entries are fabricated from a
   real report so only the scoring inputs vary. *)
let test_dominant_arch_semantics () =
  let base =
    match Lazy.force entries with
    | ({ Pl.result = Ok _; _ } as e) :: _ -> e
    | _ -> Alcotest.fail "fixture: first layer failed"
  in
  let r = Result.get_ok base.Pl.result in
  let entry name energy =
    let o = r.O.outcome in
    let metrics = { o.I.metrics with Evaluate.energy_pj = energy } in
    let arch = { o.I.arch with Arch.arch_name = name } in
    { base with Pl.result = Ok { r with O.outcome = { o with I.metrics; I.arch } } }
  in
  let pick es = (Result.get_ok (Pl.dominant_arch F.Energy es)).Arch.arch_name in
  Alcotest.(check string) "largest energy wins" "worst"
    (pick [ entry "low" 1.0; entry "worst" 9.0; entry "mid" 3.0 ]);
  Alcotest.(check string) "tie keeps the earliest layer" "first"
    (pick [ entry "first" 9.0; entry "second" 9.0; entry "third" 1.0 ]);
  Alcotest.(check string) "non-finite scores never win" "real"
    (pick [ entry "nan" Float.nan; entry "real" 2.0; entry "inf" Float.infinity ])

let test_dominant_arch_no_successes () =
  let hopeless = Arch.make ~name:"hopeless" ~pes:1 ~registers:2 ~sram_words:16 in
  let entries =
    Pl.run_layers ~config:fast_config tech (F.Fixed hopeless) F.Energy
      [ List.hd layers ]
  in
  match Pl.dominant_arch F.Energy entries with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure with no successful layers"

let () =
  Alcotest.run "pipeline"
    [
      ( "flows",
        [
          Alcotest.test_case "layer-wise succeeds" `Quick test_all_layers_succeed;
          Alcotest.test_case "dominant arch" `Quick test_dominant_arch_is_max_energy;
          Alcotest.test_case "fixed-arch rerun" `Quick test_fixed_arch_rerun;
          Alcotest.test_case "delay dominance" `Quick test_delay_dominance;
          Alcotest.test_case "dominant-arch semantics" `Quick test_dominant_arch_semantics;
          Alcotest.test_case "no successes" `Quick test_dominant_arch_no_successes;
        ] );
    ]
