(** Exact data-movement counts for a concrete mapping, following the
    semantics of the paper's Algorithm 1 with integer trip counts.

    For each tensor and each temporal tiling level above the innermost,
    the copy into the lower storage is hoisted above every loop of that
    level that does not appear in the tensor reference; the innermost
    {e present} loop is folded into the copied footprint (sliding-window
    union), and all outer loops multiply the volume.  Spatial levels
    multiply only the factors of present dims — absent dims are served by
    multicast (and, for read-write tensors, by spatial reduction), as in
    the paper's model.

    Footprints use the exact affine extents including the halo constant
    ([sum stride*extent - sum stride + 1] per projection); nothing is
    relaxed here, unlike the posynomial view used by the optimizer. *)

type tensor_counts = {
  tensor : string;
  read_write : bool;
  fills : (int * float) list;
      (** [(level, words)] for each temporal level [l >= 1]: words copied
          {e into} the storage below level [l] across the whole execution
          (one direction; read-write tensors drain the same volume back) *)
  copies : (int * float) list;
      (** [(level, n)]: number of copy executions behind the fill volume
          — [fills = copies * copy_words] exactly (all three are
          integer-valued floats) *)
  copy_words : (int * float) list;
      (** [(level, words)]: words moved by one copy at that boundary;
          identical across copies because the tile shape does not depend
          on the loop indices *)
  footprints : (int * float) list;
      (** [(level, words)] buffer size the tensor needs at each level
          boundary: the exact footprint of the tile defined by levels
          [0..l-1] (per PE for levels at or below the spatial level) *)
}

type t = {
  macs : float;
  pes_used : int;
  per_tensor : tensor_counts list;
}

val compute : Workload.Nest.t -> Mapspace.Mapping.t -> (t, string) result
(** Validates the mapping against the nest first. *)

(* Canonical-hierarchy accessors (4 levels: reg, pe-temporal, spatial,
   dram-temporal).  All raise [Invalid_argument] if the mapping did not
   have the canonical structure. *)

val sram_to_reg : t -> float
(** Total words read from SRAM into register files (multicast counted
    once), summed over tensors. *)

val reg_to_sram : t -> float
(** Write-back traffic of read-write tensors. *)

val dram_to_sram : t -> float

val sram_to_dram : t -> float

val boundary_bursts :
  ?rw_only:bool -> t -> level:int -> burst_words:float -> float
(** Bursts needed to move one direction of a boundary's traffic: per
    tensor, [copies * ceil(copy_words / burst_words)] — each copy is
    quantized to whole bursts on its own, matching what the timed refsim
    observes walking the schedule.  [rw_only] restricts to read-write
    tensors (the write-back direction). *)

val reg_words_per_pe : t -> float
(** Register buffer words needed per PE (sum over tensors). *)

val sram_words_used : t -> float

val pp : Format.formatter -> t -> unit
