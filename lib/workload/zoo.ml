(* Table II of the paper.  K: output channels; C: input channels; H = W:
   input image height/width; RS: kernel size; stride 2 for entries marked
   with [*] in the table. *)

let layer prefix i (k, c, hw, rs, stride) =
  Conv.make ~name:(Printf.sprintf "%s-%d" prefix i) ~k ~c ~hw ~rs ~stride ()

let resnet18 =
  List.mapi
    (fun i spec -> layer "resnet" (i + 1) spec)
    [
      (64, 3, 224, 7, 2);
      (64, 64, 56, 3, 1);
      (64, 64, 56, 1, 1);
      (128, 64, 56, 3, 2);
      (128, 64, 56, 1, 2);
      (128, 128, 28, 3, 1);
      (256, 128, 28, 3, 2);
      (256, 128, 28, 1, 1);
      (256, 256, 14, 3, 1);
      (512, 256, 14, 3, 2);
      (512, 256, 14, 1, 2);
      (512, 512, 7, 3, 1);
    ]

let yolo9000 =
  List.mapi
    (fun i spec -> layer "yolo" (i + 1) spec)
    [
      (32, 3, 544, 3, 1);
      (64, 32, 272, 3, 1);
      (128, 64, 136, 3, 1);
      (64, 128, 136, 1, 1);
      (256, 128, 68, 3, 1);
      (128, 256, 68, 1, 1);
      (512, 256, 34, 3, 1);
      (256, 512, 34, 1, 1);
      (1024, 512, 17, 3, 1);
      (512, 1024, 17, 1, 1);
      (28269, 1024, 17, 1, 1);
    ]

(* AlexNet's conv layers (Krizhevsky et al., 2012), modeled with the same
   same-padding convention; layer 1's 11x11 stride-4 window is mapped to
   stride 4 over a 224-pixel input. *)
let alexnet =
  List.mapi
    (fun i spec -> layer "alexnet" (i + 1) spec)
    [
      (96, 3, 224, 11, 4);
      (256, 96, 27, 5, 1);
      (384, 256, 13, 3, 1);
      (384, 384, 13, 3, 1);
      (256, 384, 13, 3, 1);
    ]

(* VGG-16's conv layers (Simonyan & Zisserman, 2014): all 3x3 stride 1. *)
let vgg16 =
  List.mapi
    (fun i spec -> layer "vgg" (i + 1) spec)
    [
      (64, 3, 224, 3, 1);
      (64, 64, 224, 3, 1);
      (128, 64, 112, 3, 1);
      (128, 128, 112, 3, 1);
      (256, 128, 56, 3, 1);
      (256, 256, 56, 3, 1);
      (256, 256, 56, 3, 1);
      (512, 256, 28, 3, 1);
      (512, 512, 28, 3, 1);
      (512, 512, 28, 3, 1);
      (512, 512, 14, 3, 1);
      (512, 512, 14, 3, 1);
      (512, 512, 14, 3, 1);
    ]

let pipelines =
  [
    ("resnet18", resnet18);
    ("yolo9000", yolo9000);
    ("alexnet", alexnet);
    ("vgg16", vgg16);
  ]

let all_layers = yolo9000 @ resnet18 @ alexnet @ vgg16

let find name =
  List.find (fun l -> String.equal l.Conv.layer_name name) all_layers
