(* Tests for permutation enumeration and the paper's pruning rules. *)

module Perm = Thistle.Permutations
module Nest = Workload.Nest

let test_stencil_detection () =
  let conv = Workload.Conv.to_nest (Workload.Conv.make ~name:"c" ~k:8 ~c:8 ~hw:16 ~rs:3 ()) in
  Alcotest.(check (list string)) "conv windows" [ "r"; "s" ] (Perm.stencil_dims conv);
  let mm = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 () in
  Alcotest.(check (list string)) "matmul has none" [] (Perm.stencil_dims mm)

let test_symmetry_detection () =
  let conv = Workload.Conv.to_nest (Workload.Conv.make ~name:"c" ~k:8 ~c:8 ~hw:16 ~rs:3 ()) in
  let syms = Perm.default_symmetries conv in
  Alcotest.(check bool)
    "h<->w with r<->s detected" true
    (List.exists
       (fun swaps -> List.sort compare swaps = [ ("h", "w"); ("r", "s") ])
       syms);
  (* k and c have equal extents here, but swapping them changes the nest. *)
  Alcotest.(check bool)
    "no spurious c<->k" true
    (not (List.exists (fun swaps -> List.mem ("c", "k") swaps) syms))

let test_pinning () =
  let conv = Workload.Conv.to_nest (Workload.Conv.make ~name:"c" ~k:8 ~c:8 ~hw:16 ~rs:3 ()) in
  let plan = Perm.enumerate conv in
  Alcotest.(check (list string)) "tileable" [ "k"; "c"; "h"; "w" ] plan.Perm.tileable;
  (* Window dims pinned to the register level in full. *)
  Alcotest.(check (option (float 0.0))) "t0.r = 3" (Some 3.0) (Perm.pinned_env plan "t0.r");
  Alcotest.(check (option (float 0.0))) "t1.r = 1" (Some 1.0) (Perm.pinned_env plan "t1.r");
  Alcotest.(check (option (float 0.0))) "t3.s = 1" (Some 1.0) (Perm.pinned_env plan "t3.s");
  (* Batch dim n has extent 1: pinned everywhere. *)
  Alcotest.(check (option (float 0.0))) "t0.n = 1" (Some 1.0) (Perm.pinned_env plan "t0.n");
  Alcotest.(check (option (float 0.0))) "free vars absent" None (Perm.pinned_env plan "t0.k")

let test_pruning_counts () =
  let conv = Workload.Conv.to_nest (Workload.Conv.make ~name:"c" ~k:8 ~c:8 ~hw:16 ~rs:3 ()) in
  let plan = Perm.enumerate conv in
  let kept = List.length plan.Perm.choices in
  Alcotest.(check int) "raw = (4!)^2" 576 plan.Perm.raw_count;
  Alcotest.(check bool)
    (Printf.sprintf "pruning is substantial (kept %d)" kept)
    true
    (kept > 0 && kept < 100);
  (* Choices are unique by fingerprint. *)
  let fingerprints =
    List.map (fun (_, v) -> Thistle.Volume.fingerprint v) plan.Perm.choices
  in
  Alcotest.(check int)
    "unique fingerprints" kept
    (List.length (List.sort_uniq String.compare fingerprints))

let test_untiled_override () =
  let conv = Workload.Conv.to_nest (Workload.Conv.make ~name:"c" ~k:8 ~c:8 ~hw:16 ~rs:3 ()) in
  let plan = Perm.enumerate ~untiled:[ "r"; "s"; "c" ] conv in
  Alcotest.(check (list string)) "tileable" [ "k"; "h"; "w" ] plan.Perm.tileable;
  (* Overridden untiled dim also lives at the register level. *)
  Alcotest.(check (option (float 0.0))) "t0.c = 8" (Some 8.0) (Perm.pinned_env plan "t0.c")

let test_max_choices () =
  let conv = Workload.Conv.to_nest (Workload.Conv.make ~name:"c" ~k:8 ~c:8 ~hw:16 ~rs:3 ()) in
  let plan = Perm.enumerate ~max_choices:5 conv in
  Alcotest.(check int) "capped" 5 (List.length plan.Perm.choices)

let test_matmul_enumeration () =
  let mm = Workload.Matmul.nest ~ni:16 ~nj:16 ~nk:16 () in
  let plan = Perm.enumerate mm in
  Alcotest.(check int) "raw = (3!)^2" 36 plan.Perm.raw_count;
  Alcotest.(check bool)
    "choices dedup" true
    (List.length plan.Perm.choices < 36 && List.length plan.Perm.choices > 0);
  (* All perms mention exactly the tileable dims. *)
  List.iter
    (fun (c, _) ->
      Alcotest.(check (list string))
        "pe perm dims" [ "i"; "j"; "k" ]
        (List.sort String.compare c.Perm.pe_perm))
    plan.Perm.choices

let () =
  Alcotest.run "permutations"
    [
      ( "pruning",
        [
          Alcotest.test_case "stencil detection" `Quick test_stencil_detection;
          Alcotest.test_case "symmetry detection" `Quick test_symmetry_detection;
          Alcotest.test_case "pinning" `Quick test_pinning;
          Alcotest.test_case "pruned counts" `Quick test_pruning_counts;
          Alcotest.test_case "untiled override" `Quick test_untiled_override;
          Alcotest.test_case "max choices" `Quick test_max_choices;
          Alcotest.test_case "matmul enumeration" `Quick test_matmul_enumeration;
        ] );
    ]
