(* Tests for the technology and architecture parameter models (Table III,
   Eq. 4 and Eq. 5). *)

module Tech = Archspec.Technology
module Arch = Archspec.Arch

let tech = Tech.table3

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_float ?eps name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %g, got %g" name expected actual)
    true
    (approx ?eps expected actual)

let test_table3_values () =
  check_float "area_mac" 1239.5 tech.Tech.area_mac;
  check_float "area_register" 19.874 tech.Tech.area_register;
  check_float "area_sram_word" 6.806 tech.Tech.area_sram_word;
  check_float "energy_mac" 2.2 tech.Tech.energy_mac;
  check_float "sigma_register" 9.06719e-3 tech.Tech.sigma_register;
  check_float "sigma_sram" 17.88e-3 tech.Tech.sigma_sram;
  check_float "energy_dram" 128.0 tech.Tech.energy_dram

let test_register_energy_linear () =
  (* Eq. 4: eps_R = sigma_R * R — doubling the file doubles the cost. *)
  let e64 = Tech.register_access_energy tech ~registers:64 in
  let e128 = Tech.register_access_energy tech ~registers:128 in
  check_float "linear" (2.0 *. e64) e128;
  check_float "absolute" (9.06719e-3 *. 64.0) e64

let test_sram_energy_sqrt () =
  (* Eq. 4: eps_S = sigma_S * sqrt S — 4x the capacity doubles the cost. *)
  let e16k = Tech.sram_access_energy tech ~words:16384 in
  let e64k = Tech.sram_access_energy tech ~words:65536 in
  check_float "sqrt scaling" (2.0 *. e16k) e64k;
  check_float "absolute" (17.88e-3 *. 128.0) e16k

let test_area_model () =
  (* Eq. 5: (Area_R * R + Area_MAC) * P + Area_S * S. *)
  let a = Arch.make ~name:"t" ~pes:10 ~registers:16 ~sram_words:1000 in
  check_float "area"
    (((19.874 *. 16.0) +. 1239.5) *. 10.0 +. (6.806 *. 1000.0))
    (Arch.area tech a);
  check_float "pe area" ((19.874 *. 16.0) +. 1239.5) (Tech.pe_area tech ~registers:16)

let test_eyeriss_parameters () =
  Alcotest.(check int) "pes" 168 Arch.eyeriss.Arch.pe_count;
  Alcotest.(check int) "registers" 512 Arch.eyeriss.Arch.registers_per_pe;
  (* 128 KiB of 16-bit words. *)
  Alcotest.(check int) "sram words" 65536 Arch.eyeriss.Arch.sram_words

let test_validation () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Arch.make: all parameters must be positive") (fun () ->
      ignore (Arch.make ~name:"bad" ~pes:0 ~registers:1 ~sram_words:1))

(* Every float field of the technology point must be finite and positive:
   a NaN or zero bandwidth would otherwise flow into the DGP as [1/bw]
   and surface much later (or not at all) as a sign-flipped coefficient. *)
let test_technology_validation () =
  let ok = tech in
  let make ?(area_mac = ok.Tech.area_mac) ?(area_register = ok.Tech.area_register)
      ?(area_sram_word = ok.Tech.area_sram_word) ?(energy_mac = ok.Tech.energy_mac)
      ?(sigma_register = ok.Tech.sigma_register) ?(sigma_sram = ok.Tech.sigma_sram)
      ?(energy_dram = ok.Tech.energy_dram)
      ?(dram_bandwidth = ok.Tech.dram_bandwidth)
      ?(sram_bandwidth = ok.Tech.sram_bandwidth) () =
    Tech.make ~area_mac ~area_register ~area_sram_word ~energy_mac
      ~sigma_register ~sigma_sram ~energy_dram ~dram_bandwidth ~sram_bandwidth
      ~links:ok.Tech.links
  in
  (* The all-defaults build reproduces the valid point. *)
  Alcotest.(check bool) "valid point accepted" true (make () = ok);
  let rejects field build =
    List.iter
      (fun bad ->
        match build bad with
        | exception Invalid_argument msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%s=%g names the field" field bad)
            true
            (String.length msg >= String.length field
            &&
            let rec contains i =
              i + String.length field <= String.length msg
              && (String.sub msg i (String.length field) = field
                 || contains (i + 1))
            in
            contains 0)
        | _ -> Alcotest.failf "%s = %g accepted" field bad)
      [ 0.0; -1.0; Float.nan; Float.infinity ]
  in
  rejects "area_mac" (fun v -> make ~area_mac:v ());
  rejects "area_register" (fun v -> make ~area_register:v ());
  rejects "area_sram_word" (fun v -> make ~area_sram_word:v ());
  rejects "energy_mac" (fun v -> make ~energy_mac:v ());
  rejects "sigma_register" (fun v -> make ~sigma_register:v ());
  rejects "sigma_sram" (fun v -> make ~sigma_sram:v ());
  rejects "energy_dram" (fun v -> make ~energy_dram:v ());
  rejects "dram_bandwidth" (fun v -> make ~dram_bandwidth:v ());
  rejects "sram_bandwidth" (fun v -> make ~sram_bandwidth:v ())

let test_link_validation () =
  let module Link = Archspec.Link in
  let reject what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  List.iter
    (fun bad ->
      reject "bandwidth" (fun () ->
          Link.make ~bandwidth:bad ~burst_words:8.0 ~burst_overhead:1.0);
      reject "burst_words" (fun () ->
          Link.make ~bandwidth:8.0 ~burst_words:bad ~burst_overhead:1.0))
    [ 0.0; -2.0; Float.nan; Float.infinity ];
  List.iter
    (fun bad ->
      reject "burst_overhead" (fun () ->
          Link.make ~bandwidth:8.0 ~burst_words:8.0 ~burst_overhead:bad))
    [ -1.0; Float.nan; Float.infinity ];
  (* Zero overhead is a legal (overhead-free) link. *)
  let l = Link.make ~bandwidth:8.0 ~burst_words:32.0 ~burst_overhead:0.0 in
  check_float "busy words/bw" 4.0 (Link.busy l ~words:32.0 ~bursts:7.0);
  let l' = Link.make ~bandwidth:8.0 ~burst_words:32.0 ~burst_overhead:4.0 in
  check_float "burst overhead counted" 8.0 (Link.busy l' ~words:32.0 ~bursts:1.0);
  (* 4 words: 0.5 cycles on the wire + 4/32 of a burst's 4-cycle setup. *)
  check_float "stream busy uses fractional bursts" 1.0
    (Link.stream_busy l' ~words:4.0);
  check_float "cycles per word" (1.0 /. 8.0 +. 4.0 /. 32.0) (Link.cycles_per_word l')

let test_node_scaling () =
  (* Halving the feature size quarters on-chip area and dynamic energy. *)
  let t22 = Tech.scale_to_node tech ~node_nm:22.5 in
  check_float "area_mac" (tech.Tech.area_mac /. 4.0) t22.Tech.area_mac;
  check_float "sigma_register" (tech.Tech.sigma_register /. 4.0) t22.Tech.sigma_register;
  check_float "energy_mac" (tech.Tech.energy_mac /. 4.0) t22.Tech.energy_mac;
  (* Off-chip DRAM untouched. *)
  check_float "dram" tech.Tech.energy_dram t22.Tech.energy_dram;
  check_float "bandwidth" tech.Tech.sram_bandwidth t22.Tech.sram_bandwidth;
  (* Identity at the reference node. *)
  let t45 = Tech.scale_to_node tech ~node_nm:Tech.reference_node_nm in
  check_float "identity" tech.Tech.area_mac t45.Tech.area_mac;
  Alcotest.check_raises "bad node"
    (Invalid_argument "Technology.scale_to_node: node must be positive") (fun () ->
      ignore (Tech.scale_to_node tech ~node_nm:0.0))

let prop_area_monotone =
  let gen =
    QCheck2.Gen.(
      triple (int_range 1 2048) (int_range 1 2048) (int_range 1 (1 lsl 18)))
  in
  QCheck2.Test.make ~name:"area increases in every parameter" ~count:200 gen
    (fun (pes, registers, sram_words) ->
      let base = Arch.make ~name:"b" ~pes ~registers ~sram_words in
      let bigger which =
        match which with
        | `P -> Arch.make ~name:"b" ~pes:(pes + 1) ~registers ~sram_words
        | `R -> Arch.make ~name:"b" ~pes ~registers:(registers + 1) ~sram_words
        | `S -> Arch.make ~name:"b" ~pes ~registers ~sram_words:(sram_words + 1)
      in
      List.for_all
        (fun w -> Arch.area tech (bigger w) > Arch.area tech base)
        [ `P; `R; `S ])

let prop_energy_monotone =
  let gen = QCheck2.Gen.(pair (int_range 1 4096) (int_range 1 (1 lsl 20))) in
  QCheck2.Test.make ~name:"per-access energies increase with capacity" ~count:200 gen
    (fun (registers, words) ->
      Tech.register_access_energy tech ~registers:(registers * 2)
      > Tech.register_access_energy tech ~registers
      && Tech.sram_access_energy tech ~words:(words * 4)
         > Tech.sram_access_energy tech ~words)

let () =
  Alcotest.run "archspec"
    [
      ( "technology",
        [
          Alcotest.test_case "table III" `Quick test_table3_values;
          Alcotest.test_case "register energy linear" `Quick test_register_energy_linear;
          Alcotest.test_case "sram energy sqrt" `Quick test_sram_energy_sqrt;
          Alcotest.test_case "area model" `Quick test_area_model;
        ] );
      ( "architectures",
        [
          Alcotest.test_case "eyeriss" `Quick test_eyeriss_parameters;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "technology validation" `Quick test_technology_validation;
          Alcotest.test_case "link validation" `Quick test_link_validation;
          Alcotest.test_case "node scaling" `Quick test_node_scaling;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_area_monotone; prop_energy_monotone ] );
    ]
