(* Tests for the symbolic Algorithm 1: exact reproduction of the paper's
   matmul volume expressions (Eq. 1/2), the Table I construction trace for
   conv, and agreement with the concrete model on integer points. *)

module M = Symexpr.Monomial
module P = Symexpr.Posynomial
module V = Thistle.Volume
module Nest = Workload.Nest
module Counts = Accmodel.Counts
module Mapping = Mapspace.Mapping

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs b)

let check_posy name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %s, got %s" name (P.to_string expected) (P.to_string actual))
    true (P.equal expected actual)

let mono exps = P.of_monomial (M.make 1.0 (List.map (fun (v, e) -> (v, e)) exps))

(* The paper's matmul with SRAM-level permutation <i,k,j> and register
   level <i,j,k> (Fig. 1 / Eq. 1-2). *)
let matmul_analysis () =
  let nest = Workload.Matmul.nest ~ni:64 ~nj:64 ~nk:64 () in
  V.analyze nest ~pe_perm:[ "i"; "j"; "k" ] ~dram_perm:[ "i"; "k"; "j" ]

let tensor_volumes name analysis =
  List.find (fun tv -> tv.V.tensor = name) analysis.V.per_tensor

let test_eq1_dram_volumes () =
  let a = matmul_analysis () in
  (* DVol_A^{D->S} = N_i N_k: every level of i and k, nothing of j. *)
  let full d = List.map (fun l -> (Printf.sprintf "t%d.%s" l d, 1.0)) [ 0; 1; 2; 3 ] in
  check_posy "A" (mono (full "i" @ full "k"))
    (V.volume_posynomial (tensor_volumes "A" a).V.dram_to_sram);
  (* DVol_B^{D->S} = N_i N_j N_k / S_i: i contributes only its DRAM trip. *)
  check_posy "B"
    (mono ([ ("t3.i", 1.0) ] @ full "j" @ full "k"))
    (V.volume_posynomial (tensor_volumes "B" a).V.dram_to_sram);
  (* DVol_C^{D->S} = N_i N_j N_k / S_k. *)
  check_posy "C"
    (mono (full "i" @ full "j" @ [ ("t3.k", 1.0) ]))
    (V.volume_posynomial (tensor_volumes "C" a).V.dram_to_sram)

let test_eq2_sram_volumes () =
  let a = matmul_analysis () in
  let full d = List.map (fun l -> (Printf.sprintf "t%d.%s" l d, 1.0)) [ 0; 1; 2; 3 ] in
  (* DVol_A^{S->R} = N_i N_j N_k / (R_j P_j): j misses t0 and t2. *)
  check_posy "A"
    (mono (full "i" @ [ ("t1.j", 1.0); ("t3.j", 1.0) ] @ full "k"))
    (V.volume_posynomial (tensor_volumes "A" a).V.sram_to_reg);
  (* DVol_B^{S->R} = N_i N_j N_k / (R_i P_i). *)
  check_posy "B"
    (mono ([ ("t1.i", 1.0); ("t3.i", 1.0) ] @ full "j" @ full "k"))
    (V.volume_posynomial (tensor_volumes "B" a).V.sram_to_reg);
  (* DVol_C^{S->R} = N_i N_j N_k / S_k. *)
  check_posy "C"
    (mono (full "i" @ full "j" @ [ ("t3.k", 1.0) ]))
    (V.volume_posynomial (tensor_volumes "C" a).V.sram_to_reg)

let test_register_footprints () =
  let a = matmul_analysis () in
  (* DF^0_C = R_i R_j. *)
  check_posy "C reg tile"
    (mono [ ("t0.i", 1.0); ("t0.j", 1.0) ])
    (Symexpr.Footprint.to_posynomial (tensor_volumes "C" a).V.register_footprint);
  (* SRAM footprint of C = S_i S_j = through level 2. *)
  check_posy "C sram tile"
    (mono
       [ ("t0.i", 1.0); ("t1.i", 1.0); ("t2.i", 1.0); ("t0.j", 1.0); ("t1.j", 1.0); ("t2.j", 1.0) ])
    (Symexpr.Footprint.to_posynomial (tensor_volumes "C" a).V.sram_footprint)

(* Table I: level-1 construction for conv with In[n][c][h+r][2w+s] and
   permutation <w,n,k,h,c,s,r> (outer to inner).  We check the exact
   evaluations of DV^1 against the table's final expressions. *)
let table1_nest =
  let idx ?(stride = 1) iter = { Nest.stride; iter } in
  Nest.make ~name:"table1"
    ~dims:
      (List.map
         (fun (d, e) -> { Nest.dim_name = d; extent = e })
         [ ("n", 8); ("k", 8); ("c", 8); ("r", 3); ("s", 3); ("h", 8); ("w", 8) ])
    ~tensors:
      [
        {
          Nest.tensor_name = "Out";
          projections = [ [ idx "n" ]; [ idx "k" ]; [ idx "h" ]; [ idx "w" ] ];
          read_write = true;
        };
        {
          Nest.tensor_name = "In";
          projections =
            [ [ idx "n" ]; [ idx "c" ]; [ idx "h"; idx "r" ]; [ idx ~stride:2 "w"; idx "s" ] ];
          read_write = false;
        };
      ]

let random_env seed =
  let rng = Random.State.make [| seed |] in
  let table = Hashtbl.create 16 in
  fun v ->
    match Hashtbl.find_opt table v with
    | Some x -> x
    | None ->
      let x = float_of_int (1 + Random.State.int rng 5) in
      Hashtbl.replace table v x;
      x

let test_table1_trace () =
  let perm = [ "w"; "n"; "k"; "h"; "c"; "s"; "r" ] in
  let check_tensor name expected_of_env =
    let tensor = Nest.tensor table1_nest name in
    let df0 = V.register_tile_footprint tensor in
    let _df1, dv = V.construct ~level:1 ~perm ~tensor df0 in
    List.iter
      (fun seed ->
        let env = random_env seed in
        let q d = env (Printf.sprintf "t1.%s" d) in
        let r d = env (Printf.sprintf "t0.%s" d) in
        let expected = expected_of_env q r in
        let actual = V.volume_eval_exact env dv in
        Alcotest.(check bool)
          (Printf.sprintf "%s seed %d: expected %g got %g" name seed expected actual)
          true (approx expected actual))
      [ 1; 2; 3; 4; 5 ]
  in
  (* Final row of Table I (modulo the paper's read+write factor 2, which
     this project applies at the accounting layer):
     DV_In = q_w q_n q_k q_h q_c q_s * r_n r_c (r_h + q_r r_r - 1)(2 r_w + r_s - 2). *)
  check_tensor "In" (fun q r ->
      q "w" *. q "n" *. q "k" *. q "h" *. q "c" *. q "s"
      *. (r "n" *. r "c"
         *. ((r "h" +. (q "r" *. r "r") -. 1.0) *. ((2.0 *. r "w") +. r "s" -. 2.0))));
  (* DV_Out = q_w q_n q_k * (r_n r_k q_h r_h r_w). *)
  check_tensor "Out" (fun q r ->
      q "w" *. q "n" *. q "k" *. (r "n" *. r "k" *. q "h" *. r "h" *. r "w"))

(* Hoisting stops at the innermost present iterator: for Ker-like tensors
   the expression from the worked example in Section III-A. *)
let test_ker_example () =
  let idx iter = { Nest.stride = 1; iter } in
  let nest =
    Nest.make ~name:"ker"
      ~dims:
        (List.map
           (fun (d, e) -> { Nest.dim_name = d; extent = e })
           [ ("n", 4); ("k", 4); ("c", 4); ("r", 3); ("s", 3); ("h", 4); ("w", 4) ])
      ~tensors:
        [
          {
            Nest.tensor_name = "Ker";
            projections = [ [ idx "k" ]; [ idx "c" ]; [ idx "r" ]; [ idx "s" ] ];
            read_write = false;
          };
        ]
  in
  let tensor = Nest.tensor nest "Ker" in
  let df0 = V.register_tile_footprint tensor in
  let df1, dv = V.construct ~level:1 ~perm:[ "w"; "n"; "k"; "h"; "c"; "s"; "r" ] ~tensor df0 in
  (* DF^1 = q_k r_k q_c r_c q_r r_r q_s r_s. *)
  check_posy "DF1"
    (mono
       [
         ("t0.k", 1.0); ("t1.k", 1.0); ("t0.c", 1.0); ("t1.c", 1.0);
         ("t0.r", 1.0); ("t1.r", 1.0); ("t0.s", 1.0); ("t1.s", 1.0);
       ])
    (Symexpr.Footprint.to_posynomial df1);
  (* DV^1 = q_w q_n q_k q_h q_c q_s (r_k r_c q_r r_r r_s). *)
  check_posy "DV1"
    (mono
       [
         ("t1.w", 1.0); ("t1.n", 1.0); ("t1.k", 1.0); ("t1.h", 1.0); ("t1.c", 1.0);
         ("t1.s", 1.0); ("t0.k", 1.0); ("t0.c", 1.0); ("t1.r", 1.0); ("t0.r", 1.0);
         ("t0.s", 1.0);
       ])
    (V.volume_posynomial dv)

(* Symbolic volumes evaluated at a concrete mapping must equal the model's
   counted fills, whenever every factor is > 1 (so syntactic and
   trip-count hoisting coincide) and perms match. *)
let prop_symbolic_matches_model =
  let gen = QCheck2.Gen.int_range 0 10000 in
  QCheck2.Test.make ~name:"symbolic volume = model counts (pow2 matmul)" ~count:100 gen
    (fun seed ->
      let nest = Workload.Matmul.nest ~ni:16 ~nj:16 ~nk:16 () in
      let rng = Random.State.make [| seed |] in
      let dims = [ "i"; "j"; "k" ] in
      let shuffle xs =
        List.map snd
          (List.sort compare (List.map (fun x -> (Random.State.bits rng, x)) xs))
      in
      let pe_perm = shuffle dims and dram_perm = shuffle dims in
      let analysis = V.analyze nest ~pe_perm ~dram_perm in
      (* All factors 2 at every level: 2*2*2*2 = 16. *)
      let factors = List.map (fun d -> (d, 2)) dims in
      let mapping =
        Mapping.canonical ~reg:(factors, dims) ~pe:(factors, pe_perm) ~spatial:factors
          ~dram:(factors, dram_perm)
      in
      let counts = Result.get_ok (Counts.compute nest mapping) in
      let env = Mapping.env mapping in
      List.for_all
        (fun tv ->
          let tc = List.find (fun t -> t.Counts.tensor = tv.V.tensor) counts.Counts.per_tensor in
          approx
            (V.volume_eval_exact env tv.V.sram_to_reg)
            (List.assoc 1 tc.Counts.fills)
          && approx
               (V.volume_eval_exact env tv.V.dram_to_sram)
               (List.assoc 3 tc.Counts.fills))
        analysis.V.per_tensor)

(* The generic analysis instantiated at the canonical structure must
   agree with the canonical analysis, symbolically. *)
let test_general_matches_canonical () =
  let nest = Workload.Matmul.nest ~ni:64 ~nj:64 ~nk:64 () in
  let pe_perm = [ "i"; "j"; "k" ] and dram_perm = [ "i"; "k"; "j" ] in
  let canonical = V.analyze nest ~pe_perm ~dram_perm in
  let general =
    V.analyze_general nest
      ~levels:[ V.Temporal []; V.Temporal pe_perm; V.Spatial; V.Temporal dram_perm ]
  in
  List.iter
    (fun tv ->
      let _, rw, boundaries =
        List.find (fun (n, _, _) -> n = tv.V.tensor) general.V.g_tensors
      in
      Alcotest.(check bool) "rw matches" tv.V.read_write rw;
      let b1 = List.find (fun b -> b.V.level = 1) boundaries in
      let b3 = List.find (fun b -> b.V.level = 3) boundaries in
      check_posy "fill@1"
        (V.volume_posynomial tv.V.sram_to_reg)
        (V.volume_posynomial b1.V.fill);
      check_posy "fill@3"
        (V.volume_posynomial tv.V.dram_to_sram)
        (V.volume_posynomial b3.V.fill);
      check_posy "buf@1"
        (Symexpr.Footprint.to_posynomial tv.V.register_footprint)
        (Symexpr.Footprint.to_posynomial b1.V.footprint);
      check_posy "buf@3"
        (Symexpr.Footprint.to_posynomial tv.V.sram_footprint)
        (Symexpr.Footprint.to_posynomial b3.V.footprint))
    canonical.V.per_tensor

(* Five tiling levels (a deeper hierarchy, as in the paper's Fig. 3(e)):
   the symbolic volumes must match the concrete model's counts. *)
let test_general_five_levels () =
  let nest = Workload.Matmul.nest ~ni:32 ~nj:32 ~nk:32 () in
  let dims = [ "i"; "j"; "k" ] in
  let perms =
    [
      [ "i"; "j"; "k" ]; [ "k"; "i"; "j" ]; [ "j"; "k"; "i" ]; [ "i"; "k"; "j" ];
    ]
  in
  let levels =
    [
      V.Temporal (List.nth perms 0);
      V.Temporal (List.nth perms 1);
      V.Spatial;
      V.Temporal (List.nth perms 2);
      V.Temporal (List.nth perms 3);
    ]
  in
  let analysis = V.analyze_general nest ~levels in
  let factors = List.map (fun d -> (d, 2)) dims in
  let mapping =
    Mapping.make
      [
        { Mapping.kind = Mapspace.Level.Temporal; factors; perm = List.nth perms 0 };
        { Mapping.kind = Mapspace.Level.Temporal; factors; perm = List.nth perms 1 };
        { Mapping.kind = Mapspace.Level.Spatial; factors; perm = [] };
        { Mapping.kind = Mapspace.Level.Temporal; factors; perm = List.nth perms 2 };
        { Mapping.kind = Mapspace.Level.Temporal; factors; perm = List.nth perms 3 };
      ]
  in
  let counts = Result.get_ok (Counts.compute nest mapping) in
  let env = Mapping.env mapping in
  List.iter
    (fun (name, _, boundaries) ->
      let tc = List.find (fun t -> t.Counts.tensor = name) counts.Counts.per_tensor in
      List.iter
        (fun b ->
          let symbolic = V.volume_eval_exact env b.V.fill in
          let concrete = List.assoc b.V.level tc.Counts.fills in
          Alcotest.(check bool)
            (Printf.sprintf "%s fill@%d: %g vs %g" name b.V.level symbolic concrete)
            true
            (approx symbolic concrete);
          let fp_sym = Symexpr.Footprint.eval_exact env b.V.footprint in
          let fp_conc = List.assoc b.V.level tc.Counts.footprints in
          Alcotest.(check bool)
            (Printf.sprintf "%s buf@%d: %g vs %g" name b.V.level fp_sym fp_conc)
            true
            (approx fp_sym fp_conc))
        boundaries)
    analysis.V.g_tensors

(* Generic levels must also handle halo (strided conv) footprints: check
   a 5-level conv structure against the concrete model. *)
let test_general_conv_halos () =
  let conv = Workload.Conv.make ~name:"g" ~k:4 ~c:4 ~hw:16 ~rs:3 ~stride:2 () in
  let nest = Workload.Conv.to_nest conv in
  let dims = Nest.dim_names nest in
  let tileable = [ "k"; "c"; "h"; "w" ] in
  let perm = tileable in
  (* Concrete mappings need full permutations; the untiled dims sit
     innermost with factor 1 (skipped by hoisting). *)
  let full_perm = tileable @ [ "n"; "r"; "s" ] in
  let levels =
    [ V.Temporal dims; V.Temporal perm; V.Spatial; V.Temporal perm; V.Temporal perm ]
  in
  let analysis = V.analyze_general nest ~levels in
  (* Concrete mapping: r/s fully at the register level; each tileable dim
     factored 2 at levels 1, 3 and 4 (extent 16 = 2*2*2*2 with reg 2 ...
     here: reg 1, then 2 at the three temporal levels above and spatial 2
     only for k and c to keep extents right: use 2,2,1,2,2 chains. *)
  let factors_of spec = List.map (fun d -> (d, spec d)) dims in
  let chain l d =
    if not (List.mem d tileable) then
      if l = 0 && Nest.extent nest d > 1 then Nest.extent nest d else 1
    else
      match (l, d) with
      | 0, _ -> 2
      | 2, ("k" | "c") -> 2
      | 2, _ -> 1
      | _, ("k" | "c") -> if l = 1 then 1 else 1
      | _, _ -> 2
  in
  (* Make products match extents: k,c = 2*1*2*1*1 = 4; h,w = 2*2*1*2*... *)
  let chain l d =
    match d with
    | "k" | "c" -> List.nth [ 2; 1; 2; 1; 1 ] l
    | "h" | "w" -> List.nth [ 2; 2; 1; 2; 1 ] l
    | _ -> chain l d
  in
  let mapping =
    Mapping.make
      [
        { Mapping.kind = Mapspace.Level.Temporal; factors = factors_of (chain 0); perm = dims };
        { Mapping.kind = Mapspace.Level.Temporal; factors = factors_of (chain 1); perm = full_perm };
        { Mapping.kind = Mapspace.Level.Spatial; factors = factors_of (chain 2); perm = [] };
        { Mapping.kind = Mapspace.Level.Temporal; factors = factors_of (chain 3); perm = full_perm };
        { Mapping.kind = Mapspace.Level.Temporal; factors = factors_of (chain 4); perm = full_perm };
      ]
  in
  (match Mapping.validate nest mapping with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "mapping invalid: %s" msg);
  let counts = Result.get_ok (Counts.compute nest mapping) in
  let env var =
    match List.assoc_opt var (List.concat_map (fun d ->
        List.init 5 (fun l -> (Mapspace.Level.trip_var ~level:l ~dim:d, float_of_int (chain l d))))
        dims)
    with
    | Some v -> v
    | None -> 1.0
  in
  List.iter
    (fun (name, _, boundaries) ->
      let tc = List.find (fun t -> t.Counts.tensor = name) counts.Counts.per_tensor in
      List.iter
        (fun b ->
          (* r and s appear in the level-1/3/4 perms symbolically but have
             factor 1 concretely, so the symbolic volume is only an exact
             match when hoist points coincide; here every tensor's
             innermost present tileable iterator has factor > 1, so they
             do for the In/Out/Ker references with perm k c h w. *)
          let symbolic = V.volume_eval_exact env b.V.fill in
          let concrete = List.assoc b.V.level tc.Counts.fills in
          Alcotest.(check bool)
            (Printf.sprintf "%s fill@%d: %g vs %g" name b.V.level symbolic concrete)
            true
            (approx symbolic concrete))
        boundaries)
    analysis.V.g_tensors

let test_general_validation () =
  let nest = Workload.Matmul.nest ~ni:8 ~nj:8 ~nk:8 () in
  Alcotest.check_raises "spatial level 0"
    (Invalid_argument "Volume.analyze_general: level 0 must be temporal") (fun () ->
      ignore (V.analyze_general nest ~levels:[ V.Spatial; V.Temporal [] ]))

let test_fingerprint_prunes_outer_order () =
  (* With the PE-level permutation fixed, swapping two outermost DRAM
     loops beyond every hoist point cannot change the cost model. *)
  let nest = Workload.Matmul.nest ~ni:16 ~nj:16 ~nk:16 () in
  let a = V.analyze nest ~pe_perm:[ "i"; "j"; "k" ] ~dram_perm:[ "i"; "j"; "k" ] in
  let b = V.analyze nest ~pe_perm:[ "i"; "j"; "k" ] ~dram_perm:[ "j"; "i"; "k" ] in
  (* dram perms <i,j,k> and <j,i,k>: every tensor's innermost present
     iterator is unchanged (k for A and B, j vs i for C differ!).  Pick
     instead perms where only loops above all hoist points swap: C hoists
     at j in <i,k,j> and <k,i,j>. *)
  ignore (a, b);
  let a = V.analyze nest ~pe_perm:[ "i"; "j"; "k" ] ~dram_perm:[ "i"; "k"; "j" ] in
  let b = V.analyze nest ~pe_perm:[ "i"; "j"; "k" ] ~dram_perm:[ "k"; "i"; "j" ] in
  Alcotest.(check bool)
    "same fingerprint" true
    (String.equal (V.fingerprint a) (V.fingerprint b))

let () =
  Alcotest.run "volume"
    [
      ( "paper equations",
        [
          Alcotest.test_case "Eq. 1 DRAM volumes" `Quick test_eq1_dram_volumes;
          Alcotest.test_case "Eq. 2 SRAM volumes" `Quick test_eq2_sram_volumes;
          Alcotest.test_case "register footprints" `Quick test_register_footprints;
          Alcotest.test_case "Table I trace" `Quick test_table1_trace;
          Alcotest.test_case "Ker worked example" `Quick test_ker_example;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "fingerprint prunes outer order" `Quick
            test_fingerprint_prunes_outer_order;
          QCheck_alcotest.to_alcotest prop_symbolic_matches_model;
        ] );
      ( "general levels",
        [
          Alcotest.test_case "matches canonical" `Quick test_general_matches_canonical;
          Alcotest.test_case "five levels vs model" `Quick test_general_five_levels;
          Alcotest.test_case "conv halos at five levels" `Quick test_general_conv_halos;
          Alcotest.test_case "validation" `Quick test_general_validation;
        ] );
    ]
