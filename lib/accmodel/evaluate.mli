(** Energy, delay and throughput of a concrete mapping on a concrete
    architecture — the role Timeloop's model plays in the paper.

    The energy expression is Eq. 3 instantiated with the technology models
    of Eq. 4:

    - MAC + per-MAC register traffic: [(4*eps_R + eps_op) * macs];
    - register-file side of SRAM<->register traffic: [eps_R * (...)];
    - SRAM accesses from both the register and the DRAM boundary;
    - DRAM accesses.

    Delay depends on the communication model (DESIGN §16).  [Overlapped]
    (the default, and the paper's Section V-B assumption) takes the
    maximum of per-component delays: compute on the used PEs, aggregate
    SRAM port traffic, aggregate DRAM traffic.  [Comm_aware] instead
    charges each per-level, per-direction link (DRAM read/write, NoC
    read/write, the per-PE register operand stream) with its burst
    overhead — each copy of the schedule quantized to whole bursts — and
    takes the max (uncontended) or serializes the DRAM/NoC channels onto
    one fabric ([contention]).  The timed refsim
    ({!Refsim.Simulate.timed}) re-derives the same channel totals by
    walking the copy schedule, so the two agree bit-for-bit in
    uncontended mode. *)

type breakdown = {
  mac_energy : float;  (** pJ, includes per-MAC register accesses *)
  register_energy : float;  (** pJ for register-side tile traffic *)
  sram_energy : float;
  dram_energy : float;
}

type t = {
  arch : Archspec.Arch.t;
  counts : Counts.t;
  energy_pj : float;
  energy_per_mac : float;
  breakdown : breakdown;
  compute_cycles : float;
  sram_cycles : float;  (** aggregate-model SRAM port cycles (legacy view) *)
  dram_cycles : float;  (** aggregate-model DRAM cycles (legacy view) *)
  comm : Archspec.Link.occupancy list;
      (** per-link occupancies in canonical order (dram-rd, dram-wr,
          noc-rd, noc-wr, reg); empty under [Overlapped] *)
  binding : string;
      (** the resource determining [cycles]: ["compute"], a channel
          name, ["bus"] (contended shared fabric), or under [Overlapped]
          ["sram"]/["dram"]; first-wins on ties in canonical order *)
  cycles : float;
  ipc : float;  (** MACs per cycle; at most the number of PEs used *)
}

val evaluate :
  ?comm:Archspec.Link.comm_model ->
  ?contention:bool ->
  Archspec.Technology.t ->
  Archspec.Arch.t ->
  Workload.Nest.t ->
  Mapspace.Mapping.t ->
  (t, string) result
(** Fails when the mapping is invalid for the nest, exceeds the
    architecture's register / SRAM / PE capacities, or is degenerate —
    the MAC count, cycle count or energy comes out non-finite or
    non-positive (overflowed trip-count products), which would otherwise
    yield NaN/inf [energy_per_mac]/[ipc] records.  [comm] defaults to
    [Overlapped] (the historical behavior); [contention] only affects
    [Comm_aware]. *)

val energy : t -> float

val ipc : t -> float

val pp : Format.formatter -> t -> unit
(** Under [Overlapped] the output is byte-identical to the
    pre-communication-model report; [Comm_aware] results append the
    per-link occupancy breakdown and the binding resource. *)
