module P = Symexpr.Posynomial
module M = Symexpr.Monomial

type t = {
  objective : P.t;
  ineqs : (string * P.t) list;
  eqs : (string * M.t) list;
}

let make ~objective ?(ineqs = []) ?(eqs = []) () =
  if P.is_zero objective then invalid_arg "Gp.Problem.make: zero objective";
  List.iter
    (fun (name, p) ->
      if P.is_zero p then
        invalid_arg (Printf.sprintf "Gp.Problem.make: zero inequality %S" name))
    ineqs;
  List.iter
    (fun (name, m) ->
      (* The monomial constructors enforce finite positive coefficients,
         but equality right-hand sides arrive pre-divided — re-check so a
         degenerate [g = 1] cannot slip into the KKT system. *)
      let c = M.coeff m in
      if not (Float.is_finite c && c > 0.0) then
        invalid_arg
          (Printf.sprintf
             "Gp.Problem.make: equality %S has non-finite or non-positive coefficient %g"
             name c))
    eqs;
  let names = List.map fst ineqs @ List.map fst eqs in
  List.iter
    (fun name ->
      if String.length name = 0 then
        invalid_arg "Gp.Problem.make: empty constraint name")
    names;
  (let rec dup = function
     | a :: (b :: _ as rest) ->
       if String.equal a b then
         invalid_arg
           (Printf.sprintf "Gp.Problem.make: duplicate constraint name %S" a)
       else dup rest
     | _ -> ()
   in
   dup (List.sort String.compare names));
  { objective; ineqs; eqs }

let objective p = p.objective

let ineqs p = p.ineqs

let eqs p = p.eqs

let le p m = P.div_monomial p m

let le_const p c =
  if not (c > 0.0) then invalid_arg "Gp.Problem.le_const: bound must be positive";
  P.div_monomial p (M.const c)

let eq m1 m2 = M.div m1 m2

let bind values prob =
  let poly p = List.fold_left (fun p (x, v) -> P.bind x v p) p values in
  let mono m = List.fold_left (fun m (x, v) -> M.bind x v m) m values in
  {
    objective = poly prob.objective;
    ineqs = List.map (fun (name, p) -> (name, poly p)) prob.ineqs;
    eqs = List.map (fun (name, m) -> (name, mono m)) prob.eqs;
  }

let filter_ineqs keep prob =
  { prob with ineqs = List.filter (fun (name, _) -> keep name) prob.ineqs }

let variables prob =
  let of_ineq (_, p) = P.variables p in
  let of_eq (_, m) = M.variables m in
  List.sort_uniq String.compare
    (P.variables prob.objective
    @ List.concat_map of_ineq prob.ineqs
    @ List.concat_map of_eq prob.eqs)

let violations ?(tol = 1e-6) prob env =
  (* Non-finite evaluations are violations, not noise: [nan > tol] is
     [false], so without the explicit classification a constraint that
     evaluates to NaN (e.g. [log] of a non-positive equality value) would
     silently report as feasible. *)
  let ineq_violation (name, p) =
    let value = P.eval env p in
    if not (Float.is_finite value) then Some (name, Float.infinity)
    else
      let v = value -. 1.0 in
      if v > tol then Some (name, v) else None
  in
  let eq_violation (name, m) =
    let value = M.eval env m in
    if not (Float.is_finite value && value > 0.0) then
      Some (name, Float.infinity)
    else
      let v = Float.abs (log value) in
      if v > tol then Some (name, v) else None
  in
  List.filter_map ineq_violation prob.ineqs
  @ List.filter_map eq_violation prob.eqs

let is_feasible ?tol prob env = violations ?tol prob env = []

let pp ppf prob =
  Format.fprintf ppf "@[<v>minimize %a" P.pp prob.objective;
  List.iter
    (fun (name, p) -> Format.fprintf ppf "@,s.t. [%s] %a <= 1" name P.pp p)
    prob.ineqs;
  List.iter
    (fun (name, m) -> Format.fprintf ppf "@,s.t. [%s] %a = 1" name M.pp m)
    prob.eqs;
  Format.fprintf ppf "@]"
