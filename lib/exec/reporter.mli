(** Domain-safety shim for [Logs] reporters.

    [Logs] itself performs no locking, and the formatting reporters
    ([Logs_fmt.reporter]) interleave output when called from several
    domains at once.  Wrap any reporter before installing it in a program
    that uses [Exec.Par]. *)

val mutexed : Logs.reporter -> Logs.reporter
(** [mutexed r] serializes every [report] call through one mutex.  The
    wrapped reporter (including the message continuation) runs while the
    mutex is held, so reporters must not log recursively. *)
