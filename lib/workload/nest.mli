(** Perfectly nested loop computations over dense tensors, the problem
    abstraction shared by every component of the system.

    A nest is a set of named iteration-space dimensions with integer
    extents, plus the tensors the computation touches.  Each tensor data
    dimension is indexed by an affine {e projection} of iterators,
    [sum_k stride_k * iter_k] (e.g. [x*h + r] for a convolution input).
    This covers matrix multiplication, Conv2D, and the other
    tensor-contraction-like kernels the paper considers. *)

type dim = { dim_name : string; extent : int }

type index = { stride : int; iter : string }

type projection = index list
(** One data dimension of a tensor; the list must be non-empty. *)

type tensor = {
  tensor_name : string;
  projections : projection list;
  read_write : bool;
      (** [true] for in/out operands (e.g. the accumulated output), whose
          data movement is counted in both directions *)
}

type t

val make : name:string -> dims:dim list -> tensors:tensor list -> t
(** Validates the nest: positive extents, positive strides, unique
    dimension and tensor names, every referenced iterator declared.
    Raises [Invalid_argument] otherwise. *)

val name : t -> string

val dims : t -> dim list

val dim_names : t -> string list
(** In declaration order. *)

val extent : t -> string -> int
(** Raises [Not_found] for an undeclared dimension. *)

val tensors : t -> tensor list

val tensor : t -> string -> tensor

val iters_of_tensor : tensor -> string list
(** Iterators appearing in the tensor's projections, sorted, deduplicated. *)

val tensor_mentions : tensor -> string -> bool

val ops : t -> float
(** Total number of innermost operations (MACs): the product of all
    extents. *)

val tensor_words : t -> tensor -> float
(** Total size of the tensor in words, from the full-extent footprint of
    each projection. *)

val total_words : t -> float

val pp : Format.formatter -> t -> unit
