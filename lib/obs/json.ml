let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str b s =
  Buffer.add_char b '"';
  Buffer.add_string b (escape s);
  Buffer.add_char b '"'

let int b i = Buffer.add_string b (string_of_int i)

let float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else str b (if Float.is_nan v then "nan" else if v > 0.0 then "inf" else "-inf")

let obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      f b)
    fields;
  Buffer.add_char b '}'

let field b name v =
  str b name;
  Buffer.add_char b ':';
  v b
