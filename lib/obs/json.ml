let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str b s =
  Buffer.add_char b '"';
  Buffer.add_string b (escape s);
  Buffer.add_char b '"'

let int b i = Buffer.add_string b (string_of_int i)

let float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
  else str b (if Float.is_nan v then "nan" else if v > 0.0 then "inf" else "-inf")

let obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      f b)
    fields;
  Buffer.add_char b '}'

let field b name v =
  str b name;
  Buffer.add_char b ':';
  v b

(* ------------------------------------------------------------------ *)
(* Parsing — the subset the writers above emit: objects, arrays,      *)
(* strings and signed integers.  Floats never appear as JSON numbers  *)
(* in round-tripped payloads (they travel as IEEE-754 bit strings),   *)
(* so the grammar stays integer-only on purpose.                      *)
(* ------------------------------------------------------------------ *)

type value =
  | Obj of (string * value) list
  | Arr of value list
  | Str of string
  | Int of int

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = c then incr pos else bad "expected %C at offset %d" c !pos
  in
  let string_lit () =
    skip_ws ();
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        if !pos >= n then bad "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then bad "truncated \\u escape";
          let code =
            match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some c -> c
            | None -> bad "bad \\u escape"
          in
          pos := !pos + 4;
          (* The writer only emits \u for control characters; decode
             the general BMP case as UTF-8 anyway. *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> bad "unknown escape \\%C" c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      incr pos;
      obj []
    | '[' ->
      incr pos;
      arr []
    | '"' -> Str (string_lit ())
    | '-' | '0' .. '9' -> number ()
    | c -> bad "unexpected %C at offset %d" c !pos
  and obj acc =
    skip_ws ();
    if peek () = '}' then begin
      incr pos;
      Obj (List.rev acc)
    end
    else begin
      let k = string_lit () in
      skip_ws ();
      expect ':';
      let v = value () in
      skip_ws ();
      match peek () with
      | ',' ->
        incr pos;
        obj ((k, v) :: acc)
      | '}' ->
        incr pos;
        Obj (List.rev ((k, v) :: acc))
      | c -> bad "expected ',' or '}' at offset %d, got %C" !pos c
    end
  and arr acc =
    skip_ws ();
    if peek () = ']' then begin
      incr pos;
      Arr (List.rev acc)
    end
    else begin
      let v = value () in
      skip_ws ();
      match peek () with
      | ',' ->
        incr pos;
        arr (v :: acc)
      | ']' ->
        incr pos;
        Arr (List.rev (v :: acc))
      | c -> bad "expected ',' or ']' at offset %d, got %C" !pos c
    end
  and number () =
    let start = !pos in
    if peek () = '-' then incr pos;
    while match peek () with '0' .. '9' -> true | _ -> false do
      incr pos
    done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some i -> Int i
    | None -> bad "bad number at offset %d" start
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then bad "trailing bytes at offset %d" !pos;
  v

let parse s = match parse_exn s with v -> Ok v | exception Bad m -> Error m
