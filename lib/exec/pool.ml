(* A fixed domain pool with a mutex/condition work queue.  See pool.mli
   for the concurrency contract. *)

(* Queue entries carry their enqueue timestamp (ns; 0.0 when metrics are
   disabled, so idle runs never read the clock) feeding the
   [exec.queue_wait_ns] histogram when they are popped. *)
type t = {
  lock : Mutex.t;
  work_available : Condition.t;
  queue : (float * (unit -> unit)) Queue.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let m_queue_wait = Obs.Metrics.histogram "exec.queue_wait_ns"

let enqueue_stamp () = if Obs.Metrics.enabled () then Obs.Metrics.now_ns () else 0.0

let note_wait stamp =
  if stamp > 0.0 && Obs.Metrics.enabled () then
    Obs.Metrics.observe m_queue_wait (Obs.Metrics.now_ns () -. stamp)

(* The OCaml 5 runtime hard-caps live domains (128 on 64-bit); stay well
   under it so user code can still spawn domains of its own. *)
let max_workers = 112

let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let inside_worker () = Domain.DLS.get in_worker

(* Runs one task with the worker flag set, restoring it afterwards so a
   submitting domain that helps drain the queue is only "a worker" for
   the duration of the task. *)
let run_task task =
  let was = Domain.DLS.get in_worker in
  Domain.DLS.set in_worker true;
  (try task () with _ -> ());
  Domain.DLS.set in_worker was

let worker_loop t =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_available t.lock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.lock (* closed: exit *)
    else begin
      let stamp, task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      note_wait stamp;
      run_task task;
      loop ()
    end
  in
  loop ()

let spawn_workers t n = List.init n (fun _ -> Domain.spawn (fun () -> worker_loop t))

let create ~workers =
  if workers < 0 then invalid_arg "Exec.Pool.create: negative worker count";
  let workers = Int.min workers max_workers in
  let t =
    {
      lock = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      workers = [];
      closed = false;
    }
  in
  t.workers <- spawn_workers t workers;
  t

let size t =
  Mutex.lock t.lock;
  let n = List.length t.workers in
  Mutex.unlock t.lock;
  n

let ensure_workers t n =
  let n = Int.min n max_workers in
  Mutex.lock t.lock;
  let missing = if t.closed then 0 else n - List.length t.workers in
  (* Spawned domains block on the (held) lock until we release it, so
     registering them inside the critical section is safe and keeps
     concurrent ensure_workers calls from overshooting. *)
  if missing > 0 then t.workers <- spawn_workers t missing @ t.workers;
  Mutex.unlock t.lock

let run t tasks =
  match tasks with
  | [] -> ()
  | _ ->
    let remaining = ref (List.length tasks) in
    let batch_done = Condition.create () in
    let wrap task () =
      run_task task;
      Mutex.lock t.lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    List.iter (fun task -> Queue.add (enqueue_stamp (), wrap task) t.queue) tasks;
    Condition.broadcast t.work_available;
    (* The submitter helps drain the queue (any batch's tasks) and only
       sleeps when the queue is empty but its own batch is unfinished —
       some worker is then running the outstanding tasks. *)
    let rec drain () =
      if !remaining = 0 then Mutex.unlock t.lock
      else if not (Queue.is_empty t.queue) then begin
        let stamp, task = Queue.pop t.queue in
        Mutex.unlock t.lock;
        note_wait stamp;
        task ();
        Mutex.lock t.lock;
        drain ()
      end
      else begin
        Condition.wait batch_done t.lock;
        drain ()
      end
    in
    drain ()

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  let workers = t.workers in
  t.workers <- [];
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join workers
