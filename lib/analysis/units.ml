type base = Elements | Bytes | Picojoules | Cycles | Square_microns

let base_rank = function
  | Elements -> 0
  | Bytes -> 1
  | Picojoules -> 2
  | Cycles -> 3
  | Square_microns -> 4

let base_name = function
  | Elements -> "elem"
  | Bytes -> "B"
  | Picojoules -> "pJ"
  | Cycles -> "cyc"
  | Square_microns -> "um^2"

type t = (base * float) list (* sorted by base rank, no zero exponents *)

let normalize l =
  let sorted =
    List.sort (fun (a, _) (b, _) -> compare (base_rank a) (base_rank b)) l
  in
  let rec merge = function
    | (a, x) :: (b, y) :: rest when a = b -> merge ((a, x +. y) :: rest)
    | pair :: rest -> pair :: merge rest
    | [] -> []
  in
  List.filter (fun (_, e) -> Float.abs e > 1e-12) (merge sorted)

let dimensionless = []

let of_base b = [ (b, 1.0) ]

let elements = of_base Elements

let bytes = of_base Bytes

let pj = of_base Picojoules

let cycles = of_base Cycles

let um2 = of_base Square_microns

let mul a b = normalize (a @ b)

let pow u a =
  if not (Float.is_finite a) then invalid_arg "Units.pow: non-finite power";
  if a = 0.0 then [] else List.map (fun (b, e) -> (b, e *. a)) u

let inv u = pow u (-1.0)

let div a b = mul a (inv b)

let exponents u = u

let is_dimensionless u = u = []

let equal a b =
  let rec go = function
    | [], [] -> true
    | (ba, ea) :: ra, (bb, eb) :: rb ->
      ba = bb && Float.abs (ea -. eb) <= 1e-9 && go (ra, rb)
    | _ -> false
  in
  go (a, b)

let pp ppf u =
  match u with
  | [] -> Format.fprintf ppf "1"
  | _ ->
    List.iteri
      (fun i (b, e) ->
        if i > 0 then Format.fprintf ppf "*";
        if e = 1.0 then Format.fprintf ppf "%s" (base_name b)
        else Format.fprintf ppf "%s^%g" (base_name b) e)
      u

let to_string u = Format.asprintf "%a" pp u
