(** Accelerator architecture points: the three co-designed parameters of
    the paper (PE count, registers per PE, shared SRAM capacity) plus the
    derived per-access energies and total area. *)

type t = {
  arch_name : string;
  pe_count : int;
  registers_per_pe : int;  (** words *)
  sram_words : int;  (** words (16-bit) *)
}

val make : name:string -> pes:int -> registers:int -> sram_words:int -> t
(** Raises [Invalid_argument] on non-positive parameters. *)

val eyeriss : t
(** The paper's baseline: 168 PEs, 512 registers per PE, 128 KiB SRAM
    (65536 16-bit words). *)

val area : Technology.t -> t -> float
(** Total area in um^2 under the linear model of Eq. 5. *)

val eyeriss_area : Technology.t -> float
(** The co-design area budget used throughout the evaluation. *)

val register_energy : Technology.t -> t -> float

val sram_energy : Technology.t -> t -> float

val pp : Format.formatter -> t -> unit
