(* Sequential-vs-parallel wall time of the optimizer sweep.

   Runs the full Optimize sweep (GP per permutation choice x window
   placement, then integerization) on one layer for each requested jobs
   setting, reports wall time and speedup over jobs = 1, and checks that
   every run returns a bit-identical report — the determinism guarantee
   of the shared domain pool (Exec.Par preserves order; ranking totally
   orders candidates by objective).

   Usage:
     dune exec bench/sweep.exe                       # resnet-2, jobs 1,2,4
     dune exec bench/sweep.exe -- --layer resnet-8 --jobs 1,4,8
     dune exec bench/sweep.exe -- --codesign --repeat 3 *)

module O = Thistle.Optimize
module F = Thistle.Formulate
module I = Thistle.Integerize
module Arch = Archspec.Arch
module Conv = Workload.Conv
module Evaluate = Accmodel.Evaluate

let tech = Archspec.Technology.table3

type options = {
  layer : string;
  jobs : int list;
  codesign : bool;
  repeat : int;
  max_choices : int;
}

let parse_args () =
  let layer = ref "resnet-2" in
  let jobs = ref [ 1; 2; 4 ] in
  let codesign = ref false in
  let repeat = ref 1 in
  let max_choices = ref Thistle.Optimize.default_config.O.max_choices in
  let int_arg flag s =
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "%s: invalid value %S, expected a positive integer\n" flag s;
      exit 2
  in
  let rec go = function
    | [] -> ()
    | "--layer" :: name :: rest ->
      layer := name;
      go rest
    | "--jobs" :: spec :: rest ->
      jobs := List.map (int_arg "--jobs") (String.split_on_char ',' spec);
      go rest
    | "--codesign" :: rest ->
      codesign := true;
      go rest
    | "--repeat" :: n :: rest ->
      repeat := int_arg "--repeat" n;
      go rest
    | "--max-choices" :: n :: rest ->
      max_choices := int_arg "--max-choices" n;
      go rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s (expected --layer NAME, --jobs N,N,..., --codesign, \
         --repeat N, --max-choices N)\n"
        arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    layer = !layer;
    jobs = !jobs;
    codesign = !codesign;
    repeat = !repeat;
    max_choices = !max_choices;
  }

let () =
  let options = parse_args () in
  let nest =
    match Workload.Zoo.find options.layer with
    | layer -> Conv.to_nest layer
    | exception Not_found ->
      Printf.eprintf "unknown layer %S; see `thistle layers'\n" options.layer;
      exit 2
  in
  let run jobs =
    let config = { O.default_config with O.jobs; max_choices = options.max_choices } in
    let t0 = Unix.gettimeofday () in
    let result =
      let rec loop k last =
        if k = 0 then last
        else
          let r =
            if options.codesign then
              O.codesign ~config tech ~area_budget:(Arch.eyeriss_area tech) F.Energy nest
            else O.dataflow ~config tech Arch.eyeriss F.Energy nest
          in
          loop (k - 1) (Some r)
      in
      loop options.repeat None
    in
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int options.repeat in
    (dt, result)
  in
  Printf.printf "optimizer sweep: layer %s, %s, %d recognized CPU(s)%s\n" options.layer
    (if options.codesign then "codesign" else "dataflow (Eyeriss)")
    (Domain.recommended_domain_count ())
    (if options.repeat > 1 then Printf.sprintf ", best-effort mean of %d runs" options.repeat
     else "");
  Printf.printf "%6s %12s %9s %10s\n" "jobs" "wall s" "speedup" "identical";
  let baseline = ref None in
  let reference = ref None in
  List.iter
    (fun jobs ->
      let dt, result = run jobs in
      let speedup =
        match !baseline with
        | None ->
          baseline := Some dt;
          1.0
        | Some t1 -> t1 /. dt
      in
      let identical =
        match (!reference, result) with
        | None, r ->
          reference := Some r;
          "-"
        | Some r0, r -> if r0 = r then "yes" else "NO"
      in
      Printf.printf "%6d %12.3f %9.2fx %10s\n%!" jobs dt speedup identical)
    options.jobs;
  match !reference with
  | Some (Some (Ok r)) ->
    let m = r.O.outcome.I.metrics in
    Printf.printf "\nreport: %d choices solved, %.2f pJ/MAC, IPC %.1f\n"
      r.O.choices_solved m.Evaluate.energy_per_mac m.Evaluate.ipc
  | Some (Some (Error msg)) -> Printf.printf "\noptimization failed: %s\n" msg
  | Some None | None -> ()
