(** Report rendering shared by the CLI and the serve daemon.

    Byte-identity between a warm daemon answer, a cold daemon answer and
    a cold [thistle optimize]/[codesign]/[pipeline] run (DESIGN §14) is
    by construction: both front ends print exactly these strings, and
    the store persists them verbatim.  Rendering goes through a fresh
    [Format] formatter per call with default margins — the same breaking
    behavior as the CLI's previous [Format.printf] path. *)

val outcome : tech:Archspec.Technology.t -> Thistle.Optimize.report -> string
(** The report block of [thistle optimize]/[codesign]: explored/solved
    counts, solver totals, quarantined and pruned pairs, architecture,
    mapping and model metrics. *)

val area_header : float -> string
(** [thistle codesign]'s "area budget" line. *)

val pipeline :
  config:Thistle.Optimize.config ->
  Archspec.Technology.t ->
  Thistle.Formulate.objective ->
  Workload.Nest.t list ->
  string
(** The whole [thistle pipeline] run: per-layer co-design on the shared
    pool, dominant-arch selection, and the layer-wise vs shared-arch
    comparison table (re-optimizing each layer for the dominant
    architecture).  Runs solves — this is the pipeline driver, shared so
    both front ends emit identical bytes. *)
